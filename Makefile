# Build, vet, lint and test pipeline — the same targets CI runs
# (.github/workflows/ci.yml), so `make ci` reproduces a CI run locally.

GO ?= go

# Packages with real concurrency (goroutine ranks, lock-free hogwild workers,
# parameter-server shards, the trainer that drives them) get a dedicated
# race-detector tier. -short keeps the long end-to-end learning runs out of
# the ~10-20x race slowdown; unit-level coverage stays on.
RACE_PKGS = ./internal/hogwild/ ./internal/mpi/ ./internal/simnet/ ./internal/ps/ ./internal/core/ ./internal/tensor/

.PHONY: all build vet lint test race bench faults serve ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# kgelint is this repo's own analyzer suite (cmd/kgelint, internal/lint):
# seeded randomness, divergent collectives, float equality, dropped errors,
# non-atomic shared-row access. Zero findings is the merge bar.
lint:
	$(GO) run ./cmd/kgelint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short -count=1 $(RACE_PKGS)

# Fault-injection suite under the race detector: scheduled rank crashes,
# recv-watchdog timeouts, shrink-and-continue recovery, checkpoint
# corruption. The failure paths close abort channels and release blocked
# ranks concurrently, so they get their own race-checked tier.
faults:
	$(GO) test -race -short -count=1 -run 'Fault|Shrink|Recover|Checkpoint|Panic|RecvTimeout' \
		./internal/mpi/ ./internal/simnet/ ./internal/core/ ./internal/model/

# Serving suite under the race detector: the kgeserve subsystem mixes
# concurrent HTTP handlers, the predict micro-batcher, the sharded LRU
# cache and atomic hot checkpoint reload — including a test that hammers
# every endpoint while the live store is swapped.
serve:
	$(GO) test -race -count=1 ./internal/serve/

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet lint test race faults serve
