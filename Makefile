# Build, vet, lint and test pipeline — the same targets CI runs
# (.github/workflows/ci.yml), so `make ci` reproduces a CI run locally.
# Run `make help` for a target summary.

GO ?= go
COMMIT := $(shell git rev-parse --short HEAD 2>/dev/null)
BENCH_OUT ?= BENCH_$(shell date +%F).json

# Packages with real concurrency (goroutine ranks, lock-free hogwild workers,
# parameter-server shards, the trainer that drives them) get a dedicated
# race-detector tier. -short keeps the long end-to-end learning runs out of
# the ~10-20x race slowdown; unit-level coverage stays on.
RACE_PKGS = ./internal/hogwild/ ./internal/mpi/ ./internal/simnet/ ./internal/ps/ ./internal/core/ ./internal/tensor/ ./internal/testkit/

# Packages with kernel micro-benchmarks (ns/op, allocs/op, triples/sec);
# the top-level package adds the end-to-end paper-table benchmarks.
BENCH_PKGS = ./internal/grad/ ./internal/mpi/ ./internal/model/ ./internal/pool/ ./internal/tensor/ ./internal/serve/ ./internal/partition/ ./internal/core/ ./internal/binpack/

.PHONY: all build vet lint test race bench bench-smoke faults partition serve \
	loadbench transport verify-stats soak coverage coverage-update ci help

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## vet: run go vet over the repo
vet:
	$(GO) vet ./...

# kgelint is this repo's own analyzer suite (cmd/kgelint, internal/lint):
# six per-node matchers (seeded randomness, divergent collectives, float
# equality, dropped errors, collective error handling, non-atomic shared-row
# access) plus the CFG/dataflow tier (pooluse buffer lifecycle, scratchhold
# borrow retention, hotpathalloc zero-alloc proof) and the stale
# //kgelint:ignore audit. Zero unsuppressed findings is the merge bar.
## lint: run the kgelint analyzer suite (zero findings = pass)
lint:
	$(GO) run ./cmd/kgelint ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detector pass over the concurrent packages
race:
	$(GO) test -race -short -count=1 $(RACE_PKGS)

# Fault-injection suite under the race detector: scheduled rank crashes,
# recv-watchdog timeouts, shrink-and-continue recovery, checkpoint
# corruption. The failure paths close abort channels and release blocked
# ranks concurrently, so they get their own race-checked tier.
## faults: fault-injection suite under the race detector
faults:
	$(GO) test -race -short -count=1 -run 'Fault|Shrink|Recover|Checkpoint|Panic|RecvTimeout' \
		./internal/mpi/ ./internal/simnet/ ./internal/core/ ./internal/model/

# Partitioned-training tier under the race detector: the joint
# entity+relation partitioner's invariants and the sharded-table trainer
# (row-exchange pull/push, shard-aware checkpoints, crash + re-partition
# recovery). The row exchange runs one goroutine per rank against shared
# mpi state, so it gets a dedicated race-checked tier without -short.
## partition: partitioner + sharded-table trainer under -race
partition:
	$(GO) test -race -count=1 ./internal/partition/
	$(GO) test -race -count=1 -run 'Partitioned' ./internal/core/

# Transport tier under the race detector: the backend-agnostic conformance
# suite run over both fabrics (in-process channels and real TCP sockets),
# the TCP endpoint's frame/handshake/fault-injection tests, the
# process-world collectives, the multi-process re-exec smoke tests (three
# real OS processes over localhost; trajectory identity and SIGKILL
# shrink-and-continue), and the kgeverify -tcp gate proving the TCP fabric
# is trajectory-identical to simnet at zero tolerance. The re-exec tests
# are testing.Short()-aware, so `make race` (-short) skips them and this
# tier is where they run.
## transport: transport conformance + multi-process suite under -race
transport:
	$(GO) test -race -count=1 ./internal/transport/...
	$(GO) test -race -count=1 -run 'TestProcess' ./internal/mpi/ ./internal/core/
	$(GO) run ./cmd/kgeverify -tcp -no-goldens -no-props

# Serving suite under the race detector: the kgeserve subsystem mixes
# concurrent HTTP handlers, the predict micro-batcher, the sharded LRU
# cache, the packed binarized index and atomic hot checkpoint reload —
# including tests that hammer exact and approx predicts while the live
# store (and its packed index, as one generation) is swapped.
## serve: serving + binarized-index suites under the race detector
serve:
	$(GO) test -race -count=1 ./internal/serve/ ./internal/binpack/

# Serving load smoke: kgeload self-hosts a clustered-checkpoint server,
# measures recall@10 of mode=approx against the exact ranking, then drives
# paced concurrent traffic through both modes. The floors assert the
# two-stage pipeline's end-to-end contract (high fidelity, real speedup) at
# CI scale; the committed BENCH_<date>.json numbers come from the
# full-scale run (50k entities — see README "Serving").
## loadbench: kgeload smoke with recall and speedup floors
loadbench:
	$(GO) run ./cmd/kgeload -entities 8000 -dim 32 -clusters 256 \
		-qps 200 -duration 2s -fidelity 60 -min-recall 0.95 -min-speedup 1.3

# Reproducible perf capture: run the kernel micro-benchmarks, parse the
# output with cmd/benchjson, and write a schema-versioned JSON capture
# stamped with the current commit. Compare captures across commits as
# documented in PERFORMANCE.md. Override the file with BENCH_OUT=....
## bench: run micro-benchmarks and write $(BENCH_OUT)
bench:
	$(GO) test -bench=. -benchmem -run '^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -commit "$(COMMIT)" -out $(BENCH_OUT)

# One-iteration pass over every benchmark in the repo: proves each still
# compiles and runs without measuring anything. CI runs this tier.
## bench-smoke: compile-and-run check of all benchmarks (-benchtime=1x)
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run '^$$' ./...

# Statistical verification (internal/testkit via cmd/kgeverify): golden-run
# convergence regression over every strategy combination, diffed against the
# committed reference with first-diverging-epoch diagnosis, plus the CLT-
# bounded property checks (quantizer/selection unbiasedness, RP invariants,
# DRS switch permanence, SS ordering). Deterministic: same build, same
# verdict. See TESTING.md for how to read failures and update goldens.
## verify-stats: golden-run regression + statistical property checks
verify-stats:
	$(GO) run ./cmd/kgeverify

# Chaos soak under the race detector: randomized-but-seeded
# train -> crash -> shrink -> recover -> checkpoint -> serve-reload cycles
# asserting MRR within tolerance of a fault-free baseline, a gap-free epoch
# ledger, bit-exact checkpoint round-trips, and correct serving before and
# after hot reload. Nightly CI runs this; it is minutes, not seconds.
## soak: chaos soak (train/crash/recover/serve loops) under -race
soak:
	$(GO) run -race ./cmd/kgeverify -soak -seed 1 -iters 5 -v

# Per-package coverage, compared against the checked-in baseline
# (COVERAGE_BASELINE.txt). A package may drop at most COVERAGE_TOL points
# before the target fails; refresh the baseline deliberately with
# `make coverage-update` when coverage legitimately moves.
COVERAGE_TOL ?= 3.0

## coverage: per-package coverage summary vs COVERAGE_BASELINE.txt
coverage:
	$(GO) test -count=1 -cover ./... \
		| awk '/coverage:/ { pkg = ($$1=="ok") ? $$2 : $$1; pct=""; for (i=1;i<=NF;i++) if ($$i=="coverage:") pct=$$(i+1); if (pct !~ /%$$/) next; gsub(/%/,"",pct); printf "%-40s %s\n", pkg, pct }' \
		| sort > coverage.txt
	@cat coverage.txt
	@awk -v tol=$(COVERAGE_TOL) \
		'NR==FNR { base[$$1]=$$2; next } \
		 ($$1 in base) && $$2+0 < base[$$1]-tol { printf "coverage regression: %s at %.1f%%, baseline %.1f%% (tolerance %.1f pts)\n", $$1, $$2, base[$$1], tol; bad=1 } \
		 END { exit bad }' COVERAGE_BASELINE.txt coverage.txt
	@echo "coverage: OK within $(COVERAGE_TOL) points of COVERAGE_BASELINE.txt"

## coverage-update: refresh COVERAGE_BASELINE.txt from a fresh coverage run
coverage-update: coverage
	cp coverage.txt COVERAGE_BASELINE.txt

## ci: everything CI runs (build vet lint test race faults partition serve loadbench transport verify-stats coverage bench-smoke)
ci: build vet lint test race faults partition serve loadbench transport verify-stats coverage bench-smoke

## help: list targets
help:
	@grep -E '^## ' $(MAKEFILE_LIST) | sed 's/^## /  /' | sort
