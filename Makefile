# Build, vet, lint and test pipeline — the same targets CI runs
# (.github/workflows/ci.yml), so `make ci` reproduces a CI run locally.
# Run `make help` for a target summary.

GO ?= go
COMMIT := $(shell git rev-parse --short HEAD 2>/dev/null)
BENCH_OUT ?= BENCH_$(shell date +%F).json

# Packages with real concurrency (goroutine ranks, lock-free hogwild workers,
# parameter-server shards, the trainer that drives them) get a dedicated
# race-detector tier. -short keeps the long end-to-end learning runs out of
# the ~10-20x race slowdown; unit-level coverage stays on.
RACE_PKGS = ./internal/hogwild/ ./internal/mpi/ ./internal/simnet/ ./internal/ps/ ./internal/core/ ./internal/tensor/

# Packages with kernel micro-benchmarks (ns/op, allocs/op, triples/sec);
# the top-level package adds the end-to-end paper-table benchmarks.
BENCH_PKGS = ./internal/grad/ ./internal/mpi/ ./internal/model/ ./internal/pool/ ./internal/tensor/ ./internal/serve/

.PHONY: all build vet lint test race bench bench-smoke faults serve ci help

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## vet: run go vet over the repo
vet:
	$(GO) vet ./...

# kgelint is this repo's own analyzer suite (cmd/kgelint, internal/lint):
# seeded randomness, divergent collectives, float equality, dropped errors,
# non-atomic shared-row access. Zero findings is the merge bar.
## lint: run the kgelint analyzer suite (zero findings = pass)
lint:
	$(GO) run ./cmd/kgelint ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detector pass over the concurrent packages
race:
	$(GO) test -race -short -count=1 $(RACE_PKGS)

# Fault-injection suite under the race detector: scheduled rank crashes,
# recv-watchdog timeouts, shrink-and-continue recovery, checkpoint
# corruption. The failure paths close abort channels and release blocked
# ranks concurrently, so they get their own race-checked tier.
## faults: fault-injection suite under the race detector
faults:
	$(GO) test -race -short -count=1 -run 'Fault|Shrink|Recover|Checkpoint|Panic|RecvTimeout' \
		./internal/mpi/ ./internal/simnet/ ./internal/core/ ./internal/model/

# Serving suite under the race detector: the kgeserve subsystem mixes
# concurrent HTTP handlers, the predict micro-batcher, the sharded LRU
# cache and atomic hot checkpoint reload — including a test that hammers
# every endpoint while the live store is swapped.
## serve: serving suite under the race detector
serve:
	$(GO) test -race -count=1 ./internal/serve/

# Reproducible perf capture: run the kernel micro-benchmarks, parse the
# output with cmd/benchjson, and write a schema-versioned JSON capture
# stamped with the current commit. Compare captures across commits as
# documented in PERFORMANCE.md. Override the file with BENCH_OUT=....
## bench: run micro-benchmarks and write $(BENCH_OUT)
bench:
	$(GO) test -bench=. -benchmem -run '^$$' $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -commit "$(COMMIT)" -out $(BENCH_OUT)

# One-iteration pass over every benchmark in the repo: proves each still
# compiles and runs without measuring anything. CI runs this tier.
## bench-smoke: compile-and-run check of all benchmarks (-benchtime=1x)
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run '^$$' ./...

## ci: everything CI runs (build vet lint test race faults serve bench-smoke)
ci: build vet lint test race faults serve bench-smoke

## help: list targets
help:
	@grep -E '^## ' $(MAKEFILE_LIST) | sed 's/^## /  /' | sort
