// Package tensor provides the float32 vector and row-matrix kernels that the
// KGE models and gradient pipeline are built on.
//
// The paper's workloads operate on embedding matrices whose rows are small
// (dimension up to a few hundred) dense vectors; all heavy math reduces to
// BLAS-1 style kernels over rows. Everything here is allocation-free unless
// documented otherwise, so hot loops in training stay off the garbage
// collector.
//
// Ownership and concurrency: the free-function kernels (Dot, Axpy, ...)
// only read their inputs and write their named outputs; they never retain a
// slice past the call. None of them are synchronized — a slice shared
// between goroutines must be accessed through the Atomic* accessors in
// atomic.go, which is how the hogwild trainer uses a shared Matrix; the
// plain kernels are for exclusively-owned rows and scratch.
package tensor

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; it panics otherwise (mirroring the cost of a silent mismatch).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Dot3 returns sum_i a[i]*b[i]*c[i], the triple product at the heart of the
// ComplEx and DistMult scoring functions.
func Dot3(a, b, c []float32) float32 {
	if len(a) != len(b) || len(b) != len(c) {
		panic("tensor: Dot3 length mismatch")
	}
	var s float32
	for i, av := range a {
		s += av * b[i] * c[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// AxpyMul computes y[i] += alpha * a[i] * b[i], fusing the element-wise
// product used by KGE gradient rules.
func AxpyMul(alpha float32, a, b, y []float32) {
	if len(a) != len(b) || len(b) != len(y) {
		panic("tensor: AxpyMul length mismatch")
	}
	for i := range y {
		y[i] += alpha * a[i] * b[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y += x in place.
func Add(x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Add length mismatch")
	}
	for i, xv := range x {
		y[i] += xv
	}
}

// Copy copies src into dst; lengths must match.
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Copy length mismatch")
	}
	copy(dst, src)
}

// Zero sets x to all zeros.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Nrm2Sq returns the squared Euclidean norm of x.
func Nrm2Sq(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(s)
}

// AbsMax returns max_i |x[i]|, or 0 for an empty slice.
func AbsMax(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMean returns mean_i |x[i]|, or 0 for an empty slice.
func AbsMean(x []float32) float32 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return float32(s / float64(len(x)))
}

// IsZero reports whether every element of x is exactly zero.
func IsZero(x []float32) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Matrix is a dense row-major matrix of float32 whose rows are embedding
// vectors. Data is a single backing slice of Rows*Cols elements, so a whole
// matrix can be communicated or checkpointed as one contiguous buffer.
//
// A Matrix has no internal synchronization. Concurrent access to rows that
// may be written (the hogwild parameter store) must go through AtomicRow*;
// read-only sharing of a frozen matrix (the serving store) is safe as-is.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a mutable slice view into the backing array — no
// copy is made, so writes through the view are writes to the matrix, and
// the view stays valid (and aliased) for the life of the Matrix.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic("tensor: Matrix row out of range")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// ZeroAll clears the whole matrix.
func (m *Matrix) ZeroAll() { Zero(m.Data) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// RandomizeNormal fills m with N(0, sigma^2) entries drawn from next, a
// function returning standard normal variates. Used for Glorot-style
// embedding initialization.
func (m *Matrix) RandomizeNormal(sigma float32, next func() float64) {
	for i := range m.Data {
		m.Data[i] = sigma * float32(next())
	}
}

// Bytes returns the size of the matrix payload in bytes (4 bytes/value).
func (m *Matrix) Bytes() int { return 4 * len(m.Data) }

// NonZeroRows returns the number of rows with at least one non-zero entry.
// Figure 2 of the paper tracks this quantity across training epochs.
func (m *Matrix) NonZeroRows() int {
	n := 0
	for i := 0; i < m.Rows; i++ {
		if !IsZero(m.Row(i)) {
			n++
		}
	}
	return n
}
