// Atomic bit-pattern accessors for float32 slices and Matrix rows.
//
// Hogwild training (internal/hogwild) shares one parameter store across
// worker threads and updates it without locks. Plain float loads and stores
// are undefined behaviour under the Go memory model and drown `go test
// -race` in reports, so every access to shared rows goes through these
// accessors instead: each float32 element is reinterpreted as its uint32
// bit pattern and moved with sync/atomic Load/Store/CompareAndSwap. The
// updates stay lock-free and word-granular — still Hogwild semantics, a row
// read can interleave with a concurrent writer's elements — but every
// individual access is a synchronized machine word, which is exactly what
// the race detector (and the hardware) needs. Element bit patterns are
// 32-bit because the store is float32; a float64 store would use the
// identical construction over uint64.
//
// On amd64/arm64 an atomic load compiles to a plain load plus a compiler
// reordering fence, so the read path costs nothing; the CAS-loop add is the
// price of not losing concurrent updates to the same element.

package tensor

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// bits returns the element's address reinterpreted as an atomic 32-bit
// pattern. The bounds check happens at the call site via normal indexing.
func bits(x []float32, i int) *uint32 {
	return (*uint32)(unsafe.Pointer(&x[i]))
}

// AtomicLoad returns x[i] via an atomic bit-pattern load.
func AtomicLoad(x []float32, i int) float32 {
	return math.Float32frombits(atomic.LoadUint32(bits(x, i)))
}

// AtomicStore sets x[i] = v via an atomic bit-pattern store.
func AtomicStore(x []float32, i int, v float32) {
	atomic.StoreUint32(bits(x, i), math.Float32bits(v))
}

// AtomicCompareAndSwap installs new at x[i] iff the element still holds
// old's exact bit pattern, reporting success.
func AtomicCompareAndSwap(x []float32, i int, old, new float32) bool {
	return atomic.CompareAndSwapUint32(bits(x, i), math.Float32bits(old), math.Float32bits(new))
}

// AtomicAdd adds delta to x[i] with a compare-and-swap loop: no concurrent
// increment to the same element is ever lost, unlike a plain read-modify-
// write. Returns the new value.
func AtomicAdd(x []float32, i int, delta float32) float32 {
	p := bits(x, i)
	for {
		old := atomic.LoadUint32(p)
		next := math.Float32bits(math.Float32frombits(old) + delta)
		if atomic.CompareAndSwapUint32(p, old, next) {
			return math.Float32frombits(next)
		}
	}
}

// AtomicCopy copies src into dst element-wise with atomic loads and stores.
// The copy is per-element atomic, not a snapshot: concurrent writers may be
// observed mid-row, which is the Hogwild contract.
func AtomicCopy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AtomicCopy length mismatch")
	}
	for i := range dst {
		AtomicStore(dst, i, AtomicLoad(src, i))
	}
}

// AtomicRowLoad copies row i into dst via atomic element loads.
func (m *Matrix) AtomicRowLoad(i int, dst []float32) {
	if i < 0 || i >= m.Rows {
		panic("tensor: Matrix row out of range")
	}
	if len(dst) != m.Cols {
		panic("tensor: AtomicRowLoad width mismatch")
	}
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	for j := range dst {
		dst[j] = AtomicLoad(row, j)
	}
}

// AtomicRowStore installs src as row i via atomic element stores.
func (m *Matrix) AtomicRowStore(i int, src []float32) {
	if i < 0 || i >= m.Rows {
		panic("tensor: Matrix row out of range")
	}
	if len(src) != m.Cols {
		panic("tensor: AtomicRowStore width mismatch")
	}
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	for j, v := range src {
		AtomicStore(row, j, v)
	}
}

// AtomicRowAxpy adds alpha*g element-wise into row i with per-element
// compare-and-swap loops — the lock-free sparse SGD update.
func (m *Matrix) AtomicRowAxpy(i int, alpha float32, g []float32) {
	if i < 0 || i >= m.Rows {
		panic("tensor: Matrix row out of range")
	}
	if len(g) != m.Cols {
		panic("tensor: AtomicRowAxpy width mismatch")
	}
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	for j, gv := range g {
		if gv != 0 { // exact-zero gradient elements skip the CAS (floateq permits compares against zero)
			AtomicAdd(row, j, alpha*gv)
		}
	}
}
