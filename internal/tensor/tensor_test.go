package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestDot3(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{5, 6}
	if got := Dot3(a, b, c); got != 1*3*5+2*4*6 {
		t.Fatalf("Dot3 = %v", got)
	}
}

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	want := []float32{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestAxpyMul(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	y := []float32{0, 0}
	AxpyMul(2, a, b, y)
	if y[0] != 6 || y[1] != 16 {
		t.Fatalf("AxpyMul = %v", y)
	}
}

func TestScaleAddCopyZeroFill(t *testing.T) {
	x := []float32{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scale = %v", x)
	}
	y := []float32{1, 1}
	Add(x, y)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("Add = %v", y)
	}
	dst := make([]float32, 2)
	Copy(dst, y)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Copy = %v", dst)
	}
	Zero(dst)
	if !IsZero(dst) {
		t.Fatalf("Zero left %v", dst)
	}
	Fill(dst, 9)
	if dst[0] != 9 || dst[1] != 9 {
		t.Fatalf("Fill = %v", dst)
	}
}

func TestNrm2(t *testing.T) {
	x := []float32{3, 4}
	if got := Nrm2(x); got != 5 {
		t.Fatalf("Nrm2 = %v", got)
	}
	if got := Nrm2Sq(x); got != 25 {
		t.Fatalf("Nrm2Sq = %v", got)
	}
	if Nrm2(nil) != 0 {
		t.Fatal("Nrm2(nil) != 0")
	}
}

func TestAbsMaxMean(t *testing.T) {
	x := []float32{-7, 3, 5, -2}
	if got := AbsMax(x); got != 7 {
		t.Fatalf("AbsMax = %v", got)
	}
	if got := AbsMean(x); !almostEq(float64(got), 17.0/4, 1e-6) {
		t.Fatalf("AbsMean = %v", got)
	}
	if AbsMax(nil) != 0 || AbsMean(nil) != 0 {
		t.Fatal("empty-slice AbsMax/AbsMean not 0")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero([]float32{0, 0, 0}) {
		t.Fatal("IsZero false for zeros")
	}
	if IsZero([]float32{0, 1e-30, 0}) {
		t.Fatal("IsZero true for non-zeros")
	}
	if !IsZero(nil) {
		t.Fatal("IsZero(nil) false")
	}
}

func TestMatrixRows(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad matrix shape %+v", m)
	}
	r := m.Row(1)
	r[0] = 42
	if m.Data[4] != 42 {
		t.Fatal("Row is not a view into backing data")
	}
	if m.Bytes() != 48 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMatrixRowPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, idx := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Row(%d) did not panic", idx)
				}
			}()
			m.Row(idx)
		}()
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Data[3] = 5
	c := m.Clone()
	c.Data[3] = 7
	if m.Data[3] != 5 {
		t.Fatal("Clone shares backing data")
	}
}

func TestMatrixNonZeroRows(t *testing.T) {
	m := NewMatrix(4, 3)
	m.Row(1)[2] = 1
	m.Row(3)[0] = -1
	if got := m.NonZeroRows(); got != 2 {
		t.Fatalf("NonZeroRows = %d", got)
	}
	m.ZeroAll()
	if got := m.NonZeroRows(); got != 0 {
		t.Fatalf("NonZeroRows after ZeroAll = %d", got)
	}
}

func TestRandomizeNormal(t *testing.T) {
	r := xrand.New(3)
	m := NewMatrix(100, 50)
	m.RandomizeNormal(0.1, r.NormFloat64)
	var sum, sumSq float64
	for _, v := range m.Data {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(m.Data))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean %v not near 0", mean)
	}
	if math.Abs(std-0.1) > 0.01 {
		t.Fatalf("std %v not near 0.1", std)
	}
}

// Property: Dot is symmetric and Nrm2Sq(x) == Dot(x, x).
func TestQuickDotProperties(t *testing.T) {
	f := func(raw []float32) bool {
		// Keep values finite and modest to avoid float blowup.
		x := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			x[i] = float32(math.Mod(float64(v), 100))
		}
		y := make([]float32, len(x))
		for i := range y {
			y[i] = x[len(x)-1-i]
		}
		if Dot(x, y) != Dot(y, x) {
			return false
		}
		return almostEq(float64(Nrm2Sq(x)), float64(Dot(x, x)), 1e-3*float64(len(x)+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Axpy with alpha=0 leaves y unchanged; with x=0 likewise.
func TestQuickAxpyIdentity(t *testing.T) {
	f := func(raw []float32) bool {
		y := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			y[i] = v
		}
		x := make([]float32, len(y))
		before := make([]float32, len(y))
		copy(before, y)
		Axpy(0, y, y)      // alpha 0: no-op? y += 0*y
		Axpy(1, x, y)      // zero x: no-op
		for i := range y { // compare
			if y[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(i) * 0.5
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkAxpy128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.01, x, y)
	}
}
