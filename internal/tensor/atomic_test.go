package tensor

import (
	"sync"
	"testing"
)

func TestAtomicLoadStoreRoundTrip(t *testing.T) {
	x := make([]float32, 4)
	for i, v := range []float32{0, -1.5, 3.25e7, -0} {
		AtomicStore(x, i, v)
		if got := AtomicLoad(x, i); got != v { //kgelint:ignore floateq bit-pattern round trip is exact
			t.Fatalf("elem %d: stored %v loaded %v", i, v, got)
		}
	}
}

func TestAtomicCompareAndSwap(t *testing.T) {
	x := []float32{2.5}
	if AtomicCompareAndSwap(x, 0, 3, 9) {
		t.Fatal("CAS succeeded against wrong old value")
	}
	if !AtomicCompareAndSwap(x, 0, 2.5, 9) {
		t.Fatal("CAS failed against matching old value")
	}
	if x[0] != 9 { //kgelint:ignore floateq CAS result is exact
		t.Fatalf("x[0] = %v after CAS", x[0])
	}
}

// TestAtomicAddConcurrent is the lost-update test: G writers each add 1 to
// the same element K times. A plain read-modify-write loses increments under
// contention; the CAS loop must account for every single one. All counts
// stay far below 2^24 so float32 addition is exact.
func TestAtomicAddConcurrent(t *testing.T) {
	const g = 8
	k := 20000
	if testing.Short() {
		k = 4000
	}
	x := make([]float32, 3) // neighbors guard against out-of-bounds writes
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < k; i++ {
				AtomicAdd(x, 1, 1)
			}
		}()
	}
	wg.Wait()
	if want := float32(g * k); x[1] != want { //kgelint:ignore floateq small-integer float sums are exact
		t.Fatalf("lost updates: got %v want %v", x[1], want)
	}
	if x[0] != 0 || x[2] != 0 { //kgelint:ignore floateq untouched neighbors stay exactly zero
		t.Fatalf("neighbors clobbered: %v", x)
	}
}

// TestAtomicRowAxpyConcurrentWriters hammers one shared row with concurrent
// axpy updates — the exact access pattern of the hogwild SGD step — and
// checks that no element update was lost.
func TestAtomicRowAxpyConcurrentWriters(t *testing.T) {
	const g, cols = 6, 16
	k := 5000
	if testing.Short() {
		k = 1000
	}
	m := NewMatrix(3, cols)
	grad := make([]float32, cols)
	for j := range grad {
		grad[j] = float32(j%3) - 1 // mix of -1, 0, +1 per column
	}
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < k; i++ {
				m.AtomicRowAxpy(1, 2, grad)
			}
		}()
	}
	wg.Wait()
	row := m.Row(1)
	for j := range row {
		want := 2 * grad[j] * float32(g*k)
		if row[j] != want { //kgelint:ignore floateq small-integer float sums are exact
			t.Fatalf("col %d: got %v want %v", j, row[j], want)
		}
	}
	for _, j := range []int{0, 2} {
		for _, v := range m.Row(j) {
			if v != 0 { //kgelint:ignore floateq untouched rows stay exactly zero
				t.Fatalf("row %d clobbered", j)
			}
		}
	}
}

// TestAtomicRowLoadUnderConcurrentStores checks that snapshots taken while
// another goroutine rewrites the row always observe element values some
// writer actually stored — never torn or stale-garbage words.
func TestAtomicRowLoadUnderConcurrentStores(t *testing.T) {
	const cols = 8
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	m := NewMatrix(1, cols)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := make([]float32, cols)
		for v := float32(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range src {
				src[j] = v
			}
			m.AtomicRowStore(0, src)
		}
	}()
	dst := make([]float32, cols)
	for i := 0; i < iters; i++ {
		m.AtomicRowLoad(0, dst)
		for j, v := range dst {
			if v != float32(int(v)) || v < 0 { //kgelint:ignore floateq written values are exact whole numbers
				t.Fatalf("iter %d col %d: observed value %v never written", i, j, v)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestAtomicRowBoundsChecks(t *testing.T) {
	m := NewMatrix(2, 4)
	buf := make([]float32, 4)
	for name, fn := range map[string]func(){
		"load row":   func() { m.AtomicRowLoad(2, buf) },
		"store row":  func() { m.AtomicRowStore(-1, buf) },
		"axpy row":   func() { m.AtomicRowAxpy(5, 1, buf) },
		"load width": func() { m.AtomicRowLoad(0, buf[:2]) },
		"axpy width": func() { m.AtomicRowAxpy(0, 1, buf[:3]) },
		"copy len":   func() { AtomicCopy(buf[:2], buf) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAtomicCopy(t *testing.T) {
	src := []float32{1, -2, 3.5}
	dst := make([]float32, 3)
	AtomicCopy(dst, src)
	for i := range src {
		if dst[i] != src[i] { //kgelint:ignore floateq copy is bit-exact
			t.Fatalf("dst = %v", dst)
		}
	}
}
