package mpi

import "kgedist/internal/pool"

// This file carries the alternative collective algorithms used by the
// DESIGN.md §5 ablations: recursive-doubling all-reduce (latency-optimal for
// small payloads, vs the bandwidth-optimal ring) and a Bruck-style
// concatenating all-gather.

// AllReduceSumRD sums buf across ranks with recursive doubling: in round k,
// rank r exchanges its full buffer with rank r XOR 2^k and both add. It
// takes ceil(log2 P) rounds but moves the whole buffer each round, so it
// wins on latency for small payloads and loses on bandwidth for large ones
// — the opposite trade-off to AllReduceSum's ring.
//
// For non-power-of-two worlds the standard pre/post folding is applied:
// the first P-2^m ranks fold into partners, the power-of-two core runs
// recursive doubling, and the result is copied back out. buf is
// caller-owned; exchange staging copies are pooled as in AllReduceSum.
//
//kgelint:hotpath
func (c *Comm) AllReduceSumRD(buf []float32, tag string) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	p := c.w.p
	n := len(buf)
	cost, moved, msgs := c.w.cluster.RecursiveDoublingAllReduceCost(int64(4 * n))
	if p > 1 && n > 0 {
		m := 1
		for m*2 <= p {
			m *= 2
		}
		rem := p - m // ranks beyond the power-of-two core
		r := c.rank

		// Pre-fold: ranks [m, p) send their buffer to r-m, which adds.
		inCore := true
		if r >= m {
			out := pool.GetF32Uninit(n)
			copy(out, buf)
			if err := c.send(r-m, message{F32: out}); err != nil {
				return 0, err
			}
			inCore = false
		} else if r < rem {
			msg, err := c.recv(r + m)
			if err != nil {
				return 0, err
			}
			for i, v := range msg.F32 {
				buf[i] += v
			}
			pool.PutF32(msg.F32)
		}

		if inCore {
			for k := 1; k < m; k <<= 1 {
				partner := r ^ k
				out := pool.GetF32Uninit(n)
				copy(out, buf)
				if err := c.send(partner, message{F32: out}); err != nil {
					return 0, err
				}
				msg, err := c.recv(partner)
				if err != nil {
					return 0, err
				}
				for i, v := range msg.F32 {
					buf[i] += v
				}
				pool.PutF32(msg.F32)
			}
		}

		// Post-fold: core ranks send the final result back out.
		if r < rem {
			out := pool.GetF32Uninit(n)
			copy(out, buf)
			if err := c.send(r+m, message{F32: out}); err != nil {
				return 0, err
			}
		} else if r >= m {
			msg, err := c.recv(r - m)
			if err != nil {
				return 0, err
			}
			copy(buf, msg.F32)
			pool.PutF32(msg.F32)
		}
	}
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return 0, err
	}
	return cost, nil
}

// AllGatherBytesBruck gathers one byte payload per rank using Bruck's
// algorithm: in round k each rank sends everything it has accumulated to
// rank r-2^k and receives from r+2^k, doubling the accumulated set each
// round — ceil(log2 P) rounds instead of the ring's P-1, at the price of
// retransmitting accumulated data. Returns payloads indexed by source rank
// plus the virtual cost.
func (c *Comm) AllGatherBytesBruck(payload []byte, tag string) ([][]byte, float64, error) {
	if err := c.enter(); err != nil {
		return nil, 0, err
	}
	p := c.w.p
	out := make([][]byte, p)
	out[c.rank] = payload
	if p > 1 {
		// have[i] is the payload of source (rank+i) mod p, filling in order.
		have := make([][]byte, p)
		have[0] = payload
		count := 1
		for k := 1; count < p; k <<= 1 {
			dst := (c.rank - k + p) % p
			src := (c.rank + k) % p
			send := count
			if count+send > p {
				send = p - count
			}
			// Concatenate blocks [0, send) with a length prefix per block.
			var flat []byte
			for i := 0; i < send; i++ {
				b := have[i]
				flat = append(flat, byte(len(b)), byte(len(b)>>8), byte(len(b)>>16), byte(len(b)>>24))
				flat = append(flat, b...)
			}
			if err := c.send(dst, message{Raw: flat}); err != nil {
				return nil, 0, err
			}
			msg, err := c.recv(src)
			if err != nil {
				return nil, 0, err
			}
			// Unpack into have[count...].
			off := 0
			for i := 0; i < send; i++ {
				if off+4 > len(msg.Raw) {
					panic("mpi: Bruck allgather framing error")
				}
				l := int(msg.Raw[off]) | int(msg.Raw[off+1])<<8 | int(msg.Raw[off+2])<<16 | int(msg.Raw[off+3])<<24
				off += 4
				have[count+i] = msg.Raw[off : off+l]
				off += l
			}
			count += send
		}
		for i := 0; i < p; i++ {
			out[(c.rank+i)%p] = have[i]
		}
	}
	sizes := make([]int64, p)
	for i, b := range out {
		sizes[i] = int64(len(b))
	}
	cost, moved, msgs := c.w.cluster.BruckAllGatherCost(sizes)
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return nil, 0, err
	}
	return out, cost, nil
}
