package mpi

import (
	"testing"

	"kgedist/internal/grad"
	"kgedist/internal/simnet"
)

// Collective micro-benchmarks. Each iteration runs a full World.Run (which
// costs goroutine spawns), so allocs/op is not zero here — the assertion
// that the per-round staging path is pooled lives in the alloc tests; these
// track the end-to-end cost and total garbage of one collective.

func benchWorld(p int) *World {
	return NewWorld(simnet.NewCluster(p, simnet.XC40Params()))
}

func BenchmarkAllReduceSum(b *testing.B) {
	const p, n = 4, 4096
	w := benchWorld(p)
	bufs := make([][]float32, p)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	b.ReportAllocs()
	b.SetBytes(4 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			if _, err := c.AllReduceSum(bufs[c.Rank()], "bench"); err != nil {
				b.Error(err)
			}
		})
	}
}

func BenchmarkAllReduceSumRD(b *testing.B) {
	const p, n = 4, 4096
	w := benchWorld(p)
	bufs := make([][]float32, p)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	b.ReportAllocs()
	b.SetBytes(4 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			if _, err := c.AllReduceSumRD(bufs[c.Rank()], "bench"); err != nil {
				b.Error(err)
			}
		})
	}
}

func BenchmarkBroadcast(b *testing.B) {
	const p, n = 4, 4096
	w := benchWorld(p)
	bufs := make([][]float32, p)
	for r := range bufs {
		bufs[r] = make([]float32, n)
	}
	b.ReportAllocs()
	b.SetBytes(4 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			if _, err := c.Broadcast(bufs[c.Rank()], 0); err != nil {
				b.Error(err)
			}
		})
	}
}

// The sparse exchange: payloads are freshly allocated inside the loop by
// contract (all-gather transfers ownership to the world), so this tracks
// the unavoidable wire-garbage floor of the all-gather path.
func BenchmarkAllGatherBytes(b *testing.B) {
	const p, n = 4, 2048
	w := benchWorld(p)
	b.ReportAllocs()
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			payload := make([]byte, n)
			if _, _, err := c.AllGatherBytes(payload, "bench"); err != nil {
				b.Error(err)
			}
		})
	}
}

// The compressed ring reduce-scatter (DESIGN.md §13) at the golden scenario's
// world size, batch-shaped encoded frames with partial row overlap.
func BenchmarkReduceScatterEncoded(b *testing.B) {
	const p, rows, width = 3, 256, 32
	encs := make([]*grad.Encoded, p)
	for r := 0; r < p; r++ {
		encs[r], _ = encGrad(r, rows, width, grad.OneBitMax, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := newWorld(p)
		w.Run(func(c *Comm) {
			var mg grad.Merger
			if _, _, err := c.ReduceScatterEncoded(encs[c.Rank()], rows, &mg, nil, "rse"); err != nil {
				b.Error(err)
			}
		})
	}
}
