// Package mpi implements the message-passing substrate the paper obtains
// from Horovod/MPI: a fixed world of ranks with synchronous collectives.
//
// The collectives are the textbook algorithms (ring reduce-scatter +
// all-gather for AllReduceSum, ring block rotation for the variable-size
// all-gathers, binomial trees for broadcast and scalar reductions), written
// against the transport.Endpoint interface so the same code runs over two
// fabrics: the in-process channel backend (internal/transport/chantransport
// — each rank a goroutine, the deterministic simulation substrate) and the
// multi-process TCP backend (internal/transport/tcptransport — each rank a
// real OS process surviving real connection failures). Timing is charged to
// the attached simnet.Cluster using the standard cost formula for each
// algorithm, with the exact byte volume the operation moved. Every
// collective returns the virtual seconds it cost, which the dynamic
// selection strategy (paper §4.1) uses to compare all-reduce against
// all-gather probes.
//
// All collectives are globally synchronizing: they end with a rendezvous so
// per-rank virtual clocks are identical on return, matching the
// bulk-synchronous training loop of the paper.
//
// Collectives are fallible: a dead rank (scheduled crash fault, receive
// deadline expiry, rank panic, or — over TCP — a real connection loss)
// surfaces as a *RankFailedError on every survivor rather than a deadlock or
// a panic — see fault.go for the failure model and World.Shrink for
// recovery.
//
// # Buffer ownership
//
// Two disciplines keep the hot path allocation-free without data races
// (DESIGN.md §10). Point-to-point staging copies inside the dense
// collectives (AllReduceSum, ReduceScatterSum, Broadcast, AllReduceSumRD)
// are recycled through internal/pool: the sender gets a buffer, exactly one
// receiver consumes it and puts it back. All-gather payloads
// (AllGatherRows, AllGatherBytes, Gather, Scatter) are the opposite: the
// ring rotation shares one backing array with every rank, so the payload
// ownership transfers to the world — callers must pass freshly allocated
// slices and treat the returned ones as immutable. (The TCP backend
// serializes payloads onto the wire, so received slices there are always
// fresh; the contract is set by the zero-copy channel backend.)
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"kgedist/internal/pool"
	"kgedist/internal/simnet"
	"kgedist/internal/transport"
	"kgedist/internal/transport/chantransport"
)

// message is the unit carried by point-to-point links. Exactly one payload
// field is populated per message; Seq guards against collective skew bugs.
type message = transport.Message

// World is a communicator world of P ranks sharing a simnet cluster. A
// channel world hosts every rank in this process (one goroutine each); a
// process world (NewProcessWorld) hosts exactly one rank and reaches its
// peers through a multi-process transport endpoint.
type World struct {
	p           int
	cluster     *simnet.Cluster
	eps         []transport.Endpoint // indexed by rank; nil for remote ranks
	local       []int                // ranks hosted in this process, ascending
	proc        bool                 // true for a process world
	seq         []uint64             // per-rank collective sequence number
	recvTimeout time.Duration
}

// NewWorld builds an in-process world with one rank per cluster node over
// the channel transport.
func NewWorld(cluster *simnet.Cluster) *World {
	p := cluster.P()
	hub := chantransport.New(p)
	eps := make([]transport.Endpoint, p)
	local := make([]int, p)
	for r := 0; r < p; r++ {
		eps[r] = hub.Endpoint(r)
		local[r] = r
	}
	return &World{
		p:           p,
		cluster:     cluster,
		eps:         eps,
		local:       local,
		seq:         make([]uint64, p),
		recvTimeout: DefaultRecvTimeout,
	}
}

// NewProcessWorld builds a world hosting the single rank ep.Rank() of a
// multi-process job. The cluster is this process's private copy of the
// timing model: every process charges the same deterministic collective
// costs to its own clocks, so virtual time stays identical across processes
// without any extra communication.
func NewProcessWorld(cluster *simnet.Cluster, ep transport.Endpoint) (*World, error) {
	p := cluster.P()
	if ep.Size() != p {
		return nil, fmt.Errorf("mpi: endpoint world size %d != cluster size %d", ep.Size(), p)
	}
	eps := make([]transport.Endpoint, p)
	eps[ep.Rank()] = ep
	return &World{
		p:           p,
		cluster:     cluster,
		eps:         eps,
		local:       []int{ep.Rank()},
		proc:        true,
		seq:         make([]uint64, p),
		recvTimeout: DefaultRecvTimeout,
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Cluster returns the attached timing model.
func (w *World) Cluster() *simnet.Cluster { return w.cluster }

// LocalRanks returns the ranks hosted in this process: every rank for a
// channel world, exactly one for a process world.
func (w *World) LocalRanks() []int { return w.local }

// Process reports whether this is a process world (one rank per OS process).
func (w *World) Process() bool { return w.proc }

// Close releases the transport endpoint's resources. Required for process
// worlds (TCP connections, goroutines); a no-op for channel worlds.
func (w *World) Close() error { return w.anyEp().Close() }

// anyEp returns an endpoint hosted by this process (all endpoints share the
// world's failure state, so any one answers global questions).
func (w *World) anyEp() transport.Endpoint { return w.eps[w.local[0]] }

// Comm returns the communicator handle for one rank, which must be hosted
// in this process.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.p {
		panic("mpi: rank out of range")
	}
	if w.eps[rank] == nil {
		panic(fmt.Sprintf("mpi: rank %d is not hosted in this process", rank))
	}
	return &Comm{w: w, rank: rank, ep: w.eps[rank]}
}

// failRank declares rank dead: the abort trips and every blocked or future
// operation on every live rank returns a *RankFailedError.
func (w *World) failRank(rank int) {
	w.anyEp().FailRank(rank)
}

// err returns the failure verdict for the current dead set, or nil.
func (w *World) err() error { return w.anyEp().Err() }

// rankPanic captures one rank's panic with its stack for aggregated
// reporting.
type rankPanic struct {
	rank  int
	val   any
	stack []byte
}

// Run spawns one goroutine per local rank executing f and waits for all of
// them. Panics inside rank bodies are re-raised on the caller in one
// combined panic that reports every panicked rank with its original stack
// trace. A collective failure (dead rank) in an error-blind body also
// panics; bodies that want to handle failures use RunErr.
func (w *World) Run(f func(c *Comm)) {
	if err := w.RunErr(func(c *Comm) error { f(c); return nil }); err != nil {
		panic(err)
	}
}

// RunErr spawns one goroutine per local rank executing f and waits for all
// of them. If any rank died (crash fault, receive timeout, connection loss,
// or panic of a peer), it returns a single *RankFailedError naming every
// dead rank; otherwise it returns the joined non-nil errors of the rank
// bodies. Panics are still re-raised, aggregated across ranks with their
// stacks.
func (w *World) RunErr(f func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.local))
	panics := make([]*rankPanic, len(w.local))
	for i, r := range w.local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = &rankPanic{rank: rank, val: p, stack: debug.Stack()}
					// A panicked rank is dead to its peers: abort so the
					// survivors return errors instead of hanging at the
					// next rendezvous.
					w.failRank(rank)
				}
			}()
			errs[i] = f(w.Comm(rank))
		}(i, r)
	}
	wg.Wait()
	var panicked []*rankPanic
	for _, p := range panics {
		if p != nil {
			panicked = append(panicked, p)
		}
	}
	if len(panicked) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "mpi: %d rank(s) panicked", len(panicked))
		for _, p := range panicked {
			fmt.Fprintf(&b, "\n\nmpi: rank %d panicked: %v\n%s", p.rank, p.val, p.stack)
		}
		panic(b.String())
	}
	if err := w.err(); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// Comm is one rank's handle on the world. All collective methods must be
// called by every rank in the same order; they block until the operation
// completes globally or a failure aborts it, in which case they return a
// *RankFailedError.
type Comm struct {
	w    *World
	rank int
	ep   transport.Endpoint
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.p }

// Cluster exposes the timing model (for compute-time charging).
func (c *Comm) Cluster() *simnet.Cluster { return c.w.cluster }

// enter opens a collective: the deterministic point where this rank's
// scheduled crash fault (if due by its virtual clock) fires, and where an
// already-failed world is refused.
func (c *Comm) enter() error {
	if c.w.cluster.CrashDue(c.rank) {
		c.w.failRank(c.rank)
	}
	return c.w.err()
}

// send transfers ownership of any pooled buffers inside m to the receiving
// rank: the single receiver consumes the payload and Puts it (DESIGN §10's
// single-receiver protocol). The sender must not touch or Put them after.
//
//kgelint:transfer
func (c *Comm) send(dst int, m message) error {
	m.Seq = c.w.seq[c.rank]
	return c.ep.Send(dst, m)
}

func (c *Comm) recv(src int) (message, error) {
	m, err := c.ep.Recv(src, c.w.recvTimeout)
	if err != nil {
		if errors.Is(err, transport.ErrRecvTimeout) {
			// Watchdog: the peer went silent past the deadline. Declare it
			// dead so every rank unblocks with the same verdict.
			c.w.failRank(src)
			return message{}, c.w.err()
		}
		if ferr := c.w.err(); ferr != nil {
			return message{}, ferr
		}
		return message{}, err
	}
	if m.Seq != c.w.seq[c.rank] {
		panic(fmt.Sprintf("mpi: rank %d received message from %d with seq %d during collective %d",
			c.rank, src, m.Seq, c.w.seq[c.rank]))
	}
	return m, nil
}

// finish closes a collective: rendezvous, charge cost once per process, bump
// this rank's sequence counter. The rendezvous hook runs after every rank
// has arrived and before any local rank is released, so the cluster clocks
// advance exactly once per collective per process (in a channel world that
// is once per world; in a process world each process charges its private
// cluster copy identically).
func (c *Comm) finish(cost float64, moved, msgs int64, tag string) error {
	lift := 0.0
	if c.w.proc {
		// A process world only accumulates this rank's compute on its
		// private cluster copy, so the collective's starting point — the
		// cluster-wide clock maximum — must be agreed over the wire.
		// Without this the makespan (and everything derived from it, like
		// per-epoch virtual seconds) silently drops every remote rank's
		// compute time. The channel world needs nothing: all ranks charge
		// one shared cluster.
		g, err := c.maxClock()
		if err != nil {
			if ferr := c.w.err(); ferr != nil {
				return ferr
			}
			return err
		}
		lift = g
	}
	err := c.ep.Rendezvous(func() {
		if c.w.proc {
			c.w.cluster.LiftClock(c.rank, lift)
		}
		c.w.cluster.Collective(cost, moved, msgs, tag)
	})
	if err != nil {
		if ferr := c.w.err(); ferr != nil {
			return ferr
		}
		return err
	}
	c.w.seq[c.rank]++
	return nil
}

// maxClock agrees on the cluster-wide virtual-clock maximum across the
// processes of a process world: a binomial max-reduce of each process's own
// rank clock to rank 0, then a binomial broadcast back. It runs inside a
// collective (after enter, before finish's rendezvous), reusing the
// collective's sequence number; the exchange itself is bookkeeping and
// charges no virtual time.
func (c *Comm) maxClock() (float64, error) {
	result := c.w.cluster.Time(c.rank)
	p := c.w.p
	if p == 1 {
		return result, nil
	}
	vr := c.rank
	for k := 1; k < p; k <<= 1 {
		if vr&k != 0 {
			if err := c.send(vr^k, message{F64: result}); err != nil {
				return 0, err
			}
			break
		} else if vr|k < p {
			m, err := c.recv(vr | k)
			if err != nil {
				return 0, err
			}
			if m.F64 > result {
				result = m.F64
			}
		}
	}
	received := c.rank == 0
	for k := 1; k < 2*p; k <<= 1 {
		if c.rank < k && c.rank+k < p {
			if !received {
				panic("mpi: clock broadcast order violated")
			}
			if err := c.send(c.rank+k, message{F64: result}); err != nil {
				return 0, err
			}
		} else if c.rank >= k && c.rank < 2*k {
			m, err := c.recv(c.rank - k)
			if err != nil {
				return 0, err
			}
			result = m.F64
			received = true
		}
	}
	return result, nil
}

// Barrier synchronizes all ranks (dissemination-cost charge).
func (c *Comm) Barrier() error {
	if err := c.enter(); err != nil {
		return err
	}
	cost, moved, msgs := c.w.cluster.BarrierCost()
	return c.finish(cost, moved, msgs, "barrier")
}

// Broadcast sends root's buf to every rank's buf via a binomial tree.
// Returns the virtual cost of the operation. buf is caller-owned and fully
// overwritten on non-root ranks; staging copies travel through the pool
// (sender gets, the single receiver consumes and puts), so the steady-state
// exchange allocates nothing.
//
//kgelint:hotpath
func (c *Comm) Broadcast(buf []float32, root int) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	p := c.w.p
	cost, moved, msgs := c.w.cluster.BroadcastCost(int64(4 * len(buf)))
	if p > 1 {
		// Rotate ranks so the root is virtual rank 0.
		vr := (c.rank - root + p) % p
		// Binomial tree: in round k, ranks with vr < 2^k send to vr + 2^k.
		received := vr == 0
		for k := 1; k < 2*p; k <<= 1 {
			if vr < k && vr+k < p {
				if !received {
					panic("mpi: broadcast tree order violated")
				}
				dst := (vr + k + root) % p
				out := pool.GetF32Uninit(len(buf))
				copy(out, buf)
				if err := c.send(dst, message{F32: out}); err != nil {
					return 0, err
				}
			} else if vr >= k && vr < 2*k {
				src := (vr - k + root) % p
				m, err := c.recv(src)
				if err != nil {
					return 0, err
				}
				copy(buf, m.F32)
				pool.PutF32(m.F32)
				received = true
			}
		}
	}
	if err := c.finish(cost, moved, msgs, "broadcast"); err != nil {
		return 0, err
	}
	return cost, nil
}

// AllReduceSum sums buf element-wise across all ranks, leaving the result in
// every rank's buf. Implemented as ring reduce-scatter followed by ring
// all-gather — the dense "all-reduce" path of the paper's baseline. All
// ranks must pass equal-length buffers. Returns the virtual cost. On
// failure, buf is left in an unspecified partially-reduced state.
//
// buf is caller-owned and never retained. Ring staging copies are recycled
// through the pool: the sender stages into a pooled buffer, the single
// receiving rank folds it into its chunk and releases it, so the per-round
// exchange is allocation-free after warm-up.
//
//kgelint:hotpath
func (c *Comm) AllReduceSum(buf []float32, tag string) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	p := c.w.p
	n := len(buf)
	cost, moved, msgs := c.w.cluster.RingAllReduceCost(int64(4 * n))
	if p > 1 && n > 0 {
		r := c.rank
		// Chunk i covers [i*n/p, (i+1)*n/p) — computed arithmetically so the
		// boundaries need no per-call slice.
		chunk := func(i int) []float32 { return buf[i*n/p : (i+1)*n/p] }
		right := (r + 1) % p
		left := (r - 1 + p) % p
		// Phase 1: reduce-scatter. After step s, each rank has accumulated
		// s+2 partial contributions in one chunk.
		for s := 0; s < p-1; s++ {
			sendIdx := ((r-s)%p + p) % p
			recvIdx := ((r-s-1)%p + p) % p
			src := chunk(sendIdx)
			out := pool.GetF32Uninit(len(src))
			copy(out, src)
			if err := c.send(right, message{F32: out}); err != nil {
				return 0, err
			}
			m, err := c.recv(left)
			if err != nil {
				return 0, err
			}
			dst := chunk(recvIdx)
			for i, v := range m.F32 {
				dst[i] += v
			}
			pool.PutF32(m.F32)
		}
		// Phase 2: all-gather the reduced chunks.
		for s := 0; s < p-1; s++ {
			sendIdx := ((r+1-s)%p + p) % p
			recvIdx := ((r-s)%p + p) % p
			src := chunk(sendIdx)
			out := pool.GetF32Uninit(len(src))
			copy(out, src)
			if err := c.send(right, message{F32: out}); err != nil {
				return 0, err
			}
			m, err := c.recv(left)
			if err != nil {
				return 0, err
			}
			copy(chunk(recvIdx), m.F32)
			pool.PutF32(m.F32)
		}
	}
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return 0, err
	}
	return cost, nil
}

// block is one rank's contribution to a variable-size all-gather.
type block struct {
	i32 []int32
	f32 []float32
	raw []byte
}

func (b block) bytes() int64 {
	return int64(4*len(b.i32) + 4*len(b.f32) + len(b.raw))
}

// ringAllGather rotates each rank's block around the ring so every rank ends
// with all P blocks, indexed by source rank.
func (c *Comm) ringAllGather(own block) ([]block, error) {
	p := c.w.p
	out := make([]block, p)
	out[c.rank] = own
	if p == 1 {
		return out, nil
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := own
	curSrc := c.rank
	for s := 0; s < p-1; s++ {
		if err := c.send(right, message{I32: cur.i32, F32: cur.f32, Raw: cur.raw}); err != nil {
			return nil, err
		}
		m, err := c.recv(left)
		if err != nil {
			return nil, err
		}
		curSrc = (curSrc - 1 + p) % p
		cur = block{i32: m.I32, f32: m.F32, raw: m.Raw}
		out[curSrc] = cur
	}
	return out, nil
}

// AllGatherRows gathers sparse gradient rows: each rank contributes row
// indices and a flat values buffer (len(idx)*dim values). Every rank
// receives all contributions, indexed by source rank. This is the paper's
// "all-gather" (sparse) exchange. Returns the virtual cost.
//
// Ownership: calling this transfers idx and vals to the world — the ring
// rotation hands the same backing arrays to every rank, and peers may still
// be reading them after this rank returns. The caller must pass freshly
// allocated slices (never pooled or recycled scratch) and must not mutate
// them afterwards. The returned per-source slices follow the same rule:
// read-only, shared with all other ranks.
func (c *Comm) AllGatherRows(idx []int32, vals []float32, tag string) (allIdx [][]int32, allVals [][]float32, cost float64, err error) {
	if err := c.enter(); err != nil {
		return nil, nil, 0, err
	}
	blocks, err := c.ringAllGather(block{i32: idx, f32: vals})
	if err != nil {
		return nil, nil, 0, err
	}
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.bytes()
	}
	cost, moved, msgs := c.w.cluster.AllGatherVCost(sizes)
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return nil, nil, 0, err
	}
	allIdx = make([][]int32, len(blocks))
	allVals = make([][]float32, len(blocks))
	for i, b := range blocks {
		allIdx[i] = b.i32
		allVals[i] = b.f32
	}
	return allIdx, allVals, cost, nil
}

// AllGatherBytes gathers one opaque byte payload per rank (used for
// bit-packed quantized gradients). Returns per-source payloads and cost.
// Ownership follows AllGatherRows: payload transfers to the world and must
// be freshly allocated; the returned payloads are read-only and shared
// across ranks.
func (c *Comm) AllGatherBytes(payload []byte, tag string) ([][]byte, float64, error) {
	if err := c.enter(); err != nil {
		return nil, 0, err
	}
	blocks, err := c.ringAllGather(block{raw: payload})
	if err != nil {
		return nil, 0, err
	}
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.bytes()
	}
	cost, moved, msgs := c.w.cluster.AllGatherVCost(sizes)
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return nil, 0, err
	}
	out := make([][]byte, len(blocks))
	for i, b := range blocks {
		out[i] = b.raw
	}
	return out, cost, nil
}

// ReduceOp selects the combining function of AllReduceScalar.
type ReduceOp int

// Supported scalar reductions.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// AllReduceScalar reduces one float64 across ranks (binomial reduce to rank
// 0, then broadcast). Used for loss sums, validation metrics, and the
// dynamic-selection probe decisions. The returned value is only meaningful
// when err is nil.
func (c *Comm) AllReduceScalar(v float64, op ReduceOp) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	p := c.w.p
	result := v
	if p > 1 {
		// Binomial reduce to rank 0.
		vr := c.rank
		for k := 1; k < p; k <<= 1 {
			if vr&k != 0 {
				if err := c.send(vr^k, message{F64: result}); err != nil {
					return 0, err
				}
				break
			} else if vr|k < p {
				m, err := c.recv(vr | k)
				if err != nil {
					return 0, err
				}
				switch op {
				case OpSum:
					result += m.F64
				case OpMax:
					if m.F64 > result {
						result = m.F64
					}
				case OpMin:
					if m.F64 < result {
						result = m.F64
					}
				default:
					panic("mpi: unknown reduce op")
				}
			}
		}
		// Binomial broadcast from rank 0.
		received := c.rank == 0
		for k := 1; k < 2*p; k <<= 1 {
			if c.rank < k && c.rank+k < p {
				if !received {
					panic("mpi: scalar broadcast order violated")
				}
				if err := c.send(c.rank+k, message{F64: result}); err != nil {
					return 0, err
				}
			} else if c.rank >= k && c.rank < 2*k {
				m, err := c.recv(c.rank - k)
				if err != nil {
					return 0, err
				}
				result = m.F64
				received = true
			}
		}
	}
	cost, moved, msgs := c.w.cluster.BroadcastCost(8)
	if err := c.finish(2*cost, 2*moved, 2*msgs, "scalar"); err != nil {
		return 0, err
	}
	return result, nil
}
