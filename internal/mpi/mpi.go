// Package mpi implements the message-passing substrate the paper obtains
// from Horovod/MPI: a fixed world of ranks with synchronous collectives.
//
// Each rank is a goroutine; point-to-point links are FIFO Go channels that
// carry real payloads, and the collectives are the textbook algorithms (ring
// reduce-scatter + all-gather for AllReduceSum, ring block rotation for the
// variable-size all-gathers, binomial trees for broadcast and scalar
// reductions). Timing is charged to the attached simnet.Cluster using the
// standard cost formula for each algorithm, with the exact byte volume the
// operation moved. Every collective returns the virtual seconds it cost,
// which the dynamic selection strategy (paper §4.1) uses to compare
// all-reduce against all-gather probes.
//
// All collectives are globally synchronizing: they end with a rendezvous so
// per-rank virtual clocks are identical on return, matching the
// bulk-synchronous training loop of the paper.
package mpi

import (
	"fmt"
	"sync"

	"kgedist/internal/simnet"
)

// message is the unit carried by point-to-point links. Exactly one payload
// field is populated per message; seq guards against collective skew bugs.
type message struct {
	seq uint64
	f32 []float32
	i32 []int32
	raw []byte
	f64 float64
}

// phaser is a reusable barrier: all n participants arrive, the last one runs
// onLast, then everyone is released.
type phaser struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
}

func newPhaser(n int) *phaser {
	ph := &phaser{n: n}
	ph.cond = sync.NewCond(&ph.mu)
	return ph
}

func (ph *phaser) await(onLast func()) {
	ph.mu.Lock()
	gen := ph.gen
	ph.arrived++
	if ph.arrived == ph.n {
		if onLast != nil {
			onLast()
		}
		ph.arrived = 0
		ph.gen++
		ph.cond.Broadcast()
	} else {
		for ph.gen == gen {
			ph.cond.Wait()
		}
	}
	ph.mu.Unlock()
}

// World is a communicator world of P ranks sharing a simnet cluster.
type World struct {
	p       int
	cluster *simnet.Cluster
	links   [][]chan message // links[src][dst]
	ph      *phaser
	seq     []uint64 // per-rank collective sequence number
}

// NewWorld builds a world with one rank per cluster node.
func NewWorld(cluster *simnet.Cluster) *World {
	p := cluster.P()
	links := make([][]chan message, p)
	for s := range links {
		links[s] = make([]chan message, p)
		for d := range links[s] {
			if s != d {
				links[s][d] = make(chan message, 4*p+8)
			}
		}
	}
	return &World{
		p:       p,
		cluster: cluster,
		links:   links,
		ph:      newPhaser(p),
		seq:     make([]uint64, p),
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Cluster returns the attached timing model.
func (w *World) Cluster() *simnet.Cluster { return w.cluster }

// Comm returns the communicator handle for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.p {
		panic("mpi: rank out of range")
	}
	return &Comm{w: w, rank: rank}
}

// Run spawns one goroutine per rank executing f and waits for all of them.
// Panics inside rank bodies are re-raised on the caller.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.p)
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, p))
		}
	}
}

// Comm is one rank's handle on the world. All collective methods must be
// called by every rank in the same order; they block until the operation
// completes globally.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.p }

// Cluster exposes the timing model (for compute-time charging).
func (c *Comm) Cluster() *simnet.Cluster { return c.w.cluster }

func (c *Comm) send(dst int, m message) {
	m.seq = c.w.seq[c.rank]
	c.w.links[c.rank][dst] <- m
}

func (c *Comm) recv(src int) message {
	m := <-c.w.links[src][c.rank]
	if m.seq != c.w.seq[c.rank] {
		panic(fmt.Sprintf("mpi: rank %d received message from %d with seq %d during collective %d",
			c.rank, src, m.seq, c.w.seq[c.rank]))
	}
	return m
}

// finish closes a collective: rendezvous, charge cost once, bump sequence.
func (c *Comm) finish(cost float64, moved, msgs int64, tag string) {
	c.w.ph.await(func() {
		c.w.cluster.Collective(cost, moved, msgs, tag)
		for r := range c.w.seq {
			c.w.seq[r]++
		}
	})
}

// Barrier synchronizes all ranks (dissemination-cost charge).
func (c *Comm) Barrier() {
	cost, moved, msgs := c.w.cluster.BarrierCost()
	c.finish(cost, moved, msgs, "barrier")
}

// Broadcast sends root's buf to every rank's buf via a binomial tree.
// Returns the virtual cost of the operation.
func (c *Comm) Broadcast(buf []float32, root int) float64 {
	p := c.w.p
	cost, moved, msgs := c.w.cluster.BroadcastCost(int64(4 * len(buf)))
	if p > 1 {
		// Rotate ranks so the root is virtual rank 0.
		vr := (c.rank - root + p) % p
		// Binomial tree: in round k, ranks with vr < 2^k send to vr + 2^k.
		received := vr == 0
		for k := 1; k < 2*p; k <<= 1 {
			if vr < k && vr+k < p {
				if !received {
					panic("mpi: broadcast tree order violated")
				}
				dst := (vr + k + root) % p
				out := make([]float32, len(buf))
				copy(out, buf)
				c.send(dst, message{f32: out})
			} else if vr >= k && vr < 2*k {
				src := (vr - k + root) % p
				m := c.recv(src)
				copy(buf, m.f32)
				received = true
			}
		}
	}
	c.finish(cost, moved, msgs, "broadcast")
	return cost
}

// AllReduceSum sums buf element-wise across all ranks, leaving the result in
// every rank's buf. Implemented as ring reduce-scatter followed by ring
// all-gather — the dense "all-reduce" path of the paper's baseline. All
// ranks must pass equal-length buffers. Returns the virtual cost.
func (c *Comm) AllReduceSum(buf []float32, tag string) float64 {
	p := c.w.p
	n := len(buf)
	cost, moved, msgs := c.w.cluster.RingAllReduceCost(int64(4 * n))
	if p > 1 && n > 0 {
		r := c.rank
		// Chunk boundaries: chunk i covers [bound[i], bound[i+1]).
		bound := make([]int, p+1)
		for i := 0; i <= p; i++ {
			bound[i] = i * n / p
		}
		chunk := func(i int) []float32 { return buf[bound[i]:bound[i+1]] }
		right := (r + 1) % p
		left := (r - 1 + p) % p
		// Phase 1: reduce-scatter. After step s, each rank has accumulated
		// s+2 partial contributions in one chunk.
		for s := 0; s < p-1; s++ {
			sendIdx := ((r-s)%p + p) % p
			recvIdx := ((r-s-1)%p + p) % p
			out := make([]float32, len(chunk(sendIdx)))
			copy(out, chunk(sendIdx))
			c.send(right, message{f32: out})
			m := c.recv(left)
			dst := chunk(recvIdx)
			for i, v := range m.f32 {
				dst[i] += v
			}
		}
		// Phase 2: all-gather the reduced chunks.
		for s := 0; s < p-1; s++ {
			sendIdx := ((r+1-s)%p + p) % p
			recvIdx := ((r-s)%p + p) % p
			out := make([]float32, len(chunk(sendIdx)))
			copy(out, chunk(sendIdx))
			c.send(right, message{f32: out})
			m := c.recv(left)
			copy(chunk(recvIdx), m.f32)
		}
	}
	c.finish(cost, moved, msgs, tag)
	return cost
}

// block is one rank's contribution to a variable-size all-gather.
type block struct {
	i32 []int32
	f32 []float32
	raw []byte
}

func (b block) bytes() int64 {
	return int64(4*len(b.i32) + 4*len(b.f32) + len(b.raw))
}

// ringAllGather rotates each rank's block around the ring so every rank ends
// with all P blocks, indexed by source rank.
func (c *Comm) ringAllGather(own block) []block {
	p := c.w.p
	out := make([]block, p)
	out[c.rank] = own
	if p == 1 {
		return out
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := own
	curSrc := c.rank
	for s := 0; s < p-1; s++ {
		c.send(right, message{i32: cur.i32, f32: cur.f32, raw: cur.raw})
		m := c.recv(left)
		curSrc = (curSrc - 1 + p) % p
		cur = block{i32: m.i32, f32: m.f32, raw: m.raw}
		out[curSrc] = cur
	}
	return out
}

// AllGatherRows gathers sparse gradient rows: each rank contributes row
// indices and a flat values buffer (len(idx)*dim values). Every rank
// receives all contributions, indexed by source rank. This is the paper's
// "all-gather" (sparse) exchange. Returns the virtual cost.
func (c *Comm) AllGatherRows(idx []int32, vals []float32, tag string) (allIdx [][]int32, allVals [][]float32, cost float64) {
	blocks := c.ringAllGather(block{i32: idx, f32: vals})
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.bytes()
	}
	cost, moved, msgs := c.w.cluster.AllGatherVCost(sizes)
	c.finish(cost, moved, msgs, tag)
	allIdx = make([][]int32, len(blocks))
	allVals = make([][]float32, len(blocks))
	for i, b := range blocks {
		allIdx[i] = b.i32
		allVals[i] = b.f32
	}
	return allIdx, allVals, cost
}

// AllGatherBytes gathers one opaque byte payload per rank (used for
// bit-packed quantized gradients). Returns per-source payloads and cost.
func (c *Comm) AllGatherBytes(payload []byte, tag string) ([][]byte, float64) {
	blocks := c.ringAllGather(block{raw: payload})
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		sizes[i] = b.bytes()
	}
	cost, moved, msgs := c.w.cluster.AllGatherVCost(sizes)
	c.finish(cost, moved, msgs, tag)
	out := make([][]byte, len(blocks))
	for i, b := range blocks {
		out[i] = b.raw
	}
	return out, cost
}

// ReduceOp selects the combining function of AllReduceScalar.
type ReduceOp int

// Supported scalar reductions.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// AllReduceScalar reduces one float64 across ranks (binomial reduce to rank
// 0, then broadcast). Used for loss sums, validation metrics, and the
// dynamic-selection probe decisions.
func (c *Comm) AllReduceScalar(v float64, op ReduceOp) float64 {
	p := c.w.p
	result := v
	if p > 1 {
		// Binomial reduce to rank 0.
		vr := c.rank
		for k := 1; k < p; k <<= 1 {
			if vr&k != 0 {
				c.send(vr^k, message{f64: result})
				break
			} else if vr|k < p {
				m := c.recv(vr | k)
				switch op {
				case OpSum:
					result += m.f64
				case OpMax:
					if m.f64 > result {
						result = m.f64
					}
				case OpMin:
					if m.f64 < result {
						result = m.f64
					}
				default:
					panic("mpi: unknown reduce op")
				}
			}
		}
		// Binomial broadcast from rank 0.
		received := c.rank == 0
		for k := 1; k < 2*p; k <<= 1 {
			if c.rank < k && c.rank+k < p {
				if !received {
					panic("mpi: scalar broadcast order violated")
				}
				c.send(c.rank+k, message{f64: result})
			} else if c.rank >= k && c.rank < 2*k {
				m := c.recv(c.rank - k)
				result = m.f64
				received = true
			}
		}
	}
	cost, moved, msgs := c.w.cluster.BroadcastCost(8)
	c.finish(2*cost, 2*moved, 2*msgs, "scalar")
	return result
}
