package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

func TestAllReduceSumRDMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
		for _, n := range []int{0, 1, 17, 256} {
			w := newWorld(p)
			rng := xrand.New(uint64(31*p + n))
			inputs := make([][]float32, p)
			want := make([]float32, n)
			for r := range inputs {
				inputs[r] = make([]float32, n)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += inputs[r][i]
				}
			}
			results := make([][]float32, p)
			w.Run(func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				c.AllReduceSumRD(buf, "rd")
				results[c.Rank()] = buf
			})
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if math.Abs(float64(results[r][i]-want[i])) > 1e-4 {
						t.Fatalf("p=%d n=%d rank %d elem %d: got %v want %v",
							p, n, r, i, results[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestRDAgreesWithRing(t *testing.T) {
	p := 6 // non-power-of-two exercises the folding path
	wRing := newWorld(p)
	wRD := newWorld(p)
	n := 100
	mk := func() [][]float32 {
		rng := xrand.New(5)
		inputs := make([][]float32, p)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32()
			}
		}
		return inputs
	}
	ringIn, rdIn := mk(), mk()
	ringOut := make([][]float32, p)
	rdOut := make([][]float32, p)
	wRing.Run(func(c *Comm) {
		buf := append([]float32(nil), ringIn[c.Rank()]...)
		c.AllReduceSum(buf, "x")
		ringOut[c.Rank()] = buf
	})
	wRD.Run(func(c *Comm) {
		buf := append([]float32(nil), rdIn[c.Rank()]...)
		c.AllReduceSumRD(buf, "x")
		rdOut[c.Rank()] = buf
	})
	for r := 0; r < p; r++ {
		for i := 0; i < n; i++ {
			if math.Abs(float64(ringOut[r][i]-rdOut[r][i])) > 1e-4 {
				t.Fatalf("ring and RD disagree at rank %d elem %d", r, i)
			}
		}
	}
}

func TestRDCostTradeOff(t *testing.T) {
	// Latency-bound regime (tiny payload): RD must be cheaper than ring.
	par := simnet.Params{Alpha: 1e-3, Beta: 1e-9, FlopRate: 1}
	c16 := simnet.NewCluster(16, par)
	small := int64(64)
	ringCost, _, _ := c16.RingAllReduceCost(small)
	rdCost, _, _ := c16.RecursiveDoublingAllReduceCost(small)
	if rdCost >= ringCost {
		t.Fatalf("small payload: RD %v not cheaper than ring %v", rdCost, ringCost)
	}
	// Bandwidth-bound regime (large payload): ring must win.
	big := int64(64 << 20)
	ringCost, _, _ = c16.RingAllReduceCost(big)
	rdCost, _, _ = c16.RecursiveDoublingAllReduceCost(big)
	if ringCost >= rdCost {
		t.Fatalf("large payload: ring %v not cheaper than RD %v", ringCost, rdCost)
	}
}

func TestAllGatherBytesBruck(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 11} {
		w := newWorld(p)
		got := make([][][]byte, p)
		w.Run(func(c *Comm) {
			payload := make([]byte, c.Rank()*2+1)
			for i := range payload {
				payload[i] = byte(c.Rank() + 1)
			}
			bs, _, _ := c.AllGatherBytesBruck(payload, "bruck")
			got[c.Rank()] = bs
		})
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				if len(got[r][src]) != src*2+1 {
					t.Fatalf("p=%d rank %d src %d len %d, want %d",
						p, r, src, len(got[r][src]), src*2+1)
				}
				for _, b := range got[r][src] {
					if b != byte(src+1) {
						t.Fatalf("p=%d rank %d src %d corrupted", p, r, src)
					}
				}
			}
		}
	}
}

func TestBruckCostFewerLatencies(t *testing.T) {
	par := simnet.Params{Alpha: 1e-3, Beta: 0, FlopRate: 1}
	c := simnet.NewCluster(16, par)
	sizes := make([]int64, 16)
	for i := range sizes {
		sizes[i] = 1000
	}
	ringCost, _, _ := c.AllGatherVCost(sizes)
	bruckCost, _, _ := c.BruckAllGatherCost(sizes)
	// 15 ring latencies vs 4 Bruck latencies.
	if bruckCost >= ringCost {
		t.Fatalf("Bruck %v not cheaper than ring %v in latency-only regime", bruckCost, ringCost)
	}
	if math.Abs(bruckCost-4e-3) > 1e-12 {
		t.Fatalf("Bruck latency cost %v, want 4ms", bruckCost)
	}
}

func TestBruckEmptyPayloads(t *testing.T) {
	w := newWorld(4)
	w.Run(func(c *Comm) {
		bs, _, _ := c.AllGatherBytesBruck(nil, "bruck")
		for src, b := range bs {
			if len(b) != 0 {
				t.Errorf("src %d: got %d bytes", src, len(b))
			}
		}
	})
}

func BenchmarkAllReduceRingVsRD(b *testing.B) {
	for _, algo := range []string{"ring", "rd"} {
		b.Run(algo, func(b *testing.B) {
			w := newWorld(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					buf := make([]float32, 4096)
					if algo == "ring" {
						c.AllReduceSum(buf, "bench")
					} else {
						c.AllReduceSumRD(buf, "bench")
					}
				})
			}
		})
	}
}

// Property: Bruck and ring all-gathers deliver identical payload sets for
// arbitrary sizes and rank counts.
func TestQuickBruckMatchesRing(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%7) + 1
		rng := xrand.New(seed)
		payloads := make([][]byte, p)
		for r := range payloads {
			payloads[r] = make([]byte, rng.Intn(40))
			for i := range payloads[r] {
				payloads[r][i] = byte(rng.Intn(256))
			}
		}
		ring := make([][][]byte, p)
		bruck := make([][][]byte, p)
		wR := newWorld(p)
		wR.Run(func(c *Comm) {
			out, _, _ := c.AllGatherBytes(payloads[c.Rank()], "x")
			ring[c.Rank()] = out
		})
		wB := newWorld(p)
		wB.Run(func(c *Comm) {
			out, _, _ := c.AllGatherBytesBruck(payloads[c.Rank()], "x")
			bruck[c.Rank()] = out
		})
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				if len(ring[r][src]) != len(bruck[r][src]) {
					return false
				}
				for i := range ring[r][src] {
					if ring[r][src][i] != bruck[r][src][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
