package mpi

import (
	"math"
	"testing"

	"kgedist/internal/xrand"
)

func TestReduceScatterSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{0, 1, 16, 97} {
			w := newWorld(p)
			rng := xrand.New(uint64(13*p + n))
			inputs := make([][]float32, p)
			want := make([]float32, n)
			for r := range inputs {
				inputs[r] = make([]float32, n)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += inputs[r][i]
				}
			}
			type owned struct {
				lo, hi int
				vals   []float32
			}
			got := make([]owned, p)
			w.Run(func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				lo, hi, _, _ := c.ReduceScatterSum(buf, "rs")
				got[c.Rank()] = owned{lo, hi, append([]float32(nil), buf[lo:hi]...)}
			})
			// Owned chunks must tile [0, n) and hold the full sums.
			covered := make([]bool, n)
			for r := 0; r < p; r++ {
				o := got[r]
				for i := o.lo; i < o.hi; i++ {
					if covered[i] {
						t.Fatalf("p=%d n=%d: index %d owned twice", p, n, i)
					}
					covered[i] = true
					if math.Abs(float64(o.vals[i-o.lo]-want[i])) > 1e-4 {
						t.Fatalf("p=%d n=%d rank %d idx %d: got %v want %v",
							p, n, r, i, o.vals[i-o.lo], want[i])
					}
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("p=%d n=%d: index %d unowned", p, n, i)
				}
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		for root := 0; root < p; root++ {
			w := newWorld(p)
			results := make([][][]float32, p)
			w.Run(func(c *Comm) {
				payload := make([]float32, c.Rank()+1)
				for i := range payload {
					payload[i] = float32(10*c.Rank() + i)
				}
				results[c.Rank()], _ = c.Gather(payload, root, "gather")
			})
			for r := 0; r < p; r++ {
				if r != root && p > 1 {
					if results[r] != nil {
						t.Fatalf("non-root rank %d received data", r)
					}
					continue
				}
				for src := 0; src < p; src++ {
					part := results[r][src]
					if len(part) != src+1 {
						t.Fatalf("root got %d values from %d, want %d", len(part), src, src+1)
					}
					for i, v := range part {
						if v != float32(10*src+i) {
							t.Fatalf("root payload from %d corrupted", src)
						}
					}
				}
			}
		}
	}
}

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for root := 0; root < p; root++ {
			w := newWorld(p)
			results := make([][]float32, p)
			w.Run(func(c *Comm) {
				var parts [][]float32
				if c.Rank() == root {
					parts = make([][]float32, p)
					for dst := range parts {
						parts[dst] = []float32{float32(100 + dst), float32(dst)}
					}
				}
				results[c.Rank()], _ = c.Scatter(parts, root, "scatter")
			})
			for r := 0; r < p; r++ {
				if len(results[r]) != 2 || results[r][0] != float32(100+r) || results[r][1] != float32(r) {
					t.Fatalf("p=%d root=%d rank %d got %v", p, root, r, results[r])
				}
			}
		}
	}
}

func TestScatterPanicsOnWrongPartCount(t *testing.T) {
	// A single-rank world: the panic surfaces without stranding peers at
	// the collective rendezvous.
	w := newWorld(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(c *Comm) {
		c.Scatter(make([][]float32, 2), 0, "bad") // wrong: 1 rank
	})
}

func TestGatherScatterDeterministicStats(t *testing.T) {
	// The charged cost must not depend on goroutine scheduling: two
	// identical runs record identical stats.
	run := func() (float64, int64) {
		w := newWorld(5)
		w.Run(func(c *Comm) {
			payload := make([]float32, 8)
			g, _ := c.Gather(payload, 2, "g")
			var parts [][]float32
			if c.Rank() == 2 {
				parts = g
			}
			c.Scatter(parts, 2, "s")
		})
		st := w.Cluster().Stats()
		return st.CommSeconds, st.BytesMoved
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Fatalf("nondeterministic stats: (%v,%d) vs (%v,%d)", c1, b1, c2, b2)
	}
}
