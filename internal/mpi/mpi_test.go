package mpi

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

func newWorld(p int) *World {
	return NewWorld(simnet.NewCluster(p, simnet.XC40Params()))
}

// watchdog runs fn and fails the test with a full goroutine dump if it does
// not return within timeout. A hung collective rendezvous otherwise stalls
// the whole test binary until the go test deadline with no indication of
// which ranks are stuck where; the dump shows every rank's blocked frame.
func watchdog(t *testing.T, name string, timeout time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s: rendezvous timed out after %v; goroutine dump:\n%s", name, timeout, buf[:n])
	}
}

func TestRankAndSize(t *testing.T) {
	w := newWorld(3)
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	seen := make([]bool, 3)
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		if c.Size() != 3 {
			t.Errorf("rank %d sees size %d", c.Rank(), c.Size())
		}
	})
	for r, s := range seen {
		if !s {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestCommPanicsOnBadRank(t *testing.T) {
	w := newWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Comm(2)
}

func TestRunPropagatesPanic(t *testing.T) {
	w := newWorld(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	w.Run(func(c *Comm) { panic("boom") })
}

func TestAllReduceSumMatchesSequential(t *testing.T) {
	ps := []int{1, 2, 3, 4, 7, 8, 16}
	ns := []int{0, 1, 2, 5, 64, 1000}
	if testing.Short() {
		ps = []int{1, 3, 8}
		ns = []int{0, 5, 64}
	}
	for _, p := range ps {
		for _, n := range ns {
			w := newWorld(p)
			rng := xrand.New(uint64(p*1000 + n))
			inputs := make([][]float32, p)
			want := make([]float32, n)
			for r := range inputs {
				inputs[r] = make([]float32, n)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += inputs[r][i]
				}
			}
			results := make([][]float32, p)
			w.Run(func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				c.AllReduceSum(buf, "test")
				results[c.Rank()] = buf
			})
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if math.Abs(float64(results[r][i]-want[i])) > 1e-4 {
						t.Fatalf("p=%d n=%d rank %d elem %d: got %v want %v",
							p, n, r, i, results[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllReduceSumCostReturned(t *testing.T) {
	w := newWorld(4)
	costs := make([]float64, 4)
	w.Run(func(c *Comm) {
		buf := make([]float32, 1024)
		costs[c.Rank()], _ = c.AllReduceSum(buf, "test")
	})
	want, _, _ := w.Cluster().RingAllReduceCost(4 * 1024)
	for r, got := range costs {
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("rank %d cost %v, want %v", r, got, want)
		}
	}
	if w.Cluster().Stats().Collectives != 1 {
		t.Fatalf("collectives = %d, want 1", w.Cluster().Stats().Collectives)
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root++ {
			w := newWorld(p)
			results := make([][]float32, p)
			w.Run(func(c *Comm) {
				buf := make([]float32, 16)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float32(i + 100*root)
					}
				}
				c.Broadcast(buf, root)
				results[c.Rank()] = buf
			})
			for r := 0; r < p; r++ {
				for i := 0; i < 16; i++ {
					if results[r][i] != float32(i+100*root) {
						t.Fatalf("p=%d root=%d rank=%d elem %d = %v", p, root, r, i, results[r][i])
					}
				}
			}
		}
	}
}

func TestAllGatherRows(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		w := newWorld(p)
		const dim = 4
		gotIdx := make([][][]int32, p)
		gotVals := make([][][]float32, p)
		w.Run(func(c *Comm) {
			r := c.Rank()
			// Rank r contributes r+1 rows with recognizable contents.
			idx := make([]int32, r+1)
			vals := make([]float32, (r+1)*dim)
			for i := range idx {
				idx[i] = int32(10*r + i)
				for d := 0; d < dim; d++ {
					vals[i*dim+d] = float32(r) + float32(d)/10
				}
			}
			ai, av, _, _ := c.AllGatherRows(idx, vals, "test")
			gotIdx[r] = ai
			gotVals[r] = av
		})
		for r := 0; r < p; r++ {
			if len(gotIdx[r]) != p {
				t.Fatalf("rank %d got %d blocks", r, len(gotIdx[r]))
			}
			for src := 0; src < p; src++ {
				if len(gotIdx[r][src]) != src+1 {
					t.Fatalf("rank %d block %d has %d rows, want %d", r, src, len(gotIdx[r][src]), src+1)
				}
				for i, id := range gotIdx[r][src] {
					if id != int32(10*src+i) {
						t.Fatalf("rank %d block %d row %d idx %d", r, src, i, id)
					}
				}
				for i := 0; i <= src; i++ {
					for d := 0; d < dim; d++ {
						want := float32(src) + float32(d)/10
						if gotVals[r][src][i*dim+d] != want {
							t.Fatalf("rank %d block %d val mismatch", r, src)
						}
					}
				}
			}
		}
	}
}

func TestAllGatherRowsEmptyContribution(t *testing.T) {
	w := newWorld(3)
	w.Run(func(c *Comm) {
		var idx []int32
		var vals []float32
		if c.Rank() == 1 {
			idx = []int32{7}
			vals = []float32{1, 2}
		}
		ai, av, _, _ := c.AllGatherRows(idx, vals, "test")
		if len(ai[0]) != 0 || len(ai[2]) != 0 {
			t.Errorf("rank %d: empty blocks not empty", c.Rank())
		}
		if len(ai[1]) != 1 || ai[1][0] != 7 || len(av[1]) != 2 {
			t.Errorf("rank %d: block 1 corrupted: %v %v", c.Rank(), ai[1], av[1])
		}
	})
}

func TestAllGatherBytes(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		w := newWorld(p)
		got := make([][][]byte, p)
		w.Run(func(c *Comm) {
			payload := make([]byte, c.Rank()*3)
			for i := range payload {
				payload[i] = byte(c.Rank())
			}
			bs, _, _ := c.AllGatherBytes(payload, "test")
			got[c.Rank()] = bs
		})
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				if len(got[r][src]) != src*3 {
					t.Fatalf("rank %d src %d len %d", r, src, len(got[r][src]))
				}
				for _, b := range got[r][src] {
					if b != byte(src) {
						t.Fatalf("rank %d src %d payload corrupted", r, src)
					}
				}
			}
		}
	}
}

func TestAllReduceScalar(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		w := newWorld(p)
		sums := make([]float64, p)
		maxs := make([]float64, p)
		mins := make([]float64, p)
		w.Run(func(c *Comm) {
			v := float64(c.Rank() + 1)
			sums[c.Rank()], _ = c.AllReduceScalar(v, OpSum)
			maxs[c.Rank()], _ = c.AllReduceScalar(v, OpMax)
			mins[c.Rank()], _ = c.AllReduceScalar(v, OpMin)
		})
		wantSum := float64(p*(p+1)) / 2
		for r := 0; r < p; r++ {
			if sums[r] != wantSum {
				t.Fatalf("p=%d rank %d sum %v want %v", p, r, sums[r], wantSum)
			}
			if maxs[r] != float64(p) {
				t.Fatalf("p=%d rank %d max %v", p, r, maxs[r])
			}
			if mins[r] != 1 {
				t.Fatalf("p=%d rank %d min %v", p, r, mins[r])
			}
		}
	}
}

func TestBarrierCharges(t *testing.T) {
	w := newWorld(4)
	w.Run(func(c *Comm) {
		c.Barrier()
		c.Barrier()
	})
	if got := w.Cluster().Stats().Collectives; got != 2 {
		t.Fatalf("collectives = %d", got)
	}
}

func TestClocksSynchronizedAfterCollective(t *testing.T) {
	w := newWorld(4)
	w.Run(func(c *Comm) {
		// Ranks do different amounts of local work, then sync.
		c.Cluster().AddSeconds(c.Rank(), float64(c.Rank()))
		buf := make([]float32, 128)
		c.AllReduceSum(buf, "test")
	})
	cl := w.Cluster()
	t0 := cl.Time(0)
	for r := 1; r < 4; r++ {
		if cl.Time(r) != t0 {
			t.Fatalf("clocks diverged: %v vs %v", cl.Time(r), t0)
		}
	}
	if t0 < 3 {
		t.Fatalf("clock %v did not include slowest rank's work", t0)
	}
}

func TestManySequentialCollectivesNoDeadlock(t *testing.T) {
	iters := 50
	if testing.Short() {
		iters = 10
	}
	w := newWorld(8)
	watchdog(t, "sequential collectives", 30*time.Second, func() {
		w.Run(func(c *Comm) {
			buf := make([]float32, 33)
			for i := 0; i < iters; i++ {
				c.AllReduceSum(buf, "a")
				_, _, _, _ = c.AllGatherRows([]int32{int32(c.Rank())}, []float32{1}, "b")
				c.AllReduceScalar(1, OpSum)
				c.Barrier()
			}
		})
	})
	if got := w.Cluster().Stats().Collectives; got != int64(4*iters) {
		t.Fatalf("collectives = %d, want %d", got, 4*iters)
	}
}

// Property: all-reduce equals sequential sum for arbitrary inputs.
func TestQuickAllReduce(t *testing.T) {
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%8) + 1
		n := int(nRaw % 65)
		w := newWorld(p)
		rng := xrand.New(seed)
		inputs := make([][]float32, p)
		want := make([]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32() - 0.5
				want[i] += inputs[r][i]
			}
		}
		ok := true
		var mu sync.Mutex
		w.Run(func(c *Comm) {
			buf := append([]float32(nil), inputs[c.Rank()]...)
			c.AllReduceSum(buf, "q")
			for i := range buf {
				if math.Abs(float64(buf[i]-want[i])) > 1e-4 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		})
		return ok
	}
	count := 30
	if testing.Short() {
		count = 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllReduceSum8x4096(b *testing.B) {
	w := newWorld(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := make([]float32, 4096)
			c.AllReduceSum(buf, "bench")
		})
	}
}

func BenchmarkAllGatherRows8(b *testing.B) {
	w := newWorld(8)
	idx := make([]int32, 256)
	vals := make([]float32, 256*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			c.AllGatherRows(idx, vals, "bench")
		})
	}
}

// TestRandomCollectiveSequences stress-tests mixed collective sequences on
// random world sizes: no deadlock, and statistics identical across reruns
// of the same sequence (determinism independent of goroutine scheduling).
func TestRandomCollectiveSequences(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(uint64(trial))
		p := rng.Intn(7) + 2
		nOps := rng.Intn(12) + 4
		ops := make([]int, nOps)
		for i := range ops {
			ops[i] = rng.Intn(6)
		}
		run := func() (float64, int64) {
			w := newWorld(p)
			watchdog(t, "random collective sequence", 30*time.Second, func() {
				w.Run(func(c *Comm) {
					buf := make([]float32, 65)
					for _, op := range ops {
						switch op {
						case 0:
							c.AllReduceSum(buf, "s")
						case 1:
							c.AllReduceSumRD(buf, "s")
						case 2:
							c.AllGatherRows([]int32{int32(c.Rank())}, []float32{1, 2}, "s")
						case 3:
							c.Barrier()
						case 4:
							c.AllReduceScalar(float64(c.Rank()), OpMax)
						case 5:
							c.Broadcast(buf, op%p)
						}
					}
				})
			})
			st := w.Cluster().Stats()
			return st.CommSeconds, st.BytesMoved
		}
		c1, b1 := run()
		c2, b2 := run()
		if c1 != c2 || b1 != b2 {
			t.Fatalf("trial %d (p=%d): nondeterministic stats (%v,%d) vs (%v,%d)",
				trial, p, c1, b1, c2, b2)
		}
	}
}
