package mpi

import (
	"fmt"

	"kgedist/internal/grad"
	"kgedist/internal/pool"
	"kgedist/internal/xrand"
)

// Compressed-hop collective (DESIGN.md §13): the ring reduce-scatter carries
// grad.Encoded frames natively — indices, per-row scales and packed payloads
// ride the wire hop to hop, and each hop merges in the compressed domain
// (grad.Merger), decoding only overlapping rows. This is the DynamiQ idea
// (PAPERS.md) grafted onto the paper's exchange: compression applies per hop
// inside the collective instead of end-to-end around it, so the wire never
// sees a dense float32 chunk at any rung of the compression ladder.
//
// The companion all-gather phase needs no new collective: the reduced chunks
// are disjoint Encoded frames, and AllGatherBytes already moves opaque
// frames unchanged — still compressed.

// chunkEdge returns the first row id of chunk i when rows ids are split into
// p contiguous chunks (chunk i covers ids [edge(i), edge(i+1))), matching
// the dense ring's arithmetic chunking.
func chunkEdge(i, rows, p int) int32 { return int32(i * rows / p) }

// ReduceScatterEncoded sums the ranks' encoded sparse gradients and returns
// this rank's fully reduced chunk: the merged frame over row ids
// [own*rows/p, (own+1)*rows/p), own = (rank+1) mod p as in the dense ring.
// All ranks must pass frames with the same scheme, width and rows. Frames
// stay compressed on the wire and through every pass-through merge; only
// row overlaps decode (see grad.Merger). rng is consumed by TwoBitTernary
// re-encoding only and must be a stream dedicated to this pipeline.
//
// own is only read. The returned frame aliases mg-owned storage (or own
// itself when p = 1) and is valid until the next call using mg. Wire frame
// sizes are data-dependent, so the ranks agree on the charged cost by
// summing their sent bytes with a composed scalar reduction before the
// rendezvous — the Gather/Scatter pattern. Returns the virtual cost.
//
//kgelint:hotpath
func (c *Comm) ReduceScatterEncoded(own *grad.Encoded, rows int, mg *grad.Merger, rng *xrand.RNG, tag string) (*grad.Encoded, float64, error) {
	if err := c.enter(); err != nil {
		return nil, 0, err
	}
	p := c.w.p
	if p == 1 {
		if err := c.finish(0, 0, 0, tag); err != nil {
			return nil, 0, err
		}
		return own, 0, nil
	}
	r := c.rank
	right := (r + 1) % p
	left := (r - 1 + p) % p
	var sentBytes float64
	cur := own
	for s := 0; s < p-1; s++ {
		sendIdx := ((r-s)%p + p) % p
		recvIdx := ((r-s-1)%p + p) % p
		// Stage the outgoing frame: at step 0 this rank's slice of chunk
		// sendIdx; afterwards the previous step's merge result, which is by
		// construction the partial reduction of exactly that chunk. The
		// staging copy rides the pool (single receiver consumes and puts,
		// DESIGN.md §10).
		if s == 0 {
			i0, i1 := own.RowRange(chunkEdge(sendIdx, rows, p), chunkEdge(sendIdx+1, rows, p))
			mg.Wire = own.AppendRangeTo(mg.Wire[:0], i0, i1)
		} else {
			mg.Wire = cur.AppendTo(mg.Wire[:0])
		}
		out := pool.GetBytes(len(mg.Wire))
		copy(out, mg.Wire)
		sentBytes += float64(len(out))
		if err := c.send(right, message{Raw: out}); err != nil {
			return nil, 0, err
		}
		m, err := c.recv(left)
		if err != nil {
			return nil, 0, err
		}
		if err := grad.UnmarshalInto(&mg.In, m.Raw); err != nil {
			panic(fmt.Sprintf("mpi: corrupt compressed hop frame from rank %d: %v", left, err))
		}
		pool.PutBytes(m.Raw)
		i0, i1 := own.RowRange(chunkEdge(recvIdx, rows, p), chunkEdge(recvIdx+1, rows, p))
		own.Range(i0, i1, &mg.View)
		cur = mg.MergeInto(&mg.In, &mg.View, rng)
	}
	// Frame sizes differ per rank and hop; agree on the volume (and thus the
	// charged cost) with a scalar sum before the rendezvous.
	total, err := c.AllReduceScalar(sentBytes, OpSum)
	if err != nil {
		return nil, 0, err
	}
	par := c.w.cluster.Params()
	steps := int64(p - 1)
	cost := float64(steps)*par.Alpha + (total/float64(p))*par.Beta
	if err := c.finish(cost, int64(total), steps*int64(p), tag); err != nil {
		return nil, 0, err
	}
	return cur, cost, nil
}
