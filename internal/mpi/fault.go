package mpi

// Failure semantics (ULFM-style). A rank dies when the simnet fault schedule
// declares a crash due at a collective entry, when a peer's recv deadline
// expires, or when its goroutine panics. Death is world-global state: the
// abort channel is closed, the phaser releases every waiter, and every
// collective in flight — and every collective attempted afterwards — returns
// a *RankFailedError naming the dead ranks instead of completing. No rank is
// ever left blocked: senders, receivers and rendezvous waiters all select on
// the abort channel. The world is then permanently failed; the caller builds
// a successor with Shrink and re-runs the survivors.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultRecvTimeout is the watchdog deadline a fresh world applies to every
// point-to-point receive. It is a real-time backstop against genuine hangs
// (a stuck rank that never announces its death); scheduled crash faults are
// detected immediately and never wait it out.
const DefaultRecvTimeout = 60 * time.Second

// RankFailedError reports that one or more ranks died during a collective.
// Every surviving rank observes the same error at its next (or current)
// collective; recovery is to Shrink the world over the survivors and re-run.
type RankFailedError struct {
	// Ranks lists the dead ranks, sorted ascending.
	Ranks []int
}

// Error implements the error interface.
func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank(s) %v failed; shrink the world to continue", e.Ranks)
}

// failureState tracks dead ranks and the world-wide abort signal.
type failureState struct {
	mu      sync.Mutex
	dead    []int
	abort   chan struct{}
	aborted bool
}

func newFailureState() *failureState {
	return &failureState{abort: make(chan struct{})}
}

// fail marks rank dead and trips the abort signal on first use. Reports
// whether the rank was newly dead.
//
//kgelint:coldpath runs once per rank death, never per batch
func (fs *failureState) fail(rank int) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, r := range fs.dead {
		if r == rank {
			return false
		}
	}
	fs.dead = append(fs.dead, rank)
	sort.Ints(fs.dead)
	if !fs.aborted {
		fs.aborted = true
		close(fs.abort)
	}
	return true
}

// failed returns a copy of the dead-rank set (nil when healthy).
//
//kgelint:coldpath failure bookkeeping, allocation is irrelevant once ranks die
func (fs *failureState) failed() []int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.dead) == 0 {
		return nil
	}
	return append([]int(nil), fs.dead...)
}

// err returns the RankFailedError for the current dead set, or nil.
//
//kgelint:coldpath failure bookkeeping, allocation is irrelevant once ranks die
func (fs *failureState) err() error {
	ranks := fs.failed()
	if ranks == nil {
		return nil
	}
	return &RankFailedError{Ranks: ranks}
}

// Failed returns the ranks known dead in this world, sorted (nil if none).
func (w *World) Failed() []int { return w.fs.failed() }

// SetRecvTimeout overrides the per-receive watchdog deadline; d <= 0
// disables it (receives then block until a message or a failure abort).
// Call before Run/RunErr — the setting is read by rank goroutines.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Shrink builds the successor world after a failure: the given dead ranks
// are removed, survivors are renumbered densely in rank order (old rank r
// becomes r minus the number of dead ranks below it), and fresh links,
// phaser and sequence counters are built over the survivors. The underlying
// cluster is shrunk in place, so survivor clocks, accumulated statistics and
// remaining fault-plan entries carry over. The old world must not be used
// afterwards.
func (w *World) Shrink(dead []int) (*World, error) {
	if len(dead) == 0 {
		return nil, fmt.Errorf("mpi: Shrink needs at least one dead rank")
	}
	seen := make(map[int]bool, len(dead))
	for _, r := range dead {
		if r < 0 || r >= w.p {
			return nil, fmt.Errorf("mpi: Shrink rank %d out of range [0,%d)", r, w.p)
		}
		if seen[r] {
			return nil, fmt.Errorf("mpi: Shrink rank %d listed twice", r)
		}
		seen[r] = true
	}
	if len(seen) >= w.p {
		return nil, fmt.Errorf("mpi: Shrink would leave no survivors (%d dead of %d)", len(seen), w.p)
	}
	w.cluster.Shrink(dead)
	nw := NewWorld(w.cluster)
	nw.recvTimeout = w.recvTimeout
	return nw, nil
}
