package mpi

// Failure semantics (ULFM-style). A rank dies when the simnet fault schedule
// declares a crash due at a collective entry, when a peer's recv deadline
// expires, when its goroutine panics, or — over the TCP transport — when its
// connection drops, its frames fail checksum, or its heartbeats stop. Death
// is world-global state: the abort trips, the rendezvous releases every
// waiter, and every collective in flight — and every collective attempted
// afterwards — returns a *RankFailedError naming the dead ranks instead of
// completing. No rank is ever left blocked: senders, receivers and
// rendezvous waiters all observe the abort. The world is then permanently
// failed; the caller builds a successor with Shrink and re-runs the
// survivors.
//
// The dead-set bookkeeping itself lives in transport.FailureState, shared by
// both backends; this file keeps the world-level API.

import (
	"fmt"
	"time"

	"kgedist/internal/transport"
)

// DefaultRecvTimeout is the watchdog deadline a fresh world applies to every
// point-to-point receive. It is a real-time backstop against genuine hangs
// (a stuck rank that never announces its death); scheduled crash faults are
// detected immediately and never wait it out, and the TCP backend usually
// beats it with its heartbeat monitor.
const DefaultRecvTimeout = 60 * time.Second

// RankFailedError reports that one or more ranks died during a collective.
// Every surviving rank observes the same error at its next (or current)
// collective; recovery is to Shrink the world over the survivors and re-run.
// It is an alias of transport.RankFailedError, so the same typed error
// surfaces identically from both the channel and the TCP fabric.
type RankFailedError = transport.RankFailedError

// Failed returns the ranks known dead in this world, sorted (nil if none).
func (w *World) Failed() []int { return w.anyEp().Failed() }

// SetRecvTimeout overrides the per-receive watchdog deadline; d <= 0
// disables it (receives then block until a message or a failure abort).
// Call before Run/RunErr — the setting is read by rank goroutines.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Shrink builds the successor world after a failure: the given dead ranks
// are removed, survivors are renumbered densely in rank order (old rank r
// becomes r minus the number of dead ranks below it), and fresh links,
// rendezvous state and sequence counters are built over the survivors. The
// underlying cluster is shrunk in place, so survivor clocks, accumulated
// statistics and remaining fault-plan entries carry over. The old world must
// not be used afterwards.
//
// A channel world rebuilds its hub wholesale. A process world asks its
// endpoint to re-mesh over the survivors (transport.Shrinker), which blocks
// until the surviving processes complete a fresh rendezvous handshake.
func (w *World) Shrink(dead []int) (*World, error) {
	if len(dead) == 0 {
		return nil, fmt.Errorf("mpi: Shrink needs at least one dead rank")
	}
	seen := make(map[int]bool, len(dead))
	for _, r := range dead {
		if r < 0 || r >= w.p {
			return nil, fmt.Errorf("mpi: Shrink rank %d out of range [0,%d)", r, w.p)
		}
		if seen[r] {
			return nil, fmt.Errorf("mpi: Shrink rank %d listed twice", r)
		}
		seen[r] = true
	}
	if len(seen) >= w.p {
		return nil, fmt.Errorf("mpi: Shrink would leave no survivors (%d dead of %d)", len(seen), w.p)
	}
	if !w.proc {
		w.cluster.Shrink(dead)
		nw := NewWorld(w.cluster)
		nw.recvTimeout = w.recvTimeout
		return nw, nil
	}
	sh, ok := w.anyEp().(transport.Shrinker)
	if !ok {
		return nil, fmt.Errorf("mpi: transport %T cannot shrink", w.anyEp())
	}
	nep, err := sh.Shrink(dead)
	if err != nil {
		return nil, fmt.Errorf("mpi: transport re-mesh after failure: %w", err)
	}
	w.cluster.Shrink(dead)
	nw, err := NewProcessWorld(w.cluster, nep)
	if err != nil {
		return nil, err
	}
	nw.recvTimeout = w.recvTimeout
	return nw, nil
}
