package mpi

// Process-world integration: the same collectives that run over the channel
// fabric run over real TCP sockets, with every "process" simulated as an
// endpoint + private cluster in this test binary. The key invariants: the
// numeric results are identical to the channel world's, every process's
// private virtual clock advances identically (the determinism the paper's
// strategy selection depends on), and a severed connection surfaces as the
// same *RankFailedError followed by a working Shrink re-mesh.

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"kgedist/internal/simnet"
	"kgedist/internal/transport/tcptransport"
)

// dialTCPEndpoints brings up p in-process TCP endpoints meshed over
// localhost.
func dialTCPEndpoints(t *testing.T, p int) []*tcptransport.Endpoint {
	t.Helper()
	lns := make([]net.Listener, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
	}
	eps := make([]*tcptransport.Endpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = tcptransport.Dial(tcptransport.Options{
				Rank:            i,
				WorldSize:       p,
				CoordinatorAddr: lns[0].Addr().String(),
				Listener:        lns[i],
				ConnectDeadline: 30 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", i, err)
		}
	}
	return eps
}

// TestProcessWorldMatchesChannelWorld runs a mixed collective workload over
// both fabrics and requires bit-identical numerics and virtual time.
func TestProcessWorldMatchesChannelWorld(t *testing.T) {
	const p, dim = 3, 64
	workload := func(c *Comm) ([]float32, float64, error) {
		buf := make([]float32, dim)
		for i := range buf {
			buf[i] = float32(c.Rank()+1) * float32(i%7)
		}
		if _, err := c.AllReduceSum(buf, "test"); err != nil {
			return nil, 0, err
		}
		if _, err := c.Broadcast(buf[:8], 1); err != nil {
			return nil, 0, err
		}
		idx := []int32{int32(c.Rank())}
		vals := []float32{float32(c.Rank()) * 2.5}
		allIdx, allVals, _, err := c.AllGatherRows(idx, vals, "test")
		if err != nil {
			return nil, 0, err
		}
		for r := range allIdx {
			buf[0] += float32(allIdx[r][0]) + allVals[r][0]
		}
		s, err := c.AllReduceScalar(float64(c.Rank()+1), OpMax)
		if err != nil {
			return nil, 0, err
		}
		if err := c.Barrier(); err != nil {
			return nil, 0, err
		}
		return buf, s, nil
	}

	// Reference: the channel world.
	refW := newWorld(p)
	refBufs := make([][]float32, p)
	refScalar := make([]float64, p)
	watchdog(t, "channel reference", 30*time.Second, func() {
		if err := refW.RunErr(func(c *Comm) error {
			buf, s, err := workload(c)
			refBufs[c.Rank()], refScalar[c.Rank()] = buf, s
			return err
		}); err != nil {
			t.Errorf("channel world: %v", err)
		}
	})
	refTime := refW.Cluster().MaxTime()

	// Subject: three process worlds over TCP, each with a private cluster.
	eps := dialTCPEndpoints(t, p)
	worlds := make([]*World, p)
	for i, ep := range eps {
		w, err := NewProcessWorld(simnet.NewCluster(p, simnet.XC40Params()), ep)
		if err != nil {
			t.Fatalf("process world %d: %v", i, err)
		}
		worlds[i] = w
	}
	gotBufs := make([][]float32, p)
	gotScalar := make([]float64, p)
	watchdog(t, "tcp worlds", 60*time.Second, func() {
		var wg sync.WaitGroup
		for i, w := range worlds {
			wg.Add(1)
			go func(i int, w *World) {
				defer wg.Done()
				if err := w.RunErr(func(c *Comm) error {
					buf, s, err := workload(c)
					gotBufs[i], gotScalar[i] = buf, s
					return err
				}); err != nil {
					t.Errorf("process world %d: %v", i, err)
				}
			}(i, w)
		}
		wg.Wait()
	})
	for r := 0; r < p; r++ {
		if gotScalar[r] != refScalar[r] {
			t.Fatalf("rank %d: scalar %v != reference %v", r, gotScalar[r], refScalar[r])
		}
		for j := range refBufs[r] {
			if gotBufs[r][j] != refBufs[r][j] {
				t.Fatalf("rank %d: buf[%d] = %v over TCP, %v over channels", r, j, gotBufs[r][j], refBufs[r][j])
			}
		}
		if gt := worlds[r].Cluster().MaxTime(); math.Abs(gt-refTime) > 1e-12 {
			t.Fatalf("rank %d: virtual time %v over TCP, %v over channels", r, gt, refTime)
		}
	}
	for _, w := range worlds {
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestProcessWorldShrinkOverTCP severs a real connection mid-collective,
// requires the survivors to observe the typed failure, shrink, re-mesh, and
// finish the job with results identical to a 2-rank channel world.
func TestProcessWorldShrinkOverTCP(t *testing.T) {
	const p, dim = 3, 32
	eps := dialTCPEndpoints(t, p)
	worlds := make([]*World, p)
	for i, ep := range eps {
		w, err := NewProcessWorld(simnet.NewCluster(p, simnet.XC40Params()), ep)
		if err != nil {
			t.Fatalf("process world %d: %v", i, err)
		}
		worlds[i] = w
	}
	// Rank 2 "crashes": both of its connections drop without byes, exactly
	// what a SIGKILL looks like from the survivors' side.
	eps[2].Inject(tcptransport.FaultSever, 0)
	eps[2].Inject(tcptransport.FaultSever, 1)

	watchdog(t, "shrink over tcp", 90*time.Second, func() {
		survivors := []int{0, 1}
		var wg sync.WaitGroup
		final := make([][]float32, 2)
		for i, r := range survivors {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				w := worlds[r]
				err := w.RunErr(func(c *Comm) error {
					buf := make([]float32, dim)
					_, err := c.AllReduceSum(buf, "doomed")
					return err
				})
				var rfe *RankFailedError
				if !errors.As(err, &rfe) {
					t.Errorf("rank %d: collective with severed peer returned %v, want *RankFailedError", r, err)
					return
				}
				dead := w.Failed()
				nw, err := w.Shrink(dead)
				if err != nil {
					t.Errorf("rank %d: shrink(%v): %v", r, dead, err)
					return
				}
				defer nw.Close()
				if err := nw.RunErr(func(c *Comm) error {
					buf := make([]float32, dim)
					for j := range buf {
						buf[j] = float32(c.Rank() + 1)
					}
					if _, err := c.AllReduceSum(buf, "recovered"); err != nil {
						return err
					}
					final[i] = buf
					return nil
				}); err != nil {
					t.Errorf("rank %d: collective after shrink: %v", r, err)
				}
			}(i, r)
		}
		wg.Wait()
		// Both survivors computed 1+2 in every slot of the recovered
		// all-reduce.
		for i, buf := range final {
			if buf == nil {
				t.Fatalf("survivor %d never finished the recovered collective", i)
			}
			for j, v := range buf {
				if v != 3 {
					t.Fatalf("survivor %d: recovered buf[%d] = %v, want 3", i, j, v)
				}
			}
		}
	})
	_ = worlds[2].Close()
}
