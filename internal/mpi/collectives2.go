package mpi

import "kgedist/internal/pool"

// Additional collectives rounding out the substrate: reduce-scatter (the
// first half of the ring all-reduce, exposed standalone), gather and
// scatter. The trainer itself only needs all-reduce/all-gather; these
// complete the MPI surface and serve tests and ablations.
//
// Gather and Scatter need a cost figure that every rank agrees on (the
// rendezvous applies the last arriver's numbers), so they first share the
// total byte volume with a scalar reduction and charge the flat fan-in/out
// cost computed from it. The root's own in-place part is included in the
// charged volume — a small, deterministic overcount.

// ReduceScatterSum sums buf across ranks and leaves this rank's fully
// reduced chunk in place, returning its (lo, hi) bounds and the virtual
// cost. Chunk boundaries are i*n/P; rank r ends up owning chunk (r+1) mod P,
// as in the ring algorithm. The rest of buf is left partially reduced,
// mirroring MPI_Reduce_scatter's contract of only defining the local chunk.
// buf is caller-owned; ring staging copies are pooled as in AllReduceSum.
//
//kgelint:hotpath
func (c *Comm) ReduceScatterSum(buf []float32, tag string) (lo, hi int, cost float64, err error) {
	if err := c.enter(); err != nil {
		return 0, 0, 0, err
	}
	p := c.w.p
	n := len(buf)
	var moved, msgs int64
	lo, hi = 0, n
	if p > 1 && n > 0 {
		par := c.w.cluster.Params()
		chunkBytes := float64(4*n) / float64(p)
		steps := int64(p - 1)
		cost = float64(steps) * (par.Alpha + chunkBytes*par.Beta)
		moved = steps * int64(p) * int64(chunkBytes)
		msgs = steps * int64(p)

		r := c.rank
		chunk := func(i int) []float32 { return buf[i*n/p : (i+1)*n/p] }
		right := (r + 1) % p
		left := (r - 1 + p) % p
		for s := 0; s < p-1; s++ {
			sendIdx := ((r-s)%p + p) % p
			recvIdx := ((r-s-1)%p + p) % p
			src := chunk(sendIdx)
			out := pool.GetF32Uninit(len(src))
			copy(out, src)
			if err := c.send(right, message{F32: out}); err != nil {
				return 0, 0, 0, err
			}
			m, err := c.recv(left)
			if err != nil {
				return 0, 0, 0, err
			}
			dst := chunk(recvIdx)
			for i, v := range m.F32 {
				dst[i] += v
			}
			pool.PutF32(m.F32)
		}
		own := (r + 1) % p
		lo, hi = own*n/p, (own+1)*n/p
	}
	if err := c.finish(cost, moved, msgs, tag); err != nil {
		return 0, 0, 0, err
	}
	return lo, hi, cost, nil
}

// Gather collects every rank's payload at root, indexed by source rank;
// non-root ranks return nil. Payload sizes may differ per rank.
// Ownership: payload transfers to the root (it is retained in the result
// without copying), so senders must pass freshly allocated slices.
func (c *Comm) Gather(payload []float32, root int, tag string) ([][]float32, error) {
	p := c.w.p
	var out [][]float32
	if p == 1 {
		if err := c.enter(); err != nil {
			return nil, err
		}
		out = [][]float32{payload}
		if err := c.finish(0, 0, 0, tag); err != nil {
			return nil, err
		}
		return out, nil
	}
	total, err := c.AllReduceScalar(float64(4*len(payload)), OpSum)
	if err != nil {
		return nil, err
	}
	if c.rank == root {
		out = make([][]float32, p)
		out[root] = payload
		for src := 0; src < p; src++ {
			if src != root {
				m, err := c.recv(src)
				if err != nil {
					return nil, err
				}
				out[src] = m.F32
			}
		}
	} else {
		if err := c.send(root, message{F32: payload}); err != nil {
			return nil, err
		}
	}
	par := c.w.cluster.Params()
	cost := float64(p-1)*par.Alpha + total*par.Beta
	if err := c.finish(cost, int64(total), int64(p-1), tag); err != nil {
		return nil, err
	}
	return out, nil
}

// Scatter distributes root's per-rank payloads; every rank returns its own
// part. parts must have one entry per rank at the root. Ownership: each
// part transfers to its receiving rank without copying, so the root must
// pass freshly allocated slices and not mutate them afterwards.
func (c *Comm) Scatter(parts [][]float32, root int, tag string) ([]float32, error) {
	p := c.w.p
	if p == 1 {
		if len(parts) != 1 {
			panic("mpi: Scatter needs one part per rank")
		}
		if err := c.enter(); err != nil {
			return nil, err
		}
		if err := c.finish(0, 0, 0, tag); err != nil {
			return nil, err
		}
		return parts[0], nil
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	var own []float32
	if c.rank == root {
		if len(parts) != p {
			panic("mpi: Scatter needs one part per rank")
		}
		own = parts[root]
		for dst := 0; dst < p; dst++ {
			if dst != root {
				if err := c.send(dst, message{F32: parts[dst]}); err != nil {
					return nil, err
				}
			}
		}
	} else {
		m, err := c.recv(root)
		if err != nil {
			return nil, err
		}
		own = m.F32
	}
	total, err := c.AllReduceScalar(float64(4*len(own)), OpSum)
	if err != nil {
		return nil, err
	}
	par := c.w.cluster.Params()
	cost := float64(p-1)*par.Alpha + total*par.Beta
	if err := c.finish(cost, int64(total), int64(p-1), tag); err != nil {
		return nil, err
	}
	return own, nil
}
