package mpi

// Fault-injection tests: crash faults abort collectives with a typed error
// on every rank instead of deadlocking, worlds shrink over the survivors,
// silent ranks are detected by the receive watchdog, and panics are
// aggregated with their stacks. These run under `make faults` (and the
// race tier) in CI.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kgedist/internal/simnet"
)

// crashWorld builds a world whose given rank dies at virtual time at.
func crashWorld(t *testing.T, p, rank int, at float64) *World {
	t.Helper()
	cluster := simnet.NewCluster(p, simnet.XC40Params())
	plan := &simnet.FaultPlan{Faults: []simnet.Fault{
		{Kind: simnet.FaultCrash, Rank: rank, At: at},
	}}
	if err := cluster.SetFaultPlan(plan); err != nil {
		t.Fatalf("SetFaultPlan: %v", err)
	}
	return NewWorld(cluster)
}

func TestFaultCrashAbortsCollectives(t *testing.T) {
	w := crashWorld(t, 4, 2, 0) // due at the very first collective entry
	watchdog(t, "crash abort", 30*time.Second, func() {
		err := w.RunErr(func(c *Comm) error {
			buf := make([]float32, 64)
			for i := 0; i < 100; i++ {
				if _, err := c.AllReduceSum(buf, "x"); err != nil {
					return err
				}
			}
			return nil
		})
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RunErr = %v, want *RankFailedError", err)
		}
		if len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
			t.Fatalf("dead ranks = %v, want [2]", rf.Ranks)
		}
	})
	if got := w.Failed(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Failed() = %v", got)
	}
}

func TestFaultCrashMidTrainingReleasesEveryRank(t *testing.T) {
	// The crash arms partway through a sequence of collectives: clocks
	// advance with each operation, the fault fires at a later entry, and
	// every survivor must still unblock with the same typed error.
	w := crashWorld(t, 5, 1, 1e-3)
	completed := make([]int, 5)
	watchdog(t, "mid-training crash", 30*time.Second, func() {
		err := w.RunErr(func(c *Comm) error {
			buf := make([]float32, 4096)
			for i := 0; ; i++ {
				if _, err := c.AllReduceSum(buf, "x"); err != nil {
					completed[c.Rank()] = i
					return err
				}
			}
		})
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RunErr = %v, want *RankFailedError", err)
		}
		if len(rf.Ranks) != 1 || rf.Ranks[0] != 1 {
			t.Fatalf("dead ranks = %v, want [1]", rf.Ranks)
		}
	})
	if completed[0] == 0 {
		t.Fatal("crash fired on the first collective; expected clocks to advance first")
	}
	if w.Cluster().FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", w.Cluster().FaultsInjected())
	}
}

func TestFailedWorldRefusesFurtherCollectives(t *testing.T) {
	w := crashWorld(t, 3, 0, 0)
	watchdog(t, "failed world refuses", 30*time.Second, func() {
		err := w.RunErr(func(c *Comm) error {
			if err := c.Barrier(); err != nil {
				// Every later collective on the dead world must fail fast,
				// not hang waiting for the dead rank.
				if err2 := c.Barrier(); err2 == nil {
					return fmt.Errorf("rank %d: collective on failed world succeeded", c.Rank())
				}
				return err
			}
			return nil
		})
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RunErr = %v, want *RankFailedError", err)
		}
	})
}

func TestShrinkAndContinue(t *testing.T) {
	w := crashWorld(t, 4, 2, 0)
	watchdog(t, "shrink and continue", 30*time.Second, func() {
		err := w.RunErr(func(c *Comm) error {
			c.Cluster().AddSeconds(c.Rank(), 1) // pre-crash progress on every clock
			_, err := c.AllReduceSum(make([]float32, 8), "x")
			return err
		})
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RunErr = %v, want *RankFailedError", err)
		}
		before := w.Cluster().MaxTime()

		nw, err := w.Shrink(rf.Ranks)
		if err != nil {
			t.Fatalf("Shrink: %v", err)
		}
		if nw.Size() != 3 || nw.Cluster().P() != 3 {
			t.Fatalf("shrunken world size = %d (cluster %d), want 3", nw.Size(), nw.Cluster().P())
		}
		if nw.Cluster().MaxTime() < before {
			t.Fatalf("survivor clocks rewound: %v < %v", nw.Cluster().MaxTime(), before)
		}
		// The successor world completes collectives normally.
		sums := make([]float32, 3)
		runErr := nw.RunErr(func(c *Comm) error {
			buf := []float32{float32(c.Rank() + 1)}
			if _, err := c.AllReduceSum(buf, "x"); err != nil {
				return err
			}
			sums[c.Rank()] = buf[0]
			return nil
		})
		if runErr != nil {
			t.Fatalf("post-shrink RunErr: %v", runErr)
		}
		for r, s := range sums {
			if s != 6 {
				t.Fatalf("rank %d sum = %v, want 6", r, s)
			}
		}
	})
}

func TestShrinkRejectsBadArguments(t *testing.T) {
	w := newWorld(3)
	cases := [][]int{nil, {3}, {-1}, {1, 1}, {0, 1, 2}}
	for _, dead := range cases {
		if _, err := w.Shrink(dead); err == nil {
			t.Fatalf("Shrink(%v) accepted", dead)
		}
	}
}

func TestRecvTimeoutDetectsSilentRank(t *testing.T) {
	// Rank 1 goes silent without a scheduled fault (the "stuck rank"
	// scenario): the receive watchdog must declare it dead so rank 0
	// returns an error instead of hanging forever.
	w := newWorld(2)
	w.SetRecvTimeout(100 * time.Millisecond)
	watchdog(t, "recv timeout", 30*time.Second, func() {
		err := w.RunErr(func(c *Comm) error {
			if c.Rank() == 1 {
				return nil // silent desertion: never joins the collective
			}
			_, err := c.AllReduceSum(make([]float32, 16), "x")
			return err
		})
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RunErr = %v, want *RankFailedError", err)
		}
		if len(rf.Ranks) != 1 || rf.Ranks[0] != 1 {
			t.Fatalf("dead ranks = %v, want [1]", rf.Ranks)
		}
	})
}

func TestRunAggregatesAllPanicsWithStacks(t *testing.T) {
	w := newWorld(3)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected aggregated panic")
		}
		msg := fmt.Sprint(p)
		for _, want := range []string{"2 rank(s) panicked", "rank 0 panicked: boom-0", "rank 2 panicked: boom-2", "goroutine"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic message missing %q:\n%s", want, msg)
			}
		}
		if strings.Contains(msg, "rank 1 panicked") {
			t.Fatalf("healthy rank reported as panicked:\n%s", msg)
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() != 1 {
			panic(fmt.Sprintf("boom-%d", c.Rank()))
		}
	})
}

func TestRunErrPanickedRankUnblocksPeers(t *testing.T) {
	// A panicking rank must not leave peers hanging at a rendezvous: it is
	// marked dead and the collectives abort.
	w := newWorld(3)
	watchdog(t, "panic unblocks peers", 30*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic to propagate")
			}
		}()
		w.Run(func(c *Comm) {
			if c.Rank() == 2 {
				panic("dead rank")
			}
			// Error-blind body: the collective returns an error which the
			// body ignores; Run converts the world failure into a panic.
			_, _ = c.AllReduceSum(make([]float32, 8), "x")
		})
	})
}

func TestRunErrJoinsBodyErrors(t *testing.T) {
	w := newWorld(2)
	sentinel := errors.New("body failure")
	err := w.RunErr(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunErr = %v, want wrapped sentinel", err)
	}
	var rf *RankFailedError
	if errors.As(err, &rf) {
		t.Fatalf("healthy world reported rank failure: %v", err)
	}
}
