package mpi

import (
	"math"
	"testing"

	"kgedist/internal/grad"
	"kgedist/internal/xrand"
)

// encGrad builds one rank's sparse gradient over [0, rows) with roughly half
// the rows populated (rank-dependent pattern, so ranks overlap on some rows
// and are unique on others), then encodes it with the scheme.
func encGrad(rank, rows, width int, s grad.Scheme, seed uint64) (*grad.Encoded, *grad.SparseGrad) {
	rng := xrand.New(seed + uint64(rank))
	g := grad.NewSparseGrad(width)
	for id := 0; id < rows; id++ {
		// Every rank touches ids divisible by 3 (guaranteed overlap); the
		// rest are scattered per rank.
		if id%3 == 0 || (id+rank)%2 == 0 {
			row := g.Row(int32(id))
			for j := range row {
				row[j] = float32(rng.NormFloat64())
			}
		}
	}
	return grad.Quantize(g, s, rng), g
}

// The compressed ring must hand every rank a fully reduced chunk tiling
// [0, rows): under NoQuant exactly the float sum of all ranks' rows, and the
// chunk boundaries must match the dense ring's arithmetic chunking.
func TestReduceScatterEncodedNoQuantExact(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		const rows, width = 29, 6
		w := newWorld(p)
		want := grad.NewSparseGrad(width)
		encs := make([]*grad.Encoded, p)
		for r := 0; r < p; r++ {
			var g *grad.SparseGrad
			encs[r], g = encGrad(r, rows, width, grad.NoQuant, 100)
			g.ForEach(func(id int32, row []float32) {
				dst := want.Row(id)
				for i, v := range row {
					dst[i] += v
				}
			})
		}
		got := make([]*grad.SparseGrad, p)
		w.Run(func(c *Comm) {
			var mg grad.Merger
			chunk, cost, err := c.ReduceScatterEncoded(encs[c.Rank()], rows, &mg, nil, "rse")
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			if p > 1 && cost <= 0 {
				t.Errorf("rank %d: non-positive cost %v", c.Rank(), cost)
			}
			dec := grad.NewSparseGrad(width)
			grad.Dequantize(chunk, dec)
			got[c.Rank()] = dec
			// The chunk must stay inside this rank's owned id window.
			own := (c.Rank() + 1) % p
			lo, hi := int32(own*rows/p), int32((own+1)*rows/p)
			for _, id := range chunk.Indices {
				if id < lo || id >= hi {
					t.Errorf("rank %d: row %d outside owned window [%d,%d)", c.Rank(), id, lo, hi)
				}
			}
		})
		// Together the chunks must cover every reduced row exactly once.
		covered := map[int32]bool{}
		for r := 0; r < p; r++ {
			got[r].ForEach(func(id int32, row []float32) {
				if covered[id] {
					t.Fatalf("p=%d: row %d owned twice", p, id)
				}
				covered[id] = true
				ref, ok := want.Get(id)
				if !ok {
					t.Fatalf("p=%d: row %d unexpected", p, id)
				}
				for i := range row {
					if math.Abs(float64(row[i]-ref[i])) > 1e-5 {
						t.Fatalf("p=%d row %d col %d: got %v want %v", p, id, i, row[i], ref[i])
					}
				}
			})
		}
		want.ForEach(func(id int32, _ []float32) {
			if !covered[id] {
				t.Fatalf("p=%d: reduced row %d missing from every chunk", p, id)
			}
		})
	}
}

// Lossy schemes ride the same ring; the result must be structurally valid
// (scheme preserved, rows inside the owned window, payload decodable) and
// identical across repeated runs for a fixed seed — the determinism the
// chan-vs-TCP trajectory gate relies on.
func TestReduceScatterEncodedLossyDeterministic(t *testing.T) {
	for _, s := range []grad.Scheme{grad.OneBitMax, grad.TwoBitTernary} {
		const p, rows, width = 3, 20, 8
		run := func() []string {
			w := newWorld(p)
			encs := make([]*grad.Encoded, p)
			for r := 0; r < p; r++ {
				encs[r], _ = encGrad(r, rows, width, s, 200)
			}
			frames := make([]string, p)
			w.Run(func(c *Comm) {
				var mg grad.Merger
				rng := xrand.New(uint64(1000 + c.Rank()))
				chunk, _, err := c.ReduceScatterEncoded(encs[c.Rank()], rows, &mg, rng, "rse")
				if err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
					return
				}
				if chunk.Scheme != s {
					t.Errorf("rank %d: scheme changed to %v", c.Rank(), chunk.Scheme)
				}
				frames[c.Rank()] = string(chunk.Marshal())
			})
			return frames
		}
		a, b := run(), run()
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("%v: rank %d chunk differs between identical runs", s, r)
			}
		}
	}
}

// p=1 short-circuits: the input frame comes back untouched at zero cost.
func TestReduceScatterEncodedSingleRank(t *testing.T) {
	w := newWorld(1)
	e, _ := encGrad(0, 10, 4, grad.OneBitMax, 7)
	w.Run(func(c *Comm) {
		var mg grad.Merger
		chunk, cost, err := c.ReduceScatterEncoded(e, 10, &mg, nil, "rse")
		if err != nil {
			t.Fatal(err)
		}
		if chunk != e || cost != 0 {
			t.Fatalf("single-rank: chunk=%p (want %p), cost=%v", chunk, e, cost)
		}
	})
}

// Every rank must be charged the identical cost and byte volume even though
// per-hop frame sizes differ per rank — the composed scalar sum agreement.
func TestReduceScatterEncodedCostAgreement(t *testing.T) {
	const p, rows, width = 4, 33, 5
	w := newWorld(p)
	encs := make([]*grad.Encoded, p)
	for r := 0; r < p; r++ {
		encs[r], _ = encGrad(r, rows, width, grad.OneBitMax, 300)
	}
	costs := make([]float64, p)
	w.Run(func(c *Comm) {
		var mg grad.Merger
		_, cost, err := c.ReduceScatterEncoded(encs[c.Rank()], rows, &mg, nil, "rse")
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		costs[c.Rank()] = cost
	})
	for r := 1; r < p; r++ {
		if costs[r] != costs[0] {
			t.Fatalf("rank %d charged %v, rank 0 charged %v", r, costs[r], costs[0])
		}
	}
}
