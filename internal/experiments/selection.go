package experiments

import (
	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Non-zero gradient rows across training",
		Paper: "Figure 2: non-zero entity-gradient rows per batch vs epoch",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Random-selection thresholds: accuracy and sparsity",
		Paper: "Figure 3a-b: TCA and sparsity per epoch for average, averagex0.1 and Bernoulli selection",
		Run:   runFig3,
	})
}

func runFig2(o Options) (*metrics.Report, error) {
	cfg := baseConfig250K(o)
	cfg.Comm = core.CommAllGather
	cfg.TrackEpochStats = true
	nodes := 4
	if o.Quick {
		nodes = 2
	}
	r, err := trainCached(cfg, dataset250K(o), nodes)
	if err != nil {
		return nil, err
	}
	s := metrics.Series{Name: "non-zero rows"}
	for _, e := range r.PerEpoch {
		s.X = append(s.X, float64(e.Epoch))
		s.Y = append(s.Y, e.NonZeroGradRows)
	}
	return &metrics.Report{
		ID:    "fig2",
		Title: "Non-zero gradient rows vs epoch",
		Notes: []string{
			"Rows become exactly zero only once triples saturate (|score| large);",
			"the count is flat early and declines as training converges.",
		},
		Figures: []*metrics.Figure{{
			Title:  "fig2: non-zero entity gradient rows per batch",
			XLabel: "epoch", YLabel: "rows",
			Series: []metrics.Series{s},
		}},
	}, nil
}

func runFig3(o Options) (*metrics.Report, error) {
	d := dataset15K(o)
	modes := []struct {
		name string
		mode grad.SelectMode
	}{
		{"dense", grad.SelectAll},
		{"average", grad.SelectAvgThreshold},
		{"averagex0.1", grad.SelectAvgTenthThreshold},
		{"random-selection", grad.SelectBernoulli},
	}
	tcaFig := &metrics.Figure{Title: "fig3a: validation TCA per epoch", XLabel: "epoch", YLabel: "TCA %"}
	spFig := &metrics.Figure{Title: "fig3b: selection sparsity per epoch", XLabel: "epoch", YLabel: "dropped fraction"}
	for _, m := range modes {
		cfg := baseConfig15K(o)
		cfg.Comm = core.CommAllGather
		cfg.Select = m.mode
		cfg.TrackEpochStats = true
		r, err := trainCached(cfg, d, 2)
		if err != nil {
			return nil, err
		}
		tca := metrics.Series{Name: m.name}
		sp := metrics.Series{Name: m.name}
		for _, e := range r.PerEpoch {
			tca.X = append(tca.X, float64(e.Epoch))
			tca.Y = append(tca.Y, e.ValTCA)
			sp.X = append(sp.X, float64(e.Epoch))
			sp.Y = append(sp.Y, e.Sparsity)
		}
		tcaFig.Series = append(tcaFig.Series, tca)
		spFig.Series = append(spFig.Series, sp)
	}
	return &metrics.Report{
		ID:      "fig3",
		Title:   "Random-selection threshold comparison",
		Figures: []*metrics.Figure{tcaFig, spFig},
	}, nil
}
