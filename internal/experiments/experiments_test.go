package experiments

import (
	"strings"
	"testing"

	"kgedist/internal/core"
)

func quickOpts() Options { return Options{Quick: true, Seed: 3} }

// skipIfShort skips the long end-to-end training tests under -short — in
// particular the race-detector CI tier, where each of these costs seconds.
// Unit-level coverage of every code path stays on in short mode.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping long training test in -short mode")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"headline", "psbaseline", "categories", "commvolume", "bucketvsrp", "strategies", "scaling",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Fatalf("experiment %q missing: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		ids := make([]string, 0)
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		t.Fatalf("registry has %d experiments, want %d: %v", len(All()), len(want), ids)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("registry not sorted: %q >= %q", all[i-1].ID, all[i].ID)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

func TestTable3Exact(t *testing.T) {
	rep, err := Get("table3")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rep.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "-1 = disjoint") {
		t.Fatalf("missing disjointness note:\n%s", out)
	}
	// Paper outcome: 2 triples on processor 1, 3 on processor 2.
	if !strings.Contains(out, "processor 1 holds 2 triples, processor 2 holds 3") {
		t.Fatalf("split does not match the paper:\n%s", out)
	}
}

func TestQuickBaselines(t *testing.T) {
	skipIfShort(t)
	e, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 3 { // quick mode: nodes 1,2,4
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if len(tb.Headers) != 9 {
		t.Fatalf("headers = %v", tb.Headers)
	}
}

func TestQuickFig1SharesBaselineRuns(t *testing.T) {
	skipIfShort(t)
	// fig1 must reuse table1/table2's cached runs rather than retraining.
	ResetCaches()
	o := quickOpts()
	t1, _ := Get("table1")
	if _, err := t1.Run(o); err != nil {
		t.Fatal(err)
	}
	before := len(runCache)
	t2, _ := Get("table2")
	if _, err := t2.Run(o); err != nil {
		t.Fatal(err)
	}
	f1, _ := Get("fig1")
	if _, err := f1.Run(o); err != nil {
		t.Fatal(err)
	}
	after := len(runCache)
	// fig1 adds nothing beyond what table1+table2 trained.
	wantAfter := before * 2
	if after != wantAfter {
		t.Fatalf("fig1 retrained: cache %d -> %d (want %d)", before, after, wantAfter)
	}
	f1rep, err := f1.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1rep.Figures) != 4 {
		t.Fatalf("fig1 panels = %d", len(f1rep.Figures))
	}
}

func TestQuickSelectionExperiments(t *testing.T) {
	skipIfShort(t)
	for _, id := range []string{"fig2", "fig3"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Figures) == 0 {
			t.Fatalf("%s produced no figures", id)
		}
		for _, f := range r.Figures {
			if len(f.Series) == 0 || len(f.Series[0].X) == 0 {
				t.Fatalf("%s: empty series in %q", id, f.Title)
			}
		}
	}
}

func TestQuickQuantizationExperiments(t *testing.T) {
	skipIfShort(t)
	for _, id := range []string{"fig4", "fig5"} {
		e, _ := Get(id)
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Figures) == 0 {
			t.Fatalf("%s produced no figures", id)
		}
	}
}

func TestQuickFig6RelationBytesEliminated(t *testing.T) {
	skipIfShort(t)
	e, _ := Get("fig6")
	r, err := e.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 {
		t.Fatalf("fig6 tables = %d", len(r.Tables))
	}
	for _, row := range r.Tables[0].Rows {
		if row[2] != "0" {
			t.Fatalf("relation bytes with RP not zero: %v", row)
		}
		if row[0] != "1" && row[1] == "0" {
			t.Fatalf("relation bytes without RP unexpectedly zero at %v nodes", row[0])
		}
	}
}

func TestQuickSamplingExperiments(t *testing.T) {
	skipIfShort(t)
	for _, id := range []string{"table4", "fig7"} {
		e, _ := Get(id)
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Tables)+len(r.Figures) == 0 {
			t.Fatalf("%s produced nothing", id)
		}
	}
}

func TestQuickCombinedAndHeadline(t *testing.T) {
	skipIfShort(t)
	for _, id := range []string{"fig8", "fig9", "headline", "psbaseline", "categories", "commvolume", "bucketvsrp", "strategies", "scaling"} {
		e, _ := Get(id)
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var sb strings.Builder
		r.Render(&sb)
		if len(sb.String()) < 100 {
			t.Fatalf("%s report suspiciously short:\n%s", id, sb.String())
		}
	}
}

func TestDatasetPresetsCached(t *testing.T) {
	o := quickOpts()
	a := dataset15K(o)
	b := dataset15K(o)
	if a != b {
		t.Fatal("dataset cache miss for identical options")
	}
	c := dataset250K(o)
	if a == c {
		t.Fatal("distinct presets share a dataset")
	}
}

func TestNodeCounts(t *testing.T) {
	full := Options{}
	if got := nodeCounts("fb250k", full); len(got) != 5 || got[4] != 16 {
		t.Fatalf("fb250k nodes = %v", got)
	}
	if got := nodeCounts("fb15k", full); len(got) != 4 || got[3] != 8 {
		t.Fatalf("fb15k nodes = %v", got)
	}
	if got := nodeCounts("fb15k", Options{Quick: true}); len(got) != 3 {
		t.Fatalf("quick nodes = %v", got)
	}
}

func TestRepeatsAveraging(t *testing.T) {
	skipIfShort(t)
	// With Repeats=2, the run must execute two seeds and average; the
	// averaged TT lies between the two individual runs'.
	ResetCaches()
	SetRepeats(1)
	o := quickOpts()
	e, _ := Get("table1")
	single, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ResetCaches()
	o.Repeats = 2
	avg, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	SetRepeats(1)
	if len(avg.Tables[0].Rows) != len(single.Tables[0].Rows) {
		t.Fatal("repeat averaging changed table shape")
	}
	// The runs are real: values exist and are finite strings.
	for _, row := range avg.Tables[0].Rows {
		if row[1] == "" {
			t.Fatal("empty averaged cell")
		}
	}
}

func TestAverageResultsMath(t *testing.T) {
	mk := func(tt float64, epochs int, tca float64) *core.Result {
		return &core.Result{
			TotalHours: tt, Epochs: epochs, TCA: tca,
			PerEpoch: []core.EpochStats{{Epoch: 1, Seconds: tt, ValAccuracy: tca}},
		}
	}
	avg := averageResults([]*core.Result{mk(1, 10, 80), mk(3, 20, 90)})
	if avg.TotalHours != 2 || avg.Epochs != 15 || avg.TCA != 85 {
		t.Fatalf("averaged %+v", avg)
	}
	if len(avg.PerEpoch) != 1 || avg.PerEpoch[0].Seconds != 2 || avg.PerEpoch[0].ValAccuracy != 85 {
		t.Fatalf("per-epoch average %+v", avg.PerEpoch)
	}
	one := mk(5, 7, 70)
	if averageResults([]*core.Result{one}) != one {
		t.Fatal("single run should pass through")
	}
}
