// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic stand-in datasets (see DESIGN.md §4
// for the experiment index and EXPERIMENTS.md for measured-vs-paper notes).
package experiments

import (
	"fmt"
	"sync"

	"kgedist/internal/core"
	"kgedist/internal/kg"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks datasets and epoch budgets for benchmarks and CI; the
	// curves keep their shape but absolute values move.
	Quick bool
	// Seed drives dataset generation and training.
	Seed uint64
	// Repeats > 1 averages every training run over that many seeds — the
	// paper's §3.3 methodology ("all our results were obtained as average
	// over five runs"). 0 or 1 = single run.
	Repeats int
}

func (o Options) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// dataset15K returns the FB15K stand-in: smaller and denser, used by the
// paper for accuracy studies.
func dataset15K(o Options) *kg.Dataset {
	cfg := kg.GenConfig{
		Name: "fb15k-mini", Entities: 2000, Relations: 250, Triples: 20000,
		Communities: 25, Seed: o.seed(),
	}
	if o.Quick {
		cfg.Name = "fb15k-quick"
		cfg.Entities, cfg.Relations, cfg.Triples = 500, 60, 4000
		cfg.Communities = 10
	}
	return genCached(cfg)
}

// dataset250K returns the FB250K stand-in: larger and sparser, used by the
// paper for scalability studies.
func dataset250K(o Options) *kg.Dataset {
	cfg := kg.GenConfig{
		Name: "fb250k-mini", Entities: 6000, Relations: 800, Triples: 60000,
		Communities: 40, Seed: o.seed(),
	}
	if o.Quick {
		cfg.Name = "fb250k-quick"
		cfg.Entities, cfg.Relations, cfg.Triples = 1200, 160, 9000
		cfg.Communities = 16
	}
	return genCached(cfg)
}

// baseConfig15K mirrors the paper's FB15K setup at mini scale: 2 negatives
// per positive (stands in for the paper's 10; the mini graph saturates with
// fewer), batch 1000 for ~20 steps/epoch at one node.
func baseConfig15K(o Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.BaseLR = 0.02
	cfg.BatchSize = 1000
	cfg.MaxEpochs = 60
	cfg.StopPatience = 12
	cfg.Tolerance = 8
	cfg.NegSamples = 2
	cfg.ValSample = 800
	cfg.TestSample = 150
	cfg.Seed = o.seed()
	if o.Quick {
		cfg.BatchSize = 500
		cfg.MaxEpochs = 8
		cfg.StopPatience = 8
		cfg.TestSample = 40
		cfg.ValSample = 200
	}
	return cfg
}

// baseConfig250K mirrors the paper's FB250K setup at mini scale: 1 negative
// per positive (as in the paper), batch 2000.
func baseConfig250K(o Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Dim = 16
	cfg.BaseLR = 0.02
	cfg.BatchSize = 2000
	cfg.MaxEpochs = 50
	cfg.StopPatience = 12
	cfg.Tolerance = 8
	cfg.NegSamples = 1
	cfg.ValSample = 800
	cfg.TestSample = 120
	cfg.Seed = o.seed()
	if o.Quick {
		cfg.BatchSize = 800
		cfg.MaxEpochs = 8
		cfg.StopPatience = 8
		cfg.TestSample = 40
		cfg.ValSample = 200
	}
	return cfg
}

// ---- Caches ---------------------------------------------------------------
//
// Training is deterministic, so identical (config, dataset, nodes) triples
// yield identical results; experiments that share runs (table1/fig1/fig8,
// table2/fig9, table4/fig7) hit the cache instead of retraining.

var (
	cacheMu  sync.Mutex
	genCache = map[string]*kg.Dataset{}
	runCache = map[string]*core.Result{}
)

func genCached(cfg kg.GenConfig) *kg.Dataset {
	key := fmt.Sprintf("%+v", cfg)
	cacheMu.Lock()
	d, ok := genCache[key]
	cacheMu.Unlock()
	if ok {
		return d
	}
	d = kg.Generate(cfg)
	cacheMu.Lock()
	genCache[key] = d
	cacheMu.Unlock()
	return d
}

// repeatsFor is consulted by trainCached; experiments set it from Options
// at entry (single-threaded experiment execution makes this safe, and the
// value is part of the cache key so mixed settings cannot collide).
var repeatsFor = 1

// SetRepeats configures run averaging for subsequent experiment
// invocations (the paper's five-run averaging, §3.3).
func SetRepeats(n int) {
	if n < 1 {
		n = 1
	}
	cacheMu.Lock()
	repeatsFor = n
	cacheMu.Unlock()
}

// trainCached trains (or reuses) a run for the configuration, averaging
// over the configured number of seeds.
func trainCached(cfg core.Config, d *kg.Dataset, nodes int) (*core.Result, error) {
	cacheMu.Lock()
	reps := repeatsFor
	cacheMu.Unlock()
	key := fmt.Sprintf("%s|%d|%d|%+v", d.Name, nodes, reps, cfg)
	cacheMu.Lock()
	r, ok := runCache[key]
	cacheMu.Unlock()
	if ok {
		return r, nil
	}
	var runs []*core.Result
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003
		one, err := core.Train(c, d, nodes)
		if err != nil {
			return nil, err
		}
		runs = append(runs, one)
	}
	r = averageResults(runs)
	cacheMu.Lock()
	runCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// averageResults averages the numeric fields of repeated runs; per-epoch
// series are averaged element-wise up to the shortest run, and the first
// run supplies the trained parameters and strategy metadata.
func averageResults(runs []*core.Result) *core.Result {
	if len(runs) == 1 {
		return runs[0]
	}
	out := *runs[0]
	n := float64(len(runs))
	var tt, comm, tca, mrr, h1, h3, h10, mr float64
	var epochs float64
	var bytes, relBytes int64
	minEpochs := len(runs[0].PerEpoch)
	for _, r := range runs {
		if len(r.PerEpoch) < minEpochs {
			minEpochs = len(r.PerEpoch)
		}
	}
	for _, r := range runs {
		tt += r.TotalHours
		comm += r.CommHours
		tca += r.TCA
		mrr += r.MRR
		h1 += r.Hits1
		h3 += r.Hits3
		h10 += r.Hits10
		mr += r.MR
		epochs += float64(r.Epochs)
		bytes += r.CommBytes
		relBytes += r.RelationCommBytes
	}
	out.TotalHours = tt / n
	out.CommHours = comm / n
	out.TCA = tca / n
	out.MRR = mrr / n
	out.Hits1 = h1 / n
	out.Hits3 = h3 / n
	out.Hits10 = h10 / n
	out.MR = mr / n
	out.Epochs = int(epochs/n + 0.5)
	out.CommBytes = bytes / int64(n)
	out.RelationCommBytes = relBytes / int64(n)
	avg := make([]core.EpochStats, minEpochs)
	for e := 0; e < minEpochs; e++ {
		avg[e] = runs[0].PerEpoch[e]
		var secs, commS, val, tcaE, nnz, sp float64
		var cb int64
		for _, r := range runs {
			es := r.PerEpoch[e]
			secs += es.Seconds
			commS += es.CommSeconds
			val += es.ValAccuracy
			tcaE += es.ValTCA
			nnz += es.NonZeroGradRows
			sp += es.Sparsity
			cb += es.CommBytes
		}
		avg[e].Seconds = secs / n
		avg[e].CommSeconds = commS / n
		avg[e].ValAccuracy = val / n
		avg[e].ValTCA = tcaE / n
		avg[e].NonZeroGradRows = nnz / n
		avg[e].Sparsity = sp / n
		avg[e].CommBytes = cb / int64(n)
	}
	out.PerEpoch = avg
	return &out
}

// ResetCaches clears the dataset and run caches (tests use this to control
// memory and isolation).
func ResetCaches() {
	cacheMu.Lock()
	genCache = map[string]*kg.Dataset{}
	runCache = map[string]*core.Result{}
	cacheMu.Unlock()
}

// nodeCounts returns the paper's rank sweep for each dataset family,
// trimmed in quick mode.
func nodeCounts(family string, o Options) []int {
	if o.Quick {
		return []int{1, 2, 4}
	}
	if family == "fb250k" {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 4, 8}
}
