package experiments

import (
	"fmt"

	"kgedist/internal/bucket"
	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "bucketvsrp",
		Title: "PBG-style entity buckets vs the paper's relation partition",
		Paper: "Section 2: PBG reduces but cannot eliminate entity communication; relation partition eliminates relation communication",
		Run:   runBucketVsRP,
	})
}

func runBucketVsRP(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	workers := 8
	epochs := 6
	if o.Quick {
		workers = 4
		epochs = 2
	}

	t := &metrics.Table{
		Title:   fmt.Sprintf("Fixed %d workers, %d epochs on %s", workers, epochs, d.Name),
		Headers: []string{"partitioning", "entity MB", "relation MB", "TCA", "MRR"},
	}

	// The paper's relation partition (quantized all-gather for entities).
	rpCfg := base
	rpCfg.Comm = core.CommAllGather
	rpCfg.Select = grad.SelectBernoulli
	rpCfg.Quant = grad.OneBitMax
	rpCfg.RelationPartition = true
	rpCfg.MaxEpochs = epochs
	rpCfg.StopPatience = epochs + 1
	rp, err := trainCached(rpCfg, d, workers)
	if err != nil {
		return nil, err
	}
	t.AddRow("relation partition (paper)",
		float64(rp.CommBytes-rp.RelationCommBytes)/1e6,
		float64(rp.RelationCommBytes)/1e6, rp.TCA, rp.MRR)

	// PBG-style entity buckets.
	bCfg := bucket.DefaultConfig()
	bCfg.Dim = base.Dim
	bCfg.Epochs = epochs
	bCfg.NegSamples = base.NegSamples
	bCfg.TestSample = base.TestSample
	bCfg.Seed = base.Seed
	br, err := bucket.Train(bCfg, d, workers)
	if err != nil {
		return nil, err
	}
	t.AddRow("entity buckets (PBG-style)",
		float64(br.EntityCommBytes)/1e6,
		float64(br.RelationCommBytes)/1e6, br.TCA, br.MRR)

	return &metrics.Report{
		ID:    "bucketvsrp",
		Title: "Entity-bucket vs relation-partition communication",
		Notes: []string{
			"The relation column is exactly zero under relation partition,",
			"while the bucket scheme still migrates entity embeddings every",
			"round AND all-reduces relation gradients — the paper's §2 point.",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
