package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Combined methods on FB15K",
		Paper: "Figure 8a-c: TT, N, MRR vs nodes for allreduce, allgather, RS, RS+1-bit, RS+1-bit+RP+SS",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Combined methods on FB250K",
		Paper: "Figure 9a-c: TT, N, MRR vs nodes for allreduce, allgather, DRS, DRS+1-bit, DRS+1-bit+RP+SS",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "headline",
		Title: "Abstract headline: combined strategies vs baseline at the largest node count",
		Paper: "11.5h -> 6h on 16 nodes (FB250K) with MRR and TCA improved",
		Run:   runHeadline,
	})
}

// method is one curve of the combined-strategy figures.
type method struct {
	name string
	mut  func(*core.Config)
}

// fb15kMethods follows the paper: the dynamic strategy is excluded on FB15K
// because all-reduce always wins on the small dataset; RS and the quantized
// pipelines ride the sparse all-gather exchange.
func fb15kMethods() []method {
	return []method{
		{"allreduce", func(c *core.Config) { c.Comm = core.CommAllReduce }},
		{"allgather", func(c *core.Config) { c.Comm = core.CommAllGather }},
		{"RS", func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Select = grad.SelectBernoulli
		}},
		{"RS+1-bit", func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
		}},
		{"RS+1-bit+RP+SS", func(c *core.Config) {
			c.Comm = core.CommAllGather
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
			c.RelationPartition = true
			c.NegSelect = true
			c.NegSamples = 10
		}},
	}
}

func fb250kMethods() []method {
	return []method{
		{"allreduce", func(c *core.Config) { c.Comm = core.CommAllReduce }},
		{"allgather", func(c *core.Config) { c.Comm = core.CommAllGather }},
		{"DRS", func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.Select = grad.SelectBernoulli
		}},
		{"DRS+1-bit", func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
		}},
		{"DRS+1-bit+RP+SS", func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
			c.RelationPartition = true
			c.NegSelect = true
			c.NegSamples = 5
		}},
	}
}

// combinedReport sweeps every method over the node counts and renders the
// three panels (TT, N, MRR) of Figures 8 and 9.
func combinedReport(id, family string, d *kg.Dataset, base core.Config, methods []method, o Options) (*metrics.Report, error) {
	nodes := nodeCounts(family, o)
	ttFig := &metrics.Figure{Title: id + "a: total training time", XLabel: "nodes", YLabel: "virtual seconds"}
	nFig := &metrics.Figure{Title: id + "b: epochs to convergence", XLabel: "nodes", YLabel: "epochs"}
	mrrFig := &metrics.Figure{Title: id + "c: MRR", XLabel: "nodes", YLabel: "MRR"}
	for _, m := range methods {
		tt := metrics.Series{Name: m.name}
		nn := metrics.Series{Name: m.name}
		mrr := metrics.Series{Name: m.name}
		for _, p := range nodes {
			cfg := base
			m.mut(&cfg)
			r, err := trainCached(cfg, d, p)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes: %w", m.name, p, err)
			}
			x := float64(p)
			tt.X = append(tt.X, x)
			tt.Y = append(tt.Y, r.TotalHours*3600)
			nn.X = append(nn.X, x)
			nn.Y = append(nn.Y, float64(r.Epochs))
			mrr.X = append(mrr.X, x)
			mrr.Y = append(mrr.Y, r.MRR)
		}
		ttFig.Series = append(ttFig.Series, tt)
		nFig.Series = append(nFig.Series, nn)
		mrrFig.Series = append(mrrFig.Series, mrr)
	}
	return &metrics.Report{
		ID:      id,
		Title:   "Combined strategies on " + d.Name,
		Figures: []*metrics.Figure{ttFig, nFig, mrrFig},
	}, nil
}

func runFig8(o Options) (*metrics.Report, error) {
	return combinedReport("fig8", "fb15k", dataset15K(o), baseConfig15K(o), fb15kMethods(), o)
}

func runFig9(o Options) (*metrics.Report, error) {
	return combinedReport("fig9", "fb250k", dataset250K(o), baseConfig250K(o), fb250kMethods(), o)
}

func runHeadline(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	nodes := nodeCounts("fb250k", o)
	p := nodes[len(nodes)-1]

	baseline := base
	baseline.Comm = core.CommAllReduce
	rBase, err := trainCached(baseline, d, p)
	if err != nil {
		return nil, err
	}
	combined := base
	for _, m := range fb250kMethods() {
		if m.name == "DRS+1-bit+RP+SS" {
			m.mut(&combined)
		}
	}
	rComb, err := trainCached(combined, d, p)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Headline comparison at %d nodes on %s", p, d.Name),
		Headers: []string{"method", "TT (s)", "N", "TCA", "MRR"},
	}
	t.AddRow("baseline (allreduce)", rBase.TotalHours*3600, rBase.Epochs, rBase.TCA, rBase.MRR)
	t.AddRow("DRS+1-bit+RP+SS", rComb.TotalHours*3600, rComb.Epochs, rComb.TCA, rComb.MRR)
	speedup := 0.0
	if rComb.TotalHours > 0 {
		speedup = rBase.TotalHours / rComb.TotalHours
	}
	return &metrics.Report{
		ID:    "headline",
		Title: "Abstract headline reproduction",
		Notes: []string{
			fmt.Sprintf("speedup %.2fx (paper: 11.5h/6h = 1.92x on the full FB250K)", speedup),
			fmt.Sprintf("MRR delta %+.3f, TCA delta %+.1f", rComb.MRR-rBase.MRR, rComb.TCA-rBase.TCA),
		},
		Tables: []*metrics.Table{t},
	}, nil
}
