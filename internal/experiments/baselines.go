package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/kg"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Baseline result on FB15K (all-reduce vs all-gather)",
		Paper: "Table 1: TT, N, TCA, MRR for 1-8 nodes per method",
		Run: func(o Options) (*metrics.Report, error) {
			return baselineReport("table1", "fb15k", dataset15K(o), baseConfig15K(o), o)
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Baseline result on FB250K (all-reduce vs all-gather)",
		Paper: "Table 2: TT, N, TCA, MRR for 1-16 nodes per method",
		Run: func(o Options) (*metrics.Report, error) {
			return baselineReport("table2", "fb250k", dataset250K(o), baseConfig250K(o), o)
		},
	})
	register(Experiment{
		ID:    "fig1",
		Title: "Baseline total time, epochs and epoch time",
		Paper: "Figure 1a-d: TT on FB15K/FB250K, N and epoch time on FB250K",
		Run:   runFig1,
	})
}

// baselineRuns trains the two baseline methods over the node sweep,
// returning results[method][nodes].
func baselineRuns(d *kg.Dataset, base core.Config, family string, o Options) (map[core.CommStrategy]map[int]*core.Result, []int, error) {
	nodes := nodeCounts(family, o)
	out := map[core.CommStrategy]map[int]*core.Result{}
	for _, comm := range []core.CommStrategy{core.CommAllReduce, core.CommAllGather} {
		out[comm] = map[int]*core.Result{}
		for _, p := range nodes {
			cfg := base
			cfg.Comm = comm
			r, err := trainCached(cfg, d, p)
			if err != nil {
				return nil, nil, fmt.Errorf("baseline %v on %d nodes: %w", comm, p, err)
			}
			out[comm][p] = r
		}
	}
	return out, nodes, nil
}

func baselineReport(id, family string, d *kg.Dataset, base core.Config, o Options) (*metrics.Report, error) {
	runs, nodes, err := baselineRuns(d, base, family, o)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("Baseline on %s (TT in virtual seconds)", d.Name),
		Headers: []string{"nodes",
			"ar-TT(s)", "ar-N", "ar-TCA", "ar-MRR",
			"ag-TT(s)", "ag-N", "ag-TCA", "ag-MRR"},
	}
	for _, p := range nodes {
		ar := runs[core.CommAllReduce][p]
		ag := runs[core.CommAllGather][p]
		t.AddRow(p,
			ar.TotalHours*3600, ar.Epochs, ar.TCA, ar.MRR,
			ag.TotalHours*3600, ag.Epochs, ag.TCA, ag.MRR)
	}
	return &metrics.Report{
		ID:     id,
		Title:  "Baseline all-reduce vs all-gather",
		Tables: []*metrics.Table{t},
	}, nil
}

func runFig1(o Options) (*metrics.Report, error) {
	r15, nodes15, err := baselineRuns(dataset15K(o), baseConfig15K(o), "fb15k", o)
	if err != nil {
		return nil, err
	}
	r250, nodes250, err := baselineRuns(dataset250K(o), baseConfig250K(o), "fb250k", o)
	if err != nil {
		return nil, err
	}
	panel := func(title, ylabel string, runs map[core.CommStrategy]map[int]*core.Result, nodes []int, y func(*core.Result) float64) *metrics.Figure {
		f := &metrics.Figure{Title: title, XLabel: "nodes", YLabel: ylabel}
		for _, comm := range []core.CommStrategy{core.CommAllReduce, core.CommAllGather} {
			s := metrics.Series{Name: comm.String()}
			for _, p := range nodes {
				s.X = append(s.X, float64(p))
				s.Y = append(s.Y, y(runs[comm][p]))
			}
			f.Series = append(f.Series, s)
		}
		return f
	}
	tt := func(r *core.Result) float64 { return r.TotalHours * 3600 }
	n := func(r *core.Result) float64 { return float64(r.Epochs) }
	et := func(r *core.Result) float64 { return r.AvgEpochSeconds() }
	return &metrics.Report{
		ID:    "fig1",
		Title: "Baseline scaling behaviour",
		Figures: []*metrics.Figure{
			panel("fig1a: total time on FB15K", "virtual seconds", r15, nodes15, tt),
			panel("fig1b: total time on FB250K", "virtual seconds", r250, nodes250, tt),
			panel("fig1c: epochs on FB250K", "epochs", r250, nodes250, n),
			panel("fig1d: epoch time on FB250K", "seconds", r250, nodes250, et),
		},
	}, nil
}
