package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Relation-partition worked example",
		Paper: "Table 3: five triples over three relations split across two processors",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Relation partition on/off",
		Paper: "Figure 6a-b: TCA convergence on FB15K and epoch time on FB250K with and without RP",
		Run:   runFig6,
	})
}

func runTable3(o Options) (*metrics.Report, error) {
	// The exact triples of the paper's Table 3.
	triples := []kg.Triple{
		{H: 1, R: 1, T: 2},
		{H: 2, R: 1, T: 10},
		{H: 3, R: 2, T: 5},
		{H: 6, R: 3, T: 9},
		{H: 7, R: 3, T: 8},
	}
	parts := kg.RelationPartition(triples, 4, 2)
	in := &metrics.Table{Title: "Input triples (paper Table 3)", Headers: []string{"S.N.", "head", "relation", "tail"}}
	for i, t := range triples {
		in.AddRow(i+1, t.H, t.R, t.T)
	}
	out := &metrics.Table{Title: "Relation partition across 2 processors", Headers: []string{"processor", "head", "relation", "tail"}}
	for rank, part := range parts {
		for _, t := range part {
			out.AddRow(rank+1, t.H, t.R, t.T)
		}
	}
	notes := []string{
		fmt.Sprintf("relation overlap check: %d (-1 = disjoint)", kg.PartitionRelationsDisjoint(parts)),
		fmt.Sprintf("load: processor 1 holds %d triples, processor 2 holds %d", len(parts[0]), len(parts[1])),
	}
	return &metrics.Report{
		ID:     "table3",
		Title:  "Relation partition example",
		Notes:  notes,
		Tables: []*metrics.Table{in, out},
	}, nil
}

func runFig6(o Options) (*metrics.Report, error) {
	// Panel a: TCA convergence on FB15K with RS+1-bit, +- relation
	// partition, 2 nodes.
	convFig := &metrics.Figure{Title: "fig6a: validation TCA per epoch (FB15K, RS+1-bit)", XLabel: "epoch", YLabel: "TCA %"}
	for _, rp := range []bool{false, true} {
		cfg := baseConfig15K(o)
		cfg.Comm = core.CommAllGather
		cfg.Select = grad.SelectBernoulli
		cfg.Quant = grad.OneBitMax
		cfg.RelationPartition = rp
		cfg.TrackEpochStats = true
		r, err := trainCached(cfg, dataset15K(o), 2)
		if err != nil {
			return nil, err
		}
		name := "without partition"
		if rp {
			name = "with partition"
		}
		s := metrics.Series{Name: name}
		for _, e := range r.PerEpoch {
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, e.ValTCA)
		}
		convFig.Series = append(convFig.Series, s)
	}

	// Panel b: epoch time vs nodes on FB250K with DRS+1-bit, +- RP.
	timeFig := &metrics.Figure{Title: "fig6b: epoch time (FB250K, DRS+1-bit)", XLabel: "nodes", YLabel: "seconds"}
	nodes := nodeCounts("fb250k", o)
	relBytes := &metrics.Table{
		Title:   "Relation gradient bytes per run (the communication RP eliminates)",
		Headers: []string{"nodes", "without RP", "with RP"},
	}
	for _, rp := range []bool{false, true} {
		name := "without partition"
		if rp {
			name = "with partition"
		}
		s := metrics.Series{Name: name}
		for _, p := range nodes {
			cfg := baseConfig250K(o)
			cfg.Comm = core.CommDynamic
			cfg.Select = grad.SelectBernoulli
			cfg.Quant = grad.OneBitMax
			cfg.RelationPartition = rp
			r, err := trainCached(cfg, dataset250K(o), p)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, r.AvgEpochSeconds())
		}
		timeFig.Series = append(timeFig.Series, s)
	}
	// Fill the relation-bytes table from the cached runs.
	for _, p := range nodes {
		var row [2]int64
		for i, rp := range []bool{false, true} {
			cfg := baseConfig250K(o)
			cfg.Comm = core.CommDynamic
			cfg.Select = grad.SelectBernoulli
			cfg.Quant = grad.OneBitMax
			cfg.RelationPartition = rp
			r, err := trainCached(cfg, dataset250K(o), p)
			if err != nil {
				return nil, err
			}
			row[i] = r.RelationCommBytes
		}
		relBytes.AddRow(p, fmt.Sprintf("%d", row[0]), fmt.Sprintf("%d", row[1]))
	}
	return &metrics.Report{
		ID:      "fig6",
		Title:   "Relation partition",
		Tables:  []*metrics.Table{relBytes},
		Figures: []*metrics.Figure{convFig, timeFig},
	}, nil
}
