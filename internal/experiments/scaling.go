package experiments

import (
	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "scaling",
		Title: "Strong-scaling efficiency",
		Paper: "The HPC reading of Figures 1 and 9: speedup and parallel efficiency per strategy",
		Run:   runScaling,
	})
}

// runScaling derives speedup and parallel efficiency of epoch time versus
// single-node execution for the baseline and the combined strategies —
// quantifying the paper's observation that "we do not get a strong scaling"
// with the baseline, and how much the strategies recover.
func runScaling(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	nodes := nodeCounts("fb250k", o)

	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"allreduce baseline", func(c *core.Config) { c.Comm = core.CommAllReduce }},
		{"DRS+1-bit+RP+SS", func(c *core.Config) {
			c.Comm = core.CommDynamic
			c.Select = grad.SelectBernoulli
			c.Quant = grad.OneBitMax
			c.RelationPartition = true
			c.NegSelect = true
			c.NegSamples = 5
		}},
	}
	t := &metrics.Table{
		Title:   "Epoch-time strong scaling on " + d.Name,
		Headers: []string{"strategy", "nodes", "epoch (ms)", "speedup", "efficiency"},
	}
	for _, v := range variants {
		var baseEpoch float64
		for _, p := range nodes {
			cfg := base
			v.mut(&cfg)
			r, err := trainCached(cfg, d, p)
			if err != nil {
				return nil, err
			}
			et := r.AvgEpochSeconds()
			if p == nodes[0] {
				baseEpoch = et * float64(nodes[0])
			}
			speedup := baseEpoch / et
			t.AddRow(v.name, p, et*1000, speedup, speedup/float64(p))
		}
	}
	return &metrics.Report{
		ID:    "scaling",
		Title: "Strong-scaling efficiency",
		Notes: []string{
			"efficiency = speedup / nodes; the baseline's fall-off past 4-8",
			"nodes is the saturation the paper reports, and the combined",
			"strategies' higher efficiency is their communication savings.",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
