package experiments

import (
	"fmt"
	"sort"

	"kgedist/internal/metrics"
)

// Experiment regenerates one paper artifact (a table or figure).
type Experiment struct {
	// ID is the harness name, e.g. "table1" or "fig8".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper describes what the original artifact shows.
	Paper string
	// Run executes the experiment and returns the rendered report.
	Run func(o Options) (*metrics.Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	// Apply run-averaging (Options.Repeats, the paper's §3.3 five-run
	// averaging) before every experiment body.
	inner := e.Run
	e.Run = func(o Options) (*metrics.Report, error) {
		SetRepeats(o.repeats())
		return inner(o)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (run 'kgebench -list')", id)
	}
	return e, nil
}
