package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/eval"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/metrics"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "categories",
		Title: "Link prediction by relation category (1-1, 1-N, N-1, N-N)",
		Paper: "Standard KGE analysis grid (Bordes et al.) applied to the trained ComplEx model",
		Run:   runCategories,
	})
	register(Experiment{
		ID:    "commvolume",
		Title: "Communication volume per strategy",
		Paper: "The byte-level mechanism behind Figures 8-9: what each strategy removes from the wire",
		Run:   runCommVolume,
	})
}

func runCategories(o Options) (*metrics.Report, error) {
	d := dataset15K(o)
	cfg := baseConfig15K(o)
	cfg.Comm = core.CommAllGather
	cfg.Select = grad.SelectBernoulli
	cfg.Quant = grad.OneBitMax
	cfg.RelationPartition = true
	cfg.NegSelect = true
	cfg.NegSamples = 10
	r, err := trainCached(cfg, d, 2)
	if err != nil {
		return nil, err
	}
	m := model.New(cfg.ModelName, cfg.Dim)
	filter := kg.NewFilterIndex(d)
	det := eval.DetailedLinkPrediction(m, r.FinalParams, d, filter, cfg.TestSample, xrand.New(cfg.Seed+5))
	t := &metrics.Table{
		Title:   "Filtered MRR by relation category (RS+1-bit+RP+SS model)",
		Headers: []string{"category", "triples", "head-MRR", "tail-MRR"},
	}
	for _, cat := range []eval.RelationCategory{eval.Cat1To1, eval.Cat1ToN, eval.CatNTo1, eval.CatNToN} {
		sr, ok := det.ByCategory[cat]
		if !ok {
			continue
		}
		t.AddRow(cat.String(), sr.Triples, sr.HeadMRR, sr.TailMRR)
	}
	t.AddRow("overall", det.Overall.Triples, det.Overall.HeadMRR, det.Overall.TailMRR)
	return &metrics.Report{
		ID:     "categories",
		Title:  "Relation-category breakdown",
		Tables: []*metrics.Table{t},
	}, nil
}

func runCommVolume(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	// 12 epochs so the dynamic strategy's epoch-10 probe fires within the
	// measured window.
	epochs := 12
	if o.Quick {
		epochs = 2
	}
	base.MaxEpochs = epochs
	base.StopPatience = epochs + 1
	nodes := 8
	if o.Quick {
		nodes = 4
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Bytes moved in %d epochs on %d nodes (%s)", epochs, nodes, d.Name),
		Headers: []string{"strategy", "total MB", "entity MB", "relation MB", "comm (s)"},
	}
	for _, m := range fb250kMethods() {
		cfg := base
		m.mut(&cfg)
		r, err := trainCached(cfg, d, nodes)
		if err != nil {
			return nil, err
		}
		entity := r.CommBytes - r.RelationCommBytes
		t.AddRow(m.name,
			float64(r.CommBytes)/1e6,
			float64(entity)/1e6,
			float64(r.RelationCommBytes)/1e6,
			r.CommHours*3600)
	}
	return &metrics.Report{
		ID:    "commvolume",
		Title: "Communication volume per strategy",
		Notes: []string{
			"RS thins the row set, 1-bit shrinks each row ~20-30x on the wire,",
			"RP zeroes the relation column entirely.",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
