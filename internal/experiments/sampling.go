package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Negative sample selection ratios (1-bit quantization, 2 nodes)",
		Paper: "Table 4: TT, N, MRR, TCA for 1-of-n and n-of-n sampling on FB15K",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "1-out-of-n vs n-out-of-n sampling",
		Paper: "Figure 7a-d: convergence, TT, MRR, N vs number of samples on FB15K",
		Run:   runFig7,
	})
}

// ratio describes an "m out of n" sampling scheme: n candidates drawn, and
// either the hardest one (selectHardest) or all n trained on.
type ratio struct {
	n             int
	selectHardest bool
}

func (r ratio) label() string {
	if r.selectHardest {
		return fmt.Sprintf("1 out of %d", r.n)
	}
	return fmt.Sprintf("%d out of %d", r.n, r.n)
}

// ratioRun trains one sampling configuration on FB15K-mini with 1-bit
// quantization at 2 nodes (the paper's Table 4 setup).
func ratioRun(o Options, r ratio) (*core.Result, error) {
	cfg := baseConfig15K(o)
	cfg.Comm = core.CommAllGather
	cfg.Select = grad.SelectBernoulli
	cfg.Quant = grad.OneBitMax
	cfg.NegSamples = r.n
	cfg.NegSelect = r.selectHardest
	return trainCached(cfg, dataset15K(o), 2)
}

func table4Ratios(o Options) []ratio {
	if o.Quick {
		return []ratio{{1, true}, {5, true}, {5, false}}
	}
	return []ratio{
		{1, true}, {5, true}, {10, true}, {20, true}, {30, true},
		{5, false}, {10, false},
	}
}

func runTable4(o Options) (*metrics.Report, error) {
	t := &metrics.Table{
		Title:   "Sample selection with 1-bit gradient quantization on 2 nodes",
		Headers: []string{"sample ratio", "TT (s)", "N", "MRR", "TCA"},
	}
	for _, r := range table4Ratios(o) {
		res, err := ratioRun(o, r)
		if err != nil {
			return nil, fmt.Errorf("ratio %s: %w", r.label(), err)
		}
		t.AddRow(r.label(), res.TotalHours*3600, res.Epochs, res.MRR, res.TCA)
	}
	return &metrics.Report{
		ID:     "table4",
		Title:  "Negative sample selection",
		Tables: []*metrics.Table{t},
	}, nil
}

func runFig7(o Options) (*metrics.Report, error) {
	oneOf := []int{1, 5, 10, 20, 30}
	nOf := []int{1, 5, 10}
	if o.Quick {
		oneOf = []int{1, 5}
		nOf = []int{1, 5}
	}

	// Panel a: convergence for a representative pair.
	convFig := &metrics.Figure{Title: "fig7a: validation accuracy per epoch", XLabel: "epoch", YLabel: "val %"}
	convPairs := []ratio{{5, true}, {5, false}}
	if !o.Quick {
		convPairs = append(convPairs, ratio{10, false})
	}
	for _, r := range convPairs {
		res, err := ratioRun(o, r)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Name: r.label()}
		for _, e := range res.PerEpoch {
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, e.ValAccuracy)
		}
		convFig.Series = append(convFig.Series, s)
	}

	// Panels b-d: TT, MRR, N versus n for both schemes.
	ttFig := &metrics.Figure{Title: "fig7b: total training time", XLabel: "samples n", YLabel: "virtual seconds"}
	mrrFig := &metrics.Figure{Title: "fig7c: MRR", XLabel: "samples n", YLabel: "MRR"}
	nFig := &metrics.Figure{Title: "fig7d: epochs to convergence", XLabel: "samples n", YLabel: "epochs"}
	for _, scheme := range []struct {
		name    string
		ns      []int
		hardest bool
	}{
		{"1 out of n", oneOf, true},
		{"n out of n", nOf, false},
	} {
		tt := metrics.Series{Name: scheme.name}
		mrr := metrics.Series{Name: scheme.name}
		nn := metrics.Series{Name: scheme.name}
		for _, n := range scheme.ns {
			res, err := ratioRun(o, ratio{n, scheme.hardest})
			if err != nil {
				return nil, err
			}
			x := float64(n)
			tt.X = append(tt.X, x)
			tt.Y = append(tt.Y, res.TotalHours*3600)
			mrr.X = append(mrr.X, x)
			mrr.Y = append(mrr.Y, res.MRR)
			nn.X = append(nn.X, x)
			nn.Y = append(nn.Y, float64(res.Epochs))
		}
		ttFig.Series = append(ttFig.Series, tt)
		mrrFig.Series = append(mrrFig.Series, mrr)
		nFig.Series = append(nFig.Series, nn)
	}
	return &metrics.Report{
		ID:      "fig7",
		Title:   "Negative sampling schemes",
		Figures: []*metrics.Figure{convFig, ttFig, mrrFig, nFig},
	}, nil
}
