package experiments

import (
	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "2-bit quantization with and without random selection",
		Paper: "Figure 4: convergence of 2-bit quantization +- random selection on FB15K",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "1-bit vs 2-bit quantization",
		Paper: "Figure 5a-b: total training time and MRR vs nodes for both schemes (with RS)",
		Run:   runFig5,
	})
}

func runFig4(o Options) (*metrics.Report, error) {
	d := dataset15K(o)
	variants := []struct {
		name string
		sel  grad.SelectMode
	}{
		{"2-bit", grad.SelectAll},
		{"2-bit + RS", grad.SelectBernoulli},
	}
	fig := &metrics.Figure{Title: "fig4: validation TCA per epoch", XLabel: "epoch", YLabel: "TCA %"}
	for _, v := range variants {
		cfg := baseConfig15K(o)
		cfg.Comm = core.CommAllGather
		cfg.Quant = grad.TwoBitTernary
		cfg.Select = v.sel
		cfg.TrackEpochStats = true
		r, err := trainCached(cfg, d, 2)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Name: v.name}
		for _, e := range r.PerEpoch {
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, e.ValTCA)
		}
		fig.Series = append(fig.Series, s)
	}
	return &metrics.Report{
		ID:      "fig4",
		Title:   "2-bit quantization with random selection",
		Notes:   []string{"Random selection should not degrade the 2-bit convergence curve."},
		Figures: []*metrics.Figure{fig},
	}, nil
}

func runFig5(o Options) (*metrics.Report, error) {
	d := dataset15K(o)
	nodes := nodeCounts("fb15k", o)
	schemes := []struct {
		name string
		q    grad.Scheme
	}{
		{"1-bit quantization", grad.OneBitMax},
		{"2-bit quantization", grad.TwoBitTernary},
	}
	ttFig := &metrics.Figure{Title: "fig5a: total training time (with RS)", XLabel: "nodes", YLabel: "virtual seconds"}
	mrrFig := &metrics.Figure{Title: "fig5b: MRR (with RS)", XLabel: "nodes", YLabel: "MRR"}
	for _, sc := range schemes {
		tt := metrics.Series{Name: sc.name}
		mrr := metrics.Series{Name: sc.name}
		for _, p := range nodes {
			cfg := baseConfig15K(o)
			cfg.Comm = core.CommAllGather
			cfg.Select = grad.SelectBernoulli
			cfg.Quant = sc.q
			r, err := trainCached(cfg, d, p)
			if err != nil {
				return nil, err
			}
			tt.X = append(tt.X, float64(p))
			tt.Y = append(tt.Y, r.TotalHours*3600)
			mrr.X = append(mrr.X, float64(p))
			mrr.Y = append(mrr.Y, r.MRR)
		}
		ttFig.Series = append(ttFig.Series, tt)
		mrrFig.Series = append(mrrFig.Series, mrr)
	}
	return &metrics.Report{
		ID:      "fig5",
		Title:   "1-bit vs 2-bit gradient quantization",
		Figures: []*metrics.Figure{ttFig, mrrFig},
	}, nil
}
