package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "strategies",
		Title: "Cumulative strategy attribution",
		Paper: "Section 5.3's narrative as one table: what each strategy adds on top of the previous ones",
		Run:   runStrategies,
	})
}

// runStrategies stacks the five strategies one at a time at a fixed node
// count, attributing the time and accuracy movement to each addition —
// the quantitative version of the paper's §5.3 summary discussion.
func runStrategies(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	nodes := 8
	if o.Quick {
		nodes = 4
	}

	steps := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"baseline (allreduce)", func(c *core.Config) { c.Comm = core.CommAllReduce }},
		{"+ dynamic selection", func(c *core.Config) { c.Comm = core.CommDynamic }},
		{"+ random selection", func(c *core.Config) { c.Select = grad.SelectBernoulli }},
		{"+ 1-bit quantization", func(c *core.Config) { c.Quant = grad.OneBitMax }},
		{"+ relation partition", func(c *core.Config) { c.RelationPartition = true }},
		{"+ sample selection", func(c *core.Config) {
			c.NegSelect = true
			c.NegSamples = 5
		}},
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Each strategy stacked on the previous, %d nodes on %s", nodes, d.Name),
		Headers: []string{"configuration", "TT (s)", "N", "epoch (ms)",
			"comm MB", "TCA", "MRR"},
	}
	cfg := base
	for _, s := range steps {
		s.mut(&cfg)
		r, err := trainCached(cfg, d, nodes)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		t.AddRow(s.name, r.TotalHours*3600, r.Epochs,
			r.AvgEpochSeconds()*1000, float64(r.CommBytes)/1e6, r.TCA, r.MRR)
	}
	return &metrics.Report{
		ID:     "strategies",
		Title:  "Cumulative strategy attribution",
		Tables: []*metrics.Table{t},
	}, nil
}
