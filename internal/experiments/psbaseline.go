package experiments

import (
	"fmt"

	"kgedist/internal/core"
	"kgedist/internal/metrics"
	"kgedist/internal/ps"
)

func init() {
	register(Experiment{
		ID:    "psbaseline",
		Title: "Parameter-server baseline vs synchronous all-reduce",
		Paper: "Section 1 motivation: the server bottleneck that all-reduce training avoids",
		Run:   runPSBaseline,
	})
}

// runPSBaseline quantifies the introduction's argument: with the same
// worker count, a parameter server with few servers bottlenecks on server
// bandwidth, while the all-reduce architecture spreads the same exchange
// across all nodes.
func runPSBaseline(o Options) (*metrics.Report, error) {
	d := dataset250K(o)
	base := baseConfig250K(o)
	workers := 8
	epochs := 10
	if o.Quick {
		workers = 4
		epochs = 3
	}

	t := &metrics.Table{
		Title:   fmt.Sprintf("Fixed %d workers, %d epochs on %s", workers, epochs, d.Name),
		Headers: []string{"architecture", "TT (s)", "comm (s)", "comm MB", "TCA", "MRR"},
	}

	// All-reduce (the paper's baseline architecture).
	arCfg := base
	arCfg.Comm = core.CommAllReduce
	arCfg.MaxEpochs = epochs
	arCfg.StopPatience = epochs + 1
	ar, err := trainCached(arCfg, d, workers)
	if err != nil {
		return nil, err
	}
	t.AddRow("allreduce (Horovod-style)", ar.TotalHours*3600, ar.CommHours*3600,
		float64(ar.CommBytes)/1e6, ar.TCA, ar.MRR)

	// Parameter server with 1, 2, 4 servers.
	for _, servers := range []int{1, 2, 4} {
		cfg := ps.DefaultConfig()
		cfg.Dim = base.Dim
		cfg.BaseLR = base.BaseLR
		cfg.BatchSize = base.BatchSize
		cfg.MaxEpochs = epochs
		cfg.NegSamples = base.NegSamples
		cfg.TestSample = base.TestSample
		cfg.Seed = base.Seed
		r, err := ps.Train(cfg, d, workers, servers)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("parameter server (%d server)", servers),
			r.TotalHours*3600, r.CommHours*3600, float64(r.CommBytes)/1e6, r.TCA, r.MRR)
	}
	return &metrics.Report{
		ID:    "psbaseline",
		Title: "Parameter-server baseline",
		Notes: []string{
			"The PS rows show the single-server bottleneck the paper's introduction",
			"describes; adding servers spreads the same byte volume.",
		},
		Tables: []*metrics.Table{t},
	}, nil
}
