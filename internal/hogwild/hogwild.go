// Package hogwild implements lock-free shared-memory parallel KGE training
// — the approach of the paper's related work (§2: Zhang et al. and Niu et
// al. "train the KGE using shared memory parallelism by employing lock-free
// updates in a multi-threaded environment"). It serves as the intra-node
// baseline: threads share one parameter store and apply sparse SGD updates
// without locks (Hogwild!, Recht et al. 2011), racing benignly on the rare
// row collisions.
//
// Shared rows are never touched through plain loads and stores: workers
// snapshot the three rows of a triple with tensor.AtomicRowLoad, compute the
// gradient on the thread-local copies via Model.ScoreRows /
// AccumulateScoreGradRows, and apply the update with tensor.AtomicRowAxpy
// (per-element compare-and-swap). The algorithm is still lock-free Hogwild —
// snapshots and updates from different threads interleave at word
// granularity — but every shared access is a sync/atomic operation, so
// `go test -race ./internal/hogwild` runs clean. The atomicrow analyzer in
// internal/lint enforces this invariant.
//
// Unlike internal/core this trainer runs on real threads with real shared
// memory (no virtual cluster): it demonstrates what a single 24-core node of
// the paper's testbed does between collectives, and its wall-clock scaling
// is measured directly in the benchmarks.
package hogwild

import (
	"fmt"
	"runtime"
	"sync"

	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// Config assembles a Hogwild run. SGD only: lock-free Adam requires shared
// moment state and loses its guarantees; the original Hogwild analysis (and
// the cited KGE systems) use plain SGD.
type Config struct {
	// ModelName and Dim select the KGE model.
	ModelName string
	Dim       int
	// LR is the constant SGD step size.
	LR float64
	// Epochs is the number of full passes over the training split.
	Epochs int
	// NegSamples per positive triple.
	NegSamples int
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// TestSample subsamples the final ranking evaluation.
	TestSample int
	Seed       uint64
}

// DefaultConfig returns a small-footprint configuration.
func DefaultConfig() Config {
	return Config{
		ModelName:  "complex",
		Dim:        16,
		LR:         0.05,
		Epochs:     20,
		NegSamples: 2,
		TestSample: 150,
		Seed:       1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.LR <= 0 || c.Epochs <= 0 || c.NegSamples < 1 {
		return fmt.Errorf("hogwild: invalid config %+v", c)
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Threads int
	Epochs  int
	TCA     float64
	MRR     float64
}

// Train runs lock-free parallel SGD over the dataset and evaluates the
// final embeddings. The returned parameters are shared state mutated by all
// threads; per the Hogwild contract the result is not bit-deterministic
// across runs when Threads > 1.
func Train(cfg Config, d *kg.Dataset) (*Result, *model.Params, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if len(d.Train) == 0 {
		return nil, nil, fmt.Errorf("hogwild: empty training split")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	params := model.NewParams(m, d.NumEntities, d.NumRelations)
	params.Init(m, xrand.New(cfg.Seed).Split(0))
	lr := float32(cfg.LR)
	w := m.Width()

	// Static shard per thread; each thread re-shuffles its shard per epoch.
	shards := kg.UniformPartition(d.Train, threads)

	// One scratch per worker for the whole run: each is owned by exactly one
	// tID across epochs, so the per-triple inner loop never allocates.
	scratches := make([]*model.Scratch, threads)
	for i := range scratches {
		scratches[i] = model.NewScratch(w)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var wg sync.WaitGroup
		for tID := 0; tID < threads; tID++ {
			wg.Add(1)
			go func(tID int) {
				defer wg.Done()
				rng := xrand.New(cfg.Seed).Split(uint64(1 + epoch*threads + tID))
				sampler := model.NewNegSampler(d.NumEntities, rng.Split(1))
				shard := shards[tID]
				order := rng.Perm(len(shard))
				ws := scratches[tID]
				for _, i := range order {
					pos := shard[i]
					step(m, params, pos, 1, lr, ws)
					for k := 0; k < cfg.NegSamples; k++ {
						step(m, params, sampler.Corrupt(pos), -1, lr, ws)
					}
				}
			}(tID)
		}
		wg.Wait()
	}

	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 99)
	lp := eval.LinkPrediction(m, params, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, params, d, filter, evalRng)
	return &Result{
		Threads: threads,
		Epochs:  cfg.Epochs,
		TCA:     tc.Accuracy,
		MRR:     lp.FilteredMRR,
	}, params, nil
}

// step applies one lock-free SGD update for a labeled triple: atomic row
// snapshots in, gradient on the thread-local copies, CAS-axpy updates out.
// Another thread may update a row between our snapshot and our axpy; the
// axpy still lands atomically on the then-current values, which is exactly
// the stale-gradient tolerance the Hogwild analysis relies on. ws is the
// calling worker's exclusively-owned scratch; step itself is
// allocation-free.
//
//kgelint:hotpath
func step(m model.Model, p *model.Params, tr kg.Triple, y float32, lr float32, ws *model.Scratch) {
	p.Entity.AtomicRowLoad(int(tr.H), ws.H)
	p.Relation.AtomicRowLoad(int(tr.R), ws.R)
	p.Entity.AtomicRowLoad(int(tr.T), ws.T)
	ws.ZeroGrads()
	score := m.ScoreRows(ws.H, ws.R, ws.T)
	coef := model.LogisticLossGrad(score, y)
	m.AccumulateScoreGradRows(ws.H, ws.R, ws.T, coef, ws.GH, ws.GR, ws.GT)
	p.Entity.AtomicRowAxpy(int(tr.H), -lr, ws.GH)
	p.Relation.AtomicRowAxpy(int(tr.R), -lr, ws.GR)
	p.Entity.AtomicRowAxpy(int(tr.T), -lr, ws.GT)
}
