package hogwild

import (
	"testing"

	"kgedist/internal/kg"
)

func hwDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "hw-test", Entities: 300, Relations: 30, Triples: 5000,
		Communities: 6, Seed: 42,
	})
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.LR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero LR accepted")
	}
}

func TestRejectsEmptyDataset(t *testing.T) {
	if _, _, err := Train(DefaultConfig(), &kg.Dataset{NumEntities: 5, NumRelations: 1}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

// learnEpochs returns the epoch budget and matching accuracy floor: the full
// 30-epoch run asserts strong convergence; -short (notably the race-detector
// tier, ~10-20x slower per instruction) trains a third as long and accepts a
// correspondingly looser—but still far-above-chance—floor.
func learnEpochs() (epochs int, minTCA float64) {
	if testing.Short() {
		return 10, 58
	}
	return 30, 70
}

func TestSingleThreadLearns(t *testing.T) {
	epochs, minTCA := learnEpochs()
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Threads = 1
	cfg.Epochs = epochs
	cfg.TestSample = 60
	res, params, err := Train(cfg, hwDataset())
	if err != nil {
		t.Fatal(err)
	}
	if res.TCA < minTCA {
		t.Fatalf("TCA = %v, expected learning", res.TCA)
	}
	if res.MRR < 0.05 {
		t.Fatalf("MRR = %v", res.MRR)
	}
	if params == nil || params.Entity.NonZeroRows() == 0 {
		t.Fatal("no trained parameters returned")
	}
	if res.Threads != 1 || res.Epochs != epochs {
		t.Fatalf("metadata %+v", res)
	}
}

func TestLockFreeParallelStillLearns(t *testing.T) {
	// The Hogwild claim: lock-free word-atomic updates racing on sparse rows
	// do not prevent convergence. 4 threads racing on shared parameters must
	// reach accuracy comparable to single-threaded training.
	epochs, minTCA := learnEpochs()
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Threads = 4
	cfg.Epochs = epochs
	cfg.TestSample = 60
	res, _, err := Train(cfg, hwDataset())
	if err != nil {
		t.Fatal(err)
	}
	if res.TCA < minTCA-5 {
		t.Fatalf("4-thread TCA = %v: racing destroyed convergence", res.TCA)
	}
	if res.Threads != 4 {
		t.Fatalf("threads %d", res.Threads)
	}
}

func TestDefaultThreadsFromGOMAXPROCS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 4
	cfg.Epochs = 1
	cfg.TestSample = 10
	res, _, err := Train(cfg, hwDataset())
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads < 1 {
		t.Fatalf("threads %d", res.Threads)
	}
}

func BenchmarkHogwildEpoch(b *testing.B) {
	d := hwDataset()
	for _, threads := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "t1", 2: "t2", 4: "t4"}[threads], func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Dim = 8
			cfg.Threads = threads
			cfg.Epochs = 1
			cfg.TestSample = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Train(cfg, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
