package simnet

// Fault injection for the simulated cluster. A FaultPlan is a deterministic
// schedule keyed to *virtual* time: because every clock advance in the
// simulation is itself deterministic (compute charges and collective costs
// are pure functions of the workload), the same seed and the same plan
// reproduce bit-identical failure points, which is what makes recovery
// testable. The cluster consults the plan as clocks advance:
//
//   - FaultCrash: the rank is declared dead the first time its clock reaches
//     At. The mpi layer polls CrashDue at collective entry (the only points
//     where a rank's clock is globally meaningful), so a crash always
//     manifests at a rendezvous — matching the paper's bulk-synchronous loop,
//     where a dead rank is only ever *observed* by a stalled collective.
//   - FaultSlow: while the rank's clock is inside [At, At+Duration) its
//     compute throughput is divided by Factor — a thermal-throttle /
//     noisy-neighbour transient on top of the permanent SetComputeSpeed knob.
//   - FaultDelay: while the cluster clock is inside [At, At+Duration) every
//     collective's cost is multiplied by Factor — a network congestion spike.
//     All ranks participate in every collective here, so the spike is charged
//     globally regardless of which rank's NIC is nominally congested.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// FaultKind discriminates the fault types of a FaultPlan.
type FaultKind int

// Supported fault kinds.
const (
	// FaultCrash kills the rank permanently at virtual time At.
	FaultCrash FaultKind = iota
	// FaultSlow divides the rank's compute speed by Factor during
	// [At, At+Duration).
	FaultSlow
	// FaultDelay multiplies every collective's cost by Factor during
	// [At, At+Duration).
	FaultDelay
)

// String returns the plan-syntax keyword for the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSlow:
		return "slow"
	case FaultDelay:
		return "delay"
	}
	return "unknown"
}

// Fault is one scheduled failure event.
type Fault struct {
	// Kind selects crash, slowdown or delay-spike behaviour.
	Kind FaultKind
	// Rank is the target rank (for FaultDelay it records the nominally
	// congested rank; the spike itself is charged to every collective).
	Rank int
	// At is the virtual time in seconds at which the fault arms.
	At float64
	// Duration is the window length in seconds (FaultSlow and FaultDelay).
	Duration float64
	// Factor is the slowdown divisor (FaultSlow) or cost multiplier
	// (FaultDelay); must be >= 1.
	Factor float64
}

// FaultPlan is a schedule of failure events for one run.
type FaultPlan struct {
	Faults []Fault
}

// Validate reports plan errors against a cluster of p ranks.
func (fp *FaultPlan) Validate(p int) error {
	for i, f := range fp.Faults {
		if f.Rank < 0 || f.Rank >= p {
			return fmt.Errorf("simnet: fault %d targets rank %d, world has %d", i, f.Rank, p)
		}
		// NaN compares false against every bound, so the checks below must
		// reject non-finite values explicitly: a NaN trigger time would
		// otherwise validate and then never fire (clock >= NaN is false) — a
		// silent no-op fault, which is the worst failure mode a test plan
		// can have.
		if f.At < 0 || math.IsNaN(f.At) || math.IsInf(f.At, 0) {
			return fmt.Errorf("simnet: fault %d has negative or non-finite trigger time %v", i, f.At)
		}
		switch f.Kind {
		case FaultCrash:
		case FaultSlow, FaultDelay:
			if !(f.Duration > 0) || math.IsInf(f.Duration, 0) {
				return fmt.Errorf("simnet: %s fault %d needs a positive finite duration, got %v", f.Kind, i, f.Duration)
			}
			if !(f.Factor >= 1) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("simnet: %s fault %d needs a finite factor >= 1, got %v", f.Kind, i, f.Factor)
			}
		default:
			return fmt.Errorf("simnet: fault %d has unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// Clone returns a deep copy of the plan.
func (fp *FaultPlan) Clone() *FaultPlan {
	if fp == nil {
		return nil
	}
	return &FaultPlan{Faults: append([]Fault(nil), fp.Faults...)}
}

// String renders the plan in ParseFaultPlan syntax.
func (fp *FaultPlan) String() string {
	parts := make([]string, len(fp.Faults))
	for i, f := range fp.Faults {
		switch f.Kind {
		case FaultCrash:
			parts[i] = fmt.Sprintf("crash:%d@%g", f.Rank, f.At)
		default:
			parts[i] = fmt.Sprintf("%s:%d@%g+%gx%g", f.Kind, f.Rank, f.At, f.Duration, f.Factor)
		}
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses a comma-separated fault schedule:
//
//	crash:RANK@T          rank RANK dies at virtual second T
//	slow:RANK@T+DxF       rank RANK computes F times slower for D seconds from T
//	delay:RANK@T+DxF      collectives cost F times more for D seconds from T
//
// Example: "crash:2@350,slow:0@100+50x4". Rank bounds are checked later by
// Validate, once the cluster size is known.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("simnet: fault %q: want kind:rank@time", entry)
		}
		var kind FaultKind
		switch kindStr {
		case "crash":
			kind = FaultCrash
		case "slow":
			kind = FaultSlow
		case "delay":
			kind = FaultDelay
		default:
			return nil, fmt.Errorf("simnet: unknown fault kind %q (want crash, slow or delay)", kindStr)
		}
		rankStr, timing, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("simnet: fault %q: missing @time", entry)
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return nil, fmt.Errorf("simnet: fault %q: bad rank %q", entry, rankStr)
		}
		f := Fault{Kind: kind, Rank: rank}
		if kind == FaultCrash {
			if f.At, err = strconv.ParseFloat(timing, 64); err != nil {
				return nil, fmt.Errorf("simnet: fault %q: bad time %q", entry, timing)
			}
		} else {
			atStr, window, ok := strings.Cut(timing, "+")
			if !ok {
				return nil, fmt.Errorf("simnet: fault %q: want @time+durationxfactor", entry)
			}
			durStr, facStr, ok := strings.Cut(window, "x")
			if !ok {
				return nil, fmt.Errorf("simnet: fault %q: want duration x factor", entry)
			}
			if f.At, err = strconv.ParseFloat(atStr, 64); err != nil {
				return nil, fmt.Errorf("simnet: fault %q: bad time %q", entry, atStr)
			}
			if f.Duration, err = strconv.ParseFloat(durStr, 64); err != nil {
				return nil, fmt.Errorf("simnet: fault %q: bad duration %q", entry, durStr)
			}
			if f.Factor, err = strconv.ParseFloat(facStr, 64); err != nil {
				return nil, fmt.Errorf("simnet: fault %q: bad factor %q", entry, facStr)
			}
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, fmt.Errorf("simnet: empty fault plan %q", spec)
	}
	return plan, nil
}

// SetFaultPlan attaches a (copied) fault schedule to the cluster. Passing nil
// clears it. The plan is validated against the current world size.
func (c *Cluster) SetFaultPlan(fp *FaultPlan) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fp == nil {
		c.plan = nil
		c.faultFired = nil
		return nil
	}
	if err := fp.Validate(len(c.clocks)); err != nil {
		return err
	}
	c.plan = fp.Clone()
	c.faultFired = make([]bool, len(c.plan.Faults))
	return nil
}

// ClearFaultPlan removes any remaining scheduled faults; already-fired
// injections stay counted. Used by the single-node degradation path, where
// the distributed failure model no longer applies.
func (c *Cluster) ClearFaultPlan() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = nil
	c.faultFired = nil
}

// FaultsInjected returns how many scheduled faults have fired so far
// (a window fault counts once, on first application).
func (c *Cluster) FaultsInjected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faultsInjected
}

// CrashDue reports whether an armed crash fault for rank has come due
// (rank's clock reached its trigger time), consuming it. The mpi layer calls
// this at collective entry; the first true return is the moment the rank
// dies.
func (c *Cluster) CrashDue(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan == nil {
		return false
	}
	due := false
	for i, f := range c.plan.Faults {
		if f.Kind == FaultCrash && f.Rank == rank && !c.faultFired[i] && c.clocks[rank] >= f.At {
			c.faultFired[i] = true
			c.faultsInjected++
			due = true
		}
	}
	return due
}

// effectiveSpeed returns rank's compute speed with any active slowdown
// windows applied. Caller holds c.mu.
func (c *Cluster) effectiveSpeed(rank int) float64 {
	s := c.speed[rank]
	if c.plan == nil {
		return s
	}
	t := c.clocks[rank]
	for i, f := range c.plan.Faults {
		if f.Kind == FaultSlow && f.Rank == rank && t >= f.At && t < f.At+f.Duration {
			s /= f.Factor
			if !c.faultFired[i] {
				c.faultFired[i] = true
				c.faultsInjected++
			}
		}
	}
	return s
}

// delayFactor returns the collective-cost multiplier for the given cluster
// time (product of active delay spikes). Caller holds c.mu.
func (c *Cluster) delayFactor(t float64) float64 {
	factor := 1.0
	if c.plan == nil {
		return factor
	}
	for i, f := range c.plan.Faults {
		if f.Kind == FaultDelay && t >= f.At && t < f.At+f.Duration {
			factor *= f.Factor
			if !c.faultFired[i] {
				c.faultFired[i] = true
				c.faultsInjected++
			}
		}
	}
	return factor
}

// Shrink removes the given ranks from the cluster: survivors are renumbered
// densely in rank order, keeping their clocks and speed factors, and
// fault-plan entries are dropped (dead targets) or remapped (survivors).
// Statistics and fired-fault counters carry over. Panics on out-of-range or
// duplicate ranks, or if no rank would survive — Shrink models ULFM's
// MPI_Comm_shrink, whose preconditions are the caller's contract.
func (c *Cluster) Shrink(dead []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := len(c.clocks)
	deadSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("simnet: Shrink rank %d out of range [0,%d)", r, p))
		}
		if deadSet[r] {
			panic(fmt.Sprintf("simnet: Shrink rank %d listed twice", r))
		}
		deadSet[r] = true
	}
	if len(deadSet) >= p {
		panic("simnet: Shrink would leave no survivors")
	}
	// newRank[old] = dense survivor id, or -1 for dead ranks.
	newRank := make([]int, p)
	clocks := make([]float64, 0, p-len(deadSet))
	speed := make([]float64, 0, p-len(deadSet))
	for r := 0; r < p; r++ {
		if deadSet[r] {
			newRank[r] = -1
			continue
		}
		newRank[r] = len(clocks)
		clocks = append(clocks, c.clocks[r])
		speed = append(speed, c.speed[r])
	}
	c.clocks = clocks
	c.speed = speed
	if c.plan != nil {
		var faults []Fault
		var fired []bool
		for i, f := range c.plan.Faults {
			if newRank[f.Rank] < 0 {
				continue // fault targeted a dead rank; nothing left to fail
			}
			f.Rank = newRank[f.Rank]
			faults = append(faults, f)
			fired = append(fired, c.faultFired[i])
		}
		c.plan = &FaultPlan{Faults: faults}
		c.faultFired = fired
	}
}
