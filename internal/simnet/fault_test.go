package simnet

import (
	"testing"
)

func TestParseFaultPlanRoundTrip(t *testing.T) {
	spec := "crash:2@350,slow:0@100+50x4,delay:1@200+30x8"
	plan, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultCrash, Rank: 2, At: 350},
		{Kind: FaultSlow, Rank: 0, At: 100, Duration: 50, Factor: 4},
		{Kind: FaultDelay, Rank: 1, At: 200, Duration: 30, Factor: 8},
	}
	if len(plan.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(plan.Faults), len(want))
	}
	for i, f := range plan.Faults {
		if f != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	if got := plan.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	reparsed, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("reparsing String(): %v", err)
	}
	if len(reparsed.Faults) != len(want) {
		t.Fatal("String() round trip lost faults")
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, spec := range []string{
		"", "  ,  ", "boom:0@1", "crash0@1", "crash:x@1", "crash:0@x",
		"slow:0@1", "slow:0@1+5", "slow:0@1+x5", "delay:0@1+5xq",
	} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", spec)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Faults: []Fault{{Kind: FaultCrash, Rank: 4, At: 1}}},                           // rank out of range
		{Faults: []Fault{{Kind: FaultCrash, Rank: -1, At: 1}}},                          // negative rank
		{Faults: []Fault{{Kind: FaultCrash, Rank: 0, At: -2}}},                          // negative time
		{Faults: []Fault{{Kind: FaultSlow, Rank: 0, At: 1, Duration: 0, Factor: 2}}},    // no duration
		{Faults: []Fault{{Kind: FaultDelay, Rank: 0, At: 1, Duration: 5, Factor: 0.5}}}, // factor < 1
		{Faults: []Fault{{Kind: FaultKind(9), Rank: 0, At: 1}}},                         // unknown kind
	}
	for i := range bad {
		if err := bad[i].Validate(4); err == nil {
			t.Errorf("plan %d accepted: %+v", i, bad[i].Faults[0])
		}
	}
	good := FaultPlan{Faults: []Fault{{Kind: FaultCrash, Rank: 3, At: 0}}}
	if err := good.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	c := NewCluster(2, XC40Params())
	if err := c.SetFaultPlan(&bad[0]); err == nil {
		t.Error("SetFaultPlan accepted out-of-range rank")
	}
}

func TestSetFaultPlanClones(t *testing.T) {
	c := NewCluster(4, XC40Params())
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultCrash, Rank: 1, At: 5}}}
	if err := c.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's plan must not affect the armed schedule.
	plan.Faults[0].At = 0
	if c.CrashDue(1) {
		t.Fatal("cluster observed caller-side mutation of the plan")
	}
	c.AddSeconds(1, 10)
	if !c.CrashDue(1) {
		t.Fatal("crash fault never fired")
	}
}

func TestCrashDueConsumesFault(t *testing.T) {
	c := NewCluster(3, XC40Params())
	if err := c.SetFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 2, At: 1.5},
	}}); err != nil {
		t.Fatal(err)
	}
	if c.CrashDue(2) {
		t.Fatal("crash fired before its trigger time")
	}
	if c.CrashDue(0) {
		t.Fatal("crash fired for the wrong rank")
	}
	c.AddSeconds(2, 2)
	if !c.CrashDue(2) {
		t.Fatal("crash did not fire once due")
	}
	if c.CrashDue(2) {
		t.Fatal("crash fired twice")
	}
	if got := c.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", got)
	}
}

func TestSlowdownWindowStretchesCompute(t *testing.T) {
	flops := XC40Params().FlopRate // exactly 1 virtual second of work
	base := NewCluster(1, XC40Params())
	base.AddCompute(0, flops)
	unit := base.Time(0)

	c := NewCluster(1, XC40Params())
	if err := c.SetFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultSlow, Rank: 0, At: unit, Duration: 10 * unit, Factor: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	c.AddCompute(0, flops) // before the window: full speed
	if got := c.Time(0); got != unit {
		t.Fatalf("pre-window compute took %v, want %v", got, unit)
	}
	c.AddCompute(0, flops) // inside the window: 4x slower
	if got, want := c.Time(0), 5*unit; !about(got, want) {
		t.Fatalf("in-window compute ended at %v, want %v", got, want)
	}
	if got := c.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", got)
	}
	// Clock now far past the window: full speed again.
	c.AddSeconds(0, 20*unit)
	beforeT := c.Time(0)
	c.AddCompute(0, flops)
	if got, want := c.Time(0)-beforeT, unit; !about(got, want) {
		t.Fatalf("post-window compute took %v, want %v", got, want)
	}
}

func TestDelaySpikeInflatesCollectives(t *testing.T) {
	c := NewCluster(2, XC40Params())
	if err := c.SetFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultDelay, Rank: 0, At: 0, Duration: 10, Factor: 8},
	}}); err != nil {
		t.Fatal(err)
	}
	c.Collective(1, 100, 2, "x") // inside the spike: costs 8
	if got := c.MaxTime(); !about(got, 8) {
		t.Fatalf("spiked collective advanced clock to %v, want 8", got)
	}
	c.Collective(1, 100, 2, "x") // clock now 8; still inside [0,10): costs 8 more
	if got := c.MaxTime(); !about(got, 16) {
		t.Fatalf("second spiked collective ended at %v, want 16", got)
	}
	c.Collective(1, 100, 2, "x") // clock 16, outside the window: costs 1
	if got := c.MaxTime(); !about(got, 17) {
		t.Fatalf("post-spike collective ended at %v, want 17", got)
	}
	if got := c.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d, want 1 (window counts once)", got)
	}
}

func TestShrinkRenumbersAndRemapsFaults(t *testing.T) {
	c := NewCluster(5, XC40Params())
	for r := 0; r < 5; r++ {
		c.AddSeconds(r, float64(10*(r+1)))
	}
	c.SetComputeSpeed(4, 0.5)
	if err := c.SetFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 1, At: 999}, // dead target: dropped
		{Kind: FaultCrash, Rank: 4, At: 999}, // survivor: remapped to rank 2
		{Kind: FaultSlow, Rank: 0, At: 999, Duration: 1, Factor: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	c.Shrink([]int{1, 3})
	if c.P() != 3 {
		t.Fatalf("P = %d after shrink, want 3", c.P())
	}
	// Survivors 0, 2, 4 become 0, 1, 2 and keep their clocks.
	for i, want := range []float64{10, 30, 50} {
		if got := c.Time(i); got != want {
			t.Fatalf("survivor %d clock = %v, want %v", i, got, want)
		}
	}
	// Old rank 4 (slowed to 0.5) is now rank 2; its crash fault moved along.
	c.AddSeconds(2, 1000)
	if !c.CrashDue(2) {
		t.Fatal("remapped crash fault did not fire for renumbered rank")
	}
	// The fault aimed at dead rank 1 is gone: new rank 1 (old 2) never dies.
	c.AddSeconds(1, 1000)
	if c.CrashDue(1) {
		t.Fatal("fault targeting a dead rank survived the shrink")
	}
}

func TestShrinkPanicsOnBadInput(t *testing.T) {
	for _, dead := range [][]int{{5}, {-1}, {0, 0}, {0, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shrink(%v) did not panic", dead)
				}
			}()
			c := NewCluster(3, XC40Params())
			c.Shrink(dead)
		}()
	}
}

func TestClearFaultPlanKeepsInjectionCount(t *testing.T) {
	c := NewCluster(2, XC40Params())
	if err := c.SetFaultPlan(&FaultPlan{Faults: []Fault{
		{Kind: FaultCrash, Rank: 0, At: 0},
		{Kind: FaultCrash, Rank: 1, At: 999},
	}}); err != nil {
		t.Fatal(err)
	}
	if !c.CrashDue(0) {
		t.Fatal("due crash did not fire")
	}
	c.ClearFaultPlan()
	c.AddSeconds(1, 1e6)
	if c.CrashDue(1) {
		t.Fatal("cleared plan still fires")
	}
	if got := c.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d after clear, want 1", got)
	}
}

func about(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+want)
}
