// Package simnet models the timing behaviour of a distributed-memory
// cluster: per-rank virtual clocks, an alpha-beta (latency + bandwidth)
// communication cost model, and a flop-rate compute model.
//
// The paper ran on a Cray XC40; we run every rank as a goroutine on one
// machine. Real bytes still move between ranks (see internal/mpi), but
// *time* is accounted virtually: each rank accumulates compute time from the
// work it performs, and each collective advances all participating clocks by
// an analytically derived cost that depends on the message pattern and the
// exact byte volume moved. Total-training-time tables and epoch-time figures
// are read off these clocks, so the paper's crossover shapes (all-gather vs
// all-reduce, quantized vs full precision) are functions of the same
// quantities that produced them on the Cray.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Params hold the cluster cost model.
type Params struct {
	// Alpha is the per-message latency in seconds (wire latency plus the
	// per-call software overhead of the Horovod/MPI stack).
	Alpha float64
	// Beta is the transfer time per byte in seconds (1/bandwidth).
	Beta float64
	// FlopRate is the effective flops per second a node sustains on the
	// embedding workload (24 cores driving a Python/TF stack, hence far
	// below peak).
	FlopRate float64
}

// XC40Params returns a cost model calibrated to an XC40-class system running
// the paper's software stack: ~20 us effective per-collective-call latency,
// ~1 GB/s effective per-node bandwidth, ~5 GFLOP/s effective compute.
func XC40Params() Params {
	return Params{Alpha: 20e-6, Beta: 1.0 / 1e9, FlopRate: 5e9}
}

// XferSeconds returns the time to move n bytes point-to-point.
func (p Params) XferSeconds(n int64) float64 {
	return p.Alpha + float64(n)*p.Beta
}

// Cluster tracks virtual time and communication statistics for P ranks.
// All methods are safe for concurrent use by rank goroutines.
type Cluster struct {
	mu     sync.Mutex
	params Params
	clocks []float64
	speed  []float64 // per-rank compute speed multiplier (1 = nominal)
	stats  Stats
	byTag  map[string]int64

	// Fault injection (see fault.go). plan is a private copy; faultFired
	// marks consumed crash triggers and first-application of window faults.
	plan           *FaultPlan
	faultFired     []bool
	faultsInjected int
}

// Stats summarize communication activity since construction (or Reset).
type Stats struct {
	// BytesMoved is the total payload volume crossing the network, summed
	// over all ranks' sends.
	BytesMoved int64
	// Messages is the number of point-to-point messages implied by the
	// executed collectives.
	Messages int64
	// Collectives is the number of collective operations executed.
	Collectives int64
	// CommSeconds is the total virtual time spent inside collectives
	// (per-operation cost, not summed over ranks).
	CommSeconds float64
}

// NewCluster creates a cluster of p ranks with the given cost model.
func NewCluster(p int, params Params) *Cluster {
	if p <= 0 {
		panic("simnet: cluster needs at least one rank")
	}
	speed := make([]float64, p)
	for i := range speed {
		speed[i] = 1
	}
	return &Cluster{
		params: params,
		clocks: make([]float64, p),
		speed:  speed,
		byTag:  make(map[string]int64),
	}
}

// SetComputeSpeed sets rank's compute throughput relative to nominal
// (0.5 = half speed). Used for straggler injection: the bulk-synchronous
// training loop is only as fast as its slowest rank, and the per-epoch
// clock maxima make that directly observable. Panics on non-positive
// factors.
func (c *Cluster) SetComputeSpeed(rank int, factor float64) {
	if factor <= 0 {
		panic("simnet: compute speed factor must be positive")
	}
	c.mu.Lock()
	c.speed[rank] = factor
	c.mu.Unlock()
}

// P returns the number of ranks.
func (c *Cluster) P() int { return len(c.clocks) }

// Params returns the cost model.
func (c *Cluster) Params() Params { return c.params }

// AddCompute charges flops of computation to rank's clock, scaled by the
// rank's compute-speed factor and any active transient-slowdown fault
// window.
func (c *Cluster) AddCompute(rank int, flops float64) {
	c.mu.Lock()
	s := c.effectiveSpeed(rank)
	c.mu.Unlock()
	c.AddSeconds(rank, flops/(c.params.FlopRate*s))
}

// AddSeconds charges raw virtual seconds to rank's clock.
func (c *Cluster) AddSeconds(rank int, s float64) {
	if s < 0 {
		panic("simnet: negative time charge")
	}
	c.mu.Lock()
	c.clocks[rank] += s
	c.mu.Unlock()
}

// LiftClock raises rank's clock to at least t (no-op when already past).
// Process worlds use it to inject the globally agreed clock maximum before
// charging a collective: each process only accumulates its own rank's
// compute on its private cluster, so the true cluster-wide makespan has to
// arrive over the wire.
func (c *Cluster) LiftClock(rank int, t float64) {
	c.mu.Lock()
	if t > c.clocks[rank] {
		c.clocks[rank] = t
	}
	c.mu.Unlock()
}

// Time returns rank's current virtual clock.
func (c *Cluster) Time(rank int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clocks[rank]
}

// MaxTime returns the furthest-ahead clock — the cluster's makespan.
func (c *Cluster) MaxTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := 0.0
	for _, t := range c.clocks {
		if t > m {
			m = t
		}
	}
	return m
}

// Collective synchronizes all ranks and charges a collective operation:
// every clock advances to max(clocks) + cost. The byte volume and message
// count are recorded under tag for reporting. Called once per collective by
// the mpi layer (not once per rank).
func (c *Cluster) Collective(cost float64, bytes, messages int64, tag string) {
	if cost < 0 {
		panic("simnet: negative collective cost")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := 0.0
	for _, t := range c.clocks {
		if t > m {
			m = t
		}
	}
	// Message-delay fault spikes inflate the operation's cost while the
	// cluster clock sits inside their window.
	cost *= c.delayFactor(m)
	m += cost
	for i := range c.clocks {
		c.clocks[i] = m
	}
	c.stats.BytesMoved += bytes
	c.stats.Messages += messages
	c.stats.Collectives++
	c.stats.CommSeconds += cost
	if tag != "" {
		c.byTag[tag] += bytes
	}
}

// Stats returns a snapshot of communication statistics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// BytesByTag returns a copy of the per-tag byte counters.
func (c *Cluster) BytesByTag() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byTag))
	for k, v := range c.byTag {
		out[k] = v
	}
	return out
}

// ResetStats clears statistics but leaves clocks running.
func (c *Cluster) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.byTag = map[string]int64{}
}

// ResetClocks rewinds all clocks to zero.
func (c *Cluster) ResetClocks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.clocks {
		c.clocks[i] = 0
	}
}

// ---- Collective cost formulas -------------------------------------------
//
// These are the standard LogP-style costs of the algorithms implemented in
// internal/mpi. P=1 collectives are free: no network is crossed.

// RingAllReduceCost models reduce-scatter + all-gather over a ring:
// 2(P-1) steps, each moving bytes/P.
func (c *Cluster) RingAllReduceCost(bytes int64) (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if p == 1 || bytes == 0 {
		return 0, 0, 0
	}
	steps := 2 * (p - 1)
	chunk := float64(bytes) / float64(p)
	cost = float64(steps) * (c.params.Alpha + chunk*c.params.Beta)
	moved = steps * p * int64(math.Ceil(chunk)) // every rank sends each step
	msgs = steps * p
	return cost, moved, msgs
}

// RecursiveDoublingAllReduceCost models log-round all-reduce: ceil(log2 P)
// exchange rounds each moving the full buffer, plus two folding rounds when
// P is not a power of two. Latency-optimal, bandwidth-suboptimal — the
// counterpart to RingAllReduceCost for the DESIGN.md §5 ablation.
func (c *Cluster) RecursiveDoublingAllReduceCost(bytes int64) (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if p == 1 || bytes == 0 {
		return 0, 0, 0
	}
	rounds := int64(math.Ceil(math.Log2(float64(p))))
	extra := int64(0)
	if p&(p-1) != 0 {
		extra = 2 // pre- and post-fold rounds
	}
	cost = float64(rounds+extra) * (c.params.Alpha + float64(bytes)*c.params.Beta)
	moved = (rounds + extra) * p * bytes
	msgs = (rounds + extra) * p
	return cost, moved, msgs
}

// BruckAllGatherCost models Bruck's concatenating all-gather: ceil(log2 P)
// rounds; every rank still transmits everyone's payloads once (same total
// volume as the ring) but pays only log-many latencies.
func (c *Cluster) BruckAllGatherCost(perRank []int64) (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if int(p) != len(perRank) {
		panic(fmt.Sprintf("simnet: BruckAllGatherCost got %d sizes for %d ranks", len(perRank), p))
	}
	if p == 1 {
		return 0, 0, 0
	}
	var total int64
	for _, b := range perRank {
		total += b
	}
	rounds := int64(math.Ceil(math.Log2(float64(p))))
	if total == 0 {
		return float64(rounds) * c.params.Alpha, 0, rounds * p
	}
	cost = float64(rounds)*c.params.Alpha + float64(total-minInt64(perRank))*c.params.Beta
	moved = (p - 1) * total
	msgs = rounds * p
	return cost, moved, msgs
}

// AllGatherVCost models a ring all-gather of variable per-rank payloads:
// P-1 steps; in the worst step a rank forwards the largest single
// contribution, and in total each rank receives everyone else's bytes.
func (c *Cluster) AllGatherVCost(perRank []int64) (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if int(p) != len(perRank) {
		panic(fmt.Sprintf("simnet: AllGatherVCost got %d sizes for %d ranks", len(perRank), p))
	}
	if p == 1 {
		return 0, 0, 0
	}
	var total int64
	var maxPart int64
	for _, b := range perRank {
		total += b
		if b > maxPart {
			maxPart = b
		}
	}
	if total == 0 {
		// Ranks still exchange "nothing to send" headers.
		cost = float64(p-1) * c.params.Alpha
		return cost, 0, (p - 1) * p
	}
	// Ring allgatherv: step k forwards the block received in step k-1.
	// The critical path is bounded by the largest block each step; a tight,
	// standard approximation charges (P-1)*alpha plus the time for one rank
	// to receive all other ranks' data at bandwidth, with the max block
	// setting per-step latency overlap.
	cost = float64(p-1)*c.params.Alpha + float64(total-minInt64(perRank))*c.params.Beta
	_ = maxPart
	moved = (p - 1) * total // every block traverses P-1 hops
	msgs = (p - 1) * p
	return cost, moved, msgs
}

func minInt64(xs []int64) int64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// BroadcastCost models a binomial-tree broadcast.
func (c *Cluster) BroadcastCost(bytes int64) (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if p == 1 || bytes == 0 {
		return 0, 0, 0
	}
	rounds := int64(math.Ceil(math.Log2(float64(p))))
	cost = float64(rounds) * (c.params.Alpha + float64(bytes)*c.params.Beta)
	moved = (p - 1) * bytes
	msgs = p - 1
	return cost, moved, msgs
}

// BarrierCost models a dissemination barrier.
func (c *Cluster) BarrierCost() (cost float64, moved, msgs int64) {
	p := int64(c.P())
	if p == 1 {
		return 0, 0, 0
	}
	rounds := int64(math.Ceil(math.Log2(float64(p))))
	return float64(rounds) * c.params.Alpha, 0, rounds * p
}

// PointToPointCost models one message of the given size.
func (c *Cluster) PointToPointCost(bytes int64) (cost float64, moved, msgs int64) {
	return c.params.XferSeconds(bytes), bytes, 1
}

// Quantile returns the q-quantile (0..1) of the per-rank clocks; useful in
// tests for checking clock synchronization.
func (c *Cluster) Quantile(q float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := append([]float64(nil), c.clocks...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
