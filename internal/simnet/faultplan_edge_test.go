package simnet

import (
	"math"
	"strings"
	"testing"
)

// TestParseFaultPlanEdgeCases pins the parser's behaviour on the awkward
// inputs a hand-typed -faults flag actually produces: empty fragments,
// duplicate targets, boundary times, overlapping windows, and syntax that
// is almost-but-not-quite right. Entries that parse are additionally
// validated against a 4-rank world so parse-time and validate-time
// rejections stay distinguishable.
func TestParseFaultPlanEdgeCases(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		spec     string
		parseErr string // substring of the expected parse error ("" = parses)
		valErr   string // substring of the expected Validate(4) error ("" = valid)
		check    func(t *testing.T, p *FaultPlan)
	}{
		{
			name: "empty plan", spec: "", parseErr: "empty fault plan",
		},
		{
			name: "only separators", spec: " , ,, ", parseErr: "empty fault plan",
		},
		{
			name: "duplicate rank crashes",
			spec: "crash:1@5,crash:1@9",
			check: func(t *testing.T, p *FaultPlan) {
				// Two crashes on one rank are legal: the first kill wins, the
				// second is a fired-but-moot entry. Both must survive parsing.
				if len(p.Faults) != 2 || p.Faults[0].Rank != 1 || p.Faults[1].Rank != 1 {
					t.Fatalf("faults = %+v", p.Faults)
				}
			},
		},
		{
			name: "crash at time zero",
			spec: "crash:0@0",
			check: func(t *testing.T, p *FaultPlan) {
				// Epoch-0 crash: arms immediately; CrashDue must report it on
				// the very first collective, before any clock advance.
				c := NewCluster(4, XC40Params())
				if err := c.SetFaultPlan(p); err != nil {
					t.Fatal(err)
				}
				if !c.CrashDue(0) {
					t.Error("crash at t=0 did not fire on the first poll")
				}
				if c.CrashDue(0) {
					t.Error("crash fired twice")
				}
			},
		},
		{
			name: "overlapping slow windows compound",
			spec: "slow:0@10+20x2,slow:0@15+20x3",
			check: func(t *testing.T, p *FaultPlan) {
				c := NewCluster(4, XC40Params())
				if err := c.SetFaultPlan(p); err != nil {
					t.Fatal(err)
				}
				// Walk rank 0's clock into the overlap [15,30): both windows
				// apply, so effective speed is divided by 2*3.
				c.AddSeconds(0, 20)
				c.mu.Lock()
				got := c.effectiveSpeed(0)
				base := c.speed[0]
				c.mu.Unlock()
				if want := base / 6; math.Abs(got-want) > 1e-9*want {
					t.Errorf("overlapped speed = %g, want %g (compounded /6)", got, want)
				}
			},
		},
		{
			name: "whitespace around entries",
			spec: "  crash:2@350 ,\tslow:0@100+50x4  ",
			check: func(t *testing.T, p *FaultPlan) {
				if len(p.Faults) != 2 {
					t.Fatalf("parsed %d faults, want 2", len(p.Faults))
				}
			},
		},
		{
			name: "trailing comma", spec: "crash:1@5,",
			check: func(t *testing.T, p *FaultPlan) {
				if len(p.Faults) != 1 {
					t.Fatalf("parsed %d faults, want 1", len(p.Faults))
				}
			},
		},
		{name: "missing kind separator", spec: "crash2@350", parseErr: "want kind:rank@time"},
		{name: "unknown kind", spec: "explode:0@1", parseErr: "unknown fault kind"},
		{name: "missing time", spec: "crash:0", parseErr: "missing @time"},
		{name: "fractional rank", spec: "crash:1.5@3", parseErr: "bad rank"},
		{name: "empty rank", spec: "crash:@3", parseErr: "bad rank"},
		{name: "slow without window", spec: "slow:0@100", parseErr: "want @time+durationxfactor"},
		{name: "slow without factor", spec: "slow:0@100+50", parseErr: "duration x factor"},
		{name: "garbage duration", spec: "delay:0@1+abcx2", parseErr: "bad duration"},
		{name: "garbage factor", spec: "delay:0@1+5xtwo", parseErr: "bad factor"},
		{
			// ParseFloat accepts "NaN"/"Inf" spellings, so these survive
			// parsing; Validate is the chokepoint that must reject them.
			name: "NaN crash time", spec: "crash:0@NaN", valErr: "non-finite trigger time",
		},
		{name: "Inf crash time", spec: "crash:0@+Inf", valErr: "non-finite trigger time"},
		{name: "NaN duration", spec: "slow:0@1+NaNx2", valErr: "positive finite duration"},
		{name: "Inf duration", spec: "slow:0@1+Infx2", valErr: "positive finite duration"},
		{name: "NaN factor", spec: "slow:0@1+5xNaN", valErr: "finite factor"},
		{name: "Inf factor", spec: "delay:0@1+5xInf", valErr: "finite factor"},
		{name: "negative duration", spec: "slow:0@1+-3x2", valErr: "positive finite duration"},
		{name: "sub-unit factor", spec: "slow:0@1+3x0.25", valErr: "factor >= 1"},
		{name: "rank beyond world", spec: "crash:4@1", valErr: "world has 4"},
		{name: "negative rank", spec: "crash:-1@1", valErr: "targets rank -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p, err := ParseFaultPlan(tc.spec)
			if tc.parseErr != "" {
				if err == nil {
					t.Fatalf("ParseFaultPlan(%q) accepted, want error containing %q", tc.spec, tc.parseErr)
				}
				if !strings.Contains(err.Error(), tc.parseErr) {
					t.Fatalf("parse error %q does not contain %q", err, tc.parseErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseFaultPlan(%q): %v", tc.spec, err)
			}
			verr := p.Validate(4)
			if tc.valErr != "" {
				if verr == nil {
					t.Fatalf("Validate accepted %q, want error containing %q", tc.spec, tc.valErr)
				}
				if !strings.Contains(verr.Error(), tc.valErr) {
					t.Fatalf("validate error %q does not contain %q", verr, tc.valErr)
				}
				return
			}
			if verr != nil {
				t.Fatalf("Validate rejected %q: %v", tc.spec, verr)
			}
			if tc.check != nil {
				tc.check(t, p)
			}
		})
	}
}
