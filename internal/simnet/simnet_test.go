package simnet

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewClusterPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(0, XC40Params())
}

func TestComputeCharges(t *testing.T) {
	c := NewCluster(2, Params{Alpha: 0, Beta: 0, FlopRate: 1e9})
	c.AddCompute(0, 2e9)
	if got := c.Time(0); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Time(0) = %v, want 2", got)
	}
	if got := c.Time(1); got != 0 {
		t.Fatalf("Time(1) = %v, want 0", got)
	}
	if got := c.MaxTime(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("MaxTime = %v", got)
	}
}

func TestCollectiveSynchronizesClocks(t *testing.T) {
	c := NewCluster(4, XC40Params())
	c.AddSeconds(0, 1.0)
	c.AddSeconds(3, 5.0)
	c.Collective(0.5, 100, 4, "grad")
	for r := 0; r < 4; r++ {
		if got := c.Time(r); math.Abs(got-5.5) > 1e-12 {
			t.Fatalf("rank %d clock %v, want 5.5", r, got)
		}
	}
	st := c.Stats()
	if st.BytesMoved != 100 || st.Messages != 4 || st.Collectives != 1 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.CommSeconds-0.5) > 1e-12 {
		t.Fatalf("CommSeconds %v", st.CommSeconds)
	}
	if c.BytesByTag()["grad"] != 100 {
		t.Fatalf("tag bytes %v", c.BytesByTag())
	}
}

func TestNegativeChargesPanic(t *testing.T) {
	c := NewCluster(1, XC40Params())
	for _, f := range []func(){
		func() { c.AddSeconds(0, -1) },
		func() { c.Collective(-1, 0, 0, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestResetStatsAndClocks(t *testing.T) {
	c := NewCluster(2, XC40Params())
	c.AddSeconds(1, 3)
	c.Collective(1, 10, 2, "x")
	c.ResetStats()
	if st := c.Stats(); st.BytesMoved != 0 || st.Collectives != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if len(c.BytesByTag()) != 0 {
		t.Fatal("tags not reset")
	}
	if c.MaxTime() == 0 {
		t.Fatal("ResetStats must not touch clocks")
	}
	c.ResetClocks()
	if c.MaxTime() != 0 {
		t.Fatal("clocks not reset")
	}
}

func TestRingAllReduceCostSingleRankFree(t *testing.T) {
	c := NewCluster(1, XC40Params())
	cost, moved, msgs := c.RingAllReduceCost(1 << 20)
	if cost != 0 || moved != 0 || msgs != 0 {
		t.Fatalf("P=1 allreduce should be free, got %v %v %v", cost, moved, msgs)
	}
}

func TestRingAllReduceCostFormula(t *testing.T) {
	p := Params{Alpha: 1e-3, Beta: 1e-6, FlopRate: 1}
	c := NewCluster(4, p)
	bytes := int64(4000)
	cost, moved, msgs := c.RingAllReduceCost(bytes)
	wantCost := 6 * (1e-3 + 1000*1e-6) // 2(P-1)=6 steps of bytes/P=1000
	if math.Abs(cost-wantCost) > 1e-12 {
		t.Fatalf("cost %v, want %v", cost, wantCost)
	}
	if moved != 6*4*1000 {
		t.Fatalf("moved %d", moved)
	}
	if msgs != 24 {
		t.Fatalf("msgs %d", msgs)
	}
}

func TestAllReduceCostIndependentOfPAsymptotically(t *testing.T) {
	// The bandwidth term of ring all-reduce approaches 2*bytes*beta as P
	// grows; it must NOT grow linearly with P (that is all-gather's curse).
	p := Params{Alpha: 0, Beta: 1e-9, FlopRate: 1}
	bytes := int64(1 << 20)
	c4 := NewCluster(4, p)
	c16 := NewCluster(16, p)
	cost4, _, _ := c4.RingAllReduceCost(bytes)
	cost16, _, _ := c16.RingAllReduceCost(bytes)
	if cost16 > cost4*1.5 {
		t.Fatalf("allreduce cost grew with P: %v -> %v", cost4, cost16)
	}
}

func TestAllGatherVCostGrowsWithP(t *testing.T) {
	// With per-rank payload held fixed, all-gather volume grows with P —
	// the effect behind Figure 1d of the paper.
	p := Params{Alpha: 0, Beta: 1e-9, FlopRate: 1}
	per := int64(1 << 18)
	mk := func(n int) float64 {
		c := NewCluster(n, p)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = per
		}
		cost, _, _ := c.AllGatherVCost(sizes)
		return cost
	}
	if !(mk(16) > mk(8) && mk(8) > mk(4) && mk(4) > mk(2)) {
		t.Fatalf("allgather cost not increasing: %v %v %v %v", mk(2), mk(4), mk(8), mk(16))
	}
}

func TestAllGatherVCostZeroPayload(t *testing.T) {
	c := NewCluster(4, Params{Alpha: 1e-3, Beta: 1e-6, FlopRate: 1})
	cost, moved, msgs := c.AllGatherVCost([]int64{0, 0, 0, 0})
	if moved != 0 {
		t.Fatalf("moved %d", moved)
	}
	if cost <= 0 {
		t.Fatal("zero-payload allgather should still pay latency")
	}
	if msgs == 0 {
		t.Fatal("zero-payload allgather should still count header messages")
	}
}

func TestAllGatherVCostPanicsOnSizeMismatch(t *testing.T) {
	c := NewCluster(4, XC40Params())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AllGatherVCost([]int64{1, 2})
}

func TestBroadcastAndBarrierCosts(t *testing.T) {
	par := Params{Alpha: 1e-3, Beta: 0, FlopRate: 1}
	c := NewCluster(8, par)
	cost, moved, msgs := c.BroadcastCost(100)
	if math.Abs(cost-3e-3) > 1e-12 { // log2(8)=3 rounds
		t.Fatalf("broadcast cost %v", cost)
	}
	if moved != 700 || msgs != 7 {
		t.Fatalf("broadcast moved %d msgs %d", moved, msgs)
	}
	bcost, bmoved, bmsgs := c.BarrierCost()
	if math.Abs(bcost-3e-3) > 1e-12 || bmoved != 0 || bmsgs != 24 {
		t.Fatalf("barrier %v %d %d", bcost, bmoved, bmsgs)
	}
	one := NewCluster(1, par)
	if cost, _, _ := one.BroadcastCost(100); cost != 0 {
		t.Fatal("P=1 broadcast should be free")
	}
	if cost, _, _ := one.BarrierCost(); cost != 0 {
		t.Fatal("P=1 barrier should be free")
	}
}

func TestPointToPointCost(t *testing.T) {
	c := NewCluster(2, Params{Alpha: 1e-3, Beta: 1e-6, FlopRate: 1})
	cost, moved, msgs := c.PointToPointCost(500)
	if math.Abs(cost-(1e-3+500e-6)) > 1e-12 || moved != 500 || msgs != 1 {
		t.Fatalf("p2p %v %d %d", cost, moved, msgs)
	}
}

func TestConcurrentCharging(t *testing.T) {
	c := NewCluster(8, XC40Params())
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddSeconds(rank, 0.001)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 8; r++ {
		if got := c.Time(r); math.Abs(got-1.0) > 1e-9 {
			t.Fatalf("rank %d clock %v, want 1.0", r, got)
		}
	}
}

func TestQuantile(t *testing.T) {
	c := NewCluster(4, XC40Params())
	c.AddSeconds(0, 1)
	c.AddSeconds(1, 2)
	c.AddSeconds(2, 3)
	c.AddSeconds(3, 4)
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
}

// Property: collective cost formulas are non-negative and monotone in bytes.
func TestQuickCostMonotone(t *testing.T) {
	c := NewCluster(8, XC40Params())
	f := func(a, b uint32) bool {
		x, y := int64(a%1e7), int64(b%1e7)
		if x > y {
			x, y = y, x
		}
		cx, _, _ := c.RingAllReduceCost(x)
		cy, _, _ := c.RingAllReduceCost(y)
		if cx < 0 || cy < 0 || cx > cy {
			return false
		}
		bx, _, _ := c.BroadcastCost(x)
		by, _, _ := c.BroadcastCost(y)
		return bx >= 0 && bx <= by
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any Collective, all clocks are equal.
func TestQuickCollectiveSync(t *testing.T) {
	f := func(charges [8]uint16, cost uint16) bool {
		c := NewCluster(8, XC40Params())
		for r, ch := range charges {
			c.AddSeconds(r, float64(ch)/1000)
		}
		c.Collective(float64(cost)/1000, 1, 1, "")
		first := c.Time(0)
		for r := 1; r < 8; r++ {
			if c.Time(r) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetComputeSpeed(t *testing.T) {
	c := NewCluster(2, Params{Alpha: 0, Beta: 0, FlopRate: 1e9})
	c.SetComputeSpeed(1, 0.5)
	c.AddCompute(0, 1e9)
	c.AddCompute(1, 1e9)
	if got := c.Time(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("nominal rank time %v", got)
	}
	if got := c.Time(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("half-speed rank time %v, want 2", got)
	}
}

func TestSetComputeSpeedPanicsOnNonPositive(t *testing.T) {
	c := NewCluster(1, XC40Params())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SetComputeSpeed(0, 0)
}

func TestXferSeconds(t *testing.T) {
	p := Params{Alpha: 1e-3, Beta: 2e-6, FlopRate: 1}
	if got := p.XferSeconds(1000); math.Abs(got-(1e-3+2e-3)) > 1e-12 {
		t.Fatalf("XferSeconds = %v", got)
	}
	if got := p.XferSeconds(0); got != 1e-3 {
		t.Fatalf("zero-byte transfer %v, want latency only", got)
	}
}

func TestXC40ParamsPlausible(t *testing.T) {
	p := XC40Params()
	if p.Alpha <= 0 || p.Beta <= 0 || p.FlopRate <= 0 {
		t.Fatalf("non-positive params %+v", p)
	}
	// Sanity: a 1 MB transfer takes on the order of a millisecond.
	ms := p.XferSeconds(1<<20) * 1000
	if ms < 0.1 || ms > 100 {
		t.Fatalf("1MB transfer = %v ms, implausible", ms)
	}
}
