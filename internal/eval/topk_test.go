package eval

import (
	"math"
	"testing"

	"kgedist/internal/kg"
	"kgedist/internal/xrand"
)

func TestTopKOrderingAndTies(t *testing.T) {
	t.Parallel()
	// Entities 2 and 4 tie at 5.0: the lower id must rank first.
	scores := []float32{1, 3, 5, 2, 5, 0}
	got := TopK(len(scores), 3, func(e int32) float32 { return scores[e] }, nil)
	want := []ScoredEntity{{2, 5}, {4, 5}, {1, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestTopKSkip(t *testing.T) {
	t.Parallel()
	scores := []float32{9, 8, 7, 6}
	skip := func(e int32) bool { return e == 0 || e == 2 }
	got := TopK(len(scores), 10, func(e int32) float32 { return scores[e] }, skip)
	want := []ScoredEntity{{1, 8}, {3, 6}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTopKAccumulatorMatchesFullSort(t *testing.T) {
	t.Parallel()
	// Against a brute-force oracle over random scores, including ties: the
	// accumulator must select exactly the same ranked prefix.
	rng := xrand.New(11)
	const n, k = 200, 7
	scores := make([]float32, n)
	for i := range scores {
		// Coarse quantization forces plenty of exact ties.
		scores[i] = float32(rng.Intn(8))
	}
	oracle := TopK(n, n, func(e int32) float32 { return scores[e] }, nil)[:k]
	acc := NewTopK(k)
	for e := 0; e < n; e++ {
		acc.Offer(int32(e), scores[e])
	}
	got := acc.Results()
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("rank %d: got %v, want %v", i, got[i], oracle[i])
		}
	}
}

func TestTopKAccumulatorMerge(t *testing.T) {
	t.Parallel()
	scores := []float32{4, 1, 9, 3, 7, 2, 8, 5}
	// Split the id space into two shard accumulators, then merge.
	a, b := NewTopK(3), NewTopK(3)
	for e := 0; e < 4; e++ {
		a.Offer(int32(e), scores[e])
	}
	for e := 4; e < 8; e++ {
		b.Offer(int32(e), scores[e])
	}
	a.Merge(b)
	got := a.Results()
	want := []ScoredEntity{{2, 9}, {6, 8}, {4, 7}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopKSmallerThanK(t *testing.T) {
	t.Parallel()
	got := TopK(2, 10, func(e int32) float32 { return float32(e) }, nil)
	if len(got) != 2 || got[0].Entity != 1 || got[1].Entity != 0 {
		t.Fatalf("got %v", got)
	}
}

// TestLinkPredictionExactTies pins the tie-breaking convention the serve
// predict path inherits: candidates scoring exactly equal to the true
// entity do NOT push its rank down (strictly-greater comparison), so a
// constant model ranks everything at 1.
func TestLinkPredictionExactTies(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{
		NumEntities:  5,
		NumRelations: 1,
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}, {H: 2, R: 0, T: 3}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{def: 1.5} // every triple scores identically
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if math.Abs(res.MRR-1) > 1e-12 || math.Abs(res.FilteredMRR-1) > 1e-12 {
		t.Fatalf("tied scores must rank optimistically: MRR %v filtered %v", res.MRR, res.FilteredMRR)
	}
	if math.Abs(res.Hits1-1) > 1e-12 {
		t.Fatalf("Hits@1 = %v, want 1", res.Hits1)
	}
	if math.Abs(res.MR-1) > 1e-12 {
		t.Fatalf("mean rank = %v, want 1", res.MR)
	}
}

// TestLinkPredictionPartialTies: one candidate strictly above the truth,
// one exactly tied. The strict candidate costs a rank, the tie does not.
func TestLinkPredictionPartialTies(t *testing.T) {
	t.Parallel()
	tr := kg.Triple{H: 0, R: 0, T: 1}
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Test:         []kg.Triple{tr},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{
		scores: map[kg.Triple]float32{
			tr:                 2,
			{H: 0, R: 0, T: 2}: 5, // strictly above: costs a rank
			{H: 0, R: 0, T: 3}: 2, // exact tie: free
			// Head side: every corruption scores def < 2, so head rank 1.
		},
		def: -1,
	}
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	// Tail rank 2 (rr 0.5), head rank 1 (rr 1.0) -> MRR 0.75.
	if math.Abs(res.FilteredMRR-0.75) > 1e-12 {
		t.Fatalf("filtered MRR = %v, want 0.75", res.FilteredMRR)
	}
}

func TestCategorizeRelationsEmptySplit(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{NumEntities: 10, NumRelations: 3}
	got := CategorizeRelations(d)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for r, c := range got {
		if c != CatUnknown {
			t.Fatalf("relation %d on empty split: %v, want unknown", r, c)
		}
	}
	// Zero relations: no panic, empty result.
	if got := CategorizeRelations(&kg.Dataset{NumEntities: 1}); len(got) != 0 {
		t.Fatalf("zero-relation dataset: %v", got)
	}
}

func TestCategorizeRelationsSingleRelation(t *testing.T) {
	t.Parallel()
	// A single triple is trivially 1-1 regardless of dataset size.
	d := &kg.Dataset{
		NumEntities:  2,
		NumRelations: 1,
		Train:        []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	got := CategorizeRelations(d)
	if len(got) != 1 || got[0] != Cat1To1 {
		t.Fatalf("single-triple relation: %v, want [1-1]", got)
	}
	// Same entity pair repeated does not change multiplicity.
	d.Train = append(d.Train, kg.Triple{H: 0, R: 0, T: 1})
	if got := CategorizeRelations(d); got[0] == CatUnknown {
		t.Fatalf("duplicated triple miscategorized: %v", got)
	}
	// Self-loop only: head set == tail set, still categorizable.
	loop := &kg.Dataset{
		NumEntities:  1,
		NumRelations: 1,
		Train:        []kg.Triple{{H: 0, R: 0, T: 0}},
	}
	if got := CategorizeRelations(loop); got[0] != Cat1To1 {
		t.Fatalf("self-loop: %v, want 1-1", got)
	}
}
