package eval

import "sort"

// ScoredEntity pairs an entity id with its score; the unit of top-K
// completion and nearest-neighbor results.
type ScoredEntity struct {
	Entity int32
	Score  float32
}

// TopKAccumulator incrementally keeps the k best ScoredEntity seen so far.
// It exists so a single sweep over the entity table can feed many ranking
// queries at once — kgeserve's micro-batcher offers each candidate row to
// every request in the batch — while evaluation code uses the TopK wrapper
// below. Ordering is deterministic: higher score wins, exact ties break
// toward the lower entity id, matching the optimistic tie handling of
// LinkPrediction so a served ranking never disagrees with an offline one
// on tied scores.
//
// Not safe for concurrent use; each request owns its accumulator.
type TopKAccumulator struct {
	k    int
	heap []ScoredEntity // min-heap on "better": root is the worst kept entry
}

// NewTopK returns an accumulator keeping the k best entries. k must be
// positive.
func NewTopK(k int) *TopKAccumulator {
	if k <= 0 {
		panic("eval: NewTopK with non-positive k")
	}
	return &TopKAccumulator{k: k, heap: make([]ScoredEntity, 0, k)}
}

// better reports whether a outranks b: higher score first, then lower id.
func better(a, b ScoredEntity) bool {
	if a.Score != b.Score { //kgelint:ignore floateq deterministic tie-break requires exact score comparison
		return a.Score > b.Score
	}
	return a.Entity < b.Entity
}

// Offer considers one candidate.
func (a *TopKAccumulator) Offer(e int32, s float32) {
	c := ScoredEntity{Entity: e, Score: s}
	if len(a.heap) < a.k {
		a.heap = append(a.heap, c)
		a.up(len(a.heap) - 1)
		return
	}
	if !better(c, a.heap[0]) {
		return
	}
	a.heap[0] = c
	a.down(0)
}

func (a *TopKAccumulator) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Min-heap on "better": a worse entry floats toward the root.
		if !better(a.heap[parent], a.heap[i]) {
			break
		}
		a.heap[parent], a.heap[i] = a.heap[i], a.heap[parent]
		i = parent
	}
}

func (a *TopKAccumulator) down(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && better(a.heap[worst], a.heap[l]) {
			worst = l
		}
		if r < n && better(a.heap[worst], a.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		a.heap[i], a.heap[worst] = a.heap[worst], a.heap[i]
		i = worst
	}
}

// Len returns the number of entries currently kept.
func (a *TopKAccumulator) Len() int { return len(a.heap) }

// Reset empties the accumulator and re-arms it for k entries, reusing the
// heap backing when it is large enough. Callers that run many queries
// through one accumulator (the binarized prefilter) reset instead of
// reallocating.
func (a *TopKAccumulator) Reset(k int) {
	if k <= 0 {
		panic("eval: Reset with non-positive k")
	}
	a.k = k
	if cap(a.heap) < k {
		a.heap = make([]ScoredEntity, 0, k)
	}
	a.heap = a.heap[:0]
}

// AppendTo appends the kept entries to dst in unspecified order and
// returns the extended slice. The allocation-conscious sibling of
// Results for callers that re-rank the entries anyway and only need the
// set.
func (a *TopKAccumulator) AppendTo(dst []ScoredEntity) []ScoredEntity {
	return append(dst, a.heap...)
}

// Results returns the kept entries best-first. The accumulator may be
// reused afterwards; the returned slice is fresh.
func (a *TopKAccumulator) Results() []ScoredEntity {
	out := append([]ScoredEntity(nil), a.heap...)
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// Merge folds the entries of other into a. Used to combine per-shard
// accumulators after a parallel sweep.
func (a *TopKAccumulator) Merge(other *TopKAccumulator) {
	for _, c := range other.heap {
		a.Offer(c.Entity, c.Score)
	}
}

// TopK scans candidate entity ids [0, n), scoring each with score and
// skipping those for which skip (if non-nil) returns true, and returns the
// k best, best-first. This is the single-query convenience over
// TopKAccumulator.
func TopK(n, k int, score func(e int32) float32, skip func(e int32) bool) []ScoredEntity {
	acc := NewTopK(k)
	for e := int32(0); int(e) < n; e++ {
		if skip != nil && skip(e) {
			continue
		}
		acc.Offer(e, score(e))
	}
	return acc.Results()
}
