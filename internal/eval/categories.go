package eval

import (
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// RelationCategory is the standard FB15K relation taxonomy of Bordes et
// al. (2013): relations are 1-to-1, 1-to-N, N-to-1 or N-to-N according to
// the average number of heads per tail and tails per head in the training
// split.
type RelationCategory int

// The four categories; CatUnknown covers relations absent from training.
const (
	CatUnknown RelationCategory = iota
	Cat1To1
	Cat1ToN
	CatNTo1
	CatNToN
)

// String names the category as in the literature.
func (c RelationCategory) String() string {
	switch c {
	case Cat1To1:
		return "1-1"
	case Cat1ToN:
		return "1-N"
	case CatNTo1:
		return "N-1"
	case CatNToN:
		return "N-N"
	}
	return "unknown"
}

// categoryThreshold follows the convention: a side is "N" when the average
// multiplicity exceeds 1.5.
const categoryThreshold = 1.5

// CategorizeRelations classifies every relation from the training split.
func CategorizeRelations(d *kg.Dataset) []RelationCategory {
	// tailsPerHead[r] = |triples with r| / |distinct heads of r| etc.
	type pair struct{ e, r int32 }
	headSet := map[pair]struct{}{}
	tailSet := map[pair]struct{}{}
	count := make([]int, d.NumRelations)
	for _, t := range d.Train {
		count[t.R]++
		headSet[pair{t.H, t.R}] = struct{}{}
		tailSet[pair{t.T, t.R}] = struct{}{}
	}
	heads := make([]int, d.NumRelations)
	tails := make([]int, d.NumRelations)
	for p := range headSet {
		heads[p.r]++
	}
	for p := range tailSet {
		tails[p.r]++
	}
	out := make([]RelationCategory, d.NumRelations)
	for r := 0; r < d.NumRelations; r++ {
		if count[r] == 0 {
			out[r] = CatUnknown
			continue
		}
		tph := float64(count[r]) / float64(heads[r]) // tails per head
		hpt := float64(count[r]) / float64(tails[r]) // heads per tail
		switch {
		case tph < categoryThreshold && hpt < categoryThreshold:
			out[r] = Cat1To1
		case tph >= categoryThreshold && hpt < categoryThreshold:
			out[r] = Cat1ToN
		case tph < categoryThreshold && hpt >= categoryThreshold:
			out[r] = CatNTo1
		default:
			out[r] = CatNToN
		}
	}
	return out
}

// SideResult holds filtered MRR split by which side was replaced.
type SideResult struct {
	HeadMRR float64 `json:"head_mrr"`
	TailMRR float64 `json:"tail_mrr"`
	Triples int     `json:"triples"`
}

// DetailedResult breaks the filtered link-prediction metric down by
// replaced side and by relation category — the analysis grid the KGE
// literature reports alongside headline MRR.
type DetailedResult struct {
	Overall    SideResult
	ByCategory map[RelationCategory]SideResult
}

// DetailedLinkPrediction ranks each test triple against head and tail
// replacements (filtered protocol) and aggregates per side and category.
// maxTriples > 0 subsamples deterministically.
func DetailedLinkPrediction(m model.Model, p *model.Params, d *kg.Dataset, f *kg.FilterIndex, maxTriples int, rng *xrand.RNG) DetailedResult {
	cats := CategorizeRelations(d)
	test := d.Test
	if maxTriples > 0 && len(test) > maxTriples {
		perm := rng.Perm(len(test))
		sub := make([]kg.Triple, maxTriples)
		for i := range sub {
			sub[i] = test[perm[i]]
		}
		test = sub
	}
	res := DetailedResult{ByCategory: map[RelationCategory]SideResult{}}
	type acc struct {
		head, tail float64
		n          int
	}
	byCat := map[RelationCategory]*acc{}
	total := &acc{}
	scores := make([]float32, d.NumEntities)
	for _, tr := range test {
		var rr [2]float64 // head, tail reciprocal ranks
		for side := 0; side < 2; side++ {
			cand := tr
			for e := 0; e < d.NumEntities; e++ {
				if side == 0 {
					cand.H = int32(e)
				} else {
					cand.T = int32(e)
				}
				scores[e] = m.Score(p, cand)
			}
			var trueScore float32
			if side == 0 {
				trueScore = scores[tr.H]
			} else {
				trueScore = scores[tr.T]
			}
			rank := 1
			for e := 0; e < d.NumEntities; e++ {
				if scores[e] <= trueScore {
					continue
				}
				cand := tr
				if side == 0 {
					cand.H = int32(e)
				} else {
					cand.T = int32(e)
				}
				if !f.Contains(cand) {
					rank++
				}
			}
			rr[side] = 1 / float64(rank)
		}
		cat := cats[tr.R]
		a, ok := byCat[cat]
		if !ok {
			a = &acc{}
			byCat[cat] = a
		}
		for _, dst := range []*acc{a, total} {
			dst.head += rr[0]
			dst.tail += rr[1]
			dst.n++
		}
	}
	finish := func(a *acc) SideResult {
		if a.n == 0 {
			return SideResult{}
		}
		return SideResult{
			HeadMRR: a.head / float64(a.n),
			TailMRR: a.tail / float64(a.n),
			Triples: a.n,
		}
	}
	res.Overall = finish(total)
	for cat, a := range byCat {
		res.ByCategory[cat] = finish(a)
	}
	return res
}
