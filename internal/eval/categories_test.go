package eval

import (
	"math"
	"testing"

	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

func TestCategorizeRelations(t *testing.T) {
	t.Parallel()
	// Relation 0: one head, one tail per pair (1-1).
	// Relation 1: one head fanning to many tails (1-N).
	// Relation 2: many heads converging on one tail (N-1).
	// Relation 3: many-to-many.
	// Relation 4: never used (unknown).
	d := &kg.Dataset{
		NumEntities:  20,
		NumRelations: 5,
		Train: []kg.Triple{
			{H: 0, R: 0, T: 1}, {H: 2, R: 0, T: 3},
			{H: 4, R: 1, T: 5}, {H: 4, R: 1, T: 6}, {H: 4, R: 1, T: 7},
			{H: 8, R: 2, T: 9}, {H: 10, R: 2, T: 9}, {H: 11, R: 2, T: 9},
			{H: 12, R: 3, T: 13}, {H: 12, R: 3, T: 14},
			{H: 15, R: 3, T: 13}, {H: 15, R: 3, T: 14},
		},
	}
	got := CategorizeRelations(d)
	want := []RelationCategory{Cat1To1, Cat1ToN, CatNTo1, CatNToN, CatUnknown}
	for r, w := range want {
		if got[r] != w {
			t.Fatalf("relation %d: got %v, want %v", r, got[r], w)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	t.Parallel()
	names := map[RelationCategory]string{
		Cat1To1: "1-1", Cat1ToN: "1-N", CatNTo1: "N-1", CatNToN: "N-N",
		CatUnknown: "unknown",
	}
	for c, w := range names {
		if c.String() != w {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}

func TestDetailedLinkPredictionPerfectModel(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{
		NumEntities:  5,
		NumRelations: 1,
		Train:        []kg.Triple{{H: 2, R: 0, T: 3}},
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{{H: 0, R: 0, T: 1}: 9}, def: -1}
	res := DetailedLinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if res.Overall.HeadMRR != 1 || res.Overall.TailMRR != 1 {
		t.Fatalf("perfect model: %+v", res.Overall)
	}
	if res.Overall.Triples != 1 {
		t.Fatalf("triples %d", res.Overall.Triples)
	}
	if len(res.ByCategory) != 1 {
		t.Fatalf("categories: %v", res.ByCategory)
	}
}

func TestDetailedLinkPredictionSidesDiffer(t *testing.T) {
	t.Parallel()
	// A tail corruption outranks the truth but no head corruption does:
	// tail MRR must be 1/2, head MRR 1.
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{
		{H: 0, R: 0, T: 1}: 5,
		{H: 0, R: 0, T: 2}: 7,
	}, def: -1}
	res := DetailedLinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if res.Overall.HeadMRR != 1 {
		t.Fatalf("head MRR %v", res.Overall.HeadMRR)
	}
	if res.Overall.TailMRR != 0.5 {
		t.Fatalf("tail MRR %v", res.Overall.TailMRR)
	}
}

func TestDetailedAgreesWithLinkPrediction(t *testing.T) {
	t.Parallel()
	// (head+tail)/2 of the detailed result equals the filtered MRR of the
	// plain evaluator on the same (unsampled) test set.
	d := kg.Generate(kg.GenConfig{Entities: 150, Relations: 10, Triples: 2500, Seed: 7})
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(4)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(9))
	det := DetailedLinkPrediction(m, p, d, f, 0, xrand.New(1))
	plain := LinkPrediction(m, p, d, f, 0, xrand.New(1))
	got := (det.Overall.HeadMRR + det.Overall.TailMRR) / 2
	if math.Abs(got-plain.FilteredMRR) > 1e-9 {
		t.Fatalf("detailed %v vs plain filtered %v", got, plain.FilteredMRR)
	}
	// Category triple counts sum to the overall count.
	sum := 0
	for _, sr := range det.ByCategory {
		sum += sr.Triples
	}
	if sum != det.Overall.Triples {
		t.Fatalf("category counts %d != overall %d", sum, det.Overall.Triples)
	}
}

func TestDetailedSubsample(t *testing.T) {
	t.Parallel()
	d := kg.Generate(kg.GenConfig{Entities: 100, Relations: 8, Triples: 2000, Seed: 3})
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(4)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(2))
	res := DetailedLinkPrediction(m, p, d, f, 25, xrand.New(4))
	if res.Overall.Triples != 25 {
		t.Fatalf("subsample size %d", res.Overall.Triples)
	}
}
