// Package eval implements the paper's evaluation protocol (§3.2), following
// the ComplEx/OpenKE conventions: raw and filtered Mean Reciprocal Rank with
// Hits@{1,3,10} for link prediction, and Triple Classification Accuracy with
// per-relation thresholds fit on validation data.
package eval

import (
	"sort"

	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// RankResult summarizes a link-prediction evaluation. The json tags define
// the kgeeval -json contract.
type RankResult struct {
	// MRR is the raw mean reciprocal rank over head and tail replacement.
	MRR float64 `json:"mrr"`
	// FilteredMRR skips candidate triples present anywhere in the dataset
	// (the paper reports filtered MRR).
	FilteredMRR float64 `json:"filtered_mrr"`
	// MR is the filtered mean rank (lower is better).
	MR float64 `json:"filtered_mr"`
	// Hits@K are filtered.
	Hits1  float64 `json:"hits1"`
	Hits3  float64 `json:"hits3"`
	Hits10 float64 `json:"hits10"`
	// Triples is the number of test triples evaluated.
	Triples int `json:"triples"`
}

// LinkPrediction ranks each test triple against all head and all tail
// replacements. maxTriples > 0 subsamples the test split deterministically
// (evaluation is O(|test| * |entities|), the dominant cost at scale); pass 0
// to evaluate everything.
func LinkPrediction(m model.Model, p *model.Params, d *kg.Dataset, f *kg.FilterIndex, maxTriples int, rng *xrand.RNG) RankResult {
	test := d.Test
	if maxTriples > 0 && len(test) > maxTriples {
		perm := rng.Perm(len(test))
		sub := make([]kg.Triple, maxTriples)
		for i := 0; i < maxTriples; i++ {
			sub[i] = test[perm[i]]
		}
		test = sub
	}
	var res RankResult
	res.Triples = len(test)
	if len(test) == 0 {
		return res
	}
	var sumRaw, sumFiltered, sumRank float64
	var h1, h3, h10 int
	scores := make([]float32, d.NumEntities)
	for _, tr := range test {
		for side := 0; side < 2; side++ {
			// Score every candidate replacement of one side.
			cand := tr
			for e := 0; e < d.NumEntities; e++ {
				if side == 0 {
					cand.H = int32(e)
				} else {
					cand.T = int32(e)
				}
				scores[e] = m.Score(p, cand)
			}
			var trueScore float32
			if side == 0 {
				trueScore = scores[tr.H]
			} else {
				trueScore = scores[tr.T]
			}
			rawRank, filtRank := 1, 1
			for e := 0; e < d.NumEntities; e++ {
				if scores[e] <= trueScore {
					continue
				}
				rawRank++
				cand := tr
				if side == 0 {
					cand.H = int32(e)
				} else {
					cand.T = int32(e)
				}
				if !f.Contains(cand) {
					filtRank++
				}
			}
			sumRaw += 1 / float64(rawRank)
			sumFiltered += 1 / float64(filtRank)
			sumRank += float64(filtRank)
			if filtRank <= 1 {
				h1++
			}
			if filtRank <= 3 {
				h3++
			}
			if filtRank <= 10 {
				h10++
			}
		}
	}
	n := float64(2 * len(test))
	res.MRR = sumRaw / n
	res.FilteredMRR = sumFiltered / n
	res.MR = sumRank / n
	res.Hits1 = float64(h1) / n
	res.Hits3 = float64(h3) / n
	res.Hits10 = float64(h10) / n
	return res
}

// TCAResult summarizes a triple-classification evaluation.
type TCAResult struct {
	// Accuracy is the fraction of test triples (positives and generated
	// negatives) classified correctly, in percent (as the paper's tables).
	Accuracy float64 `json:"accuracy_pct"`
	// Triples is the number of positive test triples used.
	Triples int `json:"triples"`
}

// corrupt returns a negative for tr that is not a known fact.
func corrupt(tr kg.Triple, numEntities int, f *kg.FilterIndex, rng *xrand.RNG) kg.Triple {
	for tries := 0; ; tries++ {
		neg := tr
		if rng.Bernoulli(0.5) {
			neg.H = int32(rng.Intn(numEntities))
		} else {
			neg.T = int32(rng.Intn(numEntities))
		}
		if neg != tr && (!f.Contains(neg) || tries > 50) {
			return neg
		}
	}
}

// scored pairs a score with its label for threshold fitting.
type scored struct {
	s   float32
	pos bool
}

// bestThreshold returns the threshold maximizing accuracy on the sample:
// classify positive iff score >= threshold.
func bestThreshold(samples []scored) float32 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].s < samples[j].s })
	totalPos := 0
	for _, s := range samples {
		if s.pos {
			totalPos++
		}
	}
	// Sweep thresholds from below the minimum upward. Starting threshold
	// (-inf): everything classified positive -> correct = totalPos.
	best := totalPos
	bestThr := samples[0].s - 1
	correct := totalPos
	for i := 0; i < len(samples); i++ {
		// Raise the threshold just above samples[i].
		if samples[i].pos {
			correct--
		} else {
			correct++
		}
		if correct > best && i+1 < len(samples) {
			best = correct
			bestThr = (samples[i].s + samples[i+1].s) / 2
		} else if correct > best {
			best = correct
			bestThr = samples[i].s + 1
		}
	}
	return bestThr
}

// AUC returns the area under the ROC curve for scoring test positives
// against one generated negative per positive — a threshold-free companion
// to TCA. Computed exactly via the rank-sum formulation with midrank tie
// handling.
func AUC(m model.Model, p *model.Params, d *kg.Dataset, f *kg.FilterIndex, rng *xrand.RNG) float64 {
	if len(d.Test) == 0 {
		return 0
	}
	type labeled struct {
		s   float32
		pos bool
	}
	all := make([]labeled, 0, 2*len(d.Test))
	for _, tr := range d.Test {
		neg := corrupt(tr, d.NumEntities, f, rng)
		all = append(all, labeled{m.Score(p, tr), true}, labeled{m.Score(p, neg), false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Rank sum with midranks for ties.
	n := len(all)
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && all[j].s == all[i].s { //kgelint:ignore floateq midrank ties require exact score equality
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var rankSumPos float64
	nPos := 0
	for i, l := range all {
		if l.pos {
			rankSumPos += ranks[i]
			nPos++
		}
	}
	nNeg := n - nPos
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (rankSumPos - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// TripleClassification fits per-relation score thresholds on the validation
// split (falling back to a global threshold for relations unseen in
// validation) and reports accuracy on the test split, with one generated
// negative per positive — the OpenKE protocol used by the paper.
func TripleClassification(m model.Model, p *model.Params, d *kg.Dataset, f *kg.FilterIndex, rng *xrand.RNG) TCAResult {
	if len(d.Test) == 0 {
		return TCAResult{}
	}
	// Collect validation scores per relation.
	perRel := map[int32][]scored{}
	var global []scored
	for _, tr := range d.Valid {
		neg := corrupt(tr, d.NumEntities, f, rng)
		sPos := scored{s: m.Score(p, tr), pos: true}
		sNeg := scored{s: m.Score(p, neg), pos: false}
		perRel[tr.R] = append(perRel[tr.R], sPos, sNeg)
		global = append(global, sPos, sNeg)
	}
	globalThr := bestThreshold(global)
	thr := make(map[int32]float32, len(perRel))
	for r, samples := range perRel {
		if len(samples) >= 4 {
			thr[r] = bestThreshold(samples)
		} else {
			thr[r] = globalThr
		}
	}
	// Classify test positives and their negatives.
	correct, total := 0, 0
	for _, tr := range d.Test {
		th, ok := thr[tr.R]
		if !ok {
			th = globalThr
		}
		if m.Score(p, tr) >= th {
			correct++
		}
		neg := corrupt(tr, d.NumEntities, f, rng)
		if m.Score(p, neg) < th {
			correct++
		}
		total += 2
	}
	return TCAResult{
		Accuracy: 100 * float64(correct) / float64(total),
		Triples:  len(d.Test),
	}
}
