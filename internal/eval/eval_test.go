package eval

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// fixedModel scores triples from a lookup table, defaulting to a low score.
type fixedModel struct {
	scores map[kg.Triple]float32
	def    float32
}

func (f *fixedModel) Name() string { return "fixed" }
func (f *fixedModel) Dim() int     { return 1 }
func (f *fixedModel) Width() int   { return 1 }
func (f *fixedModel) Score(_ *model.Params, t kg.Triple) float32 {
	if s, ok := f.scores[t]; ok {
		return s
	}
	return f.def
}
func (f *fixedModel) ScoreRows(_, _, _ []float32) float32 { return f.def }
func (f *fixedModel) AccumulateScoreGrad(*model.Params, kg.Triple, float32, []float32, []float32, []float32) {
}
func (f *fixedModel) AccumulateScoreGradRows(_, _, _ []float32, _ float32, _, _, _ []float32) {}
func (f *fixedModel) ScoreFlops() float64                                                     { return 1 }
func (f *fixedModel) GradFlops() float64                                                      { return 1 }

func TestLinkPredictionPerfectModel(t *testing.T) {
	t.Parallel()
	// 4 entities; the test triple outscores every corruption -> MRR 1.
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{{H: 0, R: 0, T: 1}: 10}, def: -1}
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if res.MRR != 1 || res.FilteredMRR != 1 {
		t.Fatalf("perfect model MRR %v filtered %v", res.MRR, res.FilteredMRR)
	}
	if res.Hits1 != 1 || res.Hits10 != 1 {
		t.Fatalf("hits %v %v", res.Hits1, res.Hits10)
	}
	if res.Triples != 1 {
		t.Fatalf("triples %d", res.Triples)
	}
}

func TestLinkPredictionHandComputedRank(t *testing.T) {
	t.Parallel()
	// Entity 2 outranks the true tail 1; entity 3 ties (counted at rank 1,
	// strictly-greater convention). So tail rank = 2, head rank = 1.
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{
		{H: 0, R: 0, T: 1}: 5, // the true triple
		{H: 0, R: 0, T: 2}: 7, // a tail corruption that wins
	}, def: -1}
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	want := (1.0 + 0.5) / 2 // head rank 1, tail rank 2
	if math.Abs(res.MRR-want) > 1e-12 {
		t.Fatalf("MRR %v, want %v", res.MRR, want)
	}
}

func TestFilteredSkipsKnownTriples(t *testing.T) {
	t.Parallel()
	// The higher-scoring corruption is itself a training fact, so the
	// filtered rank ignores it while the raw rank counts it.
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Train:        []kg.Triple{{H: 0, R: 0, T: 2}},
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{
		{H: 0, R: 0, T: 1}: 5,
		{H: 0, R: 0, T: 2}: 7,
	}, def: -1}
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if res.FilteredMRR <= res.MRR {
		t.Fatalf("filtered %v should exceed raw %v", res.FilteredMRR, res.MRR)
	}
	if res.FilteredMRR != 1 {
		t.Fatalf("filtered MRR %v, want 1", res.FilteredMRR)
	}
}

func TestFilteredAtLeastRaw(t *testing.T) {
	t.Parallel()
	// Property on a trained-ish random setup: filtered MRR >= raw MRR.
	cfg := kg.GenConfig{Entities: 120, Relations: 8, Triples: 2000, Seed: 3}
	d := kg.Generate(cfg)
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(4)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(5))
	res := LinkPrediction(m, p, d, f, 50, xrand.New(7))
	if res.FilteredMRR < res.MRR {
		t.Fatalf("filtered %v < raw %v", res.FilteredMRR, res.MRR)
	}
	if res.Hits1 > res.Hits3 || res.Hits3 > res.Hits10 {
		t.Fatalf("hits not monotone: %v %v %v", res.Hits1, res.Hits3, res.Hits10)
	}
	if res.Triples != 50 {
		t.Fatalf("subsample size %d", res.Triples)
	}
}

func TestLinkPredictionEmptyTest(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{NumEntities: 3, NumRelations: 1}
	f := kg.NewFilterIndex(d)
	res := LinkPrediction(&fixedModel{def: 0}, nil, d, f, 0, xrand.New(1))
	if res.MRR != 0 || res.Triples != 0 {
		t.Fatalf("empty test: %+v", res)
	}
}

func TestBestThresholdSeparable(t *testing.T) {
	t.Parallel()
	samples := []scored{
		{s: -2, pos: false}, {s: -1, pos: false},
		{s: 1, pos: true}, {s: 2, pos: true},
	}
	thr := bestThreshold(samples)
	if thr <= -1 || thr > 1 {
		t.Fatalf("threshold %v not in separating gap", thr)
	}
}

func TestBestThresholdAllPositive(t *testing.T) {
	t.Parallel()
	samples := []scored{{s: 1, pos: true}, {s: 2, pos: true}}
	thr := bestThreshold(samples)
	if thr > 1 {
		t.Fatalf("threshold %v misclassifies a positive", thr)
	}
	if bestThreshold(nil) != 0 {
		t.Fatal("empty threshold should be 0")
	}
}

func TestTripleClassificationPerfectlySeparable(t *testing.T) {
	t.Parallel()
	// Model scores known facts high and everything else low -> TCA 100%.
	d := kg.Generate(kg.GenConfig{Entities: 60, Relations: 5, Triples: 800, Seed: 9})
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{}, def: -5}
	for _, split := range [][]kg.Triple{d.Train, d.Valid, d.Test} {
		for _, tr := range split {
			m.scores[tr] = 5
		}
	}
	res := TripleClassification(m, nil, d, f, xrand.New(11))
	if res.Accuracy != 100 {
		t.Fatalf("separable TCA = %v", res.Accuracy)
	}
	if res.Triples != len(d.Test) {
		t.Fatalf("triples %d", res.Triples)
	}
}

func TestTripleClassificationRandomModelNearChance(t *testing.T) {
	t.Parallel()
	d := kg.Generate(kg.GenConfig{Entities: 100, Relations: 6, Triples: 3000, Seed: 13})
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(4)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(17))
	res := TripleClassification(m, p, d, f, xrand.New(19))
	// An untrained model should sit near 50%, with slack for threshold
	// overfitting on small validation relations.
	if res.Accuracy < 35 || res.Accuracy > 75 {
		t.Fatalf("untrained TCA = %v, expected near chance", res.Accuracy)
	}
}

func TestTripleClassificationEmptyTest(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{NumEntities: 5, NumRelations: 1}
	f := kg.NewFilterIndex(d)
	res := TripleClassification(&fixedModel{def: 0}, nil, d, f, xrand.New(1))
	if res.Accuracy != 0 || res.Triples != 0 {
		t.Fatalf("empty TCA: %+v", res)
	}
}

func TestCorruptAvoidsKnownFacts(t *testing.T) {
	t.Parallel()
	d := kg.Generate(kg.GenConfig{Entities: 50, Relations: 4, Triples: 500, Seed: 21})
	f := kg.NewFilterIndex(d)
	rng := xrand.New(23)
	for i := 0; i < 200; i++ {
		tr := d.Test[i%len(d.Test)]
		neg := corrupt(tr, d.NumEntities, f, rng)
		if neg == tr {
			t.Fatal("corrupt returned the positive")
		}
		if neg.R != tr.R {
			t.Fatal("corrupt changed the relation")
		}
	}
}

func BenchmarkLinkPrediction(b *testing.B) {
	d := kg.Generate(kg.GenConfig{Entities: 500, Relations: 20, Triples: 5000, Seed: 1})
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(16)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinkPrediction(m, p, d, f, 20, xrand.New(uint64(i)))
	}
}

func TestAUCPerfectModel(t *testing.T) {
	t.Parallel()
	d := kg.Generate(kg.GenConfig{Entities: 60, Relations: 5, Triples: 800, Seed: 31})
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{}, def: -5}
	for _, split := range [][]kg.Triple{d.Train, d.Valid, d.Test} {
		for _, tr := range split {
			m.scores[tr] = 5
		}
	}
	if got := AUC(m, nil, d, f, xrand.New(1)); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
}

func TestAUCConstantModelIsHalf(t *testing.T) {
	t.Parallel()
	// All scores equal: midrank ties give AUC exactly 0.5.
	d := kg.Generate(kg.GenConfig{Entities: 50, Relations: 4, Triples: 600, Seed: 33})
	f := kg.NewFilterIndex(d)
	m := &fixedModel{def: 1}
	if got := AUC(m, nil, d, f, xrand.New(2)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("constant-model AUC = %v, want 0.5", got)
	}
}

func TestAUCRandomModelNearHalf(t *testing.T) {
	t.Parallel()
	d := kg.Generate(kg.GenConfig{Entities: 150, Relations: 8, Triples: 3000, Seed: 35})
	f := kg.NewFilterIndex(d)
	m := model.NewComplEx(4)
	p := model.NewParams(m, d.NumEntities, d.NumRelations)
	p.Init(m, xrand.New(3))
	got := AUC(m, p, d, f, xrand.New(4))
	if got < 0.35 || got > 0.65 {
		t.Fatalf("untrained AUC = %v, expected near 0.5", got)
	}
}

func TestAUCEmptyTest(t *testing.T) {
	t.Parallel()
	d := &kg.Dataset{NumEntities: 5, NumRelations: 1}
	f := kg.NewFilterIndex(d)
	if got := AUC(&fixedModel{def: 0}, nil, d, f, xrand.New(1)); got != 0 {
		t.Fatalf("empty AUC = %v", got)
	}
}

func TestMeanRank(t *testing.T) {
	t.Parallel()
	// Perfect model: MR exactly 1.
	d := &kg.Dataset{
		NumEntities:  4,
		NumRelations: 1,
		Test:         []kg.Triple{{H: 0, R: 0, T: 1}},
	}
	f := kg.NewFilterIndex(d)
	m := &fixedModel{scores: map[kg.Triple]float32{{H: 0, R: 0, T: 1}: 10}, def: -1}
	res := LinkPrediction(m, nil, d, f, 0, xrand.New(1))
	if res.MR != 1 {
		t.Fatalf("perfect MR = %v", res.MR)
	}
	// One tail corruption wins: tail rank 2, head rank 1 -> MR 1.5.
	m2 := &fixedModel{scores: map[kg.Triple]float32{
		{H: 0, R: 0, T: 1}: 5,
		{H: 0, R: 0, T: 2}: 7,
	}, def: -1}
	res = LinkPrediction(m2, nil, d, f, 0, xrand.New(1))
	if res.MR != 1.5 {
		t.Fatalf("MR = %v, want 1.5", res.MR)
	}
}

// Property: AUC equals the brute-force fraction of correctly ordered
// (positive, negative) pairs, counting ties as half.
func TestQuickAUCMatchesBruteForce(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		d := &kg.Dataset{NumEntities: 12, NumRelations: 2}
		m := &fixedModel{scores: map[kg.Triple]float32{}, def: 0}
		for i := 0; i < 8; i++ {
			tr := kg.Triple{
				H: int32(rng.Intn(12)), R: int32(rng.Intn(2)), T: int32(rng.Intn(12)),
			}
			if tr.H == tr.T {
				continue
			}
			d.Test = append(d.Test, tr)
		}
		if len(d.Test) == 0 {
			return true
		}
		// Quantized scores force plenty of ties.
		scoreOf := func(tr kg.Triple) float32 {
			return float32(int(tr.H+2*tr.R+3*tr.T) % 4)
		}
		filter := kg.NewFilterIndex(d)
		// Deterministic negatives: replay the same rng stream for both the
		// AUC computation and the brute force.
		evalRng := xrand.New(seed + 1)
		var pos, neg []float32
		for _, tr := range d.Test {
			n := corrupt(tr, d.NumEntities, filter, evalRng)
			pos = append(pos, scoreOf(tr))
			neg = append(neg, scoreOf(n))
		}
		var correct float64
		for _, ps := range pos {
			for _, ns := range neg {
				switch {
				case ps > ns:
					correct++
				case ps == ns:
					correct += 0.5
				}
			}
		}
		want := correct / float64(len(pos)*len(neg))
		for _, tr := range d.Test {
			m.scores[tr] = scoreOf(tr)
		}
		m2 := &scoreFuncModel{f: scoreOf}
		got := AUC(m2, nil, d, filter, xrand.New(seed+1))
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// scoreFuncModel scores triples with a pure function (for properties).
type scoreFuncModel struct{ f func(kg.Triple) float32 }

func (s *scoreFuncModel) Name() string { return "fn" }
func (s *scoreFuncModel) Dim() int     { return 1 }
func (s *scoreFuncModel) Width() int   { return 1 }
func (s *scoreFuncModel) Score(_ *model.Params, t kg.Triple) float32 {
	return s.f(t)
}
func (s *scoreFuncModel) ScoreRows(_, _, _ []float32) float32 { return 0 }
func (s *scoreFuncModel) AccumulateScoreGrad(*model.Params, kg.Triple, float32, []float32, []float32, []float32) {
}
func (s *scoreFuncModel) AccumulateScoreGradRows(_, _, _ []float32, _ float32, _, _, _ []float32) {}
func (s *scoreFuncModel) ScoreFlops() float64                                                     { return 1 }
func (s *scoreFuncModel) GradFlops() float64                                                      { return 1 }
