package grad

import "kgedist/internal/xrand"

// Compressed-domain reduction for the multi-hop collectives (DESIGN.md §13,
// after DynamiQ; PAPERS.md): the ring reduce-scatter carries grad.Encoded
// frames hop to hop instead of dense float32 chunks, and each hop merges the
// incoming frame with the local chunk while staying compressed wherever the
// scheme permits:
//
//   - A row present in only one frame passes through verbatim — index, scale
//     and packed payload are copied, never decoded. In the sparse
//     gradient-row regime most rows are unique to one rank, so most of every
//     hop is a pure compressed-domain copy.
//   - A row present in both frames cannot be summed bit-wise under a lossy
//     scheme (two sign rows with different scales have no packed sum), so
//     exactly these rows fall back to decode-reduce: both payloads are
//     dequantized, summed in float32, and re-encoded with the frame's
//     scheme. Under NoQuant the fallback is exact; under the lossy schemes
//     it re-quantizes the sum, the per-hop error DynamiQ accepts (and the
//     sender-side error feedback cannot see — DESIGN.md §13 lists this as
//     the scheme's known deviation).
//
// The merge is deterministic: rows are walked in ascending id order and the
// rng (consumed only by TwoBitTernary re-encoding) is a dedicated stream, so
// a rank's hop sequence replays identically on the channel and TCP fabrics.

// Merger merges sorted Encoded frames and owns every piece of scratch the
// compressed ring pipeline needs, so the steady-state hop loop is
// allocation-free once warm. One per exchanged matrix per rank; not safe for
// concurrent use.
type Merger struct {
	// In is the decode scratch the collective unmarshals incoming hop
	// frames into. Owned by the collective between calls.
	In Encoded
	// Wire is the marshal scratch outgoing hop frames are staged through
	// before being copied into a pooled wire buffer. Owned by the
	// collective between calls.
	Wire []byte
	// View is the zero-copy alias of the local chunk the collective merges
	// against (see Encoded.Range).
	View Encoded

	out Encoded   // merged frame, reused across MergeInto calls
	sum []float32 // overlap decode-reduce scratch, one row wide
}

// Out returns the frame the last MergeInto produced. It aliases
// Merger-owned storage: valid until the next MergeInto call.
func (m *Merger) Out() *Encoded { return &m.out }

// MergeInto reduces frames a and b (same scheme and width, ascending
// indices) into the Merger's output frame and returns it. Rows unique to
// one input are copied still-compressed; overlapping rows are
// decoded, summed and re-encoded (consuming rng for TwoBitTernary only).
// Neither input may alias the Merger's output — in the ring pipeline a is
// the freshly decoded In frame and b the local chunk View, so this holds by
// construction.
//
//kgelint:hotpath
func (m *Merger) MergeInto(a, b *Encoded, rng *xrand.RNG) *Encoded {
	if a.Scheme != b.Scheme || a.Width != b.Width {
		panic("grad: merge of incompatible encoded frames")
	}
	w := a.Width
	per := payloadBytesPerRow(a.Scheme, w)
	if cap(m.sum) < w {
		m.sum = make([]float32, w)
	}

	out := &m.out
	out.Scheme = a.Scheme
	out.Width = w
	out.Indices = out.Indices[:0]
	out.Scales = out.Scales[:0]
	out.Bits = out.Bits[:0]

	i, j := 0, 0
	for i < len(a.Indices) || j < len(b.Indices) {
		switch {
		case j >= len(b.Indices) || (i < len(a.Indices) && a.Indices[i] < b.Indices[j]):
			appendRow(out, a, i, per)
			i++
		case i >= len(a.Indices) || b.Indices[j] < a.Indices[i]:
			appendRow(out, b, j, per)
			j++
		default: // same row id in both: decode-reduce fallback
			sum := m.sum[:w]
			for k := range sum {
				sum[k] = 0
			}
			decodeRowAccum(a, i, sum)
			decodeRowAccum(b, j, sum)
			out.Indices = append(out.Indices, a.Indices[i])
			// Extend Bits by one row; encodeRow overwrites every byte.
			for k := 0; k < per; k++ {
				out.Bits = append(out.Bits, 0)
			}
			buf := out.Bits[len(out.Bits)-per:]
			out.Scales = append(out.Scales, encodeRow(a.Scheme, sum, buf, rng))
			i++
			j++
		}
	}
	return out
}

// appendRow copies row r of src onto the end of out verbatim — the
// compressed-domain pass-through.
func appendRow(out, src *Encoded, r, per int) {
	out.Indices = append(out.Indices, src.Indices[r])
	out.Scales = append(out.Scales, src.Scales[r])
	out.Bits = append(out.Bits, src.Bits[r*per:(r+1)*per]...)
}
