// Package grad implements the paper's gradient pipeline: sparse per-row
// gradient accumulation, random selection of gradient vectors (§4.2), 1-bit
// and 2-bit gradient quantization with wire encoding (§4.3), and the
// error-feedback residual extension discussed in the related work (§2).
package grad

import (
	"sort"

	"kgedist/internal/tensor"
)

// SparseGrad accumulates gradient rows of a single embedding matrix, keyed
// by row id. Only rows touched by the current batch are materialized — the
// object that the all-gather path communicates and the all-reduce path
// scatters into a dense buffer.
type SparseGrad struct {
	width int
	rows  map[int32][]float32
}

// NewSparseGrad returns an empty accumulator for rows of the given width.
func NewSparseGrad(width int) *SparseGrad {
	if width <= 0 {
		panic("grad: non-positive width")
	}
	return &SparseGrad{width: width, rows: make(map[int32][]float32)}
}

// Width returns the row width.
func (g *SparseGrad) Width() int { return g.width }

// Len returns the number of materialized rows.
func (g *SparseGrad) Len() int { return len(g.rows) }

// Row returns the gradient row for id, materializing a zero row on first
// touch.
func (g *SparseGrad) Row(id int32) []float32 {
	r, ok := g.rows[id]
	if !ok {
		r = make([]float32, g.width)
		g.rows[id] = r
	}
	return r
}

// Get returns the row for id without materializing it.
func (g *SparseGrad) Get(id int32) ([]float32, bool) {
	r, ok := g.rows[id]
	return r, ok
}

// Drop removes a row (used by the selection strategies).
func (g *SparseGrad) Drop(id int32) { delete(g.rows, id) }

// Clear removes all rows, retaining the map for reuse.
func (g *SparseGrad) Clear() {
	for k := range g.rows {
		delete(g.rows, k)
	}
}

// Indices returns the materialized row ids in ascending order.
func (g *SparseGrad) Indices() []int32 {
	idx := make([]int32, 0, len(g.rows))
	for id := range g.rows {
		idx = append(idx, id)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// ForEach calls f for every materialized row in ascending id order.
func (g *SparseGrad) ForEach(f func(id int32, row []float32)) {
	for _, id := range g.Indices() {
		f(id, g.rows[id])
	}
}

// Flatten returns sorted indices and the concatenated row values in the
// same order — the payload of the sparse all-gather exchange.
func (g *SparseGrad) Flatten() ([]int32, []float32) {
	idx := g.Indices()
	flat := make([]float32, len(idx)*g.width)
	for i, id := range idx {
		copy(flat[i*g.width:(i+1)*g.width], g.rows[id])
	}
	return idx, flat
}

// AddFlat accumulates flattened rows (as produced by Flatten) into g.
func (g *SparseGrad) AddFlat(idx []int32, flat []float32) {
	if len(flat) != len(idx)*g.width {
		panic("grad: AddFlat size mismatch")
	}
	for i, id := range idx {
		tensor.Add(flat[i*g.width:(i+1)*g.width], g.Row(id))
	}
}

// ScatterDense writes the rows into a dense matrix-shaped buffer of
// rows*width floats (zeroing it first) — the payload of the dense
// all-reduce exchange.
func (g *SparseGrad) ScatterDense(buf []float32) {
	tensor.Zero(buf)
	for id, row := range g.rows {
		off := int(id) * g.width
		copy(buf[off:off+g.width], row)
	}
}

// AccumulateDense adds a dense matrix-shaped buffer's non-zero rows into g.
func (g *SparseGrad) AccumulateDense(buf []float32) {
	for off := 0; off+g.width <= len(buf); off += g.width {
		row := buf[off : off+g.width]
		if !tensor.IsZero(row) {
			tensor.Add(row, g.Row(int32(off/g.width)))
		}
	}
}

// NormStats summarizes the 2-norms of the rows: the mean norm is the
// threshold constant C of the paper's random-selection strategy.
func (g *SparseGrad) NormStats() (mean float32, norms map[int32]float32) {
	norms = make(map[int32]float32, len(g.rows))
	if len(g.rows) == 0 {
		return 0, norms
	}
	var sum float64
	for id, row := range g.rows {
		n := tensor.Nrm2(row)
		norms[id] = n
		sum += float64(n)
	}
	return float32(sum / float64(len(g.rows))), norms
}

// PayloadBytes returns the wire size of the uncompressed sparse exchange:
// 4 bytes per index plus 4 bytes per value.
func (g *SparseGrad) PayloadBytes() int {
	return 4*len(g.rows) + 4*len(g.rows)*g.width
}
