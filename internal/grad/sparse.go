// Package grad implements the paper's gradient pipeline: sparse per-row
// gradient accumulation, random selection of gradient vectors (§4.2), 1-bit
// and 2-bit gradient quantization with wire encoding (§4.3), and the
// error-feedback residual extension discussed in the related work (§2).
// On top of the static schemes sits the adaptive compression controller
// (Controller, Level, Merger): per-epoch gradient statistics drive a
// monotone compression ladder, and encoded frames reduce in the compressed
// domain inside the collectives — the model, decision rule and wire format
// are specified in DESIGN.md §13.
//
// # Buffer ownership
//
// The hot-path types recycle their internal storage (see DESIGN.md §10):
// SparseGrad keeps dropped rows on a free list and caches its sorted index
// slice, so a Clear/Row/Indices batch cycle is allocation-free after
// warm-up. The price is aliasing discipline: slices returned by Row, Get,
// Indices and ForEach are views into the accumulator, valid only until the
// next mutating call (Row of a new id, Drop, Clear), and must never be
// retained across batches or sent to another goroutine. Flatten is the one
// deliberate exception — it returns fresh allocations precisely because its
// output is handed to collectives and retained by every rank.
package grad

import (
	"slices"

	"kgedist/internal/tensor"
)

// SparseGrad accumulates gradient rows of a single embedding matrix, keyed
// by row id. Only rows touched by the current batch are materialized — the
// object that the all-gather path communicates and the all-reduce path
// scatters into a dense buffer.
//
// A SparseGrad is not safe for concurrent use; each training worker owns
// its own. Cleared and dropped rows are recycled internally, so reusing one
// accumulator across batches (Clear, then refill) allocates nothing once
// the row working set has been seen.
type SparseGrad struct {
	width int
	rows  map[int32][]float32
	free  [][]float32 // recycled row storage: Drop/Clear push, Row pops
	idx   []int32     // cached sorted ids, valid while idxOK
	idxOK bool
}

// NewSparseGrad returns an empty accumulator for rows of the given width
// (floats per row).
func NewSparseGrad(width int) *SparseGrad {
	if width <= 0 {
		panic("grad: non-positive width")
	}
	return &SparseGrad{width: width, rows: make(map[int32][]float32)}
}

// Width returns the row width in floats.
func (g *SparseGrad) Width() int { return g.width }

// Len returns the number of materialized rows.
func (g *SparseGrad) Len() int { return len(g.rows) }

// Row returns the gradient row for id, materializing a zero row on first
// touch (from the internal free list when possible). The slice aliases the
// accumulator's storage: it is valid until id is dropped or the accumulator
// is cleared, and must not be retained beyond that.
func (g *SparseGrad) Row(id int32) []float32 {
	r, ok := g.rows[id]
	if !ok {
		if n := len(g.free); n > 0 {
			r = g.free[n-1]
			g.free[n-1] = nil
			g.free = g.free[:n-1]
			tensor.Zero(r)
		} else {
			r = make([]float32, g.width)
		}
		g.rows[id] = r
		g.idxOK = false
	}
	return r
}

// Get returns the row for id without materializing it. The slice follows
// the same aliasing rule as Row.
func (g *SparseGrad) Get(id int32) ([]float32, bool) {
	r, ok := g.rows[id]
	return r, ok
}

// Drop removes a row (used by the selection strategies), recycling its
// storage. Any slice previously returned for id becomes invalid.
func (g *SparseGrad) Drop(id int32) {
	r, ok := g.rows[id]
	if !ok {
		return
	}
	g.free = append(g.free, r)
	delete(g.rows, id)
	g.idxOK = false
}

// Clear removes all rows, retaining both the map and the row storage for
// reuse. Every slice previously returned by Row/Get/Indices is invalidated.
func (g *SparseGrad) Clear() {
	for k, r := range g.rows {
		g.free = append(g.free, r)
		delete(g.rows, k)
	}
	g.idxOK = false
}

// Indices returns the materialized row ids in ascending order. The slice is
// owned by the accumulator: it is valid until the next mutating call (Row
// of a new id, Drop, Clear) and must not be modified or retained. Callers
// that need a stable copy must append it into their own storage.
func (g *SparseGrad) Indices() []int32 {
	if g.idxOK {
		return g.idx
	}
	g.idx = g.idx[:0]
	for id := range g.rows {
		g.idx = append(g.idx, id)
	}
	slices.Sort(g.idx)
	g.idxOK = true
	return g.idx
}

// ForEach calls f for every materialized row in ascending id order. f may
// mutate row values in place but must not add or drop rows of g.
func (g *SparseGrad) ForEach(f func(id int32, row []float32)) {
	for _, id := range g.Indices() {
		f(id, g.rows[id])
	}
}

// Flatten returns sorted indices and the concatenated row values in the
// same order — the payload of the sparse all-gather exchange. Both slices
// are freshly allocated on every call: the caller may hand them to a
// collective, where every rank retains them, so they are deliberately NOT
// recycled storage (see the package comment on ownership).
func (g *SparseGrad) Flatten() ([]int32, []float32) {
	idx := append([]int32(nil), g.Indices()...)
	flat := make([]float32, len(idx)*g.width)
	for i, id := range idx {
		copy(flat[i*g.width:(i+1)*g.width], g.rows[id])
	}
	return idx, flat
}

// AddFlat accumulates flattened rows (as produced by Flatten) into g. The
// input slices are only read.
func (g *SparseGrad) AddFlat(idx []int32, flat []float32) {
	if len(flat) != len(idx)*g.width {
		panic("grad: AddFlat size mismatch")
	}
	for i, id := range idx {
		tensor.Add(flat[i*g.width:(i+1)*g.width], g.Row(id))
	}
}

// ScatterDense writes the rows into a dense matrix-shaped buffer of
// rows*width floats (zeroing it first) — the payload of the dense
// all-reduce exchange. buf is caller-owned scratch; g is only read.
func (g *SparseGrad) ScatterDense(buf []float32) {
	tensor.Zero(buf)
	for id, row := range g.rows {
		off := int(id) * g.width
		copy(buf[off:off+g.width], row)
	}
}

// AccumulateDense adds a dense matrix-shaped buffer's non-zero rows into g.
// buf is only read.
func (g *SparseGrad) AccumulateDense(buf []float32) {
	for off := 0; off+g.width <= len(buf); off += g.width {
		row := buf[off : off+g.width]
		if !tensor.IsZero(row) {
			tensor.Add(row, g.Row(int32(off/g.width)))
		}
	}
}

// NormStats summarizes the 2-norms of the rows: the mean norm is the
// threshold constant C of the paper's random-selection strategy. The
// returned map is freshly allocated and owned by the caller.
func (g *SparseGrad) NormStats() (mean float32, norms map[int32]float32) {
	norms = make(map[int32]float32, len(g.rows))
	if len(g.rows) == 0 {
		return 0, norms
	}
	var sum float64
	for id, row := range g.rows {
		n := tensor.Nrm2(row)
		norms[id] = n
		sum += float64(n)
	}
	return float32(sum / float64(len(g.rows))), norms
}

// PayloadBytes returns the wire size in bytes of the uncompressed sparse
// exchange: 4 bytes per index plus 4 bytes per value.
func (g *SparseGrad) PayloadBytes() int {
	return 4*len(g.rows) + 4*len(g.rows)*g.width
}
