package grad

import (
	"math"
	"testing"

	"kgedist/internal/xrand"
)

func TestSparsifyValuesKeepsLargest(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(4)
	copy(g.Row(0), []float32{10, -1, 0.5, 0})
	copy(g.Row(1), []float32{-20, 2, 0, 0})
	vs := SparsifyValues(g, 0.5) // 5 non-zero values -> keep ceil(2.5)=3
	if len(vs.Vals) != 3 {
		t.Fatalf("kept %d values", len(vs.Vals))
	}
	// The three largest magnitudes are -20, 10, 2.
	mags := map[float32]bool{}
	for _, v := range vs.Vals {
		mags[v] = true
	}
	for _, want := range []float32{-20, 10, 2} {
		if !mags[want] {
			t.Fatalf("missing value %v in %v", want, vs.Vals)
		}
	}
}

func TestSparsifyValuesFullFraction(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(3)
	copy(g.Row(2), []float32{1, 2, 3})
	vs := SparsifyValues(g, 1)
	if len(vs.Vals) != 3 {
		t.Fatalf("kept %d of 3", len(vs.Vals))
	}
	dst := NewSparseGrad(3)
	vs.AddInto(dst)
	row, _ := dst.Get(2)
	for i, want := range []float32{1, 2, 3} {
		if row[i] != want {
			t.Fatalf("reconstruction wrong: %v", row)
		}
	}
}

func TestSparsifyValuesPanicsOnBadFraction(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	for _, f := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("fraction %v accepted", f)
				}
			}()
			SparsifyValues(g, f)
		}()
	}
}

func TestValueSparseWireOverhead(t *testing.T) {
	t.Parallel()
	// The paper's point: per-value indices triple the wire cost per
	// surviving value versus a dense float, so a 25% keep rate saves
	// LESS than 25% of bytes (12 bytes/value vs 4).
	rng := xrand.New(4)
	g := randGrad(rng, 50, 64)
	dense := Quantize(g, NoQuant, nil).WireBytes()
	vs := SparsifyValues(g, 0.25)
	if got := vs.WireBytes(); got != 12*len(vs.Vals) {
		t.Fatalf("WireBytes = %d", got)
	}
	ratio := float64(vs.WireBytes()) / float64(dense)
	if ratio < 0.5 || ratio > 0.95 {
		t.Fatalf("25%% value-sparsity moved %.0f%% of dense bytes — expected 50-95%% "+
			"(index overhead)", 100*ratio)
	}
	// Whereas the paper's 1-bit row quantization at the same gradient is
	// dramatically cheaper.
	oneBit := Quantize(g, OneBitMax, nil).WireBytes()
	if oneBit*5 > vs.WireBytes() {
		t.Fatalf("1-bit (%d B) not clearly below value-sparse (%d B)", oneBit, vs.WireBytes())
	}
}

func TestValueSparseMarshalRoundTrip(t *testing.T) {
	t.Parallel()
	rng := xrand.New(5)
	g := randGrad(rng, 7, 9)
	vs := SparsifyValues(g, 0.5)
	got, err := UnmarshalValueSparse(vs.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != vs.Width || len(got.Vals) != len(vs.Vals) {
		t.Fatalf("header mismatch")
	}
	for i := range vs.Vals {
		if got.Rows[i] != vs.Rows[i] || got.Cols[i] != vs.Cols[i] || got.Vals[i] != vs.Vals[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestUnmarshalValueSparseErrors(t *testing.T) {
	t.Parallel()
	if _, err := UnmarshalValueSparse(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := UnmarshalValueSparse([]byte("XXXXXXXXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	g := NewSparseGrad(2)
	g.Row(0)[0] = 1
	buf := SparsifyValues(g, 1).Marshal()
	if _, err := UnmarshalValueSparse(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestSparsifyValuesDeterministic(t *testing.T) {
	t.Parallel()
	rng := xrand.New(6)
	g := randGrad(rng, 10, 8)
	a := SparsifyValues(g, 0.3)
	b := SparsifyValues(g, 0.3)
	if len(a.Vals) != len(b.Vals) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Vals {
		if a.Rows[i] != b.Rows[i] || a.Cols[i] != b.Cols[i] {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestSparsifyValuesApproximation(t *testing.T) {
	t.Parallel()
	// Keeping 60% of values must retain most of the gradient energy.
	rng := xrand.New(7)
	g := randGrad(rng, 20, 16)
	vs := SparsifyValues(g, 0.6)
	dst := NewSparseGrad(16)
	vs.AddInto(dst)
	var refSq, errSq float64
	g.ForEach(func(id int32, row []float32) {
		d, _ := dst.Get(id)
		for i, v := range row {
			refSq += float64(v) * float64(v)
			var dv float32
			if d != nil {
				dv = d[i]
			}
			e := float64(v - dv)
			errSq += e * e
		}
	})
	if math.Sqrt(errSq/refSq) > 0.5 {
		t.Fatalf("60%% keep lost too much energy: rel err %v", math.Sqrt(errSq/refSq))
	}
}
