package grad

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/xrand"
)

func randGrad(rng *xrand.RNG, rows, width int) *SparseGrad {
	g := NewSparseGrad(width)
	for i := 0; i < rows; i++ {
		row := g.Row(int32(i * 3)) // non-contiguous ids
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	return g
}

func TestOneBitMaxRoundTrip(t *testing.T) {
	t.Parallel()
	rng := xrand.New(1)
	g := randGrad(rng, 10, 16)
	e := Quantize(g, OneBitMax, nil)
	dst := NewSparseGrad(16)
	Dequantize(e, dst)
	g.ForEach(func(id int32, row []float32) {
		dec, ok := dst.Get(id)
		if !ok {
			t.Fatalf("row %d missing after round trip", id)
		}
		max := float32(0)
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > max {
				max = a
			}
		}
		for i, v := range row {
			// Sign preserved (zero maps to +scale by convention).
			if v > 0 && dec[i] <= 0 || v < 0 && dec[i] >= 0 {
				t.Fatalf("sign flipped at row %d col %d: %v -> %v", id, i, v, dec[i])
			}
			// Magnitude equals the row max.
			if math.Abs(math.Abs(float64(dec[i]))-float64(max)) > 1e-6 {
				t.Fatalf("magnitude %v != max %v", dec[i], max)
			}
		}
	})
}

func TestOneBitVariantsScales(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(4)
	copy(g.Row(0), []float32{-4, -2, 1, 3})
	check := func(s Scheme, want float32) {
		t.Helper()
		e := Quantize(g, s, nil)
		if math.Abs(float64(e.Scales[0]-want)) > 1e-6 {
			t.Fatalf("%v scale = %v, want %v", s, e.Scales[0], want)
		}
	}
	check(OneBitMax, 4)
	check(OneBitAvg, (4+2+1+3)/4.0)
	check(OneBitPosMax, 3)
	check(OneBitNegMax, 4)
	check(OneBitPosAvg, 2)
	check(OneBitNegAvg, 3)
}

func TestOneBitSignRestrictedFallback(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(3)
	copy(g.Row(0), []float32{1, 2, 3}) // no negative values
	e := Quantize(g, OneBitNegMax, nil)
	if e.Scales[0] != 3 { // falls back to max(|v|)
		t.Fatalf("fallback scale = %v", e.Scales[0])
	}
}

func TestTwoBitTernaryProperties(t *testing.T) {
	t.Parallel()
	rng := xrand.New(3)
	g := randGrad(rng, 20, 32)
	e := Quantize(g, TwoBitTernary, rng)
	dst := NewSparseGrad(32)
	Dequantize(e, dst)
	g.ForEach(func(id int32, row []float32) {
		dec, _ := dst.Get(id)
		mean := float32(0)
		for _, v := range row {
			mean += float32(math.Abs(float64(v)))
		}
		mean /= float32(len(row))
		for i, v := range row {
			d := dec[i]
			// Ternary: value is 0 or +-mean.
			if d != 0 && math.Abs(math.Abs(float64(d))-float64(mean)) > 1e-6 {
				t.Fatalf("non-ternary value %v (mean %v)", d, mean)
			}
			// Non-zero decoded values preserve the sign.
			if d > 0 && v < 0 || d < 0 && v > 0 {
				t.Fatalf("ternary sign flip: %v -> %v", v, d)
			}
			// Values with |v| >= mean are never zeroed.
			if math.Abs(float64(v)) >= float64(mean) && d == 0 {
				t.Fatalf("large value %v zeroed (mean %v)", v, mean)
			}
		}
	})
}

func TestTwoBitTernaryUnbiasedExpectation(t *testing.T) {
	t.Parallel()
	// E[q_i] = sign(v) * mean * min(1,|v|/mean) = v for |v| <= mean.
	rng := xrand.New(5)
	g := NewSparseGrad(2)
	copy(g.Row(0), []float32{0.5, 1.5}) // mean = 1.0
	const trials = 20000
	var sum0, sum1 float64
	for i := 0; i < trials; i++ {
		e := Quantize(g, TwoBitTernary, rng)
		dst := NewSparseGrad(2)
		Dequantize(e, dst)
		dec, _ := dst.Get(0)
		sum0 += float64(dec[0])
		sum1 += float64(dec[1])
	}
	if math.Abs(sum0/trials-0.5) > 0.02 {
		t.Fatalf("E[q0] = %v, want 0.5", sum0/trials)
	}
	// |v| > mean saturates at mean.
	if math.Abs(sum1/trials-1.0) > 0.02 {
		t.Fatalf("E[q1] = %v, want 1.0 (saturated)", sum1/trials)
	}
}

func TestNoQuantRoundTripExact(t *testing.T) {
	t.Parallel()
	rng := xrand.New(7)
	g := randGrad(rng, 8, 10)
	e := Quantize(g, NoQuant, nil)
	dst := NewSparseGrad(10)
	Dequantize(e, dst)
	g.ForEach(func(id int32, row []float32) {
		dec, _ := dst.Get(id)
		for i := range row {
			if row[i] != dec[i] {
				t.Fatalf("NoQuant not exact at %d/%d", id, i)
			}
		}
	})
}

func TestWireBytesCompression(t *testing.T) {
	t.Parallel()
	rng := xrand.New(9)
	g := randGrad(rng, 50, 64)
	full := Quantize(g, NoQuant, nil).WireBytes()
	oneBit := Quantize(g, OneBitMax, nil).WireBytes()
	twoBit := Quantize(g, TwoBitTernary, rng).WireBytes()
	// 1-bit payload should be dramatically smaller; with 64-wide rows the
	// index+scale overhead still leaves >10x compression.
	if float64(full)/float64(oneBit) < 10 {
		t.Fatalf("1-bit compression only %vx (%d vs %d)", float64(full)/float64(oneBit), full, oneBit)
	}
	if oneBit >= twoBit {
		t.Fatalf("1-bit (%d) not smaller than 2-bit (%d)", oneBit, twoBit)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	t.Parallel()
	rng := xrand.New(11)
	for _, s := range []Scheme{NoQuant, OneBitMax, OneBitAvg, TwoBitTernary} {
		g := randGrad(rng, 6, 9) // odd width exercises bit padding
		e := Quantize(g, s, rng)
		buf := e.Marshal()
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", s, err)
		}
		if got.Scheme != e.Scheme || got.Width != e.Width {
			t.Fatalf("%v: header mismatch", s)
		}
		if len(got.Indices) != len(e.Indices) {
			t.Fatalf("%v: indices differ", s)
		}
		for i := range e.Indices {
			if got.Indices[i] != e.Indices[i] || got.Scales[i] != e.Scales[i] {
				t.Fatalf("%v: row %d metadata differs", s, i)
			}
		}
		for i := range e.Bits {
			if got.Bits[i] != e.Bits[i] {
				t.Fatalf("%v: payload differs at byte %d", s, i)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	t.Parallel()
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
	g := NewSparseGrad(4)
	g.Row(0)[0] = 1
	buf := Quantize(g, OneBitMax, nil).Marshal()
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestSchemeStringsAndBits(t *testing.T) {
	t.Parallel()
	if NoQuant.BitsPerValue() != 32 || OneBitMax.BitsPerValue() != 1 || TwoBitTernary.BitsPerValue() != 2 {
		t.Fatal("BitsPerValue wrong")
	}
	names := map[Scheme]string{
		NoQuant: "none", OneBitMax: "1bit-max", OneBitAvg: "1bit-avg",
		OneBitPosMax: "1bit-posmax", OneBitNegMax: "1bit-negmax",
		OneBitPosAvg: "1bit-posavg", OneBitNegAvg: "1bit-negavg",
		TwoBitTernary: "2bit-ternary", Scheme(200): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestEmptyGradientQuantize(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(8)
	e := Quantize(g, OneBitMax, nil)
	if len(e.Indices) != 0 || e.WireBytes() != 0 {
		t.Fatalf("empty encode: %d rows, %d bytes", len(e.Indices), e.WireBytes())
	}
	buf := e.Marshal()
	got, err := Unmarshal(buf)
	if err != nil || len(got.Indices) != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

// Property: for the whole 1-bit family, |decoded| is constant per row and
// signs match the input; Marshal/Unmarshal is the identity.
func TestQuickOneBitFamily(t *testing.T) {
	t.Parallel()
	schemes := []Scheme{OneBitMax, OneBitAvg, OneBitPosMax, OneBitNegMax, OneBitPosAvg, OneBitNegAvg}
	f := func(seed uint64, widthRaw uint8, schemeIdx uint8) bool {
		width := int(widthRaw%31) + 1
		s := schemes[int(schemeIdx)%len(schemes)]
		rng := xrand.New(seed)
		g := randGrad(rng, 5, width)
		e := Quantize(g, s, nil)
		buf := e.Marshal()
		e2, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		dst := NewSparseGrad(width)
		Dequantize(e2, dst)
		ok := true
		g.ForEach(func(id int32, row []float32) {
			dec, found := dst.Get(id)
			if !found {
				ok = false
				return
			}
			for i, v := range row {
				if v > 0 && dec[i] < 0 || v < 0 && dec[i] > 0 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuantizeOneBit(b *testing.B) {
	rng := xrand.New(1)
	g := randGrad(rng, 500, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantize(g, OneBitMax, nil)
	}
}

func BenchmarkDequantizeOneBit(b *testing.B) {
	rng := xrand.New(1)
	g := randGrad(rng, 500, 64)
	e := Quantize(g, OneBitMax, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewSparseGrad(64)
		Dequantize(e, dst)
	}
}

// Property: the encoded wire size follows the documented formula for every
// scheme — 4 bytes index + 4 bytes scale per row plus the packed payload.
func TestQuickWireBytesFormula(t *testing.T) {
	t.Parallel()
	schemes := []Scheme{NoQuant, OneBitMax, OneBitAvg, TwoBitTernary}
	f := func(seed uint64, rowsRaw, widthRaw, si uint8) bool {
		rows := int(rowsRaw % 20)
		width := int(widthRaw%33) + 1
		s := schemes[int(si)%len(schemes)]
		rng := xrand.New(seed)
		g := NewSparseGrad(width)
		for i := 0; i < rows; i++ {
			row := g.Row(int32(i))
			row[rng.Intn(width)] = rng.Float32() + 0.1
		}
		e := Quantize(g, s, rng)
		var per int
		switch s {
		case NoQuant:
			per = 4 * width
		case TwoBitTernary:
			per = (2*width + 7) / 8
		default:
			per = (width + 7) / 8
		}
		want := rows*4 + rows*per
		if s != NoQuant {
			want += rows * 4 // scales travel only for quantized schemes
		}
		return e.WireBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: dequantized 1-bit payloads reconstruct rows whose sign pattern
// matches the packed bits regardless of row content.
func TestQuickOneBitIdempotentEncode(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, widthRaw uint8) bool {
		width := int(widthRaw%16) + 1
		rng := xrand.New(seed)
		g := NewSparseGrad(width)
		row := g.Row(0)
		for i := range row {
			row[i] = float32(rng.NormFloat64())
		}
		e1 := Quantize(g, OneBitMax, nil)
		// Quantizing the dequantized gradient is a fixed point: signs and
		// scale survive a second round.
		dec := NewSparseGrad(width)
		Dequantize(e1, dec)
		e2 := Quantize(dec, OneBitMax, nil)
		if len(e1.Bits) != len(e2.Bits) {
			return false
		}
		for i := range e1.Bits {
			if e1.Bits[i] != e2.Bits[i] {
				return false
			}
		}
		return e1.Scales[0] == e2.Scales[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
