package grad

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Value-level sparsification (Aji & Heafield 2017), the related-work
// baseline the paper rejects for KGE workloads: instead of dropping whole
// gradient rows, keep only the top fraction of individual values by
// magnitude and ship (row, column, value) triplets. The paper's §2
// objection — "the indices of the data will have to be communicated,
// requiring large volume" when rows are only up-to-200 wide — becomes
// measurable here: each surviving value costs 8 index bytes on top of its 4
// value bytes.

// ValueSparse is a value-level sparsified gradient ready for the wire.
type ValueSparse struct {
	Width int
	Rows  []int32   // row id per value
	Cols  []int32   // column per value
	Vals  []float32 // the surviving values
}

// SparsifyValues keeps the ceil(fraction * total) largest-magnitude values
// of g (fraction clamped to (0, 1]). The input gradient is not modified.
func SparsifyValues(g *SparseGrad, fraction float64) *ValueSparse {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("grad: SparsifyValues fraction %v out of (0,1]", fraction))
	}
	type entry struct {
		row int32
		col int32
		val float32
	}
	var all []entry
	g.ForEach(func(id int32, row []float32) {
		for c, v := range row {
			if v != 0 {
				all = append(all, entry{id, int32(c), v})
			}
		}
	})
	keep := int(math.Ceil(fraction * float64(len(all))))
	if keep > len(all) {
		keep = len(all)
	}
	sort.Slice(all, func(i, j int) bool {
		ai, aj := math.Abs(float64(all[i].val)), math.Abs(float64(all[j].val))
		if ai != aj { //kgelint:ignore floateq sort comparator needs the exact ordering
			return ai > aj
		}
		// Deterministic tie-break by position.
		if all[i].row != all[j].row {
			return all[i].row < all[j].row
		}
		return all[i].col < all[j].col
	})
	vs := &ValueSparse{Width: g.Width()}
	for _, e := range all[:keep] {
		vs.Rows = append(vs.Rows, e.row)
		vs.Cols = append(vs.Cols, e.col)
		vs.Vals = append(vs.Vals, e.val)
	}
	return vs
}

// AddInto accumulates the surviving values into dst.
func (vs *ValueSparse) AddInto(dst *SparseGrad) {
	if dst.Width() != vs.Width {
		panic("grad: ValueSparse width mismatch")
	}
	for i, r := range vs.Rows {
		dst.Row(r)[vs.Cols[i]] += vs.Vals[i]
	}
}

// WireBytes returns the on-wire size: 4 bytes row + 4 bytes column + 4
// bytes value per entry — the index overhead the paper's §2 calls out.
func (vs *ValueSparse) WireBytes() int { return 12 * len(vs.Vals) }

// Marshal serializes for AllGatherBytes:
// magic 'V' | width u32 | n u32 | rows | cols | vals.
func (vs *ValueSparse) Marshal() []byte {
	n := len(vs.Vals)
	out := make([]byte, 0, 9+12*n)
	out = append(out, 'V')
	out = binary.LittleEndian.AppendUint32(out, uint32(vs.Width))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for _, r := range vs.Rows {
		out = binary.LittleEndian.AppendUint32(out, uint32(r))
	}
	for _, c := range vs.Cols {
		out = binary.LittleEndian.AppendUint32(out, uint32(c))
	}
	for _, v := range vs.Vals {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out
}

// UnmarshalValueSparse parses a buffer produced by Marshal.
func UnmarshalValueSparse(buf []byte) (*ValueSparse, error) {
	if len(buf) < 9 || buf[0] != 'V' {
		return nil, fmt.Errorf("grad: not a value-sparse payload")
	}
	vs := &ValueSparse{Width: int(binary.LittleEndian.Uint32(buf[1:]))}
	n := int(binary.LittleEndian.Uint32(buf[5:]))
	if vs.Width <= 0 || len(buf) != 9+12*n {
		return nil, fmt.Errorf("grad: value-sparse payload size %d does not match header", len(buf))
	}
	off := 9
	vs.Rows = make([]int32, n)
	for i := range vs.Rows {
		vs.Rows[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	vs.Cols = make([]int32, n)
	for i := range vs.Cols {
		vs.Cols[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	vs.Vals = make([]float32, n)
	for i := range vs.Vals {
		vs.Vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return vs, nil
}
