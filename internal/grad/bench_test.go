package grad

import (
	"testing"

	"kgedist/internal/xrand"
)

// Micro-benchmarks for the gradient codec hot path. Shapes mirror one
// training batch of the default config: 256 touched rows, width 32.
// Run via `make bench`; results land in BENCH_<date>.json.

const (
	benchRows  = 256
	benchWidth = 32
)

func benchGrad(rng *xrand.RNG) *SparseGrad {
	g := NewSparseGrad(benchWidth)
	fillGrad(g, benchRows, rng)
	return g
}

func BenchmarkQuantizeInto(b *testing.B) {
	for _, s := range []Scheme{OneBitMax, TwoBitTernary} {
		b.Run(s.String(), func(b *testing.B) {
			rng := xrand.New(1)
			g := benchGrad(rng)
			e := new(Encoded)
			QuantizeInto(e, g, s, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				QuantizeInto(e, g, s, rng)
			}
			b.ReportMetric(float64(benchRows*benchWidth)*float64(b.N)/b.Elapsed().Seconds(), "values/sec")
		})
	}
}

func BenchmarkDequantize(b *testing.B) {
	rng := xrand.New(1)
	g := benchGrad(rng)
	e := Quantize(g, OneBitMax, rng)
	dst := NewSparseGrad(benchWidth)
	Dequantize(e, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Clear()
		Dequantize(e, dst)
	}
}

func BenchmarkUnmarshalInto(b *testing.B) {
	g := benchGrad(xrand.New(1))
	buf := Quantize(g, OneBitMax, nil).Marshal()
	e := new(Encoded)
	if err := UnmarshalInto(e, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnmarshalInto(e, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	g := benchGrad(xrand.New(1))
	e := Quantize(g, OneBitMax, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := e.Marshal() // wire payload: deliberately fresh per call
		_ = buf
	}
}

// The per-batch accumulator cycle core/trainer.go runs: Clear, touch rows,
// read sorted indices.
func BenchmarkSparseGradCycle(b *testing.B) {
	g := NewSparseGrad(benchWidth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Clear()
		for r := 0; r < benchRows; r++ {
			g.Row(int32(r))[0] = 1
		}
		_ = g.Indices()
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := xrand.New(1)
	g := benchGrad(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fillGrad(g, benchRows, rng)
		b.StartTimer()
		Select(g, SelectBernoulli, rng)
	}
}

// The controller's per-batch statistics pass (DESIGN.md §13): row norms plus
// the strided bucket histogram over one batch-shaped gradient.
func BenchmarkControllerObserve(b *testing.B) {
	g := benchGrad(xrand.New(1))
	c := NewController(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(g)
	}
	b.ReportMetric(float64(benchRows*benchWidth)*float64(b.N)/b.Elapsed().Seconds(), "values/sec")
}

// One compressed-domain hop merge with ~1/3 row overlap — the ring's
// steady-state work per reduce-scatter step.
func BenchmarkMergeInto(b *testing.B) {
	for _, s := range []Scheme{NoQuant, OneBitMax} {
		b.Run(s.String(), func(b *testing.B) {
			rng := xrand.New(1)
			ga := NewSparseGrad(benchWidth)
			gb := NewSparseGrad(benchWidth)
			for r := 0; r < benchRows; r++ {
				if r%3 != 1 { // rows ≡ 0 mod 3 overlap, others are unique
					row := ga.Row(int32(r))
					for j := range row {
						row[j] = float32(rng.NormFloat64())
					}
				}
				if r%3 != 2 {
					row := gb.Row(int32(r))
					for j := range row {
						row[j] = float32(rng.NormFloat64())
					}
				}
			}
			ea := Quantize(ga, s, rng)
			eb := Quantize(gb, s, rng)
			var m Merger
			m.MergeInto(ea, eb, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MergeInto(ea, eb, rng)
			}
		})
	}
}
