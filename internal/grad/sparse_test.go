package grad

import (
	"testing"

	"kgedist/internal/tensor"
)

func TestSparseGradBasics(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(3)
	if g.Len() != 0 || g.Width() != 3 {
		t.Fatalf("fresh grad: len %d width %d", g.Len(), g.Width())
	}
	r := g.Row(5)
	r[0] = 1
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	r2 := g.Row(5)
	if r2[0] != 1 {
		t.Fatal("Row did not return the same storage")
	}
	if _, ok := g.Get(6); ok {
		t.Fatal("Get materialized a row")
	}
	g.Drop(5)
	if g.Len() != 0 {
		t.Fatal("Drop failed")
	}
}

func TestSparseGradPanicsOnBadWidth(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparseGrad(0)
}

func TestIndicesSorted(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	for _, id := range []int32{9, 1, 5, 3} {
		g.Row(id)[0] = float32(id)
	}
	idx := g.Indices()
	want := []int32{1, 3, 5, 9}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("Indices = %v", idx)
		}
	}
}

func TestFlattenAddFlatRoundTrip(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	g.Row(3)[0] = 1
	g.Row(3)[1] = 2
	g.Row(7)[0] = -1
	idx, flat := g.Flatten()
	if len(idx) != 2 || len(flat) != 4 {
		t.Fatalf("Flatten sizes %d %d", len(idx), len(flat))
	}
	h := NewSparseGrad(2)
	h.AddFlat(idx, flat)
	h.AddFlat(idx, flat)
	row, _ := h.Get(3)
	if row[0] != 2 || row[1] != 4 {
		t.Fatalf("AddFlat accumulation wrong: %v", row)
	}
}

func TestAddFlatPanicsOnMismatch(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddFlat([]int32{1}, []float32{1, 2, 3})
}

func TestScatterAccumulateDense(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	g.Row(1)[0] = 5
	g.Row(2)[1] = 7
	buf := make([]float32, 4*2) // 4 rows
	tensor.Fill(buf, 99)        // ScatterDense must zero first
	g.ScatterDense(buf)
	if buf[0] != 0 || buf[2] != 5 || buf[5] != 7 {
		t.Fatalf("ScatterDense wrong: %v", buf)
	}
	h := NewSparseGrad(2)
	h.AccumulateDense(buf)
	if h.Len() != 2 {
		t.Fatalf("AccumulateDense rows = %d", h.Len())
	}
	row, _ := h.Get(2)
	if row[1] != 7 {
		t.Fatalf("AccumulateDense values wrong: %v", row)
	}
}

func TestNormStats(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	copy(g.Row(0), []float32{3, 4}) // norm 5
	copy(g.Row(1), []float32{0, 1}) // norm 1
	mean, norms := g.NormStats()
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if norms[0] != 5 || norms[1] != 1 {
		t.Fatalf("norms = %v", norms)
	}
	empty := NewSparseGrad(2)
	if m, _ := empty.NormStats(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestPayloadBytes(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(4)
	g.Row(0)
	g.Row(1)
	// 2 indices * 4 + 2 rows * 4 floats * 4 bytes = 40.
	if got := g.PayloadBytes(); got != 40 {
		t.Fatalf("PayloadBytes = %d", got)
	}
}

func TestClearRetainsNothing(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(2)
	g.Row(1)[0] = 3
	g.Clear()
	if g.Len() != 0 {
		t.Fatal("Clear left rows")
	}
	if row := g.Row(1); row[0] != 0 {
		t.Fatal("Clear left stale values")
	}
}

func TestForEachOrdered(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(1)
	for _, id := range []int32{4, 2, 8} {
		g.Row(id)
	}
	var got []int32
	g.ForEach(func(id int32, _ []float32) { got = append(got, id) })
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("ForEach order %v", got)
	}
}
