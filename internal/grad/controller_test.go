package grad

import (
	"math"
	"testing"

	"kgedist/internal/xrand"
)

// statsBuf builds a packed controller statistics vector whose histogram holds
// the given bucket masses (remaining buckets zero) and whose row accumulators
// are consistent with one row of unit norm per mass unit.
func statsBuf(masses ...float64) []float32 {
	buf := make([]float32, CtrlStatsLen)
	var total float64
	for i, m := range masses {
		buf[i] = float32(m)
		total += m
	}
	buf[EntropyBuckets] = float32(total)   // rows
	buf[EntropyBuckets+1] = float32(total) // norm sum (unit norms)
	buf[EntropyBuckets+2] = float32(total) // norm square sum
	return buf
}

// normEntropy mirrors the controller's normalized-entropy formula for a set
// of bucket masses.
func normEntropy(masses ...float64) float64 {
	var total float64
	for _, m := range masses {
		total += m
	}
	h := 0.0
	for _, m := range masses {
		if m > 0 {
			p := m / total
			h -= p * math.Log2(p)
		}
	}
	return h / math.Log2(EntropyBuckets)
}

func TestBucketMapping(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    float32
		want int
	}{
		{0, 0},                // exact zero: zero exponent, bottom bucket
		{1e-30, 0},            // far below the floor clamps to 0
		{float32(0x1p-24), 0}, // the floor edge itself
		{float32(0x1p-22), 1}, // one bucket (two binary orders) up
		{1, 12},               // 2^0: (127-103)/2
		{-1, 12},              // sign is masked
		{float32(0x1p+5), 14},
		{float32(0x1p+6), 15},  // top edge
		{1e30, 15},             // far above the span clamps to the top
		{float32(math.Inf(1)), 15},
	}
	for _, c := range cases {
		if got := Bucket(c.v); got != c.want {
			t.Errorf("Bucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

// The ladder ascends one rung per satisfied hold window, holds through noisy
// epochs (run counter resets when the signal rises), parks when the next bar
// is out of reach, and never descends — the monotone-ascent invariant of
// DESIGN.md §13.
func TestControllerLadderDecision(t *testing.T) {
	t.Parallel()
	// Three entropy regimes against the bars {2bit: 0.50, 1bit: 0.48,
	// 1bit+rs: 0.44}: low qualifies for every bar, mid for the quantization
	// bars only, high for none.
	low := statsBuf(1, 1, 1)        // log2(3)/4 ~ 0.396
	mid := statsBuf(3, 3, 3, 1)     // ~ 0.474
	high := make([]float32, CtrlStatsLen)
	for i := 0; i < EntropyBuckets; i++ {
		high[i] = 1 // uniform: exactly 1.0
	}
	high[EntropyBuckets] = EntropyBuckets

	if h := normEntropy(1, 1, 1); !(h < 0.44) {
		t.Fatalf("low regime entropy %v not below every bar", h)
	}
	if h := normEntropy(3, 3, 3, 1); !(h > 0.44 && h < 0.48) {
		t.Fatalf("mid regime entropy %v not between the 1bit+rs and 1bit bars", h)
	}

	c := NewController(2, 1)
	steps := []struct {
		buf      []float32
		wantNext Level
		wantStep bool
	}{
		{low, LevelFP32, false},  // epoch 1: warmup
		{low, LevelFP32, false},  // run 1 of hold 2
		{low, Level2Bit, true},   // run 2: step
		{high, Level2Bit, false}, // noisy epoch resets the run counter
		{low, Level2Bit, false},  // run restarts at 1
		{mid, Level1Bit, true},   // mid still clears the 1bit bar: step
		{mid, Level1Bit, false},  // mid does not clear the rs bar
		{mid, Level1Bit, false},  // parks
		{low, Level1Bit, false},  // run 1
		{low, Level1BitRS, true}, // top rung
		{low, Level1BitRS, false}, // already at the top: never steps again
	}
	for i, s := range steps {
		probe := c.AdvanceFrom(s.buf)
		if probe.Next != s.wantNext || probe.Stepped != s.wantStep {
			t.Fatalf("epoch %d: next=%v stepped=%v, want next=%v stepped=%v",
				i+1, probe.Next, probe.Stepped, s.wantNext, s.wantStep)
		}
		if probe.Next < probe.Level {
			t.Fatalf("epoch %d: ladder descended %v -> %v", i+1, probe.Level, probe.Next)
		}
		if c.Level() != probe.Next {
			t.Fatalf("epoch %d: Level() = %v, probe.Next = %v", i+1, c.Level(), probe.Next)
		}
	}
}

func TestControllerProbeStatistics(t *testing.T) {
	t.Parallel()
	c := NewController(0, 0)
	buf := statsBuf(2, 0, 6)
	probe := c.AdvanceFrom(buf)
	if want := normEntropy(2, 0, 6); math.Abs(probe.Entropy-want) > 1e-12 {
		t.Errorf("Entropy = %v, want %v", probe.Entropy, want)
	}
	if probe.Rows != 8 || probe.Values != 8 {
		t.Errorf("Rows/Values = %v/%v, want 8/8", probe.Rows, probe.Values)
	}
	// Unit norms: mean 1, variance 0.
	if probe.MeanNorm != 1 || probe.NormVar != 0 {
		t.Errorf("MeanNorm/NormVar = %v/%v, want 1/0", probe.MeanNorm, probe.NormVar)
	}
	// An empty epoch must not panic or divide by zero.
	empty := c.AdvanceFrom(make([]float32, CtrlStatsLen))
	if empty.Entropy != 0 || empty.MeanNorm != 0 {
		t.Errorf("empty epoch probe = %+v, want zero statistics", empty)
	}
}

func TestControllerDefaults(t *testing.T) {
	t.Parallel()
	c := NewController(0, 0)
	// With DefaultHold=2 and DefaultWarmup=2, a permanently qualifying
	// signal first steps at epoch 4: two warmup epochs, then two held.
	low := statsBuf(1, 1, 1)
	for epoch := 1; epoch <= 4; epoch++ {
		probe := c.AdvanceFrom(low)
		if want := epoch == 4; probe.Stepped != want {
			t.Fatalf("epoch %d: stepped=%v, want %v", epoch, probe.Stepped, want)
		}
	}
}

// Observe's accumulators must agree with a by-hand pass: row 2-norms and the
// strided bucket histogram, surfaced via StatsInto.
func TestObserveStatsInto(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(8)
	rng := xrand.New(21)
	fillGrad(g, 12, rng)

	c := NewController(0, 0)
	c.Observe(g)
	var got [CtrlStatsLen]float32
	c.StatsInto(got[:])

	var hist [EntropyBuckets]float64
	var rows, normSum, normSq float64
	g.ForEach(func(_ int32, row []float32) {
		var sq float64
		for _, v := range row {
			sq += float64(v) * float64(v)
		}
		n := math.Sqrt(sq)
		rows++
		normSum += n
		normSq += n * n
		for i := 0; i < len(row); i += ObserveStride {
			hist[Bucket(row[i])]++
		}
	})
	for i := range hist {
		if got[i] != float32(hist[i]) {
			t.Errorf("bucket %d: got %v, want %v", i, got[i], hist[i])
		}
	}
	if got[EntropyBuckets] != float32(rows) {
		t.Errorf("rows: got %v, want %v", got[EntropyBuckets], rows)
	}
	if math.Abs(float64(got[EntropyBuckets+1])-normSum) > 1e-3 {
		t.Errorf("normSum: got %v, want %v", got[EntropyBuckets+1], normSum)
	}
	if math.Abs(float64(got[EntropyBuckets+2])-normSq) > 1e-3 {
		t.Errorf("normSq: got %v, want %v", got[EntropyBuckets+2], normSq)
	}

	// AdvanceFrom resets the accumulators: a second StatsInto reads zeros.
	c.AdvanceFrom(got[:])
	c.StatsInto(got[:])
	for i, v := range got {
		if v != 0 {
			t.Fatalf("accumulator %d not reset: %v", i, v)
		}
	}
}

// The strided estimate converges to the exact stride-1 entropy on large
// i.i.d. gradients (the testkit property check bounds this statistically;
// here a fixed-seed sanity band).
func TestEntropyEstimatorVsExact(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(64)
	rng := xrand.New(31)
	fillGrad(g, 400, rng)

	c := NewController(0, 0)
	c.Observe(g)
	var buf [CtrlStatsLen]float32
	c.StatsInto(buf[:])
	strided := c.AdvanceFrom(buf[:]).Entropy
	exact := ExactEntropy(g)
	if math.Abs(strided-exact) > 0.02 {
		t.Errorf("strided entropy %v vs exact %v: off by %v", strided, exact, math.Abs(strided-exact))
	}
}

func TestObserveFlops(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(16)
	fillGrad(g, 10, xrand.New(1))
	want := float64(10*16)*2 + float64(10*16)/ObserveStride
	if got := ObserveFlops(g); got != want {
		t.Errorf("ObserveFlops = %v, want %v", got, want)
	}
}

func TestLevelAccessors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		l        Level
		name     string
		scheme   Scheme
		sparsify bool
		lossy    bool
	}{
		{LevelFP32, "fp32", NoQuant, false, false},
		{Level2Bit, "2bit", TwoBitTernary, false, true},
		{Level1Bit, "1bit", OneBitMax, false, true},
		{Level1BitRS, "1bit+rs", OneBitMax, true, true},
	}
	for _, c := range cases {
		if c.l.String() != c.name || c.l.Scheme() != c.scheme ||
			c.l.Sparsify() != c.sparsify || c.l.Lossy() != c.lossy {
			t.Errorf("%v: accessors = %q/%v/%v/%v", c.l, c.l.String(), c.l.Scheme(), c.l.Sparsify(), c.l.Lossy())
		}
	}
	if Level(99).String() != "unknown" {
		t.Error("out-of-range Level.String()")
	}
}

// The per-batch observe and per-epoch decide paths are //kgelint:hotpath and
// must be allocation-free after warm-up.
func TestControllerAllocFree(t *testing.T) {
	g := NewSparseGrad(32)
	rng := xrand.New(41)
	c := NewController(0, 0)
	var buf [CtrlStatsLen]float32
	step := func() {
		fillGrad(g, 64, rng)
		c.Observe(g)
		c.StatsInto(buf[:])
		c.AdvanceFrom(buf[:])
	}
	step()
	allocs := testing.AllocsPerRun(50, step)
	if allocs != 0 {
		t.Errorf("controller epoch cycle allocates %.1f allocs/op, want 0", allocs)
	}
}
