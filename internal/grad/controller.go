package grad

import "math"

// Adaptive compression controller (DESIGN.md §13): the dynamic generalization
// of the paper's static quantization flag. The controller watches per-epoch
// gradient statistics — mean row norm, row-norm variance, and a cheap entropy
// estimate over quantization buckets (the EDGC signal; PAPERS.md) — and walks
// a monotone compression ladder
//
//	fp32 → 2-bit ternary → 1-bit sign → 1-bit sign + RS row sparsification
//
// stepping one rung at the end of an epoch when the entropy says the gradient
// distribution has concentrated enough that a coarser code loses little. Error
// feedback (Residual) picks up what the coarser rungs drop, so late-training
// aggression does not stall convergence.
//
// Every rank feeds the controller its own local gradients; at the epoch
// boundary the raw accumulators are summed across ranks (a tiny dense
// all-reduce, see core's advanceCompression) and every rank evaluates the
// identical decision rule on the identical totals — the ladder trajectory is
// therefore globally agreed without a designated coordinator, and replicas
// can never disagree about the wire format of the next epoch's collectives.

// Level is a rung of the compression ladder, ordered from no compression to
// most aggressive. The ladder is strictly monotone: the controller only ever
// ascends (like the DRS switch of §4.1, the decision is permanent), which
// keeps the error-feedback residual invariant simple — residual rows only
// ever face an equal-or-coarser code than the one that produced them
// (DESIGN.md §13).
type Level int

// The ladder rungs, in ascent order (DESIGN.md §13).
const (
	// LevelFP32 transmits full-precision rows (exact compressed-domain
	// reduction; the residual stays empty).
	LevelFP32 Level = iota
	// Level2Bit uses TwoBitTernary (TernGrad with mean scale, §4.3).
	Level2Bit
	// Level1Bit uses OneBitMax, the paper's winning scheme (§4.3).
	Level1Bit
	// Level1BitRS adds Bernoulli row selection (§4.2) on top of OneBitMax;
	// dropped rows are banked whole into the residual (SelectEF).
	Level1BitRS
)

// maxLevel is the top of the ladder.
const maxLevel = Level1BitRS

// String returns the rung's name as recorded in EpochStats and the goldens.
func (l Level) String() string {
	switch l {
	case LevelFP32:
		return "fp32"
	case Level2Bit:
		return "2bit"
	case Level1Bit:
		return "1bit"
	case Level1BitRS:
		return "1bit+rs"
	}
	return "unknown"
}

// Scheme returns the quantization scheme the rung puts on the wire.
func (l Level) Scheme() Scheme {
	switch l {
	case LevelFP32:
		return NoQuant
	case Level2Bit:
		return TwoBitTernary
	default:
		return OneBitMax
	}
}

// Sparsify reports whether the rung row-sparsifies before quantizing.
func (l Level) Sparsify() bool { return l == Level1BitRS }

// Lossy reports whether the rung needs error feedback (everything above
// fp32).
func (l Level) Lossy() bool { return l > LevelFP32 }

// Entropy estimator parameters (DESIGN.md §13). The estimator histograms
// |v| into EntropyBuckets magnitude buckets of entropyExpPerBucket binary
// orders each, anchored at 2^entropyExpFloor: bucket 0 collects everything
// at or below 2^-24 (including exact zeros), the top bucket everything from
// 2^6 up. Normalized Shannon entropy over the bucket masses is the
// controller's concentration signal: as training converges, gradient
// magnitudes collapse into ever fewer buckets and the entropy falls.
const (
	// EntropyBuckets is B, the histogram size. Normalized entropy divides
	// by log2(B) so thresholds live in [0, 1] (DESIGN.md §13).
	EntropyBuckets = 16
	// entropyExpFloor is the biased float32 exponent of the bottom bucket
	// edge: 127-24, i.e. |v| = 2^-24 (DESIGN.md §13).
	entropyExpFloor = 103
	// entropyExpPerBucket is the binary orders of magnitude per bucket;
	// 2 per bucket x 16 buckets spans |v| in [2^-24, 2^6) (DESIGN.md §13).
	entropyExpPerBucket = 2
	// ObserveStride subsamples every 4th value of each row into the
	// histogram — the "cheap" in cheap entropy estimate. The property check
	// CheckEntropyEstimator (testkit) bounds the strided estimate against
	// the exact stride-1 histogram (DESIGN.md §13).
	ObserveStride = 4
)

// Decision rule constants (DESIGN.md §13). stepThreshold[k] is the
// normalized-entropy bar below which rung k-1 qualifies to step to k; the
// controller steps after the bar has held for hold consecutive epochs
// (hysteresis) and never before warmup epochs have completed. The thresholds
// were calibrated on the testkit golden dataset (see EXPERIMENTS.md,
// adaptive-compression sweep), whose early-training normalized entropy sits
// in the 0.45–0.48 band: the quantization bars sit a few hundredths apart
// inside it so those rungs ascend one per hold window while the signal stays
// low, and the ladder parks wherever entropy rises back above the next bar.
// The sparsification bar sits below the band: RS discards whole rows, so it
// is reserved for gradients whose magnitude spectrum has genuinely collapsed
// (near-converged training), not merely dipped.
var stepThreshold = [maxLevel + 1]float64{
	LevelFP32:   math.Inf(1), // base rung; never "stepped to"
	Level2Bit:   0.50,
	Level1Bit:   0.48,
	Level1BitRS: 0.44,
}

// Defaults for the controller's hysteresis when the Config leaves them zero
// (DESIGN.md §13).
const (
	// DefaultHold is the consecutive below-threshold epochs required per
	// step.
	DefaultHold = 2
	// DefaultWarmup is the initial epochs during which no step is taken,
	// letting the embedding escape its random initialization before the
	// entropy signal means anything.
	DefaultWarmup = 2
)

// CtrlStatsLen is the length of the packed per-epoch statistics vector
// exchanged between ranks: the B bucket counts, then row count, row-norm
// sum, and row-norm square sum (DESIGN.md §13 wire format).
const CtrlStatsLen = EntropyBuckets + 3

// Bucket returns the histogram bucket of one gradient value. It reads the
// float32 exponent directly (no log calls), so the per-value cost is a few
// integer ops; exported so the testkit property check can histogram exactly
// the way the controller does.
func Bucket(v float32) int {
	e := int(math.Float32bits(v)>>23) & 0xff // biased exponent, sign masked
	b := (e - entropyExpFloor) / entropyExpPerBucket
	if b < 0 {
		return 0
	}
	if b >= EntropyBuckets {
		return EntropyBuckets - 1
	}
	return b
}

// EpochProbe is one epoch's controller verdict: the globally agreed gradient
// statistics and the rung in effect. It feeds EpochStats and the
// adaptive-compression sweep in EXPERIMENTS.md.
type EpochProbe struct {
	// Level is the rung that was in effect during the observed epoch.
	Level Level
	// Next is the rung for the following epoch (equal to Level unless
	// Stepped).
	Next Level
	// Stepped reports that the ladder advanced one rung this epoch.
	Stepped bool
	// Entropy is the normalized bucket entropy in [0, 1].
	Entropy float64
	// MeanNorm and NormVar are the mean and variance of the observed
	// gradient row 2-norms (diagnostics; the decision uses Entropy only —
	// DESIGN.md §13).
	MeanNorm float64
	NormVar  float64
	// Rows and Values count the observed gradient rows and the sampled
	// values across all ranks.
	Rows   float64
	Values float64
}

// Controller accumulates gradient statistics batch by batch and walks the
// compression ladder at epoch boundaries. One per rank; not safe for
// concurrent use. The per-batch Observe path and the per-epoch decision path
// are allocation-free (hotpathalloc-proven).
type Controller struct {
	hold   int
	warmup int

	level Level
	run   int // consecutive qualifying epochs toward the next rung
	epoch int // completed (observed) epochs

	// Per-epoch local accumulators, reset by AdvanceFrom. float64 counts so
	// a long epoch cannot saturate; they are rounded into float32 for the
	// cross-rank sum (exact up to 2^24 samples per rank per epoch, far above
	// any batch regime here — DESIGN.md §13).
	hist    [EntropyBuckets]float64
	rows    float64
	normSum float64
	normSq  float64
}

// NewController returns a controller at the bottom rung. hold and warmup <= 0
// select DefaultHold and DefaultWarmup.
func NewController(hold, warmup int) *Controller {
	if hold <= 0 {
		hold = DefaultHold
	}
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	return &Controller{hold: hold, warmup: warmup}
}

// Level returns the rung currently in effect.
func (c *Controller) Level() Level { return c.level }

// Observe folds one batch's gradient into the epoch accumulators: every
// row's 2-norm, and every ObserveStride-th value's magnitude bucket. g is
// only read. Cost is one pass over the rows (the caller charges
// ObserveFlops to the virtual cluster).
//
//kgelint:hotpath
func (c *Controller) Observe(g *SparseGrad) {
	g.ForEach(func(_ int32, row []float32) {
		var sq float64
		for _, v := range row {
			sq += float64(v) * float64(v)
		}
		n := math.Sqrt(sq)
		c.rows++
		c.normSum += n
		c.normSq += n * n
		for i := 0; i < len(row); i += ObserveStride {
			c.hist[Bucket(row[i])]++
		}
	})
}

// ObserveFlops returns the virtual flops one Observe pass over g costs: two
// per value for the norm, plus the strided bucket lookups.
func ObserveFlops(g *SparseGrad) float64 {
	vals := float64(g.Len() * g.Width())
	return vals*2 + vals/ObserveStride
}

// StatsInto packs the local epoch accumulators into buf (length
// CtrlStatsLen) for the cross-rank sum. The accumulators are not reset;
// AdvanceFrom does that.
func (c *Controller) StatsInto(buf []float32) {
	if len(buf) != CtrlStatsLen {
		panic("grad: controller stats buffer length mismatch")
	}
	for i := range c.hist {
		buf[i] = float32(c.hist[i])
	}
	buf[EntropyBuckets] = float32(c.rows)
	buf[EntropyBuckets+1] = float32(c.normSum)
	buf[EntropyBuckets+2] = float32(c.normSq)
}

// AdvanceFrom evaluates the decision rule (DESIGN.md §13) on the globally
// summed statistics vector and resets the epoch accumulators. Every rank
// must pass the identical reduced buf; the verdict is then identical
// everywhere. The rule: after warmup epochs, when the normalized entropy is
// below stepThreshold[level+1] for hold consecutive epochs, ascend one rung;
// the ladder never descends.
//
//kgelint:hotpath
func (c *Controller) AdvanceFrom(buf []float32) EpochProbe {
	if len(buf) != CtrlStatsLen {
		panic("grad: controller stats buffer length mismatch")
	}
	var values float64
	for i := 0; i < EntropyBuckets; i++ {
		values += float64(buf[i])
	}
	h := 0.0
	if values > 0 {
		for i := 0; i < EntropyBuckets; i++ {
			if n := float64(buf[i]); n > 0 {
				p := n / values
				h -= p * math.Log2(p)
			}
		}
		h /= math.Log2(EntropyBuckets)
	}
	rows := float64(buf[EntropyBuckets])
	probe := EpochProbe{Level: c.level, Entropy: h, Rows: rows, Values: values}
	if rows > 0 {
		mean := float64(buf[EntropyBuckets+1]) / rows
		probe.MeanNorm = mean
		probe.NormVar = float64(buf[EntropyBuckets+2])/rows - mean*mean
		if probe.NormVar < 0 { // float32 round-off on the packed sums
			probe.NormVar = 0
		}
	}

	c.epoch++
	if c.epoch > c.warmup && c.level < maxLevel && h < stepThreshold[c.level+1] {
		c.run++
		if c.run >= c.hold {
			c.level++
			c.run = 0
			probe.Stepped = true
		}
	} else {
		c.run = 0
	}
	probe.Next = c.level

	c.hist = [EntropyBuckets]float64{}
	c.rows, c.normSum, c.normSq = 0, 0, 0
	return probe
}

// ExactEntropy computes the normalized bucket entropy of g over every value
// (stride 1) — the reference the strided Observe estimate is checked
// against by the testkit property suite. Not a hot path.
func ExactEntropy(g *SparseGrad) float64 {
	var hist [EntropyBuckets]float64
	var total float64
	g.ForEach(func(_ int32, row []float32) {
		for _, v := range row {
			hist[Bucket(v)]++
			total++
		}
	})
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, n := range hist {
		if n > 0 {
			p := n / total
			h -= p * math.Log2(p)
		}
	}
	return h / math.Log2(EntropyBuckets)
}
