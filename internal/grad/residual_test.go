package grad

import (
	"math"
	"testing"

	"kgedist/internal/xrand"
)

func TestResidualLifecycle(t *testing.T) {
	t.Parallel()
	r := NewResidual(4)
	if r.Len() != 0 {
		t.Fatal("fresh residual not empty")
	}
	g := NewSparseGrad(4)
	copy(g.Row(1), []float32{1, -2, 0.5, 3})
	e := Quantize(g, OneBitMax, nil)
	r.Update(g, e)
	if r.Len() != 1 {
		t.Fatalf("residual rows = %d", r.Len())
	}
	if r.NormSum() <= 0 {
		t.Fatal("quantization of a non-uniform row must leave error")
	}

	// Next step: residual folds into the fresh gradient, then clears.
	g2 := NewSparseGrad(4)
	copy(g2.Row(1), []float32{1, 1, 1, 1})
	r.AddInto(g2)
	if r.Len() != 0 {
		t.Fatal("residual not consumed")
	}
	row, _ := g2.Get(1)
	// g2 = fresh + (g - dequant(g)); dequant row = sign*3.
	dec := []float32{3, -3, 3, 3}
	orig := []float32{1, -2, 0.5, 3}
	for i := range row {
		want := 1 + orig[i] - dec[i]
		if math.Abs(float64(row[i]-want)) > 1e-6 {
			t.Fatalf("col %d: got %v want %v", i, row[i], want)
		}
	}
}

func TestResidualKeepsRowsNotInGradient(t *testing.T) {
	t.Parallel()
	r := NewResidual(2)
	g := NewSparseGrad(2)
	copy(g.Row(5), []float32{1, -1})
	e := Quantize(g, OneBitAvg, nil)
	r.Update(g, e)

	// A later step touching a different row must not consume row 5.
	g2 := NewSparseGrad(2)
	g2.Row(9)[0] = 1
	r.AddInto(g2)
	if r.Len() != 1 {
		t.Fatal("unrelated row consumed the residual")
	}
}

func TestResidualWidthMismatchPanics(t *testing.T) {
	t.Parallel()
	r := NewResidual(2)
	g := NewSparseGrad(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.AddInto(g)
}

func TestResidualReducesLongRunError(t *testing.T) {
	t.Parallel()
	// Error feedback should track a constant gradient better than plain
	// sign compression: the accumulated applied update approaches the true
	// sum. Simulate T steps of gradient [0.1, -1] with OneBitMax.
	const T = 200
	true0, true1 := 0.0, 0.0
	applied0, applied1 := 0.0, 0.0
	appliedNoFB0 := 0.0
	r := NewResidual(2)
	for i := 0; i < T; i++ {
		g := NewSparseGrad(2)
		copy(g.Row(0), []float32{0.1, -1})
		true0 += 0.1
		true1 += -1
		r.AddInto(g)
		e := Quantize(g, OneBitMax, nil)
		r.Update(g, e)
		dst := NewSparseGrad(2)
		Dequantize(e, dst)
		dec, _ := dst.Get(0)
		applied0 += float64(dec[0])
		applied1 += float64(dec[1])

		// Without feedback the small coordinate is always sent as +1.
		gn := NewSparseGrad(2)
		copy(gn.Row(0), []float32{0.1, -1})
		en := Quantize(gn, OneBitMax, nil)
		dn := NewSparseGrad(2)
		Dequantize(en, dn)
		decn, _ := dn.Get(0)
		appliedNoFB0 += float64(decn[0])
	}
	errFB := math.Abs(applied0 - true0)
	errNoFB := math.Abs(appliedNoFB0 - true0)
	if errFB >= errNoFB/4 {
		t.Fatalf("error feedback did not help: fb err %v, no-fb err %v", errFB, errNoFB)
	}
	if math.Abs(applied1-true1) > math.Abs(true1)*0.5 {
		t.Fatalf("dominant coordinate drifted: applied %v true %v", applied1, true1)
	}
}

func TestResidualStableUnderRandomGradients(t *testing.T) {
	t.Parallel()
	// With error feedback, the residual norm must stay bounded (it does not
	// blow up over many steps).
	rng := xrand.New(13)
	r := NewResidual(8)
	var last float64
	for i := 0; i < 300; i++ {
		g := NewSparseGrad(8)
		row := g.Row(0)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		r.AddInto(g)
		e := Quantize(g, OneBitMax, nil)
		r.Update(g, e)
		last = r.NormSum()
	}
	if last > 100 {
		t.Fatalf("residual norm diverged: %v", last)
	}
}
