package grad

import (
	"math"
	"testing"

	"kgedist/internal/xrand"
)

// mkGrad builds a gradient with rows of controlled norms: row i has norm
// norms[i] (id = i).
func mkGrad(width int, norms []float32) *SparseGrad {
	g := NewSparseGrad(width)
	for i, n := range norms {
		row := g.Row(int32(i))
		row[0] = n // norm equals |n|
	}
	return g
}

func TestSelectAllKeepsEverything(t *testing.T) {
	t.Parallel()
	g := mkGrad(4, []float32{1, 2, 3})
	st := Select(g, SelectAll, nil)
	if st.Kept != 3 || st.Dropped != 0 || g.Len() != 3 {
		t.Fatalf("stats %+v len %d", st, g.Len())
	}
	if st.Sparsity() != 0 {
		t.Fatalf("sparsity %v", st.Sparsity())
	}
}

func TestSelectAvgThreshold(t *testing.T) {
	t.Parallel()
	// Norms 1,2,3,6 -> mean 3; rows with norm >= 3 survive (ids 2,3).
	g := mkGrad(4, []float32{1, 2, 3, 6})
	st := Select(g, SelectAvgThreshold, nil)
	if st.Kept != 2 || st.Dropped != 2 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := g.Get(0); ok {
		t.Fatal("row 0 should be dropped")
	}
	if _, ok := g.Get(3); !ok {
		t.Fatal("row 3 should survive")
	}
}

func TestSelectAvgTenthThreshold(t *testing.T) {
	t.Parallel()
	// Mean 3; 0.1x mean = 0.3; only the 0.1-norm row drops.
	g := mkGrad(4, []float32{0.1, 2.9, 3, 6})
	st := Select(g, SelectAvgTenthThreshold, nil)
	if st.Dropped != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := g.Get(0); ok {
		t.Fatal("row 0 should be dropped")
	}
}

func TestSelectBernoulliKeepsLargeRowsAlways(t *testing.T) {
	t.Parallel()
	// Rows with norm >= mean have keep probability 1.
	rng := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		g := mkGrad(4, []float32{1, 2, 3, 6})
		Select(g, SelectBernoulli, rng)
		if _, ok := g.Get(3); !ok {
			t.Fatal("row with norm 2x mean was dropped")
		}
	}
}

func TestSelectBernoulliEmpiricalRate(t *testing.T) {
	t.Parallel()
	// A row with norm = mean/2 must survive about half the time.
	rng := xrand.New(2)
	kept := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		// Norms 1 and 3: mean 2; row 0 keep prob 0.5, row 1 prob 1.
		g := mkGrad(2, []float32{1, 3})
		Select(g, SelectBernoulli, rng)
		if _, ok := g.Get(0); ok {
			kept++
		}
	}
	rate := float64(kept) / trials
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("empirical keep rate %v, want ~0.5", rate)
	}
}

func TestSelectZeroGradientKeepsAll(t *testing.T) {
	t.Parallel()
	g := mkGrad(4, []float32{0, 0})
	st := Select(g, SelectBernoulli, xrand.New(1))
	if st.Dropped != 0 {
		t.Fatalf("zero gradient rows dropped: %+v", st)
	}
}

func TestSelectEmptyGradient(t *testing.T) {
	t.Parallel()
	g := NewSparseGrad(4)
	st := Select(g, SelectBernoulli, xrand.New(1))
	if st.Before != 0 || st.Kept != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSelectModeString(t *testing.T) {
	t.Parallel()
	cases := map[SelectMode]string{
		SelectAll:               "none",
		SelectAvgThreshold:      "average",
		SelectAvgTenthThreshold: "averagex0.1",
		SelectBernoulli:         "random-selection",
		SelectMode(99):          "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestSelectSparsityOrdering(t *testing.T) {
	t.Parallel()
	// Figure 3b of the paper: averaging threshold is the most aggressive,
	// averagex0.1 the least, Bernoulli in between, on a heavy-tailed norm
	// distribution.
	rng := xrand.New(7)
	norms := make([]float32, 500)
	for i := range norms {
		norms[i] = float32(math.Exp(rng.NormFloat64())) // lognormal tail
	}
	run := func(mode SelectMode) float64 {
		g := mkGrad(4, norms)
		return Select(g, mode, xrand.New(9)).Sparsity()
	}
	avg := run(SelectAvgThreshold)
	tenth := run(SelectAvgTenthThreshold)
	bern := run(SelectBernoulli)
	if !(avg > bern && bern > tenth) {
		t.Fatalf("sparsity ordering violated: avg %v bern %v tenth %v", avg, bern, tenth)
	}
	if bern < 0.1 {
		t.Fatalf("Bernoulli selection produced almost no sparsity: %v", bern)
	}
}

func TestSelectTopQuarter(t *testing.T) {
	t.Parallel()
	// 8 rows with norms 1..8: the top quarter (norms 7, 8) survives; the
	// quantile boundary row itself is kept.
	norms := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	g := mkGrad(4, norms)
	st := Select(g, SelectTopQuarter, nil)
	if st.Kept < 2 || st.Kept > 3 {
		t.Fatalf("top-quarter kept %d of 8", st.Kept)
	}
	if _, ok := g.Get(7); !ok {
		t.Fatal("largest row dropped")
	}
	if _, ok := g.Get(0); ok {
		t.Fatal("smallest row kept")
	}
}

func TestSelectUnbiasedExpectation(t *testing.T) {
	t.Parallel()
	// E[selected row] must equal the original row: keep prob p = n/C and
	// kept rows scaled 1/p. Row 0 has norm 1, row 1 norm 3 => C = 2,
	// p0 = 0.5 with scale 2.
	rng := xrand.New(31)
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		g := mkGrad(2, []float32{1, 3})
		Select(g, SelectUnbiased, rng)
		if row, ok := g.Get(0); ok {
			sum += float64(row[0])
		}
	}
	mean := sum / trials
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("unbiased selection E[row0] = %v, want 1.0", mean)
	}
}

func TestSelectUnbiasedLargeRowsUnscaled(t *testing.T) {
	t.Parallel()
	// Rows with norm >= C have p = 1 and must keep their exact values.
	g := mkGrad(2, []float32{1, 3})
	Select(g, SelectUnbiased, xrand.New(7))
	row, ok := g.Get(1)
	if !ok {
		t.Fatal("above-mean row dropped")
	}
	if row[0] != 3 {
		t.Fatalf("above-mean row rescaled: %v", row[0])
	}
}

func TestNewModeStrings(t *testing.T) {
	t.Parallel()
	if SelectTopQuarter.String() != "top-25%" || SelectUnbiased.String() != "unbiased-selection" {
		t.Fatal("new mode strings wrong")
	}
}

// SelectEF must drop exactly the rows Select drops for the same seed (the
// rng consumption is identical) and bank each dropped row whole into the
// residual, so a later AddInto reinjects it (DESIGN.md §13).
func TestSelectEFBanksDroppedRows(t *testing.T) {
	t.Parallel()
	build := func() *SparseGrad {
		g := NewSparseGrad(4)
		for i := int32(0); i < 40; i++ {
			row := g.Row(i)
			row[0] = float32(i%7) * 0.3 // mixed norms: some rows drop
		}
		return g
	}
	plain := build()
	Select(plain, SelectBernoulli, xrand.New(55))

	g := build()
	want := map[int32][]float32{}
	build().ForEach(func(id int32, row []float32) {
		want[id] = append([]float32(nil), row...)
	})
	res := NewResidual(4)
	st := SelectEF(g, SelectBernoulli, xrand.New(55), res)
	if st.Dropped == 0 {
		t.Fatal("test needs at least one dropped row")
	}
	// Same survivors as plain Select under the same seed.
	if g.Len() != plain.Len() {
		t.Fatalf("SelectEF kept %d rows, Select kept %d", g.Len(), plain.Len())
	}
	g.ForEach(func(id int32, _ []float32) {
		if _, ok := plain.Get(id); !ok {
			t.Fatalf("SelectEF kept row %d that Select dropped", id)
		}
	})
	if res.Len() != st.Dropped {
		t.Fatalf("residual holds %d rows, want %d dropped", res.Len(), st.Dropped)
	}
	// Reinjection: an empty gradient plus the residual equals the dropped rows.
	back := NewSparseGrad(4)
	plain.ForEach(func(id int32, _ []float32) { delete(want, id) })
	for id := range want {
		back.Row(id) // materialize zero rows so AddInto finds them
	}
	res.AddInto(back)
	for id, row := range want {
		got, ok := back.Get(id)
		if !ok {
			t.Fatalf("dropped row %d not reinjected", id)
		}
		for i := range row {
			if got[i] != row[i] {
				t.Fatalf("row %d col %d: reinjected %v, want %v", id, i, got[i], row[i])
			}
		}
	}
}

// SetRow replaces any prior residual for the id and copies the row.
func TestResidualSetRow(t *testing.T) {
	t.Parallel()
	r := NewResidual(3)
	src := []float32{1, 2, 3}
	r.SetRow(7, src)
	src[0] = 99 // the residual must hold a copy, not an alias
	r.SetRow(7, []float32{4, 5, 6})
	if r.Len() != 1 {
		t.Fatalf("residual holds %d rows, want 1 (replace semantics)", r.Len())
	}
	g := NewSparseGrad(3)
	g.Row(7)
	r.AddInto(g)
	got, _ := g.Get(7)
	for i, want := range []float32{4, 5, 6} {
		if got[i] != want {
			t.Fatalf("col %d: %v, want %v", i, got[i], want)
		}
	}
}
