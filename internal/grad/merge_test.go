package grad

import (
	"testing"

	"kgedist/internal/xrand"
)

// gradWithIDs materializes one normal-random row per id.
func gradWithIDs(width int, rng *xrand.RNG, ids ...int32) *SparseGrad {
	g := NewSparseGrad(width)
	for _, id := range ids {
		row := g.Row(id)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	return g
}

// decodeAll dequantizes e into a fresh dense map for comparison.
func decodeAll(e *Encoded) *SparseGrad {
	dst := NewSparseGrad(e.Width)
	Dequantize(e, dst)
	return dst
}

// Rows unique to one input must pass through verbatim: same index, scale and
// packed payload bytes, in ascending id order.
func TestMergeDisjointPassThrough(t *testing.T) {
	t.Parallel()
	for _, s := range []Scheme{NoQuant, OneBitMax, TwoBitTernary} {
		rng := xrand.New(5)
		a := Quantize(gradWithIDs(8, rng, 0, 4, 10), s, rng)
		b := Quantize(gradWithIDs(8, rng, 2, 6, 12), s, rng)
		var m Merger
		out := m.MergeInto(a, b, nil)
		wantIDs := []int32{0, 2, 4, 6, 10, 12}
		if len(out.Indices) != len(wantIDs) {
			t.Fatalf("%v: %d merged rows, want %d", s, len(out.Indices), len(wantIDs))
		}
		per := payloadBytesPerRow(s, 8)
		for i, id := range out.Indices {
			if id != wantIDs[i] {
				t.Fatalf("%v: merged id[%d] = %d, want %d", s, i, id, wantIDs[i])
			}
			src, r := a, 0
			if id == 2 || id == 6 || id == 12 {
				src = b
			}
			for r = range src.Indices {
				if src.Indices[r] == id {
					break
				}
			}
			if out.Scales[i] != src.Scales[r] {
				t.Fatalf("%v: row %d scale changed in pass-through", s, id)
			}
			got := out.Bits[i*per : (i+1)*per]
			want := src.Bits[r*per : (r+1)*per]
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%v: row %d payload byte %d changed in pass-through", s, id, k)
				}
			}
		}
	}
}

// Under NoQuant the overlap fallback is exact: decode(merge(a,b)) equals
// decode(a) + decode(b) bit for bit.
func TestMergeNoQuantOverlapExact(t *testing.T) {
	t.Parallel()
	rng := xrand.New(7)
	ga := gradWithIDs(12, rng, 1, 3, 5, 9)
	gb := gradWithIDs(12, rng, 3, 5, 7)
	a := Quantize(ga, NoQuant, nil)
	b := Quantize(gb, NoQuant, nil)
	var m Merger
	got := decodeAll(m.MergeInto(a, b, nil))

	want := NewSparseGrad(12)
	add := func(g *SparseGrad) {
		g.ForEach(func(id int32, row []float32) {
			dst := want.Row(id)
			for i, v := range row {
				dst[i] += v
			}
		})
	}
	add(ga)
	add(gb)
	want.ForEach(func(id int32, row []float32) {
		dec, ok := got.Get(id)
		if !ok {
			t.Fatalf("row %d missing from merge", id)
		}
		for i := range row {
			if row[i] != dec[i] {
				t.Fatalf("row %d col %d: merge %v != sum %v", id, i, dec[i], row[i])
			}
		}
	})
}

// Under a lossy scheme the overlap fallback must equal re-quantizing the
// float sum of the decoded rows — the documented decode-reduce semantics.
func TestMergeLossyOverlapRequantizes(t *testing.T) {
	t.Parallel()
	rng := xrand.New(9)
	ga := gradWithIDs(16, rng, 4)
	gb := gradWithIDs(16, rng, 4)
	a := Quantize(ga, OneBitMax, nil)
	b := Quantize(gb, OneBitMax, nil)
	var m Merger
	out := m.MergeInto(a, b, nil)
	if len(out.Indices) != 1 || out.Indices[0] != 4 {
		t.Fatalf("merged ids = %v, want [4]", out.Indices)
	}

	// Reference: decode both, sum, quantize the sum.
	sum := NewSparseGrad(16)
	row := sum.Row(4)
	da, db := decodeAll(a), decodeAll(b)
	ra, _ := da.Get(4)
	rb, _ := db.Get(4)
	for i := range row {
		row[i] = ra[i] + rb[i]
	}
	want := Quantize(sum, OneBitMax, nil)
	if out.Scales[0] != want.Scales[0] {
		t.Fatalf("merged scale %v, want %v", out.Scales[0], want.Scales[0])
	}
	for i := range want.Bits {
		if out.Bits[i] != want.Bits[i] {
			t.Fatalf("merged payload byte %d differs from re-quantized sum", i)
		}
	}
}

// TwoBitTernary re-encoding consumes the rng; the merge must be replayable —
// same inputs and seed, same output — since the chan and TCP fabrics replay
// the identical hop sequence.
func TestMergeDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *Encoded {
		rng := xrand.New(13)
		a := Quantize(gradWithIDs(8, rng, 0, 2, 4), TwoBitTernary, rng)
		b := Quantize(gradWithIDs(8, rng, 2, 4, 6), TwoBitTernary, rng)
		var m Merger
		out := m.MergeInto(a, b, xrand.New(99))
		cp := &Encoded{}
		if err := UnmarshalInto(cp, out.Marshal()); err != nil {
			t.Fatal(err)
		}
		return cp
	}
	x, y := run(), run()
	if string(x.Marshal()) != string(y.Marshal()) {
		t.Fatal("merge not deterministic for a fixed seed")
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	t.Parallel()
	rng := xrand.New(1)
	a := Quantize(gradWithIDs(8, rng, 0), OneBitMax, nil)
	b := Quantize(gradWithIDs(8, rng, 1), NoQuant, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("scheme mismatch did not panic")
		}
	}()
	var m Merger
	m.MergeInto(a, b, nil)
}

// RowRange + Range + AppendRangeTo slice a frame into chunk sub-frames that
// round-trip through the wire format — the ring's staging path.
func TestEncodedRangeRoundTrip(t *testing.T) {
	t.Parallel()
	for _, s := range []Scheme{NoQuant, OneBitMax, TwoBitTernary} {
		rng := xrand.New(17)
		e := Quantize(gradWithIDs(8, rng, 1, 3, 5, 7, 11, 13), s, rng)

		// Id window [3, 12) covers rows 3,5,7,11.
		i0, i1 := e.RowRange(3, 12)
		if i1-i0 != 4 || e.Indices[i0] != 3 || e.Indices[i1-1] != 11 {
			t.Fatalf("%v: RowRange(3,12) = [%d,%d)", s, i0, i1)
		}
		// Empty windows: before the first row, after the last, between rows.
		if lo, hi := e.RowRange(0, 1); lo != hi {
			t.Fatalf("%v: RowRange(0,1) not empty", s)
		}
		if lo, hi := e.RowRange(14, 100); lo != hi {
			t.Fatalf("%v: RowRange(14,100) not empty", s)
		}
		if lo, hi := e.RowRange(4, 5); lo != hi {
			t.Fatalf("%v: RowRange(4,5) not empty", s)
		}

		var view Encoded
		e.Range(i0, i1, &view)
		wire := e.AppendRangeTo(nil, i0, i1)
		var back Encoded
		if err := UnmarshalInto(&back, wire); err != nil {
			t.Fatalf("%v: AppendRangeTo frame does not unmarshal: %v", s, err)
		}
		if string(back.Marshal()) != string(view.Marshal()) {
			t.Fatalf("%v: staged wire frame differs from the Range view", s)
		}
	}
}

// The merge loop is //kgelint:hotpath and must be allocation-free once the
// Merger's scratch is warm.
func TestMergeAllocFree(t *testing.T) {
	rng := xrand.New(23)
	a := Quantize(gradWithIDs(16, rng, 0, 2, 4, 6, 8), OneBitMax, nil)
	b := Quantize(gradWithIDs(16, rng, 1, 2, 5, 6, 9), OneBitMax, nil)
	var m Merger
	m.MergeInto(a, b, nil) // warm the output frame and sum scratch
	allocs := testing.AllocsPerRun(50, func() {
		m.MergeInto(a, b, nil)
	})
	if allocs != 0 {
		t.Errorf("MergeInto allocates %.1f allocs/op, want 0", allocs)
	}
}
