package grad

import (
	"sort"

	"kgedist/internal/xrand"
)

// SelectMode chooses how the random-selection strategy (§4.2) filters
// gradient rows before communication.
type SelectMode int

// Selection modes compared in Figure 3 of the paper.
const (
	// SelectAll disables selection (the dense baseline).
	SelectAll SelectMode = iota
	// SelectAvgThreshold drops rows whose 2-norm is below the mean norm.
	SelectAvgThreshold
	// SelectAvgTenthThreshold drops rows whose 2-norm is below 0.1x the
	// mean norm (the paper's "averagex0.1").
	SelectAvgTenthThreshold
	// SelectBernoulli keeps row i with probability min(1, ||g_i||/C),
	// C = mean 2-norm — the paper's chosen method ("random selection").
	SelectBernoulli
	// SelectTopQuarter keeps the top 25% of rows by 2-norm — the
	// threshold-sparsification baseline of Aji & Heafield (2017) discussed
	// in the paper's related work (§2).
	SelectTopQuarter
	// SelectUnbiased keeps rows like SelectBernoulli but rescales each
	// kept row by 1/p so the sparse gradient is an unbiased estimator of
	// the dense one — the Wangni et al. (2017) variance-controlled scheme
	// from the related work.
	SelectUnbiased
)

// String returns the paper's name for the mode.
func (m SelectMode) String() string {
	switch m {
	case SelectAll:
		return "none"
	case SelectAvgThreshold:
		return "average"
	case SelectAvgTenthThreshold:
		return "averagex0.1"
	case SelectBernoulli:
		return "random-selection"
	case SelectTopQuarter:
		return "top-25%"
	case SelectUnbiased:
		return "unbiased-selection"
	}
	return "unknown"
}

// SelectStats reports the effect of one selection pass.
type SelectStats struct {
	Before  int // rows before selection
	Kept    int // rows surviving
	Dropped int // rows removed
}

// Sparsity returns the dropped fraction in [0,1].
func (s SelectStats) Sparsity() float64 {
	if s.Before == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.Before)
}

// Select filters g in place per the mode and returns statistics. Dropped
// rows are discarded entirely: they are neither communicated nor applied,
// exactly as in the paper (no residual is kept unless the caller layers a
// Residual on top).
func Select(g *SparseGrad, mode SelectMode, rng *xrand.RNG) SelectStats {
	return selectRows(g, mode, rng, nil)
}

// SelectEF filters like Select but banks every dropped row whole into res
// before removing it — the error-feedback variant the compression ladder's
// RS rung uses (DESIGN.md §13), so sparsified-away signal re-enters a later
// step via Residual.AddInto instead of being lost. The rng is consumed
// exactly as by Select: for a fixed seed the two keep the same rows.
func SelectEF(g *SparseGrad, mode SelectMode, rng *xrand.RNG, res *Residual) SelectStats {
	return selectRows(g, mode, rng, res)
}

func selectRows(g *SparseGrad, mode SelectMode, rng *xrand.RNG, res *Residual) SelectStats {
	st := SelectStats{Before: g.Len()}
	if mode == SelectAll || g.Len() == 0 {
		st.Kept = st.Before
		return st
	}
	mean, norms := g.NormStats()
	if mean == 0 {
		// All-zero gradient: nothing carries signal; keep everything to
		// stay faithful to "threshold relative to average".
		st.Kept = st.Before
		return st
	}
	var thresh float32
	if mode == SelectTopQuarter {
		thresh = quantileNorm(norms, 0.75)
	}
	// In-package exception to the Indices aliasing rule: Drop only
	// invalidates the cached-index flag, never the backing array, so
	// dropping while ranging over the snapshot is safe here.
	for _, id := range g.Indices() {
		n := norms[id]
		keep := false
		scale := float32(1)
		switch mode {
		case SelectAvgThreshold:
			keep = n >= mean
		case SelectAvgTenthThreshold:
			keep = n >= 0.1*mean
		case SelectBernoulli:
			keep = rng.Bernoulli(float64(n) / float64(mean))
		case SelectTopQuarter:
			keep = n >= thresh
		case SelectUnbiased:
			p := float64(n) / float64(mean)
			keep = rng.Bernoulli(p)
			if keep && p < 1 {
				scale = float32(1 / p)
			}
		default:
			panic("grad: unknown select mode")
		}
		if keep {
			st.Kept++
			if scale != 1 { //kgelint:ignore floateq scale is exactly 1 unless a mode set it
				row, _ := g.Get(id)
				for i := range row {
					row[i] *= scale
				}
			}
		} else {
			if res != nil {
				row, _ := g.Get(id)
				res.SetRow(id, row)
			}
			g.Drop(id)
			st.Dropped++
		}
	}
	return st
}

// quantileNorm returns the q-quantile of the norm values.
func quantileNorm(norms map[int32]float32, q float64) float32 {
	vals := make([]float64, 0, len(norms))
	for _, n := range norms {
		vals = append(vals, float64(n))
	}
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	return float32(vals[idx])
}
