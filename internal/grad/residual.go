package grad

import "kgedist/internal/tensor"

// Residual implements error-feedback accumulation for compressed gradients
// (Karimireddy et al. 2019; discussed in the paper's related work, §2): the
// quantization error of each step is stored and added back into the next
// step's gradient, which provably fixes the bias of sign-based compression.
//
// This is an optional extension: the paper's main pipeline communicates the
// quantized gradient without feedback. The ablation benches compare both.
//
// A Residual recycles its row storage and decode scratch internally, so the
// per-step AddInto/Update cycle is allocation-free once the row working set
// is warm. Not safe for concurrent use; each worker owns its own.
type Residual struct {
	width   int
	rows    map[int32][]float32
	free    [][]float32 // recycled residual rows: AddInto pushes, Update pops
	decoded *SparseGrad // Update's dequantize scratch, reused across steps
}

// NewResidual returns an empty residual store for rows of the given width.
func NewResidual(width int) *Residual {
	if width <= 0 {
		panic("grad: non-positive residual width")
	}
	return &Residual{width: width, rows: make(map[int32][]float32)}
}

// Len returns the number of rows currently holding residual error.
func (r *Residual) Len() int { return len(r.rows) }

// AddInto adds the stored residual into every matching row of g, consuming
// it. Rows with residual but no gradient this step keep their residual for
// a later step (they are not communicated now anyway). g's rows are
// mutated in place.
func (r *Residual) AddInto(g *SparseGrad) {
	if g.Width() != r.width {
		panic("grad: residual width mismatch")
	}
	g.ForEach(func(id int32, row []float32) {
		if res, ok := r.rows[id]; ok {
			tensor.Add(res, row)
			delete(r.rows, id)
			r.free = append(r.free, res)
		}
	})
}

// Update records the quantization error for the rows of g: for each row
// present in g, the stored residual becomes g_row - decoded_row, where
// decoded is the dequantized representation the other ranks will apply.
// g and e are only read.
func (r *Residual) Update(g *SparseGrad, e *Encoded) {
	if g.Width() != r.width {
		panic("grad: residual width mismatch")
	}
	if r.decoded == nil {
		r.decoded = NewSparseGrad(r.width)
	} else {
		r.decoded.Clear()
	}
	Dequantize(e, r.decoded)
	g.ForEach(func(id int32, row []float32) {
		dec, ok := r.decoded.Get(id)
		if !ok {
			return
		}
		res, ok := r.rows[id]
		if !ok {
			if n := len(r.free); n > 0 {
				res = r.free[n-1]
				r.free[n-1] = nil
				r.free = r.free[:n-1]
			} else {
				res = make([]float32, r.width)
			}
			r.rows[id] = res
		}
		for i := range res {
			res[i] = row[i] - dec[i]
		}
	})
}

// SetRow stores a copy of row as the residual for id, replacing any prior
// content. This is the whole-row bank of the RS rung of the compression
// ladder (DESIGN.md §13): SelectEF calls it for every row selection drops,
// so the row's full signal re-enters a later step instead of vanishing. In
// the error-feedback cycle the prior residual for a dropped row was already
// consumed by AddInto (dropped rows are a subset of the step's gradient
// rows), so replacement never discards unconsumed error.
func (r *Residual) SetRow(id int32, row []float32) {
	if len(row) != r.width {
		panic("grad: residual width mismatch")
	}
	res, ok := r.rows[id]
	if !ok {
		if n := len(r.free); n > 0 {
			res = r.free[n-1]
			r.free[n-1] = nil
			r.free = r.free[:n-1]
		} else {
			res = make([]float32, r.width)
		}
		r.rows[id] = res
	}
	copy(res, row)
}

// NormSum returns the sum of 2-norms of the stored residual rows — a
// diagnostic of accumulated compression error.
func (r *Residual) NormSum() float64 {
	var s float64
	for _, row := range r.rows {
		s += float64(tensor.Nrm2(row))
	}
	return s
}
