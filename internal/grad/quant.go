package grad

import (
	"encoding/binary"
	"fmt"
	"math"

	"kgedist/internal/xrand"
)

// Scheme identifies a gradient quantization scheme (§4.3).
type Scheme uint8

// The quantization schemes compared in the paper. OneBitMax (sign of the
// value times the maximum absolute value of the row) is the paper's winner
// and the one used by the combined strategies.
const (
	// NoQuant transmits full-precision float32 values.
	NoQuant Scheme = iota
	// OneBitMax: q_i = sign(v_i) * max(|v|).
	OneBitMax
	// OneBitAvg: q_i = sign(v_i) * mean(|v|).
	OneBitAvg
	// OneBitPosMax: scale from the positive values only: max(v_i > 0).
	OneBitPosMax
	// OneBitNegMax: scale from the negative values only: max(|v_i < 0|).
	OneBitNegMax
	// OneBitPosAvg: scale = mean of the positive values.
	OneBitPosAvg
	// OneBitNegAvg: scale = mean of |negative values|.
	OneBitNegAvg
	// TwoBitTernary: TernGrad-style ternary quantization with the paper's
	// modification of using mean(|v|) instead of max(|v|):
	// q_i = sign(v_i) * mean(|v|) * B_i, P(B_i=1) = min(1, |v_i|/mean(|v|)).
	TwoBitTernary
)

// String returns the scheme's name as used in the paper's plots.
func (s Scheme) String() string {
	switch s {
	case NoQuant:
		return "none"
	case OneBitMax:
		return "1bit-max"
	case OneBitAvg:
		return "1bit-avg"
	case OneBitPosMax:
		return "1bit-posmax"
	case OneBitNegMax:
		return "1bit-negmax"
	case OneBitPosAvg:
		return "1bit-posavg"
	case OneBitNegAvg:
		return "1bit-negavg"
	case TwoBitTernary:
		return "2bit-ternary"
	}
	return "unknown"
}

// BitsPerValue returns the payload bits each gradient value occupies on the
// wire (excluding the per-row scale).
func (s Scheme) BitsPerValue() int {
	switch s {
	case NoQuant:
		return 32
	case TwoBitTernary:
		return 2
	default:
		return 1
	}
}

// scale computes the per-row quantization scale for the 1-bit family.
// Sign-restricted statistics fall back to max(|v|) when the row has no
// values of the required sign.
func scale(s Scheme, row []float32) float32 {
	var posMax, posSum, negMax, negSum float32
	var posN, negN int
	var absMax float32
	var absSum float64
	for _, v := range row {
		a := v
		if a < 0 {
			a = -a
		}
		if a > absMax {
			absMax = a
		}
		absSum += float64(a)
		if v > 0 {
			posN++
			posSum += v
			if v > posMax {
				posMax = v
			}
		} else if v < 0 {
			negN++
			negSum += -v
			if -v > negMax {
				negMax = -v
			}
		}
	}
	switch s {
	case OneBitMax:
		return absMax
	case OneBitAvg:
		if len(row) == 0 {
			return 0
		}
		return float32(absSum / float64(len(row)))
	case OneBitPosMax:
		if posN == 0 {
			return absMax
		}
		return posMax
	case OneBitNegMax:
		if negN == 0 {
			return absMax
		}
		return negMax
	case OneBitPosAvg:
		if posN == 0 {
			return absMax
		}
		return posSum / float32(posN)
	case OneBitNegAvg:
		if negN == 0 {
			return absMax
		}
		return negSum / float32(negN)
	}
	panic("grad: scale called for non-1-bit scheme " + s.String())
}

// Encoded is a quantized sparse gradient ready for the wire: row indices,
// one scale per row, and the packed sign/ternary payload.
//
// An Encoded owns its three slices. QuantizeInto and UnmarshalInto reuse
// them across calls, so one Encoded per worker makes the encode and decode
// sides of every exchange allocation-free after warm-up; the contents are
// valid until the next *Into call on the same value. Not safe for
// concurrent use.
type Encoded struct {
	Scheme  Scheme
	Width   int       // floats per row
	Indices []int32   // ascending row ids, one per encoded row
	Scales  []float32 // per-row scale (unused by NoQuant)
	Bits    []byte    // packed payload, payloadBytesPerRow bytes per row
}

// payloadBytesPerRow returns the packed payload size of one row in bytes.
func payloadBytesPerRow(s Scheme, width int) int {
	switch s {
	case NoQuant:
		return 4 * width
	case TwoBitTernary:
		return (2*width + 7) / 8
	default:
		return (width + 7) / 8
	}
}

// WireBytes returns the total on-wire size of the encoding in bytes,
// including indices and scales.
func (e *Encoded) WireBytes() int {
	per := payloadBytesPerRow(e.Scheme, e.Width)
	scales := 4 * len(e.Scales)
	if e.Scheme == NoQuant {
		scales = 0
	}
	return 4*len(e.Indices) + scales + per*len(e.Indices)
}

// Quantize encodes the sparse gradient under the scheme into a freshly
// allocated Encoded. The rng is used only by TwoBitTernary's stochastic
// zeroing; it may be nil for the other schemes. The input gradient is not
// modified or retained. Hot paths should hold one Encoded and call
// QuantizeInto instead.
func Quantize(g *SparseGrad, s Scheme, rng *xrand.RNG) *Encoded {
	e := new(Encoded)
	QuantizeInto(e, g, s, rng)
	return e
}

// QuantizeInto encodes g under scheme s into e, reusing e's Indices, Scales
// and Bits storage (growing it only when a larger batch arrives). Any
// slices previously obtained from e are invalidated. g is only read; the
// rng is consumed exactly as by Quantize, so for a fixed seed the two
// produce bit-identical encodings.
//
//kgelint:hotpath
func QuantizeInto(e *Encoded, g *SparseGrad, s Scheme, rng *xrand.RNG) {
	idx := g.Indices()
	w := g.Width()
	n := len(idx)
	per := payloadBytesPerRow(s, w)

	e.Scheme = s
	e.Width = w
	e.Indices = append(e.Indices[:0], idx...)
	if cap(e.Scales) < n {
		e.Scales = make([]float32, 0, n)
	}
	e.Scales = e.Scales[:0]
	if cap(e.Bits) < n*per {
		e.Bits = make([]byte, n*per)
	}
	e.Bits = e.Bits[:n*per]

	for r, id := range e.Indices {
		row, _ := g.Get(id)
		buf := e.Bits[r*per : (r+1)*per]
		e.Scales = append(e.Scales, encodeRow(s, row, buf, rng))
	}
}

// encodeRow packs one row under scheme s into buf (which must be exactly
// payloadBytesPerRow long) and returns the per-row scale. The rng is consumed
// only by TwoBitTernary, in value order — QuantizeInto and the compressed-hop
// merge (Merger) share this helper so a re-encoded row is bit-compatible with
// a first-encoded one.
//
//kgelint:hotpath
func encodeRow(s Scheme, row []float32, buf []byte, rng *xrand.RNG) float32 {
	switch s {
	case NoQuant:
		for i, v := range row {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		return 0
	case TwoBitTernary:
		for i := range buf {
			buf[i] = 0
		}
		mean := scale(OneBitAvg, row)
		if mean > 0 {
			for i, v := range row {
				var code byte // 0 = zero, 1 = +scale, 2 = -scale
				a := v
				if a < 0 {
					a = -a
				}
				if rng.Bernoulli(float64(a) / float64(mean)) {
					if v > 0 {
						code = 1
					} else if v < 0 {
						code = 2
					}
				}
				buf[i/4] |= code << uint((i%4)*2)
			}
		}
		return mean
	default: // 1-bit family
		for i := range buf {
			buf[i] = 0
		}
		sc := scale(s, row)
		for i, v := range row {
			if v >= 0 {
				buf[i/8] |= 1 << uint(i%8)
			}
		}
		return sc
	}
}

// Dequantize reconstructs the gradient rows and accumulates them into dst
// (which must share the encoded width). e is only read; dst provides the
// storage, so a caller holding dst across batches decodes without
// allocating once dst's row working set is warm.
//
//kgelint:hotpath
func Dequantize(e *Encoded, dst *SparseGrad) {
	if dst.Width() != e.Width {
		panic("grad: Dequantize width mismatch")
	}
	for r := range e.Indices {
		decodeRowAccum(e, r, dst.Row(e.Indices[r]))
	}
}

// decodeRowAccum adds the r-th encoded row of e into row (length e.Width).
// Shared by Dequantize and the compressed-hop merge's overlap path.
//
//kgelint:hotpath
func decodeRowAccum(e *Encoded, r int, row []float32) {
	per := payloadBytesPerRow(e.Scheme, e.Width)
	buf := e.Bits[r*per : (r+1)*per]
	switch e.Scheme {
	case NoQuant:
		for i := 0; i < e.Width; i++ {
			row[i] += math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case TwoBitTernary:
		sc := e.Scales[r]
		for i := 0; i < e.Width; i++ {
			code := (buf[i/4] >> uint((i%4)*2)) & 3
			switch code {
			case 1:
				row[i] += sc
			case 2:
				row[i] -= sc
			}
		}
	default:
		sc := e.Scales[r]
		for i := 0; i < e.Width; i++ {
			if buf[i/8]&(1<<uint(i%8)) != 0 {
				row[i] += sc
			} else {
				row[i] -= sc
			}
		}
	}
}

// Marshal serializes the encoding into one freshly allocated byte slice for
// AllGatherBytes. Layout: scheme(1) width(4) nrows(4) | indices | scales |
// bits. The result is safe to hand to a collective: every rank may retain
// it, which is exactly why this path does not reuse buffers (DESIGN.md §10
// — wire payloads are never recycled).
func (e *Encoded) Marshal() []byte {
	return e.AppendTo(make([]byte, 0, 9+4*len(e.Indices)+4*len(e.Scales)+len(e.Bits)))
}

// AppendTo appends the Marshal encoding to dst and returns the extended
// slice. Only use a recycled dst for process-local serialization; a buffer
// that will cross a collective must come from a fresh Marshal call.
func (e *Encoded) AppendTo(dst []byte) []byte {
	dst = append(dst, byte(e.Scheme))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Width))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Indices)))
	for _, id := range e.Indices {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	for _, s := range e.Scales {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(s))
	}
	return append(dst, e.Bits...)
}

// Unmarshal parses a buffer produced by Marshal into a freshly allocated
// Encoded. buf is only read. Hot paths should hold one Encoded and call
// UnmarshalInto instead.
func Unmarshal(buf []byte) (*Encoded, error) {
	e := new(Encoded)
	if err := UnmarshalInto(e, buf); err != nil {
		return nil, err
	}
	return e, nil
}

// UnmarshalInto parses a buffer produced by Marshal into e, reusing e's
// storage; the decoded contents never alias buf, so buf may be recycled or
// owned by another rank. On error e is left in an unspecified state. Any
// slices previously obtained from e are invalidated.
//
//kgelint:hotpath
func UnmarshalInto(e *Encoded, buf []byte) error {
	if len(buf) < 9 {
		//kgelint:ignore hotpathalloc corrupt-payload error path, never taken per batch
		return fmt.Errorf("grad: encoded buffer too short: %d bytes", len(buf))
	}
	e.Scheme = Scheme(buf[0])
	e.Width = int(binary.LittleEndian.Uint32(buf[1:]))
	n := int(binary.LittleEndian.Uint32(buf[5:]))
	off := 9
	need := off + 4*n + 4*n + n*payloadBytesPerRow(e.Scheme, e.Width)
	if e.Width <= 0 || n < 0 || len(buf) != need {
		//kgelint:ignore hotpathalloc corrupt-payload error path, never taken per batch
		return fmt.Errorf("grad: encoded buffer size %d does not match header (want %d)", len(buf), need)
	}
	if cap(e.Indices) < n {
		e.Indices = make([]int32, n)
	}
	e.Indices = e.Indices[:n]
	for i := range e.Indices {
		e.Indices[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	if cap(e.Scales) < n {
		e.Scales = make([]float32, n)
	}
	e.Scales = e.Scales[:n]
	for i := range e.Scales {
		e.Scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	e.Bits = append(e.Bits[:0], buf[off:]...)
	return nil
}

// RowRange returns the half-open position range [i0, i1) of the encoded rows
// whose ids fall in [lo, hi). Because Indices are ascending, any id interval
// is a contiguous run of encoded rows — the property that lets the
// compressed-hop collectives slice an Encoded into per-rank chunks without
// re-sorting (DESIGN.md §13). Binary search; allocation-free.
//
//kgelint:hotpath
func (e *Encoded) RowRange(lo, hi int32) (i0, i1 int) {
	i0 = searchIdx(e.Indices, lo)
	i1 = searchIdx(e.Indices, hi)
	return i0, i1
}

// searchIdx returns the first position whose id is >= target.
func searchIdx(ids []int32, target int32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Range sets view to the encoded rows [i0, i1) of e, aliasing e's storage:
// no bytes are copied, so a chunk view is free. The view is read-only and
// valid only until the next *Into call on e.
func (e *Encoded) Range(i0, i1 int, view *Encoded) {
	per := payloadBytesPerRow(e.Scheme, e.Width)
	view.Scheme = e.Scheme
	view.Width = e.Width
	view.Indices = e.Indices[i0:i1]
	view.Scales = e.Scales[i0:i1]
	view.Bits = e.Bits[i0*per : i1*per]
}

// AppendRangeTo appends a standalone Marshal-layout frame holding only the
// encoded rows [i0, i1) to dst and returns the extended slice — the
// per-chunk wire frame of the compressed reduce-scatter hops (DESIGN.md
// §13). A frame produced here round-trips through UnmarshalInto like any
// full Marshal frame. Like AppendTo, growth is amortized: the collective
// stages through a reused scratch slice, so steady-state calls stay within
// capacity.
func (e *Encoded) AppendRangeTo(dst []byte, i0, i1 int) []byte {
	per := payloadBytesPerRow(e.Scheme, e.Width)
	dst = append(dst, byte(e.Scheme))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Width))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(i1-i0))
	for _, id := range e.Indices[i0:i1] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	for _, s := range e.Scales[i0:i1] {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(s))
	}
	return append(dst, e.Bits[i0*per:i1*per]...)
}
