package grad

import (
	"testing"

	"kgedist/internal/xrand"
)

// fillGrad materializes rows*width gradient values into g (clearing first),
// reusing g's storage so the fill itself is allocation-free once warm.
func fillGrad(g *SparseGrad, rows int, rng *xrand.RNG) {
	g.Clear()
	for i := 0; i < rows; i++ {
		row := g.Row(int32(i * 3))
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
}

// The encode/decode hot path must be allocation-free after warm-up: this is
// the per-exchange work every rank does for every batch (ISSUE 4 acceptance
// criterion, asserted with testing.AllocsPerRun).
func TestQuantizeDequantizeAllocFree(t *testing.T) {
	for _, s := range []Scheme{OneBitMax, TwoBitTernary, NoQuant} {
		g := NewSparseGrad(32)
		rng := xrand.New(11)
		e := new(Encoded)
		dst := NewSparseGrad(32)
		// Warm: materialize row working set, scratch, and Encoded storage.
		fillGrad(g, 128, rng)
		QuantizeInto(e, g, s, rng)
		Dequantize(e, dst)
		allocs := testing.AllocsPerRun(50, func() {
			fillGrad(g, 128, rng)
			QuantizeInto(e, g, s, rng)
			dst.Clear()
			Dequantize(e, dst)
		})
		if allocs != 0 {
			t.Errorf("%v: quantize/dequantize cycle allocates %.1f allocs/op, want 0", s, allocs)
		}
	}
}

func TestUnmarshalIntoAllocFree(t *testing.T) {
	g := NewSparseGrad(32)
	fillGrad(g, 128, xrand.New(3))
	buf := Quantize(g, OneBitMax, nil).Marshal()
	e := new(Encoded)
	if err := UnmarshalInto(e, buf); err != nil { // warm storage
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := UnmarshalInto(e, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("UnmarshalInto allocates %.1f allocs/op, want 0", allocs)
	}
}

// The per-batch SparseGrad cycle (Clear, re-materialize rows, sort indices)
// must recycle row storage through the free list.
func TestSparseGradCycleAllocFree(t *testing.T) {
	g := NewSparseGrad(32)
	cycle := func() {
		g.Clear()
		for r := 0; r < 256; r++ {
			g.Row(int32(r))[0] = 1
		}
		_ = g.Indices()
	}
	cycle() // warm the free list and index cache
	allocs := testing.AllocsPerRun(50, cycle)
	if allocs != 0 {
		t.Errorf("SparseGrad batch cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestResidualCycleAllocFree(t *testing.T) {
	g := NewSparseGrad(32)
	rng := xrand.New(5)
	r := NewResidual(32)
	e := new(Encoded)
	step := func() {
		fillGrad(g, 64, rng)
		r.AddInto(g)
		QuantizeInto(e, g, OneBitMax, rng)
		r.Update(g, e)
	}
	step()
	step() // second warm-up exercises the residual free list path
	allocs := testing.AllocsPerRun(50, step)
	if allocs != 0 {
		t.Errorf("residual feedback step allocates %.1f allocs/op, want 0", allocs)
	}
}

// QuantizeInto must be bit-identical to the allocating Quantize for the same
// seed — the *Into rewrite may not change RNG consumption order (ISSUE 4:
// quantization stays bit-identical for a fixed seed).
func TestQuantizeIntoMatchesQuantize(t *testing.T) {
	for _, s := range []Scheme{OneBitMax, OneBitAvg, TwoBitTernary, NoQuant} {
		g := NewSparseGrad(16)
		fillGrad(g, 40, xrand.New(9))
		want := Quantize(g, s, xrand.New(77))
		e := &Encoded{ // dirty, oversized storage: reuse must fully overwrite
			Indices: make([]int32, 500),
			Scales:  make([]float32, 500),
			Bits:    make([]byte, 5000),
		}
		for i := range e.Bits {
			e.Bits[i] = 0xFF
		}
		QuantizeInto(e, g, s, xrand.New(77))
		if string(e.Marshal()) != string(want.Marshal()) {
			t.Errorf("%v: QuantizeInto wire bytes differ from Quantize", s)
		}
	}
}

func TestUnmarshalIntoMatchesUnmarshal(t *testing.T) {
	g := NewSparseGrad(16)
	fillGrad(g, 40, xrand.New(2))
	buf := Quantize(g, TwoBitTernary, xrand.New(4)).Marshal()
	want, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	e := &Encoded{Indices: make([]int32, 3), Scales: make([]float32, 999)}
	if err := UnmarshalInto(e, buf); err != nil {
		t.Fatal(err)
	}
	if string(e.Marshal()) != string(want.Marshal()) {
		t.Error("UnmarshalInto round-trip differs from Unmarshal")
	}
}
