package binpack

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBinpackRoundTrip drives pack -> score -> unpack over arbitrary
// widths (including width % 64 != 0 tails) and arbitrary float payloads
// (the byte stream is reinterpreted as float32 bits, so NaN/Inf/denormals
// all occur): nothing may panic, the unrolled kernel must match the
// bit-by-bit Hamming reference, tail bits must stay clear, and
// unpack -> repack must reproduce the code exactly.
func FuzzBinpackRoundTrip(f *testing.F) {
	f.Add(uint16(1), []byte{0x00})
	f.Add(uint16(64), []byte{0x3f, 0x80, 0x00, 0x00, 0xbf, 0x80, 0x00, 0x00})
	f.Add(uint16(65), []byte{0x7f, 0xc0, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0xff})
	f.Add(uint16(130), []byte{0x7f, 0x80, 0x00, 0x00, 0xff, 0x80, 0x00, 0x00, 0x80, 0x00, 0x00, 0x01})
	f.Add(uint16(517), []byte("binarized knowledge graph embeddings"))
	f.Fuzz(func(t *testing.T, w uint16, data []byte) {
		width := int(w)%517 + 1
		at := func(i int) float32 {
			if len(data) == 0 {
				return 0
			}
			var b [4]byte
			for j := 0; j < 4; j++ {
				b[j] = data[(4*i+j)%len(data)]
			}
			return math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
		}
		rowA := make([]float32, width)
		rowB := make([]float32, width)
		thr := make([]float32, width)
		for d := 0; d < width; d++ {
			rowA[d] = at(d)
			rowB[d] = at(d + width)
			thr[d] = at(d + 2*width)
		}
		words := (width + WordBits - 1) / WordBits
		codeA := make([]uint64, words)
		codeB := make([]uint64, words)
		packInto(rowA, thr, codeA)
		packInto(rowB, thr, codeB)

		// Tail-word masking: bits beyond width are never set.
		for b := width; b < words*WordBits; b++ {
			if codeA[b/WordBits]&(1<<(uint(b)%WordBits)) != 0 || codeB[b/WordBits]&(1<<(uint(b)%WordBits)) != 0 {
				t.Fatalf("width %d: tail bit %d set", width, b)
			}
		}

		// Kernel vs bit-by-bit reference, both directions.
		var out [1]int32
		Kernel().HammingBlock(codeA, codeB, words, out[:])
		if want := hammingRef(codeA, codeB, words); out[0] != want {
			t.Fatalf("width %d: kernel %d, reference %d", width, out[0], want)
		}
		if out[0] > int32(width) {
			t.Fatalf("width %d: distance %d exceeds width", width, out[0])
		}

		// Unpack -> repack must be the identity on codes.
		ix := &Index{width: width, words: words}
		bits := ix.Unpack(codeA, make([]bool, width))
		recode := make([]uint64, words)
		for d, set := range bits {
			if set {
				recode[d/WordBits] |= 1 << (uint(d) % WordBits)
			}
		}
		for wd := 0; wd < words; wd++ {
			if recode[wd] != codeA[wd] {
				t.Fatalf("width %d: unpack/repack word %d = %#x, want %#x", width, wd, recode[wd], codeA[wd])
			}
		}
		// packInto must agree with the scalar comparison even for NaN
		// thresholds (NaN compares false, so the bit is clear).
		for d := 0; d < width; d++ {
			got := codeA[d/WordBits]&(1<<(uint(d)%WordBits)) != 0
			if got != (rowA[d] > thr[d]) {
				t.Fatalf("width %d: bit %d = %v for value %g threshold %g", width, d, got, rowA[d], thr[d])
			}
		}
	})
}
