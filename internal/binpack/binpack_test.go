package binpack

import (
	"math/rand"
	"testing"

	"kgedist/internal/eval"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// buildRandom returns a model, params and index over seeded random rows.
func buildRandom(t *testing.T, name string, dim, entities, relations int, seed uint64) (model.Model, *model.Params, *Index) {
	t.Helper()
	m := model.New(name, dim)
	p := model.NewParams(m, entities, relations)
	p.Init(m, xrand.New(seed))
	ix, err := BuildFromParams(m, p)
	if err != nil {
		t.Fatalf("BuildFromParams(%s): %v", name, err)
	}
	return m, p, ix
}

func TestPackUnpackRoundTrip(t *testing.T) {
	// Widths straddling word boundaries, including dim % 64 != 0 tails.
	for _, width := range []int{1, 7, 63, 64, 65, 100, 128, 130} {
		thr := make([]float32, width)
		row := make([]float32, width)
		rng := rand.New(rand.NewSource(int64(width)))
		for d := range row {
			row[d] = float32(rng.NormFloat64())
			thr[d] = float32(rng.NormFloat64() * 0.1)
		}
		words := (width + WordBits - 1) / WordBits
		code := make([]uint64, words)
		packInto(row, thr, code)
		// Every bit must equal the threshold comparison; tail bits zero.
		for d := 0; d < width; d++ {
			got := code[d/WordBits]&(1<<(uint(d)%WordBits)) != 0
			want := row[d] > thr[d]
			if got != want {
				t.Fatalf("width %d: bit %d = %v, want %v", width, d, got, want)
			}
		}
		for b := width; b < words*WordBits; b++ {
			if code[b/WordBits]&(1<<(uint(b)%WordBits)) != 0 {
				t.Fatalf("width %d: tail bit %d set", width, b)
			}
		}
		ix := &Index{width: width, words: words}
		bits := ix.Unpack(code, make([]bool, width))
		for d := 0; d < width; d++ {
			if bits[d] != (row[d] > thr[d]) {
				t.Fatalf("width %d: unpack bit %d mismatch", width, d)
			}
		}
	}
}

func TestKernelMatchesReference(t *testing.T) {
	kern := Kernel()
	rng := rand.New(rand.NewSource(9))
	for _, words := range []int{1, 2, 3, 7, 8, 9, 16, 17} {
		const n = 33
		codes := make([]uint64, n*words)
		q := make([]uint64, words)
		for i := range codes {
			codes[i] = rng.Uint64()
		}
		for i := range q {
			q[i] = rng.Uint64()
		}
		out := make([]int32, n)
		kern.HammingBlock(q, codes, words, out)
		for i := 0; i < n; i++ {
			want := hammingRef(q, codes[i*words:(i+1)*words], words)
			if out[i] != want {
				t.Fatalf("words=%d cand=%d: kernel %d, reference %d", words, i, out[i], want)
			}
		}
	}
}

func TestBuildThresholdsAreDimensionMeans(t *testing.T) {
	_, p, ix := buildRandom(t, "distmult", 6, 40, 3, 11)
	for d := 0; d < ix.Width(); d++ {
		var sum float64
		for e := 0; e < 40; e++ {
			sum += float64(p.Entity.Row(e)[d])
		}
		want := float32(sum / 40)
		if got := ix.Thresholds()[d]; got != want {
			t.Fatalf("threshold[%d] = %g, want mean %g", d, got, want)
		}
	}
	if ix.Words() != 1 || ix.Width() != 6 || ix.Rows() != 40 {
		t.Fatalf("geometry %d/%d/%d", ix.Words(), ix.Width(), ix.Rows())
	}
	if ix.Bytes() != 40*8 {
		t.Fatalf("Bytes() = %d", ix.Bytes())
	}
}

func TestTransHActiveWidthIsDim(t *testing.T) {
	_, _, ix := buildRandom(t, "transh", 16, 20, 3, 5)
	if ix.Width() != 16 {
		t.Fatalf("transh active width %d, want dim 16", ix.Width())
	}
}

// TestSearchFullBudgetMatchesExact is the correctness anchor: with the
// candidate budget covering every entity, stage 2 rescores the whole
// table, so the approx result must equal the exact sweep bit for bit —
// for every model, on both sides. Any divergence would mean the rescore
// stage itself (not the prefilter) distorts scores or ordering.
func TestSearchFullBudgetMatchesExact(t *testing.T) {
	for _, name := range []string{"complex", "distmult", "transe", "rotate", "transh", "simple"} {
		const entities, relations, k = 60, 4, 7
		m, p, ix := buildRandom(t, name, 8, entities, relations, 31)
		sc := NewScratch()
		for _, side := range []string{"tail", "head"} {
			for fix := 0; fix < 5; fix++ {
				rel := fix % relations
				fixRow, relRow := p.Entity.Row(fix), p.Relation.Row(rel)
				got, candidates, rescored, err := ix.Search(m, side, fixRow, relRow, p.Entity.Row, k, entities, nil, sc)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, side, err)
				}
				if candidates != entities || rescored != entities {
					t.Fatalf("%s/%s: candidates=%d rescored=%d, want %d", name, side, candidates, rescored, entities)
				}
				want := eval.TopK(entities, k, func(e int32) float32 {
					if side == "tail" {
						return m.ScoreRows(fixRow, relRow, p.Entity.Row(int(e)))
					}
					return m.ScoreRows(p.Entity.Row(int(e)), relRow, fixRow)
				}, nil)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d results, want %d", name, side, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s fix=%d: rank %d = %+v, exact %+v", name, side, fix, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSearchSkipFilters(t *testing.T) {
	m, p, ix := buildRandom(t, "complex", 4, 30, 2, 3)
	sc := NewScratch()
	full, _, _, err := ix.Search(m, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 5, 30, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	banned := full[0].Entity
	res, candidates, rescored, err := ix.Search(m, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 5, 30,
		func(e int32) bool { return e == banned }, sc)
	if err != nil {
		t.Fatal(err)
	}
	if candidates != 30 || rescored != 29 {
		t.Fatalf("candidates=%d rescored=%d", candidates, rescored)
	}
	for _, r := range res {
		if r.Entity == banned {
			t.Fatalf("skip ignored: %d in results", banned)
		}
	}
	if res[0] != full[1] {
		t.Fatalf("filtered top %+v, want next exact %+v", res[0], full[1])
	}
}

func TestSearchDeterministicAndScratchReuse(t *testing.T) {
	m, p, ix := buildRandom(t, "transe", 12, 200, 4, 17)
	sc := NewScratch()
	var first []eval.ScoredEntity
	for trial := 0; trial < 5; trial++ {
		res, _, _, err := ix.Search(m, "tail", p.Entity.Row(9), p.Relation.Row(1), p.Entity.Row, 10, 32, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res
			continue
		}
		for i := range first {
			if res[i] != first[i] {
				t.Fatalf("trial %d rank %d: %+v != %+v", trial, i, res[i], first[i])
			}
		}
	}
	// A fresh scratch must agree with the reused one.
	res, _, _, err := ix.Search(m, "tail", p.Entity.Row(9), p.Relation.Row(1), p.Entity.Row, 10, 32, nil, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if res[i] != first[i] {
			t.Fatalf("fresh scratch rank %d: %+v != %+v", i, res[i], first[i])
		}
	}
}

func TestSearchErrors(t *testing.T) {
	m, p, ix := buildRandom(t, "distmult", 4, 10, 2, 1)
	sc := NewScratch()
	if _, _, _, err := ix.Search(m, "sideways", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 3, 10, nil, sc); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, _, _, err := ix.Search(m, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 0, 10, nil, sc); err == nil {
		t.Fatal("k=0 accepted")
	}
	other := model.New("transe", 4)
	if _, _, _, err := ix.Search(other, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 3, 10, nil, sc); err == nil {
		t.Fatal("model mismatch accepted")
	}
	// Budget clamping: c < k and c > rows both normalize.
	if res, candidates, _, err := ix.Search(m, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 5, 1, nil, sc); err != nil || len(res) != 5 || candidates != 5 {
		t.Fatalf("c<k clamp: res=%d candidates=%d err=%v", len(res), candidates, err)
	}
	if _, candidates, _, err := ix.Search(m, "tail", p.Entity.Row(0), p.Relation.Row(0), p.Entity.Row, 3, 99, nil, sc); err != nil || candidates != 10 {
		t.Fatalf("c>rows clamp: candidates=%d err=%v", candidates, err)
	}
}

func TestBuildEmptyAndUnknown(t *testing.T) {
	m := model.New("complex", 4)
	ix, err := Build(m, 0, func(int) []float32 { panic("no rows") })
	if err != nil {
		t.Fatal(err)
	}
	if ix.Rows() != 0 {
		t.Fatalf("rows %d", ix.Rows())
	}
	sc := NewScratch()
	res, candidates, rescored, err := ix.Search(m, "tail", make([]float32, 8), make([]float32, 8), nil, 3, 10, nil, sc)
	if err != nil || res != nil || candidates != 0 || rescored != 0 {
		t.Fatalf("empty search: %v %v %d %d", res, err, candidates, rescored)
	}
	if _, err := composerFor(fakeModel{}); err == nil {
		t.Fatal("unknown model composed")
	}
}

// fakeModel exists only to hit the unknown-model path of composerFor.
type fakeModel struct{ model.Model }

func (fakeModel) Name() string { return "not-a-model" }
