package binpack

import (
	"fmt"
	"testing"

	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// BenchmarkHammingBlock measures the raw packed-scoring kernel at serving
// shapes: words/row = 2 is ComplEx dim 64, 8 is dim 256.
func BenchmarkHammingBlock(b *testing.B) {
	kern := Kernel()
	for _, words := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			const n = prefilterBlock
			codes := make([]uint64, n*words)
			q := make([]uint64, words)
			rng := xrand.New(1)
			for i := range codes {
				codes[i] = rng.Uint64()
			}
			for i := range q {
				q[i] = rng.Uint64()
			}
			out := make([]int32, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kern.HammingBlock(q, codes, words, out)
			}
			b.SetBytes(int64(n * words * 8))
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "codes/sec")
		})
	}
}

// BenchmarkSearchVsExact pits the two-stage approx query against the full
// exact sweep on one goroutine — the per-query work ratio the serving
// speedup comes from.
func BenchmarkSearchVsExact(b *testing.B) {
	const entities, relations, dim, k, c = 50000, 8, 64, 10, 1024
	m := model.New("complex", dim)
	p := model.NewParams(m, entities, relations)
	p.ClusteredInit(m, 64, 0.25, xrand.New(7))
	ix, err := BuildFromParams(m, p)
	if err != nil {
		b.Fatal(err)
	}
	fixRow, relRow := p.Entity.Row(3), p.Relation.Row(2)

	b.Run("approx", func(b *testing.B) {
		sc := NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ix.Search(m, "tail", fixRow, relRow, p.Entity.Row, k, c, nil, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var best float32
			for e := 0; e < entities; e++ {
				if s := m.ScoreRows(fixRow, relRow, p.Entity.Row(e)); s > best {
					best = s
				}
			}
			_ = best
		}
	})
}

// BenchmarkBuild measures index construction — the cost added to every
// store open and hot reload.
func BenchmarkBuild(b *testing.B) {
	const entities, dim = 50000, 64
	m := model.New("complex", dim)
	p := model.NewParams(m, entities, 4)
	p.Init(m, xrand.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFromParams(m, p); err != nil {
			b.Fatal(err)
		}
	}
}
