// Package binpack implements binarized candidate generation for serving:
// 1-bit codes of embedding rows packed into uint64 words, scored with
// XOR/popcount Hamming kernels, as in Kishimoto et al., "Binarized
// Knowledge Graph Embeddings". The full-precision store stays the source
// of truth — binpack only *prefilters*: a packed sweep over all entities
// selects a candidate slice whose exact scores are then recomputed, so the
// served ranking is always expressed in true model scores and the only
// approximation is which candidates make the slice (guarded by the
// recall gate in internal/testkit).
//
// An Index is immutable after Build and safe for unlimited concurrent
// readers; serving swaps it together with its Store as one generation.
package binpack

import (
	"fmt"

	"kgedist/internal/model"
)

// WordBits is the packing grain: one uint64 word holds 64 dimension bits.
const WordBits = 64

// Index is the packed 1-bit sketch of one checkpoint's entity table.
//
// Packed layout: entity e's code occupies words [e*Words, (e+1)*Words) of
// codes. Bit j of word w is dimension w*64+j (little-endian bit order
// within a word). Dimensions beyond the active width — the tail of the
// last word when width % 64 != 0 — are always zero in every code,
// including query codes, so they can never contribute to a XOR/popcount
// and need no masking on the scoring path.
type Index struct {
	rows  int
	width int // active float dimensions binarized per row
	words int // uint64 words per row: ceil(width/64)

	codes []uint64  // rows * words, row-major
	thr   []float32 // per-dimension binarization thresholds, len width

	comp composer // model-specific query composition
	name string   // model name the index was built for
}

// Build binarizes an entity table into a packed index. row(e) must return
// entity e's embedding row (at least comp.activeWidth floats wide) and be
// safe to call repeatedly; Build reads every row twice (threshold pass,
// pack pass) and copies nothing out of them.
//
// The binarization rule is per-dimension thresholding: bit d of entity e
// is set iff row(e)[d] > thr[d], with thr[d] the mean of dimension d over
// all entities. Centering on the mean (rather than raw sign) keeps the
// code informative when a dimension drifts off zero during training.
func Build(m model.Model, rows int, row func(e int) []float32) (*Index, error) {
	comp, err := composerFor(m)
	if err != nil {
		return nil, err
	}
	width := comp.activeWidth(m)
	if width <= 0 {
		return nil, fmt.Errorf("binpack: model %s has non-positive active width %d", m.Name(), width)
	}
	words := (width + WordBits - 1) / WordBits
	ix := &Index{
		rows:  rows,
		width: width,
		words: words,
		codes: make([]uint64, rows*words),
		thr:   make([]float32, width),
		comp:  comp,
		name:  m.Name(),
	}
	if rows == 0 {
		return ix, nil
	}
	// Pass 1: per-dimension means become the thresholds. Accumulate in
	// float64 so the threshold does not drift with entity count.
	sums := make([]float64, width)
	for e := 0; e < rows; e++ {
		r := row(e)
		for d := 0; d < width; d++ {
			sums[d] += float64(r[d])
		}
	}
	for d := range sums {
		ix.thr[d] = float32(sums[d] / float64(rows))
	}
	// Pass 2: pack every row against the thresholds.
	for e := 0; e < rows; e++ {
		packInto(row(e)[:width], ix.thr, ix.codes[e*words:(e+1)*words])
	}
	return ix, nil
}

// BuildFromParams is Build over a loaded Params — the checkpoint read path
// testkit and the load generator share with serving.
func BuildFromParams(m model.Model, p *model.Params) (*Index, error) {
	return Build(m, p.Entity.Rows, p.Entity.Row)
}

// Rows returns the number of entity codes in the index.
func (ix *Index) Rows() int { return ix.rows }

// Width returns the number of binarized dimensions per row.
func (ix *Index) Width() int { return ix.width }

// Words returns the packed words per row.
func (ix *Index) Words() int { return ix.words }

// ModelName returns the model the index was built for.
func (ix *Index) ModelName() string { return ix.name }

// Thresholds returns the per-dimension binarization thresholds (read-only).
func (ix *Index) Thresholds() []float32 { return ix.thr }

// Code returns entity e's packed code (read-only view into the index).
func (ix *Index) Code(e int) []uint64 {
	return ix.codes[e*ix.words : (e+1)*ix.words]
}

// Bytes returns the packed size of the index payload in bytes.
func (ix *Index) Bytes() int { return len(ix.codes) * 8 }

// packInto writes the 1-bit code of row (len == len(thr)) into dst, which
// must be ceil(len(thr)/64) words. Tail bits beyond the width stay zero.
func packInto(row, thr []float32, dst []uint64) {
	for w := range dst {
		dst[w] = 0
	}
	for d, v := range row {
		if v > thr[d] {
			dst[d/WordBits] |= 1 << (uint(d) % WordBits)
		}
	}
}

// Unpack expands a packed code into dst (one bool per dimension, len
// ix.Width()) and returns it. The bit-by-bit inverse of packInto, used by
// tests and the fuzz round-trip.
func (ix *Index) Unpack(code []uint64, dst []bool) []bool {
	for d := 0; d < ix.width; d++ {
		dst[d] = code[d/WordBits]&(1<<(uint(d)%WordBits)) != 0
	}
	return dst
}
