package binpack

import (
	"fmt"

	"kgedist/internal/eval"
	"kgedist/internal/model"
)

// prefilterBlock is how many candidate codes one kernel call scores: big
// enough to amortize the call, small enough that the distance scratch
// stays in L1.
const prefilterBlock = 512

// Scratch holds the per-query working set of a two-stage search, reused
// across queries so the steady-state approx path allocates only its
// response. Not safe for concurrent use; each searching goroutine owns one.
type Scratch struct {
	q     []float32
	code  []uint64
	dists []int32
	accC  *eval.TopKAccumulator
	accK  *eval.TopKAccumulator
	cand  []eval.ScoredEntity
}

// NewScratch returns an empty scratch; Search grows it on demand.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) ensure(width, words, c, k int) {
	if cap(sc.q) < width {
		sc.q = make([]float32, width)
	}
	sc.q = sc.q[:width]
	if cap(sc.code) < words {
		sc.code = make([]uint64, words)
	}
	sc.code = sc.code[:words]
	if cap(sc.dists) < prefilterBlock {
		sc.dists = make([]int32, prefilterBlock)
	}
	sc.dists = sc.dists[:prefilterBlock]
	if sc.accC == nil {
		sc.accC = eval.NewTopK(c)
	} else {
		sc.accC.Reset(c)
	}
	if sc.accK == nil {
		sc.accK = eval.NewTopK(k)
	} else {
		sc.accK.Reset(k)
	}
}

// Search runs the two-stage approximate completion query: a packed
// XOR/popcount prefilter over every entity selects the c
// smallest-Hamming candidates (stage 1), whose exact model scores are
// then recomputed to rank the final top k (stage 2).
//
// side is "head" or "tail" — the slot being completed. fixRow is the
// fixed entity's embedding row, relRow the relation's. entityRow(e) must
// return entity e's row. skip, when non-nil, drops candidates during
// rescoring (filtered ranking); skipped candidates still consume stage-1
// budget, so callers wanting k results through a dense filter should
// raise c. c is clamped to [k, Rows()].
//
// Invariants: the result is ranked by exact ScoreRows values with
// eval.TopKAccumulator tie-breaking (ties toward the lower entity id), so
// an approx ranking can only ever differ from the exact sweep in *which*
// candidates were considered — never in how considered candidates are
// ordered. Stage 1 breaks Hamming ties toward the lower entity id too,
// making the candidate set, and therefore the whole response,
// deterministic for a given index. candidates and rescored report the
// stage-1 slice size and how many of them were exactly scored.
func (ix *Index) Search(m model.Model, side string, fixRow, relRow []float32, entityRow func(e int) []float32,
	k, c int, skip func(e int32) bool, sc *Scratch) (res []eval.ScoredEntity, candidates, rescored int, err error) {
	if m.Name() != ix.name {
		return nil, 0, 0, fmt.Errorf("binpack: index built for model %s, searched with %s", ix.name, m.Name())
	}
	if side != "head" && side != "tail" {
		return nil, 0, 0, fmt.Errorf("binpack: side must be head or tail, got %q", side)
	}
	if k <= 0 {
		return nil, 0, 0, fmt.Errorf("binpack: non-positive k %d", k)
	}
	if ix.rows == 0 {
		return nil, 0, 0, nil
	}
	if c < k {
		c = k
	}
	if c > ix.rows {
		c = ix.rows
	}
	if k > ix.rows {
		k = ix.rows
	}
	sc.ensure(ix.width, ix.words, c, k)

	// Stage 1: compose and binarize the query, sweep the packed codes.
	if side == "tail" {
		ix.comp.tail(m, fixRow, relRow, sc.q)
	} else {
		ix.comp.head(m, fixRow, relRow, sc.q)
	}
	ix.packQueryInto(sc.q, sc.code)
	ix.prefilterInto(sc.code, sc.accC, sc.dists)
	candidates = sc.accC.Len()
	sc.cand = sc.accC.AppendTo(sc.cand[:0])

	// Stage 2: exact rescore of the candidate slice.
	for _, cd := range sc.cand {
		if skip != nil && skip(cd.Entity) {
			continue
		}
		row := entityRow(int(cd.Entity))
		var score float32
		if side == "tail" {
			score = m.ScoreRows(fixRow, relRow, row)
		} else {
			score = m.ScoreRows(row, relRow, fixRow)
		}
		sc.accK.Offer(cd.Entity, score)
		rescored++
	}
	return sc.accK.Results(), candidates, rescored, nil
}

// packQueryInto binarizes a composed query row. Dot-family queries are
// thresholded at zero (sign agreement with the mean-centered candidate
// bits is what tracks the dot product); distance-family queries use the
// same per-dimension thresholds as the candidates. Tail bits beyond the
// width stay zero, matching every candidate code.
func (ix *Index) packQueryInto(q []float32, dst []uint64) {
	if ix.comp.kind == kindDist {
		packInto(q, ix.thr, dst)
		return
	}
	for w := range dst {
		dst[w] = 0
	}
	for d, v := range q {
		if v > 0 {
			dst[d/WordBits] |= 1 << (uint(d) % WordBits)
		}
	}
}

// prefilterInto is the stage-1 hot loop: Hamming-score every entity code
// against the query in blocks and keep the c best (smallest distance,
// ties toward the lower id — offered as -distance so the accumulator's
// deterministic ordering applies unchanged).
//
//kgelint:hotpath
func (ix *Index) prefilterInto(qcode []uint64, acc *eval.TopKAccumulator, dists []int32) {
	kern := Kernel()
	words := ix.words
	for lo := 0; lo < ix.rows; lo += prefilterBlock {
		n := ix.rows - lo
		if n > prefilterBlock {
			n = prefilterBlock
		}
		kern.HammingBlock(qcode, ix.codes[lo*words:(lo+n)*words], words, dists[:n])
		for i := 0; i < n; i++ {
			acc.Offer(int32(lo+i), -float32(dists[i]))
		}
	}
}
