package binpack

import "math/bits"

// ScorePacked is the narrow kernel interface of the packed sweep: given a
// query code and a contiguous block of candidate codes, fill out with the
// Hamming distances. Keeping the interface this small is deliberate — an
// AVX2 VPOPCNTQ or NEON CNT assembly kernel can slot in behind it without
// touching the prefilter, the same shape the training kernels use for
// their future SIMD paths (ROADMAP item 4).
type ScorePacked interface {
	// HammingBlock computes, for each of the len(out) candidate codes laid
	// out back to back in codes (words uint64 each), the Hamming distance
	// to q (words long), writing distances into out. codes must hold at
	// least len(out)*words words.
	HammingBlock(q, codes []uint64, words int, out []int32)
}

// Kernel returns the active packed-scoring kernel for this platform.
// Currently always the portable math/bits implementation; an asm kernel
// would be selected here behind a build tag.
func Kernel() ScorePacked { return portableKernel{} }

// portableKernel is the pure-Go popcount kernel: XOR + OnesCount64,
// 8-word unrolled. OnesCount64 compiles to the POPCNT instruction on
// amd64 and CNT on arm64, so "portable" costs one instruction per word,
// not a bit loop.
type portableKernel struct{}

// HammingBlock implements ScorePacked.
//
//kgelint:hotpath
func (portableKernel) HammingBlock(q, codes []uint64, words int, out []int32) {
	for i := range out {
		row := codes[i*words : i*words+words]
		var acc int
		j := 0
		// 8-word unrolled body: one bounds check per stride, and the
		// independent popcounts pipeline across the XORs.
		for ; j+8 <= words; j += 8 {
			c := row[j : j+8 : j+8]
			s := q[j : j+8 : j+8]
			acc += bits.OnesCount64(c[0]^s[0]) +
				bits.OnesCount64(c[1]^s[1]) +
				bits.OnesCount64(c[2]^s[2]) +
				bits.OnesCount64(c[3]^s[3]) +
				bits.OnesCount64(c[4]^s[4]) +
				bits.OnesCount64(c[5]^s[5]) +
				bits.OnesCount64(c[6]^s[6]) +
				bits.OnesCount64(c[7]^s[7])
		}
		for ; j < words; j++ {
			acc += bits.OnesCount64(row[j] ^ q[j])
		}
		out[i] = int32(acc)
	}
}

// hammingRef is the bit-by-bit reference the fuzz round-trip checks the
// kernel against: no packing tricks, no unrolling.
func hammingRef(a, b []uint64, words int) int32 {
	var n int32
	for w := 0; w < words; w++ {
		x := a[w] ^ b[w]
		for x != 0 {
			n += int32(x & 1)
			x >>= 1
		}
	}
	return n
}
