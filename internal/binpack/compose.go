package binpack

import (
	"fmt"

	"kgedist/internal/model"
)

// Query composition: the packed prefilter compares one query code against
// every entity code, so the fixed (entity, relation) pair of a completion
// query must first be folded into a single float row "q" in the entity
// embedding space. Each model family gets its own fold, derived from its
// ScoreRows form as a function of the candidate row:
//
//   - Dot family (complex, distmult, simple): the score is linear in the
//     candidate row, score = <q, cand>. High score wants sign(q[d]) to
//     agree with the candidate's bit, so the query is binarized at zero
//     while candidates are binarized at the per-dimension mean (the mean
//     offset contributes a candidate-independent constant to the score).
//   - Distance family (transe, rotate, transh): the score is a negated
//     distance to a target point q; close candidates share q's side of
//     each threshold, so the query is binarized at the index thresholds.
//
// The folds for rotate's head side (division by the unnormalized rotor
// magnitude) and for transh (hyperplane projection dropped) are
// approximate: the prefilter only has to put the true top ranks inside
// the candidate slice, and the exact rescore restores true scores —
// fidelity is what testkit.CheckBinarizedRecall measures.

// queryKind selects the query-side binarization rule.
type queryKind int

const (
	kindDot  queryKind = iota // binarize query at zero
	kindDist                  // binarize query at the index thresholds
)

// composer folds a fixed (entity, relation) pair into a query row.
type composer struct {
	kind queryKind
	// activeWidth is how many leading floats of an entity row the model's
	// score actually reads (TransH pads entity rows to 2*dim but scores
	// only the first dim).
	activeWidth func(m model.Model) int
	// tail folds fixed head h and relation r into q, for ranking tails.
	tail func(m model.Model, h, r, q []float32)
	// head folds fixed tail t and relation r into q, for ranking heads.
	head func(m model.Model, t, r, q []float32)
}

func fullWidth(m model.Model) int { return m.Width() }

// composerFor returns the query composer for m, or an error for a model
// binpack has no fold for (a new model must add one here before it can be
// served in approx mode).
func composerFor(m model.Model) (composer, error) {
	switch m.Name() {
	case "complex":
		return composer{kind: kindDot, activeWidth: fullWidth, tail: complexTail, head: complexHead}, nil
	case "distmult":
		return composer{kind: kindDot, activeWidth: fullWidth, tail: distmultTail, head: distmultHead}, nil
	case "simple":
		return composer{kind: kindDot, activeWidth: fullWidth, tail: simpleTail, head: simpleHead}, nil
	case "transe":
		return composer{kind: kindDist, activeWidth: fullWidth, tail: transeTail, head: transeHead}, nil
	case "rotate":
		return composer{kind: kindDist, activeWidth: fullWidth, tail: rotateTail, head: rotateHead}, nil
	case "transh":
		return composer{kind: kindDist, activeWidth: func(m model.Model) int { return m.Dim() }, tail: transhTail, head: transhHead}, nil
	}
	return composer{}, fmt.Errorf("binpack: no query composition for model %q", m.Name())
}

// ---- dot family ------------------------------------------------------------

// complex: score = sum_j Re(h_j r_j conj(t_j)). As a function of t this is
// <q, t> with q = h*r (complex product, [Re|Im] layout); as a function of
// h it is <q, h> with q = conj(r)*t.
func complexTail(m model.Model, h, r, q []float32) {
	d := m.Dim()
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	for i := 0; i < d; i++ {
		q[i] = hr[i]*rr[i] - hi[i]*ri[i]
		q[d+i] = hi[i]*rr[i] + hr[i]*ri[i]
	}
}

func complexHead(m model.Model, t, r, q []float32) {
	d := m.Dim()
	tr, ti := t[:d], t[d:]
	rr, ri := r[:d], r[d:]
	for i := 0; i < d; i++ {
		q[i] = rr[i]*tr[i] + ri[i]*ti[i]
		q[d+i] = rr[i]*ti[i] - ri[i]*tr[i]
	}
}

// distmult: score = <h, r, t> — symmetric elementwise product either side.
func distmultTail(m model.Model, h, r, q []float32) {
	for i := range q {
		q[i] = h[i] * r[i]
	}
}

func distmultHead(m model.Model, t, r, q []float32) {
	for i := range q {
		q[i] = r[i] * t[i]
	}
}

// simple: score = (<h_H, r_f, t_T> + <t_H, r_i, h_T>)/2 over [head-role |
// tail-role] entity rows. For a tail candidate [tH|tT] the pairing is
// q = [r_i*h_T | h_H*r_f]/2; for a head candidate, q = [r_f*t_T | t_H*r_i]/2.
func simpleTail(m model.Model, h, r, q []float32) {
	d := m.Dim()
	hH, hT := h[:d], h[d:]
	rf, ri := r[:d], r[d:]
	for i := 0; i < d; i++ {
		q[i] = ri[i] * hT[i] / 2
		q[d+i] = hH[i] * rf[i] / 2
	}
}

func simpleHead(m model.Model, t, r, q []float32) {
	d := m.Dim()
	tH, tT := t[:d], t[d:]
	rf, ri := r[:d], r[d:]
	for i := 0; i < d; i++ {
		q[i] = rf[i] * tT[i] / 2
		q[d+i] = tH[i] * ri[i] / 2
	}
}

// ---- distance family -------------------------------------------------------

// transe: score = -||h + r - t||^2, so tails cluster around q = h + r and
// heads around q = t - r.
func transeTail(m model.Model, h, r, q []float32) {
	for i := range q {
		q[i] = h[i] + r[i]
	}
}

func transeHead(m model.Model, t, r, q []float32) {
	for i := range q {
		q[i] = t[i] - r[i]
	}
}

// rotate: score = -||h o r - t||^2 (o = complex elementwise product). The
// tail target is exactly q = h o r. The head fold inverts the rotation:
// the per-coordinate minimizer is h_j = t_j * conj(r_j) / |r_j|^2, with a
// small epsilon guarding the unconstrained rotor's magnitude.
func rotateTail(m model.Model, h, r, q []float32) {
	d := m.Dim()
	hr, hi := h[:d], h[d:]
	rr, ri := r[:d], r[d:]
	for i := 0; i < d; i++ {
		q[i] = hr[i]*rr[i] - hi[i]*ri[i]
		q[d+i] = hr[i]*ri[i] + hi[i]*rr[i]
	}
}

func rotateHead(m model.Model, t, r, q []float32) {
	d := m.Dim()
	tr, ti := t[:d], t[d:]
	rr, ri := r[:d], r[d:]
	const eps = 1e-12
	for i := 0; i < d; i++ {
		n := rr[i]*rr[i] + ri[i]*ri[i] + eps
		q[i] = (tr[i]*rr[i] + ti[i]*ri[i]) / n
		q[d+i] = (ti[i]*rr[i] - tr[i]*ri[i]) / n
	}
}

// transh: score = -||proj(h) + d - proj(t)||^2 with proj(e) = e - (w.e)w.
// The projection is relation-specific, so candidate codes (packed once,
// relation-free) cannot carry it; the fold drops it and targets the plain
// translation q = h + d (resp. t - d), which shares the hyperplane
// component with the true target. Entity rows only use their first dim
// floats, hence the reduced active width.
func transhTail(m model.Model, h, r, q []float32) {
	d := m.Dim()
	dvec := r[d : 2*d]
	for i := 0; i < d; i++ {
		q[i] = h[i] + dvec[i]
	}
}

func transhHead(m model.Model, t, r, q []float32) {
	d := m.Dim()
	dvec := r[d : 2*d]
	for i := 0; i < d; i++ {
		q[i] = t[i] - dvec[i]
	}
}
