// Package opt provides the optimizers and learning-rate schedule used by the
// paper's training loop: Adam with sparse row updates (the paper trains with
// Adam, batch size 10000), plain SGD and Adagrad as references, and the
// reduce-on-plateau schedule with the capped linear scaling rule of §3.4
// (lr = lr0 * min(4, nodes); tolerance 15 epochs; factor 0.1).
package opt

import (
	"math"

	"kgedist/internal/tensor"
)

// Optimizer applies gradients to individual embedding rows. One instance
// serves one parameter matrix; per-row state (Adam moments, Adagrad
// accumulators) lives inside. BeginStep must be called once per optimizer
// step before the ApplyRow calls of that step.
type Optimizer interface {
	// Name identifies the optimizer.
	Name() string
	// BeginStep advances the global step counter used for bias correction.
	BeginStep()
	// ApplyRow updates row in place given its gradient and learning rate.
	ApplyRow(rowID int32, row, grad []float32, lr float32)
}

// NewByName constructs an optimizer for a matrix with the given shape.
// Names: "sgd", "adagrad", "adam". Panics on an unknown name.
func NewByName(name string, rows, width int) Optimizer {
	switch name {
	case "sgd":
		return NewSGD()
	case "adagrad":
		return NewAdagrad(rows, width)
	case "adam":
		return NewAdam(rows, width)
	}
	panic("opt: unknown optimizer " + name)
}

// ---- SGD -------------------------------------------------------------------

// SGD is vanilla stochastic gradient descent.
type SGD struct{}

// NewSGD returns a stateless SGD optimizer.
func NewSGD() *SGD { return &SGD{} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// BeginStep implements Optimizer (no-op).
func (s *SGD) BeginStep() {}

// ApplyRow implements Optimizer.
func (s *SGD) ApplyRow(_ int32, row, grad []float32, lr float32) {
	tensor.Axpy(-lr, grad, row)
}

// ---- Adagrad ---------------------------------------------------------------

// Adagrad keeps a per-coordinate sum of squared gradients.
type Adagrad struct {
	accum *tensor.Matrix
	eps   float32
}

// NewAdagrad returns an Adagrad optimizer for a rows x width matrix.
func NewAdagrad(rows, width int) *Adagrad {
	return &Adagrad{accum: tensor.NewMatrix(rows, width), eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adagrad) Name() string { return "adagrad" }

// BeginStep implements Optimizer (no-op).
func (a *Adagrad) BeginStep() {}

// ApplyRow implements Optimizer.
func (a *Adagrad) ApplyRow(rowID int32, row, grad []float32, lr float32) {
	acc := a.accum.Row(int(rowID))
	for i, g := range grad {
		acc[i] += g * g
		row[i] -= lr * g / (float32(math.Sqrt(float64(acc[i]))) + a.eps)
	}
}

// ---- Adam ------------------------------------------------------------------

// Adam implements Kingma & Ba (2014) with lazily updated sparse rows: only
// rows touched by a step pay moment updates, and bias correction uses the
// global step count, matching the dense-equivalent trajectory for rows that
// are touched every step.
type Adam struct {
	m, v  *tensor.Matrix
	beta1 float32
	beta2 float32
	eps   float32
	step  int
	corr1 float32 // 1 - beta1^step, refreshed by BeginStep
	corr2 float32
}

// NewAdam returns an Adam optimizer for a rows x width matrix with the
// standard hyper-parameters (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(rows, width int) *Adam {
	return &Adam{
		m:     tensor.NewMatrix(rows, width),
		v:     tensor.NewMatrix(rows, width),
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step returns the number of optimizer steps begun so far.
func (a *Adam) Step() int { return a.step }

// BeginStep implements Optimizer: advances the step count and refreshes the
// bias-correction terms.
func (a *Adam) BeginStep() {
	a.step++
	a.corr1 = 1 - float32(math.Pow(float64(a.beta1), float64(a.step)))
	a.corr2 = 1 - float32(math.Pow(float64(a.beta2), float64(a.step)))
}

// ApplyRow implements Optimizer.
func (a *Adam) ApplyRow(rowID int32, row, grad []float32, lr float32) {
	if a.step == 0 {
		panic("opt: Adam.ApplyRow before BeginStep")
	}
	mr := a.m.Row(int(rowID))
	vr := a.v.Row(int(rowID))
	for i, g := range grad {
		mr[i] = a.beta1*mr[i] + (1-a.beta1)*g
		vr[i] = a.beta2*vr[i] + (1-a.beta2)*g*g
		mHat := mr[i] / a.corr1
		vHat := vr[i] / a.corr2
		row[i] -= lr * mHat / (float32(math.Sqrt(float64(vHat))) + a.eps)
	}
}

// ---- Learning-rate schedule -------------------------------------------------

// ScaledLR applies the paper's capped linear scaling rule:
// lr0 * min(cap, nodes). The paper found uncapped linear scaling unstable
// beyond 4 nodes and fixed cap = 4 (§3.4).
func ScaledLR(base float64, nodes, capNodes int) float64 {
	if nodes < capNodes {
		return base * float64(nodes)
	}
	return base * float64(capNodes)
}

// Plateau implements reduce-on-plateau: if the observed validation metric
// (higher is better) fails to improve for Tolerance consecutive epochs, the
// learning rate is multiplied by Factor, never dropping below MinLR.
type Plateau struct {
	lr        float64
	factor    float64
	minLR     float64
	tolerance int

	best    float64
	hasBest bool
	bad     int
}

// NewPlateau builds the paper's schedule: tolerance 15, factor 0.1.
func NewPlateau(initialLR, factor, minLR float64, tolerance int) *Plateau {
	if initialLR <= 0 || factor <= 0 || factor >= 1 || tolerance < 1 {
		panic("opt: invalid Plateau configuration")
	}
	return &Plateau{lr: initialLR, factor: factor, minLR: minLR, tolerance: tolerance}
}

// LR returns the current learning rate.
func (p *Plateau) LR() float64 { return p.lr }

// Observe records an end-of-epoch validation metric (higher is better) and
// returns whether it improved on the best seen so far.
func (p *Plateau) Observe(metric float64) (improved bool) {
	if !p.hasBest || metric > p.best {
		p.best = metric
		p.hasBest = true
		p.bad = 0
		return true
	}
	p.bad++
	if p.bad >= p.tolerance {
		p.bad = 0
		next := p.lr * p.factor
		if next < p.minLR {
			next = p.minLR
		}
		p.lr = next
	}
	return false
}

// Best returns the best metric observed, and whether any was observed.
func (p *Plateau) Best() (float64, bool) { return p.best, p.hasBest }
