package opt

import (
	"math"
	"testing"
	"testing/quick"

	"kgedist/internal/xrand"
)

func TestNewByName(t *testing.T) {
	for _, name := range []string{"sgd", "adagrad", "adam"} {
		o := NewByName(name, 4, 8)
		if o.Name() != name {
			t.Fatalf("NewByName(%q).Name() = %q", name, o.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewByName("nope", 1, 1)
}

func TestSGDApplyRow(t *testing.T) {
	s := NewSGD()
	s.BeginStep()
	row := []float32{1, 2}
	s.ApplyRow(0, row, []float32{10, -10}, 0.1)
	if row[0] != 0 || row[1] != 3 {
		t.Fatalf("row = %v", row)
	}
}

func TestAdagradShrinksEffectiveStep(t *testing.T) {
	a := NewAdagrad(1, 1)
	row := []float32{0}
	grad := []float32{1}
	a.ApplyRow(0, row, grad, 0.1)
	first := float64(-row[0])
	prev := row[0]
	a.ApplyRow(0, row, grad, 0.1)
	second := float64(prev - row[0])
	if !(second < first) {
		t.Fatalf("Adagrad step did not shrink: %v then %v", first, second)
	}
}

func TestAdamRequiresBeginStep(t *testing.T) {
	a := NewAdam(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ApplyRow(0, []float32{0}, []float32{1}, 0.1)
}

// referenceAdam is an independent scalar implementation for cross-checking.
type referenceAdam struct {
	m, v float64
	step int
	b1   float64
	b2   float64
	eps  float64
}

func (r *referenceAdam) apply(x, g, lr float64) float64 {
	r.step++
	r.m = r.b1*r.m + (1-r.b1)*g
	r.v = r.b2*r.v + (1-r.b2)*g*g
	mh := r.m / (1 - math.Pow(r.b1, float64(r.step)))
	vh := r.v / (1 - math.Pow(r.b2, float64(r.step)))
	return x - lr*mh/(math.Sqrt(vh)+r.eps)
}

func TestAdamMatchesReference(t *testing.T) {
	a := NewAdam(1, 1)
	ref := &referenceAdam{b1: 0.9, b2: 0.999, eps: 1e-8}
	rng := xrand.New(33)
	x := []float32{1.0}
	xRef := 1.0
	for i := 0; i < 200; i++ {
		g := rng.NormFloat64()
		a.BeginStep()
		a.ApplyRow(0, x, []float32{float32(g)}, 0.01)
		xRef = ref.apply(xRef, g, 0.01)
		if math.Abs(float64(x[0])-xRef) > 1e-4 {
			t.Fatalf("step %d: %v vs reference %v", i, x[0], xRef)
		}
	}
}

func TestAdamUntouchedRowsUnchanged(t *testing.T) {
	a := NewAdam(3, 2)
	rows := [][]float32{{1, 1}, {2, 2}, {3, 3}}
	a.BeginStep()
	a.ApplyRow(1, rows[1], []float32{1, 1}, 0.1)
	if rows[0][0] != 1 || rows[2][0] != 3 {
		t.Fatal("untouched rows changed")
	}
	if rows[1][0] == 2 {
		t.Fatal("touched row unchanged")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)^2 with Adam; must approach 3.
	a := NewAdam(1, 1)
	x := []float32{-5}
	for i := 0; i < 3000; i++ {
		g := 2 * (x[0] - 3)
		a.BeginStep()
		a.ApplyRow(0, x, []float32{g}, 0.05)
	}
	if math.Abs(float64(x[0])-3) > 0.05 {
		t.Fatalf("Adam did not converge: x = %v", x[0])
	}
	if a.Step() != 3000 {
		t.Fatalf("Step = %d", a.Step())
	}
}

func TestScaledLR(t *testing.T) {
	if got := ScaledLR(0.001, 1, 4); got != 0.001 {
		t.Fatalf("1 node: %v", got)
	}
	if got := ScaledLR(0.001, 2, 4); got != 0.002 {
		t.Fatalf("2 nodes: %v", got)
	}
	if got := ScaledLR(0.001, 4, 4); got != 0.004 {
		t.Fatalf("4 nodes: %v", got)
	}
	// The paper's cap: beyond 4 nodes the factor stays 4.
	if got := ScaledLR(0.001, 16, 4); got != 0.004 {
		t.Fatalf("16 nodes: %v", got)
	}
}

func TestPlateauReducesAfterTolerance(t *testing.T) {
	p := NewPlateau(0.1, 0.1, 1e-5, 3)
	if !p.Observe(0.5) {
		t.Fatal("first observation must improve")
	}
	for i := 0; i < 2; i++ {
		if p.Observe(0.4) {
			t.Fatal("non-improving observation reported as improvement")
		}
		if p.LR() != 0.1 {
			t.Fatalf("LR dropped early: %v", p.LR())
		}
	}
	p.Observe(0.4) // third bad epoch hits tolerance
	if math.Abs(p.LR()-0.01) > 1e-12 {
		t.Fatalf("LR after plateau = %v, want 0.01", p.LR())
	}
}

func TestPlateauResetOnImprovement(t *testing.T) {
	p := NewPlateau(0.1, 0.1, 1e-5, 2)
	p.Observe(0.5)
	p.Observe(0.4)
	p.Observe(0.6) // improvement resets the bad counter
	p.Observe(0.5)
	if p.LR() != 0.1 {
		t.Fatalf("LR = %v, want unchanged 0.1", p.LR())
	}
	best, ok := p.Best()
	if !ok || best != 0.6 {
		t.Fatalf("Best = %v %v", best, ok)
	}
}

func TestPlateauFloor(t *testing.T) {
	p := NewPlateau(0.1, 0.1, 0.01, 1)
	p.Observe(1.0)
	for i := 0; i < 10; i++ {
		p.Observe(0.5)
	}
	if p.LR() != 0.01 {
		t.Fatalf("LR = %v, want floor 0.01", p.LR())
	}
}

func TestPlateauBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPlateau(0, 0.1, 0, 1) },
		func() { NewPlateau(0.1, 1.5, 0, 1) },
		func() { NewPlateau(0.1, 0.1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkAdamApplyRow128(b *testing.B) {
	a := NewAdam(1, 128)
	row := make([]float32, 128)
	grad := make([]float32, 128)
	for i := range grad {
		grad[i] = 0.01
	}
	a.BeginStep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ApplyRow(0, row, grad, 0.001)
	}
}

// Property: the plateau schedule never raises the learning rate, never
// drops below the floor, and improvements never trigger a cut.
func TestQuickPlateauMonotone(t *testing.T) {
	f := func(seed uint64, obs []uint8) bool {
		p := NewPlateau(0.1, 0.5, 0.001, 2)
		prev := p.LR()
		rng := xrand.New(seed)
		for _, o := range obs {
			improved := p.Observe(float64(o) + rng.Float64())
			lr := p.LR()
			if lr > prev || lr < 0.001-1e-15 {
				return false
			}
			if improved && lr != prev {
				return false
			}
			prev = lr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScaledLR is monotone in nodes and flat at the cap.
func TestQuickScaledLRMonotone(t *testing.T) {
	f := func(nRaw, capRaw uint8) bool {
		n := int(nRaw%32) + 1
		cp := int(capRaw%8) + 1
		a := ScaledLR(0.001, n, cp)
		b := ScaledLR(0.001, n+1, cp)
		if b < a {
			return false
		}
		if n >= cp && a != 0.001*float64(cp) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
