// Package lint implements kgedist's project-specific static analyzers and
// the minimal go/analysis-style framework they run on.
//
// The repo has three hazard zones the Go toolchain cannot police on its own:
// internal/hogwild races by design (so the race detector needs every shared
// access to go through atomic accessors), internal/mpi collectives deadlock
// if any rank diverges, and reproducibility of the paper's experiments
// depends on every random draw flowing through internal/xrand. The analyzers
// in this package turn those conventions into build failures; cmd/kgelint is
// the driver and `make lint` / CI run it over the whole repo.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library only: the container this
// repo builds in has no module proxy access, so x/tools cannot be fetched.
// If the dependency ever becomes available the analyzers port over
// mechanically — each Run already takes a Pass with Fset/Files/TypesInfo.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //kgelint:ignore comments.
	Name string
	// Doc is the one-paragraph description shown by `kgelint -help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path of the package under analysis. Fixture
	// packages carry their directory-derived path; analyzers that scope by
	// package should also consider Pkg.Name().
	PkgPath string

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreSet maps file -> line -> analyzer names suppressed on that line. The
// wildcard name "all" suppresses every analyzer.
type ignoreSet map[string]map[int]map[string]bool

// ignoreDirective is the comment prefix that suppresses findings, e.g.
//
//	x := v.(float64) //kgelint:ignore floateq intentional bit-compare
//
// The directive applies to the line it sits on and the line directly below
// (so it can precede the flagged statement).
const ignoreDirective = "kgelint:ignore"

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := make(ignoreSet)
	add := func(file string, line int, name string) {
		if ig[file] == nil {
			ig[file] = make(map[int]map[string]bool)
		}
		if ig[file][line] == nil {
			ig[file][line] = make(map[string]bool)
		}
		ig[file][line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				pos := fset.Position(c.Pos())
				for _, name := range strings.Fields(rest) {
					// Names after the analyzer list are free-form rationale;
					// analyzer names are lowercase identifiers.
					if name != strings.ToLower(name) {
						break
					}
					add(pos.Filename, pos.Line, name)
					add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppresses(d Diagnostic) bool {
	byLine := ig[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	return names[d.Analyzer] || names["all"]
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) findings in stable file/line order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Syntax)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range diags {
			if !ig.suppresses(d) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// All returns the full kgedist analyzer suite in a deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		SeedRand,
		DivergentCollective,
		FloatEq,
		DroppedErr,
		CollectiveErr,
		AtomicRow,
	}
}
