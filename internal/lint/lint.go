// Package lint implements kgedist's project-specific static analyzers and
// the minimal go/analysis-style framework they run on.
//
// The repo has three hazard zones the Go toolchain cannot police on its own:
// internal/hogwild races by design (so the race detector needs every shared
// access to go through atomic accessors), internal/mpi collectives deadlock
// if any rank diverges, and reproducibility of the paper's experiments
// depends on every random draw flowing through internal/xrand. The analyzers
// in this package turn those conventions into build failures; cmd/kgelint is
// the driver and `make lint` / CI run it over the whole repo.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library only: the container this
// repo builds in has no module proxy access, so x/tools cannot be fetched.
// If the dependency ever becomes available the analyzers port over
// mechanically — each Run already takes a Pass with Fset/Files/TypesInfo.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //kgelint:ignore comments.
	Name string
	// Doc is the one-paragraph description shown by `kgelint -help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path of the package under analysis. Fixture
	// packages carry their directory-derived path; analyzers that scope by
	// package should also consider Pkg.Name().
	PkgPath string

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreEntry is one analyzer name of one //kgelint:ignore directive, with
// a usage bit so stale directives can be audited after the run.
type ignoreEntry struct {
	file string
	line int // line the directive sits on
	name string
	used bool
}

// ignoreSet indexes suppression entries by file -> line -> analyzer name.
// The wildcard name "all" suppresses every analyzer. Each directive covers
// its own line and the line directly below, so both lines map to the same
// entry.
type ignoreSet struct {
	byLine  map[string]map[int]map[string][]*ignoreEntry
	entries []*ignoreEntry
}

// ignoreDirective is the comment prefix that suppresses findings, e.g.
//
//	x := v.(float64) //kgelint:ignore floateq intentional bit-compare
//
// The directive applies to the line it sits on and the line directly below
// (so it can precede the flagged statement).
const ignoreDirective = "kgelint:ignore"

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int]map[string][]*ignoreEntry)}
	add := func(e *ignoreEntry, line int) {
		if ig.byLine[e.file] == nil {
			ig.byLine[e.file] = make(map[int]map[string][]*ignoreEntry)
		}
		if ig.byLine[e.file][line] == nil {
			ig.byLine[e.file][line] = make(map[string][]*ignoreEntry)
		}
		ig.byLine[e.file][line][e.name] = append(ig.byLine[e.file][line][e.name], e)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				pos := fset.Position(c.Pos())
				// The analyzer list is the leading run of known names (or
				// "all"); everything after the first unknown word is
				// free-form rationale. A directive whose FIRST word is
				// already unknown suppresses nothing — record that word so
				// the audit can flag the likely typo.
				fields := strings.Fields(rest)
				var names []string
				for _, w := range fields {
					if w != "all" && !analyzerNames[w] {
						break
					}
					names = append(names, w)
				}
				if len(names) == 0 && len(fields) > 0 {
					names = fields[:1]
				}
				for _, name := range names {
					e := &ignoreEntry{file: pos.Filename, line: pos.Line, name: name}
					ig.entries = append(ig.entries, e)
					add(e, pos.Line)
					add(e, pos.Line+1)
				}
			}
		}
	}
	return ig
}

// suppresses reports whether d is ignored, marking the matching directives
// as used for the stale-ignore audit.
func (ig *ignoreSet) suppresses(d Diagnostic) bool {
	byLine := ig.byLine[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[d.Pos.Line]
	hit := false
	for _, e := range names[d.Analyzer] {
		e.used = true
		hit = true
	}
	for _, e := range names["all"] {
		e.used = true
		hit = true
	}
	return hit
}

// UnusedIgnoreName is the pseudo-analyzer name under which stale
// //kgelint:ignore directives are reported. Audit findings are not
// themselves suppressible — a stale ignore hiding behind another ignore
// would rot forever.
const UnusedIgnoreName = "unusedignore"

// auditIgnores reports directives that suppressed nothing. An entry naming
// a specific analyzer is audited only when that analyzer actually ran (a
// partial run must not flush ignores belonging to the analyzers it
// skipped); the wildcard "all" and unknown analyzer names are audited only
// on full-suite runs.
func (ig *ignoreSet) auditIgnores(ran map[string]bool, fullSuite bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range ig.entries {
		if e.used {
			continue
		}
		var msg string
		switch {
		case e.name == "all":
			if !fullSuite {
				continue
			}
			msg = "stale //kgelint:ignore all: no analyzer reports on this or the next line; delete the directive"
		case ran[e.name]:
			msg = fmt.Sprintf("stale //kgelint:ignore %s: the analyzer no longer reports on this or the next line; delete the directive", e.name)
		case fullSuite:
			msg = fmt.Sprintf("//kgelint:ignore names unknown analyzer %q; fix the name or delete the directive", e.name)
		default:
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: UnusedIgnoreName,
			Pos:      token.Position{Filename: e.file, Line: e.line},
			Message:  msg,
		})
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) findings in stable file/line order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersAudited(pkgs, analyzers, false)
}

// RunAnalyzersAudited is RunAnalyzers plus an optional stale-ignore audit:
// with auditIgnores set, every //kgelint:ignore directive that suppressed
// nothing is reported under the "unusedignore" pseudo-analyzer, so dead
// suppressions cannot rot silently.
func RunAnalyzersAudited(pkgs []*Package, analyzers []*Analyzer, auditIgnores bool) ([]Diagnostic, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
		}
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Syntax)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range diags {
			if !ig.suppresses(d) {
				all = append(all, d)
			}
		}
		if auditIgnores {
			all = append(all, ig.auditIgnores(ran, fullSuite)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// analyzerNames is the registry of valid //kgelint:ignore targets, derived
// from All() at init.
var analyzerNames = func() map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}()

// All returns the full kgedist analyzer suite in a deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		SeedRand,
		DivergentCollective,
		FloatEq,
		DroppedErr,
		CollectiveErr,
		AtomicRow,
		PoolUse,
		ScratchHold,
		HotPathAlloc,
	}
}
