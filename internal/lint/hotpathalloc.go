package lint

// hotpathalloc proves the zero-alloc property of the training and serving
// hot paths at review time, complementing the AllocsPerRun==0 runtime pins
// from the perf harness. Entry points carry a `//kgelint:hotpath` doc
// directive (hogwild step, the exchanger, gradient quantize/decode, the
// serve batcher dispatch); the analyzer walks every function in the same
// package reachable from them through static calls and flags allocating
// constructs:
//
//   - make (slice/map/chan)
//   - append (may grow beyond cap)
//   - new
//   - slice or map composite literals
//   - calls into package fmt (formatting boxes arguments and builds strings)
//   - go statements (each spawn allocates a stack)
//
// Amortized warm-up allocation is the whole point of the pool/scratch
// design, so three exemptions keep the signal honest:
//
//   - a make/append under an if whose condition inspects cap/len or
//     compares against nil is a lazy-grow guard (allocates until warm, then
//     never again);
//   - an append whose base shows package-wide reuse evidence — the same
//     expression is truncated (`x = x[:...]`), rebuilt from zero length
//     (`append(x[:0], ...)`), or cap-guarded anywhere in the package — is
//     an amortized freelist/builder idiom;
//   - fmt calls inside panic arguments only run when the process is about
//     to die.
//
// A callee that is genuinely cold (error paths, constructors reached only
// through lazy-init guards) opts out of the walk with `//kgelint:coldpath`
// plus a rationale.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc flags allocating constructs reachable from
// //kgelint:hotpath entry points.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "walk functions reachable from //kgelint:hotpath entry points and flag " +
		"allocating constructs (make, append beyond cap, new, slice/map literals, fmt, " +
		"go) outside lazy-grow guards and reuse-evidenced append idioms",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var entries []*types.Func
	cold := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			switch funcDirective(fd) {
			case "hotpath":
				entries = append(entries, fn)
			case "coldpath":
				cold[fn] = true
			}
		}
	}
	if len(entries) == 0 {
		return nil
	}

	// Reachability over static intra-package calls, stopping at coldpath.
	reach := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), entries...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if reach[fn] {
			continue
		}
		reach[fn] = true
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || cold[callee] || reach[callee] {
				return true
			}
			if _, local := decls[callee]; local {
				queue = append(queue, callee)
			}
			return true
		})
	}

	evidence := reuseEvidence(pass)
	for fn := range reach {
		w := &hpFunc{pass: pass, evidence: evidence, fn: fn}
		w.scan(decls[fn].Body)
	}
	return nil
}

// funcDirective returns "hotpath", "coldpath" or "" from fd's doc comment.
func funcDirective(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case text == "kgelint:hotpath" || strings.HasPrefix(text, "kgelint:hotpath "):
			return "hotpath"
		case text == "kgelint:coldpath" || strings.HasPrefix(text, "kgelint:coldpath "):
			return "coldpath"
		}
	}
	return ""
}

// reuseEvidence collects the printed expressions the package demonstrably
// reuses: truncated in place, rebuilt from zero length, or cap-inspected.
func reuseEvidence(pass *Pass) map[string]bool {
	ev := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					se, ok := ast.Unparen(n.Rhs[i]).(*ast.SliceExpr)
					if !ok {
						continue
					}
					l, b := types.ExprString(lhs), types.ExprString(se.X)
					if l == b {
						ev[l] = true // x = x[:n] truncation
					}
				}
			case *ast.CallExpr:
				switch builtinName(pass, n) {
				case "append":
					if len(n.Args) > 0 {
						if se, ok := ast.Unparen(n.Args[0]).(*ast.SliceExpr); ok && isZeroLow(se) {
							ev[types.ExprString(se.X)] = true // append(x[:0], ...)
						}
					}
				case "cap":
					if len(n.Args) == 1 {
						ev[types.ExprString(n.Args[0])] = true // cap(x) inspected
					}
				}
			}
			return true
		})
	}
	return ev
}

// builtinName returns the builtin a call invokes ("make", "append", ...) or
// "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

func isZeroLow(se *ast.SliceExpr) bool {
	if se.Max != nil || se.Slice3 || se.High == nil {
		return false
	}
	lit, ok := ast.Unparen(se.High).(*ast.BasicLit)
	return ok && lit.Value == "0" && se.Low == nil
}

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

type hpFunc struct {
	pass     *Pass
	evidence map[string]bool
	fn       *types.Func

	guarded []posRange // bodies of lazy-grow guards
	inPanic []posRange // argument spans of panic calls
}

// scan walks one reachable function body and reports allocations.
func (w *hpFunc) scan(body *ast.BlockStmt) {
	// Pass 1: exemption regions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isGrowGuard(n) {
				// Both arms are exempt: whether the guard allocates when
				// capacity is short or when the freelist is empty, the
				// other path reuses, so the allocation amortizes away.
				w.guarded = append(w.guarded, posRange{n.Body.Pos(), n.Body.End()})
				if n.Else != nil {
					w.guarded = append(w.guarded, posRange{n.Else.Pos(), n.Else.End()})
				}
			}
		case *ast.CallExpr:
			if isPanicCall(n) {
				w.inPanic = append(w.inPanic, posRange{n.Lparen, n.Rparen + 1})
			}
		}
		return true
	})
	// Pass 2: allocating constructs.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
		case *ast.CompositeLit:
			switch w.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				w.reportf(n, "slice literal allocates")
			case *types.Map:
				w.reportf(n, "map literal allocates")
			}
		case *ast.GoStmt:
			w.reportf(n, "go statement allocates a goroutine stack per call")
		}
		return true
	})
}

// isGrowGuard reports whether an if statement is a lazy-grow guard: its
// init or condition inspects cap or len, or compares something against
// nil (`if cap(x) < n`, `if n := len(x); n > 0`, `if x == nil`).
func isGrowGuard(stmt *ast.IfStmt) bool {
	guard := false
	inspect := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				guard = true
			}
		case *ast.BinaryExpr:
			if op := n.Op.String(); op == "==" || op == "!=" {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
						guard = true
					}
				}
			}
		}
		return true
	}
	if stmt.Init != nil {
		ast.Inspect(stmt.Init, inspect)
	}
	ast.Inspect(stmt.Cond, inspect)
	return guard
}

func (w *hpFunc) reportf(n ast.Node, what string) {
	w.pass.Reportf(n.Pos(), "hot path (reachable from //kgelint:hotpath) %s; hoist to setup, reuse a pooled/scratch buffer, or mark the function //kgelint:coldpath with a rationale", what)
}

func (w *hpFunc) call(call *ast.CallExpr) {
	switch builtinName(w.pass, call) {
	case "make":
		if !inRanges(w.guarded, call.Pos()) {
			w.reportf(call, "calls make")
		}
		return
	case "new":
		if !inRanges(w.guarded, call.Pos()) {
			w.reportf(call, "calls new")
		}
		return
	case "append":
		if inRanges(w.guarded, call.Pos()) || len(call.Args) == 0 {
			return
		}
		base := ast.Unparen(call.Args[0])
		if se, ok := base.(*ast.SliceExpr); ok {
			if isZeroLow(se) || w.evidence[types.ExprString(se.X)] {
				return
			}
		}
		if w.evidence[types.ExprString(base)] {
			return
		}
		w.reportf(call, "append may grow beyond cap")
		return
	}
	if f := calleeFunc(w.pass, call); f != nil && funcPkgPath(f) == "fmt" {
		if !inRanges(w.inPanic, call.Pos()) {
			w.reportf(call, "calls fmt."+f.Name()+" which formats and allocates")
		}
	}
}
