package lint

// collectiveerr enforces the fault-tolerance contract of internal/mpi: every
// collective returns an error precisely so that a dead rank surfaces as
// *mpi.RankFailedError at the call site, and the shrink-and-continue
// recovery loop can only engage if that error propagates. A discarded
// collective error therefore doesn't just lose a diagnostic — it silently
// disables recovery and turns the next rendezvous into a guaranteed abort.
// Unlike droppederr, blank assignment (`_ = ...`, `x, _ := ...`) is NOT an
// accepted discard for these calls: there is no legitimate reason to ignore
// a rank failure outside the mpi package itself.

import (
	"go/ast"
	"go/types"
)

// CollectiveErr flags statements that discard the error result of an
// internal/mpi Comm or World method, including blank-identifier discards.
var CollectiveErr = &Analyzer{
	Name: "collectiveerr",
	Doc: "flag discarded error results of mpi.Comm/mpi.World methods (even " +
		"via _); rank failures must propagate for shrink-and-continue recovery",
	Run: runCollectiveErr,
}

func runCollectiveErr(pass *Pass) error {
	// The mpi package itself composes collectives out of other collectives
	// and owns the failure state; its internals are exempt.
	if pass.Pkg.Name() == "mpi" {
		return nil
	}
	report := func(call *ast.CallExpr, how string) {
		f := calleeFunc(pass, call)
		pass.Reportf(call.Pos(),
			"mpi collective %s %s its error result; a dead rank surfaces here, "+
				"and recovery needs the error propagated", f.Name(), how)
	}
	checkStmt := func(call *ast.CallExpr) {
		if collectiveErrIndex(pass, call) >= 0 {
			report(call, "discards")
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkStmt(call)
				}
			case *ast.DeferStmt:
				checkStmt(s.Call)
			case *ast.GoStmt:
				checkStmt(s.Call)
			case *ast.AssignStmt:
				// x, _ := c.AllReduceSum(...) — the error position must not
				// be the blank identifier.
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				idx := collectiveErrIndex(pass, call)
				if idx < 0 || idx >= len(s.Lhs) {
					return true
				}
				if id, ok := s.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					report(call, "blank-discards")
				}
			}
			return true
		})
	}
	return nil
}

// collectiveErrIndex returns the result-tuple index of the error returned by
// a method on internal/mpi's Comm or World, or -1 if the call is not such a
// method (or returns no error).
func collectiveErrIndex(pass *Pass, call *ast.CallExpr) int {
	f := calleeFunc(pass, call)
	if f == nil {
		return -1
	}
	if !isMethodOn(f, "internal/mpi", "Comm") && !isMethodOn(f, "internal/mpi", "World") {
		return -1
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}
