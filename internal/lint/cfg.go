package lint

// Intra-procedural control-flow graph over go/ast function bodies — the
// substrate the dataflow-capable analyzers (pooluse, scratchhold) run on.
// Each function body becomes a graph of basic blocks; a block holds the
// statements and condition expressions that execute straight-line, in
// order, and edges carry control into successor blocks.
//
// The builder covers the full statement grammar the repo uses: if/else,
// for (all three clauses, back edges), range, switch/type-switch with
// fallthrough, select, labeled statements with labeled break/continue,
// goto, and early returns. Two deliberate approximations keep the graph
// simple without costing the analyzers precision they need:
//
//   - Deferred statements are modeled as running once, in reverse
//     registration order, in the synthetic Exit block that every return
//     edge feeds. That is exactly when `defer pool.Put(buf)` releases its
//     buffer, which is the case the pooluse analyzer must get right.
//   - A panic call terminates its block with an edge to Exit, like a
//     return. Recover-based resumption is not modeled; no analyzer here
//     needs it.
//
// Function literals are NOT inlined into the enclosing graph: their bodies
// run under their caller's schedule, not this function's. Analyzers that
// care about closures (goroutine capture, escapes) inspect FuncLit nodes
// where they appear as ordinary expressions inside a block's nodes.

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Block is one basic block: nodes that execute consecutively with no
// internal branching. Nodes are statements and bare condition/tag
// expressions (ast.Expr), in execution order.
type Block struct {
	Index int
	// Kind labels the block's syntactic origin for diagnostics and the
	// CFG-shape tests: "entry", "exit", "if.then", "for.head", ...
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic sink every return/panic/fallthrough-off-the-end
	// edge reaches. Its Nodes are the function's deferred statements in
	// reverse registration order (LIFO, as the runtime executes them).
	Exit *Block
}

// String renders the graph one block per line ("i:kind -> j k") for tests
// and debugging.
func (g *CFG) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "%d:%s ->", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " %d", s.Index)
		}
		b.WriteString("\n")
	}
	return b.String()
}

type loopFrame struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select frames
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while the current point is unreachable

	frames []loopFrame
	// pendingLabel is the label naming the next loop/switch/select built,
	// consumed by the statement it precedes.
	pendingLabel string
	// labelBlocks maps label names to their target blocks (goto landing
	// sites and labeled-statement heads).
	labelBlocks map[string]*Block
	// fallthroughTo is the next case-body block while building a switch
	// clause.
	fallthroughTo *Block

	deferred []ast.Stmt
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:           &CFG{},
		labelBlocks: map[string]*Block{},
	}
	b.g.Entry = b.newBlock("entry")
	b.cur = b.g.Entry
	exit := b.newBlock("exit")
	b.g.Exit = exit
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	// Deferred statements run on every exit path, last registered first.
	for i := len(b.deferred) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.deferred[i])
	}
	b.renumber()
	return b.g
}

// renumber re-indexes blocks so Entry is 0, Exit is last, and the rest keep
// construction order — stable for the shape tests.
func (b *cfgBuilder) renumber() {
	blocks := b.g.Blocks
	sort.SliceStable(blocks, func(i, j int) bool {
		rank := func(blk *Block) int {
			switch blk {
			case b.g.Entry:
				return -1
			case b.g.Exit:
				return 1
			}
			return 0
		}
		return rank(blocks[i]) < rank(blocks[j])
	})
	for i, blk := range blocks {
		blk.Index = i
	}
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, materializing an orphan
// "unreachable" block for dead code so its nodes still exist in the graph.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// frameFor resolves a break/continue target frame, honoring labels.
func (b *cfgBuilder) frameFor(label string, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if needCont && f.cont == nil {
			continue
		}
		return f
	}
	return nil
}

// labelBlock returns (creating on demand) the landing block for a label.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labelBlocks[name] = blk
	return blk
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a landing site (for goto) and names the inner
		// loop/switch for labeled break/continue.
		target := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if f := b.frameFor(label, false); f != nil && b.cur != nil {
				b.edge(b.cur, f.brk)
			}
			b.cur = nil
		case "continue":
			if f := b.frameFor(label, true); f != nil && b.cur != nil {
				b.edge(b.cur, f.cont)
			}
			b.cur = nil
		case "goto":
			if b.cur != nil {
				b.edge(b.cur, b.labelBlock(label))
			}
			b.cur = nil
		case "fallthrough":
			if b.fallthroughTo != nil && b.cur != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.deferred = append(b.deferred, s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		join := b.newBlock("if.join")
		if head != nil {
			b.edge(head, then)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if s.Else != nil {
			els := b.newBlock("if.else")
			if head != nil {
				b.edge(head, els)
			}
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else if head != nil {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		// The RangeStmt node itself carries the ranged expression and the
		// key/value assignment for the analyzers.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock("select.after")
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		anyReach := false
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			kind := "select.case"
			if c.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			if head != nil {
				b.edge(head, blk)
			}
			b.cur = blk
			if c.Comm != nil {
				b.stmt(c.Comm)
			}
			b.stmtList(c.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
				anyReach = true
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		// An empty select blocks forever; one with clauses continues.
		if len(s.Body.List) > 0 && (anyReach || head != nil) {
			b.cur = after
		} else {
			b.cur = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.edge(b.cur, b.g.Exit)
			}
			b.cur = nil
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Unknown statement kinds still land in the block so analyzers see
		// their expressions.
		b.add(s)
	}
}

// switchClauses builds the shared case-fan shape of switch/type-switch.
// part extracts (guard nodes, body, isDefault) from a clause.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, part func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.cur
	after := b.newBlock("switch.after")
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		c := cc.(*ast.CaseClause)
		nodes, _, isDefault := part(c)
		kind := "switch.case"
		if isDefault {
			kind = "switch.default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		blk.Nodes = append(blk.Nodes, nodes...)
		if head != nil {
			b.edge(head, blk)
		}
		bodies[i] = blk
	}
	for i, cc := range clauses {
		c := cc.(*ast.CaseClause)
		_, body, _ := part(c)
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = bodies[i]
		b.stmtList(body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.fallthroughTo = nil
	// Without a default clause the tag may match nothing.
	if !hasDefault && head != nil {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// isPanicCall reports whether expr is a direct call to the panic builtin.
func isPanicCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
