package lint

// Forward dataflow over the CFG of cfg.go, plus the slice-alias lattice the
// pooluse analyzer interprets. The solver is a standard worklist fixpoint:
// block in-states join the out-states of predecessors, transfer functions
// apply node effects in order, and iteration stops when nothing changes.
// The lattices here are finite (sets of allocation sites and status bits),
// so termination is structural.
//
// Abstraction: every `pool.Get*` call site is one abstract cell. A binding
// maps a local variable to the cells it may alias, with a "derived" bit per
// cell recording that the variable holds a subslice whose backing-array
// start or capacity differs from the pooled buffer (re-slicing with a
// non-zero low bound or a 3-index cap clamp). Cell status is a may-bitset:
// once Put or transferred on any path, a later use is reported — exactly
// the "works on the happy path, races after the early return" bug class
// the runtime AllocsPerRun pins cannot see.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// forwardFlow runs the worklist fixpoint and returns the in-state of every
// block. newState seeds the entry; clone and merge define the lattice
// (merge reports whether dst changed); apply is the per-node transfer.
func forwardFlow[S any](g *CFG, newState func() S, clone func(S) S, merge func(dst, src S) bool, apply func(S, ast.Node)) map[*Block]S {
	in := map[*Block]S{g.Entry: newState()}
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		out := clone(in[blk])
		for _, n := range blk.Nodes {
			apply(out, n)
		}
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = clone(out)
				changed = true
			} else {
				changed = merge(cur, out)
			}
			if changed && !inWork[succ] {
				inWork[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// cellStatus is the may-state of one pooled buffer.
type cellStatus uint8

const (
	cellLive        cellStatus = 1 << iota // owned by this function
	cellReleased                           // returned to the pool via Put*
	cellTransferred                        // ownership handed to a //kgelint:transfer sink
)

// sliceBinding records which cells a variable may alias.
type sliceBinding struct {
	cells map[token.Pos]bool
	// derived marks cells for which this variable holds a derived subslice
	// (shifted start or clamped cap) rather than the buffer as pooled.
	derived map[token.Pos]bool
}

func (b *sliceBinding) clone() *sliceBinding {
	n := &sliceBinding{cells: map[token.Pos]bool{}, derived: map[token.Pos]bool{}}
	for c := range b.cells {
		n.cells[c] = true
	}
	for c := range b.derived {
		n.derived[c] = true
	}
	return n
}

// sliceState is the dataflow fact: variable bindings plus per-cell status.
type sliceState struct {
	vars  map[types.Object]*sliceBinding
	cells map[token.Pos]cellStatus
}

func newSliceState() *sliceState {
	return &sliceState{
		vars:  map[types.Object]*sliceBinding{},
		cells: map[token.Pos]cellStatus{},
	}
}

func (s *sliceState) clone() *sliceState {
	n := newSliceState()
	for v, b := range s.vars {
		n.vars[v] = b.clone()
	}
	for c, st := range s.cells {
		n.cells[c] = st
	}
	return n
}

// merge unions src into dst and reports whether dst changed.
func (s *sliceState) merge(src *sliceState) bool {
	changed := false
	for v, sb := range src.vars {
		db, ok := s.vars[v]
		if !ok {
			s.vars[v] = sb.clone()
			changed = true
			continue
		}
		for c := range sb.cells {
			if !db.cells[c] {
				db.cells[c] = true
				changed = true
			}
		}
		for c := range sb.derived {
			if !db.derived[c] {
				db.derived[c] = true
				changed = true
			}
		}
	}
	for c, st := range src.cells {
		if s.cells[c]|st != s.cells[c] {
			s.cells[c] |= st
			changed = true
		}
	}
	return changed
}

// bind replaces v's binding (strong update).
func (s *sliceState) bind(v types.Object, b *sliceBinding) {
	if b == nil {
		delete(s.vars, v)
		return
	}
	s.vars[v] = b
}

// newCell starts tracking the pooled buffer allocated at site, resetting
// any state a previous loop iteration left behind (the Get re-livens its
// own site).
func (s *sliceState) newCell(site token.Pos) *sliceBinding {
	s.cells[site] = cellLive
	return &sliceBinding{cells: map[token.Pos]bool{site: true}, derived: map[token.Pos]bool{}}
}

// setStatus applies a strong status update to every cell in b.
func (s *sliceState) setStatus(b *sliceBinding, st cellStatus) {
	for c := range b.cells {
		s.cells[c] = st
	}
}

// status returns the OR of the statuses of b's cells.
func (s *sliceState) status(b *sliceBinding) cellStatus {
	var st cellStatus
	for c := range b.cells {
		st |= s.cells[c]
	}
	return st
}
