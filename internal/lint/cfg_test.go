package lint

// Table-driven shape tests for the CFG builder: each case is a function
// body snippet whose expected graph is spelled out block-per-line in the
// (*CFG).String() format "index:kind -> successor indices". The snippets
// only need to parse, not type-check — buildCFG is pure syntax.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", file, 0)
	if err != nil {
		t.Fatalf("parsing snippet: %v\n%s", err, file)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
		// wantExitNodes counts deferred statements modeled in Exit.
		wantExitNodes int
	}{
		{
			name: "straight line",
			src:  "x := 1\n_ = x",
			want: []string{
				"0:entry -> 1",
				"1:exit ->",
			},
		},
		{
			name: "if with early return",
			src:  "if c {\nreturn\n}\nx := 1\n_ = x",
			want: []string{
				"0:entry -> 1 2",
				"1:if.then -> 3",
				"2:if.join -> 3",
				"3:exit ->",
			},
		},
		{
			name: "for with init cond post",
			src:  "for i := 0; i < 3; i++ {\n_ = i\n}",
			want: []string{
				"0:entry -> 1",
				"1:for.head -> 2 3",
				"2:for.body -> 4",
				"3:for.after -> 5",
				"4:for.post -> 1",
				"5:exit ->",
			},
		},
		{
			name: "range with continue and break",
			src:  "xs := []int{1}\nfor _, v := range xs {\nif v == 0 {\ncontinue\n}\nbreak\n}",
			want: []string{
				"0:entry -> 1",
				"1:range.head -> 2 3",
				"2:range.body -> 4 5",
				"3:range.after -> 6",
				"4:if.then -> 1",
				"5:if.join -> 3",
				"6:exit ->",
			},
		},
		{
			name: "switch with fallthrough and default",
			src:  "switch x := 1; x {\ncase 1:\nfallthrough\ncase 2:\n_ = x\ndefault:\nreturn\n}",
			want: []string{
				"0:entry -> 2 3 4",
				"1:switch.after -> 5",
				"2:switch.case -> 3",
				"3:switch.case -> 1",
				"4:switch.default -> 5",
				"5:exit ->",
			},
		},
		{
			name: "type switch without default leaks past the cases",
			src:  "switch y := x.(type) {\ncase int:\n_ = y\n}",
			want: []string{
				"0:entry -> 2 1",
				"1:switch.after -> 3",
				"2:switch.case -> 1",
				"3:exit ->",
			},
		},
		{
			name: "select with default",
			src:  "select {\ncase v := <-ch:\n_ = v\ndefault:\n}",
			want: []string{
				"0:entry -> 2 3",
				"1:select.after -> 4",
				"2:select.case -> 1",
				"3:select.default -> 1",
				"4:exit ->",
			},
		},
		{
			name: "defer runs in exit, panic edges to exit",
			src:  "defer done()\nif bad {\npanic(\"x\")\n}\nreturn",
			want: []string{
				"0:entry -> 1 2",
				"1:if.then -> 3",
				"2:if.join -> 3",
				"3:exit ->",
			},
			wantExitNodes: 1,
		},
		{
			name: "goto back to label",
			src:  "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}",
			want: []string{
				"0:entry -> 1",
				"1:label.loop -> 2 3",
				"2:if.then -> 1",
				"3:if.join -> 4",
				"4:exit ->",
			},
		},
		{
			name: "labeled break from nested infinite loops",
			src:  "outer:\nfor {\nfor {\nbreak outer\n}\n}\n_ = 1",
			want: []string{
				"0:entry -> 1",
				"1:label.outer -> 2",
				"2:for.head -> 3",
				"3:for.body -> 5",
				"4:for.after -> 8",
				"5:for.head -> 6",
				"6:for.body -> 4",
				"7:for.after -> 2",
				"8:exit ->",
			},
		},
		{
			name: "dead code after return is an orphan block",
			src:  "return\nx := 1\n_ = x",
			want: []string{
				"0:entry -> 2",
				"1:unreachable -> 2",
				"2:exit ->",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildCFG(parseBody(t, tc.src))
			got := strings.TrimSpace(g.String())
			want := strings.Join(tc.want, "\n")
			if got != want {
				t.Errorf("CFG shape mismatch\n got:\n%s\nwant:\n%s", got, want)
			}
			if len(g.Exit.Nodes) != tc.wantExitNodes {
				t.Errorf("exit block has %d nodes, want %d (deferred stmts)", len(g.Exit.Nodes), tc.wantExitNodes)
			}
			// Structural invariants: edges are symmetric and stay in-graph.
			inGraph := map[*Block]bool{}
			for _, blk := range g.Blocks {
				inGraph[blk] = true
			}
			for _, blk := range g.Blocks {
				for _, s := range blk.Succs {
					if !inGraph[s] {
						t.Errorf("block %d has out-of-graph successor", blk.Index)
					}
					found := false
					for _, p := range s.Preds {
						if p == blk {
							found = true
						}
					}
					if !found {
						t.Errorf("edge %d->%d missing back-pointer", blk.Index, s.Index)
					}
				}
			}
		})
	}
}
