package lint

// floateq flags == and != on floating-point operands. In a codebase whose
// whole point is trading numerical exactness for speed (quantization,
// lock-free updates, cost-model comparisons), exact float equality is
// almost always a latent bug: it encodes an assumption the next strategy
// change silently invalidates. Comparisons against an exact zero literal
// are allowed — "is this row still uninitialized/empty" is a legitimate
// bit-level question — as are approved approximate-comparison helpers
// (functions whose name contains "approx"). Deliberate bit-exact checks
// carry a //kgelint:ignore floateq comment with a rationale.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags exact floating-point equality comparisons.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on float operands outside approved approximate-equality " +
		"helpers; compare against a tolerance or justify with //kgelint:ignore floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	spans := declaredFuncSpans(pass)
	inApprovedHelper := func(pos token.Pos) bool {
		for _, s := range spans {
			if int(pos) >= s.lo && int(pos) < s.hi &&
				strings.Contains(strings.ToLower(s.name), "approx") {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass, be.X) && !isFloatOperand(pass, be.Y) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			if inApprovedHelper(be.Pos()) {
				return true
			}
			pass.Reportf(be.Pos(),
				"exact float comparison (%s): use a tolerance, compare math.Float32bits explicitly, or annotate //kgelint:ignore floateq", be.Op)
			return true
		})
	}
	return nil
}

func isFloatOperand(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
