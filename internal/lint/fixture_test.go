package lint

// analysistest-style fixture runner: each analyzer has a directory under
// testdata/ whose Go files carry `// want "regexp"` comments on the lines
// where the analyzer must fire. The runner type-checks the fixture exactly
// like cmd/kgelint checks real packages, runs the single analyzer, and
// demands a one-to-one match between findings and expectations — a missing
// diagnostic, an extra diagnostic, or a message mismatch all fail.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixtureExpectations maps file -> line -> unmatched want-regexps.
func fixtureExpectations(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	want := make(map[string]map[int][]*regexp.Regexp)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					if want[pos.Filename] == nil {
						want[pos.Filename] = make(map[int][]*regexp.Regexp)
					}
					want[pos.Filename][pos.Line] = append(want[pos.Filename][pos.Line], re)
				}
			}
		}
	}
	return want
}

// runFixture checks analyzer against testdata/<dir>.
func runFixture(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, dir, err)
	}
	want := fixtureExpectations(t, pkg)
	for _, d := range diags {
		res := want[d.Pos.Filename][d.Pos.Line]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		want[d.Pos.Filename][d.Pos.Line] = append(res[:matched], res[matched+1:]...)
	}
	for file, byLine := range want {
		for line, res := range byLine {
			for _, re := range res {
				t.Errorf("%s:%d: expected diagnostic matching %q never reported", file, line, re)
			}
		}
	}
}

func TestSeedRandFixture(t *testing.T)            { runFixture(t, SeedRand, "seedrand") }
func TestSeedRandXrandExemption(t *testing.T)     { runFixture(t, SeedRand, "xrand") }
func TestDivergentCollectiveFixture(t *testing.T) { runFixture(t, DivergentCollective, "divergent") }
func TestFloatEqFixture(t *testing.T)             { runFixture(t, FloatEq, "floateq") }
func TestDroppedErrFixture(t *testing.T)          { runFixture(t, DroppedErr, "droppederr") }
func TestCollectiveErrFixture(t *testing.T)       { runFixture(t, CollectiveErr, "collectiveerr") }
func TestAtomicRowFixture(t *testing.T)           { runFixture(t, AtomicRow, "hogwild") }
func TestPoolUseFixture(t *testing.T)             { runFixture(t, PoolUse, "pooluse") }
func TestScratchHoldFixture(t *testing.T)         { runFixture(t, ScratchHold, "scratchhold") }
func TestHotPathAllocFixture(t *testing.T)        { runFixture(t, HotPathAlloc, "hotpathalloc") }

// TestLoadRepoPackage smoke-tests the module loader against a real package.
func TestLoadRepoPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("module loading shells out to the go tool")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(wd, []string{"kgedist/internal/xrand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "kgedist/internal/xrand" {
		t.Fatalf("loaded %d packages, want exactly kgedist/internal/xrand", len(pkgs))
	}
	if pkgs[0].Types == nil || len(pkgs[0].Syntax) == 0 {
		t.Fatal("loaded package missing types or syntax")
	}
}

// TestAllRegistryComplete pins the analyzer suite: CI runs exactly these.
func TestAllRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"seedrand", "divergentcollective", "floateq", "droppederr", "collectiveerr", "atomicrow", "pooluse", "scratchhold", "hotpathalloc"} {
		if !names[want] {
			t.Fatalf("analyzer %q missing from All()", want)
		}
	}
}
