package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONSchema pins the machine-readable schema: field names, order and
// types are the contract editors/CI consume. Changing this output breaks
// downstream tooling — the test must be updated deliberately, not
// incidentally.
func TestJSONSchema(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "pooluse",
		Pos:      token.Position{Filename: "internal/mpi/algos.go", Line: 42, Column: 7},
		Message:  "double Put of pooled buffer",
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/mpi/algos.go",
    "line": 42,
    "col": 7,
    "analyzer": "pooluse",
    "message": "double Put of pooled buffer"
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("JSON schema drifted\n got: %s\nwant: %s", got, want)
	}
}

// TestJSONEmptyIsArray: no findings must still be a JSON array, never null.
func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}
}

// TestSuppressionDiffs checks both directions: adding an ignore for a live
// finding and deleting a stale one.
func TestSuppressionDiffs(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	src := "package x\n\nvar a = b //kgelint:ignore floateq old rationale\n"
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{
			Analyzer: "pooluse",
			Pos:      token.Position{Filename: file, Line: 3, Column: 1},
			Message:  "escaping buffer",
		},
		{
			Analyzer: UnusedIgnoreName,
			Pos:      token.Position{Filename: file, Line: 3, Column: 1},
			Message:  "stale ignore",
		},
	}
	var buf bytes.Buffer
	if err := WriteSuppressionDiffs(&buf, diags); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "//kgelint:ignore pooluse TODO: rationale") {
		t.Errorf("missing suppression suggestion:\n%s", out)
	}
	if !strings.Contains(out, "+var a = b\n") {
		t.Errorf("missing stale-directive removal suggestion:\n%s", out)
	}
}

// TestUnusedIgnoreAudit runs the full suite over a fixture carrying one
// live ignore, one stale ignore and one typo'd analyzer name, and checks
// the audit flushes exactly the dead ones.
func TestUnusedIgnoreAudit(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "unusedignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzersAudited([]*Package{pkg}, All(), true)
	if err != nil {
		t.Fatal(err)
	}
	var audit []Diagnostic
	for _, d := range diags {
		if d.Analyzer != UnusedIgnoreName {
			t.Errorf("unexpected non-audit finding: %s", d)
			continue
		}
		audit = append(audit, d)
	}
	if len(audit) != 2 {
		t.Fatalf("audit produced %d findings, want 2 (stale + unknown):\n%v", len(audit), audit)
	}
	if !strings.Contains(audit[0].Message, "stale //kgelint:ignore floateq") &&
		!strings.Contains(audit[1].Message, "stale //kgelint:ignore floateq") {
		t.Errorf("no stale-floateq audit finding in %v", audit)
	}
	foundUnknown := false
	for _, d := range audit {
		if strings.Contains(d.Message, "unknown analyzer") {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Errorf("no unknown-analyzer audit finding in %v", audit)
	}

	// A partial run must not flush ignores of analyzers it skipped.
	partial, err := RunAnalyzersAudited([]*Package{pkg}, []*Analyzer{SeedRand}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range partial {
		if d.Analyzer == UnusedIgnoreName {
			t.Errorf("partial run flushed an ignore it had no evidence about: %s", d)
		}
	}
}
