package lint

// divergentcollective catches the classic MPI deadlock: a collective call
// (AllReduceSum, AllGatherRows, Broadcast, ...) that only some ranks reach
// because control flow branched on rank-local data. internal/mpi's
// collectives all end in a full-world rendezvous, so a single diverging rank
// hangs every other rank forever — in CI that used to mean a 10-minute
// timeout with no diagnostic. The analyzer flags collective calls that are
// (a) lexically inside a conditional whose condition depends on the rank, or
// (b) downstream of a rank-dependent early exit in the same block.
//
// The mpi package itself is exempt: the collective *implementations*
// legitimately branch on rank (tree and ring algorithms) under the cover of
// their own rendezvous discipline.

import (
	"go/ast"
	"go/types"
	"strings"
)

// DivergentCollective flags mpi collectives guarded by rank-dependent
// control flow.
var DivergentCollective = &Analyzer{
	Name: "divergentcollective",
	Doc: "flag mpi collective calls inside conditionals or after early exits " +
		"that depend on rank-local data (divergent-collective deadlock)",
	Run: runDivergentCollective,
}

// collectiveNames is the full collective surface of internal/mpi. Keep in
// sync with the Comm methods that end in a rendezvous.
var collectiveNames = map[string]bool{
	"Barrier":          true,
	"Broadcast":        true,
	"AllReduceSum":     true,
	"AllReduceSumRD":   true,
	"AllGatherRows":    true,
	"AllGatherBytes":   true,
	"AllReduceScalar":  true,
	"ReduceScatterSum": true,
	"Gather":           true,
	"Scatter":          true,
}

func runDivergentCollective(pass *Pass) error {
	if pass.Pkg.Name() == "mpi" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &dcWalker{pass: pass, rankVars: map[types.Object]bool{}}
			w.collectRankVars(fd.Body)
			w.walkStmts(fd.Body.List, false)
		}
	}
	return nil
}

type dcWalker struct {
	pass *Pass
	// rankVars are local variables assigned (directly) from Comm.Rank().
	rankVars map[types.Object]bool
}

// collectRankVars records `r := c.Rank()`-style bindings in the function.
func (w *dcWalker) collectRankVars(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if !w.exprUsesRank(rhs, false) {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
					w.rankVars[obj] = true
				} else if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
					w.rankVars[obj] = true
				}
			}
		}
		return true
	})
}

// exprUsesRank reports whether expr depends on rank-local identity: a call
// to Comm.Rank, a variable assigned from it, or (heuristically) an
// identifier named "rank". followVars additionally matches the recorded
// rank-derived variables.
func (w *dcWalker) exprUsesRank(expr ast.Expr, followVars bool) bool {
	if expr == nil {
		return false
	}
	dep := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(w.pass, n); f != nil && f.Name() == "Rank" &&
				isMethodOn(f, "internal/mpi", "Comm") {
				dep = true
				return false
			}
		case *ast.Ident:
			if strings.EqualFold(n.Name, "rank") {
				dep = true
				return false
			}
			if followVars {
				if obj := w.pass.TypesInfo.Uses[n]; obj != nil && w.rankVars[obj] {
					dep = true
					return false
				}
			}
		}
		return true
	})
	return dep
}

func (w *dcWalker) condIsRankDependent(expr ast.Expr) bool {
	return w.exprUsesRank(expr, true)
}

// walkStmts traverses a statement list. divergent means control flow
// reaching these statements already depends on rank-local data.
func (w *dcWalker) walkStmts(stmts []ast.Stmt, divergent bool) {
	diverged := divergent
	for _, s := range stmts {
		w.walkStmt(s, diverged)
		// A rank-dependent guard that exits early makes everything after it
		// in this block conditionally reachable.
		if ifs, ok := s.(*ast.IfStmt); ok && !diverged {
			if w.condIsRankDependent(ifs.Cond) && blockTerminates(ifs.Body) {
				diverged = true
			}
		}
	}
}

func (w *dcWalker) walkStmt(s ast.Stmt, divergent bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, divergent)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, divergent)
		}
		w.reportCollectives(s.Cond, divergent)
		branchDiv := divergent || w.condIsRankDependent(s.Cond)
		w.walkStmts(s.Body.List, branchDiv)
		if s.Else != nil {
			w.walkStmt(s.Else, branchDiv)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, divergent)
		}
		bodyDiv := divergent || w.condIsRankDependent(s.Cond)
		w.walkStmts(s.Body.List, bodyDiv)
	case *ast.RangeStmt:
		w.walkStmts(s.Body.List, divergent)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, divergent)
		}
		tagDiv := divergent || (s.Tag != nil && w.condIsRankDependent(s.Tag))
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseDiv := tagDiv
			for _, e := range cc.List {
				if w.condIsRankDependent(e) {
					caseDiv = true
				}
			}
			w.walkStmts(cc.Body, caseDiv)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CaseClause).Body, divergent)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.walkStmts(c.(*ast.CommClause).Body, divergent)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, divergent)
	default:
		// Leaf statements: scan their expressions for collective calls and
		// enter function literals with a fresh context (their bodies run
		// under their caller's control flow, not this statement's).
		w.scanLeaf(s, divergent)
	}
}

func (w *dcWalker) scanLeaf(s ast.Stmt, divergent bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, false)
			return false
		case *ast.CallExpr:
			w.reportIfCollective(n, divergent)
		}
		return true
	})
}

// reportCollectives flags collective calls buried inside an expression
// (e.g. an if-condition) when already divergent.
func (w *dcWalker) reportCollectives(expr ast.Expr, divergent bool) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, false)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.reportIfCollective(call, divergent)
		}
		return true
	})
}

func (w *dcWalker) reportIfCollective(call *ast.CallExpr, divergent bool) {
	if !divergent {
		return
	}
	f := calleeFunc(w.pass, call)
	if f == nil || !collectiveNames[f.Name()] || !isMethodOn(f, "internal/mpi", "Comm") {
		return
	}
	w.pass.Reportf(call.Pos(),
		"mpi collective %s reached under rank-dependent control flow: every rank must make the same collective calls in the same order or the rendezvous deadlocks", f.Name())
}
