package lint

// Package loading without golang.org/x/tools/go/packages: `go list -export
// -deps -json` resolves the build graph and compiles export data, the target
// packages are parsed from source, and go/types checks them against the
// export data of their dependencies via go/importer's gc lookup hook. This
// is the classic pre-x/tools loading recipe and needs nothing beyond the
// standard library and the go tool already present in the build image.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over patterns and decodes the
// JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function from listed export data.
// importMap translates source-level import paths (vendoring, module major
// versions) to resolved ones before the export file is consulted.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load resolves patterns (e.g. "./...") relative to dir and returns the
// type-checked non-test packages of the current module. Test files are not
// analyzed: they legitimately hold exact float assertions and short-lived
// errors, and the analyzers target the production hazard zones.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	importMap := make(map[string]string)
	for _, lp := range listed {
		exports[lp.ImportPath] = lp.Export
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
	}
	// -deps lists dependencies first; keep only the module's own packages
	// as analysis targets.
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || len(lp.GoFiles) == 0 {
			continue
		}
		targets = append(targets, lp)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports, importMap))
	var pkgs []*Package
	for _, lp := range targets {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory of Go files outside the module's
// package graph — the fixture loader behind the analyzer tests. Imports are
// resolved exactly as in Load, by asking the go tool for export data of
// whatever the fixture files import.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
		names = append(names, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Resolve every import of the fixture via export data.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := make(map[string]string)
	importMap := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			exports[lp.ImportPath] = lp.Export
			for from, to := range lp.ImportMap {
				importMap[from] = to
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports, importMap))
	info := newTypesInfo()
	// The fixture's import path embeds the directory name so analyzers that
	// scope by package path (e.g. atomicrow on .../hogwild) see it.
	pkgPath := "kgedist/fixture/" + filepath.Base(dir)
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s (%s): %v", dir, strings.Join(names, ","), err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
