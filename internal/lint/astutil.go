package lint

// Shared AST/type resolution helpers for the analyzers.

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call invokes, or nil
// for calls through function-typed variables, conversions and built-ins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (e.g. time.Now).
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f ("" for
// builtins and error.Error).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isMethodOn reports whether f is a method whose receiver's named type is
// typeName declared in a package whose import path ends with pkgSuffix.
func isMethodOn(f *types.Func, pkgSuffix, typeName string) bool {
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// blockTerminates reports whether the block's final statement leaves the
// enclosing statement list: return, break/continue/goto, or panic.
func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// enclosingFuncNames returns the names of all declared functions and methods
// in the package's files, keyed by the half-open position interval of their
// bodies. Used to exempt approved helpers by name.
type funcSpan struct {
	name   string
	lo, hi int
}

func declaredFuncSpans(pass *Pass) []funcSpan {
	var spans []funcSpan
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			spans = append(spans, funcSpan{
				name: fd.Name.Name,
				lo:   int(fd.Body.Pos()),
				hi:   int(fd.Body.End()),
			})
		}
	}
	return spans
}
