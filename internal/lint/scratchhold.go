package lint

// scratchhold enforces the caller-owned-scratch rule from DESIGN.md §10:
// a function that receives a *model.Scratch, a *grad.Encoded, or a slice
// parameter tagged by a `//kgelint:scratch <params...>` doc directive
// borrows the buffer for the duration of the call only. Retaining it past
// return — storing it (or anything reachable from it) into package-level
// state, a struct field, a map or a pointee, sending it over a channel, or
// handing it to a spawned goroutine — lets two batches race on one scratch
// buffer, which is precisely the aliasing bug the hogwild trainer's
// per-worker scratch discipline exists to prevent.
//
// The analysis computes the intra-procedural may-alias closure of the
// scratch parameters (plain copies, field/element projections and reslices
// of reference type all alias their root) and then flags every statement
// that moves an alias somewhere that outlives the call. Returning a scratch
// parameter is legal: the caller already owns it.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchHold reports borrowed scratch parameters retained past return.
var ScratchHold = &Analyzer{
	Name: "scratchhold",
	Doc: "functions receiving *model.Scratch, *grad.Encoded or //kgelint:scratch-tagged " +
		"slice parameters borrow them for the call only; report stores to package/struct " +
		"state, channel sends and goroutine capture that retain them past return",
	Run: runScratchHold,
}

func runScratchHold(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			roots := scratchParams(pass, fd)
			if len(roots) == 0 {
				continue
			}
			w := &shFunc{pass: pass, alias: roots}
			w.closeAliases(fd.Body)
			w.check(fd.Body)
		}
	}
	return nil
}

// scratchParams returns the borrowed parameters of fd: map from parameter
// object to its name (used in diagnostics).
func scratchParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]string {
	tagged := map[string]bool{}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "kgelint:scratch")
			if !ok {
				continue
			}
			for _, name := range strings.Fields(rest) {
				tagged[name] = true
			}
		}
	}
	roots := map[types.Object]string{}
	if fd.Type.Params == nil {
		return roots
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if isScratchType(obj.Type()) || (tagged[name.Name] && isSliceType(obj.Type())) {
				roots[obj] = name.Name
			}
		}
	}
	return roots
}

// isScratchType reports *model.Scratch or *grad.Encoded.
func isScratchType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "Scratch":
		return strings.HasSuffix(path, "internal/model")
	case "Encoded":
		return strings.HasSuffix(path, "internal/grad")
	}
	return false
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

type shFunc struct {
	pass *Pass
	// alias maps each object that may alias a borrowed parameter to the
	// root parameter's name.
	alias map[types.Object]string
}

// refLike reports whether a value of type t can keep scratch memory alive:
// pointers, slices, maps, chans, interfaces and closures can; scalars and
// plain struct copies of scalars cannot.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// aliasRoot resolves expr to the borrowed parameter it may alias, if any.
func (w *shFunc) aliasRoot(expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	switch e := e.(type) {
	case *ast.Ident:
		if o := w.pass.TypesInfo.Uses[e]; o != nil {
			if root, ok := w.alias[o]; ok {
				return root, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		// A projection (s.Grad) only carries the borrow if the projected
		// value is itself reference-like.
		if !refLike(w.pass.TypesInfo.TypeOf(e)) {
			return "", false
		}
		return w.aliasRoot(e.X)
	case *ast.IndexExpr:
		if !refLike(w.pass.TypesInfo.TypeOf(e)) {
			return "", false
		}
		return w.aliasRoot(e.X)
	case *ast.SliceExpr:
		return w.aliasRoot(e.X)
	case *ast.StarExpr:
		if !refLike(w.pass.TypesInfo.TypeOf(e)) {
			return "", false
		}
		return w.aliasRoot(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return w.aliasRoot(e.X)
		}
	}
	return "", false
}

// closeAliases runs the alias closure to a fixpoint: every local assigned
// from a borrowed alias becomes a borrowed alias.
func (w *shFunc) closeAliases(body *ast.BlockStmt) {
	for {
		changed := false
		bind := func(id *ast.Ident, rhs ast.Expr) {
			if id == nil || id.Name == "_" || rhs == nil {
				return
			}
			root, ok := w.aliasRoot(rhs)
			if !ok {
				return
			}
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				if o, okUse := w.pass.TypesInfo.Uses[id]; okUse {
					obj = o
				}
			}
			if obj == nil {
				return
			}
			// Package-level variables are retention targets, not borrows:
			// keeping them out of the alias set lets checkStore flag the
			// store that put the scratch there.
			if obj.Parent() == w.pass.Pkg.Scope() {
				return
			}
			if _, seen := w.alias[obj]; !seen {
				w.alias[obj] = root
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							bind(id, n.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(name, n.Values[i])
					}
				}
			case *ast.RangeStmt:
				// range over a borrowed container: the value variable
				// borrows too (if reference-like).
				if _, ok := w.aliasRoot(n.X); ok {
					if id, okV := n.Value.(*ast.Ident); okV {
						bind(id, n.X)
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// check walks the body and reports every retention of a borrowed alias.
func (w *shFunc) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				root, ok := w.aliasRoot(n.Rhs[i])
				if !ok {
					continue
				}
				w.checkStore(n, lhs, root)
			}
		case *ast.SendStmt:
			if root, ok := w.aliasRoot(n.Value); ok {
				w.pass.Reportf(n.Pos(), "borrowed scratch %q sent over a channel; the receiver would retain it past this call's return", root)
			}
		case *ast.GoStmt:
			w.checkGo(n)
			return false
		}
		return true
	})
}

// checkStore reports a store of a borrowed alias into state that outlives
// the call: a package-level variable, or any field/element/pointee store.
// Stores INTO the borrowed object itself (e.Scales = ..., out[i] = ...) are
// exempt: mutating caller-owned scratch in place is exactly what a scratch
// callee is for, and the result goes back to the owner at return.
func (w *shFunc) checkStore(at ast.Node, lhs ast.Expr, root string) {
	if _, ok := w.aliasRootAnyType(lhs); ok {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[l]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[l]
		}
		// Local rebinding is fine; a package-level variable outlives the call.
		if obj != nil && obj.Parent() == w.pass.Pkg.Scope() {
			w.pass.Reportf(at.Pos(), "borrowed scratch %q stored in package-level variable %s; caller-owned scratch must not be retained past return", root, l.Name)
		}
	case *ast.SelectorExpr:
		w.pass.Reportf(at.Pos(), "borrowed scratch %q stored in field %s; caller-owned scratch must not be retained past return", root, types.ExprString(l))
	case *ast.IndexExpr:
		w.pass.Reportf(at.Pos(), "borrowed scratch %q stored in element %s; caller-owned scratch must not be retained past return", root, types.ExprString(l))
	case *ast.StarExpr:
		w.pass.Reportf(at.Pos(), "borrowed scratch %q stored through pointer %s; caller-owned scratch must not be retained past return", root, types.ExprString(l))
	}
}

// aliasRootAnyType resolves the base chain of expr to a borrowed alias,
// ignoring the projected type — used for store targets, where writing a
// scalar field of the borrow is as legal as writing a slice field.
func (w *shFunc) aliasRootAnyType(expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if o := w.pass.TypesInfo.Uses[e]; o != nil {
			if root, ok := w.alias[o]; ok {
				return root, true
			}
		}
	case *ast.SelectorExpr:
		return w.aliasRootAnyType(e.X)
	case *ast.IndexExpr:
		return w.aliasRootAnyType(e.X)
	case *ast.SliceExpr:
		return w.aliasRootAnyType(e.X)
	case *ast.StarExpr:
		return w.aliasRootAnyType(e.X)
	}
	return "", false
}

// checkGo reports borrowed aliases escaping into a spawned goroutine, as an
// argument or as a closure capture.
func (w *shFunc) checkGo(n *ast.GoStmt) {
	for _, arg := range n.Call.Args {
		if root, ok := w.aliasRoot(arg); ok {
			w.pass.Reportf(arg.Pos(), "borrowed scratch %q handed to a goroutine; it may outlive this call's return", root)
		}
	}
	if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if o := w.pass.TypesInfo.Uses[id]; o != nil {
				if root, ok := w.alias[o]; ok {
					w.pass.Reportf(id.Pos(), "borrowed scratch %q captured by a goroutine closure; it may outlive this call's return", root)
				}
			}
			return true
		})
	}
}
