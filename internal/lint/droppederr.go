package lint

// droppederr flags call statements that silently discard an error result.
// The trainer and experiment pipeline run unattended for virtual "cluster
// hours"; an ignored checkpoint-write or render error surfaces as a corrupt
// results table long after the cause is gone. Discards must be explicit
// (`_ = f()`), which both documents intent and survives review.
//
// Conventionally infallible writers are exempt: the fmt printers and the
// Write* methods of strings.Builder / bytes.Buffer, whose errors are
// documented to be always nil.

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags expression and defer statements that discard errors.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc: "flag call statements that discard an error result; use `_ = f()` " +
		"for intentional discards",
	Run: runDroppedErr,
}

func runDroppedErr(pass *Pass) error {
	check := func(call *ast.CallExpr, deferred bool) {
		if !returnsError(pass, call) || exemptErrDiscard(pass, call) {
			return
		}
		verb := "call"
		if deferred {
			verb = "deferred call"
		}
		pass.Reportf(call.Pos(), "%s discards its error result; handle it or assign to _ explicitly", verb)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.DeferStmt:
				check(s.Call, true)
			case *ast.GoStmt:
				check(s.Call, false)
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's result list includes an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func exemptErrDiscard(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass, call)
	if f == nil {
		return false
	}
	if funcPkgPath(f) == "fmt" {
		return true
	}
	return isMethodOn(f, "strings", "Builder") || isMethodOn(f, "bytes", "Buffer")
}
