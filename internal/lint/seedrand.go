package lint

// seedrand protects the reproducibility of the paper's results. Every
// experiment in this repo must be bit-replayable from a single uint64 seed,
// which holds only if all randomness flows through internal/xrand's
// splittable generator. Importing math/rand (global, mutex-guarded,
// non-splittable) or seeding anything from wall-clock time silently breaks
// replay — exactly the class of bug the abstract's "dynamic strategies"
// ablations cannot tolerate.

import (
	"go/ast"
	"go/token"
	"strings"
)

// SeedRand forbids math/rand imports and time-derived seeds outside
// internal/xrand.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc: "forbid math/rand and time-seeded randomness outside internal/xrand; " +
		"all RNG streams must derive from a run seed via xrand.New/Split",
	Run: runSeedRand,
}

// seedCalleeNames are constructors/seeders whose arguments must not be
// derived from the wall clock.
var seedCalleeNames = map[string]bool{
	"New":       true,
	"NewSource": true,
	"Seed":      true,
	"Split":     true,
	"NewZipf":   true,
}

func runSeedRand(pass *Pass) error {
	if pass.Pkg.Name() == "xrand" || strings.HasSuffix(pass.PkgPath, "internal/xrand") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/xrand breaks seeded reproducibility; use kgedist/internal/xrand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !seedCalleeNames[name] {
				return true
			}
			for _, arg := range call.Args {
				if pos, found := findTimeNow(pass, arg); found {
					pass.Reportf(pos,
						"time-derived seed passed to %s: seeds must come from the run configuration, not the wall clock", name)
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the syntactic name a call invokes ("" if anonymous).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// findTimeNow reports a call to time.Now anywhere under expr.
func findTimeNow(pass *Pass, expr ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(pass, call); f != nil && f.Name() == "Now" && funcPkgPath(f) == "time" {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
