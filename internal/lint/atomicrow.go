package lint

// atomicrow enforces the Hogwild memory discipline. internal/hogwild's
// worker threads share one parameter store and update it lock-free; after
// the race-clean refactor every shared row access must go through the
// atomic bit-pattern accessors (Matrix.AtomicRowLoad / AtomicRowAxpy /
// tensor.Atomic*). A plain Matrix.Row slice view or direct Data indexing in
// that package reintroduces the unsynchronized loads and stores that make
// `go test -race` unusable — which is precisely how the pre-refactor code
// failed. The rule is package-scoped: everywhere else Row is the right
// (fast, non-atomic) accessor.

import (
	"go/ast"
	"strings"
)

// AtomicRow forbids non-atomic parameter-row access inside internal/hogwild.
var AtomicRow = &Analyzer{
	Name: "atomicrow",
	Doc: "in internal/hogwild, forbid plain Matrix.Row views and Data indexing " +
		"on shared parameters; use the atomic row accessors",
	Run: runAtomicRow,
}

func runAtomicRow(pass *Pass) error {
	if pass.Pkg.Name() != "hogwild" && !strings.Contains(pass.PkgPath, "/hogwild") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Name() == "Row" &&
					isMethodOn(fn, "internal/tensor", "Matrix") {
					pass.Reportf(n.Pos(),
						"plain Matrix.Row view on shared hogwild parameters races with lock-free writers; use AtomicRowLoad/AtomicRowAxpy")
				}
			case *ast.SelectorExpr:
				if n.Sel.Name != "Data" {
					return true
				}
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Obj() != nil {
					if v := sel.Obj(); v.Pkg() != nil &&
						strings.HasSuffix(v.Pkg().Path(), "internal/tensor") {
						pass.Reportf(n.Pos(),
							"direct Matrix.Data access on shared hogwild parameters races with lock-free writers; use the atomic row accessors")
					}
				}
			}
			return true
		})
	}
	return nil
}
