// Fixture for the collectiveerr analyzer: discarded collective errors are
// flagged even when the discard is an explicit blank assignment; handled
// errors and non-collective calls are not.
package collectiveerrfix

import (
	"os"

	"kgedist/internal/mpi"
)

func statementDiscard(c *mpi.Comm, buf []float32) {
	c.AllReduceSum(buf, "grad") // want "mpi collective AllReduceSum discards its error result"
	c.Barrier()                 // want "mpi collective Barrier discards its error result"
}

func blankDiscardSingle(c *mpi.Comm) {
	_ = c.Barrier() // want "mpi collective Barrier blank-discards its error result"
}

func blankDiscardTuple(c *mpi.Comm, buf []float32) {
	cost, _ := c.AllReduceSum(buf, "grad") // want "mpi collective AllReduceSum blank-discards its error result"
	_ = cost
}

func blankDiscardRows(c *mpi.Comm, idx []int32, vals []float32) {
	ai, av, cost, _ := c.AllGatherRows(idx, vals, "rows") // want "mpi collective AllGatherRows blank-discards its error result"
	_, _, _ = ai, av, cost
}

func deferredDiscard(c *mpi.Comm) {
	defer c.Barrier() // want "mpi collective Barrier discards its error result"
}

func worldMethodDiscard(w *mpi.World, dead []int) {
	w.Shrink(dead) // want "mpi collective Shrink discards its error result"
}

func runErrDiscard(w *mpi.World) {
	w.RunErr(func(c *mpi.Comm) error { return c.Barrier() }) // want "mpi collective RunErr discards its error result"
}

func handled(c *mpi.Comm, buf []float32) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	cost, err := c.AllReduceSum(buf, "grad")
	if err != nil {
		return err
	}
	_ = cost
	return nil
}

func propagated(c *mpi.Comm) error {
	return c.Barrier()
}

func nonCollectiveBlankDiscardOK() {
	// Blank-discarding ordinary errors stays legal (droppederr territory).
	_ = os.Remove("stale.tmp")
}

func errorlessMethodsOK(c *mpi.Comm) {
	// Methods without an error result are no business of this analyzer.
	_ = c.Rank()
	c.Size()
}
