// Fixture for the droppederr analyzer: silently discarded error results are
// flagged; explicit discards, handled errors, and the conventionally
// infallible writers are not.
package droppederrfix

import (
	"fmt"
	"os"
	"strings"
)

func dropped() {
	os.Remove("stale.tmp") // want "call discards its error result"
}

func deferredDrop(f *os.File) {
	defer f.Close() // want "deferred call discards its error result"
}

func goroutineDrop() {
	go os.Remove("stale.tmp") // want "call discards its error result"
}

func explicitDiscard() {
	_ = os.Remove("stale.tmp")
}

func handled() error {
	if err := os.Remove("stale.tmp"); err != nil {
		return err
	}
	return nil
}

func exemptWriters(sb *strings.Builder) {
	fmt.Println("progress")
	fmt.Fprintf(os.Stderr, "progress\n")
	sb.WriteString("chunk")
}

func suppressed() {
	os.Remove("stale.tmp") //kgelint:ignore droppederr fixture: proves the escape hatch
}
