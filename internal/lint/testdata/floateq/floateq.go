// Fixture for the floateq analyzer: exact float equality is flagged except
// against a literal zero, inside approved approximate helpers, or when
// explicitly suppressed.
package floateqfix

func equality(a, b float64) bool {
	return a == b // want "exact float comparison"
}

func inequality(a, b float32) bool {
	return a != b // want "exact float comparison"
}

func constantCompare(a float64) bool {
	return a != 1.5 // want "exact float comparison"
}

func zeroGuard(a float64, row []float32) bool {
	return a == 0 && row[0] != 0 // exact-zero emptiness guards are allowed
}

func intsAreFine(a, b int) bool {
	return a == b
}

func approxEqual(a, b, tol float64) bool {
	if a == b { // approved helper: exact short-circuit is the point
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol
}

func suppressed(a, b float64) bool {
	return a == b //kgelint:ignore floateq fixture: bit-exact determinism check
}
