// Package scratchhold exercises the scratchhold analyzer: borrowed
// *model.Scratch / *grad.Encoded / //kgelint:scratch-tagged parameters may
// be read, written and passed on, but never retained past return.
package scratchhold

import (
	"kgedist/internal/grad"
	"kgedist/internal/model"
)

type worker struct {
	ws  *model.Scratch
	enc *grad.Encoded
	buf []float32
}

var lastScratch *model.Scratch

var registry = map[int]*grad.Encoded{}

// --- violations ---

func retainGlobal(ws *model.Scratch) {
	lastScratch = ws // want "package-level variable lastScratch"
}

func (w *worker) retainField(ws *model.Scratch) {
	w.ws = ws // want "stored in field w.ws"
}

// retainAlias launders the parameter through a local first.
func (w *worker) retainAlias(enc *grad.Encoded) {
	e := enc
	w.enc = e // want "stored in field w.enc"
}

// retainProjection keeps a slice reachable from the borrowed struct: the
// scratch memory is still pinned.
func (w *worker) retainProjection(enc *grad.Encoded) {
	w.buf = enc.Scales // want "stored in field w.buf"
}

func retainElement(enc *grad.Encoded, id int) {
	registry[id] = enc // want "stored in element registry"
}

func publish(ch chan *model.Scratch, ws *model.Scratch) {
	ch <- ws // want "sent over a channel"
}

func spawnArg(ws *model.Scratch) {
	go consume(ws) // want "handed to a goroutine"
}

func spawnCapture(ws *model.Scratch) {
	go func() {
		ws.ZeroGrads() // want "captured by a goroutine closure"
	}()
}

//kgelint:scratch out
func (w *worker) fillRetain(out []float32) {
	w.buf = out // want "stored in field w.buf"
	for i := range out {
		out[i] = 0
	}
}

// retainTail keeps a reslice of a tagged scratch param.
//
//kgelint:scratch tmp
func (w *worker) retainTail(tmp []float32) {
	tail := tmp[1:]
	w.buf = tail // want "stored in field w.buf"
}

// --- clean code: none of the below may fire ---

func consume(ws *model.Scratch) { ws.ZeroGrads() }

// passThrough returns the borrow to its owner — legal.
func passThrough(ws *model.Scratch) *model.Scratch {
	ws.ZeroGrads()
	return ws
}

// use reads through local aliases without retaining anything.
func use(enc *grad.Encoded) float32 {
	v := enc.Scales
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

// fill mutates the tagged scratch in place — the whole point of scratch.
//
//kgelint:scratch out
func fill(out []float32) {
	for i := range out {
		out[i] = 1
	}
}

// keep stores an untagged slice parameter: not scratch, not our business.
func (w *worker) keep(data []float32) {
	w.buf = data
}

// encodeInto mutates the borrowed destination in place, including its own
// fields — grad.QuantizeInto's shape. Stores INTO the borrow are legal.
func encodeInto(e *grad.Encoded, vals []float32) {
	e.Scales = e.Scales[:0]
	e.Scales = append(e.Scales, vals...)
	e.Width = len(vals)
	e.Indices[0] = 1
}

// delegate passes the borrow down the call chain — callees borrow too.
func delegate(ws *model.Scratch) {
	consume(ws)
}
