// Fixture proving the seedrand exemption: a package named xrand (the
// designated RNG home) may reference math/rand, e.g. to cross-validate its
// distributions. No diagnostics expected anywhere in this file.
package xrand

import "math/rand"

func fromMathRand(src rand.Source) int {
	return rand.New(src).Int()
}
