// Fixture for the atomicrow analyzer: inside a hogwild package, plain row
// views and direct Data access on the shared parameter matrices are flagged;
// the atomic accessors are the sanctioned path.
package hogwild

import "kgedist/internal/tensor"

func plainRowView(m *tensor.Matrix) []float32 {
	return m.Row(0) // want "plain Matrix.Row view"
}

func directData(m *tensor.Matrix) float32 {
	return m.Data[0] // want "direct Matrix.Data access"
}

func atomicAccessors(m *tensor.Matrix, dst, g []float32) {
	m.AtomicRowLoad(0, dst)
	m.AtomicRowAxpy(0, -0.05, g)
	_ = tensor.AtomicLoad(dst, 0)
}

func suppressed(m *tensor.Matrix) []float32 {
	return m.Row(0) //kgelint:ignore atomicrow fixture: proves the escape hatch
}
