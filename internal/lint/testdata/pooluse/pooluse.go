// Package pooluse exercises the pooluse analyzer: every ownership
// violation shape the contract in DESIGN §10 forbids, plus the clean
// idioms (loop reuse, defer Put, transfer sinks, exact reslices) that must
// stay silent. The `// want` comments pin the expected findings.
package pooluse

import "kgedist/internal/pool"

type holder struct{ buf []float32 }

type msg struct{ payload []float32 }

type envelope struct{ f32 []float32 }

var global []float32

func borrow(s []float32) float32 { return s[0] }

// handoff models a documented ownership-transfer sink, like mpi's
// point-to-point send: the callee (or its peer) Puts the buffer.
//
//kgelint:transfer
func handoff(dst int, payload []float32) { _, _ = dst, payload }

//kgelint:transfer
func post(e envelope) { _ = e }

// --- violations ---

func useAfterPut(n int) float32 {
	buf := pool.GetF32(n)
	pool.PutF32(buf)
	return buf[0] // want "use of pooled buffer after Put"
}

func doublePut(n int) {
	buf := pool.GetF32(n)
	pool.PutF32(buf)
	pool.PutF32(buf) // want "double Put of pooled buffer"
}

func putDerived(n int) {
	buf := pool.GetF32(n)
	tail := buf[1:]
	pool.PutF32(tail) // want "Put of a derived subslice"
}

func resliceChain(n int) {
	x := pool.GetF32(n)
	y := x[1:]
	z := y[:1]
	pool.PutF32(z) // want "Put of a derived subslice"
}

func putCapClamped(n int) {
	buf := pool.GetF32(n)
	pool.PutF32(buf[:n:n]) // want "Put of a derived subslice"
}

func escapeField(h *holder, n int) {
	buf := pool.GetF32(n)
	h.buf = buf // want "stored outside the owning function"
}

func escapeGlobal(n int) {
	global = pool.GetF32(n) // want "stored in package-level variable global"
}

func escapeSend(ch chan []float32, n int) {
	buf := pool.GetF32(n)
	ch <- buf // want "sent over a channel"
}

func escapeReturn(n int) []float32 {
	buf := pool.GetF32(n)
	return buf // want "returned to the caller"
}

func escapeLit(n int) msg {
	buf := pool.GetF32(n)
	m := msg{payload: buf} // want "escapes into a composite literal"
	return m
}

func escapeGoArg(n int) {
	buf := pool.GetF32(n)
	go borrow(buf) // want "handed to a goroutine"
}

func escapeGoCapture(n int) {
	buf := pool.GetF32(n)
	go func() {
		buf[0] = 1 // want "captured by a goroutine"
	}()
}

// earlyReturnPut releases on the error path only; the fallthrough use is a
// may-use-after-Put.
func earlyReturnPut(n int, fail bool) float32 {
	buf := pool.GetF32(n)
	if fail {
		pool.PutF32(buf)
	}
	return buf[0] // want "use of pooled buffer after Put"
}

// loopUseAfterPut Puts at the bottom of the loop and reads at the top of
// the next iteration.
func loopUseAfterPut(iters, n int) {
	buf := pool.GetF32(n)
	for i := 0; i < iters; i++ {
		buf[0] = float32(i) // want "use of pooled buffer after Put"
		pool.PutF32(buf)    // want "double Put of pooled buffer"
	}
}

func deferDoublePut(n int) {
	buf := pool.GetF32(n)
	defer pool.PutF32(buf) // want "double Put of pooled buffer"
	pool.PutF32(buf)
}

func useAfterTransfer(n int) float32 {
	buf := pool.GetF32(n)
	handoff(1, buf)
	return buf[0] // want "after its ownership was transferred"
}

func putAfterTransfer(n int) {
	buf := pool.GetF32(n)
	handoff(1, buf)
	pool.PutF32(buf) // want "ownership was already transferred"
}

func appendRegrow(n int) {
	buf := pool.GetF32(n)
	buf = append(buf, 1) // want "append to a pooled buffer"
	pool.PutF32(buf)
}

// --- clean code: none of the below may fire ---

// loopClean gets and puts a fresh buffer each iteration; the Get re-livens
// its allocation site across the back edge.
func loopClean(iters, n int) float32 {
	var acc float32
	for i := 0; i < iters; i++ {
		buf := pool.GetF32(n)
		acc += buf[0]
		pool.PutF32(buf)
	}
	return acc
}

// deferPut is the canonical shape: the deferred Put runs at exit, after
// every use.
func deferPut(n int) float32 {
	buf := pool.GetF32(n)
	defer pool.PutF32(buf)
	return buf[0]
}

// resliceClean keeps the zero-based prefix: pool.Put re-extends to cap, so
// Put(x[:k]) recycles the full buffer.
func resliceClean(n int) {
	x := pool.GetF32(n)
	y := x[:1]
	pool.PutF32(y)
}

// shadowing: the inner buf is a distinct object with its own cell.
func shadowing(n int) {
	buf := pool.GetF32(n)
	{
		buf := pool.GetF32(n)
		pool.PutF32(buf)
	}
	pool.PutF32(buf)
}

// branchesClean releases on every path exactly once.
func branchesClean(n int, cond bool) {
	buf := pool.GetF32(n)
	if cond {
		buf[0] = 1
		pool.PutF32(buf)
		return
	}
	pool.PutF32(buf)
}

// transferClean moves ownership through the annotated sink.
func transferClean(n int) {
	buf := pool.GetF32Uninit(n)
	handoff(1, buf)
}

// transferLit moves ownership through a composite literal handed to the
// sink — mpi's `c.send(dst, message{f32: out})` shape.
func transferLit(n int) {
	buf := pool.GetF32Uninit(n)
	post(envelope{f32: buf})
}

// clean is an ordinary borrow-and-release lifecycle.
func clean(n int) float32 {
	buf := pool.GetF32Uninit(n)
	for i := range buf {
		buf[i] = float32(i)
	}
	v := borrow(buf)
	pool.PutF32(buf)
	return v
}
