// Fixture for the divergentcollective analyzer: collective calls reached
// only by some ranks must be flagged; uniform call sequences must not.
package divfix

import "kgedist/internal/mpi"

func insideIf(c *mpi.Comm, buf []float32) {
	if c.Rank() == 0 {
		c.AllReduceSum(buf, "bad") // want "rank-dependent control flow"
	}
}

func insideElse(c *mpi.Comm, buf []float32) {
	if c.Rank() == 0 {
		buf[0] = 1
	} else {
		c.Broadcast(buf, 0) // want "rank-dependent control flow"
	}
}

func viaVariable(c *mpi.Comm, buf []float32) {
	myID := c.Rank()
	if myID > 1 {
		c.Broadcast(buf, 0) // want "rank-dependent control flow"
	}
}

func earlyReturn(c *mpi.Comm) {
	if c.Rank() == 0 {
		return
	}
	c.Barrier() // want "rank-dependent control flow"
}

func rankBoundedLoop(c *mpi.Comm) {
	for i := 0; i < c.Rank(); i++ {
		c.Barrier() // want "rank-dependent control flow"
	}
}

func rankSwitch(c *mpi.Comm, buf []float32) {
	switch c.Rank() {
	case 0:
		c.AllReduceSum(buf, "bad") // want "rank-dependent control flow"
	default:
		buf[0] = 1
	}
}

func uniform(c *mpi.Comm, buf []float32) {
	c.AllReduceSum(buf, "good")
	if c.Rank() == 0 {
		buf[0] = 1 // rank-local work without collectives is fine
	}
	c.Barrier()
	for i := 0; i < 3; i++ {
		c.Broadcast(buf, 0)
	}
}

func uniformClosurePerRank(w *mpi.World, buf []float32) {
	// The canonical pattern: every rank's goroutine runs the same body, so
	// the collectives inside the closure are uniform.
	w.Run(func(c *mpi.Comm) {
		c.AllReduceSum(buf, "good")
	})
}

func suppressed(c *mpi.Comm, buf []float32) {
	if c.Rank() == 0 {
		//kgelint:ignore divergentcollective fixture: proves the escape hatch
		c.AllReduceSum(buf, "ok")
	}
}
