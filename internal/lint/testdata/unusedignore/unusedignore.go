// Package unusedignore exercises the stale-ignore audit: one directive
// that earns its keep, one that suppresses nothing, and one naming an
// analyzer that does not exist.
package unusedignore

// live: floateq fires here and the directive suppresses it.
func cmp(a, b float64) bool {
	return a == b //kgelint:ignore floateq deliberate bit-exact compare for the fixture
}

// stale: ints compare exactly; floateq never fires on this line.
func fine(a, b int) bool {
	return a == b //kgelint:ignore floateq nothing to suppress here
}

// unknown: the analyzer name is typo'd, so this can never suppress.
func typo(a, b int) bool {
	return a == b //kgelint:ignore floateqq misspelled analyzer name
}
