// Package hotpathalloc exercises the hotpathalloc analyzer: allocating
// constructs reachable from //kgelint:hotpath entry points are flagged,
// while lazy-grow guards, reuse-evidenced appends, panic formatting,
// //kgelint:coldpath callees and unreachable functions stay silent.
package hotpathalloc

import "fmt"

type ring struct {
	buf   []float32
	stage []float32
	out   []float32
}

// --- violations ---

//kgelint:hotpath
func (r *ring) step(n int) {
	tmp := make([]float32, n) // want "calls make"
	p := new(ring)            // want "calls new"
	xs := []int{n}            // want "slice literal allocates"
	_, _, _ = tmp, p, xs
	r.helper(n)
	r.cold(n)
}

// helper is not annotated but is reachable from step, so it is scanned.
func (r *ring) helper(n int) {
	r.buf = append(r.buf, 1) // want "append may grow beyond cap"
	m := map[int]int{}       // want "map literal allocates"
	_ = m
	fmt.Println(n) // want "calls fmt.Println"
}

//kgelint:hotpath
func (r *ring) dispatchBad(n int) {
	go r.helper(n) // want "go statement allocates"
}

// --- clean code: none of the below may fire ---

// grow allocates only under cap/nil lazy-grow guards: amortized warm-up.
//
//kgelint:hotpath
func (r *ring) grow(n int) {
	if cap(r.stage) < n {
		r.stage = make([]float32, n)
	}
	if r.buf == nil {
		r.buf = make([]float32, n)
	}
	r.stage = r.stage[:n]
}

// pop takes from a freelist, materializing on a miss — the allocation sits
// in the else arm of the len guard and amortizes away just the same.
//
//kgelint:hotpath
func (r *ring) pop() []float32 {
	var row []float32
	if n := len(r.out); n > 0 {
		row = r.out[:n]
	} else {
		row = make([]float32, 8)
	}
	return row
}

// accumulate appends to a buffer the package demonstrably reuses (grow
// truncates r.stage in place).
//
//kgelint:hotpath
func (r *ring) accumulate(v float32) {
	r.stage = append(r.stage, v)
}

// rebuild restarts from length zero on a retained buffer.
//
//kgelint:hotpath
func (r *ring) rebuild(v float32) {
	r.out = append(r.out[:0], v)
}

// checkArg formats only on the way into a panic.
//
//kgelint:hotpath
func (r *ring) checkArg(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative batch %d", n))
	}
}

// apply is allocation-free.
//
//kgelint:hotpath
func (r *ring) apply(lr float32) {
	for i := range r.buf {
		r.buf[i] *= lr
	}
}

// cold is reachable from step but opted out: failure/setup path.
//
//kgelint:coldpath runs once per reconfiguration, not per batch
func (r *ring) cold(n int) {
	s := make([]float32, n)
	_ = s
}

// free is not reachable from any hotpath entry point.
func free(n int) []int {
	return make([]int, n)
}
