// Fixture for the seedrand analyzer: math/rand imports and wall-clock
// seeding must be flagged everywhere outside internal/xrand.
package seedrandfix

import (
	"math/rand" // want "import of math/rand outside internal/xrand"
	"time"

	"kgedist/internal/xrand"
)

func timeSeededSource() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "time-derived seed passed to NewSource"
}

func reseeded(r *rand.Rand) {
	r.Seed(time.Now().Unix()) // want "time-derived seed passed to Seed"
}

func xrandFromClock() *xrand.RNG {
	return xrand.New(uint64(time.Now().UnixNano())) // want "time-derived seed passed to New"
}

func constantSeedIsFine() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func timingIsFine() time.Time {
	// time.Now outside a seeding call is legitimate (wall-clock benchmarks).
	return time.Now()
}

func suppressed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) //kgelint:ignore seedrand fixture: proves the escape hatch
}
