package lint

// pooluse enforces the internal/pool ownership contract (DESIGN.md §10)
// with the CFG/dataflow engine: every pool.Get* result is tracked through
// assignments, re-slices and branches, and the analyzer reports
//
//   - use of a buffer after pool.Put* released it (on any path),
//   - double Put of the same buffer,
//   - Put of a derived subslice (shifted start or clamped cap — the pool
//     would recycle the wrong extent),
//   - append to a pooled buffer (regrowth silently detaches it from the
//     pooled backing array, so the later Put recycles a stale buffer),
//   - Get results escaping the function — stored into struct fields,
//     globals or composite literals, sent over channels, returned, or
//     captured by goroutines — without a documented ownership transfer.
//
// Ownership legally leaves a function through a sink annotated with a
// `//kgelint:transfer` directive on its declaration (same package), e.g.
// mpi's point-to-point send, whose single receiver consumes and Puts the
// staging buffer. Arguments of such calls are treated as moved: the cells
// stop being function-owned and any later use is reported.
//
// The analysis is intra-procedural and may-based: a buffer released on one
// branch is considered released at the join, which is exactly the
// early-return/error-path shape that reintroduces use-after-Put races.

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolUse tracks pool.Get* buffers through the CFG and reports ownership
// violations.
var PoolUse = &Analyzer{
	Name: "pooluse",
	Doc: "track pool.Get*/Put* ownership through assignments, reslices and " +
		"branches; report use-after-Put, double Put, Put of derived subslices, " +
		"append regrowth, and escaping buffers without a //kgelint:transfer sink",
	Run: runPoolUse,
}

func runPoolUse(pass *Pass) error {
	// The pool implementation itself manipulates raw free lists.
	if strings.HasSuffix(pass.PkgPath, "internal/pool") {
		return nil
	}
	transfer := transferSinks(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &puFunc{pass: pass, transfer: transfer}
			g := buildCFG(fd.Body)
			in := forwardFlow(g,
				newSliceState,
				(*sliceState).clone,
				(*sliceState).merge,
				func(st *sliceState, n ast.Node) { w.apply(st, n) },
			)
			// Reporting pass over the stable fixpoint.
			w.report = true
			for _, blk := range g.Blocks {
				st, ok := in[blk]
				if !ok {
					continue // unreachable
				}
				st = st.clone()
				for _, n := range blk.Nodes {
					w.apply(st, n)
				}
			}
		}
	}
	return nil
}

// transferSinks collects the functions in this package whose declarations
// carry a //kgelint:transfer directive: calls to them consume pooled
// buffers reachable through their arguments.
func transferSinks(pass *Pass) map[*types.Func]bool {
	sinks := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == "kgelint:transfer" {
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						sinks[fn] = true
					}
				}
			}
		}
	}
	return sinks
}

// puFunc analyzes one function body.
type puFunc struct {
	pass     *Pass
	transfer map[*types.Func]bool
	report   bool
}

func (w *puFunc) reportf(n ast.Node, format string, args ...any) {
	if w.report {
		w.pass.Reportf(n.Pos(), format, args...)
	}
}

func (w *puFunc) obj(id *ast.Ident) types.Object {
	if o := w.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return w.pass.TypesInfo.Defs[id]
}

// poolCall classifies a call against internal/pool: returns "get", "put",
// or "".
func (w *puFunc) poolCall(call *ast.CallExpr) string {
	f := calleeFunc(w.pass, call)
	if f == nil || !strings.HasSuffix(funcPkgPath(f), "internal/pool") {
		return ""
	}
	switch {
	case strings.HasPrefix(f.Name(), "Get"):
		return "get"
	case strings.HasPrefix(f.Name(), "Put"):
		return "put"
	}
	return ""
}

func (w *puFunc) isTransferCall(call *ast.CallExpr) bool {
	f := calleeFunc(w.pass, call)
	return f != nil && w.transfer[f]
}

// binding resolves expr to the slice binding it denotes, if tracked.
// derivedExtra reports that expr itself re-slices the binding into a
// derived view (non-zero low bound or 3-index cap clamp).
func (w *puFunc) binding(st *sliceState, expr ast.Expr) (b *sliceBinding, derivedExtra bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if o := w.obj(e); o != nil {
			return st.vars[o], false
		}
	case *ast.SliceExpr:
		base, d := w.binding(st, e.X)
		if base == nil {
			return nil, false
		}
		return base, d || sliceIsDerived(e)
	}
	return nil, false
}

// sliceIsDerived reports whether the reslice changes the buffer's start or
// capacity: s[k:...] with k possibly non-zero, or a 3-index slice.
func sliceIsDerived(e *ast.SliceExpr) bool {
	if e.Max != nil || e.Slice3 {
		return true
	}
	if e.Low == nil {
		return false
	}
	if lit, ok := ast.Unparen(e.Low).(*ast.BasicLit); ok && lit.Value == "0" {
		return false
	}
	return true
}

// apply is the transfer function: it mutates st for node n and (when
// w.report is set) emits diagnostics.
func (w *puFunc) apply(st *sliceState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					w.bindIdent(st, name, rhs)
				}
			}
		}
	case *ast.ExprStmt:
		w.exprStmt(st, n.X)
	case *ast.DeferStmt:
		w.exprStmt(st, n.Call)
	case *ast.SendStmt:
		w.scanExpr(st, n.Chan)
		if b, _ := w.binding(st, n.Value); b != nil {
			w.checkStale(st, n.Value, b)
			if st.status(b)&cellLive != 0 {
				w.reportf(n, "pooled buffer sent over a channel without a documented ownership transfer; the receiver and the pool would race")
			}
		} else {
			w.scanExpr(st, n.Value)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if b, _ := w.binding(st, r); b != nil {
				w.checkStale(st, r, b)
				if st.status(b)&cellLive != 0 {
					w.reportf(r, "pooled buffer returned to the caller; pool ownership must not leave the function without a documented transfer")
				}
				continue
			}
			w.scanExpr(st, r)
		}
	case *ast.GoStmt:
		w.goStmt(st, n)
	case *ast.RangeStmt:
		w.scanExpr(st, n.X)
		for _, lv := range []ast.Expr{n.Key, n.Value} {
			if id, ok := lv.(*ast.Ident); ok && id.Name != "_" {
				if o := w.obj(id); o != nil {
					st.bind(o, nil)
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(st, n.X)
	case ast.Expr:
		w.scanExpr(st, n)
	case ast.Stmt:
		// Leaf statements the CFG does not special-case: scan embedded
		// expressions conservatively.
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				w.scanExpr(st, e)
				return false
			}
			return true
		})
	}
}

// exprStmt handles a call in statement position: Put, transfer sinks, or a
// plain call.
func (w *puFunc) exprStmt(st *sliceState, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		w.scanExpr(st, x)
		return
	}
	switch {
	case w.poolCall(call) == "put" && len(call.Args) == 1:
		w.putCall(st, call)
	case w.isTransferCall(call):
		w.transferArgs(st, call)
	default:
		w.scanExpr(st, call)
	}
}

// putCall processes pool.Put*(arg).
func (w *puFunc) putCall(st *sliceState, call *ast.CallExpr) {
	arg := call.Args[0]
	b, derivedExtra := w.binding(st, arg)
	if b == nil {
		w.scanExpr(st, arg)
		return
	}
	status := st.status(b)
	anyDerived := derivedExtra
	for c := range b.derived {
		if b.cells[c] {
			anyDerived = true
		}
	}
	switch {
	case anyDerived:
		w.reportf(call, "Put of a derived subslice of a pooled buffer; Put the original Get result (the pool keys on the backing array's full extent)")
	case status&cellReleased != 0:
		w.reportf(call, "double Put of pooled buffer; it already re-entered the pool on some path")
	case status&cellTransferred != 0:
		w.reportf(call, "Put of a pooled buffer whose ownership was already transferred; the new owner Puts it")
	}
	st.setStatus(b, cellReleased)
}

// transferArgs marks every tracked buffer reachable through the call's
// arguments as moved to the annotated sink.
func (w *puFunc) transferArgs(st *sliceState, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			o := w.obj(id)
			if o == nil {
				return true
			}
			b := st.vars[o]
			if b == nil {
				return true
			}
			w.checkStale(st, id, b)
			st.setStatus(b, cellTransferred)
			return true
		})
	}
}

// assign processes an assignment or short declaration.
func (w *puFunc) assign(st *sliceState, n *ast.AssignStmt) {
	// Tuple assignment from a single call: scan and kill.
	if len(n.Lhs) != len(n.Rhs) {
		for _, r := range n.Rhs {
			w.scanExpr(st, r)
		}
		for _, l := range n.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if o := w.obj(id); o != nil {
					st.bind(o, nil)
				}
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		rhs := n.Rhs[i]
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			w.bindIdent(st, id, rhs)
			continue
		}
		// Storing into a field, element or pointee: a live pooled buffer
		// escapes the function's ownership.
		if b, _ := w.binding(st, rhs); b != nil {
			w.checkStale(st, rhs, b)
			if st.status(b)&cellLive != 0 {
				w.reportf(n, "pooled buffer stored outside the owning function (field, element or pointee) without a documented ownership transfer")
			}
		} else {
			w.scanExpr(st, rhs)
		}
		w.scanExpr(st, lhs)
	}
}

// bindIdent evaluates rhs and binds id to the result.
func (w *puFunc) bindIdent(st *sliceState, id *ast.Ident, rhs ast.Expr) {
	o := w.obj(id)
	// A package-level variable outlives the call: binding a pooled buffer
	// to it is an escape, not an alias copy.
	pkgLevel := o != nil && w.pass.Pkg != nil && o.Parent() == w.pass.Pkg.Scope()
	if rhs == nil {
		if o != nil {
			st.bind(o, nil)
		}
		return
	}
	rhs = ast.Unparen(rhs)
	// x := pool.Get*(n): a fresh cell.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if w.poolCall(call) == "get" {
			for _, a := range call.Args {
				w.scanExpr(st, a)
			}
			if pkgLevel {
				w.reportf(id, "pooled buffer stored in package-level variable %s without a documented ownership transfer", id.Name)
			}
			if o != nil && id.Name != "_" {
				st.bind(o, st.newCell(call.Pos()))
			}
			return
		}
		// append(x, ...) with a pooled x: regrowth hazard.
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
			if b, _ := w.binding(st, call.Args[0]); b != nil {
				w.checkStale(st, call.Args[0], b)
				w.reportf(call, "append to a pooled buffer may regrow it and detach it from the pooled backing array; a later Put would recycle a stale buffer")
				for _, a := range call.Args[1:] {
					w.scanExpr(st, a)
				}
				if o != nil && id.Name != "_" {
					// The result may or may not alias the pooled cells.
					st.bind(o, b.clone())
				}
				return
			}
		}
	}
	// x := y or x := y[...]: alias copy.
	if b, derivedExtra := w.binding(st, rhs); b != nil {
		w.checkStale(st, rhs, b)
		if pkgLevel && st.status(b)&cellLive != 0 {
			w.reportf(id, "pooled buffer stored in package-level variable %s without a documented ownership transfer", id.Name)
		}
		nb := b.clone()
		if derivedExtra {
			for c := range nb.cells {
				nb.derived[c] = true
			}
		}
		if o != nil && id.Name != "_" {
			st.bind(o, nb)
		}
		return
	}
	w.scanExpr(st, rhs)
	if o != nil && id.Name != "_" {
		st.bind(o, nil)
	}
}

// checkStale reports a use of a buffer that already left this function's
// ownership on some path.
func (w *puFunc) checkStale(st *sliceState, n ast.Node, b *sliceBinding) {
	status := st.status(b)
	if status&cellReleased != 0 {
		w.reportf(n, "use of pooled buffer after Put returned it to the pool; another goroutine may already own it")
	} else if status&cellTransferred != 0 {
		w.reportf(n, "use of pooled buffer after its ownership was transferred")
	}
}

// scanExpr walks an expression for stale uses, nested transfer sinks and
// escaping composite literals.
func (w *puFunc) scanExpr(st *sliceState, expr ast.Expr) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			switch {
			case w.poolCall(m) == "put" && len(m.Args) == 1:
				w.putCall(st, m)
				return false
			case w.isTransferCall(m):
				// Scan non-argument parts (receiver chain), then move args.
				w.scanExpr(st, m.Fun)
				w.transferArgs(st, m)
				return false
			}
		case *ast.CompositeLit:
			w.compositeEscape(st, m)
			return false
		case *ast.FuncLit:
			// Closure bodies run later; flag only stale captures here.
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if id, ok := k.(*ast.Ident); ok {
					if o := w.obj(id); o != nil {
						if b := st.vars[o]; b != nil {
							w.checkStale(st, id, b)
						}
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if o := w.obj(m); o != nil {
				if b := st.vars[o]; b != nil {
					w.checkStale(st, m, b)
				}
			}
		}
		return true
	})
}

// compositeEscape reports live pooled buffers packed into a composite
// literal outside a transfer sink: the literal's lifetime is unknown.
func (w *puFunc) compositeEscape(st *sliceState, lit *ast.CompositeLit) {
	ast.Inspect(lit, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		o := w.obj(id)
		if o == nil {
			return true
		}
		b := st.vars[o]
		if b == nil {
			return true
		}
		w.checkStale(st, id, b)
		if st.status(b)&cellLive != 0 {
			w.reportf(id, "pooled buffer escapes into a composite literal without a documented ownership transfer")
		}
		return true
	})
}

// goStmt flags pooled buffers handed to or captured by a spawned goroutine.
func (w *puFunc) goStmt(st *sliceState, n *ast.GoStmt) {
	for _, arg := range n.Call.Args {
		if b, _ := w.binding(st, arg); b != nil {
			w.checkStale(st, arg, b)
			if st.status(b)&cellLive != 0 {
				w.reportf(arg, "pooled buffer handed to a goroutine without a documented ownership transfer")
			}
			continue
		}
		w.scanExpr(st, arg)
	}
	if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			o := w.obj(id)
			if o == nil {
				return true
			}
			if b := st.vars[o]; b != nil {
				w.checkStale(st, id, b)
				if st.status(b)&cellLive != 0 {
					w.reportf(id, "pooled buffer captured by a goroutine without a documented ownership transfer")
				}
			}
			return true
		})
	}
}
