package lint

// Machine-readable output for cmd/kgelint: a stable JSON schema for CI and
// editor integrations (-json), and unified-diff suppression suggestions
// (-diff) so a reviewer can see exactly what accepting a finding as
// intentional would look like before committing to it.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// JSONFinding is the wire form of one Diagnostic. The field set and tags
// are the public contract (pinned by TestJSONSchema); extend it, never
// rename or retype existing fields.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToJSONFindings converts diagnostics preserving RunAnalyzers' stable
// file/line order.
func ToJSONFindings(diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, len(diags))
	for i, d := range diags {
		out[i] = JSONFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return out
}

// WriteJSON writes the findings as one JSON array (always an array, even
// when empty, so consumers need no null handling).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSONFindings(diags))
}

// WriteSuppressionDiffs prints, per finding, a unified-diff hunk that would
// suppress it with a //kgelint:ignore directive (rationale left as TODO —
// the human accepting the finding supplies it). Stale-ignore audit findings
// suggest the inverse edit: removing the dead directive. The output is a
// review aid, not a patch to apply blindly.
func WriteSuppressionDiffs(w io.Writer, diags []Diagnostic) error {
	lines := map[string][]string{}
	for _, d := range diags {
		src, ok := lines[d.Pos.Filename]
		if !ok {
			data, err := os.ReadFile(d.Pos.Filename)
			if err != nil {
				return fmt.Errorf("lint: reading %s for -diff: %w", d.Pos.Filename, err)
			}
			src = strings.Split(string(data), "\n")
			lines[d.Pos.Filename] = src
		}
		if d.Pos.Line < 1 || d.Pos.Line > len(src) {
			continue
		}
		old := src[d.Pos.Line-1]
		var repl string
		if d.Analyzer == UnusedIgnoreName {
			// The fix for a stale ignore is deleting the directive.
			idx := strings.Index(old, "//"+ignoreDirective)
			if idx < 0 {
				continue
			}
			repl = strings.TrimRight(old[:idx], " \t")
		} else {
			repl = fmt.Sprintf("%s //%s %s TODO: rationale", old, ignoreDirective, d.Analyzer)
		}
		fmt.Fprintf(w, "--- %s:%d (%s)\n", d.Pos.Filename, d.Pos.Line, d.Analyzer)
		fmt.Fprintf(w, "-%s\n", old)
		if repl != "" {
			fmt.Fprintf(w, "+%s\n", repl)
		}
	}
	return nil
}
