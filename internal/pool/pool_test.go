package pool

import (
	"testing"
)

func TestGetLengthAndZeroing(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 1000, 1 << 16} {
		s := GetF32(n)
		if len(s) != n {
			t.Fatalf("GetF32(%d) returned len %d", n, len(s))
		}
		for i, v := range s {
			if v != 0 {
				t.Fatalf("GetF32(%d)[%d] = %v, want 0", n, i, v)
			}
		}
		// Dirty it so a recycled return would be caught above.
		for i := range s {
			s[i] = 42
		}
		PutF32(s)
	}
}

func TestCapacityClasses(t *testing.T) {
	s := GetBytes(100)
	if cap(s) < 100 || cap(s) > 256 {
		t.Fatalf("GetBytes(100) cap %d, want in [100,256]", cap(s))
	}
	PutBytes(s)
	// A smaller request may reuse the same block; a larger one must not
	// return short.
	big := GetBytes(300)
	if len(big) != 300 {
		t.Fatalf("GetBytes(300) len %d", len(big))
	}
	PutBytes(big)
}

func TestReuseRoundTrip(t *testing.T) {
	s := GetI32(64)
	s[0] = 7
	PutI32(s)
	// sync.Pool gives no reuse guarantee, but same-goroutine immediate
	// re-get of the same class overwhelmingly hits the private cache; all we
	// assert is correctness, not identity.
	r := GetI32(64)
	if len(r) != 64 {
		t.Fatalf("re-get len %d", len(r))
	}
	PutI32(r)
}

func TestOversizeRequestsBypassPool(t *testing.T) {
	n := (1 << maxClass) + 1
	s := GetBytes(n)
	if len(s) != n {
		t.Fatalf("oversize GetBytes len %d, want %d", len(s), n)
	}
	PutBytes(s) // must be a no-op, not a panic
}

func TestPutShortCapGet(t *testing.T) {
	// A slice whose cap is not a power of two buckets down, so re-getting
	// the bucket's class always fits.
	raw := make([]byte, 100, 100)
	PutBytes(raw)
	got := GetBytes(64)
	if len(got) != 64 {
		t.Fatalf("len %d", len(got))
	}
	PutBytes(got)
}

func TestZeroCapPutIgnored(t *testing.T) {
	PutF32(nil)
	PutF32([]float32{})
	PutBytes(nil)
	PutI32(nil)
}

// Steady-state Get/Put must not allocate (modulo sync.Pool's occasional
// victim-cache refill, absorbed by the warm-up and run count).
func TestAllocFreeSteadyState(t *testing.T) {
	for i := 0; i < 16; i++ { // warm the per-P private caches
		PutF32(GetF32(1024))
	}
	allocs := testing.AllocsPerRun(200, func() {
		s := GetF32(1024)
		PutF32(s)
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state Get/Put allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkGetPutF32(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := GetF32(4096)
		PutF32(s)
	}
}

func BenchmarkGetPutBytes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := GetBytes(4096)
		PutBytes(s)
	}
}
