// Package pool provides size-classed free lists for the scratch slices the
// training and serving hot paths burn through: []float32 gradient/staging
// buffers and []byte wire payloads. It exists so per-batch work (gradient
// encode/decode, collective staging, model scoring) can run allocation-free
// after warm-up instead of churning the garbage collector every epoch.
//
// Slices are recycled through sync.Pool buckets keyed by ceil-power-of-two
// capacity, so a Get never returns a slice with less capacity than asked and
// never wastes more than 2x. All functions are safe for concurrent use —
// sync.Pool does the sharding — which matters because ownership of a pooled
// buffer may legally transfer between goroutines (an mpi sender allocates a
// staging buffer, the receiving rank consumes and releases it).
//
// Ownership contract (see DESIGN.md §10): a Get hands the caller exclusive
// ownership; a Put surrenders it. Never Put a slice that another goroutine
// may still read, never use a slice after Put, and never Put the same slice
// twice. Buffers that cross a collective and are retained by multiple ranks
// (all-gather payloads) must NOT be pooled — they stay ordinary garbage.
//
// The contract is machine-checked: the pooluse dataflow analyzer in
// internal/lint tracks every Get through assignments, reslices, and
// branches, and reports use-after-Put, double Put, Put of a derived
// subslice, and any escape of a live buffer without a //kgelint:transfer
// ownership handoff (DESIGN.md §7). The companion scratchhold and
// hotpathalloc analyzers police the borrow and zero-alloc sides of the
// same discipline.
package pool

import (
	"math/bits"
	"sync"
)

// maxClass bounds the bucketed capacity at 1<<maxClass elements; larger
// requests are allocated directly and dropped on Put, so one giant temporary
// cannot pin memory in the pool forever.
const maxClass = 24 // 16Mi elements: 64 MiB float32, 16 MiB bytes

// class returns the bucket index for a capacity: the smallest k with
// 1<<k >= n. Requests beyond maxClass report ok=false (unpooled).
func class(n int) (k int, ok bool) {
	if n <= 1 {
		return 0, true
	}
	k = bits.Len(uint(n - 1))
	return k, k <= maxClass
}

// bucketed is one size-classed pool family. The pools store *[]T boxes, and
// the boxes themselves are recycled through a side pool so a steady-state
// Get/Put cycle performs zero allocations (boxing &s on every Put would
// otherwise cost one).
type bucketed[T any] struct {
	buckets [maxClass + 1]sync.Pool
	boxes   sync.Pool // spent *[]T headers awaiting reuse
}

func (p *bucketed[T]) get(n int) []T {
	k, ok := class(n)
	if !ok {
		return make([]T, n)
	}
	if v := p.buckets[k].Get(); v != nil {
		box := v.(*[]T)
		s := *box
		*box = nil // do not pin the buffer from the box pool
		p.boxes.Put(box)
		return s[:n]
	}
	return make([]T, n, 1<<k)
}

func (p *bucketed[T]) put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	// Bucket by the largest class fully contained in cap, so a Get from
	// that bucket can always re-slice to its requested length.
	k := bits.Len(uint(c)) - 1
	if k > maxClass {
		return
	}
	box, _ := p.boxes.Get().(*[]T)
	if box == nil {
		box = new([]T)
	}
	*box = s[:c]
	p.buckets[k].Put(box)
}

var (
	f32Pool  bucketed[float32]
	bytePool bucketed[byte]
	i32Pool  bucketed[int32]
)

// GetF32 returns a float32 slice of length n with every element zeroed.
// The caller owns it exclusively until PutF32.
func GetF32(n int) []float32 {
	s := f32Pool.get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// GetF32Uninit returns a float32 slice of length n whose contents are
// arbitrary (recycled). Use it when every element is about to be
// overwritten, e.g. staging buffers filled by copy.
func GetF32Uninit(n int) []float32 { return f32Pool.get(n) }

// PutF32 recycles a slice obtained from GetF32/GetF32Uninit (or any
// exclusively-owned []float32). The caller must not touch s afterwards.
func PutF32(s []float32) { f32Pool.put(s) }

// GetBytes returns a byte slice of length n with arbitrary (recycled)
// contents. The caller owns it exclusively until PutBytes.
func GetBytes(n int) []byte { return bytePool.get(n) }

// PutBytes recycles a slice obtained from GetBytes. The caller must not
// touch s afterwards.
func PutBytes(s []byte) { bytePool.put(s) }

// GetI32 returns an int32 slice of length n with arbitrary (recycled)
// contents. The caller owns it exclusively until PutI32.
func GetI32(n int) []int32 { return i32Pool.get(n) }

// PutI32 recycles a slice obtained from GetI32. The caller must not touch s
// afterwards.
func PutI32(s []int32) { i32Pool.put(s) }
