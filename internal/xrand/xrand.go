// Package xrand provides a deterministic, splittable pseudo-random number
// generator used throughout kgedist.
//
// Reproducibility across distributed ranks is essential for the paper's
// experiments: every rank must derive an independent stream from a single
// run seed so that results are identical no matter how goroutines are
// scheduled. xrand implements xoshiro256** (Blackman & Vigna) seeded via
// SplitMix64, with a Split method that derives statistically independent
// child generators.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
	splitKey       uint64 // fixed at construction; keys Split children
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, per the xoshiro authors' recommendation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	r.splitKey = splitMix64(&sm)
	return r
}

// Split derives an independent child generator keyed by id. The parent's
// state is not advanced, so Split(i) is stable regardless of interleaving
// with draws from the parent.
func (r *RNG) Split(id uint64) *RNG {
	// Mix the construction-time key with the id through SplitMix64 so
	// children with adjacent ids are decorrelated and Split(i) is stable.
	sm := r.splitKey ^ (0x9e3779b97f4a7c15 * (id + 1))
	c := &RNG{}
	c.s0 = splitMix64(&sm)
	c.s1 = splitMix64(&sm)
	c.s2 = splitMix64(&sm)
	c.s3 = splitMix64(&sm)
	c.splitKey = splitMix64(&sm)
	return c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher–Yates shuffle.
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with a Zipf(s) distribution over ranks
// (rank 0 is the most frequent). It uses precomputed cumulative weights,
// so construct once and reuse for many draws.
type Zipf struct {
	cum []float64 // cumulative normalized weights, len n
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum, rng: rng}
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cum) }
