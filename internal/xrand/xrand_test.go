package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitStability(t *testing.T) {
	t.Parallel()
	parent := New(7)
	c1 := parent.Split(3)
	// Drawing from the parent must not change what Split(3) yields.
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split(3) not stable under parent draws at %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided %d times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	t.Parallel()
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	t.Parallel()
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(13)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / 100000
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v not near 0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	t.Parallel()
	r := New(14)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	t.Parallel()
	r := New(15)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-3) {
			t.Fatal("Bernoulli(-3) returned true")
		}
		if !r.Bernoulli(2) {
			t.Fatal("Bernoulli(2) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	t.Parallel()
	r := New(16)
	const p = 0.3
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	t.Parallel()
	r := New(17)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v not near 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v not near 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	t.Parallel()
	r := New(20)
	s := []int{5, 5, 1, 2, 3, 3, 3}
	orig := map[int]int{}
	for _, v := range s {
		orig[v]++
	}
	r.ShuffleInts(s)
	got := map[int]int{}
	for _, v := range s {
		got[v]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: key %d had %d now %d", k, v, got[k])
		}
	}
}

func TestZipfBounds(t *testing.T) {
	t.Parallel()
	r := New(21)
	z := NewZipf(r, 50, 1.1)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	t.Parallel()
	r := New(22)
	const n = 20
	z := NewZipf(r, n, 1.0)
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must dominate the tail decisively; adjacent ranks may wobble.
	if counts[0] <= counts[n-1] {
		t.Fatalf("Zipf head %d not more frequent than tail %d", counts[0], counts[n-1])
	}
	if counts[0] <= counts[n/2] {
		t.Fatalf("Zipf head %d not more frequent than middle %d", counts[0], counts[n/2])
	}
	// Ratio head/tail should be roughly n for s=1; allow wide tolerance.
	ratio := float64(counts[0]) / float64(counts[n-1]+1)
	if ratio < 5 {
		t.Fatalf("Zipf head/tail ratio %v too flat", ratio)
	}
}

func TestZipfN(t *testing.T) {
	t.Parallel()
	z := NewZipf(New(1), 17, 1.0)
	if z.N() != 17 {
		t.Fatalf("N() = %d", z.N())
	}
}

// Property: Intn always lies in range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give identical Float64 streams.
func TestQuickDeterministicFloat(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 100000, 1.0)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Draw()
	}
	_ = sink
}

func TestShuffleSwapFunc(t *testing.T) {
	t.Parallel()
	r := New(23)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := map[string]bool{}
	for _, v := range s {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
}
