package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kgedist/internal/binpack"
	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/metrics"
)

// Config parameterizes a Server.
type Config struct {
	// CheckpointPath is the KGE2 checkpoint to serve (required).
	CheckpointPath string
	// ShardRows is the entity shard grain (<= 0 = DefaultShardRows).
	ShardRows int
	// CacheSize caps the result cache entry count (<= 0 disables caching).
	CacheSize int
	// MaxBatch caps predict micro-batches (clamped to >= 1).
	MaxBatch int
	// BatchWindow is how long the first query of a batch waits for company.
	BatchWindow time.Duration
	// Filter, when set, enables filtered prediction: candidates that are
	// known facts are skipped. Built from the training dataset.
	Filter *kg.FilterIndex
}

// state is one generation of servable state. Store and cache live and die
// together: a reload installs a fresh pair via one atomic pointer swap, so
// no request can ever pair an old cache with a new store.
type state struct {
	store *Store
	cache *Cache
}

// endpointMetrics instruments one API endpoint.
type endpointMetrics struct {
	requests metrics.Counter
	errors   metrics.Counter
	latency  *metrics.Histogram
}

// Server is the HTTP inference server. All public methods are safe for
// concurrent use; queries proceed against an immutable state snapshot, so
// Reload never blocks the read path.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	state   atomic.Pointer[state]
	batcher *Batcher

	endpoints  map[string]*endpointMetrics
	batchSizes *metrics.Histogram
	started    time.Time

	// mode=approx accounting: per-query candidate/rescore totals make the
	// prefilter budget vs. work ratio observable, and a dedicated latency
	// histogram separates the sub-linear path from batched exact predicts.
	approxRequests   metrics.Counter
	approxCandidates metrics.Counter
	approxRescored   metrics.Counter
	approxLatency    *metrics.Histogram
	approxScratch    sync.Pool // of *binpack.Scratch

	reloadMu      sync.Mutex // serializes Reload itself
	statusMu      sync.Mutex // guards the reload status fields below
	reloads       int64
	lastReloadErr string
}

// New loads the configured checkpoint and returns a ready Server. The
// caller owns shutdown ordering: drain HTTP first, then Close.
func New(cfg Config) (*Server, error) {
	st, err := OpenStore(cfg.CheckpointPath, cfg.ShardRows)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		mux:           http.NewServeMux(),
		batchSizes:    metrics.NewHistogram(metrics.SizeBuckets(1024)...),
		started:       time.Now(),
		endpoints:     map[string]*endpointMetrics{},
		approxLatency: metrics.NewHistogram(metrics.LatencyBuckets()...),
	}
	s.approxScratch.New = func() any { return binpack.NewScratch() }
	s.state.Store(&state{store: st, cache: NewCache(cfg.CacheSize)})
	s.batcher = NewBatcher(cfg.MaxBatch, cfg.BatchWindow, s.batchSizes, s.runPredictBatch)
	for _, name := range []string{"score", "predict", "neighbors", "reload"} {
		s.endpoints[name] = &endpointMetrics{latency: metrics.NewHistogram(metrics.LatencyBuckets()...)}
	}
	s.mux.HandleFunc("POST /v1/score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("POST /v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/neighbors", s.instrument("neighbors", s.handleNeighbors))
	s.mux.HandleFunc("POST /v1/reload", s.instrument("reload", s.handleReload))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the current live store snapshot.
func (s *Server) Store() *Store { return s.state.Load().store }

// Close stops the batcher, draining queued queries. Call after the HTTP
// listener has stopped accepting requests.
func (s *Server) Close() { s.batcher.Stop() }

// Reload loads the checkpoint at path (or the originally configured path
// when empty) off to the side, validates it against the live store, and
// atomically swaps it in together with a fresh cache. In-flight requests
// finish against the state snapshot they started with. On any error the
// live state is untouched and /healthz reports the failure.
func (s *Server) Reload(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.state.Load()
	if path == "" {
		path = cur.store.info.Path
	}
	err := s.reloadLocked(cur, path)
	s.statusMu.Lock()
	if err != nil {
		s.lastReloadErr = err.Error()
	} else {
		s.lastReloadErr = ""
		s.reloads++
	}
	s.statusMu.Unlock()
	return err
}

func (s *Server) reloadLocked(cur *state, path string) error {
	st, err := OpenStore(path, s.cfg.ShardRows)
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	// Entity and relation id spaces must keep their meaning: the filter
	// index and every client-side id mapping are defined over them. A
	// checkpoint with a different shape is a different deployment, not a
	// hot upgrade.
	if st.numEntities != cur.store.numEntities || st.numRelations != cur.store.numRelations {
		return fmt.Errorf("serve: reload rejected: checkpoint shape (%d entities, %d relations) does not match live store (%d, %d)",
			st.numEntities, st.numRelations, cur.store.numEntities, cur.store.numRelations)
	}
	s.state.Store(&state{store: st, cache: NewCache(s.cfg.CacheSize)})
	return nil
}

// ReloadStatus reports how many reloads succeeded and the last failure.
func (s *Server) ReloadStatus() (reloads int64, lastErr string) {
	s.statusMu.Lock()
	defer s.statusMu.Unlock()
	return s.reloads, s.lastReloadErr
}

// ---- request plumbing ------------------------------------------------------

// apiError carries an HTTP status through the instrument wrapper.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps an endpoint handler with request/error counting and
// latency observation. Handlers return the response value to encode (a
// json.RawMessage passes through verbatim, serving the cached-bytes path).
func (s *Server) instrument(name string, fn func(r *http.Request) (any, error)) http.HandlerFunc {
	em := s.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Inc()
		start := time.Now()
		v, err := fn(r)
		em.latency.Observe(time.Since(start).Seconds())
		if err != nil {
			em.errors.Inc()
			status := http.StatusInternalServerError
			var ae *apiError
			if errAs(err, &ae) {
				status = ae.status
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if raw, ok := v.(json.RawMessage); ok {
			_, _ = w.Write(raw)
			return
		}
		_ = json.NewEncoder(w).Encode(v)
	}
}

// errAs is errors.As narrowed to *apiError (keeps the import list tight).
func errAs(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// ---- /v1/score -------------------------------------------------------------

// TripleRef is one (head, relation, tail) id triple in API requests.
type TripleRef struct {
	H int `json:"h"`
	R int `json:"r"`
	T int `json:"t"`
}

type scoreRequest struct {
	Triples []TripleRef `json:"triples"`
}

type scoreResponse struct {
	Model  string    `json:"model"`
	Scores []float32 `json:"scores"`
}

func (s *Server) handleScore(r *http.Request) (any, error) {
	var req scoreRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Triples) == 0 {
		return nil, badRequest("score: empty triple list")
	}
	st := s.state.Load().store
	resp := scoreResponse{Model: st.info.Model, Scores: make([]float32, len(req.Triples))}
	for i, t := range req.Triples {
		if err := st.checkTriple(t); err != nil {
			return nil, err
		}
		resp.Scores[i] = st.Score(t.H, t.R, t.T)
	}
	return resp, nil
}

func (s *Store) checkTriple(t TripleRef) error {
	if t.H < 0 || t.H >= s.numEntities || t.T < 0 || t.T >= s.numEntities {
		return badRequest("entity id out of range [0,%d): %+v", s.numEntities, t)
	}
	if t.R < 0 || t.R >= s.numRelations {
		return badRequest("relation id out of range [0,%d): %+v", s.numRelations, t)
	}
	return nil
}

// ---- /v1/predict -----------------------------------------------------------

// DefaultCandidates is the stage-1 budget of a mode=approx predict when the
// request does not set one: large enough for recall@10 >= 0.95 on trained
// geometry at FB15k scale, small enough to keep the rescore stage ~50x
// cheaper than a full sweep (see README "Serving").
const DefaultCandidates = 1024

type predictRequest struct {
	Head     *int `json:"head"`
	Relation *int `json:"relation"`
	Tail     *int `json:"tail"`
	K        int  `json:"k"`
	Filtered bool `json:"filtered"`
	// Mode selects the ranking pipeline: "exact" (default) sweeps every
	// entity through the micro-batcher; "approx" runs the two-stage
	// binarized prefilter + exact rescore. ?mode= in the URL wins.
	Mode string `json:"mode,omitempty"`
	// Candidates is the approx stage-1 budget (<= 0 = DefaultCandidates).
	Candidates int `json:"candidates,omitempty"`
}

// Completion is one ranked completion in a predict response.
type Completion struct {
	Entity int32   `json:"entity"`
	Score  float32 `json:"score"`
}

type predictResponse struct {
	Side        string       `json:"side"`
	Completions []Completion `json:"completions"`
	// Approx accounting, absent on exact responses: Candidates is the
	// stage-1 slice size, Rescored how many survived filtering into the
	// exact stage-2 scoring.
	Mode       string `json:"mode,omitempty"`
	Candidates int    `json:"candidates,omitempty"`
	Rescored   int    `json:"rescored,omitempty"`
}

func (s *Server) handlePredict(r *http.Request) (any, error) {
	var req predictRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Relation == nil {
		return nil, badRequest("predict: relation is required")
	}
	if (req.Head == nil) == (req.Tail == nil) {
		return nil, badRequest("predict: exactly one of head and tail must be given; the missing one is completed")
	}
	if req.Filtered && s.cfg.Filter == nil {
		return nil, badRequest("predict: filtered ranking requires the server to be started with a dataset (-data/-dataset)")
	}
	if req.K <= 0 {
		req.K = 10
	}
	q := PredictQuery{R: *req.Relation, K: req.K, Filtered: req.Filtered}
	if req.Tail == nil {
		q.Side = "tail"
		q.H = *req.Head
	} else {
		q.Side = "head"
		q.T = *req.Tail
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = req.Mode
	}
	switch mode {
	case "", "exact":
	case "approx":
		return s.predictApprox(q, req.Candidates)
	default:
		return nil, badRequest("predict: unknown mode %q (want exact or approx)", mode)
	}

	gen := s.state.Load()
	key := fmt.Sprintf("predict|%s|%d|%d|%d|%d|%t", q.Side, q.H, q.R, q.T, q.K, q.Filtered)
	if cached, ok := gen.cache.Get(key); ok {
		return json.RawMessage(cached), nil
	}
	res := s.batcher.Submit(q)
	if res.Err != nil {
		return nil, res.Err
	}
	resp := predictResponse{Side: q.Side, Completions: make([]Completion, len(res.Completions))}
	for i, c := range res.Completions {
		resp.Completions[i] = Completion{Entity: c.Entity, Score: c.Score}
	}
	buf, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	gen.cache.Put(key, buf)
	return json.RawMessage(buf), nil
}

// predictApprox answers one mode=approx predict: a packed XOR/popcount
// prefilter over every entity selects the candidates smallest-Hamming ids,
// then exact ScoreRows rescoring ranks the final top k. The whole query
// runs against a single state snapshot — the packed index lives inside the
// Store, so a concurrent reload can never pair old codes with new rows.
// Approx queries bypass the micro-batcher on purpose: batching amortizes
// O(N) sweeps, while this path's point is per-query sub-linearity.
func (s *Server) predictApprox(q PredictQuery, candidates int) (any, error) {
	gen := s.state.Load()
	st := gen.store
	ix := st.Packed()
	if ix == nil {
		return nil, badRequest("predict: mode=approx is not available for model %q", st.info.Model)
	}
	fixed := q.H
	if q.Side == "head" {
		fixed = q.T
	}
	if fixed < 0 || fixed >= st.numEntities {
		return nil, badRequest("predict: entity id %d out of range [0,%d)", fixed, st.numEntities)
	}
	if q.R < 0 || q.R >= st.numRelations {
		return nil, badRequest("predict: relation id %d out of range [0,%d)", q.R, st.numRelations)
	}
	if candidates <= 0 {
		candidates = DefaultCandidates
	}
	key := fmt.Sprintf("predict|approx|%s|%d|%d|%d|%d|%d|%t", q.Side, q.H, q.R, q.T, q.K, candidates, q.Filtered)
	if cached, ok := gen.cache.Get(key); ok {
		return json.RawMessage(cached), nil
	}
	var skip func(e int32) bool
	if q.Filtered {
		filter := s.cfg.Filter
		if q.Side == "tail" {
			h, rel := int32(q.H), int32(q.R)
			skip = func(e int32) bool { return filter.Contains(kg.Triple{H: h, R: rel, T: e}) }
		} else {
			t, rel := int32(q.T), int32(q.R)
			skip = func(e int32) bool { return filter.Contains(kg.Triple{H: e, R: rel, T: t}) }
		}
	}
	start := time.Now()
	sc := s.approxScratch.Get().(*binpack.Scratch)
	res, cand, rescored, err := ix.Search(st.m, q.Side, st.EntityRow(fixed), st.RelationRow(q.R), st.EntityRow, q.K, candidates, skip, sc)
	s.approxScratch.Put(sc)
	if err != nil {
		return nil, badRequest("predict: %v", err)
	}
	s.approxLatency.Observe(time.Since(start).Seconds())
	s.approxRequests.Inc()
	s.approxCandidates.Add(int64(cand))
	s.approxRescored.Add(int64(rescored))
	resp := predictResponse{Side: q.Side, Mode: "approx", Candidates: cand, Rescored: rescored,
		Completions: make([]Completion, len(res))}
	for i, c := range res {
		resp.Completions[i] = Completion{Entity: c.Entity, Score: c.Score}
	}
	buf, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	gen.cache.Put(key, buf)
	return json.RawMessage(buf), nil
}

// runPredictBatch executes one micro-batch: a single pass over the entity
// table feeds every query's accumulator, sharing the per-candidate row
// fetch across the batch. Shards are swept in parallel with per-(shard,
// query) accumulators merged afterwards, so the hot loop takes no locks.
func (s *Server) runPredictBatch(qs []PredictQuery) []PredictResult {
	st := s.state.Load().store
	outs := make([]PredictResult, len(qs))
	type prepared struct {
		idx   int
		q     PredictQuery
		fixE  []float32 // embedding of the fixed entity
		relE  []float32
		k     int
	}
	var live []prepared
	for i, q := range qs {
		if q.Side != "head" && q.Side != "tail" {
			outs[i].Err = badRequest("predict: side must be head or tail")
			continue
		}
		fixed := q.H
		if q.Side == "head" {
			fixed = q.T
		}
		if fixed < 0 || fixed >= st.numEntities {
			outs[i].Err = badRequest("predict: entity id %d out of range [0,%d)", fixed, st.numEntities)
			continue
		}
		if q.R < 0 || q.R >= st.numRelations {
			outs[i].Err = badRequest("predict: relation id %d out of range [0,%d)", q.R, st.numRelations)
			continue
		}
		k := q.K
		if k > st.numEntities {
			k = st.numEntities
		}
		live = append(live, prepared{idx: i, q: q, fixE: st.EntityRow(fixed), relE: st.RelationRow(q.R), k: k})
	}
	if len(live) == 0 {
		return outs
	}
	m := st.Model()
	filter := s.cfg.Filter
	accs := make([][]*eval.TopKAccumulator, st.NumShards())
	st.sweepShards(func(shard, lo, hi int) {
		local := make([]*eval.TopKAccumulator, len(live))
		for i, p := range live {
			local[i] = eval.NewTopK(p.k)
		}
		for e := lo; e < hi; e++ {
			row := st.EntityRow(e)
			for i, p := range live {
				var score float32
				if p.q.Side == "tail" {
					if p.q.Filtered && filter.Contains(kg.Triple{H: int32(p.q.H), R: int32(p.q.R), T: int32(e)}) {
						continue
					}
					score = m.ScoreRows(p.fixE, p.relE, row)
				} else {
					if p.q.Filtered && filter.Contains(kg.Triple{H: int32(e), R: int32(p.q.R), T: int32(p.q.T)}) {
						continue
					}
					score = m.ScoreRows(row, p.relE, p.fixE)
				}
				local[i].Offer(int32(e), score)
			}
		}
		accs[shard] = local
	})
	for i, p := range live {
		merged := accs[0][i]
		for _, local := range accs[1:] {
			merged.Merge(local[i])
		}
		outs[p.idx].Completions = merged.Results()
	}
	return outs
}

// ---- /v1/neighbors ---------------------------------------------------------

type neighborsRequest struct {
	Entity int    `json:"entity"`
	K      int    `json:"k"`
	Metric string `json:"metric"`
}

type neighborsResponse struct {
	Entity    int          `json:"entity"`
	Metric    string       `json:"metric"`
	Neighbors []Completion `json:"neighbors"`
}

func (s *Server) handleNeighbors(r *http.Request) (any, error) {
	var req neighborsRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Metric == "" {
		req.Metric = "cosine"
	}
	gen := s.state.Load()
	key := fmt.Sprintf("neighbors|%d|%d|%s", req.Entity, req.K, req.Metric)
	if cached, ok := gen.cache.Get(key); ok {
		return json.RawMessage(cached), nil
	}
	nb, err := gen.store.Neighbors(req.Entity, req.K, req.Metric)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	resp := neighborsResponse{Entity: req.Entity, Metric: req.Metric, Neighbors: make([]Completion, len(nb))}
	for i, c := range nb {
		resp.Neighbors[i] = Completion{Entity: c.Entity, Score: c.Score}
	}
	buf, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	gen.cache.Put(key, buf)
	return json.RawMessage(buf), nil
}

// ---- /v1/reload ------------------------------------------------------------

type reloadRequest struct {
	Path string `json:"path"`
}

type reloadResponse struct {
	Checkpoint StoreInfo `json:"checkpoint"`
	Reloads    int64     `json:"reloads"`
}

func (s *Server) handleReload(r *http.Request) (any, error) {
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
	}
	if err := s.Reload(req.Path); err != nil {
		return nil, &apiError{status: http.StatusConflict, msg: err.Error()}
	}
	n, _ := s.ReloadStatus()
	return reloadResponse{Checkpoint: s.Store().Info(), Reloads: n}, nil
}

// ---- /healthz --------------------------------------------------------------

type healthResponse struct {
	Status        string    `json:"status"`
	Checkpoint    StoreInfo `json:"checkpoint"`
	Reloads       int64     `json:"reloads"`
	LastReloadErr string    `json:"last_reload_error,omitempty"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Filtered      bool      `json:"filtered_ranking"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n, lastErr := s.ReloadStatus()
	resp := healthResponse{
		Status:        "ok",
		Checkpoint:    s.Store().Info(),
		Reloads:       n,
		LastReloadErr: lastErr,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Filtered:      s.cfg.Filter != nil,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// ---- /metrics --------------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	uptime := time.Since(s.started).Seconds()
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		em := s.endpoints[name]
		reqs := em.requests.Value()
		fmt.Fprintf(w, "kgeserve_requests_total{endpoint=%q} %d\n", name, reqs)
		fmt.Fprintf(w, "kgeserve_errors_total{endpoint=%q} %d\n", name, em.errors.Value())
		if uptime > 0 {
			fmt.Fprintf(w, "kgeserve_qps{endpoint=%q} %.4f\n", name, float64(reqs)/uptime)
		}
		em.latency.Snapshot().WriteTo(w, "kgeserve_"+name+"_latency_seconds")
	}
	s.batchSizes.Snapshot().WriteTo(w, "kgeserve_batch_size")
	fmt.Fprintf(w, "kgeserve_approx_requests_total %d\n", s.approxRequests.Value())
	fmt.Fprintf(w, "kgeserve_approx_candidates_total %d\n", s.approxCandidates.Value())
	fmt.Fprintf(w, "kgeserve_approx_rescored_total %d\n", s.approxRescored.Value())
	s.approxLatency.Snapshot().WriteTo(w, "kgeserve_approx_latency_seconds")
	gen := s.state.Load()
	cs := gen.cache.Stats()
	fmt.Fprintf(w, "kgeserve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "kgeserve_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "kgeserve_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "kgeserve_cache_hit_ratio %.4f\n", cs.Ratio)
	n, _ := s.ReloadStatus()
	fmt.Fprintf(w, "kgeserve_reloads_total %d\n", n)
	fmt.Fprintf(w, "kgeserve_store_entities %d\n", gen.store.NumEntities())
	fmt.Fprintf(w, "kgeserve_store_relations %d\n", gen.store.NumRelations())
	fmt.Fprintf(w, "kgeserve_store_shards %d\n", gen.store.NumShards())
	if ix := gen.store.Packed(); ix != nil {
		fmt.Fprintf(w, "kgeserve_store_packed_bytes %d\n", ix.Bytes())
	}
	fmt.Fprintf(w, "kgeserve_uptime_seconds %.3f\n", uptime)
}
