package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// newTestServer builds a server over a fresh random checkpoint plus the
// httptest front end. Returns the server, its base URL, and the dataset
// whose filter index it serves.
func newTestServer(t *testing.T, cacheSize int) (*Server, string, *kg.Dataset) {
	t.Helper()
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, "complex", 4, 30, 4, 9)
	d := &kg.Dataset{
		NumEntities:  30,
		NumRelations: 4,
		Train: []kg.Triple{
			{H: 0, R: 0, T: 1}, {H: 0, R: 0, T: 2}, {H: 5, R: 1, T: 6},
			{H: 7, R: 2, T: 8}, {H: 9, R: 3, T: 10},
		},
	}
	s, err := New(Config{
		CheckpointPath: path,
		ShardRows:      8,
		CacheSize:      cacheSize,
		MaxBatch:       8,
		BatchWindow:    500 * time.Microsecond,
		Filter:         kg.NewFilterIndex(d),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL, d
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close() //kgelint:ignore droppederr read-only close
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //kgelint:ignore droppederr read-only close
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

func TestScoreEndpoint(t *testing.T) {
	s, url, _ := newTestServer(t, 0)
	var resp scoreResponse
	status, raw := postJSON(t, url+"/v1/score", map[string]any{
		"triples": []map[string]int{{"h": 0, "r": 0, "t": 1}, {"h": 3, "r": 2, "t": 7}},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Model != "complex" || len(resp.Scores) != 2 {
		t.Fatalf("resp %+v", resp)
	}
	st := s.Store()
	for i, tr := range []TripleRef{{0, 0, 1}, {3, 2, 7}} {
		want := st.Score(tr.H, tr.R, tr.T)
		if math.Abs(float64(resp.Scores[i]-want)) > 1e-6 {
			t.Fatalf("score %d = %g, want %g", i, resp.Scores[i], want)
		}
	}
	// Out-of-range ids are a 400, not a panic.
	if status, _ := postJSON(t, url+"/v1/score", map[string]any{
		"triples": []map[string]int{{"h": 999, "r": 0, "t": 1}},
	}, nil); status != http.StatusBadRequest {
		t.Fatalf("oob status %d", status)
	}
	if status, _ := postJSON(t, url+"/v1/score", map[string]any{"triples": []map[string]int{}}, nil); status != http.StatusBadRequest {
		t.Fatalf("empty status %d", status)
	}
}

func TestPredictEndpoint(t *testing.T) {
	s, url, d := newTestServer(t, 0)
	st := s.Store()
	m := st.Model()

	var resp predictResponse
	status, raw := postJSON(t, url+"/v1/predict", map[string]any{
		"head": 0, "relation": 0, "k": 5,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Side != "tail" || len(resp.Completions) != 5 {
		t.Fatalf("resp %+v", resp)
	}
	// Oracle: brute-force tail ranking.
	type es struct {
		e int
		s float32
	}
	var all []es
	for e := 0; e < st.NumEntities(); e++ {
		all = append(all, es{e, m.ScoreRows(st.EntityRow(0), st.RelationRow(0), st.EntityRow(e))})
	}
	best := all[0]
	for _, c := range all[1:] {
		if c.s > best.s {
			best = c
		}
	}
	if int(resp.Completions[0].Entity) != best.e {
		t.Fatalf("top completion %d, oracle %d", resp.Completions[0].Entity, best.e)
	}
	for i := 1; i < len(resp.Completions); i++ {
		if resp.Completions[i].Score > resp.Completions[i-1].Score {
			t.Fatalf("completions not sorted: %+v", resp.Completions)
		}
	}

	// Filtered: known facts (0,0,1) and (0,0,2) must not appear.
	var filt predictResponse
	status, raw = postJSON(t, url+"/v1/predict", map[string]any{
		"head": 0, "relation": 0, "k": st.NumEntities(), "filtered": true,
	}, &filt)
	if status != http.StatusOK {
		t.Fatalf("filtered status %d: %s", status, raw)
	}
	for _, c := range filt.Completions {
		for _, tr := range d.Train {
			if tr.H == 0 && tr.R == 0 && c.Entity == tr.T {
				t.Fatalf("filtered ranking returned known fact tail %d", c.Entity)
			}
		}
	}
	if len(filt.Completions) != st.NumEntities()-2 {
		t.Fatalf("filtered returned %d of %d candidates", len(filt.Completions), st.NumEntities()-2)
	}

	// Head-side completion.
	var head predictResponse
	if status, raw := postJSON(t, url+"/v1/predict", map[string]any{
		"tail": 1, "relation": 0, "k": 3,
	}, &head); status != http.StatusOK || head.Side != "head" {
		t.Fatalf("head predict %d %s %+v", status, raw, head)
	}

	// Validation errors.
	for name, body := range map[string]map[string]any{
		"both slots":  {"head": 0, "tail": 1, "relation": 0},
		"no slots":    {"relation": 0},
		"no relation": {"head": 0},
		"oob entity":  {"head": 999, "relation": 0},
		"oob rel":     {"head": 0, "relation": 99},
	} {
		if status, _ := postJSON(t, url+"/v1/predict", body, nil); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d", name, status)
		}
	}
}

func TestNeighborsEndpoint(t *testing.T) {
	s, url, _ := newTestServer(t, 0)
	var resp neighborsResponse
	status, raw := postJSON(t, url+"/v1/neighbors", map[string]any{"entity": 3, "k": 4}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if len(resp.Neighbors) != 4 || resp.Metric != "cosine" {
		t.Fatalf("resp %+v", resp)
	}
	want, err := s.Store().Neighbors(3, 4, "cosine")
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range resp.Neighbors {
		if n.Entity != want[i].Entity {
			t.Fatalf("neighbor %d = %d, want %d", i, n.Entity, want[i].Entity)
		}
	}
	if status, _ := postJSON(t, url+"/v1/neighbors", map[string]any{"entity": -1}, nil); status != http.StatusBadRequest {
		t.Fatalf("oob entity status %d", status)
	}
}

func TestPredictCaching(t *testing.T) {
	s, url, _ := newTestServer(t, 256)
	body := map[string]any{"head": 0, "relation": 0, "k": 5}
	var first, second predictResponse
	postJSON(t, url+"/v1/predict", body, &first)
	postJSON(t, url+"/v1/predict", body, &second)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached response differs: %+v vs %+v", first, second)
	}
	cs := s.state.Load().cache.Stats()
	if cs.Hits < 1 {
		t.Fatalf("no cache hit recorded: %+v", cs)
	}
	metricsOut := getBody(t, url+"/metrics")
	if !strings.Contains(metricsOut, "kgeserve_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hits:\n%s", metricsOut)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, url, _ := newTestServer(t, 16)
	postJSON(t, url+"/v1/score", map[string]any{"triples": []map[string]int{{"h": 0, "r": 0, "t": 1}}}, nil)
	postJSON(t, url+"/v1/predict", map[string]any{"head": 0, "relation": 0}, nil)
	postJSON(t, url+"/v1/neighbors", map[string]any{"entity": 0}, nil)

	var health healthResponse
	if err := json.Unmarshal([]byte(getBody(t, url+"/healthz")), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Status != "ok" || health.Checkpoint.Model != "complex" || health.Checkpoint.CRC == "" {
		t.Fatalf("healthz %+v", health)
	}
	if health.Checkpoint.CRC != s.Store().Info().CRC {
		t.Fatalf("healthz CRC %s != store %s", health.Checkpoint.CRC, s.Store().Info().CRC)
	}

	out := getBody(t, url+"/metrics")
	for _, want := range []string{
		`kgeserve_requests_total{endpoint="score"} 1`,
		`kgeserve_requests_total{endpoint="predict"} 1`,
		`kgeserve_requests_total{endpoint="neighbors"} 1`,
		`kgeserve_score_latency_seconds_count 1`,
		`kgeserve_predict_latency_seconds_bucket`,
		`kgeserve_batch_size_count 1`,
		`kgeserve_cache_hit_ratio`,
		`kgeserve_store_entities 30`,
		`kgeserve_reloads_total 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestReloadSwapsCheckpoint(t *testing.T) {
	s, url, _ := newTestServer(t, 16)
	oldCRC := s.Store().Info().CRC

	// A different parameter snapshot, same shape.
	dir := t.TempDir()
	m := model.New("complex", 4)
	p := model.NewParams(m, 30, 4)
	p.Init(m, xrand.New(123))
	next := filepath.Join(dir, "next.kge")
	if err := model.SaveCheckpoint(next, m, p); err != nil {
		t.Fatal(err)
	}

	var resp reloadResponse
	status, raw := postJSON(t, url+"/v1/reload", map[string]any{"path": next}, &resp)
	if status != http.StatusOK {
		t.Fatalf("reload status %d: %s", status, raw)
	}
	if resp.Reloads != 1 || resp.Checkpoint.CRC == oldCRC {
		t.Fatalf("reload response %+v (old crc %s)", resp, oldCRC)
	}
	if got := s.Store().Info().Path; got != next {
		t.Fatalf("live path %s, want %s", got, next)
	}

	// Shape mismatch is rejected and the live store stays put.
	p2 := model.NewParams(m, 31, 4)
	p2.Init(m, xrand.New(5))
	bad := filepath.Join(dir, "bad.kge")
	if err := model.SaveCheckpoint(bad, m, p2); err != nil {
		t.Fatal(err)
	}
	status, raw = postJSON(t, url+"/v1/reload", map[string]any{"path": bad}, nil)
	if status != http.StatusConflict {
		t.Fatalf("bad reload status %d: %s", status, raw)
	}
	if s.Store().Info().Path != next {
		t.Fatal("failed reload replaced the live store")
	}
	var health healthResponse
	if err := json.Unmarshal([]byte(getBody(t, url+"/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Reloads != 1 || health.LastReloadErr == "" {
		t.Fatalf("healthz after failed reload: %+v", health)
	}
}

// TestConcurrentQueriesDuringReload is the acceptance test for atomic hot
// reload: a mixed read workload hammers every endpoint while the live
// checkpoint is swapped back and forth. Every response must be internally
// consistent (HTTP 200, well-formed, correct cardinality); the race
// detector guards the memory model.
func TestConcurrentQueriesDuringReload(t *testing.T) {
	s, url, _ := newTestServer(t, 64)

	// Second checkpoint with identical shape.
	dir := t.TempDir()
	m := model.New("complex", 4)
	p := model.NewParams(m, 30, 4)
	p.Init(m, xrand.New(77))
	alt := filepath.Join(dir, "alt.kge")
	if err := model.SaveCheckpoint(alt, m, p); err != nil {
		t.Fatal(err)
	}
	paths := []string{alt, s.Store().Info().Path}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					var resp scoreResponse
					if status, raw := postJSON(t, url+"/v1/score", map[string]any{
						"triples": []map[string]int{{"h": w, "r": i % 4, "t": (w + i) % 30}},
					}, &resp); status != http.StatusOK || len(resp.Scores) != 1 {
						t.Errorf("score during reload: %d %s", status, raw)
						return
					}
				case 1:
					var resp predictResponse
					if status, raw := postJSON(t, url+"/v1/predict", map[string]any{
						"head": w, "relation": i % 4, "k": 5,
					}, &resp); status != http.StatusOK || len(resp.Completions) != 5 {
						t.Errorf("predict during reload: %d %s", status, raw)
						return
					}
				default:
					var resp neighborsResponse
					if status, raw := postJSON(t, url+"/v1/neighbors", map[string]any{
						"entity": (w * 3) % 30, "k": 3,
					}, &resp); status != http.StatusOK || len(resp.Neighbors) != 3 {
						t.Errorf("neighbors during reload: %d %s", status, raw)
						return
					}
				}
			}
		}(w)
	}

	const reloads = 10
	for i := 0; i < reloads; i++ {
		if err := s.Reload(paths[i%2]); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	n, lastErr := s.ReloadStatus()
	if n != reloads || lastErr != "" {
		t.Fatalf("reload status %d %q", n, lastErr)
	}
	out := getBody(t, url+"/metrics")
	if !strings.Contains(out, fmt.Sprintf("kgeserve_reloads_total %d", reloads)) {
		t.Fatalf("metrics lost reload count:\n%s", out)
	}
}

func TestServerCloseDrains(t *testing.T) {
	s, url, _ := newTestServer(t, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, url+"/v1/predict", map[string]any{"head": i % 30, "relation": 0, "k": 2}, nil)
		}(i)
	}
	wg.Wait()
	s.Close() // must not hang with queries drained
	// After close the batcher rejects; the endpoint degrades to a 500, not a hang.
	if status, _ := postJSON(t, url+"/v1/predict", map[string]any{"head": 0, "relation": 0}, nil); status == http.StatusOK {
		t.Fatal("predict succeeded after Close")
	}
}
