package serve

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// writeCheckpoint trains nothing: it saves randomly initialized parameters,
// which is all serving correctness tests need.
func writeCheckpoint(t *testing.T, dir, name string, dim, entities, relations int, seed uint64) string {
	t.Helper()
	m := model.New(name, dim)
	p := model.NewParams(m, entities, relations)
	p.Init(m, xrand.New(seed))
	path := filepath.Join(dir, "ck.kge")
	if err := model.SaveCheckpoint(path, m, p); err != nil {
		t.Fatalf("save checkpoint: %v", err)
	}
	return path
}

func TestOpenStoreMatchesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, "complex", 4, 37, 5, 3)
	m, p, err := model.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Shard grain smaller than the entity count forces multiple shards.
	st, err := OpenStore(path, 10)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if st.NumEntities() != 37 || st.NumRelations() != 5 {
		t.Fatalf("shape %d/%d", st.NumEntities(), st.NumRelations())
	}
	if st.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", st.NumShards())
	}
	for e := 0; e < 37; e++ {
		row := st.EntityRow(e)
		want := p.Entity.Row(e)
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("entity %d row differs at %d", e, i)
			}
		}
	}
	for r := 0; r < 5; r++ {
		row := st.RelationRow(r)
		want := p.Relation.Row(r)
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("relation %d row differs at %d", r, i)
			}
		}
	}
	// Store scoring must agree with the model over the training Params.
	for _, tr := range []struct{ h, r, tt int }{{0, 0, 1}, {36, 4, 0}, {17, 2, 33}} {
		got := st.Score(tr.h, tr.r, tr.tt)
		want := m.ScoreRows(p.Entity.Row(tr.h), p.Relation.Row(tr.r), p.Entity.Row(tr.tt))
		if math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("score(%v) = %g, want %g", tr, got, want)
		}
	}
	info := st.Info()
	if info.Model != "complex" || info.Dim != 4 || info.CRC == "" {
		t.Fatalf("info %+v", info)
	}
}

func TestOpenStoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, "distmult", 4, 8, 2, 1)
	// Corrupt one byte in place.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path, 0); err == nil {
		t.Fatal("corrupt checkpoint became a live store")
	}
}

func TestStoreNeighbors(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, "distmult", 8, 50, 3, 5)
	st, err := OpenStore(path, 7) // ragged shards
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, metric := range []string{"cosine", "dot"} {
		nb, err := st.Neighbors(13, 5, metric)
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		if len(nb) != 5 {
			t.Fatalf("%s: %d neighbors", metric, len(nb))
		}
		// Brute-force oracle.
		sim := cosine
		if metric == "dot" {
			sim = dot
		}
		q := st.EntityRow(13)
		bestE, bestS := -1, float32(math.Inf(-1))
		for e := 0; e < 50; e++ {
			if e == 13 {
				continue
			}
			if s := sim(q, st.EntityRow(e)); s > bestS {
				bestE, bestS = e, s
			}
		}
		if int(nb[0].Entity) != bestE {
			t.Fatalf("%s: top neighbor %d (%g), oracle %d (%g)", metric, nb[0].Entity, nb[0].Score, bestE, bestS)
		}
		for i := 1; i < len(nb); i++ {
			if nb[i].Score > nb[i-1].Score {
				t.Fatalf("%s: neighbors not sorted: %v", metric, nb)
			}
		}
		for _, n := range nb {
			if n.Entity == 13 {
				t.Fatalf("%s: query entity returned as its own neighbor", metric)
			}
		}
	}
	if _, err := st.Neighbors(999, 3, "cosine"); err == nil {
		t.Fatal("out-of-range entity accepted")
	}
	if _, err := st.Neighbors(1, 3, "hamming"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
