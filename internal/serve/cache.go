package serve

import (
	"container/list"
	"hash/maphash"
	"sync"

	"kgedist/internal/metrics"
)

// Cache is a sharded LRU over marshaled responses, keyed on
// (endpoint, canonical query). Sharding keeps lock hold times short under
// concurrent handlers: a key hashes to one shard, each shard has its own
// mutex, recency list and map. Hit/miss accounting is global and atomic.
//
// A Cache belongs to exactly one Store generation — the server allocates a
// fresh cache alongside every loaded store and swaps the pair atomically,
// so a reload can never serve results computed against stale parameters.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	hits   metrics.Counter
	misses metrics.Counter
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// cacheShardCount is a power of two so the hash folds with a mask.
const cacheShardCount = 16

// NewCache returns a cache holding at most capacity entries in total,
// spread across its shards. capacity <= 0 returns a nil cache, on which
// Get/Put are no-ops — the disabled configuration.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &Cache{
		shards: make([]cacheShard, cacheShardCount),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[string]*list.Element, per),
		}
	}
	return c
}

func (c *Cache) shardFor(key string) *cacheShard {
	h := maphash.String(c.seed, key)
	return &c.shards[h&(cacheShardCount-1)]
}

// Get returns the cached value for key, updating recency. The returned
// slice is shared: callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val []byte
	if ok {
		s.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val // read under the lock: Put may replace it
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return val, true
}

// Put stores val under key, evicting the least recently used entry of the
// key's shard when the shard is full.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
		}
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int     `json:"entries"`
	Ratio   float64 `json:"hit_ratio"`
}

// Stats sums per-shard occupancy and the global hit/miss counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Hits: c.hits.Value(), Misses: c.misses.Value()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.Ratio = float64(st.Hits) / float64(total)
	}
	return st
}
