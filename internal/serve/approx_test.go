package serve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kgedist/internal/binpack"
	"kgedist/internal/eval"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// TestPredictApproxFullBudget anchors the approx endpoint to the exact
// path: with a candidate budget covering every entity, stage 2 rescores the
// whole table, so ?mode=approx must return exactly what the batched exact
// sweep returns — same ids, same scores, same order.
func TestPredictApproxFullBudget(t *testing.T) {
	s, url, _ := newTestServer(t, 0)
	n := s.Store().NumEntities()

	var exact, approx predictResponse
	if status, raw := postJSON(t, url+"/v1/predict", map[string]any{
		"head": 0, "relation": 0, "k": 5,
	}, &exact); status != http.StatusOK {
		t.Fatalf("exact: %d %s", status, raw)
	}
	if status, raw := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{
		"head": 0, "relation": 0, "k": 5, "candidates": n,
	}, &approx); status != http.StatusOK {
		t.Fatalf("approx: %d %s", status, raw)
	}
	if approx.Mode != "approx" || approx.Candidates != n || approx.Rescored != n {
		t.Fatalf("approx accounting %+v", approx)
	}
	if len(approx.Completions) != len(exact.Completions) {
		t.Fatalf("approx %d completions, exact %d", len(approx.Completions), len(exact.Completions))
	}
	for i := range exact.Completions {
		if approx.Completions[i] != exact.Completions[i] {
			t.Fatalf("rank %d: approx %+v, exact %+v", i, approx.Completions[i], exact.Completions[i])
		}
	}

	// The mode body field is an alias for the URL parameter.
	var viaBody predictResponse
	if status, raw := postJSON(t, url+"/v1/predict", map[string]any{
		"head": 0, "relation": 0, "k": 5, "mode": "approx", "candidates": n,
	}, &viaBody); status != http.StatusOK || viaBody.Mode != "approx" {
		t.Fatalf("body mode: %d %s %+v", status, raw, viaBody)
	}

	// Head-side approx with full budget matches head-side exact too.
	var exactH, approxH predictResponse
	postJSON(t, url+"/v1/predict", map[string]any{"tail": 1, "relation": 2, "k": 4}, &exactH)
	if status, raw := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{
		"tail": 1, "relation": 2, "k": 4, "candidates": n,
	}, &approxH); status != http.StatusOK {
		t.Fatalf("head approx: %d %s", status, raw)
	}
	for i := range exactH.Completions {
		if approxH.Completions[i] != exactH.Completions[i] {
			t.Fatalf("head rank %d: approx %+v, exact %+v", i, approxH.Completions[i], exactH.Completions[i])
		}
	}

	// Accounting reaches /metrics.
	out := getBody(t, url+"/metrics")
	for _, want := range []string{
		"kgeserve_approx_requests_total 3",
		fmt.Sprintf("kgeserve_approx_candidates_total %d", 3*n),
		fmt.Sprintf("kgeserve_approx_rescored_total %d", 3*n),
		"kgeserve_approx_latency_seconds_count 3",
		"kgeserve_store_packed_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestPredictApproxFilteredAndErrors(t *testing.T) {
	s, url, d := newTestServer(t, 0)
	n := s.Store().NumEntities()

	// Filtered approx: known facts (0,0,1) and (0,0,2) never appear, and
	// with a full budget the result matches filtered exact.
	var exact, approx predictResponse
	postJSON(t, url+"/v1/predict", map[string]any{
		"head": 0, "relation": 0, "k": n, "filtered": true,
	}, &exact)
	if status, raw := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{
		"head": 0, "relation": 0, "k": n, "filtered": true, "candidates": n,
	}, &approx); status != http.StatusOK {
		t.Fatalf("filtered approx: %d %s", status, raw)
	}
	if approx.Rescored != n-2 {
		t.Fatalf("filtered approx rescored %d, want %d", approx.Rescored, n-2)
	}
	for _, c := range approx.Completions {
		for _, tr := range d.Train {
			if tr.H == 0 && tr.R == 0 && c.Entity == tr.T {
				t.Fatalf("filtered approx returned known fact tail %d", c.Entity)
			}
		}
	}
	for i := range exact.Completions {
		if approx.Completions[i] != exact.Completions[i] {
			t.Fatalf("filtered rank %d: approx %+v, exact %+v", i, approx.Completions[i], exact.Completions[i])
		}
	}

	// A tight budget still returns k results, each exactly scored.
	var tight predictResponse
	if status, raw := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{
		"head": 3, "relation": 1, "k": 4, "candidates": 8,
	}, &tight); status != http.StatusOK || len(tight.Completions) != 4 || tight.Candidates != 8 {
		t.Fatalf("tight budget: %d %s %+v", status, raw, tight)
	}
	st := s.Store()
	for _, c := range tight.Completions {
		want := st.Model().ScoreRows(st.EntityRow(3), st.RelationRow(1), st.EntityRow(int(c.Entity)))
		if c.Score != want {
			t.Fatalf("approx score for %d = %g, exact %g", c.Entity, c.Score, want)
		}
	}

	// Validation: unknown mode, bad ids.
	if status, _ := postJSON(t, url+"/v1/predict?mode=warp", map[string]any{"head": 0, "relation": 0}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown mode status %d", status)
	}
	if status, _ := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{"head": 999, "relation": 0}, nil); status != http.StatusBadRequest {
		t.Fatalf("oob entity status %d", status)
	}
	if status, _ := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{"head": 0, "relation": 99}, nil); status != http.StatusBadRequest {
		t.Fatalf("oob relation status %d", status)
	}
}

func TestPredictApproxCaching(t *testing.T) {
	s, url, _ := newTestServer(t, 64)
	exactBody := map[string]any{"head": 0, "relation": 0, "k": 5}
	approxBody := map[string]any{"head": 0, "relation": 0, "k": 5, "candidates": 16}

	var exact, a1, a2 predictResponse
	postJSON(t, url+"/v1/predict", exactBody, &exact)
	postJSON(t, url+"/v1/predict?mode=approx", approxBody, &a1)
	postJSON(t, url+"/v1/predict?mode=approx", approxBody, &a2)
	if a1.Mode != "approx" || fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatalf("cached approx differs: %+v vs %+v", a1, a2)
	}
	// Exact and approx cache under different keys: the exact entry must
	// not have been served for the approx request or vice versa.
	if exact.Mode != "" || exact.Candidates != 0 {
		t.Fatalf("exact response leaked approx fields: %+v", exact)
	}
	if s.state.Load().cache.Stats().Hits < 1 {
		t.Fatal("no cache hit for repeated approx query")
	}
}

// TestConcurrentApproxDuringReload extends the hot-reload acceptance test
// to the two-stage path: approx predicts run full tilt while the live
// checkpoint flips between two same-shape snapshots. Because the packed
// index lives inside the Store and approx queries resolve one state
// snapshot, every response must equal — bit for bit — the approx answer of
// either checkpoint A or checkpoint B, never a hybrid of old codes with
// new rows.
func TestConcurrentApproxDuringReload(t *testing.T) {
	s, url, _ := newTestServer(t, 0)
	pathA := s.Store().Info().Path

	dir := t.TempDir()
	m := model.New("complex", 4)
	p := model.NewParams(m, 30, 4)
	p.Init(m, xrand.New(77))
	pathB := filepath.Join(dir, "alt.kge")
	if err := model.SaveCheckpoint(pathB, m, p); err != nil {
		t.Fatal(err)
	}

	// Expected approx answers per generation, computed on side stores.
	const k, c = 5, 16
	type query struct{ h, r int }
	queries := []query{{0, 0}, {7, 1}, {13, 2}, {21, 3}}
	oracle := func(path string) map[query][]eval.ScoredEntity {
		st, err := OpenStore(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		sc := binpack.NewScratch()
		out := make(map[query][]eval.ScoredEntity, len(queries))
		for _, q := range queries {
			res, _, _, err := st.Packed().Search(st.Model(), "tail",
				st.EntityRow(q.h), st.RelationRow(q.r), st.EntityRow, k, c, nil, sc)
			if err != nil {
				t.Fatal(err)
			}
			out[q] = res
		}
		return out
	}
	wantA, wantB := oracle(pathA), oracle(pathB)

	matches := func(got []Completion, want []eval.ScoredEntity) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Entity != want[i].Entity || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				var resp predictResponse
				status, raw := postJSON(t, url+"/v1/predict?mode=approx", map[string]any{
					"head": q.h, "relation": q.r, "k": k, "candidates": c,
				}, &resp)
				if status != http.StatusOK {
					t.Errorf("approx during reload: %d %s", status, raw)
					return
				}
				if !matches(resp.Completions, wantA[q]) && !matches(resp.Completions, wantB[q]) {
					t.Errorf("query %+v: response %+v matches neither generation (A %+v, B %+v)",
						q, resp.Completions, wantA[q], wantB[q])
					return
				}
			}
		}(w)
	}

	for i := 0; i < 10; i++ {
		path := pathB
		if i%2 == 1 {
			path = pathA
		}
		if err := s.Reload(path); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestStorePackedGeneration pins the swap-as-one-generation invariant at
// the store level: the packed index is built at open time over exactly the
// rows the store serves, and a reload installs a store whose index is a
// different object built from the new rows.
func TestStorePackedGeneration(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	st := s.Store()
	ix := st.Packed()
	if ix == nil {
		t.Fatal("no packed index on open")
	}
	if ix.Rows() != st.NumEntities() {
		t.Fatalf("packed rows %d, store entities %d", ix.Rows(), st.NumEntities())
	}
	if err := s.Reload(""); err != nil {
		t.Fatal(err)
	}
	st2 := s.Store()
	if st2 == st || st2.Packed() == ix {
		t.Fatal("reload did not produce a fresh store+index generation")
	}
}
