package serve

import (
	"errors"
	"sync"
	"time"

	"kgedist/internal/eval"
	"kgedist/internal/metrics"
)

// PredictQuery is one completion request: fix two slots of a triple, rank
// candidates for the third.
type PredictQuery struct {
	// Side is the slot being completed: "head" or "tail".
	Side string
	// H, R, T are the fixed ids. H is ignored when Side == "head", T when
	// Side == "tail".
	H, R, T int
	// K is the number of completions wanted.
	K int
	// Filtered skips candidates that are known facts in the filter index.
	Filtered bool
}

// PredictResult is the outcome of one batched query.
type PredictResult struct {
	Completions []eval.ScoredEntity
	Err         error
}

// ErrBatcherStopped is returned by Submit after Stop.
var ErrBatcherStopped = errors.New("serve: batcher stopped")

// Batcher coalesces concurrent predict queries into shared entity-table
// sweeps. The first query of a batch opens a collection window; queries
// arriving within it (up to maxBatch) join the batch, and the whole batch
// is executed by one exec call that walks the entity table once for all of
// them. Under bursty load the window rarely expires: while one batch
// executes, the next fills, so batch size adapts to pressure.
type Batcher struct {
	reqs    chan *batchReq
	window  time.Duration
	max     int
	exec    func([]PredictQuery) []PredictResult
	sizes   *metrics.Histogram
	quit    chan struct{}
	done    chan struct{}
	mu      sync.RWMutex // guards stopped against in-flight Submit sends
	stopped bool

	// Dispatcher-goroutine-only scratch, reused across batches so the
	// steady-state dispatch path allocates nothing per batch.
	batchBuf []*batchReq
	qsBuf    []PredictQuery
}

type batchReq struct {
	q   PredictQuery
	out chan PredictResult
}

// NewBatcher starts a batcher. exec receives 1..maxBatch queries and must
// return exactly one result per query, in order. The query slice is
// batcher-owned scratch, valid only for the duration of the call — exec
// must not retain it. window <= 0 flushes as soon as the queue drains;
// maxBatch is clamped to at least 1.
func NewBatcher(maxBatch int, window time.Duration, sizes *metrics.Histogram, exec func([]PredictQuery) []PredictResult) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &Batcher{
		reqs:   make(chan *batchReq, 4*maxBatch),
		window: window,
		max:    maxBatch,
		exec:   exec,
		sizes:  sizes,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Submit enqueues one query and blocks until its batch executes.
func (b *Batcher) Submit(q PredictQuery) PredictResult {
	r := &batchReq{q: q, out: make(chan PredictResult, 1)}
	b.mu.RLock()
	if b.stopped {
		b.mu.RUnlock()
		return PredictResult{Err: ErrBatcherStopped}
	}
	b.reqs <- r
	b.mu.RUnlock()
	return <-r.out
}

// Stop drains pending queries, waits for the dispatcher to exit, and makes
// further Submit calls fail fast. Safe to call more than once.
func (b *Batcher) Stop() {
	b.mu.Lock()
	already := b.stopped
	b.stopped = true
	b.mu.Unlock()
	if !already {
		close(b.quit)
	}
	<-b.done
}

// dispatch is the batcher's single consumer goroutine: it coalesces queued
// queries into batches and executes them, recycling the request and query
// buffers across iterations so the steady-state serve path does not allocate.
//
//kgelint:hotpath
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		var first *batchReq
		select {
		case first = <-b.reqs:
		case <-b.quit:
			// Stop holds the write lock until no Submit send is in
			// flight, so everything ever enqueued is in the buffer now.
			b.drain()
			return
		}
		batch := append(b.batchBuf[:0], first)
		if b.window > 0 {
			timer := time.NewTimer(b.window)
		collect:
			for len(batch) < b.max {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break collect
				case <-b.quit:
					break collect
				}
			}
			timer.Stop()
		} else {
			for len(batch) < b.max {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				default:
					goto run
				}
			}
		}
	run:
		b.batchBuf = batch // hand grown capacity back for the next batch
		b.run(batch)
	}
}

// drain executes whatever is left in the queue after Stop, in maxBatch
// chunks, so no Submit is left blocked.
func (b *Batcher) drain() {
	for {
		batch := b.batchBuf[:0]
		for len(batch) < b.max {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			default:
				if len(batch) == 0 {
					return
				}
				b.run(batch)
				batch = batch[:0]
				continue
			}
		}
		b.run(batch)
	}
}

func (b *Batcher) run(batch []*batchReq) {
	if b.sizes != nil {
		b.sizes.Observe(float64(len(batch)))
	}
	if cap(b.qsBuf) < len(batch) {
		b.qsBuf = make([]PredictQuery, len(batch))
	}
	qs := b.qsBuf[:len(batch)]
	for i, r := range batch {
		qs[i] = r.q
	}
	outs := b.exec(qs)
	for i, r := range batch {
		if i < len(outs) {
			r.out <- outs[i]
		} else {
			r.out <- PredictResult{Err: errors.New("serve: batch exec returned short result set")}
		}
		batch[i] = nil // drop the request reference; batch is recycled
	}
}
