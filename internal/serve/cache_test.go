package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("1"))
	v, ok := c.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	c.Put("a", []byte("2")) // overwrite
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Ratio <= 0.66 || st.Ratio >= 0.67 {
		t.Fatalf("ratio %v", st.Ratio)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 16 = one entry per shard: a second insert hashing to the
	// same shard evicts the older one. Fill far beyond capacity and check
	// the bound holds and the newest keys survive.
	c := NewCache(16)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("cache grew past capacity: %d entries", st.Entries)
	}
	if st.Entries == 0 {
		t.Fatal("cache empty after inserts")
	}
}

func TestCacheRecency(t *testing.T) {
	// One shard of capacity 2 (total 32 across 16 shards): find two keys
	// in the same shard, touch the first, insert a third colliding key,
	// and verify the untouched key was the victim.
	c := NewCache(32)
	shardOf := func(k string) *cacheShard { return c.shardFor(k) }
	var same []string
	base := shardOf("seed")
	for i := 0; len(same) < 3 && i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if shardOf(k) == base {
			same = append(same, k)
		}
	}
	if len(same) < 3 {
		t.Skip("hash never collided in 10000 tries")
	}
	c.Put(same[0], []byte("0"))
	c.Put(same[1], []byte("1"))
	if _, ok := c.Get(same[0]); !ok { // refresh recency of same[0]
		t.Fatal("warm entry missing")
	}
	c.Put(same[2], []byte("2")) // shard full: evicts LRU = same[1]
	if _, ok := c.Get(same[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("1")) // no-op, no panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache stats %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%97)
				if i%3 == 0 {
					c.Put(k, []byte{byte(w)})
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if st.Entries > 128+cacheShardCount {
		t.Fatalf("entries %d beyond capacity", st.Entries)
	}
}
