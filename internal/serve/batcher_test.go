package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kgedist/internal/eval"
	"kgedist/internal/metrics"
)

// echoExec returns each query's K as a single fake completion, recording
// batch sizes.
func echoExec(calls *atomic.Int64, maxSeen *atomic.Int64) func([]PredictQuery) []PredictResult {
	return func(qs []PredictQuery) []PredictResult {
		calls.Add(1)
		for {
			cur := maxSeen.Load()
			if int64(len(qs)) <= cur || maxSeen.CompareAndSwap(cur, int64(len(qs))) {
				break
			}
		}
		outs := make([]PredictResult, len(qs))
		for i, q := range qs {
			outs[i] = PredictResult{Completions: []eval.ScoredEntity{{Entity: int32(q.K), Score: float32(q.K)}}}
		}
		return outs
	}
}

func TestBatcherDeliversPerRequestResults(t *testing.T) {
	var calls, maxSeen atomic.Int64
	b := NewBatcher(8, time.Millisecond, nil, echoExec(&calls, &maxSeen))
	defer b.Stop()
	var wg sync.WaitGroup
	for i := 1; i <= 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := b.Submit(PredictQuery{Side: "tail", K: i})
			if res.Err != nil {
				t.Errorf("submit %d: %v", i, res.Err)
				return
			}
			if len(res.Completions) != 1 || int(res.Completions[0].Entity) != i {
				t.Errorf("submit %d got %v", i, res.Completions)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() == 0 {
		t.Fatal("exec never called")
	}
}

func TestBatcherCoalesces(t *testing.T) {
	var calls, maxSeen atomic.Int64
	sizes := metrics.NewHistogram(metrics.SizeBuckets(64)...)
	// A slow exec guarantees queries pile up behind the running batch.
	slow := echoExec(&calls, &maxSeen)
	exec := func(qs []PredictQuery) []PredictResult {
		time.Sleep(2 * time.Millisecond)
		return slow(qs)
	}
	b := NewBatcher(16, 5*time.Millisecond, sizes, exec)
	defer b.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res := b.Submit(PredictQuery{Side: "tail", K: i + 1}); res.Err != nil {
				t.Errorf("submit: %v", res.Err)
			}
		}(i)
	}
	wg.Wait()
	if maxSeen.Load() < 2 {
		t.Fatalf("64 concurrent queries never coalesced (max batch %d)", maxSeen.Load())
	}
	if calls.Load() >= 64 {
		t.Fatalf("no batching: %d exec calls for 64 queries", calls.Load())
	}
	s := sizes.Snapshot()
	if s.Count != calls.Load() {
		t.Fatalf("batch histogram recorded %d batches, exec ran %d", s.Count, calls.Load())
	}
	if s.Sum != 64 {
		t.Fatalf("batch histogram total %g queries, want 64", s.Sum)
	}
}

func TestBatcherRespectsMaxBatch(t *testing.T) {
	var calls, maxSeen atomic.Int64
	b := NewBatcher(4, 50*time.Millisecond, nil, echoExec(&calls, &maxSeen))
	defer b.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Submit(PredictQuery{Side: "tail", K: i + 1})
		}(i)
	}
	wg.Wait()
	if maxSeen.Load() > 4 {
		t.Fatalf("batch of %d exceeded maxBatch 4", maxSeen.Load())
	}
}

func TestBatcherStopDrainsAndRejects(t *testing.T) {
	var calls, maxSeen atomic.Int64
	b := NewBatcher(4, time.Millisecond, nil, echoExec(&calls, &maxSeen))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := b.Submit(PredictQuery{Side: "tail", K: i + 1})
			// Either served before the drain finished or rejected cleanly;
			// never a hang (the test would time out) or a lost result.
			if res.Err == nil && len(res.Completions) != 1 {
				t.Errorf("lost result: %+v", res)
			}
		}(i)
	}
	b.Stop()
	wg.Wait()
	if res := b.Submit(PredictQuery{Side: "tail", K: 1}); res.Err != ErrBatcherStopped {
		t.Fatalf("post-stop submit: %v", res.Err)
	}
	b.Stop() // idempotent
}
