// Package serve is the inference half of the system: it loads trained
// embedding checkpoints into an immutable, shard-partitioned read-only
// store and answers scoring, completion and similarity queries over HTTP.
// Training owns the mutable tensor.Matrix path; serving deliberately does
// not share it — a Store is frozen at load time, every method is safe for
// unlimited concurrent readers, and checkpoint upgrades happen by swapping
// whole stores atomically (see Server), never by mutating one in place.
package serve

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"kgedist/internal/binpack"
	"kgedist/internal/eval"
	"kgedist/internal/model"
)

// Store is a read-only snapshot of one checkpoint's embeddings. Entity rows
// are partitioned into contiguous shards, each with its own backing slice:
// shards bound the working set of a parallel sweep (predict and neighbors
// walk shards on separate goroutines) and keep any single allocation small
// enough for the allocator to place comfortably at FB250K scale.
type Store struct {
	m     model.Model
	width int

	numEntities  int
	numRelations int

	shardRows int         // entity rows per shard (last shard may be short)
	shards    [][]float32 // shard s holds rows [s*shardRows, min((s+1)*shardRows, numEntities))
	relations []float32   // relation matrix, single slab (relation counts are small)

	// packed is the 1-bit candidate-generation index over the same entity
	// rows (mode=approx predicts). Built at open time from the frozen
	// slabs, it lives and dies with the store, so a hot reload swaps the
	// full-precision rows and their binarized codes as one generation —
	// an approx query can never pair old codes with new rows.
	packed *binpack.Index

	info StoreInfo
}

// StoreInfo identifies the checkpoint a store was built from; /healthz
// reports it so operators can tell which parameter snapshot is live.
type StoreInfo struct {
	Path     string    `json:"path"`
	Model    string    `json:"model"`
	Dim      int       `json:"dim"`
	Entities int       `json:"entities"`
	Relation int       `json:"relations"`
	CRC      string    `json:"crc32"`
	LoadedAt time.Time `json:"loaded_at"`
}

// DefaultShardRows bounds one shard to ~16k rows; at dim 200 ComplEx that
// is a ~25MB slab, big enough to amortize sweep overhead and small enough
// to parallelize mini benchmarks.
const DefaultShardRows = 16384

// OpenStore loads the KGE2 checkpoint at path into a new Store. shardRows
// sets the entity partition grain (<= 0 selects DefaultShardRows). The
// checkpoint is CRC-validated by the load; a corrupt file never becomes a
// live store.
func OpenStore(path string, shardRows int) (*Store, error) {
	info, err := model.ReadCheckpointInfo(path)
	if err != nil {
		return nil, err
	}
	m, p, err := model.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if shardRows <= 0 {
		shardRows = DefaultShardRows
	}
	s := &Store{
		m:            m,
		width:        m.Width(),
		numEntities:  p.Entity.Rows,
		numRelations: p.Relation.Rows,
		shardRows:    shardRows,
		relations:    p.Relation.Data,
		info: StoreInfo{
			Path:     path,
			Model:    info.Model,
			Dim:      info.Dim,
			Entities: info.Entities,
			Relation: info.Relations,
			CRC:      fmt.Sprintf("%08x", info.CRC),
			LoadedAt: time.Now().UTC(),
		},
	}
	// Carve the entity matrix into per-shard slabs, copied out of the
	// loaded Params so the store owns its memory outright and the
	// training-shaped Params can be collected.
	numShards := (s.numEntities + shardRows - 1) / shardRows
	if numShards == 0 {
		numShards = 1
		s.shards = [][]float32{{}}
	} else {
		s.shards = make([][]float32, numShards)
		for i := 0; i < numShards; i++ {
			lo, hi := s.shardBounds(i)
			slab := make([]float32, (hi-lo)*s.width)
			copy(slab, p.Entity.Data[lo*s.width:hi*s.width])
			s.shards[i] = slab
		}
	}
	// Binarize the entity table for mode=approx candidate generation.
	// Models without a binarization rule simply serve without an approx
	// path; that is a per-request error, not a load failure.
	if packed, err := binpack.Build(m, s.numEntities, s.EntityRow); err == nil {
		s.packed = packed
	}
	return s, nil
}

// Packed returns the 1-bit candidate-generation index built over this
// store's entity rows, or nil when the model has no binarization rule.
func (s *Store) Packed() *binpack.Index { return s.packed }

func (s *Store) shardBounds(i int) (lo, hi int) {
	lo = i * s.shardRows
	hi = lo + s.shardRows
	if hi > s.numEntities {
		hi = s.numEntities
	}
	return lo, hi
}

// Model returns the scoring model (stateless; safe to share).
func (s *Store) Model() model.Model { return s.m }

// Info returns the checkpoint identity.
func (s *Store) Info() StoreInfo { return s.info }

// NumEntities returns the number of entity rows.
func (s *Store) NumEntities() int { return s.numEntities }

// NumRelations returns the number of relation rows.
func (s *Store) NumRelations() int { return s.numRelations }

// NumShards returns the entity shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// EntityRow returns entity id's embedding row. The slice aliases the
// store's immutable slab: callers must treat it as read-only.
func (s *Store) EntityRow(id int) []float32 {
	if id < 0 || id >= s.numEntities {
		panic("serve: entity id out of range")
	}
	shard := id / s.shardRows
	off := (id - shard*s.shardRows) * s.width
	return s.shards[shard][off : off+s.width]
}

// RelationRow returns relation id's embedding row (read-only).
func (s *Store) RelationRow(id int) []float32 {
	if id < 0 || id >= s.numRelations {
		panic("serve: relation id out of range")
	}
	return s.relations[id*s.width : (id+1)*s.width]
}

// Score computes the model score of (h, r, t).
func (s *Store) Score(h, r, t int) float32 {
	return s.m.ScoreRows(s.EntityRow(h), s.RelationRow(r), s.EntityRow(t))
}

// sweepShards runs fn(shardIndex, loEntity, hiEntity) over all entity
// shards, in parallel when more than one worker is useful. Workers are
// capped at GOMAXPROCS; fn must be safe to run concurrently with itself on
// disjoint shards.
func (s *Store) sweepShards(fn func(shard, lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i := range s.shards {
			lo, hi := s.shardBounds(i)
			fn(i, lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				lo, hi := s.shardBounds(i)
				fn(i, lo, hi)
			}
		}()
	}
	for i := range s.shards {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Neighbors returns the k entities most similar to entity id under the
// given metric ("cosine" or "dot"), excluding the query entity itself. The
// sweep is parallel across shards with per-shard accumulators merged at
// the end — a read-only fan-out with no locks on the hot path.
func (s *Store) Neighbors(id, k int, metric string) ([]eval.ScoredEntity, error) {
	if id < 0 || id >= s.numEntities {
		return nil, fmt.Errorf("serve: entity %d out of range [0,%d)", id, s.numEntities)
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: non-positive k %d", k)
	}
	var sim func(q, c []float32) float32
	switch metric {
	case "", "cosine":
		sim = cosine
	case "dot":
		sim = dot
	default:
		return nil, fmt.Errorf("serve: unknown similarity metric %q", metric)
	}
	q := s.EntityRow(id)
	accs := make([]*eval.TopKAccumulator, len(s.shards))
	s.sweepShards(func(shard, lo, hi int) {
		acc := eval.NewTopK(k)
		slab := s.shards[shard]
		for e := lo; e < hi; e++ {
			if e == id {
				continue
			}
			off := (e - lo) * s.width
			acc.Offer(int32(e), sim(q, slab[off:off+s.width]))
		}
		accs[shard] = acc
	})
	merged := accs[0]
	for _, a := range accs[1:] {
		merged.Merge(a)
	}
	return merged.Results(), nil
}

func dot(a, b []float32) float32 {
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

func cosine(a, b []float32) float32 {
	var num, na, nb float64
	for i, av := range a {
		num += float64(av) * float64(b[i])
		na += float64(av) * float64(av)
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(num / (math.Sqrt(na) * math.Sqrt(nb)))
}
