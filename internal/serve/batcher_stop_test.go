package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherStopShutdownOrdering is the shutdown contract under contention:
// with many goroutines submitting while Stop fires mid-stream, every single
// Submit must resolve — either with a real result (the query was enqueued
// before the stop and must be drained) or with ErrBatcherStopped — and
// nothing may be both executed and rejected, double-delivered, or leaked
// blocked forever. Run under -race this also proves the stopped-flag /
// channel-send ordering is data-race free.
func TestBatcherStopShutdownOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shutdown stress skipped in -short mode")
	}
	const (
		rounds     = 20
		submitters = 16
		perWorker  = 50
	)
	for round := 0; round < rounds; round++ {
		var executed atomic.Int64
		exec := func(qs []PredictQuery) []PredictResult {
			executed.Add(int64(len(qs)))
			return make([]PredictResult, len(qs))
		}
		b := NewBatcher(4, 50*time.Microsecond, nil, exec)

		var delivered, rejected atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < perWorker; i++ {
					res := b.Submit(PredictQuery{Side: "tail", K: i})
					switch {
					case res.Err == nil:
						delivered.Add(1)
					case errors.Is(res.Err, ErrBatcherStopped):
						rejected.Add(1)
					default:
						t.Errorf("unexpected submit error: %v", res.Err)
					}
				}
			}()
		}
		// Stop from a racing goroutine partway into the stream, plus a
		// concurrent second Stop to pin idempotency.
		stopDone := make(chan struct{})
		go func() {
			defer close(stopDone)
			<-start
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
			var inner sync.WaitGroup
			for s := 0; s < 2; s++ {
				inner.Add(1)
				go func() { defer inner.Done(); b.Stop() }()
			}
			inner.Wait()
		}()
		close(start)

		waitDone := make(chan struct{})
		go func() { wg.Wait(); close(waitDone) }()
		select {
		case <-waitDone:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: submits leaked: %d delivered, %d rejected of %d total",
				round, delivered.Load(), rejected.Load(), submitters*perWorker)
		}
		<-stopDone

		// Conservation: every submit resolved exactly one way, and exec saw
		// exactly the delivered ones.
		total := delivered.Load() + rejected.Load()
		if want := int64(submitters * perWorker); total != want {
			t.Fatalf("round %d: %d submits resolved, want %d", round, total, want)
		}
		if executed.Load() != delivered.Load() {
			t.Fatalf("round %d: exec processed %d queries but %d were delivered",
				round, executed.Load(), delivered.Load())
		}

		// After Stop everything fails fast, including from fresh goroutines.
		if res := b.Submit(PredictQuery{Side: "head"}); !errors.Is(res.Err, ErrBatcherStopped) {
			t.Fatalf("round %d: post-stop submit returned %v", round, res.Err)
		}
		b.Stop() // third stop: still safe
	}
}

// TestBatcherStopWithSlowExec pins the drain path when Stop arrives while
// exec is busy and the request buffer is full: the blocked Submits must all
// drain through exec rather than erroring or hanging.
func TestBatcherStopWithSlowExec(t *testing.T) {
	var executed atomic.Int64
	gate := make(chan struct{})
	exec := func(qs []PredictQuery) []PredictResult {
		<-gate // hold the first batch until Stop is pending
		executed.Add(int64(len(qs)))
		return make([]PredictResult, len(qs))
	}
	b := NewBatcher(2, 0, nil, exec)

	const n = 24
	var wg sync.WaitGroup
	var delivered, rejected atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := b.Submit(PredictQuery{Side: "tail"})
			switch {
			case res.Err == nil:
				delivered.Add(1)
			case errors.Is(res.Err, ErrBatcherStopped):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", res.Err)
			}
		}()
	}
	// Give the submitters time to pile into the buffer behind the gated
	// exec, then release the gate only after Stop is already waiting.
	time.Sleep(5 * time.Millisecond)
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(gate)
	}()
	b.Stop()
	wg.Wait()
	if got := delivered.Load() + rejected.Load(); got != n {
		t.Fatalf("%d of %d submits resolved", got, n)
	}
	if executed.Load() != delivered.Load() {
		t.Fatalf("exec processed %d, delivered %d", executed.Load(), delivered.Load())
	}
	if delivered.Load() == 0 {
		t.Fatal("drain delivered nothing; enqueued work was dropped")
	}
}
