package core

import (
	"fmt"

	"kgedist/internal/grad"
	"kgedist/internal/mpi"
	"kgedist/internal/xrand"
)

// Tags used for per-matrix communication accounting. RelationCommBytes in
// Result comes straight from these counters, making the §4.4 claim (zero
// relation communication under RP) directly measurable. The checkpoint and
// recovery tags account the fault-tolerance overhead separately so it never
// pollutes the gradient-exchange figures.
const (
	tagEntity     = "entity"
	tagRelation   = "relation"
	tagProbe      = "probe"
	tagCheckpoint = "checkpoint"
	tagRecovery   = "recovery"
	// Partitioned-mode row exchange: remote-row requests and replies ride
	// "pull", gradient rows returning to their owners ride "push".
	tagPull = "pull"
	tagPush = "push"
)

// exchanger performs one rank's gradient exchanges, owning the scratch
// buffers, quantization RNG and error-feedback residuals. Every exchange can
// fail with *mpi.RankFailedError when a peer dies mid-collective; the caller
// propagates the error out of the worker so the recovery loop can shrink the
// world and resume.
//
// All scratch (dense staging, codec state, aggregate accumulators) is
// reused across batches, so the steady-state exchange allocates only its
// wire payloads — which must stay fresh because the all-gather ring shares
// them across ranks (see mpi.AllGatherRows). The aggregates returned by
// exchange alias exchanger-owned storage and are valid only until the next
// exchange call (probes leave them untouched); the trainer applies them
// before exchanging again.
type exchanger struct {
	cfg    *Config
	comm   *mpi.Comm
	width  int
	numEnt int
	numRel int
	entBuf []float32 // dense all-reduce scratch, numEnt*width
	relBuf []float32 // dense all-reduce scratch, numRel*width
	qRng   *xrand.RNG
	entRes *grad.Residual
	relRes *grad.Residual
	enc    grad.Encoded     // quantization encode scratch
	dec    grad.Encoded     // payload decode scratch
	entAgg *grad.SparseGrad // aggregate accumulator, reused per batch
	relAgg *grad.SparseGrad
}

func newExchanger(cfg *Config, comm *mpi.Comm, width, numEnt, numRel int, rng *xrand.RNG) *exchanger {
	x := &exchanger{
		cfg:    cfg,
		comm:   comm,
		width:  width,
		numEnt: numEnt,
		numRel: numRel,
		qRng:   rng,
	}
	if cfg.ErrorFeedback {
		x.entRes = grad.NewResidual(width)
		x.relRes = grad.NewResidual(width)
	}
	x.entAgg = grad.NewSparseGrad(width)
	x.relAgg = grad.NewSparseGrad(width)
	return x
}

// scaleRows divides every row by the world size, matching Horovod's
// gradient averaging.
func scaleRows(g *grad.SparseGrad, p int) {
	if p <= 1 {
		return
	}
	inv := 1 / float32(p)
	g.ForEach(func(_ int32, row []float32) {
		for i := range row {
			row[i] *= inv
		}
	})
}

// allReduce densifies the sparse gradient, ring-all-reduces it, and returns
// the averaged aggregate (in agg, which is cleared first). Full precision by
// construction: summing quantized payloads element-wise is not defined,
// which is why the paper's quantized exchanges ride the all-gather path.
func (x *exchanger) allReduce(g, agg *grad.SparseGrad, rows int, buf *[]float32, tag string) (*grad.SparseGrad, float64, error) {
	if *buf == nil {
		*buf = make([]float32, rows*x.width)
	}
	g.ScatterDense(*buf)
	cost, err := x.comm.AllReduceSum(*buf, tag)
	if err != nil {
		return nil, 0, err
	}
	agg.Clear()
	agg.AccumulateDense(*buf)
	scaleRows(agg, x.comm.Size())
	return agg, cost, nil
}

// allGather exchanges only non-zero rows, accumulating all ranks'
// contributions into agg (cleared first). With quantization enabled the
// rows are encoded to the configured scheme (1 or 2 bits per value plus one
// scale per row) before hitting the wire. Encode and decode go through the
// exchanger's Encoded scratch; only the marshaled wire payload is freshly
// allocated, as the all-gather contract requires.
func (x *exchanger) allGather(g, agg *grad.SparseGrad, res *grad.Residual, tag string) (*grad.SparseGrad, float64, error) {
	agg.Clear()
	var cost float64
	if x.cfg.ValueSparsify > 0 {
		vs := grad.SparsifyValues(g, x.cfg.ValueSparsify)
		payloads, c, err := x.comm.AllGatherBytes(vs.Marshal(), tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for _, p := range payloads {
			dec, err := grad.UnmarshalValueSparse(p)
			if err != nil {
				panic(fmt.Sprintf("core: corrupt value-sparse payload: %v", err))
			}
			dec.AddInto(agg)
		}
		scaleRows(agg, x.comm.Size())
		return agg, cost, nil
	}
	if x.cfg.Quant == grad.NoQuant {
		idx, flat := g.Flatten()
		allIdx, allVals, c, err := x.comm.AllGatherRows(idx, flat, tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for src := range allIdx {
			agg.AddFlat(allIdx[src], allVals[src])
		}
	} else {
		if res != nil {
			res.AddInto(g)
		}
		grad.QuantizeInto(&x.enc, g, x.cfg.Quant, x.qRng)
		if res != nil {
			res.Update(g, &x.enc)
		}
		payloads, c, err := x.comm.AllGatherBytes(x.enc.Marshal(), tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for _, p := range payloads {
			if err := grad.UnmarshalInto(&x.dec, p); err != nil {
				panic(fmt.Sprintf("core: corrupt quantized payload: %v", err))
			}
			grad.Dequantize(&x.dec, agg)
		}
	}
	scaleRows(agg, x.comm.Size())
	return agg, cost, nil
}

// exchange aggregates the entity and relation gradients under the given
// mode ("allreduce" or "allgather"). Under relation partition the relation
// gradient is returned as-is: rank-local, full precision, zero cost. The
// returned aggregates alias exchanger-owned scratch (or relG itself) and
// are valid only until the next exchange call.
//
//kgelint:hotpath
func (x *exchanger) exchange(entG, relG *grad.SparseGrad, mode string) (entAgg, relAgg *grad.SparseGrad, cost float64, err error) {
	switch mode {
	case "allreduce":
		entAgg, cost, err = x.allReduce(entG, x.entAgg, x.numEnt, &x.entBuf, tagEntity)
	case "allgather":
		entAgg, cost, err = x.allGather(entG, x.entAgg, x.entRes, tagEntity)
	default:
		panic("core: unknown exchange mode " + mode)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if x.cfg.RelationPartition {
		relAgg = relG // rank-private, never communicated (§4.4)
		return entAgg, relAgg, cost, nil
	}
	var relCost float64
	switch mode {
	case "allreduce":
		relAgg, relCost, err = x.allReduce(relG, x.relAgg, x.numRel, &x.relBuf, tagRelation)
	case "allgather":
		relAgg, relCost, err = x.allGather(relG, x.relAgg, x.relRes, tagRelation)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	return entAgg, relAgg, cost + relCost, nil
}

// probeAllGather performs a throwaway all-gather of the same payloads to
// measure its cost for the dynamic strategy's §4.1 probe. The results are
// discarded; error-feedback residuals are left untouched.
//
//kgelint:hotpath
func (x *exchanger) probeAllGather(entG, relG *grad.SparseGrad) (float64, error) {
	probe := func(g *grad.SparseGrad) (float64, error) {
		if x.cfg.Quant == grad.NoQuant {
			idx, flat := g.Flatten()
			_, _, c, err := x.comm.AllGatherRows(idx, flat, tagProbe)
			return c, err
		}
		grad.QuantizeInto(&x.enc, g, x.cfg.Quant, x.qRng)
		_, c, err := x.comm.AllGatherBytes(x.enc.Marshal(), tagProbe)
		return c, err
	}
	cost, err := probe(entG)
	if err != nil {
		return 0, err
	}
	if !x.cfg.RelationPartition {
		relCost, err := probe(relG)
		if err != nil {
			return 0, err
		}
		cost += relCost
	}
	return cost, nil
}
