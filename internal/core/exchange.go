package core

import (
	"fmt"

	"kgedist/internal/grad"
	"kgedist/internal/mpi"
	"kgedist/internal/xrand"
)

// Tags used for per-matrix communication accounting. RelationCommBytes in
// Result comes straight from these counters, making the §4.4 claim (zero
// relation communication under RP) directly measurable. The checkpoint and
// recovery tags account the fault-tolerance overhead separately so it never
// pollutes the gradient-exchange figures.
const (
	tagEntity     = "entity"
	tagRelation   = "relation"
	tagProbe      = "probe"
	tagCheckpoint = "checkpoint"
	tagRecovery   = "recovery"
	// Partitioned-mode row exchange: remote-row requests and replies ride
	// "pull", gradient rows returning to their owners ride "push".
	tagPull = "pull"
	tagPush = "push"
	// Adaptive-compression control plane: the tiny per-epoch all-reduce of
	// controller statistics (DESIGN.md §13) is accounted separately so it
	// never pollutes the gradient-exchange figures.
	tagCtrl = "ctrl"
)

// exchanger performs one rank's gradient exchanges, owning the scratch
// buffers, quantization RNG and error-feedback residuals. Every exchange can
// fail with *mpi.RankFailedError when a peer dies mid-collective; the caller
// propagates the error out of the worker so the recovery loop can shrink the
// world and resume.
//
// All scratch (dense staging, codec state, aggregate accumulators) is
// reused across batches, so the steady-state exchange allocates only its
// wire payloads — which must stay fresh because the all-gather ring shares
// them across ranks (see mpi.AllGatherRows). The aggregates returned by
// exchange alias exchanger-owned storage and are valid only until the next
// exchange call (probes leave them untouched); the trainer applies them
// before exchanging again.
type exchanger struct {
	cfg    *Config
	comm   *mpi.Comm
	width  int
	numEnt int
	numRel int
	entBuf []float32 // dense all-reduce scratch, numEnt*width
	relBuf []float32 // dense all-reduce scratch, numRel*width
	qRng   *xrand.RNG
	entRes *grad.Residual
	relRes *grad.Residual
	enc    grad.Encoded     // quantization encode scratch
	dec    grad.Encoded     // payload decode scratch
	entAgg *grad.SparseGrad // aggregate accumulator, reused per batch
	relAgg *grad.SparseGrad

	// Adaptive-compression state (CommDynamicCompress only; DESIGN.md §13).
	// The controller accumulates per-batch gradient statistics and walks the
	// ladder at epoch boundaries; the mergers own the compressed-hop scratch
	// of the two matrices; sRng and mRng are dedicated streams for the RS
	// rung's selection and the hop merges' ternary re-encoding, split off the
	// exchanger rng so the rungs below them leave existing streams untouched.
	ctrl       *grad.Controller
	entMg      grad.Merger
	relMg      grad.Merger
	sRng       *xrand.RNG
	mRng       *xrand.RNG
	statsBuf   [grad.CtrlStatsLen]float32
	selBefore  int // ladder-RS selection tallies for EpochStats.Sparsity,
	selDropped int // accumulated per batch, drained at the epoch boundary
}

func newExchanger(cfg *Config, comm *mpi.Comm, width, numEnt, numRel int, rng *xrand.RNG) *exchanger {
	x := &exchanger{
		cfg:    cfg,
		comm:   comm,
		width:  width,
		numEnt: numEnt,
		numRel: numRel,
		qRng:   rng,
	}
	if cfg.ErrorFeedback {
		x.entRes = grad.NewResidual(width)
		x.relRes = grad.NewResidual(width)
	}
	if cfg.Comm == CommDynamicCompress {
		// Error feedback is integral to the ladder's lossy rungs
		// (DESIGN.md §13); the controller and residuals restart fresh each
		// attempt, so after a shrink-recovery the ladder re-ascends from
		// fp32 deterministically.
		x.ctrl = grad.NewController(cfg.CompressHold, cfg.CompressWarmup)
		x.entRes = grad.NewResidual(width)
		x.relRes = grad.NewResidual(width)
		x.sRng = rng.Split(11)
		x.mRng = rng.Split(12)
	}
	x.entAgg = grad.NewSparseGrad(width)
	x.relAgg = grad.NewSparseGrad(width)
	return x
}

// scaleRows divides every row by the world size, matching Horovod's
// gradient averaging.
func scaleRows(g *grad.SparseGrad, p int) {
	if p <= 1 {
		return
	}
	inv := 1 / float32(p)
	g.ForEach(func(_ int32, row []float32) {
		for i := range row {
			row[i] *= inv
		}
	})
}

// allReduce densifies the sparse gradient, ring-all-reduces it, and returns
// the averaged aggregate (in agg, which is cleared first). Full precision by
// construction: summing quantized payloads element-wise is not defined,
// which is why the paper's quantized exchanges ride the all-gather path.
func (x *exchanger) allReduce(g, agg *grad.SparseGrad, rows int, buf *[]float32, tag string) (*grad.SparseGrad, float64, error) {
	if *buf == nil {
		*buf = make([]float32, rows*x.width)
	}
	g.ScatterDense(*buf)
	cost, err := x.comm.AllReduceSum(*buf, tag)
	if err != nil {
		return nil, 0, err
	}
	agg.Clear()
	agg.AccumulateDense(*buf)
	scaleRows(agg, x.comm.Size())
	return agg, cost, nil
}

// allGather exchanges only non-zero rows, accumulating all ranks'
// contributions into agg (cleared first). With quantization enabled the
// rows are encoded to the configured scheme (1 or 2 bits per value plus one
// scale per row) before hitting the wire. Encode and decode go through the
// exchanger's Encoded scratch; only the marshaled wire payload is freshly
// allocated, as the all-gather contract requires.
func (x *exchanger) allGather(g, agg *grad.SparseGrad, res *grad.Residual, tag string) (*grad.SparseGrad, float64, error) {
	agg.Clear()
	var cost float64
	if x.cfg.ValueSparsify > 0 {
		vs := grad.SparsifyValues(g, x.cfg.ValueSparsify)
		payloads, c, err := x.comm.AllGatherBytes(vs.Marshal(), tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for _, p := range payloads {
			dec, err := grad.UnmarshalValueSparse(p)
			if err != nil {
				panic(fmt.Sprintf("core: corrupt value-sparse payload: %v", err))
			}
			dec.AddInto(agg)
		}
		scaleRows(agg, x.comm.Size())
		return agg, cost, nil
	}
	if x.cfg.Quant == grad.NoQuant {
		idx, flat := g.Flatten()
		allIdx, allVals, c, err := x.comm.AllGatherRows(idx, flat, tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for src := range allIdx {
			agg.AddFlat(allIdx[src], allVals[src])
		}
	} else {
		if res != nil {
			res.AddInto(g)
		}
		grad.QuantizeInto(&x.enc, g, x.cfg.Quant, x.qRng)
		if res != nil {
			res.Update(g, &x.enc)
		}
		payloads, c, err := x.comm.AllGatherBytes(x.enc.Marshal(), tag)
		if err != nil {
			return nil, 0, err
		}
		cost = c
		for _, p := range payloads {
			if err := grad.UnmarshalInto(&x.dec, p); err != nil {
				panic(fmt.Sprintf("core: corrupt quantized payload: %v", err))
			}
			grad.Dequantize(&x.dec, agg)
		}
	}
	scaleRows(agg, x.comm.Size())
	return agg, cost, nil
}

// compressed runs one matrix through the adaptive pipeline at the ladder's
// current rung (DESIGN.md §13): error-feedback residual in, RS selection
// (top rung only, dropped rows banked whole), quantization to the rung's
// scheme, the compressed-hop reduce-scatter, then an all-gather of the
// disjoint reduced chunks — still encoded — and a local decode into agg.
// At fp32 the same pipeline runs with NoQuant frames and no residual: the
// reduction is exact, only the framing differs from the dense baseline.
func (x *exchanger) compressed(g, agg *grad.SparseGrad, res *grad.Residual, mg *grad.Merger, rows int, tag string) (*grad.SparseGrad, float64, error) {
	lvl := x.ctrl.Level()
	if lvl.Lossy() {
		res.AddInto(g)
		if lvl.Sparsify() {
			st := grad.SelectEF(g, grad.SelectBernoulli, x.sRng, res)
			x.selBefore += st.Before
			x.selDropped += st.Dropped
		}
	}
	grad.QuantizeInto(&x.enc, g, lvl.Scheme(), x.qRng)
	if lvl.Lossy() {
		res.Update(g, &x.enc)
	}
	chunk, hopCost, err := x.comm.ReduceScatterEncoded(&x.enc, rows, mg, x.mRng, tag)
	if err != nil {
		return nil, 0, err
	}
	payloads, gatherCost, err := x.comm.AllGatherBytes(chunk.Marshal(), tag)
	if err != nil {
		return nil, 0, err
	}
	agg.Clear()
	for _, p := range payloads {
		if err := grad.UnmarshalInto(&x.dec, p); err != nil {
			panic(fmt.Sprintf("core: corrupt compressed chunk payload: %v", err))
		}
		grad.Dequantize(&x.dec, agg)
	}
	scaleRows(agg, x.comm.Size())
	return agg, hopCost + gatherCost, nil
}

// observe feeds one batch's entity gradient into the adaptive controller
// (no-op outside CommDynamicCompress) and returns the virtual flops the
// statistics pass costs. The entity matrix alone drives the signal: it
// dominates both the row count and the communicated volume, and one matrix
// keeps the decision rule single-sourced (DESIGN.md §13).
//
//kgelint:hotpath
func (x *exchanger) observe(entG *grad.SparseGrad) float64 {
	if x.ctrl == nil {
		return 0
	}
	x.ctrl.Observe(entG)
	return grad.ObserveFlops(entG)
}

// advanceCompression closes the controller's epoch: the per-rank statistics
// are summed with a tiny dense all-reduce (tagCtrl) and every rank applies
// the identical decision rule to the identical totals, so the ladder
// trajectory is globally agreed without a coordinator (DESIGN.md §13). The
// drained selection tallies feed EpochStats.Sparsity.
func (x *exchanger) advanceCompression() (probe grad.EpochProbe, selBefore, selDropped int, err error) {
	x.ctrl.StatsInto(x.statsBuf[:])
	if _, err := x.comm.AllReduceSum(x.statsBuf[:], tagCtrl); err != nil {
		return grad.EpochProbe{}, 0, 0, err
	}
	selBefore, selDropped = x.selBefore, x.selDropped
	x.selBefore, x.selDropped = 0, 0
	return x.ctrl.AdvanceFrom(x.statsBuf[:]), selBefore, selDropped, nil
}

// exchange aggregates the entity and relation gradients under the given
// mode ("allreduce", "allgather" or "dyncomp"). Under relation partition the
// relation gradient is returned as-is: rank-local, full precision, zero
// cost. The returned aggregates alias exchanger-owned scratch (or relG
// itself) and are valid only until the next exchange call.
//
//kgelint:hotpath
func (x *exchanger) exchange(entG, relG *grad.SparseGrad, mode string) (entAgg, relAgg *grad.SparseGrad, cost float64, err error) {
	switch mode {
	case "allreduce":
		entAgg, cost, err = x.allReduce(entG, x.entAgg, x.numEnt, &x.entBuf, tagEntity)
	case "allgather":
		entAgg, cost, err = x.allGather(entG, x.entAgg, x.entRes, tagEntity)
	case "dyncomp":
		entAgg, cost, err = x.compressed(entG, x.entAgg, x.entRes, &x.entMg, x.numEnt, tagEntity)
	default:
		panic("core: unknown exchange mode " + mode)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if x.cfg.RelationPartition {
		relAgg = relG // rank-private, never communicated (§4.4)
		return entAgg, relAgg, cost, nil
	}
	var relCost float64
	switch mode {
	case "allreduce":
		relAgg, relCost, err = x.allReduce(relG, x.relAgg, x.numRel, &x.relBuf, tagRelation)
	case "allgather":
		relAgg, relCost, err = x.allGather(relG, x.relAgg, x.relRes, tagRelation)
	case "dyncomp":
		relAgg, relCost, err = x.compressed(relG, x.relAgg, x.relRes, &x.relMg, x.numRel, tagRelation)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	return entAgg, relAgg, cost + relCost, nil
}

// probeAllGather performs a throwaway all-gather of the same payloads to
// measure its cost for the dynamic strategy's §4.1 probe. The results are
// discarded; error-feedback residuals are left untouched.
//
//kgelint:hotpath
func (x *exchanger) probeAllGather(entG, relG *grad.SparseGrad) (float64, error) {
	probe := func(g *grad.SparseGrad) (float64, error) {
		if x.cfg.Quant == grad.NoQuant {
			idx, flat := g.Flatten()
			_, _, c, err := x.comm.AllGatherRows(idx, flat, tagProbe)
			return c, err
		}
		grad.QuantizeInto(&x.enc, g, x.cfg.Quant, x.qRng)
		_, c, err := x.comm.AllGatherBytes(x.enc.Marshal(), tagProbe)
		return c, err
	}
	cost, err := probe(entG)
	if err != nil {
		return 0, err
	}
	if !x.cfg.RelationPartition {
		relCost, err := probe(relG)
		if err != nil {
			return 0, err
		}
		cost += relCost
	}
	return cost, nil
}
