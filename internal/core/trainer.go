package core

import (
	"fmt"

	"kgedist/internal/eval"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/opt"
	"kgedist/internal/simnet"
	"kgedist/internal/tensor"
	"kgedist/internal/xrand"
)

// zeroRowEps: gradient rows whose 2-norm falls below this are treated as
// zero and dropped before communication — the sparse-update behaviour whose
// growth over training motivates the dynamic all-reduce/all-gather strategy
// (Figure 2 of the paper; see also Gupta & Vadhiyar's zero-row elimination).
const zeroRowEps = 1e-8

// Train runs a full distributed training job over the dataset with the
// given number of simulated nodes and returns the paper-style result
// (training time, epochs, TCA, MRR, communication volumes).
func Train(cfg Config, d *kg.Dataset, nodes int) (*Result, error) {
	res, _, _, err := trainInternal(cfg, d, nodes)
	return res, err
}

// trainInternal is Train plus white-box access to the per-rank replicas and
// the relation-owner table, used by the replica-consistency tests.
func trainInternal(cfg Config, d *kg.Dataset, nodes int) (*Result, []*model.Params, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if nodes < 1 {
		return nil, nil, nil, fmt.Errorf("core: nodes must be >= 1, got %d", nodes)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(d.Train) == 0 {
		return nil, nil, nil, fmt.Errorf("core: empty training split")
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	width := m.Width()

	// ---- Data distribution (uniform baseline or relation partition) ----
	baseRng := xrand.New(cfg.Seed)
	shuffled := append([]kg.Triple(nil), d.Train...)
	baseRng.Split(77).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var shards [][]kg.Triple
	var relOwner []int
	if cfg.RelationPartition {
		if cfg.PartitionAlgo == "lpt" {
			shards = kg.RelationPartitionLPT(shuffled, d.NumRelations, nodes)
		} else {
			shards = kg.RelationPartition(shuffled, d.NumRelations, nodes)
		}
		relOwner = make([]int, d.NumRelations)
		for r := range relOwner {
			relOwner[r] = -1
		}
		for rank, shard := range shards {
			for _, t := range shard {
				relOwner[t.R] = rank
			}
		}
	} else {
		shards = kg.UniformPartition(shuffled, nodes)
	}
	maxShard := 0
	for _, s := range shards {
		if len(s) > maxShard {
			maxShard = len(s)
		}
	}
	batchesPerEpoch := (maxShard + cfg.BatchSize - 1) / cfg.BatchSize

	// Validation shards: under RP a rank can only score relations it owns
	// (other replicas' rows are stale by design), so split by owner.
	valShards := make([][]kg.Triple, nodes)
	if relOwner != nil {
		for _, t := range d.Valid {
			owner := relOwner[t.R]
			if owner < 0 {
				owner = 0
			}
			valShards[owner] = append(valShards[owner], t)
		}
	} else {
		valShards = kg.UniformPartition(d.Valid, nodes)
	}
	perRankValCap := 0
	if cfg.ValSample > 0 {
		perRankValCap = cfg.ValSample/nodes + 1
	}

	// ---- Cluster, world, replicated parameters ----
	cluster := simnet.NewCluster(nodes, simnet.XC40Params())
	if cfg.StragglerSlowdown > 1 {
		cluster.SetComputeSpeed(0, 1/cfg.StragglerSlowdown)
	}
	world := mpi.NewWorld(cluster)
	var proto *model.Params
	if cfg.WarmStart != nil {
		if cfg.WarmStart.Entity.Rows != d.NumEntities ||
			cfg.WarmStart.Relation.Rows != d.NumRelations ||
			cfg.WarmStart.Entity.Cols != width {
			return nil, nil, nil, fmt.Errorf("core: WarmStart shape (%dx%d entities, %d relations) does not match dataset/model (%dx%d, %d)",
				cfg.WarmStart.Entity.Rows, cfg.WarmStart.Entity.Cols, cfg.WarmStart.Relation.Rows,
				d.NumEntities, width, d.NumRelations)
		}
		proto = cfg.WarmStart.Clone()
	} else {
		proto = model.NewParams(m, d.NumEntities, d.NumRelations)
		proto.Init(m, xrand.New(cfg.Seed).Split(0))
	}
	perRank := make([]*model.Params, nodes)
	for r := range perRank {
		perRank[r] = proto.Clone()
	}

	res := &Result{Strategy: cfg.StrategyLabel(), Nodes: nodes}
	run := &trainRun{
		cfg:             &cfg,
		d:               d,
		m:               m,
		width:           width,
		shards:          shards,
		valShards:       valShards,
		perRankValCap:   perRankValCap,
		relOwner:        relOwner,
		batchesPerEpoch: batchesPerEpoch,
		cluster:         cluster,
		perRank:         perRank,
		res:             res,
	}
	world.Run(run.worker)

	// ---- Final evaluation on the merged model ----
	merged := mergeParams(m, perRank, relOwner)
	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 999)
	lp := eval.LinkPrediction(m, merged, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, merged, d, filter, evalRng)
	res.MRR = lp.FilteredMRR
	res.Hits1 = lp.Hits1
	res.Hits3 = lp.Hits3
	res.Hits10 = lp.Hits10
	res.MR = lp.MR
	res.TCA = tc.Accuracy
	res.FinalParams = merged
	st := cluster.Stats()
	res.CommBytes = st.BytesMoved
	res.CommHours = st.CommSeconds / 3600
	res.RelationCommBytes = cluster.BytesByTag()[tagRelation]
	res.TotalHours = cluster.MaxTime() / 3600
	return res, perRank, relOwner, nil
}

// trainRun carries the state shared (read-only, or rank-0-written between
// barriers) across rank goroutines.
type trainRun struct {
	cfg             *Config
	d               *kg.Dataset
	m               model.Model
	width           int
	shards          [][]kg.Triple
	valShards       [][]kg.Triple
	perRankValCap   int
	relOwner        []int
	batchesPerEpoch int
	cluster         *simnet.Cluster
	perRank         []*model.Params
	res             *Result
}

// worker is the per-rank training loop.
func (t *trainRun) worker(c *mpi.Comm) {
	cfg := t.cfg
	rank := c.Rank()
	nodes := c.Size()
	params := t.perRank[rank]
	shard := t.shards[rank]

	entOpt := opt.NewByName(cfg.OptimizerName, t.d.NumEntities, t.width)
	relOpt := opt.NewByName(cfg.OptimizerName, t.d.NumRelations, t.width)
	plateau := opt.NewPlateau(
		opt.ScaledLR(cfg.BaseLR, nodes, cfg.LRScaleCap),
		cfg.LRFactor, cfg.MinLR, cfg.Tolerance)

	rng := xrand.New(cfg.Seed).Split(uint64(rank + 1))
	var sampler model.Corrupter
	if cfg.NegSampling == "degree" {
		sampler = model.NewDegreeSampler(t.d, rng.Split(2))
	} else {
		sampler = model.NewNegSampler(t.d.NumEntities, rng.Split(2))
	}
	selRng := rng.Split(3)
	x := newExchanger(cfg, c, t.width, t.d.NumEntities, t.d.NumRelations, rng.Split(4))

	entG := grad.NewSparseGrad(t.width)
	relG := grad.NewSparseGrad(t.width)
	negBuf := make([]kg.Triple, 0, cfg.NegSamples)
	order := make([]int, len(shard))
	for i := range order {
		order[i] = i
	}

	mode := "allreduce"
	if cfg.Comm == CommAllGather {
		mode = "allgather"
	}
	switched := 0
	best := -1.0
	sinceBest := 0
	var prevStats simnet.Stats
	var prevTime float64

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		// Epoch-start timestamp (rank 0 reads between barriers so no rank
		// is mid-charge).
		c.Barrier()
		if rank == 0 {
			prevTime = t.cluster.MaxTime()
			prevStats = t.cluster.Stats()
		}
		c.Barrier()

		epochRng := rng.Split(uint64(100 + epoch))
		epochRng.ShuffleInts(order)

		var nnzSum float64
		var selBefore, selDropped int
		probed := false
		lr := float32(plateau.LR())

		for b := 0; b < t.batchesPerEpoch; b++ {
			entG.Clear()
			relG.Clear()
			var flops float64
			if len(shard) > 0 {
				// Small shards (relation partition can be uneven) are not
				// oversampled: a batch never exceeds the shard size.
				nIter := cfg.BatchSize
				if len(shard) < nIter {
					nIter = len(shard)
				}
				for i := 0; i < nIter; i++ {
					pos := shard[order[(b*cfg.BatchSize+i)%len(shard)]]
					flops += t.trainExample(params, pos, sampler, entG, relG, negBuf)
				}
			}
			// Drop numerically-zero rows (saturated triples contribute
			// vanishing gradients as training converges — Figure 2).
			flops += dropZeroRows(entG)
			flops += dropZeroRows(relG)
			nnzSum += float64(entG.Len())

			// Random selection of gradient vectors (§4.2) applies to the
			// communicated matrices; relation gradients under RP stay
			// local and full precision (§4.4).
			if cfg.Select != grad.SelectAll {
				st := grad.Select(entG, cfg.Select, selRng)
				selBefore += st.Before
				selDropped += st.Dropped
				flops += float64(st.Before*t.width) * 2
				if !cfg.RelationPartition {
					st = grad.Select(relG, cfg.Select, selRng)
					selBefore += st.Before
					selDropped += st.Dropped
					flops += float64(st.Before*t.width) * 2
				}
			}
			t.cluster.AddCompute(rank, flops)

			if cfg.SyncEvery > 1 {
				// Local-SGD mode: apply the rank-local gradients without
				// exchange, then periodically average the replicas.
				applyFlops := t.applyGrads(entOpt, params.Entity, entG, lr)
				applyFlops += t.applyGrads(relOpt, params.Relation, relG, lr)
				t.cluster.AddCompute(rank, applyFlops)
				if (b+1)%cfg.SyncEvery == 0 || b == t.batchesPerEpoch-1 {
					c.AllReduceSum(params.Entity.Data, tagEntity)
					tensor.Scale(1/float32(nodes), params.Entity.Data)
					if !cfg.RelationPartition {
						c.AllReduceSum(params.Relation.Data, tagRelation)
						tensor.Scale(1/float32(nodes), params.Relation.Data)
					}
				}
				continue
			}

			entAgg, relAgg, cost := x.exchange(entG, relG, mode)

			// Dynamic strategy probe (§4.1): on every ProbeEvery-th epoch,
			// while still in all-reduce, time one all-gather of the same
			// payload and switch permanently if it is cheaper.
			if cfg.Comm == CommDynamic && mode == "allreduce" && !probed && epoch%cfg.ProbeEvery == 0 {
				probed = true
				if gCost := x.probeAllGather(entG, relG); gCost < cost {
					mode = "allgather"
					if switched == 0 {
						switched = epoch
					}
				}
			}

			// Apply the aggregated gradients with decoupled L2 decay.
			applyFlops := t.applyGrads(entOpt, params.Entity, entAgg, lr)
			applyFlops += t.applyGrads(relOpt, params.Relation, relAgg, lr)
			t.cluster.AddCompute(rank, applyFlops)
		}

		// Validation: pairwise ranking accuracy over the rank's validation
		// shard, reduced globally so all ranks share the decision.
		valRng := xrand.New(cfg.Seed).Split(uint64(5000 + epoch)).Split(uint64(rank))
		correct, total := t.localValAccuracy(params, rank, valRng)
		gc := c.AllReduceScalar(float64(correct), mpi.OpSum)
		gt := c.AllReduceScalar(float64(total), mpi.OpSum)
		valAcc := 50.0
		if gt > 0 {
			valAcc = 100 * gc / gt
		}

		// Epoch-end timestamp and per-epoch record.
		c.Barrier()
		if rank == 0 {
			now := t.cluster.MaxTime()
			st := t.cluster.Stats()
			es := EpochStats{
				Epoch:       epoch,
				Seconds:     now - prevTime,
				CommSeconds: st.CommSeconds - prevStats.CommSeconds,
				CommBytes:   st.BytesMoved - prevStats.BytesMoved,
				ValAccuracy: valAcc,
				Mode:        mode,
				LR:          plateau.LR(),
			}
			if t.batchesPerEpoch > 0 {
				es.NonZeroGradRows = nnzSum / float64(t.batchesPerEpoch)
			}
			if selBefore > 0 {
				es.Sparsity = float64(selDropped) / float64(selBefore)
			}
			t.res.PerEpoch = append(t.res.PerEpoch, es)
			t.res.Epochs = epoch
			t.res.SwitchedAtEpoch = switched
		}
		c.Barrier()

		if cfg.TrackEpochStats {
			// Rank 0 computes the real validation TCA on the merged model
			// while the others hold at the barrier (evaluation cost is
			// excluded from the virtual clock; see EXPERIMENTS.md).
			if rank == 0 {
				merged := mergeParams(t.m, t.perRank, t.relOwner)
				t.res.PerEpoch[len(t.res.PerEpoch)-1].ValTCA =
					validationTCA(t.m, merged, t.d, cfg.ValSample, cfg.Seed+uint64(epoch))
			}
			c.Barrier()
		}

		plateau.Observe(valAcc)
		if valAcc > best+1e-12 {
			best = valAcc
			sinceBest = 0
		} else {
			sinceBest++
		}
		if sinceBest >= cfg.StopPatience {
			break
		}
		// Virtual-time budget: clocks are identical after the barrier, so
		// every rank reaches the same verdict.
		if cfg.MaxVirtualHours > 0 && t.cluster.MaxTime() > cfg.MaxVirtualHours*3600 {
			break
		}
	}
}

// trainExample processes one positive triple and its negatives under the
// configured objective and sampling scheme, returning the flops spent.
func (t *trainRun) trainExample(p *model.Params, pos kg.Triple, sampler model.Corrupter, entG, relG *grad.SparseGrad, negBuf []kg.Triple) float64 {
	cfg := t.cfg
	var flops float64
	var negs []kg.Triple
	if cfg.NegSelect {
		neg, extra := model.SelectHardest(t.m, p, sampler, pos, cfg.NegSamples, negBuf)
		flops += float64(extra) * t.m.ScoreFlops()
		negs = append(negBuf[:0], neg)
	} else {
		negs = sampler.CorruptN(pos, cfg.NegSamples, negBuf)
	}
	if cfg.LossName == "margin" {
		// Pairwise margin ranking: L = max(0, gamma - s(pos) + s(neg)).
		sPos := t.m.Score(p, pos)
		flops += t.m.ScoreFlops()
		for _, neg := range negs {
			sNeg := t.m.Score(p, neg)
			flops += t.m.ScoreFlops()
			if float32(cfg.Margin)-sPos+sNeg > 0 {
				t.m.AccumulateScoreGrad(p, pos, -1, entG.Row(pos.H), relG.Row(pos.R), entG.Row(pos.T))
				t.m.AccumulateScoreGrad(p, neg, 1, entG.Row(neg.H), relG.Row(neg.R), entG.Row(neg.T))
				flops += 2 * t.m.GradFlops()
			}
		}
		return flops
	}
	flops += t.accumulateTriple(p, pos, 1, entG, relG)
	for _, neg := range negs {
		flops += t.accumulateTriple(p, neg, -1, entG, relG)
	}
	return flops
}

// accumulateTriple adds the loss gradient of one labeled triple into the
// sparse gradients and returns the flops spent.
func (t *trainRun) accumulateTriple(p *model.Params, tr kg.Triple, y float32, entG, relG *grad.SparseGrad) float64 {
	score := t.m.Score(p, tr)
	coef := model.LogisticLossGrad(score, y)
	t.m.AccumulateScoreGrad(p, tr, coef, entG.Row(tr.H), relG.Row(tr.R), entG.Row(tr.T))
	return t.m.ScoreFlops() + t.m.GradFlops()
}

// dropZeroRows removes rows with negligible norm, returning the flops spent
// scanning.
func dropZeroRows(g *grad.SparseGrad) float64 {
	var drop []int32
	g.ForEach(func(id int32, row []float32) {
		if tensor.Nrm2(row) <= zeroRowEps {
			drop = append(drop, id)
		}
	})
	for _, id := range drop {
		g.Drop(id)
	}
	return float64(g.Len()+len(drop)) * float64(g.Width()) * 2
}

// applyGrads feeds aggregated rows to the optimizer with decoupled L2 decay
// and returns the flops spent.
func (t *trainRun) applyGrads(o opt.Optimizer, mat *tensor.Matrix, agg *grad.SparseGrad, lr float32) float64 {
	if agg.Len() == 0 {
		return 0
	}
	o.BeginStep()
	decay := 1 - 2*float32(t.cfg.L2)*lr
	clip := float32(t.cfg.ClipNorm)
	agg.ForEach(func(id int32, row []float32) {
		if clip > 0 {
			if n := tensor.Nrm2(row); n > clip {
				tensor.Scale(clip/n, row)
			}
		}
		pr := mat.Row(int(id))
		o.ApplyRow(id, pr, row, lr)
		if t.cfg.L2 > 0 {
			tensor.Scale(decay, pr)
		}
	})
	return float64(agg.Len()*t.width) * 12
}

// localValAccuracy scores the rank's validation shard: a positive counts as
// correct when it outscores a fresh corruption.
func (t *trainRun) localValAccuracy(p *model.Params, rank int, rng *xrand.RNG) (correct, total int) {
	shard := t.valShards[rank]
	n := len(shard)
	if t.perRankValCap > 0 && n > t.perRankValCap {
		n = t.perRankValCap
	}
	sampler := model.NewNegSampler(t.d.NumEntities, rng)
	for i := 0; i < n; i++ {
		tr := shard[i]
		neg := sampler.Corrupt(tr)
		if t.m.Score(p, tr) > t.m.Score(p, neg) {
			correct++
		}
		total++
	}
	return correct, total
}

// mergeParams builds a single evaluation model from the replicas: entities
// are identical everywhere; relation rows under RP are taken from their
// owning rank (unowned relations keep their shared initialization).
func mergeParams(m model.Model, perRank []*model.Params, relOwner []int) *model.Params {
	merged := perRank[0].Clone()
	if relOwner == nil {
		return merged
	}
	for rel, owner := range relOwner {
		if owner > 0 {
			copy(merged.Relation.Row(rel), perRank[owner].Relation.Row(rel))
		}
	}
	return merged
}

// validationTCA computes triple-classification accuracy on the validation
// split (thresholds fit on one half, accuracy measured on the other),
// subsampled to at most sample triples.
func validationTCA(m model.Model, p *model.Params, d *kg.Dataset, sample int, seed uint64) float64 {
	rng := xrand.New(seed)
	valid := d.Valid
	if sample > 0 && len(valid) > sample {
		perm := rng.Perm(len(valid))
		sub := make([]kg.Triple, sample)
		for i := range sub {
			sub[i] = valid[perm[i]]
		}
		valid = sub
	}
	if len(valid) < 4 {
		return 0
	}
	half := len(valid) / 2
	tmp := &kg.Dataset{
		Name:         d.Name,
		NumEntities:  d.NumEntities,
		NumRelations: d.NumRelations,
		Train:        d.Train,
		Valid:        valid[:half],
		Test:         valid[half:],
	}
	f := kg.NewFilterIndex(d)
	return eval.TripleClassification(m, p, tmp, f, rng).Accuracy
}
