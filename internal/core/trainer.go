package core

import (
	"errors"
	"fmt"
	"math"

	"kgedist/internal/eval"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/opt"
	part "kgedist/internal/partition"
	"kgedist/internal/simnet"
	"kgedist/internal/tensor"
	"kgedist/internal/xrand"
)

// zeroRowEps: gradient rows whose 2-norm falls below this are treated as
// zero and dropped before communication — the sparse-update behaviour whose
// growth over training motivates the dynamic all-reduce/all-gather strategy
// (Figure 2 of the paper; see also Gupta & Vadhiyar's zero-row elimination).
const zeroRowEps = 1e-8

// Train runs a full distributed training job over the dataset with the
// given number of simulated nodes and returns the paper-style result
// (training time, epochs, TCA, MRR, communication volumes). With a fault
// plan configured, ranks may die mid-training; Recover turns those deaths
// into shrink-and-continue recoveries, otherwise Train returns the
// *mpi.RankFailedError.
func Train(cfg Config, d *kg.Dataset, nodes int) (*Result, error) {
	res, _, _, err := trainInternal(cfg, d, nodes)
	return res, err
}

// partition bundles the data distribution for one node count. It is a pure
// function of (cfg, dataset, nodes), so re-partitioning after a shrink is
// deterministic: the same survivors always receive the same shards.
type partition struct {
	shards          [][]kg.Triple
	valShards       [][]kg.Triple
	relOwner        []int
	batchesPerEpoch int
	perRankValCap   int
	// plan is the joint row-ownership plan of Partitioned mode (nil for the
	// replicated modes); shards then come from the plan's triple placement.
	plan *part.Plan
}

// buildPartition distributes the training and validation triples over nodes
// ranks (uniform baseline, relation partition, or the joint row partition,
// per cfg).
func buildPartition(cfg *Config, d *kg.Dataset, nodes int) (partition, error) {
	var pt partition
	if cfg.Partitioned {
		plan, err := part.Build(d, part.Options{
			Ranks: nodes,
			Algo:  cfg.PartitionBy,
			Seed:  cfg.Seed,
			Slack: cfg.PartitionSlack,
		})
		if err != nil {
			return pt, err
		}
		pt.plan = plan
		pt.shards = plan.Shards
		// Validation triples score wherever most of their rows live, so the
		// per-epoch pull stays small.
		pt.valShards = make([][]kg.Triple, nodes)
		for _, t := range d.Valid {
			owner := plan.PreferredRank(t)
			pt.valShards[owner] = append(pt.valShards[owner], t)
		}
		maxShard := 0
		for _, s := range pt.shards {
			if len(s) > maxShard {
				maxShard = len(s)
			}
		}
		pt.batchesPerEpoch = (maxShard + cfg.BatchSize - 1) / cfg.BatchSize
		if cfg.ValSample > 0 {
			pt.perRankValCap = cfg.ValSample/nodes + 1
		}
		return pt, nil
	}
	baseRng := xrand.New(cfg.Seed)
	shuffled := append([]kg.Triple(nil), d.Train...)
	baseRng.Split(77).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if cfg.RelationPartition {
		if cfg.PartitionAlgo == "lpt" {
			pt.shards = kg.RelationPartitionLPT(shuffled, d.NumRelations, nodes)
		} else {
			pt.shards = kg.RelationPartition(shuffled, d.NumRelations, nodes)
		}
		pt.relOwner = make([]int, d.NumRelations)
		for r := range pt.relOwner {
			pt.relOwner[r] = -1
		}
		for rank, shard := range pt.shards {
			for _, t := range shard {
				pt.relOwner[t.R] = rank
			}
		}
	} else {
		pt.shards = kg.UniformPartition(shuffled, nodes)
	}
	maxShard := 0
	for _, s := range pt.shards {
		if len(s) > maxShard {
			maxShard = len(s)
		}
	}
	pt.batchesPerEpoch = (maxShard + cfg.BatchSize - 1) / cfg.BatchSize

	// Validation shards: under RP a rank can only score relations it owns
	// (other replicas' rows are stale by design), so split by owner.
	pt.valShards = make([][]kg.Triple, nodes)
	if pt.relOwner != nil {
		for _, t := range d.Valid {
			owner := pt.relOwner[t.R]
			if owner < 0 {
				owner = 0
			}
			pt.valShards[owner] = append(pt.valShards[owner], t)
		}
	} else {
		pt.valShards = kg.UniformPartition(d.Valid, nodes)
	}
	if cfg.ValSample > 0 {
		pt.perRankValCap = cfg.ValSample/nodes + 1
	}
	return pt, nil
}

// snapshot is the recovery point: the merged model as of some completed
// epoch. Epoch 0 holds the shared initialization, so shrink-and-continue
// works even before the first periodic checkpoint.
type snapshot struct {
	epoch  int
	params *model.Params
}

// trainInternal is Train plus white-box access to the per-rank replicas and
// the relation-owner table, used by the replica-consistency tests.
//
// The attempt loop implements shrink-and-continue (ULFM-style): a rank
// failure surfaces as *mpi.RankFailedError from RunErr; the world is shrunk
// over the survivors, the dead ranks' shards are re-partitioned, replicas
// warm-start from the last snapshot, and training resumes at the snapshot
// epoch. After MaxRecoveries the run degrades to a single fault-free node
// rather than giving up. Every step — fault firing, shrink, re-partition,
// replay — is a deterministic function of (Config, dataset, nodes).
func trainInternal(cfg Config, d *kg.Dataset, nodes int) (*Result, []*model.Params, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if nodes < 1 {
		return nil, nil, nil, fmt.Errorf("core: nodes must be >= 1, got %d", nodes)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(d.Train) == 0 {
		return nil, nil, nil, fmt.Errorf("core: empty training split")
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	width := m.Width()

	// ---- Cluster, world, replicated parameters ----
	cluster := simnet.NewCluster(nodes, simnet.XC40Params())
	if cfg.StragglerSlowdown > 1 {
		cluster.SetComputeSpeed(0, 1/cfg.StragglerSlowdown)
	}
	if cfg.FaultPlan != nil {
		if err := cluster.SetFaultPlan(cfg.FaultPlan); err != nil {
			return nil, nil, nil, err
		}
	}
	world := mpi.NewWorld(cluster)

	var proto *model.Params
	if cfg.WarmStart != nil {
		if cfg.WarmStart.Entity.Rows != d.NumEntities ||
			cfg.WarmStart.Relation.Rows != d.NumRelations ||
			cfg.WarmStart.Entity.Cols != width {
			return nil, nil, nil, fmt.Errorf("core: WarmStart shape (%dx%d entities, %d relations) does not match dataset/model (%dx%d, %d)",
				cfg.WarmStart.Entity.Rows, cfg.WarmStart.Entity.Cols, cfg.WarmStart.Relation.Rows,
				d.NumEntities, width, d.NumRelations)
		}
		proto = cfg.WarmStart.Clone()
	} else {
		proto = model.NewParams(m, d.NumEntities, d.NumRelations)
		proto.Init(m, xrand.New(cfg.Seed).Split(0))
	}

	res := &Result{Strategy: cfg.StrategyLabel(), Nodes: nodes}
	snap := &snapshot{epoch: 0, params: proto}
	var rec RecoveryStats

	var perRank []*model.Params
	var relOwner []int
	var run *trainRun
	attempt := 0
	for {
		pt, perr := buildPartition(&cfg, d, world.Size())
		if perr != nil {
			return nil, nil, nil, perr
		}
		relOwner = pt.relOwner
		perRank = make([]*model.Params, world.Size())
		if !cfg.Partitioned {
			// Partitioned ranks never hold replicas — that is the memory
			// claim; they build shard stores from the snapshot instead.
			for r := range perRank {
				perRank[r] = snap.params.Clone()
			}
		}
		run = &trainRun{
			cfg:             &cfg,
			d:               d,
			m:               m,
			width:           width,
			shards:          pt.shards,
			valShards:       pt.valShards,
			perRankValCap:   pt.perRankValCap,
			relOwner:        pt.relOwner,
			batchesPerEpoch: pt.batchesPerEpoch,
			plan:            pt.plan,
			cluster:         cluster,
			perRank:         perRank,
			res:             res,
			snap:            snap,
			rec:             &rec,
			startEpoch:      snap.epoch,
		}
		err := world.RunErr(run.worker)
		if err == nil {
			break
		}
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) || !cfg.Recover {
			return nil, nil, nil, err
		}

		// ---- Shrink-and-continue ----
		attempt++
		rec.Recoveries++
		rec.RankFailures += len(rf.Ranks)
		rec.EpochsLost += res.Epochs - snap.epoch
		for len(res.PerEpoch) > 0 && res.PerEpoch[len(res.PerEpoch)-1].Epoch > snap.epoch {
			res.PerEpoch = res.PerEpoch[:len(res.PerEpoch)-1]
		}
		res.Epochs = snap.epoch
		// The adaptive controller and its residuals are rank-local state lost
		// with the dead world; the new attempt re-ascends the ladder from
		// fp32 (DESIGN.md §13), so its step record starts over too.
		res.CompressionSteps = nil

		degrade := attempt > cfg.MaxRecoveries || world.Size()-len(rf.Ranks) == 1
		shrunk, serr := world.Shrink(rf.Ranks)
		if serr != nil {
			return nil, nil, nil, errors.Join(err, serr)
		}
		world = shrunk
		if degrade && world.Size() > 1 {
			// Graceful degradation: collapse to a single node, which cannot
			// suffer a collective failure.
			extra := make([]int, 0, world.Size()-1)
			for r := 1; r < world.Size(); r++ {
				extra = append(extra, r)
			}
			if shrunk, serr = world.Shrink(extra); serr != nil {
				return nil, nil, nil, errors.Join(err, serr)
			}
			world = shrunk
		}
		if degrade {
			cluster.ClearFaultPlan()
			rec.Degraded = true
		}

		// Charge the recovery to the virtual clock: exponential backoff
		// (failure detection and re-coordination) plus every survivor
		// reloading the snapshot from stable storage.
		bytes := int64(4 * (len(snap.params.Entity.Data) + len(snap.params.Relation.Data)))
		reload, _, _ := cluster.PointToPointCost(bytes)
		cost := cfg.RecoveryBackoff*math.Pow(2, float64(attempt-1)) + reload*float64(world.Size())
		cluster.Collective(cost, bytes*int64(world.Size()), int64(world.Size()), tagRecovery)
		rec.RecoverySeconds += cost
	}

	rec.FaultsInjected = cluster.FaultsInjected()
	rec.FinalNodes = world.Size()
	res.Recovery = rec

	// ---- Final evaluation on the merged model ----
	var merged *model.Params
	if cfg.Partitioned {
		// The trained rows were gathered collectively at the end of the
		// worker epoch loop; rank 0 published them through the run.
		merged = run.partFinal
		if merged == nil {
			return nil, nil, nil, fmt.Errorf("core: partitioned run finished without publishing the merged model")
		}
		q := run.plan.Quality()
		res.Partition = &PartitionStats{
			Algo:              run.plan.Algo,
			Ranks:             run.plan.Ranks,
			CutRatio:          q.CutRatio,
			RemoteRowFraction: q.RemoteRowFraction,
			EntityBalance:     q.EntityBalance,
			RelationBalance:   q.RelationBalance,
			TripleBalance:     q.TripleBalance,
			MaxEntityShard:    q.MaxEntityShard,
		}
	} else {
		merged = mergeParams(m, perRank, relOwner)
	}
	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 999)
	lp := eval.LinkPrediction(m, merged, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, merged, d, filter, evalRng)
	res.MRR = lp.FilteredMRR
	res.Hits1 = lp.Hits1
	res.Hits3 = lp.Hits3
	res.Hits10 = lp.Hits10
	res.MR = lp.MR
	res.TCA = tc.Accuracy
	res.FinalParams = merged
	st := cluster.Stats()
	res.CommBytes = st.BytesMoved
	res.CommHours = st.CommSeconds / 3600
	res.RelationCommBytes = cluster.BytesByTag()[tagRelation]
	res.TotalHours = cluster.MaxTime() / 3600
	return res, perRank, relOwner, nil
}

// trainRun carries the state shared (read-only, or rank-0-written between
// barriers) across rank goroutines.
type trainRun struct {
	cfg             *Config
	d               *kg.Dataset
	m               model.Model
	width           int
	shards          [][]kg.Triple
	valShards       [][]kg.Triple
	perRankValCap   int
	relOwner        []int
	batchesPerEpoch int
	cluster         *simnet.Cluster
	perRank         []*model.Params
	res             *Result
	snap            *snapshot
	rec             *RecoveryStats
	startEpoch      int   // resume point: epochs before this are already done
	ckptErr         error // rank-0 checkpoint write error, read between barriers

	// plan is the row-ownership plan of Partitioned mode (nil otherwise);
	// partFinal is the merged model the stats rank publishes from the
	// end-of-training collective gather.
	plan      *part.Plan
	partFinal *model.Params

	// proc marks a process world (one rank in this address space): the
	// checkpoint merge runs as a collective instead of a shared-memory walk.
	proc bool
	// statsRank is the rank whose goroutine records per-epoch stats into
	// res: rank 0 in a channel world, the process's own (sole) rank in a
	// process world — every process then records its own identical copy of
	// the global curves (and its own local loss).
	statsRank int
}

// worker is the per-rank training loop. Collective errors (a peer died) are
// returned, not handled: the recovery loop in trainInternal owns shrinking
// the world and re-running.
func (t *trainRun) worker(c *mpi.Comm) error {
	if t.cfg.Partitioned {
		return t.workerPartitioned(c)
	}
	cfg := t.cfg
	rank := c.Rank()
	nodes := c.Size()
	params := t.perRank[rank]
	shard := t.shards[rank]

	entOpt := opt.NewByName(cfg.OptimizerName, t.d.NumEntities, t.width)
	relOpt := opt.NewByName(cfg.OptimizerName, t.d.NumRelations, t.width)
	plateau := opt.NewPlateau(
		opt.ScaledLR(cfg.BaseLR, nodes, cfg.LRScaleCap),
		cfg.LRFactor, cfg.MinLR, cfg.Tolerance)

	rng := xrand.New(cfg.Seed).Split(uint64(rank + 1))
	var sampler model.Corrupter
	if cfg.NegSampling == "degree" {
		sampler = model.NewDegreeSampler(t.d, rng.Split(2))
	} else {
		sampler = model.NewNegSampler(t.d.NumEntities, rng.Split(2))
	}
	selRng := rng.Split(3)
	x := newExchanger(cfg, c, t.width, t.d.NumEntities, t.d.NumRelations, rng.Split(4))

	entG := grad.NewSparseGrad(t.width)
	relG := grad.NewSparseGrad(t.width)
	negBuf := make([]kg.Triple, 0, cfg.NegSamples)
	var dropBuf []int32 // dropZeroRows scratch, reused across batches
	order := make([]int, len(shard))
	for i := range order {
		order[i] = i
	}

	mode := "allreduce"
	if cfg.Comm == CommAllGather {
		mode = "allgather"
	}
	if cfg.Comm == CommDynamicCompress {
		mode = "dyncomp" // adaptive ladder pipeline at every rung (DESIGN.md §13)
	}
	switched := 0
	best := -1.0
	sinceBest := 0
	var prevStats simnet.Stats
	var prevTime float64

	for epoch := t.startEpoch + 1; epoch <= cfg.MaxEpochs; epoch++ {
		// Epoch-start timestamp (rank 0 reads between barriers so no rank
		// is mid-charge).
		if err := c.Barrier(); err != nil {
			return err
		}
		if rank == t.statsRank {
			prevTime = t.cluster.MaxTime()
			prevStats = t.cluster.Stats()
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		epochRng := rng.Split(uint64(100 + epoch))
		epochRng.ShuffleInts(order)

		var nnzSum float64
		var lossSum float64
		var lossN int
		var selBefore, selDropped int
		probed := false
		lr := float32(plateau.LR())

		for b := 0; b < t.batchesPerEpoch; b++ {
			entG.Clear()
			relG.Clear()
			var flops float64
			if len(shard) > 0 {
				// Small shards (relation partition can be uneven) are not
				// oversampled: a batch never exceeds the shard size.
				nIter := cfg.BatchSize
				if len(shard) < nIter {
					nIter = len(shard)
				}
				for i := 0; i < nIter; i++ {
					pos := shard[order[(b*cfg.BatchSize+i)%len(shard)]]
					f, loss, n := t.trainExample(params, pos, sampler, entG, relG, negBuf)
					flops += f
					lossSum += loss
					lossN += n
				}
			}
			// Drop numerically-zero rows (saturated triples contribute
			// vanishing gradients as training converges — Figure 2).
			flops += dropZeroRows(entG, &dropBuf)
			flops += dropZeroRows(relG, &dropBuf)
			nnzSum += float64(entG.Len())

			// Random selection of gradient vectors (§4.2) applies to the
			// communicated matrices; relation gradients under RP stay
			// local and full precision (§4.4).
			if cfg.Select != grad.SelectAll {
				st := grad.Select(entG, cfg.Select, selRng)
				selBefore += st.Before
				selDropped += st.Dropped
				flops += float64(st.Before*t.width) * 2
				if !cfg.RelationPartition {
					st = grad.Select(relG, cfg.Select, selRng)
					selBefore += st.Before
					selDropped += st.Dropped
					flops += float64(st.Before*t.width) * 2
				}
			}
			// Adaptive compression statistics (DESIGN.md §13): the raw
			// post-drop entity gradient feeds the controller before the
			// pipeline's residual/selection touch it.
			flops += x.observe(entG)
			t.cluster.AddCompute(rank, flops)

			if cfg.SyncEvery > 1 {
				// Local-SGD mode: apply the rank-local gradients without
				// exchange, then periodically average the replicas.
				applyFlops := t.applyGrads(entOpt, params.Entity, entG, lr)
				applyFlops += t.applyGrads(relOpt, params.Relation, relG, lr)
				t.cluster.AddCompute(rank, applyFlops)
				if (b+1)%cfg.SyncEvery == 0 || b == t.batchesPerEpoch-1 {
					if _, err := c.AllReduceSum(params.Entity.Data, tagEntity); err != nil {
						return err
					}
					tensor.Scale(1/float32(nodes), params.Entity.Data)
					if !cfg.RelationPartition {
						if _, err := c.AllReduceSum(params.Relation.Data, tagRelation); err != nil {
							return err
						}
						tensor.Scale(1/float32(nodes), params.Relation.Data)
					}
				}
				continue
			}

			entAgg, relAgg, cost, err := x.exchange(entG, relG, mode)
			if err != nil {
				return err
			}

			// Dynamic strategy probe (§4.1): on every ProbeEvery-th epoch,
			// while still in all-reduce, time one all-gather of the same
			// payload and switch permanently if it is cheaper.
			if cfg.Comm == CommDynamic && mode == "allreduce" && !probed && epoch%cfg.ProbeEvery == 0 {
				probed = true
				gCost, err := x.probeAllGather(entG, relG)
				if err != nil {
					return err
				}
				if gCost < cost {
					mode = "allgather"
					if switched == 0 {
						switched = epoch
					}
				}
			}

			// Apply the aggregated gradients with decoupled L2 decay.
			applyFlops := t.applyGrads(entOpt, params.Entity, entAgg, lr)
			applyFlops += t.applyGrads(relOpt, params.Relation, relAgg, lr)
			t.cluster.AddCompute(rank, applyFlops)
		}

		// Adaptive-compression epoch boundary: sum the controller statistics
		// across ranks and evaluate the ladder's decision rule everywhere
		// (identical inputs, identical verdict — DESIGN.md §13). The rung
		// recorded below is the one this epoch's exchanges ran at; a step
		// takes effect from the next epoch.
		ladderLevel := ""
		var gradEntropy float64
		if cfg.Comm == CommDynamicCompress {
			probe, sb, sd, err := x.advanceCompression()
			if err != nil {
				return err
			}
			ladderLevel = probe.Level.String()
			gradEntropy = probe.Entropy
			selBefore += sb
			selDropped += sd
			if probe.Stepped && rank == t.statsRank {
				t.res.CompressionSteps = append(t.res.CompressionSteps, CompressionStep{
					Epoch: epoch + 1, Level: probe.Next.String(),
				})
			}
		}

		// Validation: pairwise ranking accuracy over the rank's validation
		// shard, reduced globally so all ranks share the decision.
		valRng := xrand.New(cfg.Seed).Split(uint64(5000 + epoch)).Split(uint64(rank))
		correct, total := t.localValAccuracy(params, rank, valRng)
		gc, err := c.AllReduceScalar(float64(correct), mpi.OpSum)
		if err != nil {
			return err
		}
		gt, err := c.AllReduceScalar(float64(total), mpi.OpSum)
		if err != nil {
			return err
		}
		valAcc := 50.0
		if gt > 0 {
			valAcc = 100 * gc / gt
		}

		// Epoch-end timestamp and per-epoch record.
		if err := c.Barrier(); err != nil {
			return err
		}
		if rank == t.statsRank {
			now := t.cluster.MaxTime()
			st := t.cluster.Stats()
			es := EpochStats{
				Epoch:       epoch,
				Seconds:     now - prevTime,
				CommSeconds: st.CommSeconds - prevStats.CommSeconds,
				CommBytes:   st.BytesMoved - prevStats.BytesMoved,
				ValAccuracy: valAcc,
				Mode:        mode,
				Level:       ladderLevel,
				GradEntropy: gradEntropy,
				LR:          plateau.LR(),
			}
			if t.batchesPerEpoch > 0 {
				es.NonZeroGradRows = nnzSum / float64(t.batchesPerEpoch)
			}
			if lossN > 0 {
				es.TrainLoss = lossSum / float64(lossN)
			}
			if selBefore > 0 {
				es.Sparsity = float64(selDropped) / float64(selBefore)
			}
			t.res.PerEpoch = append(t.res.PerEpoch, es)
			t.res.Epochs = epoch
			t.res.SwitchedAtEpoch = switched
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		if cfg.TrackEpochStats {
			// Rank 0 computes the real validation TCA on the merged model
			// while the others hold at the barrier (evaluation cost is
			// excluded from the virtual clock; see EXPERIMENTS.md).
			if rank == 0 {
				merged := mergeParams(t.m, t.perRank, t.relOwner)
				t.res.PerEpoch[len(t.res.PerEpoch)-1].ValTCA =
					validationTCA(t.m, merged, t.d, cfg.ValSample, cfg.Seed+uint64(epoch))
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}

		if cfg.CheckpointEvery > 0 && epoch%cfg.CheckpointEvery == 0 {
			if err := t.checkpointEpoch(c, epoch); err != nil {
				return err
			}
		}

		plateau.Observe(valAcc)
		if valAcc > best+1e-12 {
			best = valAcc
			sinceBest = 0
		} else {
			sinceBest++
		}
		if sinceBest >= cfg.StopPatience {
			break
		}
		// Virtual-time budget: clocks are identical after the barrier, so
		// every rank reaches the same verdict.
		if cfg.MaxVirtualHours > 0 && t.cluster.MaxTime() > cfg.MaxVirtualHours*3600 {
			break
		}
	}
	return nil
}

// checkpointEpoch takes the coordinated snapshot: rank 0 merges the replicas
// into the recovery point (and persists it crash-safely when CheckpointPath
// is set) while the other ranks hold at barriers; the snapshot's virtual
// cost is charged to the shared clock under the "checkpoint" tag. A disk
// write error is shared through t.ckptErr so every rank stops after the
// closing barrier — a lone returning rank would leave its peers blocked at
// the next collective.
func (t *trainRun) checkpointEpoch(c *mpi.Comm, epoch int) error {
	if t.proc {
		return t.checkpointEpochProc(c, epoch)
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if c.Rank() == 0 {
		merged := mergeParams(t.m, t.perRank, t.relOwner)
		t.snap.epoch = epoch
		t.snap.params = merged
		t.rec.Checkpoints++
		t.ckptErr = nil
		if t.cfg.CheckpointPath != "" {
			t.ckptErr = model.SaveCheckpoint(t.cfg.CheckpointPath, t.m, merged)
		}
		// Charge the snapshot: the merged model ships to stable storage.
		bytes := int64(4 * (len(merged.Entity.Data) + len(merged.Relation.Data)))
		cost, _, _ := t.cluster.PointToPointCost(bytes)
		t.cluster.Collective(cost, bytes, int64(c.Size()), tagCheckpoint)
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if t.ckptErr == nil {
		return nil
	}
	if c.Rank() == 0 {
		return fmt.Errorf("core: checkpoint at epoch %d: %w", epoch, t.ckptErr)
	}
	return fmt.Errorf("core: checkpoint at epoch %d failed on rank 0", epoch)
}

// trainExample processes one positive triple and its negatives under the
// configured objective and sampling scheme. It returns the flops spent, the
// summed per-example loss, and the number of loss terms contributing (so the
// caller can track a mean training loss per epoch).
func (t *trainRun) trainExample(p *model.Params, pos kg.Triple, sampler model.Corrupter, entG, relG *grad.SparseGrad, negBuf []kg.Triple) (flops, lossSum float64, lossN int) {
	cfg := t.cfg
	var negs []kg.Triple
	if cfg.NegSelect {
		neg, extra := model.SelectHardest(t.m, p, sampler, pos, cfg.NegSamples, negBuf)
		flops += float64(extra) * t.m.ScoreFlops()
		negs = append(negBuf[:0], neg)
	} else {
		negs = sampler.CorruptN(pos, cfg.NegSamples, negBuf)
	}
	if cfg.LossName == "margin" {
		// Pairwise margin ranking: L = max(0, gamma - s(pos) + s(neg)).
		sPos := t.m.Score(p, pos)
		flops += t.m.ScoreFlops()
		for _, neg := range negs {
			sNeg := t.m.Score(p, neg)
			flops += t.m.ScoreFlops()
			if hinge := float32(cfg.Margin) - sPos + sNeg; hinge > 0 {
				lossSum += float64(hinge)
				t.m.AccumulateScoreGrad(p, pos, -1, entG.Row(pos.H), relG.Row(pos.R), entG.Row(pos.T))
				t.m.AccumulateScoreGrad(p, neg, 1, entG.Row(neg.H), relG.Row(neg.R), entG.Row(neg.T))
				flops += 2 * t.m.GradFlops()
			}
			lossN++
		}
		return flops, lossSum, lossN
	}
	f, l := t.accumulateTriple(p, pos, 1, entG, relG)
	flops += f
	lossSum += l
	lossN++
	for _, neg := range negs {
		f, l = t.accumulateTriple(p, neg, -1, entG, relG)
		flops += f
		lossSum += l
		lossN++
	}
	return flops, lossSum, lossN
}

// accumulateTriple adds the loss gradient of one labeled triple into the
// sparse gradients and returns the flops spent plus the triple's loss value.
func (t *trainRun) accumulateTriple(p *model.Params, tr kg.Triple, y float32, entG, relG *grad.SparseGrad) (float64, float64) {
	score := t.m.Score(p, tr)
	coef := model.LogisticLossGrad(score, y)
	t.m.AccumulateScoreGrad(p, tr, coef, entG.Row(tr.H), relG.Row(tr.R), entG.Row(tr.T))
	return t.m.ScoreFlops() + t.m.GradFlops(), float64(model.LogisticLoss(score, y))
}

// dropZeroRows removes rows with negligible norm, returning the flops spent
// scanning. scratch is the calling worker's reusable id buffer (rows cannot
// be dropped while iterating, so candidates are collected first); its grown
// capacity is handed back through the pointer.
func dropZeroRows(g *grad.SparseGrad, scratch *[]int32) float64 {
	drop := (*scratch)[:0]
	g.ForEach(func(id int32, row []float32) {
		if tensor.Nrm2(row) <= zeroRowEps {
			drop = append(drop, id)
		}
	})
	for _, id := range drop {
		g.Drop(id)
	}
	*scratch = drop
	return float64(g.Len()+len(drop)) * float64(g.Width()) * 2
}

// applyGrads feeds aggregated rows to the optimizer with decoupled L2 decay
// and returns the flops spent.
func (t *trainRun) applyGrads(o opt.Optimizer, mat *tensor.Matrix, agg *grad.SparseGrad, lr float32) float64 {
	if agg.Len() == 0 {
		return 0
	}
	o.BeginStep()
	decay := 1 - 2*float32(t.cfg.L2)*lr
	clip := float32(t.cfg.ClipNorm)
	agg.ForEach(func(id int32, row []float32) {
		if clip > 0 {
			if n := tensor.Nrm2(row); n > clip {
				tensor.Scale(clip/n, row)
			}
		}
		pr := mat.Row(int(id))
		o.ApplyRow(id, pr, row, lr)
		if t.cfg.L2 > 0 {
			tensor.Scale(decay, pr)
		}
	})
	return float64(agg.Len()*t.width) * 12
}

// localValAccuracy scores the rank's validation shard: a positive counts as
// correct when it outscores a fresh corruption.
func (t *trainRun) localValAccuracy(p *model.Params, rank int, rng *xrand.RNG) (correct, total int) {
	shard := t.valShards[rank]
	n := len(shard)
	if t.perRankValCap > 0 && n > t.perRankValCap {
		n = t.perRankValCap
	}
	sampler := model.NewNegSampler(t.d.NumEntities, rng)
	for i := 0; i < n; i++ {
		tr := shard[i]
		neg := sampler.Corrupt(tr)
		if t.m.Score(p, tr) > t.m.Score(p, neg) {
			correct++
		}
		total++
	}
	return correct, total
}

// mergeParams builds a single evaluation model from the replicas: entities
// are identical everywhere; relation rows under RP are taken from their
// owning rank (unowned relations keep their shared initialization).
func mergeParams(m model.Model, perRank []*model.Params, relOwner []int) *model.Params {
	merged := perRank[0].Clone()
	if relOwner == nil {
		return merged
	}
	for rel, owner := range relOwner {
		if owner > 0 {
			copy(merged.Relation.Row(rel), perRank[owner].Relation.Row(rel))
		}
	}
	return merged
}

// validationTCA computes triple-classification accuracy on the validation
// split (thresholds fit on one half, accuracy measured on the other),
// subsampled to at most sample triples.
func validationTCA(m model.Model, p *model.Params, d *kg.Dataset, sample int, seed uint64) float64 {
	rng := xrand.New(seed)
	valid := d.Valid
	if sample > 0 && len(valid) > sample {
		perm := rng.Perm(len(valid))
		sub := make([]kg.Triple, sample)
		for i := range sub {
			sub[i] = valid[perm[i]]
		}
		valid = sub
	}
	if len(valid) < 4 {
		return 0
	}
	half := len(valid) / 2
	tmp := &kg.Dataset{
		Name:         d.Name,
		NumEntities:  d.NumEntities,
		NumRelations: d.NumRelations,
		Train:        d.Train,
		Valid:        valid[:half],
		Test:         valid[half:],
	}
	f := kg.NewFilterIndex(d)
	return eval.TripleClassification(m, p, tmp, f, rng).Accuracy
}
