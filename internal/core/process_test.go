package core_test

// Multi-process smoke tests: the test binary re-execs itself as N real OS
// processes that mesh over localhost TCP and run core.TrainProcess. Two
// properties are checked end to end:
//
//   - Trajectory identity: the coordinator process's epoch-level loss /
//     accuracy / virtual-time curves and final MRR are bit-identical to the
//     same seeded in-process core.Train run — the determinism contract of
//     the process world, measured through the whole trainer.
//   - Crash recovery: SIGKILL-ing a rank mid-training (no byes, no
//     teardown, exactly what the OOM killer does) makes the survivors
//     shrink, warm-start from the last checkpoint, finish, and land within
//     a quality band of the fault-free run.
//
// TestMain dispatches on KGE_PROC_WORKER: when set the process is a worker
// rank (dial, train, write a JSON outcome, exit) and never runs tests.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"kgedist/internal/core"
	"kgedist/internal/testkit"
	"kgedist/internal/transport/tcptransport"
)

func TestMain(m *testing.M) {
	if os.Getenv("KGE_PROC_WORKER") == "1" {
		procWorkerMain()
		panic("unreachable: worker must exit")
	}
	os.Exit(m.Run())
}

// procOutcome is the slice of core.Result a worker reports back to the
// parent test through its JSON out-file.
type procOutcome struct {
	Rank            int
	Epochs          int
	MRR             float64
	TCA             float64
	Recoveries      int
	FinalNodes      int
	Checkpoints     int
	SwitchedAtEpoch int
	Loss            []float64
	ValAcc          []float64
	Seconds         []float64
	CommBytes       []int64
}

// procScenarioConfig is the single source of truth for worker and reference
// configs, so both sides of every comparison train the same job.
func procScenarioConfig(scenario, ckpt string) core.Config {
	cfg := testkit.GoldenBaseConfig()
	cfg.Comm = core.CommDynamic
	cfg.ProbeEvery = 2
	cfg.RelationPartition = true
	switch scenario {
	case "traj":
		cfg.MaxEpochs = 6
	case "kill":
		cfg.MaxEpochs = 40
		cfg.StopPatience = 40
		cfg.CheckpointEvery = 2
		cfg.CheckpointPath = ckpt
		cfg.Recover = true
		cfg.MaxRecoveries = 3
	default:
		panic("unknown scenario " + scenario)
	}
	return cfg
}

// procWorkerMain is the re-exec entry point for one worker rank.
func procWorkerMain() {
	rank, _ := strconv.Atoi(os.Getenv("KGE_PROC_RANK"))
	world, _ := strconv.Atoi(os.Getenv("KGE_PROC_WORLD"))
	coord := os.Getenv("KGE_PROC_COORD")
	scenario := os.Getenv("KGE_PROC_SCENARIO")
	ckpt := os.Getenv("KGE_PROC_CKPT")
	out := os.Getenv("KGE_PROC_OUT")
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "worker rank %d: %v\n", rank, err)
		os.Exit(1)
	}

	// The victim rank crashes hard the moment the coordinator's first
	// checkpoint hits disk: SIGKILL, so no byes and no connection teardown
	// reach the survivors — only EOFs and heartbeat silence.
	if scenario == "kill" && rank == world-1 {
		go func() {
			for {
				if _, err := os.Stat(ckpt); err == nil {
					p, _ := os.FindProcess(os.Getpid())
					_ = p.Kill()
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	ep, err := tcptransport.Dial(tcptransport.Options{
		Rank:            rank,
		WorldSize:       world,
		CoordinatorAddr: coord,
		BuildTag:        "proc-smoke",
		ConnectDeadline: 60 * time.Second,
	})
	if err != nil {
		die(fmt.Errorf("dial: %w", err))
	}
	res, err := core.TrainProcess(procScenarioConfig(scenario, ckpt), testkit.GoldenDataset(), ep)
	if err != nil {
		die(fmt.Errorf("train: %w", err))
	}
	o := procOutcome{
		Rank:            rank,
		Epochs:          res.Epochs,
		MRR:             res.MRR,
		TCA:             res.TCA,
		Recoveries:      res.Recovery.Recoveries,
		FinalNodes:      res.Recovery.FinalNodes,
		Checkpoints:     res.Recovery.Checkpoints,
		SwitchedAtEpoch: res.SwitchedAtEpoch,
	}
	for _, e := range res.PerEpoch {
		o.Loss = append(o.Loss, e.TrainLoss)
		o.ValAcc = append(o.ValAcc, e.ValAccuracy)
		o.Seconds = append(o.Seconds, e.Seconds)
		o.CommBytes = append(o.CommBytes, e.CommBytes)
	}
	b, err := json.Marshal(o)
	if err != nil {
		die(err)
	}
	tmp := out + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		die(err)
	}
	if err := os.Rename(tmp, out); err != nil {
		die(err)
	}
	os.Exit(0)
}

// reserveAddr picks a free localhost port and releases it for the
// coordinator worker to re-bind (Dial's listen host retries the bind, which
// absorbs the close-to-rebind window).
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// launchWorkers re-execs this test binary as p worker ranks and returns the
// commands plus the per-rank outcome paths.
func launchWorkers(t *testing.T, p int, scenario, ckpt, coord, dir string) ([]*exec.Cmd, []string) {
	t.Helper()
	cmds := make([]*exec.Cmd, p)
	outs := make([]string, p)
	for i := 0; i < p; i++ {
		outs[i] = filepath.Join(dir, fmt.Sprintf("rank%d.json", i))
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		var log strings.Builder
		cmd.Stdout, cmd.Stderr = &log, &log
		cmd.Env = append(os.Environ(),
			"KGE_PROC_WORKER=1",
			"KGE_PROC_RANK="+strconv.Itoa(i),
			"KGE_PROC_WORLD="+strconv.Itoa(p),
			"KGE_PROC_COORD="+coord,
			"KGE_PROC_SCENARIO="+scenario,
			"KGE_PROC_CKPT="+ckpt,
			"KGE_PROC_OUT="+outs[i],
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		rank := i
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			if t.Failed() && log.Len() > 0 {
				t.Logf("worker %d output:\n%s", rank, log.String())
			}
		})
		cmds[i] = cmd
	}
	return cmds, outs
}

// waitWorker waits for one worker with a deadline; a hung worker fails the
// test instead of hanging it.
func waitWorker(t *testing.T, rank int, cmd *exec.Cmd, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("worker rank %d still running after %v — hung shutdown", rank, timeout)
		return nil
	}
}

func readOutcome(t *testing.T, path string) procOutcome {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read worker outcome: %v", err)
	}
	var o procOutcome
	if err := json.Unmarshal(b, &o); err != nil {
		t.Fatalf("decode worker outcome %s: %v", path, err)
	}
	return o
}

// TestProcessTrajectoryMatchesInProcess launches 3 real OS processes over
// localhost TCP and requires the coordinator's epoch-level trajectory —
// loss, validation accuracy, virtual seconds, comm bytes, the dynamic
// strategy's switch epoch — and the final MRR/TCA to be bit-identical to
// the same seeded in-process run.
func TestProcessTrajectoryMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	const p = 3
	dir := t.TempDir()
	cfg := procScenarioConfig("traj", "")
	ref, err := core.Train(cfg, testkit.GoldenDataset(), p)
	if err != nil {
		t.Fatalf("in-process reference run: %v", err)
	}

	cmds, outs := launchWorkers(t, p, "traj", "", reserveAddr(t), dir)
	for i, cmd := range cmds {
		if err := waitWorker(t, i, cmd, 120*time.Second); err != nil {
			t.Fatalf("worker rank %d exited with %v", i, err)
		}
	}

	got := readOutcome(t, outs[0])
	if got.Epochs != ref.Epochs {
		t.Fatalf("epochs: %d over TCP, %d in-process", got.Epochs, ref.Epochs)
	}
	if got.SwitchedAtEpoch != ref.SwitchedAtEpoch {
		t.Fatalf("dynamic switch epoch: %d over TCP, %d in-process", got.SwitchedAtEpoch, ref.SwitchedAtEpoch)
	}
	if len(got.Loss) != len(ref.PerEpoch) {
		t.Fatalf("per-epoch records: %d over TCP, %d in-process", len(got.Loss), len(ref.PerEpoch))
	}
	for i, e := range ref.PerEpoch {
		if got.Loss[i] != e.TrainLoss || got.ValAcc[i] != e.ValAccuracy {
			t.Errorf("epoch %d: loss/valacc (%v, %v) over TCP, (%v, %v) in-process",
				e.Epoch, got.Loss[i], got.ValAcc[i], e.TrainLoss, e.ValAccuracy)
		}
		if got.Seconds[i] != e.Seconds || got.CommBytes[i] != e.CommBytes {
			t.Errorf("epoch %d: virtual time/bytes (%v, %d) over TCP, (%v, %d) in-process",
				e.Epoch, got.Seconds[i], got.CommBytes[i], e.Seconds, e.CommBytes)
		}
	}
	if got.MRR != ref.MRR || got.TCA != ref.TCA {
		t.Fatalf("final quality: MRR %v TCA %v over TCP, MRR %v TCA %v in-process",
			got.MRR, got.TCA, ref.MRR, ref.TCA)
	}
	// Every process evaluates the same merged model: all outcomes agree.
	for i := 1; i < p; i++ {
		o := readOutcome(t, outs[i])
		if o.MRR != got.MRR || o.Epochs != got.Epochs {
			t.Fatalf("rank %d disagrees with rank 0: MRR %v vs %v, epochs %d vs %d",
				i, o.MRR, got.MRR, o.Epochs, got.Epochs)
		}
	}
}

// TestProcessSIGKILLRecovery trains 3 processes with checkpointing; the
// highest rank SIGKILLs itself as soon as the first checkpoint lands on
// disk. The survivors must observe the crash as a rank failure, shrink to a
// 2-process world, warm-start from the checkpoint, finish cleanly, and land
// within a quality band of the fault-free run.
func TestProcessSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test skipped in -short mode")
	}
	const p = 3
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.bin")
	refCfg := procScenarioConfig("kill", "")
	ref, err := core.Train(refCfg, testkit.GoldenDataset(), p)
	if err != nil {
		t.Fatalf("fault-free reference run: %v", err)
	}
	t.Logf("fault-free reference: MRR %v, TCA %v, epochs %d", ref.MRR, ref.TCA, ref.Epochs)

	cmds, outs := launchWorkers(t, p, "kill", ckpt, reserveAddr(t), dir)

	// The victim must die by signal, not exit cleanly.
	verr := waitWorker(t, p-1, cmds[p-1], 120*time.Second)
	var xerr *exec.ExitError
	if verr == nil || !errors.As(verr, &xerr) {
		t.Fatalf("victim rank %d exited with %v, want a SIGKILL death", p-1, verr)
	}
	for i := 0; i < p-1; i++ {
		if err := waitWorker(t, i, cmds[i], 180*time.Second); err != nil {
			t.Fatalf("survivor rank %d exited with %v", i, err)
		}
	}

	o0, o1 := readOutcome(t, outs[0]), readOutcome(t, outs[1])
	for _, o := range []procOutcome{o0, o1} {
		if o.Recoveries < 1 {
			t.Fatalf("rank %d recorded %d recoveries, want >= 1", o.Rank, o.Recoveries)
		}
		if o.FinalNodes != p-1 {
			t.Fatalf("rank %d finished with %d nodes, want %d", o.Rank, o.FinalNodes, p-1)
		}
		if o.Checkpoints < 1 {
			t.Fatalf("rank %d recorded no checkpoints before the crash", o.Rank)
		}
	}
	if o0.MRR != o1.MRR || o0.Epochs != o1.Epochs {
		t.Fatalf("survivors diverged: MRR %v vs %v, epochs %d vs %d", o0.MRR, o1.MRR, o0.Epochs, o1.Epochs)
	}
	if band := math.Abs(o0.MRR - ref.MRR); band > 0.2 {
		t.Fatalf("recovered MRR %v is %.3f away from fault-free %v (band 0.2)", o0.MRR, band, ref.MRR)
	}
	if o0.MRR < ref.MRR/2 {
		t.Fatalf("recovered MRR %v below half the fault-free %v — recovery produced a broken model", o0.MRR, ref.MRR)
	}
}
