package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/simnet"
)

// faultConfig returns the shared test configuration with a crash scheduled
// mid-training. On the core test dataset with 4 nodes an epoch costs about
// 1.4 virtual milliseconds, so a crash at 5 ms lands inside epoch 4 — after
// the epoch-2 checkpoint, in the middle of a batch loop, never on an epoch
// boundary.
func faultConfig(crashRank int) Config {
	cfg := testConfig()
	cfg.FaultPlan = &simnet.FaultPlan{Faults: []simnet.Fault{
		{Kind: simnet.FaultCrash, Rank: crashRank, At: 0.005},
	}}
	cfg.Recover = true
	cfg.CheckpointEvery = 2
	return cfg
}

func TestTrainFaultWithoutRecoverSurfacesRankFailure(t *testing.T) {
	d := testDataset()
	cfg := faultConfig(1)
	cfg.Recover = false
	_, err := Train(cfg, d, 4)
	var rf *mpi.RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("Train = %v, want *mpi.RankFailedError", err)
	}
	if len(rf.Ranks) != 1 || rf.Ranks[0] != 1 {
		t.Fatalf("failed ranks = %v, want [1]", rf.Ranks)
	}
}

func TestTrainRecoversFromMidEpochCrash(t *testing.T) {
	d := testDataset()
	cfg := faultConfig(1)
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatalf("Train with recovery: %v", err)
	}
	rc := res.Recovery
	if rc.FaultsInjected != 1 || rc.RankFailures != 1 || rc.Recoveries != 1 {
		t.Fatalf("recovery stats = %+v, want 1 fault / 1 failure / 1 recovery", rc)
	}
	if rc.FinalNodes != 3 || rc.Degraded {
		t.Fatalf("recovery stats = %+v, want 3 final nodes without degradation", rc)
	}
	if rc.Checkpoints == 0 {
		t.Fatalf("recovery stats = %+v, want periodic checkpoints", rc)
	}
	// The crash lands after the epoch-2 checkpoint, so at least the partial
	// epoch in flight is lost and replayed.
	if rc.EpochsLost < 1 {
		t.Fatalf("recovery stats = %+v, want at least one replayed epoch", rc)
	}
	if rc.RecoverySeconds <= 0 {
		t.Fatalf("recovery stats = %+v, want recovery time charged", rc)
	}
	if res.Epochs != cfg.MaxEpochs {
		t.Fatalf("epochs = %d, want the full %d after resuming", res.Epochs, cfg.MaxEpochs)
	}
	if len(res.PerEpoch) != res.Epochs {
		t.Fatalf("per-epoch records %d != epochs %d (replayed epochs must not duplicate)", len(res.PerEpoch), res.Epochs)
	}
	for i, e := range res.PerEpoch {
		if e.Epoch != i+1 {
			t.Fatalf("per-epoch record %d is epoch %d, want %d", i, e.Epoch, i+1)
		}
	}
}

// TestTrainRecoveryDeterministicFaultReplay is the reproducibility contract
// for fault injection: the same seed and the same fault plan yield a
// bit-identical Result — metrics, epoch records, and recovery accounting —
// even when a rank dies mid-epoch and the run shrinks and replays.
func TestTrainRecoveryDeterministicFaultReplay(t *testing.T) {
	d := testDataset()
	runOnce := func() *Result {
		t.Helper()
		res, err := Train(faultConfig(1), d, 4)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.MRR != b.MRR || a.TCA != b.TCA || a.Hits10 != b.Hits10 ||
		a.Epochs != b.Epochs || a.CommBytes != b.CommBytes || a.TotalHours != b.TotalHours {
		t.Fatalf("non-deterministic faulty training:\n%+v\nvs\n%+v", a, b)
	}
	if a.Recovery != b.Recovery {
		t.Fatalf("recovery stats diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if !reflect.DeepEqual(a.PerEpoch, b.PerEpoch) {
		t.Fatalf("per-epoch records diverged:\n%+v\nvs\n%+v", a.PerEpoch, b.PerEpoch)
	}
}

// TestTrainRecoveryReachesFaultFreeQuality: shrink-and-continue must land
// within 10% relative MRR of the fault-free run on the mini dataset (the
// ISSUE acceptance bar).
func TestTrainRecoveryReachesFaultFreeQuality(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	clean := testConfig()
	clean.MaxEpochs = 24
	clean.StopPatience = 24
	clean.TestSample = 300
	base, err := Train(clean, d, 4)
	if err != nil {
		t.Fatalf("fault-free Train: %v", err)
	}
	faulty := faultConfig(1)
	faulty.MaxEpochs = 24
	faulty.StopPatience = 24
	faulty.TestSample = 300
	rec, err := Train(faulty, d, 4)
	if err != nil {
		t.Fatalf("faulty Train: %v", err)
	}
	if rec.Recovery.Recoveries == 0 {
		t.Fatal("fault never fired; test misconfigured")
	}
	diff := rec.MRR - base.MRR
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.10*base.MRR {
		t.Fatalf("recovered MRR %v vs fault-free %v: off by %.1f%%, want <= 10%%",
			rec.MRR, base.MRR, 100*diff/base.MRR)
	}
}

func TestTrainFaultDegradesToSingleNode(t *testing.T) {
	d := testDataset()
	cfg := faultConfig(2)
	cfg.MaxRecoveries = 0 // first failure already exceeds the budget
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	rc := res.Recovery
	if !rc.Degraded || rc.FinalNodes != 1 {
		t.Fatalf("recovery stats = %+v, want degradation to a single node", rc)
	}
	if res.Epochs != cfg.MaxEpochs {
		t.Fatalf("epochs = %d, want %d", res.Epochs, cfg.MaxEpochs)
	}
}

func TestTrainFaultRepeatedCrashesShrinkTwice(t *testing.T) {
	d := testDataset()
	cfg := faultConfig(1)
	// Second crash targets post-shrink rank 1 (old rank 2) after recovery
	// replays past the backoff charge on the shared clock.
	cfg.RecoveryBackoff = 0.001
	cfg.FaultPlan.Faults = append(cfg.FaultPlan.Faults,
		simnet.Fault{Kind: simnet.FaultCrash, Rank: 2, At: 0.010})
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	rc := res.Recovery
	if rc.Recoveries != 2 || rc.RankFailures != 2 {
		t.Fatalf("recovery stats = %+v, want two recoveries", rc)
	}
	if rc.FinalNodes != 2 || rc.Degraded {
		t.Fatalf("recovery stats = %+v, want 2 survivors without degradation", rc)
	}
}

func TestTrainCheckpointFileRoundTrip(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.CheckpointEvery = 3
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "train.ckpt")
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if want := cfg.MaxEpochs / cfg.CheckpointEvery; res.Recovery.Checkpoints != want {
		t.Fatalf("checkpoints = %d, want %d", res.Recovery.Checkpoints, want)
	}
	m, params, err := model.LoadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if m.Name() != cfg.ModelName {
		t.Fatalf("checkpoint model = %q, want %q", m.Name(), cfg.ModelName)
	}
	if params.Entity.Rows != d.NumEntities || params.Relation.Rows != d.NumRelations {
		t.Fatalf("checkpoint shape %dx%d entities / %d relations, want %d / %d",
			params.Entity.Rows, params.Entity.Cols, params.Relation.Rows,
			d.NumEntities, d.NumRelations)
	}
	// The checkpoint must also round-trip as a warm start.
	warm := testConfig()
	warm.WarmStart = params
	warm.MaxEpochs = 2
	if _, err := Train(warm, d, 2); err != nil {
		t.Fatalf("warm start from checkpoint: %v", err)
	}
}

func TestTrainCheckpointWriteFailureSurfaces(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.CheckpointEvery = 2
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "missing-dir", "train.ckpt")
	_, err := Train(cfg, d, 2)
	if err == nil {
		t.Fatal("Train succeeded despite unwritable checkpoint path")
	}
	var rf *mpi.RankFailedError
	if errors.As(err, &rf) {
		t.Fatalf("checkpoint write failure misreported as rank failure: %v", err)
	}
}

func TestTrainFaultSlowdownOnlyChangesTimeNotResult(t *testing.T) {
	d := testDataset()
	clean := testConfig()
	base, err := Train(clean, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	slowed := testConfig()
	slowed.FaultPlan = &simnet.FaultPlan{Faults: []simnet.Fault{
		{Kind: simnet.FaultSlow, Rank: 0, At: 0.002, Duration: 0.004, Factor: 4},
		{Kind: simnet.FaultDelay, Rank: 0, At: 0.006, Duration: 0.003, Factor: 8},
	}}
	res, err := Train(slowed, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Performance faults perturb the virtual clock, never the learned model.
	if res.MRR != base.MRR || res.TCA != base.TCA || res.Epochs != base.Epochs {
		t.Fatalf("slow/delay faults changed the result: MRR %v vs %v", res.MRR, base.MRR)
	}
	if res.TotalHours <= base.TotalHours {
		t.Fatalf("slow/delay faults did not cost time: %v vs %v h", res.TotalHours, base.TotalHours)
	}
	if res.Recovery.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", res.Recovery.FaultsInjected)
	}
}
