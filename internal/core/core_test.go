package core

import (
	"testing"

	"kgedist/internal/grad"
	"kgedist/internal/kg"
)

// testDataset returns a small learnable KG shared by the trainer tests.
func testDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "core-test", Entities: 300, Relations: 30, Triples: 5000,
		Communities: 6, Seed: 42,
	})
}

// testConfig returns a fast configuration for the test dataset.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.BaseLR = 0.02
	cfg.BatchSize = 500
	cfg.MaxEpochs = 12
	cfg.StopPatience = 12
	cfg.ValSample = 400
	cfg.TestSample = 60
	cfg.Seed = 7
	return cfg
}

// skipIfShort skips the long end-to-end training tests under -short — in
// particular the race-detector CI tier, where each of these costs seconds.
// Unit-level coverage of every code path stays on in short mode.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping long training test in -short mode")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.BaseLR = 0 },
		func(c *Config) { c.MaxEpochs = 0 },
		func(c *Config) { c.NegSamples = 0 },
		func(c *Config) { c.Comm = CommDynamic; c.ProbeEvery = 0 },
		func(c *Config) { c.Tolerance = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestStrategyLabels(t *testing.T) {
	c := DefaultConfig()
	if got := c.StrategyLabel(); got != "allreduce" {
		t.Fatalf("label = %q", got)
	}
	c.Comm = CommAllGather
	if got := c.StrategyLabel(); got != "allgather" {
		t.Fatalf("label = %q", got)
	}
	c.Select = grad.SelectBernoulli
	if got := c.StrategyLabel(); got != "RS" {
		t.Fatalf("label = %q", got)
	}
	c.Comm = CommDynamic
	c.Quant = grad.OneBitMax
	c.RelationPartition = true
	c.NegSelect = true
	if got := c.StrategyLabel(); got != "DRS+1-bit+RP+SS" {
		t.Fatalf("label = %q", got)
	}
	c.Quant = grad.TwoBitTernary
	if got := c.StrategyLabel(); got != "DRS+2-bit+RP+SS" {
		t.Fatalf("label = %q", got)
	}
}

func TestCommStrategyString(t *testing.T) {
	if CommAllReduce.String() != "allreduce" || CommAllGather.String() != "allgather" ||
		CommDynamic.String() != "dynamic" || CommStrategy(9).String() != "unknown" {
		t.Fatal("CommStrategy strings wrong")
	}
}

func TestTrainRejectsBadInputs(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	if _, err := Train(cfg, d, 0); err == nil {
		t.Fatal("accepted 0 nodes")
	}
	bad := cfg
	bad.Dim = 0
	if _, err := Train(bad, d, 1); err == nil {
		t.Fatal("accepted bad config")
	}
	empty := &kg.Dataset{NumEntities: 10, NumRelations: 2}
	if _, err := Train(cfg, empty, 1); err == nil {
		t.Fatal("accepted empty training split")
	}
}

func TestTrainSingleNodeLearns(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 40
	cfg.StopPatience = 40
	res, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.Epochs != 40 {
		t.Fatalf("epochs = %d", res.Epochs)
	}
	// The community-structured KG is easily learnable: accuracy must rise
	// far above chance and MRR far above random.
	if res.TCA < 75 {
		t.Fatalf("TCA = %v, expected > 75", res.TCA)
	}
	if res.MRR < 0.1 {
		t.Fatalf("MRR = %v, expected > 0.1", res.MRR)
	}
	if res.TotalHours <= 0 {
		t.Fatalf("TotalHours = %v", res.TotalHours)
	}
	// Single node: no communication volume.
	if res.CommBytes != 0 {
		t.Fatalf("single-node CommBytes = %d", res.CommBytes)
	}
	if len(res.PerEpoch) != res.Epochs {
		t.Fatalf("per-epoch records %d != epochs %d", len(res.PerEpoch), res.Epochs)
	}
	// Validation accuracy should improve from start to finish.
	first := res.PerEpoch[0].ValAccuracy
	last := res.PerEpoch[len(res.PerEpoch)-1].ValAccuracy
	if last <= first {
		t.Fatalf("validation accuracy did not improve: %v -> %v", first, last)
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 5
	a, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.MRR != b.MRR || a.TCA != b.TCA || a.Epochs != b.Epochs ||
		a.CommBytes != b.CommBytes || a.TotalHours != b.TotalHours {
		t.Fatalf("non-deterministic training: %+v vs %+v", a, b)
	}
}

func TestTrainMultiNodeAllReduceAndAllGather(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	for _, comm := range []CommStrategy{CommAllReduce, CommAllGather} {
		cfg := testConfig()
		cfg.Comm = comm
		cfg.MaxEpochs = 8
		res, err := Train(cfg, d, 4)
		if err != nil {
			t.Fatalf("%v: %v", comm, err)
		}
		if res.CommBytes == 0 {
			t.Fatalf("%v: no communication recorded", comm)
		}
		if res.Nodes != 4 {
			t.Fatalf("%v: nodes = %d", comm, res.Nodes)
		}
		wantMode := comm.String()
		for _, e := range res.PerEpoch {
			if e.Mode != wantMode {
				t.Fatalf("%v: epoch %d ran mode %q", comm, e.Epoch, e.Mode)
			}
		}
	}
}

func TestAllGatherMovesFewerBytesThanAllReduceWhenSparse(t *testing.T) {
	skipIfShort(t)
	// With a batch touching few of the many entities, the sparse exchange
	// must move far fewer bytes than the dense matrix all-reduce.
	d := kg.Generate(kg.GenConfig{
		Name: "sparse", Entities: 2000, Relations: 20, Triples: 3000, Seed: 9,
	})
	base := testConfig()
	base.BatchSize = 100
	base.MaxEpochs = 3
	ar := base
	ar.Comm = CommAllReduce
	ag := base
	ag.Comm = CommAllGather
	resAR, err := Train(ar, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	resAG, err := Train(ag, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resAG.CommBytes >= resAR.CommBytes/2 {
		t.Fatalf("sparse allgather bytes %d not << allreduce bytes %d",
			resAG.CommBytes, resAR.CommBytes)
	}
}

func TestRelationPartitionEliminatesRelationComm(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 5
	cfg.Comm = CommAllReduce

	plain, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain.RelationCommBytes == 0 {
		t.Fatal("uniform partition should communicate relation gradients")
	}

	cfg.RelationPartition = true
	rp, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rp.RelationCommBytes != 0 {
		t.Fatalf("relation partition still moved %d relation bytes", rp.RelationCommBytes)
	}
	if rp.CommBytes >= plain.CommBytes {
		t.Fatalf("RP comm %d not below baseline %d", rp.CommBytes, plain.CommBytes)
	}
}

func TestQuantizationShrinksCommVolume(t *testing.T) {
	d := testDataset()
	base := testConfig()
	base.Comm = CommAllGather
	base.MaxEpochs = 4

	full, err := Train(base, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := base
	q.Quant = grad.OneBitMax
	quant, err := Train(q, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if quant.CommBytes >= full.CommBytes/3 {
		t.Fatalf("1-bit comm %d not well below full-precision %d", quant.CommBytes, full.CommBytes)
	}
}

func TestRandomSelectionRecordsSparsity(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.Comm = CommAllGather
	cfg.Select = grad.SelectBernoulli
	cfg.MaxEpochs = 4
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	anySparsity := false
	for _, e := range res.PerEpoch {
		if e.Sparsity > 0 {
			anySparsity = true
		}
	}
	if !anySparsity {
		t.Fatal("random selection produced no recorded sparsity")
	}
}

func TestDynamicStrategySwitchesWhenAllGatherWins(t *testing.T) {
	skipIfShort(t)
	// Large entity space + tiny batches => dense all-reduce is expensive,
	// sparse all-gather cheap: the probe must switch early.
	d := kg.Generate(kg.GenConfig{
		Name: "sparse", Entities: 4000, Relations: 40, Triples: 3000, Seed: 5,
	})
	cfg := testConfig()
	cfg.Comm = CommDynamic
	cfg.ProbeEvery = 2
	cfg.BatchSize = 100
	cfg.MaxEpochs = 6
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchedAtEpoch == 0 {
		t.Fatal("dynamic strategy never switched to all-gather")
	}
	if res.SwitchedAtEpoch%cfg.ProbeEvery != 0 {
		t.Fatalf("switch at epoch %d, not on a probe epoch", res.SwitchedAtEpoch)
	}
	// After the switch, epochs must run in allgather mode.
	for _, e := range res.PerEpoch {
		if e.Epoch > res.SwitchedAtEpoch && e.Mode != "allgather" {
			t.Fatalf("epoch %d mode %q after switch", e.Epoch, e.Mode)
		}
	}
}

func TestCombinedStrategyRuns(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := testConfig()
	cfg.Comm = CommDynamic
	cfg.Select = grad.SelectBernoulli
	cfg.Quant = grad.OneBitMax
	cfg.RelationPartition = true
	cfg.NegSelect = true
	cfg.NegSamples = 5
	cfg.MaxEpochs = 25
	cfg.StopPatience = 25
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "DRS+1-bit+RP+SS" {
		t.Fatalf("strategy label %q", res.Strategy)
	}
	if res.RelationCommBytes != 0 {
		t.Fatal("combined strategy leaked relation communication")
	}
	if res.TCA < 60 {
		t.Fatalf("combined strategy TCA = %v", res.TCA)
	}
}

func TestNegativeSampleSelectionTrainsFewerTriples(t *testing.T) {
	// 1-out-of-5 must cost less virtual compute per epoch than 5-out-of-5
	// (one negative gradient vs five, at the price of cheap forward passes).
	d := testDataset()
	base := testConfig()
	base.NegSamples = 5
	base.MaxEpochs = 3

	all := base
	all.NegSelect = false
	rAll, err := Train(all, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	sel := base
	sel.NegSelect = true
	rSel, err := Train(sel, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rSel.AvgEpochSeconds() >= rAll.AvgEpochSeconds() {
		t.Fatalf("1-of-5 epoch %vs not cheaper than 5-of-5 %vs",
			rSel.AvgEpochSeconds(), rAll.AvgEpochSeconds())
	}
}

func TestErrorFeedbackPathRuns(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.Comm = CommAllGather
	cfg.Quant = grad.OneBitMax
	cfg.ErrorFeedback = true
	cfg.MaxEpochs = 4
	if _, err := Train(cfg, d, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTrackEpochStatsRecordsValTCA(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.TrackEpochStats = true
	cfg.MaxEpochs = 4
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.PerEpoch {
		if e.ValTCA <= 0 {
			t.Fatalf("epoch %d has no ValTCA", e.Epoch)
		}
		if e.NonZeroGradRows <= 0 {
			t.Fatalf("epoch %d has no gradient-row count", e.Epoch)
		}
	}
}

func TestEarlyStopTriggers(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 60
	cfg.StopPatience = 3
	cfg.BaseLR = 1e-9 // model cannot improve -> early stop after patience
	res, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 60 {
		t.Fatalf("early stop never triggered: %d epochs", res.Epochs)
	}
}

func TestMoreNodesLowerEpochTime(t *testing.T) {
	skipIfShort(t)
	// Strong scaling of compute: epoch time must drop from 1 to 4 nodes
	// (communication grows but compute dominates at this size).
	d := testDataset()
	cfg := testConfig()
	cfg.Dim = 32
	cfg.NegSamples = 5
	cfg.MaxEpochs = 3
	r1, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.AvgEpochSeconds() >= r1.AvgEpochSeconds() {
		t.Fatalf("4-node epoch %vs not below 1-node %vs",
			r4.AvgEpochSeconds(), r1.AvgEpochSeconds())
	}
}

func TestMarginLossLearns(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.ModelName = "transe" // the classic margin-loss model
	cfg.LossName = "margin"
	cfg.Margin = 2
	cfg.NegSamples = 2
	cfg.MaxEpochs = 30
	cfg.StopPatience = 30
	res, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TCA < 70 {
		t.Fatalf("margin-loss TransE TCA = %v, expected learning", res.TCA)
	}
}

func TestMarginLossValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossName = "margin"
	cfg.Margin = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("margin 0 accepted")
	}
	cfg.LossName = "nope"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown loss accepted")
	}
}

func TestAlternativeModelsTrain(t *testing.T) {
	// The strategies are model-agnostic: every registered model must train
	// end to end under the combined configuration.
	d := testDataset()
	for _, name := range []string{"distmult", "rotate", "simple"} {
		cfg := testConfig()
		cfg.ModelName = name
		cfg.MaxEpochs = 6
		cfg.Comm = CommAllGather
		cfg.Select = grad.SelectBernoulli
		cfg.Quant = grad.OneBitMax
		cfg.RelationPartition = true
		res, err := Train(cfg, d, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Epochs == 0 || res.TotalHours <= 0 {
			t.Fatalf("%s: empty result %+v", name, res)
		}
	}
}

func TestNewSelectionModesTrain(t *testing.T) {
	d := testDataset()
	for _, mode := range []grad.SelectMode{grad.SelectTopQuarter, grad.SelectUnbiased} {
		cfg := testConfig()
		cfg.Comm = CommAllGather
		cfg.Select = mode
		cfg.MaxEpochs = 4
		res, err := Train(cfg, d, 2)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sparse := false
		for _, e := range res.PerEpoch {
			if e.Sparsity > 0 {
				sparse = true
			}
		}
		if mode == grad.SelectTopQuarter && !sparse {
			t.Fatalf("%v produced no sparsity", mode)
		}
	}
}

func TestStragglerSlowsEpochs(t *testing.T) {
	// A 4x straggler must stretch the bulk-synchronous epoch time
	// substantially: every collective waits for the slow rank.
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 3
	base, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StragglerSlowdown = 4
	slow, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgEpochSeconds() < 1.5*base.AvgEpochSeconds() {
		t.Fatalf("straggler epoch %vs vs base %vs: BSP sensitivity not visible",
			slow.AvgEpochSeconds(), base.AvgEpochSeconds())
	}
}

func TestLPTPartitionTrains(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.RelationPartition = true
	cfg.PartitionAlgo = "lpt"
	cfg.MaxEpochs = 4
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelationCommBytes != 0 {
		t.Fatal("LPT partition leaked relation communication")
	}
	bad := cfg
	bad.PartitionAlgo = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown partition algorithm accepted")
	}
}

func TestLocalSGDSyncEvery(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 15
	cfg.StopPatience = 15
	cfg.SyncEvery = 4
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes == 0 {
		t.Fatal("periodic averaging recorded no communication")
	}
	// Syncing every 4 batches must move fewer bytes than per-batch dense
	// all-reduce of the gradients.
	base := testConfig()
	base.MaxEpochs = 15
	base.StopPatience = 15
	baseRes, err := Train(base, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes >= baseRes.CommBytes {
		t.Fatalf("local SGD bytes %d not below per-batch sync %d", res.CommBytes, baseRes.CommBytes)
	}
	// It must still learn (replicas re-converge at each averaging point).
	if res.TCA < 60 {
		t.Fatalf("local SGD TCA = %v", res.TCA)
	}
	bad := cfg
	bad.SyncEvery = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative SyncEvery accepted")
	}
}

func TestValueSparsifyTrains(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := testConfig()
	cfg.Comm = CommAllGather
	cfg.ValueSparsify = 0.25
	cfg.MaxEpochs = 4
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 25% of values survive but each costs 12 bytes vs 4: the total must
	// land well above 25% of the full-precision volume (the paper's
	// index-overhead point) yet below it.
	full := testConfig()
	full.Comm = CommAllGather
	full.MaxEpochs = 4
	fres, err := Train(full, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.CommBytes) / float64(fres.CommBytes)
	if ratio < 0.3 || ratio > 1.0 {
		t.Fatalf("value-sparse comm ratio %.2f, expected 0.3-1.0 (index overhead)", ratio)
	}

	bad := cfg
	bad.ValueSparsify = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	bad = cfg
	bad.Quant = grad.OneBitMax
	if err := bad.Validate(); err == nil {
		t.Fatal("ValueSparsify + Quant accepted")
	}
}

func TestMaxVirtualHoursBudget(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 40
	cfg.StopPatience = 40
	// First measure one epoch's virtual cost, then budget ~3 epochs.
	probe := cfg
	probe.MaxEpochs = 1
	pr, err := Train(probe, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxVirtualHours = 3 * pr.TotalHours
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 10 {
		t.Fatalf("budget did not stop training: %d epochs", res.Epochs)
	}
	if res.Epochs < 2 {
		t.Fatalf("budget stopped too early: %d epochs", res.Epochs)
	}
}

func TestClipNormTrains(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.ClipNorm = 0.5
	cfg.MaxEpochs = 6
	res, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := res.PerEpoch[len(res.PerEpoch)-1].ValAccuracy
	if last <= 52 {
		t.Fatalf("clipped training made no progress: val %v", last)
	}
}

func TestWarmStartContinuesTraining(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 8
	first, err := Train(cfg, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg
	warm.WarmStart = first.FinalParams
	warm.MaxEpochs = 8
	second, err := Train(warm, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Continued training starts from the trained weights: its first-epoch
	// validation accuracy must beat the cold start's.
	if second.PerEpoch[0].ValAccuracy <= first.PerEpoch[0].ValAccuracy+5 {
		t.Fatalf("warm start epoch-1 val %v not above cold start %v",
			second.PerEpoch[0].ValAccuracy, first.PerEpoch[0].ValAccuracy)
	}
	// Shape mismatch rejected.
	bad := cfg
	bad.WarmStart = first.FinalParams
	bad.Dim = cfg.Dim * 2
	if _, err := Train(bad, d, 1); err == nil {
		t.Fatal("mismatched warm start accepted")
	}
}

func TestDegreeNegSamplingTrains(t *testing.T) {
	d := testDataset()
	cfg := testConfig()
	cfg.NegSampling = "degree"
	cfg.MaxEpochs = 6
	res, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := res.PerEpoch[len(res.PerEpoch)-1].ValAccuracy
	if last <= 52 {
		t.Fatalf("degree-sampled training made no progress: %v", last)
	}
	bad := cfg
	bad.NegSampling = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown sampling accepted")
	}
}

// TestReplicasStayInSync verifies the Horovod-replication invariant: after
// training, every rank's entity matrix is bit-identical (the deterministic
// exchanges apply the same updates everywhere), and the relation matrix is
// likewise identical without relation partition. Under RP each relation row
// matches its owner's copy in the merged model.
func TestReplicasStayInSync(t *testing.T) {
	d := testDataset()
	for _, rp := range []bool{false, true} {
		cfg := testConfig()
		cfg.MaxEpochs = 5
		cfg.Comm = CommAllGather
		cfg.Quant = grad.OneBitMax
		cfg.RelationPartition = rp
		res, perRank, relOwner, err := trainInternal(cfg, d, 4)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < 4; r++ {
			for i, v := range perRank[0].Entity.Data {
				if perRank[r].Entity.Data[i] != v {
					t.Fatalf("rp=%v: entity replicas diverged at rank %d index %d", rp, r, i)
				}
			}
		}
		if !rp {
			for r := 1; r < 4; r++ {
				for i, v := range perRank[0].Relation.Data {
					if perRank[r].Relation.Data[i] != v {
						t.Fatalf("relation replicas diverged at rank %d index %d", r, i)
					}
				}
			}
		} else {
			if relOwner == nil {
				t.Fatal("RP run returned no owner table")
			}
			for rel, owner := range relOwner {
				src := 0
				if owner > 0 {
					src = owner
				}
				ownerRow := perRank[src].Relation.Row(rel)
				mergedRow := res.FinalParams.Relation.Row(rel)
				for i := range ownerRow {
					if mergedRow[i] != ownerRow[i] {
						t.Fatalf("merged relation %d does not match owner %d", rel, owner)
					}
				}
			}
		}
	}
}

func TestDynamicStaysOnAllReduceWhenDense(t *testing.T) {
	skipIfShort(t)
	// Every rank touches every entity each batch (dense gradients) and the
	// rows are wide, so the all-gather would replicate the whole matrix
	// P times while the ring all-reduce moves it ~twice: the probe must
	// never switch. This is the paper's FB15K finding (all-reduce always
	// wins when the gradient matrix is dense).
	d := kg.Generate(kg.GenConfig{
		Name: "dense", Entities: 200, Relations: 6, Triples: 4000,
		Communities: 4, Seed: 3,
	})
	cfg := testConfig()
	cfg.Dim = 64
	cfg.Comm = CommDynamic
	cfg.ProbeEvery = 2
	cfg.BatchSize = 2000
	cfg.MaxEpochs = 8
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchedAtEpoch != 0 {
		t.Fatalf("dense workload switched to all-gather at epoch %d", res.SwitchedAtEpoch)
	}
	for _, e := range res.PerEpoch {
		if e.Mode != "allreduce" {
			t.Fatalf("epoch %d mode %q", e.Epoch, e.Mode)
		}
	}
}
