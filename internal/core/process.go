package core

// Multi-process training: TrainProcess is Train for a job where every rank
// is a real OS process reaching its peers through a transport endpoint
// (in practice tcptransport over a cluster of kgetrain invocations).
//
// The determinism contract carries over from the channel world: every
// process derives the partition, the initialization and all randomness from
// (Config, dataset, world size) alone, and charges identical virtual costs
// to its own private simnet cluster, so epoch-level loss/accuracy
// trajectories — and the coordinator's recorded curves — are identical to
// the same seeded in-process run. The one divergence is bookkeeping: the
// checkpoint merge must physically gather relation rows from their owners
// (the replicas live in different address spaces), which moves real bytes
// and virtual time the channel world's shared-memory merge does not.
//
// Failure handling is the same shrink-and-continue loop as Train, driven by
// the same *mpi.RankFailedError — except the errors now come from real
// sockets (EOF, resets, heartbeat silence) instead of a fault plan. Two
// differences are forced by process reality: a process the survivors
// declared dead cannot rejoin (it exits with an error instead), and there
// is no graceful degradation to a single fresh node once MaxRecoveries is
// exhausted — surviving processes cannot absorb each other, so the job
// fails loudly and is restarted from the last checkpoint.

import (
	"errors"
	"fmt"
	"math"

	"kgedist/internal/eval"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/simnet"
	"kgedist/internal/transport"
	"kgedist/internal/xrand"
)

// TrainProcess runs this process's rank of a multi-process training job over
// the endpoint's fabric. It consumes the endpoint: the world (and with it
// the endpoint, or its post-shrink successor) is closed before returning.
func TrainProcess(cfg Config, d *kg.Dataset, ep transport.Endpoint) (res *Result, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FaultPlan != nil {
		return nil, fmt.Errorf("core: simulated fault plans drive the in-process world; over a real transport faults come from the sockets themselves")
	}
	if cfg.TrackEpochStats {
		return nil, fmt.Errorf("core: TrackEpochStats needs every replica in one address space; it is not available in process mode")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Train) == 0 {
		return nil, fmt.Errorf("core: empty training split")
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	width := m.Width()
	nodes := ep.Size()

	cluster := simnet.NewCluster(nodes, simnet.XC40Params())
	if cfg.StragglerSlowdown > 1 {
		cluster.SetComputeSpeed(0, 1/cfg.StragglerSlowdown)
	}
	world, err := mpi.NewProcessWorld(cluster, ep)
	if err != nil {
		return nil, err
	}
	// A failed close is a failed departure: the bye frame never reached the
	// peers, so they will diagnose this rank as crashed. Surface that rather
	// than report a clean finish.
	defer func() {
		if cerr := world.Close(); cerr != nil && err == nil {
			res, err = nil, fmt.Errorf("core: closing transport world: %w", cerr)
		}
	}()

	var proto *model.Params
	if cfg.WarmStart != nil {
		if cfg.WarmStart.Entity.Rows != d.NumEntities ||
			cfg.WarmStart.Relation.Rows != d.NumRelations ||
			cfg.WarmStart.Entity.Cols != width {
			return nil, fmt.Errorf("core: WarmStart shape (%dx%d entities, %d relations) does not match dataset/model (%dx%d, %d)",
				cfg.WarmStart.Entity.Rows, cfg.WarmStart.Entity.Cols, cfg.WarmStart.Relation.Rows,
				d.NumEntities, width, d.NumRelations)
		}
		proto = cfg.WarmStart.Clone()
	} else {
		proto = model.NewParams(m, d.NumEntities, d.NumRelations)
		proto.Init(m, xrand.New(cfg.Seed).Split(0))
	}

	res = &Result{Strategy: cfg.StrategyLabel(), Nodes: nodes}
	snap := &snapshot{epoch: 0, params: proto}
	var rec RecoveryStats

	var run *trainRun
	attempt := 0
	for {
		myRank := world.LocalRanks()[0]
		pt, perr := buildPartition(&cfg, d, world.Size())
		if perr != nil {
			return nil, perr
		}
		perRank := make([]*model.Params, world.Size())
		if !cfg.Partitioned {
			perRank[myRank] = snap.params.Clone()
		}
		run = &trainRun{
			cfg:             &cfg,
			d:               d,
			m:               m,
			width:           width,
			shards:          pt.shards,
			valShards:       pt.valShards,
			perRankValCap:   pt.perRankValCap,
			relOwner:        pt.relOwner,
			batchesPerEpoch: pt.batchesPerEpoch,
			plan:            pt.plan,
			cluster:         cluster,
			perRank:         perRank,
			res:             res,
			snap:            snap,
			rec:             &rec,
			startEpoch:      snap.epoch,
			proc:            true,
			statsRank:       myRank,
		}
		err := world.RunErr(run.worker)
		if err == nil {
			break
		}
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) || !cfg.Recover {
			return nil, err
		}
		for _, r := range rf.Ranks {
			if r == myRank {
				return nil, fmt.Errorf("core: this process (rank %d) was declared dead by its peers; it cannot rejoin the job: %w", myRank, err)
			}
		}

		// ---- Shrink-and-continue over the real fabric ----
		attempt++
		rec.Recoveries++
		rec.RankFailures += len(rf.Ranks)
		rec.EpochsLost += res.Epochs - snap.epoch
		for len(res.PerEpoch) > 0 && res.PerEpoch[len(res.PerEpoch)-1].Epoch > snap.epoch {
			res.PerEpoch = res.PerEpoch[:len(res.PerEpoch)-1]
		}
		res.Epochs = snap.epoch

		if attempt > cfg.MaxRecoveries && world.Size()-len(rf.Ranks) > 1 {
			// The channel world degrades to one fresh fault-free node here;
			// real processes cannot be collapsed into each other.
			return nil, fmt.Errorf("core: %d recoveries exhausted MaxRecoveries=%d; restart the job from the checkpoint: %w",
				attempt, cfg.MaxRecoveries, err)
		}
		shrunk, serr := world.Shrink(rf.Ranks)
		if serr != nil {
			return nil, errors.Join(err, serr)
		}
		world = shrunk

		// Charge the recovery to the virtual clock — every surviving process
		// executes this identically against its private cluster, so clocks
		// stay in lockstep through the failure.
		bytes := int64(4 * (len(snap.params.Entity.Data) + len(snap.params.Relation.Data)))
		reload, _, _ := cluster.PointToPointCost(bytes)
		cost := cfg.RecoveryBackoff*math.Pow(2, float64(attempt-1)) + reload*float64(world.Size())
		cluster.Collective(cost, bytes*int64(world.Size()), int64(world.Size()), tagRecovery)
		rec.RecoverySeconds += cost
	}

	rec.FinalNodes = world.Size()
	res.Recovery = rec

	// ---- Final evaluation ----
	// Each process gathers the owned relation rows and evaluates the merged
	// model locally; the inputs are identical everywhere, so every process
	// reports the same numbers.
	var merged *model.Params
	if cfg.Partitioned {
		// Partitioned workers end with the collective shard gather; every
		// process is its own stats rank, so each already holds the model.
		merged = run.partFinal
		if merged == nil {
			return nil, fmt.Errorf("core: partitioned run finished without publishing the merged model")
		}
		q := run.plan.Quality()
		res.Partition = &PartitionStats{
			Algo:              run.plan.Algo,
			Ranks:             run.plan.Ranks,
			CutRatio:          q.CutRatio,
			RemoteRowFraction: q.RemoteRowFraction,
			EntityBalance:     q.EntityBalance,
			RelationBalance:   q.RelationBalance,
			TripleBalance:     q.TripleBalance,
			MaxEntityShard:    q.MaxEntityShard,
		}
	} else if err := world.RunErr(func(c *mpi.Comm) error {
		var merr error
		merged, merr = run.procMergedParams(c)
		return merr
	}); err != nil {
		return nil, fmt.Errorf("core: merging final model across processes: %w", err)
	}
	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 999)
	lp := eval.LinkPrediction(m, merged, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, merged, d, filter, evalRng)
	res.MRR = lp.FilteredMRR
	res.Hits1 = lp.Hits1
	res.Hits3 = lp.Hits3
	res.Hits10 = lp.Hits10
	res.MR = lp.MR
	res.TCA = tc.Accuracy
	res.FinalParams = merged
	st := cluster.Stats()
	res.CommBytes = st.BytesMoved
	res.CommHours = st.CommSeconds / 3600
	res.RelationCommBytes = cluster.BytesByTag()[tagRelation]
	res.TotalHours = cluster.MaxTime() / 3600
	return res, nil
}

// procMergedParams builds the merged evaluation/checkpoint model in a
// process world: entities are replicated (identical everywhere), and under
// relation partitioning each process contributes the relation rows it owns
// through an all-gather. Unowned relations keep the shared initialization,
// exactly as mergeParams does in shared memory.
func (t *trainRun) procMergedParams(c *mpi.Comm) (*model.Params, error) {
	params := t.perRank[c.Rank()]
	merged := params.Clone()
	if t.relOwner == nil {
		return merged, nil
	}
	var idx []int32
	for rel, owner := range t.relOwner {
		if owner == c.Rank() {
			idx = append(idx, int32(rel))
		}
	}
	vals := make([]float32, len(idx)*t.width)
	for k, rel := range idx {
		copy(vals[k*t.width:(k+1)*t.width], params.Relation.Row(int(rel)))
	}
	allIdx, allVals, _, err := c.AllGatherRows(idx, vals, tagCheckpoint)
	if err != nil {
		return nil, err
	}
	for r := range allIdx {
		for k, rel := range allIdx[r] {
			copy(merged.Relation.Row(int(rel)), allVals[r][k*t.width:(k+1)*t.width])
		}
	}
	return merged, nil
}

// checkpointEpochProc is checkpointEpoch for process worlds: the merge is a
// collective (relation owners gather their rows), every process keeps the
// identical snapshot locally as its warm-start point, rank 0 persists to
// disk, and the disk verdict is shared through a max-reduction so every
// process stops together on a write failure.
func (t *trainRun) checkpointEpochProc(c *mpi.Comm, epoch int) error {
	merged, err := t.procMergedParams(c)
	if err != nil {
		return err
	}
	t.snap.epoch = epoch
	t.snap.params = merged
	t.rec.Checkpoints++
	var flag float64
	if c.Rank() == 0 {
		t.ckptErr = nil
		if t.cfg.CheckpointPath != "" {
			t.ckptErr = model.SaveCheckpoint(t.cfg.CheckpointPath, t.m, merged)
		}
		if t.ckptErr != nil {
			flag = 1
		}
	}
	// Charge the snapshot identically on every process's private cluster.
	bytes := int64(4 * (len(merged.Entity.Data) + len(merged.Relation.Data)))
	cost, _, _ := t.cluster.PointToPointCost(bytes)
	t.cluster.Collective(cost, bytes, int64(c.Size()), tagCheckpoint)
	verdict, err := c.AllReduceScalar(flag, mpi.OpMax)
	if err != nil {
		return err
	}
	if verdict == 0 {
		return nil
	}
	if c.Rank() == 0 {
		return fmt.Errorf("core: checkpoint at epoch %d: %w", epoch, t.ckptErr)
	}
	return fmt.Errorf("core: checkpoint at epoch %d failed on rank 0", epoch)
}
