package core

import "kgedist/internal/model"

// EpochStats records one epoch's observables — the raw series behind the
// paper's figures.
type EpochStats struct {
	// Epoch is 1-based.
	Epoch int
	// Seconds is the epoch's virtual duration (compute + communication).
	Seconds float64
	// CommSeconds is the virtual time inside collectives this epoch.
	CommSeconds float64
	// CommBytes is the payload volume moved this epoch.
	CommBytes int64
	// ValAccuracy is the validation pairwise-ranking accuracy in percent
	// (the convergence metric driving the LR schedule and early stop).
	ValAccuracy float64
	// TrainLoss is rank 0's mean per-example training loss this epoch
	// (logistic or hinge, per the configured objective). It is a rank-local
	// observable — no collective is spent on it — but with a fixed seed it
	// is fully deterministic, which is what the golden-run convergence
	// regression harness (internal/testkit) pins.
	TrainLoss float64
	// ValTCA is the validation triple-classification accuracy in percent
	// (recorded when TrackEpochStats; used by the TCA-vs-epoch figures).
	ValTCA float64
	// NonZeroGradRows is the average per-batch count of non-zero entity
	// gradient rows before selection (Figure 2's quantity).
	NonZeroGradRows float64
	// Sparsity is the fraction of gradient rows dropped by selection.
	Sparsity float64
	// RemoteRowFraction is the fraction of unique embedding rows touched by
	// this rank's batches that lived on another rank and had to be pulled
	// (partitioned mode only; the realized counterpart of the partition
	// plan's predicted remote-row fraction). Rank-local but deterministic,
	// so the golden harness pins it.
	RemoteRowFraction float64
	// Mode is the exchange used this epoch ("allreduce", "allgather",
	// "dyncomp" under the adaptive controller, or "rowexchange" in
	// partitioned mode).
	Mode string
	// Level is the compression-ladder rung this epoch's exchanges ran at
	// ("fp32", "2bit", "1bit", "1bit+rs"; empty outside the adaptive
	// controller — DESIGN.md §13). Globally agreed, so the golden harness
	// pins it at zero tolerance.
	Level string `json:",omitempty"`
	// GradEntropy is the epoch's globally summed normalized bucket entropy
	// of the entity gradient — the controller's decision signal (DESIGN.md
	// §13; zero outside the adaptive controller).
	GradEntropy float64 `json:",omitempty"`
	// LR is the learning rate in effect.
	LR float64
}

// CompressionStep records one ladder ascent of the adaptive compression
// controller (DESIGN.md §13).
type CompressionStep struct {
	// Epoch is the first epoch trained at the new rung.
	Epoch int
	// Level is the rung stepped to ("2bit", "1bit", "1bit+rs").
	Level string
}

// RecoveryStats summarizes the fault-tolerance activity of a run: injected
// faults, rank failures observed, shrink-and-continue recoveries, epochs
// replayed, and the virtual time charged to checkpointing and recovery. All
// values are deterministic functions of (Config, dataset, nodes): a given
// seed and fault plan always yields the same stats.
type RecoveryStats struct {
	// FaultsInjected counts fault-plan entries that actually fired.
	FaultsInjected int
	// RankFailures counts dead ranks observed across all failures.
	RankFailures int
	// Recoveries counts shrink-and-continue restarts.
	Recoveries int
	// EpochsLost counts completed epochs discarded by rollbacks to the last
	// snapshot (work that had to be replayed).
	EpochsLost int
	// RecoverySeconds is the virtual time charged to failure detection,
	// backoff and checkpoint reload.
	RecoverySeconds float64
	// Checkpoints counts periodic snapshots taken.
	Checkpoints int
	// FinalNodes is the world size that finished the run (smaller than
	// Nodes after shrink-and-continue).
	FinalNodes int
	// Degraded reports that the run fell back to a single fault-free node
	// after exhausting MaxRecoveries.
	Degraded bool
}

// PartitionStats reports the quality of the row partition a partitioned run
// trained under (the plan of the final attempt, after any shrink): how well
// the min-cut kept triples rank-local and how evenly the tables spread.
type PartitionStats struct {
	// Algo is the partitioner used ("mincut" or "hash").
	Algo string
	// Ranks is the world size the plan was built for.
	Ranks int
	// CutRatio is the fraction of training triples not fully local to their
	// shard's rank.
	CutRatio float64
	// RemoteRowFraction is the predicted fraction of row references that
	// cross ranks when every triple trains on its assigned shard.
	RemoteRowFraction float64
	// EntityBalance, RelationBalance and TripleBalance are max-shard /
	// ideal-shard ratios (1.0 = perfectly even).
	EntityBalance   float64
	RelationBalance float64
	TripleBalance   float64
	// MaxEntityShard is the largest per-rank entity-row count — the peak
	// memory claim, strictly below the full table for P >= 2.
	MaxEntityShard int
}

// Result summarizes a training run; fields mirror the paper's table columns.
type Result struct {
	// Strategy is the paper-style label, e.g. "DRS+1-bit+RP+SS".
	Strategy string
	// Nodes is the rank count P.
	Nodes int
	// Epochs is N, the epochs run until convergence (or the cap).
	Epochs int
	// TotalHours is TT, the virtual training time in hours.
	TotalHours float64
	// TCA is the final test triple-classification accuracy (percent).
	TCA float64
	// MRR is the final filtered mean reciprocal rank.
	MRR float64
	// Hits1, Hits3 and Hits10 are the final filtered Hits@K.
	Hits1  float64
	Hits3  float64
	Hits10 float64
	// MR is the final filtered mean rank.
	MR float64
	// CommBytes is the total payload volume of the run.
	CommBytes int64
	// CommHours is the virtual time spent communicating.
	CommHours float64
	// RelationCommBytes is the share of CommBytes carrying relation
	// gradients (zero under relation partition — the §4.4 claim).
	RelationCommBytes int64
	// SwitchedAtEpoch is the epoch the dynamic strategy switched to
	// all-gather, or 0 if it never switched / was not dynamic.
	SwitchedAtEpoch int
	// CompressionSteps is the adaptive controller's ladder trajectory: one
	// entry per rung engaged, in ascent order (empty outside dyncomp, or
	// when the ladder never left fp32). After a shrink-recovery the record
	// restarts with the ladder (DESIGN.md §13).
	CompressionSteps []CompressionStep `json:",omitempty"`
	// Recovery reports the fault-tolerance activity of the run; a fault-free
	// run without checkpointing leaves every counter zero except FinalNodes.
	Recovery RecoveryStats
	// Partition reports the row-partition quality of a partitioned run
	// (nil for replicated modes).
	Partition *PartitionStats
	// PerEpoch holds the per-epoch series when TrackEpochStats was set
	// (always includes at least Seconds/ValAccuracy/Mode).
	PerEpoch []EpochStats
	// FinalParams is the merged trained model (entity rows from the synced
	// replicas, relation rows from their owners under relation partition),
	// ready for evaluation or checkpointing. Excluded from JSON traces:
	// checkpoints carry the weights.
	FinalParams *model.Params `json:"-"`
}

// AvgEpochSeconds returns the mean virtual epoch time.
func (r *Result) AvgEpochSeconds() float64 {
	if len(r.PerEpoch) == 0 {
		return 0
	}
	var s float64
	for _, e := range r.PerEpoch {
		s += e.Seconds
	}
	return s / float64(len(r.PerEpoch))
}
