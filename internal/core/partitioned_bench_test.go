package core

import "testing"

// Row-exchange cost, end to end: one epoch of sharded-table training (pull
// remote rows, local SGD, push gradient rows, owner aggregation) next to
// the same epoch replicated. The allocs/op column is the hot-path budget
// the hotpathalloc lint entries guard — growth here means a scratch buffer
// stopped being reused.

func BenchmarkPartitionedTrainEpoch(b *testing.B) {
	d := testDataset()
	cfg := testConfig()
	cfg.Partitioned = true
	cfg.MaxEpochs = 1
	cfg.StopPatience = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, d, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicatedTrainEpoch(b *testing.B) {
	d := testDataset()
	cfg := testConfig()
	cfg.MaxEpochs = 1
	cfg.StopPatience = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, d, 4); err != nil {
			b.Fatal(err)
		}
	}
}
