// Package core is the paper's primary contribution: a distributed
// data-parallel trainer for knowledge-graph embeddings implementing the five
// dynamic strategies of Panda & Vadhiyar (ICPP 2022) on top of the mpi and
// simnet substrates:
//
//  1. Dynamic selection between all-reduce and all-gather gradient exchange
//     (probe every k epochs, switch permanently if all-gather is faster).
//  2. Random Selection (RS) of gradient rows by 2-norm Bernoulli sampling.
//  3. 1-bit / 2-bit gradient quantization of the communicated rows.
//  4. Relation Partition (RP): triples partitioned so relations never span
//     ranks, eliminating relation-gradient communication entirely.
//  5. Negative Sample Selection (SS): per positive, draw n candidates and
//     train on the hardest (highest-scoring) one.
//
// Every rank runs as a goroutine with a full model replica (the Horovod
// replication scheme); gradient exchanges are deterministic, so replicas
// remain bit-identical except for rank-private relation rows under RP.
package core

import (
	"fmt"

	"kgedist/internal/grad"
	"kgedist/internal/model"
	"kgedist/internal/simnet"
)

// CommStrategy selects the gradient-exchange baseline.
type CommStrategy int

// Exchange strategies of the paper's baseline study (§3.4) plus the dynamic
// strategy of §4.1.
const (
	// CommAllReduce always performs dense all-reduce of the full gradient
	// matrix.
	CommAllReduce CommStrategy = iota
	// CommAllGather always all-gathers the non-zero gradient rows.
	CommAllGather
	// CommDynamic starts with all-reduce and probes all-gather every
	// ProbeEvery epochs, switching permanently when the probe wins.
	CommDynamic
	// CommDynamicCompress is the adaptive compression controller (DESIGN.md
	// §13): exchanges ride the compressed reduce-scatter/all-gather pipeline
	// at every rung, and a per-epoch gradient-entropy probe walks the
	// monotone ladder fp32 -> 2-bit -> 1-bit -> 1-bit+RS with error-feedback
	// residuals. Owns quantization, selection and error feedback, so the
	// static Quant/Select/ErrorFeedback knobs must stay unset.
	CommDynamicCompress
)

// String returns the paper's name for the strategy.
func (c CommStrategy) String() string {
	switch c {
	case CommAllReduce:
		return "allreduce"
	case CommAllGather:
		return "allgather"
	case CommDynamic:
		return "dynamic"
	case CommDynamicCompress:
		return "dyncomp"
	}
	return "unknown"
}

// Config assembles a training run. The zero value is not runnable; start
// from DefaultConfig.
type Config struct {
	// ModelName is "complex" (the paper's model), "distmult" or "transe".
	ModelName string
	// Dim is the embedding dimension (complex dimension for ComplEx).
	Dim int
	// OptimizerName is "adam" (paper), "adagrad" or "sgd".
	OptimizerName string
	// LossName selects the objective: "logistic" (the paper's ComplEx
	// loss) or "margin" (the pairwise margin-ranking loss of the TransE
	// line of work, kept as a baseline objective).
	LossName string
	// Margin is the ranking margin gamma for LossName "margin".
	Margin float64

	// BatchSize is the per-worker batch size (paper: 10000).
	BatchSize int
	// BaseLR is the single-node learning rate (paper: 0.001).
	BaseLR float64
	// LRScaleCap caps the linear-scaling factor (paper: 4).
	LRScaleCap int
	// LRFactor multiplies the LR on plateau (paper: 0.1).
	LRFactor float64
	// MinLR floors the schedule.
	MinLR float64
	// Tolerance is the plateau patience in epochs (paper: 15).
	Tolerance int
	// StopPatience ends training after this many epochs without
	// validation improvement.
	StopPatience int
	// MaxEpochs hard-caps training length.
	MaxEpochs int
	// L2 is the weight-decay coefficient applied to touched rows.
	L2 float64
	// ClipNorm > 0 clips each aggregated gradient row to this 2-norm
	// before the optimizer applies it.
	ClipNorm float64
	// MaxVirtualHours > 0 stops training once the virtual cluster clock
	// passes the budget (checked at epoch boundaries) — a wall-clock-style
	// budget in simulated time.
	MaxVirtualHours float64

	// Comm is the gradient-exchange strategy.
	Comm CommStrategy
	// ProbeEvery is the dynamic strategy's probe period k (paper: 10).
	ProbeEvery int
	// CompressHold is the adaptive controller's hysteresis: consecutive
	// below-threshold epochs required per ladder step (CommDynamicCompress
	// only; 0 = grad.DefaultHold). See DESIGN.md §13.
	CompressHold int
	// CompressWarmup is the initial epochs during which the adaptive
	// controller never steps (CommDynamicCompress only; 0 =
	// grad.DefaultWarmup). See DESIGN.md §13.
	CompressWarmup int
	// Select is the random-selection mode applied to communicated rows.
	Select grad.SelectMode
	// Quant is the quantization scheme for the all-gather path; the dense
	// all-reduce path always runs full precision (bits cannot be summed).
	Quant grad.Scheme
	// ErrorFeedback enables residual error accumulation for quantization
	// (extension; off in the paper's main pipeline).
	ErrorFeedback bool
	// ValueSparsify in (0, 1] enables the Aji & Heafield value-level top-k
	// baseline on the all-gather path: only that fraction of individual
	// gradient values (by magnitude) is communicated, each carrying 8
	// bytes of index overhead — the §2 related-work method the paper
	// rejects. Mutually exclusive with Quant.
	ValueSparsify float64
	// RelationPartition distributes triples by relation (§4.4) instead of
	// uniformly, eliminating relation-gradient communication.
	RelationPartition bool
	// PartitionAlgo selects the relation partitioner when RelationPartition
	// is set: "prefix" (the paper's sort + prefix-sum + binary search;
	// default) or "lpt" (greedy longest-processing-time, better balance
	// under skew).
	PartitionAlgo string

	// Partitioned enables the sharded-table training mode: a joint
	// entity+relation partition assigns every embedding row to exactly one
	// owner rank, each rank holds only its owned shard, and batches pull the
	// remote rows they touch and push gradient rows back (the DGL-KE
	// scale-out scheme grafted onto this trainer). Memory per rank then
	// shrinks with the world size instead of replicating the full table.
	// Mutually exclusive with RelationPartition, local SGD, quantization,
	// value sparsification, error feedback, the dynamic comm probe and
	// TrackEpochStats — the row exchange is its own communication mode.
	Partitioned bool
	// PartitionBy selects the row partitioner for Partitioned mode: "mincut"
	// (greedy min-cut over the triple hypergraph; default) or "hash" (seeded
	// uniform hashing, the locality-free baseline).
	PartitionBy string
	// PartitionSlack is the balance slack for Partitioned mode: each rank
	// owns at most about ceil(total/P)*(1+slack) rows of either table. Zero
	// means the partition package default (0.1).
	PartitionSlack float64

	// SyncEvery > 1 enables local-SGD-style training: gradients are applied
	// locally every batch and the replicas are averaged (dense parameter
	// all-reduce) only every SyncEvery batches — the periodic-averaging
	// communication-reduction baseline, orthogonal to the paper's five
	// strategies. 0 or 1 = synchronize every batch (the paper's setting).
	SyncEvery int

	// NegSamples is n, the negatives drawn per positive.
	NegSamples int
	// NegSelect trains on only the hardest of the n candidates (§4.5);
	// otherwise all n are trained on.
	NegSelect bool
	// NegSampling selects the corruption distribution: "uniform" (paper;
	// default) or "degree" (entities drawn by training-set frequency).
	NegSampling string

	// ValSample caps the validation triples scored per epoch (0 = all).
	ValSample int
	// TestSample caps the test triples used for the final MRR ranking
	// evaluation (0 = all).
	TestSample int

	// WarmStart, when non-nil, initializes every replica from these
	// parameters instead of random initialization — continue-training /
	// fine-tuning from a checkpoint. Shapes must match the dataset and
	// model width.
	WarmStart *model.Params

	// StragglerSlowdown, when > 1, runs rank 0's compute at
	// 1/StragglerSlowdown speed — a failure-injection knob exposing the
	// bulk-synchronous loop's sensitivity to a slow node (every collective
	// waits for the straggler).
	StragglerSlowdown float64

	// FaultPlan, when non-nil, schedules deterministic faults (rank crashes,
	// slowdown windows, network-delay spikes) against the virtual clock.
	// The plan is cloned at train start; see simnet.ParseFaultPlan for the
	// textual form used by the -faults CLI flag.
	FaultPlan *simnet.FaultPlan
	// CheckpointEvery > 0 snapshots the merged model every that many epochs
	// (charged to the virtual clock). The snapshot is the warm-start point
	// for shrink-and-continue recovery; epoch 0 (the initialization) is
	// always an implicit snapshot, so recovery works even before the first
	// periodic checkpoint.
	CheckpointEvery int
	// CheckpointPath, when set, additionally persists each snapshot to disk
	// with the crash-safe protocol (tmp file + checksum + rename). Requires
	// CheckpointEvery > 0 to have any effect.
	CheckpointPath string
	// Recover enables shrink-and-continue: when ranks die mid-training the
	// world is shrunk over the survivors, the dead ranks' shards are
	// re-partitioned, and training resumes from the last snapshot. Without
	// it a rank failure aborts the run with *mpi.RankFailedError.
	Recover bool
	// MaxRecoveries caps shrink-and-continue attempts; one more failure
	// degrades the run to a single fault-free node (graceful degradation)
	// instead of giving up. Ignored unless Recover is set.
	MaxRecoveries int
	// RecoveryBackoff is the virtual seconds charged for the first recovery
	// (failure detection, re-partitioning, checkpoint reload); each further
	// recovery doubles it — exponential backoff in simulated time.
	RecoveryBackoff float64

	// Seed drives every random choice of the run.
	Seed uint64
	// TrackEpochStats records per-epoch gradient-row counts and sparsity
	// (needed by the figure experiments; small extra cost).
	TrackEpochStats bool
}

// DefaultConfig returns the paper's hyper-parameters scaled to the mini
// datasets: ComplEx + Adam, batch 2000 (stands in for 10000 on the full
// datasets), plateau 0.1x after 15 epochs, cap-4 linear LR scaling. The
// base learning rate is 0.01 rather than the paper's 0.001 because the mini
// datasets take roughly 10x fewer optimizer steps per epoch; with Adam the
// product steps x lr governs progress, and 0.01 restores the paper's
// convergence horizon (a few hundred epochs shrink to under a hundred).
func DefaultConfig() Config {
	return Config{
		ModelName:     "complex",
		Dim:           32,
		OptimizerName: "adam",
		LossName:      "logistic",
		Margin:        1,
		BatchSize:     2000,
		BaseLR:        0.01,
		LRScaleCap:    4,
		LRFactor:      0.1,
		MinLR:         1e-5,
		Tolerance:     15,
		StopPatience:  25,
		MaxEpochs:     80,
		L2:            1e-5,
		Comm:          CommAllReduce,
		ProbeEvery:    10,
		Select:        grad.SelectAll,
		Quant:         grad.NoQuant,
		NegSamples:    1,
		NegSelect:     false,
		ValSample:     2000,
		TestSample:    300,
		MaxRecoveries: 3,
		RecoveryBackoff: 30,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("core: Dim must be positive, got %d", c.Dim)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.BaseLR <= 0 {
		return fmt.Errorf("core: BaseLR must be positive, got %v", c.BaseLR)
	}
	if c.MaxEpochs <= 0 {
		return fmt.Errorf("core: MaxEpochs must be positive, got %d", c.MaxEpochs)
	}
	if c.NegSamples < 1 {
		return fmt.Errorf("core: NegSamples must be >= 1, got %d", c.NegSamples)
	}
	if c.ValueSparsify != 0 {
		if c.ValueSparsify < 0 || c.ValueSparsify > 1 {
			return fmt.Errorf("core: ValueSparsify %v out of (0,1]", c.ValueSparsify)
		}
		if c.Quant != grad.NoQuant {
			return fmt.Errorf("core: ValueSparsify and Quant are mutually exclusive")
		}
	}
	if c.SyncEvery < 0 {
		return fmt.Errorf("core: SyncEvery must be >= 0, got %d", c.SyncEvery)
	}
	switch c.NegSampling {
	case "", "uniform", "degree":
	default:
		return fmt.Errorf("core: unknown negative sampling %q", c.NegSampling)
	}
	switch c.PartitionAlgo {
	case "", "prefix", "lpt":
	default:
		return fmt.Errorf("core: unknown partition algorithm %q", c.PartitionAlgo)
	}
	switch c.PartitionBy {
	case "", "mincut", "hash":
	default:
		return fmt.Errorf("core: unknown row partitioner %q (want mincut or hash)", c.PartitionBy)
	}
	if c.PartitionSlack < 0 {
		return fmt.Errorf("core: PartitionSlack must be >= 0, got %v", c.PartitionSlack)
	}
	if !c.Partitioned && (c.PartitionBy != "" || c.PartitionSlack != 0) {
		return fmt.Errorf("core: PartitionBy/PartitionSlack configure Partitioned mode; set Partitioned")
	}
	if c.Partitioned {
		if err := c.validatePartitioned(); err != nil {
			return err
		}
	}
	switch c.LossName {
	case "", "logistic":
	case "margin":
		if c.Margin <= 0 {
			return fmt.Errorf("core: margin loss needs Margin > 0, got %v", c.Margin)
		}
	default:
		return fmt.Errorf("core: unknown loss %q", c.LossName)
	}
	if c.Comm == CommDynamic && c.ProbeEvery < 1 {
		return fmt.Errorf("core: ProbeEvery must be >= 1 for dynamic comm, got %d", c.ProbeEvery)
	}
	if c.CompressHold < 0 || c.CompressWarmup < 0 {
		return fmt.Errorf("core: CompressHold and CompressWarmup must be >= 0")
	}
	if c.Comm != CommDynamicCompress && (c.CompressHold != 0 || c.CompressWarmup != 0) {
		return fmt.Errorf("core: CompressHold/CompressWarmup configure the adaptive controller; set Comm to dyncomp")
	}
	if c.Comm == CommDynamicCompress {
		if err := c.validateDynamicCompress(); err != nil {
			return err
		}
	}
	if c.Tolerance < 1 || c.StopPatience < 1 {
		return fmt.Errorf("core: Tolerance and StopPatience must be >= 1")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	if c.CheckpointPath != "" && c.CheckpointEvery <= 0 {
		return fmt.Errorf("core: CheckpointPath needs CheckpointEvery > 0")
	}
	if c.MaxRecoveries < 0 {
		return fmt.Errorf("core: MaxRecoveries must be >= 0, got %d", c.MaxRecoveries)
	}
	if c.RecoveryBackoff < 0 {
		return fmt.Errorf("core: RecoveryBackoff must be >= 0, got %v", c.RecoveryBackoff)
	}
	return nil
}

// validatePartitioned rejects every mode combination the sharded-table
// trainer cannot honor, each with the reason: the row exchange replaces the
// replicated gradient collectives, so knobs that reshape those collectives
// (or assume full replicas) have nothing to act on.
func (c Config) validatePartitioned() error {
	conflict := ""
	switch {
	case c.RelationPartition:
		conflict = "RelationPartition (the joint partition already assigns every relation row an owner)"
	case c.SyncEvery > 1:
		conflict = "SyncEvery > 1 (local SGD averages full replicas, which partitioned ranks do not hold)"
	case c.Comm == CommDynamic:
		conflict = "dynamic comm (the probe arbitrates all-reduce vs all-gather of replicated gradients)"
	case c.Comm == CommDynamicCompress:
		conflict = "adaptive compression (the ladder compresses the replicated gradient collectives)"
	case c.Quant != grad.NoQuant:
		conflict = "quantization (pushed rows are re-applied by their owner at full precision)"
	case c.ValueSparsify != 0:
		conflict = "ValueSparsify (value-level top-k targets the replicated all-gather payload)"
	case c.ErrorFeedback:
		conflict = "ErrorFeedback (residuals exist only for lossy replicated exchanges)"
	case c.TrackEpochStats:
		conflict = "TrackEpochStats (per-epoch merged-model evaluation needs full replicas)"
	}
	if conflict != "" {
		return fmt.Errorf("core: Partitioned cannot be combined with %s", conflict)
	}
	return nil
}

// validateDynamicCompress rejects knobs the adaptive compression controller
// owns itself (DESIGN.md §13): the ladder decides the quantization scheme,
// the selection mode and the error-feedback residuals per epoch, so the
// static flags must be left at their defaults; and the compressed pipeline
// replaces the per-batch collectives, which local SGD does not run.
func (c Config) validateDynamicCompress() error {
	conflict := ""
	switch {
	case c.Quant != grad.NoQuant:
		conflict = "Quant (the ladder picks the scheme per epoch)"
	case c.Select != grad.SelectAll:
		conflict = "Select (the ladder's RS rung owns row selection)"
	case c.ErrorFeedback:
		conflict = "ErrorFeedback (residuals are integral to the ladder; always on at lossy rungs)"
	case c.ValueSparsify != 0:
		conflict = "ValueSparsify (value-level top-k targets the plain all-gather payload)"
	case c.SyncEvery > 1:
		conflict = "SyncEvery > 1 (local SGD skips the per-batch collectives the ladder compresses)"
	}
	if conflict != "" {
		return fmt.Errorf("core: adaptive compression (dyncomp) cannot be combined with %s", conflict)
	}
	return nil
}

// StrategyLabel renders the configuration in the paper's shorthand, e.g.
// "DRS+1-bit+RP+SS".
func (c Config) StrategyLabel() string {
	if c.Partitioned {
		algo := c.PartitionBy
		if algo == "" {
			algo = "mincut"
		}
		label := "partitioned-" + algo
		if c.Select == grad.SelectBernoulli {
			label += "+RS"
		}
		if c.NegSelect {
			label += "+SS"
		}
		return label
	}
	label := ""
	switch {
	case c.Comm == CommDynamicCompress:
		label = "dyncomp"
	case c.Comm == CommDynamic && c.Select == grad.SelectBernoulli:
		label = "DRS"
	case c.Select == grad.SelectBernoulli:
		label = "RS"
	default:
		label = c.Comm.String()
	}
	if c.Quant != grad.NoQuant {
		switch c.Quant.BitsPerValue() {
		case 1:
			label += "+1-bit"
		case 2:
			label += "+2-bit"
		}
	}
	if c.RelationPartition {
		label += "+RP"
	}
	if c.NegSelect {
		label += "+SS"
	}
	return label
}
