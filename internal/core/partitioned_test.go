package core

import (
	"math"
	"path/filepath"
	"testing"

	"kgedist/internal/grad"
	"kgedist/internal/model"
	part "kgedist/internal/partition"
	"kgedist/internal/simnet"
)

// partitionedConfig is testConfig switched into sharded-table mode.
func partitionedConfig() Config {
	cfg := testConfig()
	cfg.Partitioned = true
	return cfg
}

func TestPartitionedValidateRejectsConflicts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"relation partition", func(c *Config) { c.RelationPartition = true }},
		{"local sgd", func(c *Config) { c.SyncEvery = 4 }},
		{"dynamic comm", func(c *Config) { c.Comm = CommDynamic }},
		{"quantization", func(c *Config) { c.Quant = grad.OneBitMax }},
		{"value sparsify", func(c *Config) { c.ValueSparsify = 0.5 }},
		{"error feedback", func(c *Config) { c.ErrorFeedback = true }},
		{"track epoch stats", func(c *Config) { c.TrackEpochStats = true }},
		{"bad partitioner", func(c *Config) { c.PartitionBy = "metis" }},
		{"negative slack", func(c *Config) { c.PartitionSlack = -0.2 }},
	}
	for _, tc := range cases {
		cfg := partitionedConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The partition knobs demand the mode itself.
	cfg := testConfig()
	cfg.PartitionBy = "hash"
	if err := cfg.Validate(); err == nil {
		t.Error("PartitionBy without Partitioned accepted")
	}
	// Supported combinations stay valid.
	ok := partitionedConfig()
	ok.Select = grad.SelectBernoulli
	ok.NegSelect = true
	ok.PartitionBy = "hash"
	ok.PartitionSlack = 0.2
	if err := ok.Validate(); err != nil {
		t.Errorf("valid partitioned config rejected: %v", err)
	}
}

func TestPartitionedStrategyLabel(t *testing.T) {
	cfg := partitionedConfig()
	if got := cfg.StrategyLabel(); got != "partitioned-mincut" {
		t.Fatalf("label = %q", got)
	}
	cfg.PartitionBy = "hash"
	cfg.Select = grad.SelectBernoulli
	cfg.NegSelect = true
	if got := cfg.StrategyLabel(); got != "partitioned-hash+RS+SS" {
		t.Fatalf("label = %q", got)
	}
}

// TestPartitionedMemoryBound pins the tentpole's memory claim: every rank's
// shard stays under the balance bound and strictly below the full table.
func TestPartitionedMemoryBound(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := partitionedConfig()
	cfg.MaxEpochs = 2
	cfg.StopPatience = 2
	const nodes = 4
	res, err := Train(cfg, d, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition == nil {
		t.Fatal("partitioned run reported no partition stats")
	}
	bound := part.BalanceBound(d.NumEntities, nodes, cfg.PartitionSlack)
	if res.Partition.MaxEntityShard > bound {
		t.Errorf("peak entity shard %d exceeds balance bound %d", res.Partition.MaxEntityShard, bound)
	}
	if res.Partition.MaxEntityShard >= d.NumEntities {
		t.Errorf("a rank held the full entity table (%d rows)", res.Partition.MaxEntityShard)
	}
	if res.Partition.Algo != "mincut" || res.Partition.Ranks != nodes {
		t.Errorf("partition stats = %+v", res.Partition)
	}
	for _, es := range res.PerEpoch {
		if es.Mode != "rowexchange" {
			t.Errorf("epoch %d mode = %q", es.Epoch, es.Mode)
		}
		if es.RemoteRowFraction <= 0 || es.RemoteRowFraction >= 1 {
			t.Errorf("epoch %d remote-row fraction %.3f out of (0,1)", es.Epoch, es.RemoteRowFraction)
		}
	}
}

// TestPartitionedConvergesLikeReplicated: same seed, same dataset, same
// budget — the sharded-table trainer must reach an MRR in the replicated
// baseline's neighborhood (single-owner rows see the same aggregate
// gradients; only the optimizer moment layout and negative-draw order
// differ).
func TestPartitionedConvergesLikeReplicated(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	base := testConfig()
	base.MaxEpochs = 25
	base.StopPatience = 25
	repl, err := Train(base, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Partitioned = true
	sharded, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.MRR < 0.6*repl.MRR {
		t.Errorf("partitioned MRR %.4f too far below replicated %.4f", sharded.MRR, repl.MRR)
	}
	if sharded.MRR < 0.05 {
		t.Errorf("partitioned MRR %.4f shows no learning", sharded.MRR)
	}
}

// TestPartitionedDeterministic: identical runs yield bit-identical
// trajectories and final metrics.
func TestPartitionedDeterministic(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := partitionedConfig()
	cfg.MaxEpochs = 4
	cfg.StopPatience = 4
	a, err := Train(cfg, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.MRR != b.MRR || a.TotalHours != b.TotalHours || a.CommBytes != b.CommBytes {
		t.Fatalf("runs diverge: MRR %v vs %v, hours %v vs %v", a.MRR, b.MRR, a.TotalHours, b.TotalHours)
	}
	if len(a.PerEpoch) != len(b.PerEpoch) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.PerEpoch), len(b.PerEpoch))
	}
	for i := range a.PerEpoch {
		ea, eb := a.PerEpoch[i], b.PerEpoch[i]
		if ea.TrainLoss != eb.TrainLoss || ea.ValAccuracy != eb.ValAccuracy ||
			ea.RemoteRowFraction != eb.RemoteRowFraction {
			t.Fatalf("epoch %d diverges: %+v vs %+v", ea.Epoch, ea, eb)
		}
	}
}

// TestPartitionedHashBaseline: the hash partitioner trains too, with a
// higher remote-row fraction than min-cut on a community-structured KG.
func TestPartitionedHashBaseline(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := partitionedConfig()
	cfg.MaxEpochs = 2
	cfg.StopPatience = 2
	mc, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PartitionBy = "hash"
	h, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Partition.Algo != "hash" {
		t.Fatalf("hash run reports algo %q", h.Partition.Algo)
	}
	if mc.Partition.RemoteRowFraction > h.Partition.RemoteRowFraction {
		t.Errorf("mincut planned remote fraction %.3f worse than hash %.3f",
			mc.Partition.RemoteRowFraction, h.Partition.RemoteRowFraction)
	}
}

// TestPartitionedCheckpointRecovery: a mid-training rank crash triggers
// re-partition over the survivors plus replay from the periodic snapshot,
// and the run still converges to a sane model.
func TestPartitionedCheckpointRecovery(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := partitionedConfig()
	cfg.MaxEpochs = 10
	cfg.StopPatience = 10
	cfg.CheckpointEvery = 2
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "part.ckpt")
	cfg.Recover = true
	cfg.FaultPlan = &simnet.FaultPlan{Faults: []simnet.Fault{
		{Kind: simnet.FaultCrash, Rank: 2, At: 0.01},
	}}
	res, err := Train(cfg, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Recoveries == 0 || res.Recovery.RankFailures == 0 {
		t.Fatalf("fault did not trigger recovery: %+v", res.Recovery)
	}
	if res.Recovery.FinalNodes >= 4 {
		t.Fatalf("world did not shrink: %d nodes", res.Recovery.FinalNodes)
	}
	if res.Partition == nil || res.Partition.Ranks != res.Recovery.FinalNodes {
		t.Fatalf("partition stats not rebuilt for the shrunken world: %+v", res.Partition)
	}
	if res.Recovery.Checkpoints == 0 {
		t.Fatal("no checkpoints were taken")
	}
	if math.IsNaN(res.MRR) || res.MRR <= 0 {
		t.Fatalf("post-recovery MRR = %v", res.MRR)
	}
	// The persisted checkpoint is loadable (KGE2 shard-aware gather wrote a
	// full merged model).
	if _, ckpt, err := model.LoadCheckpoint(cfg.CheckpointPath); err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	} else if ckpt.Entity.Rows != d.NumEntities || ckpt.Relation.Rows != d.NumRelations {
		t.Fatalf("checkpoint shape %dx%d entities, %d relations", ckpt.Entity.Rows, ckpt.Entity.Cols, ckpt.Relation.Rows)
	}
}

// TestPartitionedWarmStart: a partitioned run warm-starts from a full
// checkpoint (the scatter half of the shard-aware protocol).
func TestPartitionedWarmStart(t *testing.T) {
	skipIfShort(t)
	d := testDataset()
	cfg := partitionedConfig()
	cfg.MaxEpochs = 3
	cfg.StopPatience = 3
	first, err := Train(cfg, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.WarmStart = first.FinalParams
	second, err := Train(cfg2, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if second.PerEpoch[0].TrainLoss >= first.PerEpoch[0].TrainLoss {
		t.Errorf("warm start did not help: first-epoch loss %.4f vs cold %.4f",
			second.PerEpoch[0].TrainLoss, first.PerEpoch[0].TrainLoss)
	}
}
