package core

import (
	"testing"

	"kgedist/internal/grad"
	"kgedist/internal/mpi"
	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

func TestDynamicCompressValidation(t *testing.T) {
	good := testConfig()
	good.Comm = CommDynamicCompress
	good.CompressHold = 3
	good.CompressWarmup = 5
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dyncomp config rejected: %v", err)
	}
	if CommDynamicCompress.String() != "dyncomp" {
		t.Fatalf("CommDynamicCompress.String() = %q", CommDynamicCompress.String())
	}
	// Knobs the controller owns itself, plus the hysteresis-field rules
	// (DESIGN.md §13): each must be rejected with a named conflict.
	bad := []func(*Config){
		func(c *Config) { c.Quant = grad.OneBitMax },
		func(c *Config) { c.Select = grad.SelectBernoulli },
		func(c *Config) { c.ErrorFeedback = true },
		func(c *Config) { c.ValueSparsify = 4 },
		func(c *Config) { c.SyncEvery = 4 },
		func(c *Config) { c.CompressHold = -1 },
		func(c *Config) { c.CompressWarmup = -1 },
		func(c *Config) { c.Comm = CommAllReduce }, // hysteresis without dyncomp
		func(c *Config) { c.Partitioned = true; c.TrackEpochStats = false },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad dyncomp config %d accepted", i)
		}
	}
}

// The adaptive pipeline end to end: the ladder engages, the per-epoch rung
// column agrees with the CompressionSteps ledger, and the entropy signal is
// recorded in (0, 1). Trajectory determinism across fabrics is pinned by the
// testkit dyncomp/tcp-dyncomp scenarios; this is the in-package smoke.
func TestTrainDynamicCompress(t *testing.T) {
	skipIfShort(t)
	cfg := testConfig()
	cfg.Comm = CommDynamicCompress
	cfg.CompressHold = 1
	cfg.CompressWarmup = 1
	cfg.MaxEpochs = 8
	cfg.TrackEpochStats = true
	res, err := Train(cfg, testDataset(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CompressionSteps) == 0 {
		t.Fatal("ladder never engaged")
	}
	if res.CommBytes == 0 {
		t.Fatal("no communication recorded")
	}
	stepAt := make(map[int]string, len(res.CompressionSteps))
	for _, s := range res.CompressionSteps {
		stepAt[s.Epoch] = s.Level
	}
	level := grad.LevelFP32
	for _, e := range res.PerEpoch {
		if e.Mode != "dyncomp" {
			t.Fatalf("epoch %d ran mode %q", e.Epoch, e.Mode)
		}
		if want, ok := stepAt[e.Epoch]; ok {
			level++
			if level.String() != want {
				t.Fatalf("ledger step at epoch %d says %q, ladder order says %q", e.Epoch, want, level)
			}
		}
		if e.Level != level.String() {
			t.Fatalf("epoch %d rung column %q, ledger implies %q", e.Epoch, e.Level, level)
		}
		if e.GradEntropy <= 0 || e.GradEntropy >= 1 {
			t.Fatalf("epoch %d entropy %v outside (0, 1)", e.Epoch, e.GradEntropy)
		}
	}
}

// A mid-training crash under dyncomp: the attempt restarts from the last
// checkpoint with the controller and residuals back at fp32, and the
// CompressionSteps ledger is cleared with the rest of the attempt state —
// the surviving run re-earns its ladder (DESIGN.md §13), so the final
// ledger must agree with the final rung column with no duplicated steps.
func TestTrainDynamicCompressRecoversFromCrash(t *testing.T) {
	skipIfShort(t)
	cfg := faultConfig(1)
	cfg.Comm = CommDynamicCompress
	cfg.CompressHold = 1
	cfg.CompressWarmup = 1
	cfg.TrackEpochStats = true
	res, err := Train(cfg, testDataset(), 4)
	if err != nil {
		t.Fatalf("Train with recovery: %v", err)
	}
	if res.Recovery.Recoveries != 1 || res.Recovery.FinalNodes != 3 {
		t.Fatalf("recovery stats = %+v, want one recovery to 3 nodes", res.Recovery)
	}
	if len(res.CompressionSteps) == 0 {
		t.Fatal("ladder never re-engaged after recovery")
	}
	stepAt := make(map[int]string, len(res.CompressionSteps))
	for _, s := range res.CompressionSteps {
		if stepAt[s.Epoch] != "" {
			t.Fatalf("duplicated ladder step at epoch %d (stale pre-crash ledger?)", s.Epoch)
		}
		stepAt[s.Epoch] = s.Level
	}
	level := grad.LevelFP32
	for _, e := range res.PerEpoch {
		if want, ok := stepAt[e.Epoch]; ok {
			level++
			if level.String() != want {
				t.Fatalf("ledger step at epoch %d says %q, ladder order says %q", e.Epoch, want, level)
			}
		}
		if e.Level != level.String() {
			t.Fatalf("epoch %d rung column %q, ledger implies %q", e.Epoch, e.Level, level)
		}
	}
}

// White-box: the full compressed pipeline at the top rung (1bit+rs), which
// the calibrated thresholds keep parked on the real datasets — forced here
// by feeding the controller a zero-entropy statistics vector until the
// ladder tops out. Covers the SelectEF banking branch, the selection
// tallies, and the epoch-boundary drain.
func TestCompressedExchangeTopRung(t *testing.T) {
	const width, numEnt, numRel = 8, 64, 16
	w := mpi.NewWorld(simnet.NewCluster(2, simnet.XC40Params()))
	w.Run(func(c *mpi.Comm) {
		cfg := testConfig()
		cfg.Comm = CommDynamicCompress
		cfg.CompressHold = 1
		cfg.CompressWarmup = 1
		x := newExchanger(&cfg, c, width, numEnt, numRel, xrand.New(99).Split(uint64(c.Rank())))

		// All mass in one bucket → normalized entropy 0, below every bar:
		// with hold=1, warmup=1 the ladder tops out in four decisions.
		var flat [grad.CtrlStatsLen]float32
		flat[0] = 4096
		flat[grad.EntropyBuckets] = numEnt
		flat[grad.EntropyBuckets+1] = numEnt
		flat[grad.EntropyBuckets+2] = numEnt
		for i := 0; i < 4; i++ {
			buf := flat
			x.ctrl.AdvanceFrom(buf[:])
		}
		if x.ctrl.Level() != grad.Level1BitRS {
			t.Errorf("ladder at %v, want 1bit+rs", x.ctrl.Level())
			return
		}

		entG := grad.NewSparseGrad(width)
		for i := int32(0); i < numEnt; i++ {
			row := entG.Row(i)
			for j := range row {
				row[j] = (float32(i) + 1) * 0.01 * (float32(j%3) - 1)
			}
		}
		relG := grad.NewSparseGrad(width)
		for i := int32(0); i < numRel; i++ {
			row := relG.Row(i)
			for j := range row {
				row[j] = 0.05 * (float32(j%2)*2 - 1)
			}
		}
		if flops := x.observe(entG); flops <= 0 {
			t.Errorf("observe charged %v flops", flops)
		}
		entAgg, relAgg, cost, err := x.exchange(entG, relG, "dyncomp")
		if err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		if entAgg == nil || entAgg.Len() == 0 || relAgg == nil || relAgg.Len() == 0 {
			t.Error("empty aggregates from compressed exchange")
		}
		if cost <= 0 {
			t.Errorf("cost = %v, want > 0", cost)
		}
		// The RS rung saw every entity and relation row and banked the
		// dropped ones whole (spread norms make drops certain under the
		// fixed seed).
		if x.selBefore != numEnt+numRel {
			t.Errorf("selBefore = %d, want %d", x.selBefore, numEnt+numRel)
		}
		if x.selDropped == 0 {
			t.Error("RS rung dropped no rows")
		}
		if x.entRes.Len() == 0 {
			t.Error("no residual banked at a lossy rung")
		}
		probe, before, dropped, err := x.advanceCompression()
		if err != nil {
			t.Errorf("advanceCompression: %v", err)
			return
		}
		if probe.Level != grad.Level1BitRS {
			t.Errorf("probe level %v, want 1bit+rs", probe.Level)
		}
		if before != numEnt+numRel || dropped == 0 {
			t.Errorf("drained tallies (%d, %d), want (%d, >0)", before, dropped, numEnt+numRel)
		}
		if x.selBefore != 0 || x.selDropped != 0 {
			t.Error("tallies not reset after drain")
		}
	})
}
