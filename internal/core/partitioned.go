package core

// Partitioned-table training (ISSUE 8 / ROADMAP item 2): instead of
// replicating the full embedding tables on every rank, a partition.Plan
// assigns each entity row and relation row exactly one owner, each rank
// materializes only its owned shard (shardStore), and every batch runs a
// two-phase row exchange (partExchanger):
//
//	pull — broadcast the batch's wanted remote row ids (all-gather of an id
//	       payload), owners reply with the row values (all-gather of sparse
//	       rows); the rank caches them for the batch.
//	push — gradient rows for remote-owned rows are all-gathered back; each
//	       owner folds in the contributions addressed to it, averages by
//	       1/P, and applies them with its own optimizer state.
//
// Both phases are plain mpi collectives, so the mode runs unchanged on the
// channel world and the process/TCP world, and — unlike the replicated
// checkpoint paths, which differ between worlds — the partitioned
// checkpoint is one collective gather everywhere, keeping the two worlds'
// virtual clocks and trajectories bit-identical even through snapshots.
// Recovery reuses the generic shrink-and-continue loop: the plan is a pure
// function of (Config, dataset, world size), so survivors re-partition
// deterministically and warm-start their new shards from the snapshot.

import (
	"fmt"

	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/opt"
	part "kgedist/internal/partition"
	"kgedist/internal/simnet"
	"kgedist/internal/tensor"
	"kgedist/internal/xrand"
)

// shardStore is one rank's slice of the embedding tables: the rows it owns
// under the plan, stored densely in ascending-uid order. It is the whole
// memory claim of partitioned mode — len(uids) rows instead of the full
// NumEntities+NumRelations.
type shardStore struct {
	plan  *part.Plan
	width int
	uids  []int32        // local index -> unified row id, ascending
	local []int32        // unified row id -> local index, -1 if unowned
	rows  *tensor.Matrix // owned rows, indexed by local index
}

// newShardStore materializes rank's shard, warm-starting every owned row
// from the full snapshot params (the scatter half of the shard-aware
// checkpoint protocol; the gather half is partMergedParams).
func newShardStore(plan *part.Plan, rank, width int, src *model.Params) *shardStore {
	uids := plan.OwnedUIDs(rank)
	s := &shardStore{
		plan:  plan,
		width: width,
		uids:  uids,
		local: make([]int32, plan.Rows()),
		rows:  tensor.NewMatrix(len(uids), width),
	}
	for i := range s.local {
		s.local[i] = -1
	}
	for li, uid := range uids {
		s.local[uid] = int32(li)
		copy(s.rows.Row(li), snapshotRow(src, plan, uid))
	}
	return s
}

// snapshotRow resolves a unified row id inside full params.
func snapshotRow(p *model.Params, plan *part.Plan, uid int32) []float32 {
	if plan.IsRelationUID(uid) {
		return p.Relation.Row(int(uid) - plan.NumEntities)
	}
	return p.Entity.Row(int(uid))
}

// owns reports whether this rank holds the row.
func (s *shardStore) owns(uid int32) bool { return s.local[uid] >= 0 }

// row returns the owned row's storage.
func (s *shardStore) row(uid int32) []float32 { return s.rows.Row(int(s.local[uid])) }

// partExchanger runs one rank's batch-scoped row exchange. All scratch
// (request decode buffer, the remote-row cache, the response/push/aggregate
// SparseGrads, the touch stamps) is reused across batches; the only fresh
// allocations are the wire payloads, whose ownership the all-gather
// contract transfers to the world.
type partExchanger struct {
	comm  *mpi.Comm
	store *shardStore
	width int

	cache *grad.SparseGrad // pulled remote rows, keyed by uid; valid for one batch
	resp  *grad.SparseGrad // owned rows staged for peers' requests
	pushG *grad.SparseGrad // gradient rows leaving for their owners
	agg   *grad.SparseGrad // aggregated gradients for rows this rank owns

	stamp []int32 // batch stamp per unified row id, for unique-touch counting
	gen   int32
	local  int // unique owned rows touched this batch
	remote int // unique remote rows touched (= pulled) this batch

	reqBuf  []int32 // DecodeIDs scratch
	moveBuf []int32 // owned/remote split scratch in push
}

func newPartExchanger(c *mpi.Comm, store *shardStore, width int) *partExchanger {
	return &partExchanger{
		comm:  c,
		store: store,
		width: width,
		cache: grad.NewSparseGrad(width),
		resp:  grad.NewSparseGrad(width),
		pushG: grad.NewSparseGrad(width),
		agg:   grad.NewSparseGrad(width),
		stamp: make([]int32, store.plan.Rows()),
	}
}

// begin opens a batch: forgets the previous batch's pulled rows and touch
// counts.
func (x *partExchanger) begin() {
	x.gen++
	x.cache.Clear()
	x.local, x.remote = 0, 0
}

// need marks the three rows a triple touches, materializing want-list
// entries for the remote ones.
//
//kgelint:hotpath
func (x *partExchanger) need(t kg.Triple) {
	x.needRow(t.H)
	x.needRow(x.store.plan.RelationUID(t.R))
	x.needRow(t.T)
}

func (x *partExchanger) needRow(uid int32) {
	if x.stamp[uid] == x.gen {
		return
	}
	x.stamp[uid] = x.gen
	if x.store.owns(uid) {
		x.local++
		return
	}
	x.remote++
	x.cache.Row(uid) // zero row = want-list entry, overwritten by pull
}

// row resolves a unified row id against the shard or the batch cache. Every
// uid reaching here was announced via need before the pull.
func (x *partExchanger) row(uid int32) []float32 {
	if x.store.owns(uid) {
		return x.store.row(uid)
	}
	r, ok := x.cache.Get(uid)
	if !ok {
		panic(fmt.Sprintf("core: row %d used without need() before the pull", uid))
	}
	return r
}

// pull executes the batch's remote-row fetch: all ranks broadcast their
// want lists, owners stage the requested rows, and one sparse-row
// all-gather delivers them. Returns the virtual cost of both collectives.
//
//kgelint:hotpath
func (x *partExchanger) pull() (float64, error) {
	payload := part.EncodeIDs(x.cache.Indices())
	reqs, reqCost, err := x.comm.AllGatherBytes(payload, tagPull)
	if err != nil {
		return 0, err
	}
	me := x.comm.Rank()
	x.resp.Clear()
	for src := range reqs {
		if src == me {
			continue // own wants are by construction not owned here
		}
		ids, derr := part.DecodeIDs(x.reqBuf, reqs[src])
		if derr != nil {
			panic(fmt.Sprintf("core: corrupt row-request payload: %v", derr))
		}
		x.reqBuf = ids
		for _, uid := range ids {
			if x.store.owns(uid) {
				copy(x.resp.Row(uid), x.store.row(uid))
			}
		}
	}
	idx, flat := x.resp.Flatten()
	allIdx, allVals, rowCost, err := x.comm.AllGatherRows(idx, flat, tagPull)
	if err != nil {
		return 0, err
	}
	w := x.width
	for src := range allIdx {
		if src == me {
			continue
		}
		vals := allVals[src]
		for k, uid := range allIdx[src] {
			if row, ok := x.cache.Get(uid); ok {
				copy(row, vals[k*w:(k+1)*w])
			}
		}
	}
	return reqCost + rowCost, nil
}

// push returns the batch's gradient rows to their owners: rows of uidG not
// owned here move to the wire (after optional random selection — RS applies
// to communicated rows, §4.2), one all-gather delivers them, and every rank
// folds the contributions addressed to it into x.agg in ascending source
// order (own local contribution at its own position), then averages by 1/P.
// On return uidG holds only the locally-owned rows and x.agg the aggregated
// owned-row gradients; both are valid until the next push.
//
//kgelint:hotpath
func (x *partExchanger) push(uidG *grad.SparseGrad, sel grad.SelectMode, selRng *xrand.RNG) (st grad.SelectStats, cost float64, err error) {
	x.moveBuf = x.moveBuf[:0]
	uidG.ForEach(func(uid int32, _ []float32) {
		if !x.store.owns(uid) {
			x.moveBuf = append(x.moveBuf, uid)
		}
	})
	x.pushG.Clear()
	for _, uid := range x.moveBuf {
		row, _ := uidG.Get(uid)
		copy(x.pushG.Row(uid), row)
		uidG.Drop(uid)
	}
	if sel != grad.SelectAll {
		st = grad.Select(x.pushG, sel, selRng)
	}
	idx, flat := x.pushG.Flatten()
	allIdx, allVals, cost, err := x.comm.AllGatherRows(idx, flat, tagPush)
	if err != nil {
		return st, 0, err
	}
	me := x.comm.Rank()
	w := x.width
	x.agg.Clear()
	for src := range allIdx {
		if src == me {
			// Own batch's contribution to own rows; own wire payload holds
			// only remote-owned rows, so nothing is double counted.
			uidG.ForEach(func(uid int32, row []float32) {
				tensor.Add(row, x.agg.Row(uid))
			})
			continue
		}
		vals := allVals[src]
		for k, uid := range allIdx[src] {
			if x.store.owns(uid) {
				tensor.Add(vals[k*w:(k+1)*w], x.agg.Row(uid))
			}
		}
	}
	scaleRows(x.agg, x.comm.Size())
	return st, cost, nil
}

// workerPartitioned is the per-rank training loop of partitioned mode. It
// mirrors worker's epoch skeleton (timestamps, validation reduction, stats
// recording, plateau/early-stop/budget decisions) so the ledger is
// comparable across modes, but replaces replicas + gradient collectives
// with the shard store + row exchange, and finishes with the collective
// gather that publishes the merged model through t.partFinal.
func (t *trainRun) workerPartitioned(c *mpi.Comm) error {
	cfg := t.cfg
	rank := c.Rank()
	nodes := c.Size()
	shard := t.shards[rank]
	store := newShardStore(t.plan, rank, t.width, t.snap.params)
	x := newPartExchanger(c, store, t.width)

	// One optimizer over the unified shard, indexed by local row id; Adam
	// moments per owned row exactly match the replicated per-table split.
	o := opt.NewByName(cfg.OptimizerName, len(store.uids), t.width)
	plateau := opt.NewPlateau(
		opt.ScaledLR(cfg.BaseLR, nodes, cfg.LRScaleCap),
		cfg.LRFactor, cfg.MinLR, cfg.Tolerance)

	rng := xrand.New(cfg.Seed).Split(uint64(rank + 1))
	var sampler model.Corrupter
	if cfg.NegSampling == "degree" {
		sampler = model.NewDegreeSampler(t.d, rng.Split(2))
	} else {
		sampler = model.NewNegSampler(t.d.NumEntities, rng.Split(2))
	}
	selRng := rng.Split(3)

	uidG := grad.NewSparseGrad(t.width)
	var dropBuf []int32
	batchPos := make([]kg.Triple, 0, cfg.BatchSize)
	cands := make([]kg.Triple, 0, cfg.BatchSize*cfg.NegSamples)
	negBuf := make([]kg.Triple, 0, cfg.NegSamples)
	var valNegs []kg.Triple
	order := make([]int, len(shard))
	for i := range order {
		order[i] = i
	}

	best := -1.0
	sinceBest := 0
	var prevStats simnet.Stats
	var prevTime float64

	for epoch := t.startEpoch + 1; epoch <= cfg.MaxEpochs; epoch++ {
		if err := c.Barrier(); err != nil {
			return err
		}
		if rank == t.statsRank {
			prevTime = t.cluster.MaxTime()
			prevStats = t.cluster.Stats()
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		epochRng := rng.Split(uint64(100 + epoch))
		epochRng.ShuffleInts(order)

		var nnzSum, lossSum float64
		var lossN int
		var selBefore, selDropped int
		var localRefs, remoteRefs int
		lr := float32(plateau.LR())

		for b := 0; b < t.batchesPerEpoch; b++ {
			uidG.Clear()
			x.begin()
			var flops float64

			// Stage the batch — positives and all negative candidates are
			// drawn before the pull so the want list covers every row the
			// batch will touch.
			batchPos = batchPos[:0]
			cands = cands[:0]
			if len(shard) > 0 {
				nIter := cfg.BatchSize
				if len(shard) < nIter {
					nIter = len(shard)
				}
				for i := 0; i < nIter; i++ {
					pos := shard[order[(b*cfg.BatchSize+i)%len(shard)]]
					batchPos = append(batchPos, pos)
					negBuf = sampler.CorruptN(pos, cfg.NegSamples, negBuf)
					cands = append(cands, negBuf...)
					x.need(pos)
					for _, ng := range negBuf {
						x.need(ng)
					}
				}
			}
			localRefs += x.local
			remoteRefs += x.remote

			if _, err := x.pull(); err != nil {
				return err
			}

			for i, pos := range batchPos {
				f, loss, n := t.partTrainExample(x, pos,
					cands[i*cfg.NegSamples:(i+1)*cfg.NegSamples], uidG)
				flops += f
				lossSum += loss
				lossN += n
			}
			flops += dropZeroRows(uidG, &dropBuf)
			nnzSum += float64(uidG.Len())
			t.cluster.AddCompute(rank, flops)

			st, _, err := x.push(uidG, cfg.Select, selRng)
			if err != nil {
				return err
			}
			selBefore += st.Before
			selDropped += st.Dropped
			applyFlops := t.applyOwnedGrads(o, store, x.agg, lr)
			t.cluster.AddCompute(rank, applyFlops)
		}

		// Validation over the rank's shard, with the corrupted triples'
		// rows pulled through the same exchange.
		valRng := xrand.New(cfg.Seed).Split(uint64(5000 + epoch)).Split(uint64(rank))
		correct, total, err := t.partValAccuracy(x, rank, valRng, &valNegs)
		if err != nil {
			return err
		}
		gc, err := c.AllReduceScalar(float64(correct), mpi.OpSum)
		if err != nil {
			return err
		}
		gt, err := c.AllReduceScalar(float64(total), mpi.OpSum)
		if err != nil {
			return err
		}
		valAcc := 50.0
		if gt > 0 {
			valAcc = 100 * gc / gt
		}

		if err := c.Barrier(); err != nil {
			return err
		}
		if rank == t.statsRank {
			now := t.cluster.MaxTime()
			st := t.cluster.Stats()
			es := EpochStats{
				Epoch:       epoch,
				Seconds:     now - prevTime,
				CommSeconds: st.CommSeconds - prevStats.CommSeconds,
				CommBytes:   st.BytesMoved - prevStats.BytesMoved,
				ValAccuracy: valAcc,
				Mode:        "rowexchange",
				LR:          plateau.LR(),
			}
			if t.batchesPerEpoch > 0 {
				es.NonZeroGradRows = nnzSum / float64(t.batchesPerEpoch)
			}
			if lossN > 0 {
				es.TrainLoss = lossSum / float64(lossN)
			}
			if selBefore > 0 {
				es.Sparsity = float64(selDropped) / float64(selBefore)
			}
			if refs := localRefs + remoteRefs; refs > 0 {
				es.RemoteRowFraction = float64(remoteRefs) / float64(refs)
			}
			t.res.PerEpoch = append(t.res.PerEpoch, es)
			t.res.Epochs = epoch
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		if cfg.CheckpointEvery > 0 && epoch%cfg.CheckpointEvery == 0 {
			if err := t.checkpointEpochPart(c, store, epoch); err != nil {
				return err
			}
		}

		plateau.Observe(valAcc)
		if valAcc > best+1e-12 {
			best = valAcc
			sinceBest = 0
		} else {
			sinceBest++
		}
		if sinceBest >= cfg.StopPatience {
			break
		}
		if cfg.MaxVirtualHours > 0 && t.cluster.MaxTime() > cfg.MaxVirtualHours*3600 {
			break
		}
	}

	// Publish the trained model: the stop decisions above are identical on
	// every rank, so all ranks reach this gather together.
	merged, err := t.partMergedParams(c, store)
	if err != nil {
		return err
	}
	if rank == t.statsRank && merged != nil {
		t.partFinal = merged
	}
	return nil
}

// partTrainExample is trainExample over exchanged rows: scores and
// gradients go through the shard/cache views, and gradient rows accumulate
// into the single unified-id SparseGrad. cands holds the example's
// NegSamples pre-drawn corruptions.
func (t *trainRun) partTrainExample(x *partExchanger, pos kg.Triple, cands []kg.Triple, uidG *grad.SparseGrad) (flops, lossSum float64, lossN int) {
	cfg := t.cfg
	m := t.m
	plan := t.plan
	score := func(tr kg.Triple) float32 {
		return m.ScoreRows(x.row(tr.H), x.row(plan.RelationUID(tr.R)), x.row(tr.T))
	}
	accumulate := func(tr kg.Triple, coef float32) {
		m.AccumulateScoreGradRows(
			x.row(tr.H), x.row(plan.RelationUID(tr.R)), x.row(tr.T), coef,
			uidG.Row(tr.H), uidG.Row(plan.RelationUID(tr.R)), uidG.Row(tr.T))
	}

	negs := cands
	if cfg.NegSelect && len(cands) > 1 {
		// §4.5 hardest-candidate selection, over the pulled rows.
		bestI := 0
		bestS := score(cands[0])
		flops += m.ScoreFlops()
		for i := 1; i < len(cands); i++ {
			if s := score(cands[i]); s > bestS {
				bestS, bestI = s, i
			}
			flops += m.ScoreFlops()
		}
		negs = cands[bestI : bestI+1]
	}

	if cfg.LossName == "margin" {
		sPos := score(pos)
		flops += m.ScoreFlops()
		for _, neg := range negs {
			sNeg := score(neg)
			flops += m.ScoreFlops()
			if hinge := float32(cfg.Margin) - sPos + sNeg; hinge > 0 {
				lossSum += float64(hinge)
				accumulate(pos, -1)
				accumulate(neg, 1)
				flops += 2 * m.GradFlops()
			}
			lossN++
		}
		return flops, lossSum, lossN
	}

	sPos := score(pos)
	accumulate(pos, model.LogisticLossGrad(sPos, 1))
	flops += m.ScoreFlops() + m.GradFlops()
	lossSum += float64(model.LogisticLoss(sPos, 1))
	lossN++
	for _, neg := range negs {
		sNeg := score(neg)
		accumulate(neg, model.LogisticLossGrad(sNeg, -1))
		flops += m.ScoreFlops() + m.GradFlops()
		lossSum += float64(model.LogisticLoss(sNeg, -1))
		lossN++
	}
	return flops, lossSum, lossN
}

// applyOwnedGrads is applyGrads against the shard store: aggregated rows
// arrive keyed by unified id and are applied to the owned storage through
// the local index (which also keys the optimizer state).
func (t *trainRun) applyOwnedGrads(o opt.Optimizer, s *shardStore, agg *grad.SparseGrad, lr float32) float64 {
	if agg.Len() == 0 {
		return 0
	}
	o.BeginStep()
	decay := 1 - 2*float32(t.cfg.L2)*lr
	clip := float32(t.cfg.ClipNorm)
	agg.ForEach(func(uid int32, row []float32) {
		if clip > 0 {
			if n := tensor.Nrm2(row); n > clip {
				tensor.Scale(clip/n, row)
			}
		}
		li := s.local[uid]
		pr := s.rows.Row(int(li))
		o.ApplyRow(li, pr, row, lr)
		if t.cfg.L2 > 0 {
			tensor.Scale(decay, pr)
		}
	})
	return float64(agg.Len()*t.width) * 12
}

// partValAccuracy is localValAccuracy over exchanged rows: corruptions are
// pre-drawn so one pull covers the shard's validation triples and their
// negatives. Every rank calls the pull even with an empty shard — it is a
// collective.
func (t *trainRun) partValAccuracy(x *partExchanger, rank int, rng *xrand.RNG, valNegs *[]kg.Triple) (correct, total int, err error) {
	shard := t.valShards[rank]
	n := len(shard)
	if t.perRankValCap > 0 && n > t.perRankValCap {
		n = t.perRankValCap
	}
	sampler := model.NewNegSampler(t.d.NumEntities, rng)
	x.begin()
	negs := (*valNegs)[:0]
	for i := 0; i < n; i++ {
		tr := shard[i]
		neg := sampler.Corrupt(tr)
		negs = append(negs, neg)
		x.need(tr)
		x.need(neg)
	}
	*valNegs = negs
	if _, err := x.pull(); err != nil {
		return 0, 0, err
	}
	plan := t.plan
	for i := 0; i < n; i++ {
		tr := shard[i]
		neg := negs[i]
		sp := t.m.ScoreRows(x.row(tr.H), x.row(plan.RelationUID(tr.R)), x.row(tr.T))
		sn := t.m.ScoreRows(x.row(neg.H), x.row(plan.RelationUID(neg.R)), x.row(neg.T))
		if sp > sn {
			correct++
		}
		total++
	}
	return correct, total, nil
}

// partMergedParams is the gather half of the shard-aware checkpoint: every
// rank contributes its owned rows through one sparse-row all-gather (each
// row has exactly one owner, so coverage is exact, not averaged), and the
// stats rank assembles the full model. Other ranks return nil — in a
// channel world only rank 0 needs the assembly; in a process world every
// process is its own stats rank and keeps its own copy.
func (t *trainRun) partMergedParams(c *mpi.Comm, s *shardStore) (*model.Params, error) {
	// Fresh copies: the all-gather contract takes ownership of the payload,
	// and s.uids / s.rows.Data stay live in the store.
	idx := append([]int32(nil), s.uids...)
	vals := append([]float32(nil), s.rows.Data...)
	allIdx, allVals, _, err := c.AllGatherRows(idx, vals, tagCheckpoint)
	if err != nil {
		return nil, err
	}
	if c.Rank() != t.statsRank {
		return nil, nil
	}
	merged := model.NewParams(t.m, t.d.NumEntities, t.d.NumRelations)
	w := t.width
	for src := range allIdx {
		for k, uid := range allIdx[src] {
			copy(snapshotRow(merged, t.plan, uid), allVals[src][k*w:(k+1)*w])
		}
	}
	return merged, nil
}

// checkpointEpochPart takes the partitioned snapshot. Unlike the replicated
// paths (shared-memory merge in the channel world, collective merge in the
// process world — different virtual costs), this one protocol runs in both
// worlds: collective gather, stats-rank snapshot bookkeeping, rank-0 disk
// write, and a max-reduced verdict so every rank stops together on a write
// failure. The storage-write charge lands once per cluster — the stats rank
// is rank 0 on the shared channel cluster and every process on its own
// private cluster.
func (t *trainRun) checkpointEpochPart(c *mpi.Comm, s *shardStore, epoch int) error {
	merged, err := t.partMergedParams(c, s)
	if err != nil {
		return err
	}
	if c.Rank() == t.statsRank {
		t.snap.epoch = epoch
		t.snap.params = merged
		t.rec.Checkpoints++
		bytes := int64(4 * t.width * t.plan.Rows())
		cost, _, _ := t.cluster.PointToPointCost(bytes)
		t.cluster.Collective(cost, bytes, int64(c.Size()), tagCheckpoint)
	}
	var flag float64
	if c.Rank() == 0 {
		t.ckptErr = nil
		if t.cfg.CheckpointPath != "" {
			t.ckptErr = model.SaveCheckpoint(t.cfg.CheckpointPath, t.m, merged)
		}
		if t.ckptErr != nil {
			flag = 1
		}
	}
	verdict, err := c.AllReduceScalar(flag, mpi.OpMax)
	if err != nil {
		return err
	}
	if verdict == 0 {
		return nil
	}
	if c.Rank() == 0 {
		return fmt.Errorf("core: checkpoint at epoch %d: %w", epoch, t.ckptErr)
	}
	return fmt.Errorf("core: checkpoint at epoch %d failed on rank 0", epoch)
}
