package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %g, want 106", s.Sum)
	}
	if math.Abs(s.Mean()-106.0/5) > 1e-9 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(SizeBuckets(16)...) // 1 2 4 8 16
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-1) > 1e-9 {
		t.Fatalf("p50 = %g, want 1", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-16) > 1e-9 {
		t.Fatalf("p99 = %g, want 16", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001 * float64(w+1))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += 0.001 * float64(w+1) * per
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramWriteTo(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var b strings.Builder
	h.Snapshot().WriteTo(&b, "test_latency")
	out := b.String()
	for _, want := range []string{
		`test_latency_bucket{le="1"} 1`,
		`test_latency_bucket{le="2"} 2`,
		`test_latency_bucket{le="+Inf"} 3`,
		"test_latency_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {2, 1},
		"dupes":    {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s bounds did not panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}
