package metrics

// Runtime instrumentation for long-lived services (kgeserve): lock-free
// counters and fixed-bucket histograms safe for concurrent Observe from
// request handlers, with cheap snapshots for a /metrics endpoint. The
// rendering half of this package formats offline experiment reports; these
// types are its online counterpart and deliberately have no dependencies
// beyond sync/atomic.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds; values above the last bound land in an implicit +Inf
// overflow bucket. Observe is wait-free (one atomic add per call plus a CAS
// loop for the running sum), so it can sit on a request hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	sumBits atomic.Uint64  // float64 bits of the running sum
	count   atomic.Int64
}

// NewHistogram returns a histogram over the given strictly ascending upper
// bounds. It panics on an empty or unsorted bound list — a histogram with
// no buckets measures nothing.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: NewHistogram bounds not strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// LatencyBuckets returns upper bounds in seconds spanning 100µs..10s on a
// roughly logarithmic grid — the range HTTP inference latencies live in.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets returns power-of-two upper bounds 1..maxPow2 for counting
// discrete sizes (batch occupancy, result lengths).
func SizeBuckets(maxPow2 int) []float64 {
	var out []float64
	for b := 1; b <= maxPow2; b *= 2 {
		out = append(out, float64(b))
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering: bucket counts are loaded individually, so a snapshot taken
// mid-Observe may be off by the in-flight observation — fine for metrics.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is overflow (+Inf)
	Count  int64
	Sum    float64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// bucket boundary below which at least q of the observations fall. Overflow
// observations report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteTo renders the snapshot in the Prometheus text exposition style:
// cumulative `_bucket{le=...}` lines, then `_sum` and `_count`.
func (s HistogramSnapshot) WriteTo(w io.Writer, name string) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
