package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "long-header"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("yyyy", 2)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "## T") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: the second column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "long-header")
	if idx < 0 {
		t.Fatalf("header missing: %s", lines[1])
	}
	if !strings.HasPrefix(lines[4][idx:], "2") {
		t.Fatalf("misaligned row: %q", lines[4])
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(`va"l`, "x,y")
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"x,y"`) {
		t.Fatalf("CSV quoting wrong: %s", out)
	}
}

func TestAddRowFormats(t *testing.T) {
	tb := &Table{Headers: []string{"v"}}
	tb.AddRow(float32(1.25))
	tb.AddRow(42)
	tb.AddRow("s")
	if tb.Rows[0][0] != "1.25" || tb.Rows[1][0] != "42" || tb.Rows[2][0] != "s" {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestFigureRenderUnionX(t *testing.T) {
	f := &Figure{
		Title: "F", XLabel: "nodes", YLabel: "tt",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 4}, Y: []float64{5, 9}},
		},
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"nodes", "a", "b", "10", "20", "5", "9", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// x=1 row must leave series b blank; x=4 leaves a blank (no crash).
	if !strings.Contains(out, "## F") {
		t.Fatal("missing figure title")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "table1", Title: "Baseline", Notes: []string{"n1"}}
	tb := &Table{Headers: []string{"x"}}
	tb.AddRow(1)
	r.Tables = append(r.Tables, tb)
	r.Figures = append(r.Figures, &Figure{Title: "f", XLabel: "x", YLabel: "y"})
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"# table1 — Baseline", "note: n1", "## f"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// Property: table render never panics and keeps one line per row for
// arbitrary cell content (including quotes, commas, unicode).
func TestQuickTableRenderRobust(t *testing.T) {
	f := func(cells [][3]string) bool {
		tb := &Table{Headers: []string{"a", "b", "c"}}
		for _, row := range cells {
			tb.AddRow(row[0], row[1], row[2])
		}
		var sb strings.Builder
		tb.Render(&sb)
		var csv strings.Builder
		tb.RenderCSV(&csv)
		// CSV has header + one line per row (rows with embedded newlines
		// are quoted, so raw '\n' inside cells stays inside quotes).
		return strings.Count(csv.String(), "\n") >= len(cells)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
