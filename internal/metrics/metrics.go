// Package metrics renders experiment outputs: aligned text tables matching
// the paper's table layout, and numeric series standing in for its figures.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(v), 'g', 4, 64)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) {
	write := func(cells []string) {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			quoted[i] = c
		}
		fmt.Fprintln(w, strings.Join(quoted, ","))
	}
	write(t.Headers)
	for _, row := range t.Rows {
		write(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of curves over a shared x axis meaning, standing in for
// one panel of a paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the figure as one aligned column block per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s  (x = %s, y = %s)\n", f.Title, f.XLabel, f.YLabel)
	t := Table{Headers: []string{f.XLabel}}
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]int{}
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Name)
		for _, x := range s.X {
			if _, ok := seen[x]; !ok {
				seen[x] = len(xs)
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trim(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x { //kgelint:ignore floateq matches x values copied verbatim from the series
					cell = trim(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Render(w)
}

func trim(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

// Report bundles the artifacts one experiment produces.
type Report struct {
	ID      string
	Title   string
	Notes   []string
	Tables  []*Table
	Figures []*Figure
}

// Render writes the full report as text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		t.Render(w)
	}
	for _, f := range r.Figures {
		fmt.Fprintln(w)
		f.Render(w)
	}
}
