// Package bucket implements PyTorch-BigGraph-style entity-bucket training —
// the related-work system the paper positions itself against (§2: "PyTorch
// Big Graph tried to split the graph into buckets and train the
// non-overlapping parts simultaneously without involving any communication
// between them. But, with their proposed techniques, the communication of
// entity embedding is reduced but not eliminated.").
//
// Entities are hashed into 2P buckets; each training round pairs the
// buckets into P disjoint pairs (a 1-factorization of the complete graph,
// i.e. the classic round-robin tournament schedule), and each worker trains
// the triples whose head and tail fall inside its pair with exclusive
// access — entity gradients need no communication during a round. Between
// rounds buckets migrate to their next worker, which is where PBG pays its
// entity-embedding communication; relation embeddings are replicated and
// all-reduced once per round. One epoch = 2P-1 rounds = every bucket pair
// trained exactly once.
//
// The bucketvsrp experiment contrasts this entity-partition communication
// pattern with the paper's relation partition.
package bucket

import (
	"fmt"

	"kgedist/internal/eval"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/mpi"
	"kgedist/internal/opt"
	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

// Config assembles a bucket-training run.
type Config struct {
	// ModelName and Dim select the KGE model.
	ModelName string
	Dim       int
	// LR is the SGD step size (PBG-style local updates use plain SGD; the
	// per-entity optimizer state would otherwise have to migrate with the
	// buckets).
	LR float64
	// Epochs is the number of full passes (each = 2P-1 rounds).
	Epochs int
	// NegSamples per positive. Negatives are drawn inside the worker's
	// current bucket pair, as PBG does.
	NegSamples int
	// TestSample subsamples the final ranking evaluation.
	TestSample int
	Seed       uint64
}

// DefaultConfig returns a small-footprint configuration.
func DefaultConfig() Config {
	return Config{
		ModelName:  "complex",
		Dim:        16,
		LR:         0.05,
		Epochs:     15,
		NegSamples: 2,
		TestSample: 150,
		Seed:       1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.LR <= 0 || c.Epochs <= 0 || c.NegSamples < 1 {
		return fmt.Errorf("bucket: invalid config %+v", c)
	}
	return nil
}

// Result summarizes a bucket-training run.
type Result struct {
	Workers    int
	Buckets    int
	Epochs     int
	TotalHours float64
	// EntityCommBytes is the volume of bucket migrations — the entity
	// communication PBG reduces but cannot eliminate.
	EntityCommBytes int64
	// RelationCommBytes is the per-round relation all-reduce volume.
	RelationCommBytes int64
	TCA               float64
	MRR               float64
}

// pairOf returns the tournament pairing for the given round: with 2P teams,
// team 2P-1 is fixed and the others rotate. Returns P pairs covering all
// buckets disjointly.
func roundPairs(p, round int) [][2]int {
	n := 2 * p // buckets
	pairs := make([][2]int, 0, p)
	// Standard circle method: positions 0..n-2 rotate, n-1 fixed.
	// Pair k of round r: (a, b) with a = (r + k) mod (n-1), b = (r - k + n-1) mod (n-1),
	// except k = 0 pairs (r mod n-1) with the fixed bucket n-1.
	pairs = append(pairs, [2]int{round % (n - 1), n - 1})
	for k := 1; k < p; k++ {
		a := (round + k) % (n - 1)
		b := (round - k + (n - 1)) % (n - 1)
		pairs = append(pairs, [2]int{a, b})
	}
	return pairs
}

// Train runs bucketed training on workers simulated nodes.
func Train(cfg Config, d *kg.Dataset, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("bucket: need at least one worker, got %d", workers)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Train) == 0 {
		return nil, fmt.Errorf("bucket: empty training split")
	}

	m := model.New(cfg.ModelName, cfg.Dim)
	w := m.Width()
	nBuckets := 2 * workers
	bucketOf := func(e int32) int { return int(e) % nBuckets }

	// Group triples by unordered bucket pair key.
	pairKey := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		return a*nBuckets + b
	}
	byPair := map[int][]kg.Triple{}
	for _, t := range d.Train {
		byPair[pairKey(bucketOf(t.H), bucketOf(t.T))] = append(byPair[pairKey(bucketOf(t.H), bucketOf(t.T))], t)
	}
	// Same-bucket triples (i,i) attach to the first round in which bucket
	// i appears; roundPairs covers every bucket every round, so fold them
	// into the pair that contains i in round 0 deterministically: we simply
	// merge (i,i) triples into the unordered pair (i, partner) of round 0.
	for i := 0; i < nBuckets; i++ {
		self := pairKey(i, i)
		if len(byPair[self]) == 0 {
			continue
		}
		for _, pr := range roundPairs(workers, 0) {
			if pr[0] == i || pr[1] == i {
				dst := pairKey(pr[0], pr[1])
				if dst != self {
					byPair[dst] = append(byPair[dst], byPair[self]...)
					delete(byPair, self)
				}
				break
			}
		}
	}

	// Members per bucket, for migration-volume accounting.
	bucketSize := make([]int, nBuckets)
	for e := 0; e < d.NumEntities; e++ {
		bucketSize[bucketOf(int32(e))]++
	}

	cluster := simnet.NewCluster(workers, simnet.XC40Params())
	world := mpi.NewWorld(cluster)

	// Shared parameter store: the schedule guarantees exclusive bucket
	// access per round, so entity rows are never written concurrently.
	params := model.NewParams(m, d.NumEntities, d.NumRelations)
	params.Init(m, xrand.New(cfg.Seed).Split(0))

	rounds := 2*workers - 1
	// holder[b] tracks which worker held bucket b in the previous round,
	// to charge migration bytes. -1 = not yet placed.
	holder := make([]int, nBuckets)
	for i := range holder {
		holder[i] = -1
	}
	var entityBytes int64

	runErr := world.RunErr(func(c *mpi.Comm) error {
		rank := c.Rank()
		relOpt := opt.NewSGD()
		lr := float32(cfg.LR)
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for round := 0; round < rounds; round++ {
				pairs := roundPairs(workers, round)
				pr := pairs[rank]
				// Bucket migration accounting (rank 0 updates shared state
				// between barriers).
				if err := c.Barrier(); err != nil {
					return err
				}
				if rank == 0 {
					for wID, q := range pairs {
						for _, b := range q {
							if holder[b] != -1 && holder[b] != wID {
								entityBytes += int64(bucketSize[b] * w * 4)
							}
							holder[b] = wID
						}
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				// Charge the migration cost for this rank's two buckets.
				moveBytes := int64((bucketSize[pr[0]] + bucketSize[pr[1]]) * w * 4)
				mvCost, _, _ := c.Cluster().PointToPointCost(moveBytes)
				c.Cluster().AddSeconds(rank, mvCost)

				// Train the pair's triples with exclusive entity access.
				triples := byPair[pairKey(pr[0], pr[1])]
				rng := xrand.New(cfg.Seed).Split(uint64(1 + epoch*1000 + round*10 + rank))
				relG := grad.NewSparseGrad(w)
				gh := make([]float32, w)
				gt := make([]float32, w)
				var flops float64
				cands := collectPairEntities(d.NumEntities, nBuckets, pr)
				for _, pos := range triples {
					flops += sgdStep(m, params, pos, 1, lr, gh, gt, relG)
					for k := 0; k < cfg.NegSamples; k++ {
						neg := corruptWithin(pos, cands, rng)
						flops += sgdStep(m, params, neg, -1, lr, gh, gt, relG)
					}
				}
				cluster.AddCompute(rank, flops)

				// Relation gradients are replicated: all-reduce per round
				// (PBG keeps them on a shared server; the volume is what
				// matters, and it is NOT eliminated — the paper's point).
				// Parameters are one shared store here, so only rank 0
				// applies the aggregated update, fenced by barriers.
				relDense := make([]float32, d.NumRelations*w)
				relG.ScatterDense(relDense)
				if _, err := c.AllReduceSum(relDense, "relation"); err != nil {
					return err
				}
				if rank == 0 {
					agg := grad.NewSparseGrad(w)
					agg.AccumulateDense(relDense)
					inv := 1 / float32(workers)
					relOpt.BeginStep()
					agg.ForEach(func(id int32, row []float32) {
						for i := range row {
							row[i] *= inv
						}
						relOpt.ApplyRow(id, params.Relation.Row(int(id)), row, lr)
					})
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	filter := kg.NewFilterIndex(d)
	evalRng := xrand.New(cfg.Seed + 99)
	lp := eval.LinkPrediction(m, params, d, filter, cfg.TestSample, evalRng)
	tc := eval.TripleClassification(m, params, d, filter, evalRng)
	return &Result{
		Workers:           workers,
		Buckets:           nBuckets,
		Epochs:            cfg.Epochs,
		TotalHours:        cluster.MaxTime() / 3600,
		EntityCommBytes:   entityBytes,
		RelationCommBytes: cluster.BytesByTag()["relation"],
		TCA:               tc.Accuracy,
		MRR:               lp.FilteredMRR,
	}, nil
}

// collectPairEntities lists the entities inside the two buckets — the
// candidate pool for PBG-style in-pair negative sampling.
func collectPairEntities(numEntities, nBuckets int, pr [2]int) []int32 {
	var out []int32
	for e := 0; e < numEntities; e++ {
		b := e % nBuckets
		if b == pr[0] || b == pr[1] {
			out = append(out, int32(e))
		}
	}
	return out
}

// corruptWithin corrupts head or tail with an entity from the pair's pool.
func corruptWithin(pos kg.Triple, cands []int32, rng *xrand.RNG) kg.Triple {
	neg := pos
	for tries := 0; tries < 20; tries++ {
		e := cands[rng.Intn(len(cands))]
		if rng.Bernoulli(0.5) {
			if e != pos.H {
				neg.H = e
				return neg
			}
		} else if e != pos.T {
			neg.T = e
			return neg
		}
	}
	return neg
}

// sgdStep applies one local SGD update; relation gradients are deferred to
// the round's all-reduce via relG, entity rows update in place (exclusive).
func sgdStep(m model.Model, p *model.Params, tr kg.Triple, y float32, lr float32, gh, gt []float32, relG *grad.SparseGrad) float64 {
	for i := range gh {
		gh[i], gt[i] = 0, 0
	}
	score := m.Score(p, tr)
	coef := model.LogisticLossGrad(score, y)
	m.AccumulateScoreGrad(p, tr, coef, gh, relG.Row(tr.R), gt)
	h := p.Entity.Row(int(tr.H))
	t := p.Entity.Row(int(tr.T))
	for i := range gh {
		h[i] -= lr * gh[i]
		t[i] -= lr * gt[i]
	}
	return m.ScoreFlops() + m.GradFlops()
}
