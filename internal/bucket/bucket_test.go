package bucket

import (
	"testing"

	"kgedist/internal/kg"
)

func bDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "bucket-test", Entities: 400, Relations: 30, Triples: 6000,
		Communities: 8, Seed: 42,
	})
}

func TestRoundPairsDisjointAndComplete(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		n := 2 * p
		seen := map[[2]int]int{}
		for round := 0; round < n-1; round++ {
			pairs := roundPairs(p, round)
			if len(pairs) != p {
				t.Fatalf("p=%d round %d: %d pairs", p, round, len(pairs))
			}
			used := map[int]bool{}
			for _, pr := range pairs {
				for _, b := range pr {
					if b < 0 || b >= n {
						t.Fatalf("p=%d round %d: bucket %d out of range", p, round, b)
					}
					if used[b] {
						t.Fatalf("p=%d round %d: bucket %d used twice", p, round, b)
					}
					used[b] = true
				}
				a, c := pr[0], pr[1]
				if a > c {
					a, c = c, a
				}
				seen[[2]int{a, c}]++
			}
			if len(used) != n {
				t.Fatalf("p=%d round %d: only %d buckets used", p, round, len(used))
			}
		}
		// All (2p choose 2) unordered pairs covered exactly once.
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("p=%d: covered %d distinct pairs, want %d", p, len(seen), want)
		}
		for pr, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("p=%d: pair %v trained %d times", p, pr, cnt)
			}
		}
	}
}

func TestValidateAndBadInputs(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := Train(DefaultConfig(), bDataset(), 0); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := Train(DefaultConfig(), &kg.Dataset{NumEntities: 3, NumRelations: 1}, 2); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBucketTrainingLearns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 20
	cfg.TestSample = 60
	res, err := Train(cfg, bDataset(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 || res.Buckets != 4 {
		t.Fatalf("shape %+v", res)
	}
	if res.TCA < 65 {
		t.Fatalf("bucket training TCA = %v, expected learning", res.TCA)
	}
	if res.TotalHours <= 0 {
		t.Fatal("no virtual time")
	}
}

func TestEntityCommNotEliminated(t *testing.T) {
	// The paper's §2 point about PBG: entity communication is reduced but
	// NOT eliminated (buckets migrate), and relation communication remains.
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 3
	cfg.TestSample = 20
	res, err := Train(cfg, bDataset(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntityCommBytes == 0 {
		t.Fatal("bucket migrations recorded no entity bytes")
	}
	if res.RelationCommBytes == 0 {
		t.Fatal("relation all-reduce recorded no bytes")
	}
}

func TestSingleWorkerNoEntityComm(t *testing.T) {
	// One worker holds both buckets every round: nothing migrates between
	// workers.
	cfg := DefaultConfig()
	cfg.Dim = 4
	cfg.Epochs = 2
	cfg.TestSample = 10
	res, err := Train(cfg, bDataset(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntityCommBytes != 0 {
		t.Fatalf("single worker migrated %d entity bytes", res.EntityCommBytes)
	}
}
