// Package svgplot renders metrics.Figure line charts as standalone SVG
// documents using only the standard library — the graphical counterpart of
// the paper's figures for the kgebench -svg flag.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"kgedist/internal/metrics"
)

// Chart geometry.
const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 150 // room for the legend
	marginT = 40
	marginB = 50
)

// palette cycles across series.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

// Render writes the figure as an SVG document.
func Render(f *metrics.Figure, w io.Writer) error {
	xMin, xMax, yMin, yMax, ok := bounds(f)
	if !ok {
		return fmt.Errorf("svgplot: figure %q has no data points", f.Title)
	}
	// Pad the y range so flat lines stay visible.
	if yMax == yMin { //kgelint:ignore floateq degenerate-range guard wants exact equality
		yMax++
		if yMin > 0 {
			yMin--
		}
	}
	if xMax == xMin { //kgelint:ignore floateq degenerate-range guard wants exact equality
		xMax++
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	sx := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	sy := func(y float64) float64 { return float64(height-marginB) - (y-yMin)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, escape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	// Ticks and grid: 5 intervals each way.
	for i := 0; i <= 5; i++ {
		xv := xMin + (xMax-xMin)*float64(i)/5
		yv := yMin + (yMax-yMin)*float64(i)/5
		xp := sx(xv)
		yp := sy(yv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			xp, marginT, xp, height-marginB)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yp, width-marginR, yp)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xp, height-marginB+18, formatTick(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, yp+4, formatTick(yv))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-10, escape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), escape(f.YLabel))

	// Series.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		}
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+8, ly, width-marginR+28, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR+32, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds returns the data extent across all series.
func bounds(f *metrics.Figure) (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
			ok = true
		}
	}
	return
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000 || (a < 0.01 && a != 0):
		return fmt.Sprintf("%.2g", v)
	case a >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
