package svgplot

import (
	"strings"
	"testing"

	"kgedist/internal/metrics"
)

func sampleFigure() *metrics.Figure {
	return &metrics.Figure{
		Title: "tt vs nodes", XLabel: "nodes", YLabel: "seconds",
		Series: []metrics.Series{
			{Name: "allreduce", X: []float64{1, 2, 4, 8}, Y: []float64{4, 2.5, 1.5, 1}},
			{Name: "allgather", X: []float64{1, 2, 4, 8}, Y: []float64{4, 3, 3, 3.2}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	if err := Render(sampleFigure(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "tt vs nodes", "nodes", "seconds",
		"allreduce", "allgather", "polyline", "circle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if strings.Count(out, "<circle") != 8 {
		t.Fatalf("want 8 data points, got %d", strings.Count(out, "<circle"))
	}
}

func TestRenderScalesWithinViewport(t *testing.T) {
	var sb strings.Builder
	if err := Render(sampleFigure(), &sb); err != nil {
		t.Fatal(err)
	}
	// Extremes: x=1 maps to the left edge (marginL), x=8 to the right
	// (width - marginR); y=4 to the top (marginT), y=1 to the bottom.
	out := sb.String()
	if !strings.Contains(out, `cx="70.0"`) {
		t.Fatalf("leftmost point not at left margin:\n%s", out)
	}
	if !strings.Contains(out, `cx="490.0"`) {
		t.Fatal("rightmost point not at right edge of plot area")
	}
	if !strings.Contains(out, `cy="40.0"`) {
		t.Fatal("max y not at top margin")
	}
	if !strings.Contains(out, `cy="350.0"`) {
		t.Fatal("min y not at bottom of plot area")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	f := &metrics.Figure{
		Title: "flat", XLabel: "x", YLabel: "y",
		Series: []metrics.Series{{Name: "s", X: []float64{1, 2}, Y: []float64{5, 5}}},
	}
	var sb strings.Builder
	if err := Render(f, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "polyline") {
		t.Fatal("flat series not rendered")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	f := &metrics.Figure{
		Title: "pt", XLabel: "x", YLabel: "y",
		Series: []metrics.Series{{Name: "s", X: []float64{3}, Y: []float64{7}}},
	}
	var sb strings.Builder
	if err := Render(f, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "polyline") {
		t.Fatal("single point should not draw a line")
	}
	if !strings.Contains(out, "circle") {
		t.Fatal("single point missing marker")
	}
}

func TestRenderEmptyFigureErrors(t *testing.T) {
	f := &metrics.Figure{Title: "empty"}
	var sb strings.Builder
	if err := Render(f, &sb); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestEscape(t *testing.T) {
	f := sampleFigure()
	f.Title = "a < b & c > d"
	var sb strings.Builder
	if err := Render(f, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c &gt; d") {
		t.Fatal("title not escaped")
	}
	if strings.Contains(sb.String(), "a < b") {
		t.Fatal("raw markup leaked")
	}
}
