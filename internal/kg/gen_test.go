package kg

import (
	"path/filepath"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	t.Parallel()
	cfg := GenConfig{Name: "t", Entities: 800, Relations: 50, Triples: 10000, Seed: 7}
	d := Generate(cfg)
	if d.Name != "t" || d.NumEntities != 800 || d.NumRelations != 50 {
		t.Fatalf("metadata wrong: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Size() < 9000 {
		t.Fatalf("too many dropped duplicates: size %d", d.Size())
	}
	if len(d.Valid) == 0 || len(d.Test) == 0 {
		t.Fatal("empty validation or test split")
	}
	if len(d.Train) <= len(d.Valid)+len(d.Test) {
		t.Fatal("train split not dominant")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a := Generate(GenConfig{Entities: 200, Relations: 10, Triples: 1000, Seed: 5})
	b := Generate(GenConfig{Entities: 200, Relations: 10, Triples: 1000, Seed: 5})
	if len(a.Train) != len(b.Train) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatalf("non-deterministic triple %d", i)
		}
	}
	c := Generate(GenConfig{Entities: 200, Relations: 10, Triples: 1000, Seed: 6})
	diff := 0
	for i := range a.Train {
		if i < len(c.Train) && a.Train[i] != c.Train[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical data")
	}
}

func TestGenerateNoDuplicatesNoSelfLoops(t *testing.T) {
	t.Parallel()
	d := Generate(GenConfig{Entities: 300, Relations: 20, Triples: 5000, Seed: 3})
	seen := map[Triple]bool{}
	for _, split := range [][]Triple{d.Train, d.Valid, d.Test} {
		for _, tr := range split {
			if tr.H == tr.T {
				t.Fatalf("self loop %+v", tr)
			}
			if seen[tr] {
				t.Fatalf("duplicate %+v", tr)
			}
			seen[tr] = true
		}
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	t.Parallel()
	d := Generate(GenConfig{Entities: 1000, Relations: 100, Triples: 20000, Seed: 9})
	h := d.RelationHistogram()
	// The most frequent relation should dominate the median one decisively.
	max, nonZero := 0, 0
	for _, c := range h {
		if c > max {
			max = c
		}
		if c > 0 {
			nonZero++
		}
	}
	if nonZero < 50 {
		t.Fatalf("only %d relations used", nonZero)
	}
	if float64(max) < 5*float64(len(d.Train))/float64(nonZero) {
		t.Fatalf("relation histogram too flat: max %d over %d relations", max, nonZero)
	}
}

func TestGenerateCommunityStructure(t *testing.T) {
	t.Parallel()
	// With low noise, heads of a given relation should concentrate in one
	// community (entities congruent mod Communities).
	cfg := GenConfig{Entities: 600, Relations: 30, Triples: 10000,
		Communities: 6, NoiseFrac: 0.01, Seed: 11}
	d := Generate(cfg)
	byRel := map[int32]map[int]int{}
	for _, tr := range d.Train {
		if byRel[tr.R] == nil {
			byRel[tr.R] = map[int]int{}
		}
		byRel[tr.R][int(tr.H)%6]++
	}
	checked := 0
	for _, comms := range byRel {
		total, max := 0, 0
		for _, c := range comms {
			total += c
			if c > max {
				max = c
			}
		}
		if total < 100 {
			continue
		}
		checked++
		if float64(max)/float64(total) < 0.9 {
			t.Fatalf("relation heads not concentrated: %v", comms)
		}
	}
	if checked == 0 {
		t.Fatal("no relation had enough triples to check")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(GenConfig{Entities: 1, Relations: 1, Triples: 10})
}

func TestPresets(t *testing.T) {
	t.Parallel()
	for _, cfg := range []GenConfig{FB15KMini(1), FB250KMini(1)} {
		if cfg.Entities == 0 || cfg.Relations == 0 || cfg.Triples == 0 {
			t.Fatalf("preset %q incomplete", cfg.Name)
		}
	}
	if FB15KFull(1).Entities != 14951 || FB15KFull(1).Relations != 1345 {
		t.Fatal("FB15KFull dimensions drifted from the paper")
	}
	if FB250KFull(1).Entities != 240000 || FB250KFull(1).Relations != 9280 {
		t.Fatal("FB250KFull dimensions drifted from the paper")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "ds")
	d := Generate(GenConfig{Name: "rt", Entities: 150, Relations: 12, Triples: 900, Seed: 4})
	if err := SaveDir(d, dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got.NumEntities != d.NumEntities || got.NumRelations != d.NumRelations {
		t.Fatalf("counts differ: %+v", got)
	}
	if len(got.Train) != len(d.Train) || len(got.Valid) != len(d.Valid) || len(got.Test) != len(d.Test) {
		t.Fatal("split sizes differ")
	}
	for i := range d.Train {
		if got.Train[i] != d.Train[i] {
			t.Fatalf("train triple %d differs", i)
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	t.Parallel()
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing dir")
	}
}

func TestScaled(t *testing.T) {
	t.Parallel()
	base := FB15KMini(1)
	up := base.Scaled(2)
	if up.Entities != 2*base.Entities || up.Relations != 2*base.Relations || up.Triples != 2*base.Triples {
		t.Fatalf("Scaled(2) = %+v", up)
	}
	if up.Communities != base.Communities {
		t.Fatalf("Scaled changed the community count: %d -> %d", base.Communities, up.Communities)
	}
	if up.Name != "fb15k-mini-x2" {
		t.Fatalf("Scaled name = %q", up.Name)
	}
	if same := base.Scaled(1); same != base {
		t.Fatalf("Scaled(1) changed the config: %+v", same)
	}
	// Down-scaling clamps every size knob at 1 and still generates.
	tiny := GenConfig{Name: "t", Entities: 40, Relations: 2, Triples: 200, Seed: 3}.Scaled(0.1)
	if tiny.Entities != 4 || tiny.Relations != 1 || tiny.Triples != 20 {
		t.Fatalf("Scaled(0.1) = %+v", tiny)
	}
	d := Generate(tiny)
	if d.NumEntities != 4 || len(d.Train)+len(d.Valid)+len(d.Test) == 0 {
		t.Fatalf("tiny scaled dataset: %+v", d)
	}
	// The scaled graph keeps the planted structure: same community count,
	// proportionally larger clusters, so per-community degree stats track.
	big := Generate(base.Scaled(2))
	if big.NumEntities != 2*base.Entities {
		t.Fatalf("generated %d entities", big.NumEntities)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	base.Scaled(0)
}
