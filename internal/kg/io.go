package kg

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The on-disk layout follows the OpenKE benchmark convention used by the
// paper's datasets: a directory with train2id.txt, valid2id.txt and
// test2id.txt, each starting with a count line followed by one
// "head tail relation" id triple per line, plus entity2id.txt and
// relation2id.txt whose first lines carry the entity/relation counts.

// SaveDir writes the dataset to dir in OpenKE layout, creating dir if
// needed.
func SaveDir(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("kg: creating %s: %w", dir, err)
	}
	writeSplit := func(name string, ts []Triple) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "%d\n", len(ts))
		for _, t := range ts {
			fmt.Fprintf(w, "%d %d %d\n", t.H, t.T, t.R)
		}
		if err := w.Flush(); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	writeCount := func(name string, n int) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(fmt.Sprintf("%d\n", n)), 0o644)
	}
	if err := writeSplit("train2id.txt", d.Train); err != nil {
		return fmt.Errorf("kg: writing train split: %w", err)
	}
	if err := writeSplit("valid2id.txt", d.Valid); err != nil {
		return fmt.Errorf("kg: writing valid split: %w", err)
	}
	if err := writeSplit("test2id.txt", d.Test); err != nil {
		return fmt.Errorf("kg: writing test split: %w", err)
	}
	if err := writeCount("entity2id.txt", d.NumEntities); err != nil {
		return fmt.Errorf("kg: writing entity count: %w", err)
	}
	if err := writeCount("relation2id.txt", d.NumRelations); err != nil {
		return fmt.Errorf("kg: writing relation count: %w", err)
	}
	return nil
}

// LoadDir reads a dataset in OpenKE layout from dir.
func LoadDir(dir string) (*Dataset, error) {
	d := &Dataset{Name: filepath.Base(dir)}
	var err error
	if d.Train, err = loadSplit(filepath.Join(dir, "train2id.txt")); err != nil {
		return nil, err
	}
	if d.Valid, err = loadSplit(filepath.Join(dir, "valid2id.txt")); err != nil {
		return nil, err
	}
	if d.Test, err = loadSplit(filepath.Join(dir, "test2id.txt")); err != nil {
		return nil, err
	}
	if d.NumEntities, err = loadCount(filepath.Join(dir, "entity2id.txt")); err != nil {
		return nil, err
	}
	if d.NumRelations, err = loadCount(filepath.Join(dir, "relation2id.txt")); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func loadSplit(path string) ([]Triple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: opening split: %w", err)
	}
	defer f.Close() //kgelint:ignore droppederr read-only close
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("kg: %s: missing count line", path)
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("kg: %s: bad count line %q", path, sc.Text())
	}
	out := make([]Triple, 0, n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("kg: %s:%d: want 3 fields, got %q", path, line, text)
		}
		h, err1 := strconv.ParseInt(fields[0], 10, 32)
		t, err2 := strconv.ParseInt(fields[1], 10, 32)
		r, err3 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("kg: %s:%d: non-integer field in %q", path, line, text)
		}
		out = append(out, Triple{H: int32(h), T: int32(t), R: int32(r)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kg: reading %s: %w", path, err)
	}
	if len(out) != n {
		return nil, fmt.Errorf("kg: %s: count line says %d, found %d triples", path, n, len(out))
	}
	return out, nil
}

func loadCount(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("kg: opening count file: %w", err)
	}
	defer f.Close() //kgelint:ignore droppederr read-only close
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return 0, fmt.Errorf("kg: %s: empty", path)
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("kg: %s: bad count %q", path, sc.Text())
	}
	return n, nil
}
