package kg

import (
	"testing"
	"testing/quick"

	"kgedist/internal/xrand"
)

func smallDataset() *Dataset {
	return &Dataset{
		Name:         "toy",
		NumEntities:  11,
		NumRelations: 4,
		Train: []Triple{
			{H: 1, R: 1, T: 2}, {H: 2, R: 1, T: 10}, {H: 3, R: 2, T: 5},
			{H: 6, R: 3, T: 9}, {H: 7, R: 3, T: 8},
		},
		Valid: []Triple{{H: 1, R: 2, T: 3}},
		Test:  []Triple{{H: 4, R: 0, T: 5}},
	}
}

func TestDatasetSizeAndValidate(t *testing.T) {
	t.Parallel()
	d := smallDataset()
	if d.Size() != 7 {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d.Train = append(d.Train, Triple{H: 99, R: 0, T: 0})
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range entity")
	}
	d.Train = d.Train[:len(d.Train)-1]
	d.Test = append(d.Test, Triple{H: 0, R: 9, T: 0})
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range relation")
	}
}

func TestRelationHistogram(t *testing.T) {
	t.Parallel()
	d := smallDataset()
	h := d.RelationHistogram()
	want := []int{0, 2, 1, 2}
	for r, c := range want {
		if h[r] != c {
			t.Fatalf("histogram[%d] = %d, want %d", r, h[r], c)
		}
	}
}

func TestFilterIndex(t *testing.T) {
	t.Parallel()
	d := smallDataset()
	f := NewFilterIndex(d)
	if f.Len() != 7 {
		t.Fatalf("Len = %d", f.Len())
	}
	if !f.Contains(Triple{H: 1, R: 1, T: 2}) {
		t.Fatal("train triple missing")
	}
	if !f.Contains(Triple{H: 4, R: 0, T: 5}) {
		t.Fatal("test triple missing")
	}
	if f.Contains(Triple{H: 1, R: 1, T: 3}) {
		t.Fatal("unknown triple reported present")
	}
}

func TestUniformPartition(t *testing.T) {
	t.Parallel()
	ts := make([]Triple, 10)
	for i := range ts {
		ts[i].H = int32(i)
	}
	parts := UniformPartition(ts, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	// Sizes differ by at most 1.
	for _, p := range parts {
		if len(p) < 3 || len(p) > 4 {
			t.Fatalf("unbalanced uniform part: %d", len(p))
		}
	}
}

// TestRelationPartitionPaperExample reproduces Table 3 of the paper: five
// triples over three relations split across two processors with no relation
// overlap — triples 1,2 (relation 1) on one rank, the rest on the other.
func TestRelationPartitionPaperExample(t *testing.T) {
	t.Parallel()
	triples := []Triple{
		{H: 1, R: 1, T: 2},
		{H: 2, R: 1, T: 10},
		{H: 3, R: 2, T: 5},
		{H: 6, R: 3, T: 9},
		{H: 7, R: 3, T: 8},
	}
	parts := RelationPartition(triples, 4, 2)
	if bad := PartitionRelationsDisjoint(parts); bad != -1 {
		t.Fatalf("relation %d spans ranks", bad)
	}
	if len(parts[0]) != 2 || len(parts[1]) != 3 {
		t.Fatalf("split sizes %d/%d, want 2/3", len(parts[0]), len(parts[1]))
	}
	for _, tr := range parts[0] {
		if tr.R != 1 {
			t.Fatalf("rank 0 got relation %d", tr.R)
		}
	}
}

func TestRelationPartitionInvariants(t *testing.T) {
	t.Parallel()
	d := Generate(GenConfig{Name: "g", Entities: 500, Relations: 60, Triples: 8000, Seed: 1})
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		parts := RelationPartition(d.Train, d.NumRelations, p)
		if len(parts) != p {
			t.Fatalf("p=%d: got %d parts", p, len(parts))
		}
		if bad := PartitionRelationsDisjoint(parts); bad != -1 {
			t.Fatalf("p=%d: relation %d spans ranks", p, bad)
		}
		total := 0
		for _, part := range parts {
			total += len(part)
		}
		if total != len(d.Train) {
			t.Fatalf("p=%d: lost triples: %d vs %d", p, total, len(d.Train))
		}
		// Multiset preservation.
		count := map[Triple]int{}
		for _, tr := range d.Train {
			count[tr]++
		}
		for _, part := range parts {
			for _, tr := range part {
				count[tr]--
			}
		}
		for tr, c := range count {
			if c != 0 {
				t.Fatalf("p=%d: triple %+v multiplicity off by %d", p, tr, c)
			}
		}
	}
}

func TestRelationPartitionBalance(t *testing.T) {
	t.Parallel()
	// With many comparable relations the prefix-sum split must be close to
	// balanced (the paper's motivation for binary-searching split points).
	d := Generate(GenConfig{Name: "g", Entities: 2000, Relations: 300, Triples: 30000,
		RelationZipf: 0.3, Seed: 2})
	for _, p := range []int{2, 4, 8} {
		parts := RelationPartition(d.Train, d.NumRelations, p)
		if imb := PartitionImbalance(parts); imb > 1.25 {
			t.Fatalf("p=%d imbalance %v > 1.25", p, imb)
		}
	}
}

func TestRelationPartitionMoreRanksThanRelations(t *testing.T) {
	t.Parallel()
	triples := []Triple{{H: 0, R: 0, T: 1}, {H: 1, R: 0, T: 2}}
	parts := RelationPartition(triples, 1, 4)
	if bad := PartitionRelationsDisjoint(parts); bad != -1 {
		t.Fatal("invariant violated")
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 2 {
		t.Fatalf("lost triples, total=%d", total)
	}
}

func TestRelationPartitionEmptyInput(t *testing.T) {
	t.Parallel()
	parts := RelationPartition(nil, 5, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	for _, p := range parts {
		if len(p) != 0 {
			t.Fatal("non-empty part from empty input")
		}
	}
}

func TestPartitionImbalanceValues(t *testing.T) {
	t.Parallel()
	equal := [][]Triple{make([]Triple, 5), make([]Triple, 5)}
	if got := PartitionImbalance(equal); got != 1 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	skew := [][]Triple{make([]Triple, 9), make([]Triple, 1)}
	if got := PartitionImbalance(skew); got != 1.8 {
		t.Fatalf("skewed imbalance = %v", got)
	}
	if got := PartitionImbalance([][]Triple{nil, nil}); got != 1 {
		t.Fatalf("empty imbalance = %v", got)
	}
}

func TestRelationsOf(t *testing.T) {
	t.Parallel()
	rs := RelationsOf([]Triple{{R: 3}, {R: 1}, {R: 3}, {R: 0}})
	want := []int32{0, 1, 3}
	if len(rs) != len(want) {
		t.Fatalf("RelationsOf = %v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("RelationsOf = %v", rs)
		}
	}
}

// Property: relation partition never splits a relation and never loses
// triples, for arbitrary random triple sets and rank counts.
func TestQuickRelationPartition(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, pRaw, nRelRaw uint8, nRaw uint16) bool {
		p := int(pRaw%16) + 1
		nRel := int(nRelRaw%50) + 1
		n := int(nRaw % 2000)
		rng := xrand.New(seed)
		triples := make([]Triple, n)
		for i := range triples {
			triples[i] = Triple{
				H: int32(rng.Intn(100)),
				R: int32(rng.Intn(nRel)),
				T: int32(rng.Intn(100)),
			}
		}
		parts := RelationPartition(triples, nRel, p)
		if PartitionRelationsDisjoint(parts) != -1 {
			return false
		}
		total := 0
		for _, part := range parts {
			total += len(part)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationPartitionLPTInvariants(t *testing.T) {
	t.Parallel()
	d := Generate(GenConfig{Name: "g", Entities: 500, Relations: 60, Triples: 8000, Seed: 1})
	for _, p := range []int{1, 2, 4, 8, 16} {
		parts := RelationPartitionLPT(d.Train, d.NumRelations, p)
		if len(parts) != p {
			t.Fatalf("p=%d: %d parts", p, len(parts))
		}
		if bad := PartitionRelationsDisjoint(parts); bad != -1 {
			t.Fatalf("p=%d: relation %d spans ranks", p, bad)
		}
		total := 0
		for _, part := range parts {
			total += len(part)
		}
		if total != len(d.Train) {
			t.Fatalf("p=%d: lost triples", p)
		}
	}
}

func TestRelationPartitionLPTBalancesSkew(t *testing.T) {
	t.Parallel()
	// Under a heavily skewed histogram LPT must balance at least as well
	// as the contiguous prefix-sum split.
	d := Generate(GenConfig{Name: "g", Entities: 2000, Relations: 200, Triples: 30000,
		RelationZipf: 1.2, Seed: 5})
	for _, p := range []int{4, 8} {
		prefix := PartitionImbalance(RelationPartition(d.Train, d.NumRelations, p))
		lpt := PartitionImbalance(RelationPartitionLPT(d.Train, d.NumRelations, p))
		if lpt > prefix+1e-9 {
			t.Fatalf("p=%d: LPT imbalance %v worse than prefix split %v", p, lpt, prefix)
		}
		if lpt > 1.3 {
			t.Fatalf("p=%d: LPT imbalance %v too high", p, lpt)
		}
	}
}

func TestRelationPartitionLPTDeterministic(t *testing.T) {
	t.Parallel()
	d := Generate(GenConfig{Name: "g", Entities: 300, Relations: 40, Triples: 4000, Seed: 9})
	a := RelationPartitionLPT(d.Train, d.NumRelations, 4)
	b := RelationPartitionLPT(d.Train, d.NumRelations, 4)
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatal("nondeterministic LPT partition")
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatal("nondeterministic LPT partition content")
			}
		}
	}
}

func TestAugmentInverses(t *testing.T) {
	t.Parallel()
	d := smallDataset()
	aug := AugmentInverses(d)
	if aug.NumRelations != 2*d.NumRelations {
		t.Fatalf("relations %d, want %d", aug.NumRelations, 2*d.NumRelations)
	}
	if len(aug.Train) != 2*len(d.Train) {
		t.Fatalf("train size %d", len(aug.Train))
	}
	if err := aug.Validate(); err != nil {
		t.Fatalf("augmented dataset invalid: %v", err)
	}
	// Each original triple has its inverse present.
	set := map[Triple]bool{}
	for _, tr := range aug.Train {
		set[tr] = true
	}
	for _, tr := range d.Train {
		inv := Triple{H: tr.T, R: tr.R + int32(d.NumRelations), T: tr.H}
		if !set[inv] {
			t.Fatalf("missing inverse of %+v", tr)
		}
	}
	// Valid/test untouched; original unmodified.
	if len(aug.Valid) != len(d.Valid) || len(aug.Test) != len(d.Test) {
		t.Fatal("eval splits changed")
	}
	if len(d.Train) != 5 || d.NumRelations != 4 {
		t.Fatal("original dataset mutated")
	}
}

func TestComputeStats(t *testing.T) {
	t.Parallel()
	d := smallDataset()
	s := ComputeStats(d)
	if s.Entities != 11 || s.Relations != 4 || s.Train != 5 || s.Valid != 1 || s.Test != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.UsedRelations != 3 { // relation 0 is unused in train
		t.Fatalf("UsedRelations = %d", s.UsedRelations)
	}
	if s.MaxRelationCount != 2 {
		t.Fatalf("MaxRelationCount = %d", s.MaxRelationCount)
	}
	// Entity 2 appears twice (tail of triple 1, head of triple 2).
	if s.MaxDegree != 2 {
		t.Fatalf("MaxDegree = %d", s.MaxDegree)
	}
	wantAvg := float64(2*5) / 11
	if s.AvgDegree != wantAvg {
		t.Fatalf("AvgDegree = %v, want %v", s.AvgDegree, wantAvg)
	}
}
