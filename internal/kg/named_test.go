package kg

import (
	"os"
	"path/filepath"
	"testing"
)

func writeNamed(t *testing.T, dir, file, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadNamedDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeNamed(t, dir, "train.txt",
		"/m/delhi\t/location/capital_of\t/m/india\n"+
			"/m/paris\t/location/capital_of\t/m/france\n"+
			"/m/india\t/location/contains\t/m/delhi\n")
	writeNamed(t, dir, "valid.txt", "/m/paris\t/location/contains\t/m/france\n")
	writeNamed(t, dir, "test.txt", "/m/delhi\t/location/contains\t/m/india\n")

	d, names, err := LoadNamedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEntities != 4 || d.NumRelations != 2 {
		t.Fatalf("counts: %d entities, %d relations", d.NumEntities, d.NumRelations)
	}
	if len(d.Train) != 3 || len(d.Valid) != 1 || len(d.Test) != 1 {
		t.Fatalf("splits: %d/%d/%d", len(d.Train), len(d.Valid), len(d.Test))
	}
	// First-appearance ids: delhi=0, india=1, paris=2, france=3.
	if id, ok := names.EntityID("/m/delhi"); !ok || id != 0 {
		t.Fatalf("delhi id %d %v", id, ok)
	}
	if id, ok := names.EntityID("/m/france"); !ok || id != 3 {
		t.Fatalf("france id %d %v", id, ok)
	}
	if id, ok := names.RelationID("/location/contains"); !ok || id != 1 {
		t.Fatalf("contains id %d %v", id, ok)
	}
	if names.Entities[2] != "/m/paris" || names.Relations[0] != "/location/capital_of" {
		t.Fatalf("name tables wrong: %v %v", names.Entities, names.Relations)
	}
	// Triple contents.
	want := Triple{H: 0, R: 0, T: 1}
	if d.Train[0] != want {
		t.Fatalf("train[0] = %+v, want %+v", d.Train[0], want)
	}
}

func TestLoadNamedDirSpaceSeparatedFallback(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeNamed(t, dir, "train.txt", "a r1 b\nb r1 c\n")
	writeNamed(t, dir, "valid.txt", "a r1 c\n")
	writeNamed(t, dir, "test.txt", "c r1 a\n")
	d, _, err := LoadNamedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEntities != 3 || len(d.Train) != 2 {
		t.Fatalf("parsed %d entities, %d train", d.NumEntities, len(d.Train))
	}
}

func TestLoadNamedDirErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := LoadNamedDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	dir := t.TempDir()
	writeNamed(t, dir, "train.txt", "only two\tfields\n")
	writeNamed(t, dir, "valid.txt", "")
	writeNamed(t, dir, "test.txt", "")
	if _, _, err := LoadNamedDir(dir); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestLoadNamedDirRoundTripThroughSave(t *testing.T) {
	t.Parallel()
	// Named data can be re-saved in OpenKE id layout and reloaded.
	dir := t.TempDir()
	writeNamed(t, dir, "train.txt", "a r b\nb r c\nc s a\n")
	writeNamed(t, dir, "valid.txt", "a s b\n")
	writeNamed(t, dir, "test.txt", "b s c\n")
	d, _, err := LoadNamedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ids")
	if err := SaveDir(d, out); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() || d2.NumEntities != d.NumEntities {
		t.Fatalf("round trip changed shape: %+v vs %+v", d2, d)
	}
}
