// Package kg provides the knowledge-graph substrate: triple stores,
// train/valid/test datasets, TSV IO compatible with the Freebase-derived
// benchmark layout, the filtered-evaluation index, and the triple
// partitioners (uniform and the paper's relation partition).
package kg

import (
	"fmt"
	"sort"
)

// Triple is one knowledge-graph fact {head, relation, tail}. Entities and
// relations are dense integer ids, as in the FB15K/FB250K id files.
type Triple struct {
	H int32 // head entity id
	R int32 // relation id
	T int32 // tail entity id
}

// Dataset is a benchmark dataset with standard splits.
type Dataset struct {
	Name         string
	NumEntities  int
	NumRelations int
	Train        []Triple
	Valid        []Triple
	Test         []Triple
}

// Size returns the total number of triples across all splits.
func (d *Dataset) Size() int { return len(d.Train) + len(d.Valid) + len(d.Test) }

// Validate checks id ranges and returns a descriptive error on violation.
func (d *Dataset) Validate() error {
	check := func(split string, ts []Triple) error {
		for i, t := range ts {
			if t.H < 0 || int(t.H) >= d.NumEntities || t.T < 0 || int(t.T) >= d.NumEntities {
				return fmt.Errorf("kg: %s triple %d has entity out of range: %+v", split, i, t)
			}
			if t.R < 0 || int(t.R) >= d.NumRelations {
				return fmt.Errorf("kg: %s triple %d has relation out of range: %+v", split, i, t)
			}
		}
		return nil
	}
	if err := check("train", d.Train); err != nil {
		return err
	}
	if err := check("valid", d.Valid); err != nil {
		return err
	}
	return check("test", d.Test)
}

// RelationHistogram counts training triples per relation.
func (d *Dataset) RelationHistogram() []int {
	h := make([]int, d.NumRelations)
	for _, t := range d.Train {
		h[t.R]++
	}
	return h
}

// FilterIndex is the set of all triples known across every split; filtered
// link-prediction ranking skips candidates found here (ComplEx evaluation
// protocol, paper §3.2).
type FilterIndex struct {
	set map[Triple]struct{}
}

// NewFilterIndex indexes every triple of the dataset.
func NewFilterIndex(d *Dataset) *FilterIndex {
	f := &FilterIndex{set: make(map[Triple]struct{}, d.Size())}
	for _, split := range [][]Triple{d.Train, d.Valid, d.Test} {
		for _, t := range split {
			f.set[t] = struct{}{}
		}
	}
	return f
}

// Contains reports whether the triple is a known fact.
func (f *FilterIndex) Contains(t Triple) bool {
	_, ok := f.set[t]
	return ok
}

// Len returns the number of distinct indexed triples.
func (f *FilterIndex) Len() int { return len(f.set) }

// ---- Partitioners ---------------------------------------------------------

// UniformPartition splits triples into p equal contiguous chunks (the
// baseline data distribution). The input order is preserved; shuffle first
// if randomization is wanted.
func UniformPartition(triples []Triple, p int) [][]Triple {
	if p <= 0 {
		panic("kg: UniformPartition with non-positive p")
	}
	out := make([][]Triple, p)
	n := len(triples)
	for r := 0; r < p; r++ {
		lo, hi := r*n/p, (r+1)*n/p
		out[r] = triples[lo:hi]
	}
	return out
}

// RelationPartition splits triples across p ranks so that no relation spans
// two ranks, following the paper's §4.4 recipe exactly: sort by relation,
// build the per-relation count array, prefix-sum it, and binary-search the p
// split points so per-rank triple counts stay balanced. With relation gradients
// thus rank-private, the relation gradient matrix needs no communication.
//
// The returned slices are fresh (the input is not reordered). Ranks may
// receive zero triples when p exceeds the number of distinct relations.
func RelationPartition(triples []Triple, numRelations, p int) [][]Triple {
	if p <= 0 {
		panic("kg: RelationPartition with non-positive p")
	}
	// Sort a copy by relation (stable order within a relation is irrelevant).
	sorted := append([]Triple(nil), triples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].R < sorted[j].R })

	// Count per relation and prefix-sum: prefix[r] = number of triples with
	// relation id < r.
	counts := make([]int, numRelations)
	for _, t := range sorted {
		counts[t.R]++
	}
	prefix := make([]int, numRelations+1)
	for r := 0; r < numRelations; r++ {
		prefix[r+1] = prefix[r] + counts[r]
	}
	total := prefix[numRelations]

	// For each split k, binary-search the first relation boundary whose
	// prefix reaches k*total/p. Boundaries are relation indices, so no
	// relation is ever split.
	bounds := make([]int, p+1) // bounds in relation-id space
	bounds[p] = numRelations
	for k := 1; k < p; k++ {
		target := k * total / p
		// Smallest r with prefix[r] >= target.
		r := sort.SearchInts(prefix, target)
		if r > numRelations {
			r = numRelations
		}
		if r < bounds[k-1] {
			r = bounds[k-1] // keep boundaries monotone
		}
		bounds[k] = r
	}

	out := make([][]Triple, p)
	for k := 0; k < p; k++ {
		lo, hi := prefix[bounds[k]], prefix[bounds[k+1]]
		part := make([]Triple, hi-lo)
		copy(part, sorted[lo:hi])
		out[k] = part
	}
	return out
}

// RelationPartitionLPT is an alternative relation partitioner using greedy
// longest-processing-time scheduling: relations are sorted by triple count
// descending and each is assigned to the currently lightest rank. It keeps
// the same no-relation-spans-two-ranks invariant as RelationPartition but
// trades the paper's contiguous-range split (cheap: prefix sum + binary
// search, preserves relation locality) for better balance under skewed
// histograms — the ablation benchmarks compare the two.
func RelationPartitionLPT(triples []Triple, numRelations, p int) [][]Triple {
	if p <= 0 {
		panic("kg: RelationPartitionLPT with non-positive p")
	}
	byRel := make([][]Triple, numRelations)
	for _, t := range triples {
		byRel[t.R] = append(byRel[t.R], t)
	}
	order := make([]int, numRelations)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if len(byRel[order[i]]) != len(byRel[order[j]]) {
			return len(byRel[order[i]]) > len(byRel[order[j]])
		}
		return order[i] < order[j] // deterministic tie-break
	})
	out := make([][]Triple, p)
	loads := make([]int, p)
	for _, r := range order {
		if len(byRel[r]) == 0 {
			continue
		}
		// Lightest rank (lowest index wins ties).
		best := 0
		for k := 1; k < p; k++ {
			if loads[k] < loads[best] {
				best = k
			}
		}
		out[best] = append(out[best], byRel[r]...)
		loads[best] += len(byRel[r])
	}
	return out
}

// PartitionRelationsDisjoint verifies the relation-partition invariant: no
// relation id appears in more than one part. It returns the offending
// relation id, or -1 when the invariant holds.
func PartitionRelationsDisjoint(parts [][]Triple) int32 {
	owner := map[int32]int{}
	for rank, part := range parts {
		for _, t := range part {
			if prev, ok := owner[t.R]; ok && prev != rank {
				return t.R
			}
			owner[t.R] = rank
		}
	}
	return -1
}

// PartitionImbalance returns max/mean triple-load ratio across non-empty
// target ranks (1.0 = perfectly balanced).
func PartitionImbalance(parts [][]Triple) float64 {
	total, max := 0, 0
	for _, p := range parts {
		total += len(p)
		if len(p) > max {
			max = len(p)
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(parts))
	return float64(max) / mean
}

// Stats summarizes a dataset's shape for reports and sanity checks.
type Stats struct {
	Entities  int
	Relations int
	Train     int
	Valid     int
	Test      int
	// UsedRelations counts relations with at least one training triple.
	UsedRelations int
	// MaxRelationCount is the largest per-relation training count (the
	// skew that stresses the relation partitioner).
	MaxRelationCount int
	// AvgDegree is the mean number of training triples an entity appears
	// in (as head or tail).
	AvgDegree float64
	// MaxDegree is the largest such count.
	MaxDegree int
}

// ComputeStats scans the dataset once and returns its Stats.
func ComputeStats(d *Dataset) Stats {
	s := Stats{
		Entities:  d.NumEntities,
		Relations: d.NumRelations,
		Train:     len(d.Train),
		Valid:     len(d.Valid),
		Test:      len(d.Test),
	}
	deg := make([]int, d.NumEntities)
	for _, h := range d.RelationHistogram() {
		if h > 0 {
			s.UsedRelations++
		}
		if h > s.MaxRelationCount {
			s.MaxRelationCount = h
		}
	}
	for _, t := range d.Train {
		deg[t.H]++
		deg[t.T]++
	}
	total := 0
	for _, c := range deg {
		total += c
		if c > s.MaxDegree {
			s.MaxDegree = c
		}
	}
	if d.NumEntities > 0 {
		s.AvgDegree = float64(total) / float64(d.NumEntities)
	}
	return s
}

// AugmentInverses returns a copy of the dataset whose training split also
// contains the inverse of every training triple: (t, r + NumRelations, h).
// Inverse-relation augmentation is the standard preprocessing of the
// SimplE/ComplEx-N3 line of work; NumRelations doubles, validation and test
// splits are left untouched so evaluation stays comparable.
func AugmentInverses(d *Dataset) *Dataset {
	out := &Dataset{
		Name:         d.Name + "+inv",
		NumEntities:  d.NumEntities,
		NumRelations: 2 * d.NumRelations,
		Train:        make([]Triple, 0, 2*len(d.Train)),
		Valid:        d.Valid,
		Test:         d.Test,
	}
	out.Train = append(out.Train, d.Train...)
	for _, t := range d.Train {
		out.Train = append(out.Train, Triple{
			H: t.T,
			R: t.R + int32(d.NumRelations),
			T: t.H,
		})
	}
	return out
}

// RelationsOf returns the sorted set of distinct relation ids in triples.
func RelationsOf(triples []Triple) []int32 {
	seen := map[int32]struct{}{}
	for _, t := range triples {
		seen[t.R] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
