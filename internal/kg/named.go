package kg

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// LoadNamedDir reads a dataset in the original Freebase-benchmark text
// layout: train.txt, valid.txt and test.txt, each holding one
// "head<TAB>relation<TAB>tail" triple of arbitrary string names per line
// (the format FB15K is distributed in). Entity and relation ids are
// assigned in first-appearance order across train, valid, test; the name
// dictionaries are returned alongside the dataset so predictions can be
// mapped back.
func LoadNamedDir(dir string) (*Dataset, *Names, error) {
	names := &Names{
		entityID:   map[string]int32{},
		relationID: map[string]int32{},
	}
	load := func(file string) ([]Triple, error) {
		path := filepath.Join(dir, file)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("kg: opening %s: %w", path, err)
		}
		defer f.Close() //kgelint:ignore droppederr read-only close
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		var out []Triple
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			fields := strings.Split(text, "\t")
			if len(fields) == 1 {
				// No tabs at all: fall back to whitespace separation.
				fields = strings.Fields(text)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("kg: %s:%d: want 3 fields, got %q", path, line, text)
			}
			out = append(out, Triple{
				H: names.internEntity(fields[0]),
				R: names.internRelation(fields[1]),
				T: names.internEntity(fields[2]),
			})
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("kg: reading %s: %w", path, err)
		}
		return out, nil
	}
	d := &Dataset{Name: filepath.Base(dir)}
	var err error
	if d.Train, err = load("train.txt"); err != nil {
		return nil, nil, err
	}
	if d.Valid, err = load("valid.txt"); err != nil {
		return nil, nil, err
	}
	if d.Test, err = load("test.txt"); err != nil {
		return nil, nil, err
	}
	d.NumEntities = len(names.Entities)
	d.NumRelations = len(names.Relations)
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if d.NumEntities < 2 || d.NumRelations < 1 {
		return nil, nil, fmt.Errorf("kg: %s: dataset too small (%d entities, %d relations)",
			dir, d.NumEntities, d.NumRelations)
	}
	return d, names, nil
}

// Names maps between string names and dense ids for datasets loaded with
// LoadNamedDir.
type Names struct {
	// Entities holds the entity name for each id.
	Entities []string
	// Relations holds the relation name for each id.
	Relations []string

	entityID   map[string]int32
	relationID map[string]int32
}

func (n *Names) internEntity(name string) int32 {
	if id, ok := n.entityID[name]; ok {
		return id
	}
	id := int32(len(n.Entities))
	n.Entities = append(n.Entities, name)
	n.entityID[name] = id
	return id
}

func (n *Names) internRelation(name string) int32 {
	if id, ok := n.relationID[name]; ok {
		return id
	}
	id := int32(len(n.Relations))
	n.Relations = append(n.Relations, name)
	n.relationID[name] = id
	return id
}

// EntityID resolves a name to its id.
func (n *Names) EntityID(name string) (int32, bool) {
	id, ok := n.entityID[name]
	return id, ok
}

// RelationID resolves a name to its id.
func (n *Names) RelationID(name string) (int32, bool) {
	id, ok := n.relationID[name]
	return id, ok
}
