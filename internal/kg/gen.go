package kg

import (
	"fmt"
	"math"

	"kgedist/internal/xrand"
)

// GenConfig configures the synthetic knowledge-graph generator that stands
// in for the Freebase-derived FB15K/FB250K dumps (see DESIGN.md §2).
//
// The generator plants a community structure: entities belong to one of
// Communities groups, and every relation connects a fixed source community
// to a fixed target community. Triples draw their relation from a Zipf
// distribution (matching the heavy-tailed relation histograms of Freebase)
// and their entities Zipf-skewed within the relation's communities. A small
// NoiseFrac of triples ignores the community constraint. The resulting graph
// is learnable by factorization models (the communities are recoverable),
// heavy-tailed (so gradient matrices are sparse per batch, driving the
// all-gather/all-reduce trade-off), and gives random negative samples a
// hardness spectrum (corruptions inside the right community are hard,
// outside it easy), which the sample-selection strategy exploits.
type GenConfig struct {
	Name      string
	Entities  int
	Relations int
	Triples   int // total across splits, before dedup

	Communities  int     // number of entity communities (default 32)
	RelationZipf float64 // Zipf exponent over relations (default 1.0)
	EntityZipf   float64 // Zipf exponent within a community (default 0.8)
	NoiseFrac    float64 // fraction of unconstrained triples (default 0.05)

	ValidFrac float64 // fraction of triples for validation (default 0.05)
	TestFrac  float64 // fraction for test (default 0.05)

	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Communities == 0 {
		c.Communities = 32
	}
	if c.RelationZipf == 0 {
		c.RelationZipf = 1.0
	}
	if c.EntityZipf == 0 {
		c.EntityZipf = 0.8
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.05
	}
	if c.ValidFrac == 0 {
		c.ValidFrac = 0.05
	}
	if c.TestFrac == 0 {
		c.TestFrac = 0.05
	}
	return c
}

// Scaled multiplies the graph's size knobs — entities, relations and
// triples — by factor, clamping each at 1. The community count is left
// alone: a scaled graph keeps the original's community topology (the same
// number of clusters, each proportionally larger), so partitioners and
// samplers see the same structure at a different magnitude. Fractional
// knobs (Zipf exponents, noise, split fractions) are size-free and carry
// over unchanged.
func (c GenConfig) Scaled(factor float64) GenConfig {
	if factor <= 0 {
		panic(fmt.Sprintf("kg: Scaled factor must be positive, got %g", factor))
	}
	scale := func(n int) int {
		s := int(float64(n) * factor)
		if s < 1 {
			s = 1
		}
		return s
	}
	c.Entities = scale(c.Entities)
	c.Relations = scale(c.Relations)
	c.Triples = scale(c.Triples)
	if math.Float64bits(factor) != math.Float64bits(1) {
		c.Name = fmt.Sprintf("%s-x%g", c.Name, factor)
	}
	return c
}

// Generate builds a synthetic dataset per cfg. Duplicate triples are
// dropped, so the realized size can be slightly below cfg.Triples.
func Generate(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.Entities <= 1 || cfg.Relations < 1 || cfg.Triples < 1 {
		panic(fmt.Sprintf("kg: invalid GenConfig %+v", cfg))
	}
	if cfg.Communities > cfg.Entities {
		cfg.Communities = cfg.Entities
	}
	rng := xrand.New(cfg.Seed)

	// Assign entities to communities round-robin so every community has
	// members, then index members per community.
	community := make([]int, cfg.Entities)
	members := make([][]int32, cfg.Communities)
	for e := 0; e < cfg.Entities; e++ {
		c := e % cfg.Communities
		community[e] = c
		members[c] = append(members[c], int32(e))
	}

	// Each relation links a source community to a target community.
	relSrc := make([]int, cfg.Relations)
	relDst := make([]int, cfg.Relations)
	for r := 0; r < cfg.Relations; r++ {
		relSrc[r] = rng.Intn(cfg.Communities)
		relDst[r] = rng.Intn(cfg.Communities)
	}

	relZipf := xrand.NewZipf(rng.Split(1), cfg.Relations, cfg.RelationZipf)
	// One entity-Zipf sampler per community size class; sizes differ by at
	// most 1 under round-robin, so one sampler per distinct size suffices.
	entZipf := map[int]*xrand.Zipf{}
	zipfFor := func(n int) *xrand.Zipf {
		z, ok := entZipf[n]
		if !ok {
			z = xrand.NewZipf(rng.Split(uint64(100+n)), n, cfg.EntityZipf)
			entZipf[n] = z
		}
		return z
	}

	seen := make(map[Triple]struct{}, cfg.Triples)
	triples := make([]Triple, 0, cfg.Triples)
	attempts := 0
	maxAttempts := cfg.Triples * 20
	for len(triples) < cfg.Triples && attempts < maxAttempts {
		attempts++
		r := relZipf.Draw()
		var h, t int32
		if rng.Float64() < cfg.NoiseFrac {
			h = int32(rng.Intn(cfg.Entities))
			t = int32(rng.Intn(cfg.Entities))
		} else {
			src := members[relSrc[r]]
			dst := members[relDst[r]]
			h = src[zipfFor(len(src)).Draw()]
			t = dst[zipfFor(len(dst)).Draw()]
		}
		if h == t {
			continue
		}
		tr := Triple{H: h, R: int32(r), T: t}
		if _, dup := seen[tr]; dup {
			continue
		}
		seen[tr] = struct{}{}
		triples = append(triples, tr)
	}

	// Shuffle and split.
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
	nValid := int(cfg.ValidFrac * float64(len(triples)))
	nTest := int(cfg.TestFrac * float64(len(triples)))
	nTrain := len(triples) - nValid - nTest

	d := &Dataset{
		Name:         cfg.Name,
		NumEntities:  cfg.Entities,
		NumRelations: cfg.Relations,
		Train:        triples[:nTrain],
		Valid:        triples[nTrain : nTrain+nValid],
		Test:         triples[nTrain+nValid:],
	}
	return d
}

// FB15KMini returns the scaled-down stand-in for FB15K used throughout the
// experiment harness: same relation/entity ratio flavor as FB15K, sized for
// laptop budgets.
func FB15KMini(seed uint64) GenConfig {
	return GenConfig{
		Name:      "fb15k-mini",
		Entities:  3000,
		Relations: 400,
		Triples:   60000,
		Seed:      seed,
	}
}

// FB250KMini returns the scaled-down stand-in for FB250K: more entities and
// relations and 4x the triples of FB15KMini, preserving FB250K's "bigger and
// sparser" character relative to FB15K.
func FB250KMini(seed uint64) GenConfig {
	return GenConfig{
		Name:      "fb250k-mini",
		Entities:  12000,
		Relations: 1200,
		Triples:   240000,
		Seed:      seed,
	}
}

// FB15KFull and FB250KFull mirror the published dataset dimensions for runs
// with real data volumes (requires substantial compute).
func FB15KFull(seed uint64) GenConfig {
	return GenConfig{
		Name:      "fb15k-full",
		Entities:  14951,
		Relations: 1345,
		Triples:   592213,
		Seed:      seed,
	}
}

// FB250KFull mirrors FB250K's published dimensions (~16M facts).
func FB250KFull(seed uint64) GenConfig {
	return GenConfig{
		Name:      "fb250k-full",
		Entities:  240000,
		Relations: 9280,
		Triples:   16000000,
		Seed:      seed,
	}
}
