package benchfmt

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: kgedist/internal/grad
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkQuantizeInto/1bit-max-8         	   10000	      1234 ns/op	       0 B/op	       0 allocs/op	 663552000 values/sec
BenchmarkUnmarshalInto-8                 	  500000	       321.5 ns/op	2952.11 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	kgedist/internal/grad	2.345s
pkg: kgedist/internal/mpi
BenchmarkAllReduceSum-8                  	    5000	     39385 ns/op	 415.99 MB/s	    6612 B/op	      89 allocs/op
PASS
ok  	kgedist/internal/mpi	1.234s
`

func TestParse(t *testing.T) {
	t.Parallel()
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	q := bs[0]
	if q.Name != "BenchmarkQuantizeInto/1bit-max-8" || q.Package != "kgedist/internal/grad" {
		t.Errorf("bad identity: %+v", q)
	}
	if q.Runs != 10000 || q.NsPerOp != 1234 || q.BytesPerOp != 0 || q.AllocsPerOp != 0 {
		t.Errorf("bad measurements: %+v", q)
	}
	if q.Metrics["values/sec"] != 663552000 {
		t.Errorf("custom metric not captured: %+v", q.Metrics)
	}
	if bs[1].NsPerOp != 321.5 || bs[1].Metrics["MB/s"] != 2952.11 {
		t.Errorf("fractional values mishandled: %+v", bs[1])
	}
	if bs[2].Package != "kgedist/internal/mpi" {
		t.Errorf("pkg header not tracked across packages: %+v", bs[2])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	t.Parallel()
	noise := "random text\nBenchmarkInProgress\nBenchmarkBad notanumber 12 ns/op\n--- FAIL: TestX\n"
	bs, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(bs))
	}
}

func sampleFile() *File {
	return &File{
		Schema:    Schema,
		Commit:    "abc1234",
		GoVersion: "go1.24.0",
		Date:      "2026-08-06T12:00:00Z",
		Benchmarks: []Benchmark{
			{
				Name: "BenchmarkScore/complex-8", Package: "kgedist/internal/model",
				Runs: 100000, NsPerOp: 250.5, BytesPerOp: 0, AllocsPerOp: 0,
				Metrics: map[string]float64{"triples/sec": 3.99e6},
			},
			{Name: "BenchmarkAllReduceSum-8", Package: "kgedist/internal/mpi",
				Runs: 5000, NsPerOp: 39385, BytesPerOp: 6612, AllocsPerOp: 89},
		},
	}
}

// The BENCH_*.json schema is a published contract: encoding a File and
// decoding it back must be lossless, and the JSON field names must stay
// exactly as documented in PERFORMANCE.md.
func TestFileRoundTrip(t *testing.T) {
	t.Parallel()
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("round trip changed the file:\n in: %+v\nout: %+v", f, got)
	}
}

func TestSchemaFieldNamesPinned(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := sampleFile().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "commit", "go_version", "date", "benchmarks"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("top-level key %q missing from encoded file", key)
		}
	}
	b := raw["benchmarks"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "package", "runs", "ns_per_op", "bytes_per_op", "allocs_per_op", "metrics"} {
		if _, ok := b[key]; !ok {
			t.Errorf("benchmark key %q missing from encoded file", key)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	t.Parallel()
	cases := map[string]func(*File){
		"wrong schema":  func(f *File) { f.Schema = "other/v9" },
		"no go version": func(f *File) { f.GoVersion = "" },
		"no date":       func(f *File) { f.Date = "" },
		"unnamed bench": func(f *File) { f.Benchmarks[0].Name = "" },
		"zero runs":     func(f *File) { f.Benchmarks[1].Runs = 0 },
		"negative ns":   func(f *File) { f.Benchmarks[0].NsPerOp = -1 },
	}
	for name, corrupt := range cases {
		f := sampleFile()
		corrupt(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt file", name)
		}
	}
}

func TestEndToEnd(t *testing.T) {
	t.Parallel()
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	f := &File{Schema: Schema, GoVersion: "go1.24.0", Date: "2026-08-06T12:00:00Z", Benchmarks: bs}
	if err := f.Validate(); err != nil {
		t.Fatalf("parsed output fails validation: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err != nil {
		t.Fatal(err)
	}
}
