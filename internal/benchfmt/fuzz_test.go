package benchfmt

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the bench-output parser. Parse
// ingests the raw `go test` stream unfiltered, so it must tolerate any
// byte sequence: the only acceptable outcomes are a result slice or an
// error, never a panic, and every returned benchmark must carry the
// invariants the JSON schema promises (non-empty name, non-negative runs).
func FuzzParse(f *testing.F) {
	f.Add("BenchmarkQuantizeInto/1bit-max-8   1000  1234 ns/op  16 B/op  2 allocs/op\n")
	f.Add("pkg: kgedist/internal/grad\nBenchmarkSelect-4 5 2.5 ns/op 100 MB/s\n")
	f.Add("goos: linux\ngoarch: amd64\nPASS\nok  	kgedist	0.5s\n")
	f.Add("BenchmarkX 1\n")                          // too few fields
	f.Add("BenchmarkX -1 2 ns/op\n")                 // negative runs
	f.Add("BenchmarkX 9999999999999999999 2 ns/op") // overflow, no newline
	f.Add("BenchmarkX 10 NaN ns/op\nBenchmarkX 10 1e309 ns/op\n")
	f.Add("pkg:\npkg: a\npkg: b\nBenchmarkY 1 1 ns/op extra\n")
	f.Add(strings.Repeat("BenchmarkLong"+strings.Repeat("x", 300), 10))
	f.Add("\x00\xff\xfe BenchmarkBinary 1 1 ns/op\n")
	f.Fuzz(func(t *testing.T, input string) {
		bms, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, b := range bms {
			if b.Name == "" {
				t.Errorf("Parse returned a benchmark with an empty name from %q", input)
			}
			if b.Runs < 0 {
				t.Errorf("Parse returned negative runs %d for %q", b.Runs, b.Name)
			}
		}
	})
}
