// Package benchfmt parses `go test -bench` output and defines the published
// JSON schema of the BENCH_<date>.json files `make bench` writes. The
// schema is the repo's performance-tracking contract: PERFORMANCE.md
// documents how to read and diff the files, and the round-trip test pins
// the field names so a schema change is a deliberate, versioned act.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schema is the identifier stamped into every file this package writes.
// Bump the suffix when a field changes meaning; readers must check it.
const Schema = "kgedist-bench/v1"

// File is one benchmark capture: every benchmark the run printed, plus
// enough provenance (commit, Go version, date) to compare captures across
// time. It is the top-level object of a BENCH_<date>.json file.
type File struct {
	// Schema identifies the file format; always the Schema constant.
	Schema string `json:"schema"`
	// Commit is the git commit hash the benchmarks ran at (may be empty
	// when the tree was dirty or git was unavailable).
	Commit string `json:"commit,omitempty"`
	// GoVersion is runtime.Version() of the toolchain that ran the suite.
	GoVersion string `json:"go_version"`
	// Date is the capture time in RFC 3339.
	Date string `json:"date"`
	// Benchmarks holds one entry per benchmark result line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkName-P  N  x ns/op ...` result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkQuantizeInto/1bit-max-8".
	Name string `json:"name"`
	// Package is the import path the benchmark belongs to, from the
	// preceding "pkg:" header line (empty if the input had none).
	Package string `json:"package,omitempty"`
	// Runs is the iteration count N the final timing was measured over.
	Runs int64 `json:"runs"`
	// NsPerOp is wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per iteration (present when the
	// benchmark reported -benchmem/ReportAllocs).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries every other "value unit" pair the benchmark emitted
	// (MB/s, triples/sec, ...), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` text output and returns the benchmark
// results in order. Non-benchmark lines (pkg headers aside) are ignored, so
// the full `go test` stream can be piped in unfiltered. An input with no
// benchmark lines yields an empty slice and no error.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit]..." — at least
		// four fields with an integer iteration count. Anything else (e.g.
		// a "BenchmarkX" progress line) is skipped.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || runs < 0 {
			// Not an iteration count (go test never prints a negative N), so
			// this is not a result line.
			continue
		}
		b := Benchmark{Name: fields[0], Package: pkg, Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: reading input: %w", err)
	}
	return out, nil
}

// Validate checks that f conforms to the published schema: correct schema
// tag, provenance fields present, and well-formed benchmark entries.
func (f *File) Validate() error {
	if f.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", f.Schema, Schema)
	}
	if f.GoVersion == "" {
		return fmt.Errorf("benchfmt: missing go_version")
	}
	if f.Date == "" {
		return fmt.Errorf("benchfmt: missing date")
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchfmt: benchmark %d has no name", i)
		}
		if b.Runs <= 0 {
			return fmt.Errorf("benchfmt: %s: non-positive run count %d", b.Name, b.Runs)
		}
		if b.NsPerOp < 0 || b.BytesPerOp < 0 || b.AllocsPerOp < 0 {
			return fmt.Errorf("benchfmt: %s: negative measurement", b.Name)
		}
	}
	return nil
}

// Encode writes f as indented JSON.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a File written by Encode (or any conforming JSON) and
// validates it.
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: decoding: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
