package testkit

import (
	"strings"
	"testing"
)

func TestServeApproxRoundTrip(t *testing.T) {
	sa, err := RecordServeApprox()
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Queries) != len(saQuerySlots()) {
		t.Fatalf("recorded %d queries, grid has %d", len(sa.Queries), len(saQuerySlots()))
	}
	for _, q := range sa.Queries {
		if len(q.IDs) != q.K {
			t.Fatalf("query %+v returned %d ids, want k=%d", q, len(q.IDs), q.K)
		}
	}
	// A fresh recording verifies clean against itself (determinism).
	if drifts := VerifyServeApprox(sa); len(drifts) != 0 {
		t.Fatalf("self-verify drifted: %v", drifts)
	}
}

func TestVerifyServeApproxDetectsDrift(t *testing.T) {
	if drifts := VerifyServeApprox(nil); len(drifts) != 1 || drifts[0].Field != "missing" {
		t.Fatalf("nil section: %v", drifts)
	}
	sa, err := RecordServeApprox()
	if err != nil {
		t.Fatal(err)
	}
	sa.Queries[3].IDs[0]++ // a single flipped id must be caught
	drifts := VerifyServeApprox(sa)
	if len(drifts) != 1 || drifts[0].Field != "ids" {
		t.Fatalf("flipped id: %v", drifts)
	}
	if !strings.Contains(drifts[0].Detail, "rank 0") {
		t.Fatalf("drift does not name the diverging rank: %s", drifts[0].Detail)
	}
	sa.Queries[3].IDs[0]--
	sa.Seed++ // parameter changes are a scenario drift, not an id diff
	if drifts := VerifyServeApprox(sa); len(drifts) != 1 || drifts[0].Field != "scenario" {
		t.Fatalf("changed seed: %v", drifts)
	}
}

func TestCheckBinarizedRecallPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("recall sweep in -short mode")
	}
	r := CheckBinarizedRecall(1)
	if !r.OK {
		t.Fatalf("recall check failed: %s", r.Detail)
	}
}
