package testkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"

	"kgedist/internal/core"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/serve"
	"kgedist/internal/simnet"
	"kgedist/internal/xrand"
)

// The chaos soak harness: each iteration runs the full lifecycle the system
// promises to survive —
//
//	train (fault-free baseline)
//	  -> train again under a randomized-but-seeded fault plan
//	     (crash -> shrink -> recover, periodic crash-safe checkpoints)
//	  -> persist the recovered model, reload it, serve it
//	  -> hot-reload the serving process onto a different checkpoint
//	     while queries are in flight
//
// and asserts after every stage: recovered MRR within tolerance of the
// fault-free baseline, a gap-free epoch ledger, bit-exact persistence
// round-trips, and a serving layer whose scores match the trained
// parameters before and after the reload. All randomness derives from
// SoakConfig.Seed, so a failing iteration replays exactly.

// SoakConfig parameterizes a soak run.
type SoakConfig struct {
	// Seed drives every random choice (fault plans, node counts, probe
	// triples). Same seed, same soak.
	Seed uint64
	// Iters is the number of train->crash->recover->serve cycles.
	Iters int
	// Dir is the scratch directory for checkpoints; it must exist. Each
	// iteration's files are removed on success.
	Dir string
	// MRRTolerance is the allowed |recovered - baseline| as a fraction of
	// the baseline MRR (0 = DefaultMRRTolerance).
	MRRTolerance float64
	// Report, when non-nil, receives progress lines.
	Report func(format string, args ...any)
}

// DefaultMRRTolerance is the relative MRR band around the fault-free
// baseline. It is wider than the 10% the fixed-plan recovery test
// (core/fault_test.go) enforces, because the soak's randomized plans can
// shrink the cluster by half — which legitimately changes the averaging
// dynamics in either direction. Lost updates are caught exactly by the
// epoch-ledger and checkpoint round-trip assertions; the MRR band bounds
// gross divergence.
const DefaultMRRTolerance = 0.25

// soakMRRFloor is the absolute floor of the MRR band: on the small soak
// dataset the baseline MRR is ~0.12-0.16, and cross-configuration spread
// alone is a few hundredths, so a purely relative band would be noise-
// dominated when the baseline is low.
const soakMRRFloor = 0.05

// SoakIteration records one cycle's observables.
type SoakIteration struct {
	Iter           int     `json:"iter"`
	Nodes          int     `json:"nodes"`
	FaultPlan      string  `json:"fault_plan"`
	BaselineMRR    float64 `json:"baseline_mrr"`
	RecoveredMRR   float64 `json:"recovered_mrr"`
	Recoveries     int     `json:"recoveries"`
	FaultsInjected int     `json:"faults_injected"`
	Checkpoints    int     `json:"checkpoints"`
	FinalNodes     int     `json:"final_nodes"`
	Degraded       bool    `json:"degraded"`
}

// SoakReport aggregates a soak run.
type SoakReport struct {
	Seed           uint64          `json:"seed"`
	Iters          int             `json:"iters"`
	Recoveries     int             `json:"recoveries"`
	FaultsInjected int             `json:"faults_injected"`
	Iterations     []SoakIteration `json:"iterations"`
}

// soakDataset is the shared KG for soak cycles (generated once per Soak
// call; iterations vary seeds and fault plans, not the data).
func soakDataset() *kg.Dataset {
	return kg.Generate(kg.GenConfig{
		Name: "testkit-soak", Entities: 300, Relations: 30, Triples: 5000,
		Communities: 6, Seed: 1234,
	})
}

// soakConfig is the per-iteration training configuration. The horizon is
// fixed (no early stop) so the baseline's virtual duration predicts where
// in the faulty run the crashes land.
func soakConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Dim = 8
	cfg.BaseLR = 0.02
	cfg.BatchSize = 500
	cfg.MaxEpochs = 8
	cfg.StopPatience = 50
	cfg.ValSample = 400
	cfg.TestSample = 100
	cfg.Seed = seed
	return cfg
}

// Soak runs the chaos soak and returns the report; the error is non-nil on
// the first failed assertion (the report covers completed iterations).
func Soak(sc SoakConfig) (*SoakReport, error) {
	if sc.Iters <= 0 {
		return nil, fmt.Errorf("testkit: soak needs Iters > 0")
	}
	tol := sc.MRRTolerance
	if tol <= 0 {
		tol = DefaultMRRTolerance
	}
	report := sc.Report
	if report == nil {
		report = func(string, ...any) {}
	}
	d := soakDataset()
	out := &SoakReport{Seed: sc.Seed, Iters: sc.Iters}
	for i := 0; i < sc.Iters; i++ {
		it, err := soakIteration(sc, d, i, tol, report)
		if it != nil {
			out.Iterations = append(out.Iterations, *it)
			out.Recoveries += it.Recoveries
			out.FaultsInjected += it.FaultsInjected
		}
		if err != nil {
			return out, fmt.Errorf("soak iteration %d (seed %d): %w", i, sc.Seed, err)
		}
	}
	return out, nil
}

func soakIteration(sc SoakConfig, d *kg.Dataset, iter int, tol float64, report func(string, ...any)) (*SoakIteration, error) {
	rng := xrand.New(sc.Seed).Split(uint64(iter + 1))
	nodes := 3 + rng.Intn(2)
	cfg := soakConfig(sc.Seed + uint64(iter))

	// ---- Stage 1: fault-free baseline ----
	base, err := core.Train(cfg, d, nodes)
	if err != nil {
		return nil, fmt.Errorf("baseline train: %w", err)
	}
	baseSeconds := base.TotalHours * 3600

	// ---- Stage 2: randomized-but-seeded fault plan ----
	plan := randomFaultPlan(rng, nodes, baseSeconds)
	it := &SoakIteration{Iter: iter, Nodes: nodes, FaultPlan: plan.String(), BaselineMRR: base.MRR}

	ckpt := filepath.Join(sc.Dir, fmt.Sprintf("soak-%d-periodic.kge2", iter))
	faulty := cfg
	faulty.FaultPlan = plan
	faulty.Recover = true
	faulty.CheckpointEvery = 2
	faulty.CheckpointPath = ckpt

	rec, err := core.Train(faulty, d, nodes)
	if err != nil {
		return it, fmt.Errorf("faulty train (plan %q): %w", plan, err)
	}
	it.RecoveredMRR = rec.MRR
	it.Recoveries = rec.Recovery.Recoveries
	it.FaultsInjected = rec.Recovery.FaultsInjected
	it.Checkpoints = rec.Recovery.Checkpoints
	it.FinalNodes = rec.Recovery.FinalNodes
	it.Degraded = rec.Recovery.Degraded
	report("iter %d: nodes=%d plan=%s recoveries=%d injected=%d finalNodes=%d mrr %.4f vs baseline %.4f",
		iter, nodes, plan, it.Recoveries, it.FaultsInjected, it.FinalNodes, rec.MRR, base.MRR)

	// Crashes were placed well inside the run, so at least one must fire
	// and be survived.
	if it.FaultsInjected == 0 {
		return it, fmt.Errorf("no fault fired (plan %q, baseline %gs) — the chaos run degenerated to a plain run", plan, baseSeconds)
	}
	if it.Recoveries == 0 {
		return it, fmt.Errorf("crash fired but no recovery happened (plan %q)", plan)
	}

	// MRR within tolerance of the fault-free baseline.
	band := tol * base.MRR
	if band < soakMRRFloor {
		band = soakMRRFloor
	}
	if diff := math.Abs(rec.MRR - base.MRR); diff > band {
		return it, fmt.Errorf("recovered MRR %.4f vs baseline %.4f: off by %.4f, band %.4f",
			rec.MRR, base.MRR, diff, band)
	}

	// Gap-free epoch ledger: after rollbacks, PerEpoch must hold epochs
	// 1..Epochs exactly once — a gap means training lost an epoch's
	// updates, a duplicate means replayed work was double-recorded.
	if len(rec.PerEpoch) != rec.Epochs {
		return it, fmt.Errorf("epoch ledger has %d records for %d epochs", len(rec.PerEpoch), rec.Epochs)
	}
	for j, e := range rec.PerEpoch {
		if e.Epoch != j+1 {
			return it, fmt.Errorf("epoch ledger gap: record %d is epoch %d", j, e.Epoch)
		}
	}
	if rec.Epochs != cfg.MaxEpochs {
		return it, fmt.Errorf("recovered run finished %d epochs, want the full horizon %d", rec.Epochs, cfg.MaxEpochs)
	}

	// ---- Stage 3: persistence round-trip (no lost updates) ----
	m := model.New(cfg.ModelName, cfg.Dim)
	finalCkpt := filepath.Join(sc.Dir, fmt.Sprintf("soak-%d-final.kge2", iter))
	if err := model.SaveCheckpoint(finalCkpt, m, rec.FinalParams); err != nil {
		return it, fmt.Errorf("saving final checkpoint: %w", err)
	}
	_, loaded, err := model.LoadCheckpoint(finalCkpt)
	if err != nil {
		return it, fmt.Errorf("reloading final checkpoint: %w", err)
	}
	if !paramsEqual(loaded, rec.FinalParams) {
		return it, fmt.Errorf("checkpoint round-trip lost updates: reloaded parameters differ from trained ones")
	}

	// ---- Stage 4: serve the recovered model, hot-reload to the baseline ----
	baseCkpt := filepath.Join(sc.Dir, fmt.Sprintf("soak-%d-base.kge2", iter))
	if err := model.SaveCheckpoint(baseCkpt, m, base.FinalParams); err != nil {
		return it, fmt.Errorf("saving baseline checkpoint: %w", err)
	}
	if err := soakServe(finalCkpt, baseCkpt, m, rec.FinalParams, base.FinalParams, d, rng); err != nil {
		return it, err
	}

	for _, p := range []string{ckpt, finalCkpt, baseCkpt} {
		_ = os.Remove(p)
	}
	return it, nil
}

// randomFaultPlan draws 1-2 rank crashes inside [0.15, 0.6] of the
// baseline's virtual duration (so they fire mid-training and are always
// survivable) and, half the time, a slowdown window on rank 0.
func randomFaultPlan(rng *xrand.RNG, nodes int, baseSeconds float64) *simnet.FaultPlan {
	plan := &simnet.FaultPlan{}
	nCrash := 1 + rng.Intn(2)
	if nCrash > nodes-1 {
		nCrash = nodes - 1
	}
	perm := rng.Perm(nodes)
	for c := 0; c < nCrash; c++ {
		at := (0.15 + 0.45*rng.Float64()) * baseSeconds
		plan.Faults = append(plan.Faults, simnet.Fault{Kind: simnet.FaultCrash, Rank: perm[c], At: at})
	}
	if rng.Bernoulli(0.5) {
		plan.Faults = append(plan.Faults, simnet.Fault{
			Kind: simnet.FaultSlow, Rank: 0,
			At:       0.1 * baseSeconds,
			Duration: 0.2 * baseSeconds,
			Factor:   1 + 3*rng.Float64(),
		})
	}
	return plan
}

// soakServe opens a serving stack on the recovered checkpoint, verifies
// scores against the in-memory parameters, then hot-reloads onto the
// baseline checkpoint while predict queries are in flight and verifies the
// swap took effect.
func soakServe(recCkpt, baseCkpt string, m model.Model, recParams, baseParams *model.Params, d *kg.Dataset, rng *xrand.RNG) error {
	srv, err := serve.New(serve.Config{CheckpointPath: recCkpt, CacheSize: 256, MaxBatch: 8})
	if err != nil {
		return fmt.Errorf("opening server on recovered checkpoint: %w", err)
	}
	defer srv.Close()

	probes := make([]kg.Triple, 8)
	for i := range probes {
		probes[i] = d.Test[rng.Intn(len(d.Test))]
	}
	check := func(stage string, p *model.Params) error {
		st := srv.Store()
		for _, tr := range probes {
			got := st.Score(int(tr.H), int(tr.R), int(tr.T))
			want := m.Score(p, tr)
			if math.Abs(float64(got-want)) > 1e-6 {
				return fmt.Errorf("%s: served score %.6g != trained score %.6g for %+v", stage, got, want, tr)
			}
		}
		return nil
	}
	if err := check("serving recovered model", recParams); err != nil {
		return err
	}

	// Hot reload under concurrent predict load: queries must all resolve
	// (against either generation) and the swap must land.
	handler := srv.Handler()
	var wg sync.WaitGroup
	qErr := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		h := int(probes[w].H)
		r := int(probes[w].R)
		go func() {
			defer wg.Done()
			for q := 0; q < 8; q++ {
				body, _ := json.Marshal(map[string]any{"head": h, "relation": r, "k": 3})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				rw := httptest.NewRecorder()
				handler.ServeHTTP(rw, req)
				if rw.Code != http.StatusOK {
					select {
					case qErr <- fmt.Errorf("predict during reload: HTTP %d: %s", rw.Code, rw.Body.String()):
					default:
					}
					return
				}
			}
		}()
	}
	if err := srv.Reload(baseCkpt); err != nil {
		wg.Wait()
		return fmt.Errorf("hot reload onto baseline checkpoint: %w", err)
	}
	wg.Wait()
	select {
	case err := <-qErr:
		return err
	default:
	}
	if err := check("serving after hot reload", baseParams); err != nil {
		return err
	}
	info, err := model.ReadCheckpointInfo(baseCkpt)
	if err != nil {
		return fmt.Errorf("reading baseline checkpoint info: %w", err)
	}
	if got := srv.Store().Info().CRC; got != fmt.Sprintf("%08x", info.CRC) {
		return fmt.Errorf("reload identity mismatch: store CRC %s, checkpoint CRC %08x", got, info.CRC)
	}
	return nil
}

// paramsEqual compares two parameter sets bit-for-bit.
func paramsEqual(a, b *model.Params) bool {
	if a.Entity.Rows != b.Entity.Rows || a.Relation.Rows != b.Relation.Rows ||
		a.Entity.Cols != b.Entity.Cols || a.Relation.Cols != b.Relation.Cols {
		return false
	}
	for i, v := range a.Entity.Data {
		if math.Float32bits(v) != math.Float32bits(b.Entity.Data[i]) {
			return false
		}
	}
	for i, v := range a.Relation.Data {
		if math.Float32bits(v) != math.Float32bits(b.Relation.Data[i]) {
			return false
		}
	}
	return true
}
