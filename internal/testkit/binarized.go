package testkit

import (
	"fmt"
	"math"

	"kgedist/internal/binpack"
	"kgedist/internal/eval"
	"kgedist/internal/model"
	"kgedist/internal/xrand"
)

// The binarized-serving verification tier has two halves with different
// jobs. The serve-approx golden pins the two-stage ranking bit for bit: a
// fixed clustered checkpoint, a fixed query grid, and the exact candidate
// ids the prefilter+rescore pipeline returns, at zero tolerance — any
// change to the binarization rule, the Hamming kernel, the tie-breaking, or
// the rescore ordering moves an id and fails the diff. CheckBinarizedRecall
// is the statistical half: it asserts the pipeline's *fidelity* (recall@k
// against the exact sweep) stays above calibrated floors across candidate
// budgets, under the same CLT bound discipline as the other property
// checks, and that recall is monotone in the budget (stage-1 candidate
// sets are nested by construction, so shrinking recall with a growing
// budget can only mean the prefilter or rescore broke).

// Serve-approx golden scenario shape. Small enough to record in
// milliseconds, large enough that the prefilter genuinely discards >90% of
// the table at the widest budget.
const (
	saModel     = "transe"
	saDim       = 32
	saEntities  = 2000
	saRelations = 8
	saClusters  = 64
	saSpread    = 0.25
	saSeed      = 101
	saK         = 10
)

// saBudgets are the stage-1 candidate budgets the golden pins per query.
var saBudgets = []int{64, 256, 1024}

// GoldenApproxQuery is one pinned two-stage ranking: the query slot, the
// stage-1 budget, and the exact entity ids returned, in rank order.
type GoldenApproxQuery struct {
	Side string  `json:"side"`
	Fix  int     `json:"fix"`
	Rel  int     `json:"rel"`
	K    int     `json:"k"`
	C    int     `json:"c"`
	IDs  []int32 `json:"ids"`
}

// GoldenServeApprox is the committed reference for the binarized serving
// path: the generated checkpoint's parameters plus every pinned ranking.
type GoldenServeApprox struct {
	Model     string              `json:"model"`
	Dim       int                 `json:"dim"`
	Entities  int                 `json:"entities"`
	Relations int                 `json:"relations"`
	Clusters  int                 `json:"clusters"`
	Spread    float64             `json:"spread"`
	Seed      uint64              `json:"seed"`
	K         int                 `json:"k"`
	Queries   []GoldenApproxQuery `json:"queries"`
}

// saCheckpoint regenerates the scenario's deterministic clustered
// checkpoint and its packed index.
func saCheckpoint() (model.Model, *model.Params, *binpack.Index, error) {
	m := model.New(saModel, saDim)
	p := model.NewParams(m, saEntities, saRelations)
	p.ClusteredInit(m, saClusters, saSpread, xrand.New(saSeed))
	ix, err := binpack.BuildFromParams(m, p)
	return m, p, ix, err
}

// saQuerySlots is the pinned query grid: both sides, fixed entities spread
// across clusters.
func saQuerySlots() []GoldenApproxQuery {
	var qs []GoldenApproxQuery
	for _, side := range []string{"tail", "head"} {
		for _, fix := range []int{1, 17, 420, 999, 1777} {
			for _, c := range saBudgets {
				qs = append(qs, GoldenApproxQuery{Side: side, Fix: fix, Rel: fix % saRelations, K: saK, C: c})
			}
		}
	}
	return qs
}

// RecordServeApprox runs the pinned query grid and captures the returned
// entity ids, in rank order, per (side, fix, rel, k, c) slot.
func RecordServeApprox() (*GoldenServeApprox, error) {
	m, p, ix, err := saCheckpoint()
	if err != nil {
		return nil, err
	}
	sa := &GoldenServeApprox{
		Model: saModel, Dim: saDim, Entities: saEntities, Relations: saRelations,
		Clusters: saClusters, Spread: saSpread, Seed: saSeed, K: saK,
	}
	sc := binpack.NewScratch()
	for _, q := range saQuerySlots() {
		res, _, _, err := ix.Search(m, q.Side, p.Entity.Row(q.Fix), p.Relation.Row(q.Rel), p.Entity.Row, q.K, q.C, nil, sc)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			q.IDs = append(q.IDs, r.Entity)
		}
		sa.Queries = append(sa.Queries, q)
	}
	return sa, nil
}

// VerifyServeApprox re-runs the pinned grid and diffs the returned ids at
// zero tolerance. A nil reference (pre-section golden file) is a drift:
// the scenario matrix must not silently shrink.
func VerifyServeApprox(want *GoldenServeApprox) []Drift {
	if want == nil {
		return []Drift{{Run: "serve-approx", Field: "missing",
			Detail: "golden file has no serve_approx section; run kgeverify -update"}}
	}
	if want.Model != saModel || want.Dim != saDim || want.Entities != saEntities ||
		want.Relations != saRelations || want.Clusters != saClusters ||
		want.Spread != saSpread || want.Seed != saSeed || want.K != saK {
		return []Drift{{Run: "serve-approx", Field: "scenario",
			Detail: "recorded checkpoint parameters differ from the harness; run kgeverify -update"}}
	}
	got, err := RecordServeApprox()
	if err != nil {
		return []Drift{{Run: "serve-approx", Field: "error", Detail: err.Error()}}
	}
	if len(got.Queries) != len(want.Queries) {
		return []Drift{{Run: "serve-approx", Field: "queries",
			Got: float64(len(got.Queries)), Want: float64(len(want.Queries)),
			Detail: "pinned query grid changed size; run kgeverify -update"}}
	}
	var drifts []Drift
	for i := range want.Queries {
		w, g := want.Queries[i], got.Queries[i]
		if w.Side != g.Side || w.Fix != g.Fix || w.Rel != g.Rel || w.K != g.K || w.C != g.C {
			drifts = append(drifts, Drift{Run: "serve-approx", Field: "slot",
				Detail: fmt.Sprintf("query %d is %s/fix=%d/c=%d, golden pinned %s/fix=%d/c=%d",
					i, g.Side, g.Fix, g.C, w.Side, w.Fix, w.C)})
			continue
		}
		if len(w.IDs) != len(g.IDs) {
			drifts = append(drifts, Drift{Run: "serve-approx", Field: "ids",
				Got: float64(len(g.IDs)), Want: float64(len(w.IDs)),
				Detail: fmt.Sprintf("%s fix=%d c=%d returned %d ids, golden has %d",
					w.Side, w.Fix, w.C, len(g.IDs), len(w.IDs))})
			continue
		}
		for rank := range w.IDs {
			if g.IDs[rank] != w.IDs[rank] {
				drifts = append(drifts, Drift{Run: "serve-approx", Field: "ids",
					Got: float64(g.IDs[rank]), Want: float64(w.IDs[rank]),
					Detail: fmt.Sprintf("%s fix=%d c=%d rank %d: entity %d, golden %d — binarization, kernel, or tie-break changed",
						w.Side, w.Fix, w.C, rank, g.IDs[rank], w.IDs[rank])})
				break // first diverging rank per query is the debugging anchor
			}
		}
	}
	return drifts
}

// CheckBinarizedRecall shape: a clustered checkpoint at trained-like
// geometry (see model.ClusteredInit) with enough queries that the CLT
// margin on mean recall is a few percent.
const (
	brEntities  = 4000
	brRelations = 16
	brDim       = 32
	brClusters  = 128
	brSpread    = 0.25
	brK         = 10
	brQueries   = 120
)

// brFloors are the calibrated recall@10 floors per stage-1 budget. On this
// generator the pipeline measures ≈1.0 at every budget across seeds; the
// floors sit below that by a real margin so they gate fidelity collapses
// (a broken kernel or a wrong composition scores near chance, c/entities ≈
// 0.02–0.26) rather than chase the last percent.
var brFloors = map[int]float64{64: 0.90, 256: 0.95, 1024: 0.95}

// CheckBinarizedRecall verifies the two-stage pipeline's ranking fidelity:
// mean recall@10 of the approx result against the exact sweep must stay
// above the calibrated floor for every budget C ∈ {64, 256, 1024}, allowing
// the CLT margin of CheckZ standard errors below the floor. Because stage-1
// candidate sets are nested in C (deterministic tie-breaking makes top-64 a
// prefix of top-256's selection order), mean recall must also be monotone
// non-decreasing in C — exactly, not statistically.
func CheckBinarizedRecall(seed uint64) PropResult {
	const name = "binpack-recall-floor"
	m := model.New(saModel, brDim)
	p := model.NewParams(m, brEntities, brRelations)
	p.ClusteredInit(m, brClusters, brSpread, xrand.New(seed))
	ix, err := binpack.BuildFromParams(m, p)
	if err != nil {
		return PropResult{Name: name, Detail: "building index: " + err.Error()}
	}
	budgets := []int{64, 256, 1024}
	sc := binpack.NewScratch()
	prevMean := 0.0
	detail := ""
	for _, c := range budgets {
		// Re-seed the query stream per budget: identical queries make the
		// monotonicity comparison exact, not just in distribution.
		qrng := xrand.New(seed).Split(21)
		var rec RunningMean
		for t := 0; t < brQueries; t++ {
			fix := qrng.Intn(brEntities)
			rel := qrng.Intn(brRelations)
			side := "tail"
			if t%2 == 1 {
				side = "head"
			}
			fixRow, relRow := p.Entity.Row(fix), p.Relation.Row(rel)
			approx, _, _, err := ix.Search(m, side, fixRow, relRow, p.Entity.Row, brK, c, nil, sc)
			if err != nil {
				return PropResult{Name: name, Detail: fmt.Sprintf("search c=%d: %v", c, err)}
			}
			exact := eval.TopK(brEntities, brK, func(e int32) float32 {
				if side == "tail" {
					return m.ScoreRows(fixRow, relRow, p.Entity.Row(int(e)))
				}
				return m.ScoreRows(p.Entity.Row(int(e)), relRow, fixRow)
			}, nil)
			want := make(map[int32]bool, len(exact))
			for _, r := range exact {
				want[r.Entity] = true
			}
			hit := 0
			for _, r := range approx {
				if want[r.Entity] {
					hit++
				}
			}
			rec.Add(float64(hit) / float64(len(exact)))
		}
		margin := CheckZ * rec.SD() / math.Sqrt(float64(rec.N()))
		if rec.Mean()+margin < brFloors[c] {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"recall@%d with c=%d is %.4f over %d queries, below floor %.2f − %.4f CLT margin — prefilter fidelity collapsed",
				brK, c, rec.Mean(), rec.N(), brFloors[c], margin)}
		}
		if rec.Mean() < prevMean {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"recall@%d fell from %.4f to %.4f when the budget grew to c=%d — candidate sets are no longer nested",
				brK, prevMean, rec.Mean(), c)}
		}
		prevMean = rec.Mean()
		detail += fmt.Sprintf(" c=%d:%.3f", c, rec.Mean())
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"recall@%d over %d queries above floors (%.2f/%.2f/%.2f), monotone in budget:%s",
		brK, brQueries, brFloors[64], brFloors[256], brFloors[1024], detail)}
}
