package testkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"kgedist/internal/core"
)

// GoldenSchema versions the golden-file format. Bump it when a field changes
// meaning; Compare refuses to diff across schema versions.
const GoldenSchema = "kgedist-golden/v1"

// GoldenEpoch is one point of a recorded convergence curve.
type GoldenEpoch struct {
	Epoch int `json:"epoch"`
	// TrainLoss is rank 0's mean per-example training loss (the curve the
	// tolerance bands apply to).
	TrainLoss float64 `json:"train_loss"`
	// ValAccuracy is the global validation pairwise-ranking accuracy (%).
	ValAccuracy float64 `json:"val_accuracy"`
	// Mode is the exchange collective used that epoch ("allreduce" or
	// "allgather") — drift diagnosis reports when this differs, which
	// localizes a regression to the dynamic-strategy decision rather than
	// the numerics.
	Mode string `json:"mode"`
	// Level is the compression-ladder rung under the adaptive controller
	// ("fp32", "2bit", ...; empty outside dyncomp, which keeps the
	// pre-controller golden records byte-identical). Pinned at zero
	// tolerance: the ladder trajectory is part of the wire contract
	// (DESIGN.md §13).
	Level string `json:"level,omitempty"`
}

// GoldenRun records one scenario's reference trajectory and outcome.
type GoldenRun struct {
	Name            string        `json:"name"`
	Strategy        string        `json:"strategy"`
	Nodes           int           `json:"nodes"`
	Seed            uint64        `json:"seed"`
	Epochs          int           `json:"epochs"`
	SwitchedAtEpoch int           `json:"switched_at_epoch"`
	FinalLoss       float64       `json:"final_loss"`
	MRR             float64       `json:"mrr"`
	TCA             float64       `json:"tca"`
	CommBytes       int64         `json:"comm_bytes"`
	Curve           []GoldenEpoch `json:"curve"`
}

// GoldenFile is the committed reference: every scenario's golden run plus
// provenance. ServeApprox is a trailing optional section so records written
// before it existed (and the 12 training runs themselves) stay
// byte-identical under re-marshal.
type GoldenFile struct {
	Schema      string             `json:"schema"`
	Dataset     string             `json:"dataset"`
	Runs        []GoldenRun        `json:"runs"`
	ServeApprox *GoldenServeApprox `json:"serve_approx,omitempty"`
}

// Tolerance is the band applied when comparing a fresh run against a golden.
// The runs are deterministic for a fixed build, so the bands exist to absorb
// cross-platform floating-point variation (libm differences in exp/log), not
// algorithmic drift; they are deliberately tight.
type Tolerance struct {
	// TrainLoss is the absolute band on each curve point and the final loss.
	TrainLoss float64
	// ValAccuracy is the absolute band on validation accuracy (percentage
	// points).
	ValAccuracy float64
	// MRR is the absolute band on the final filtered MRR.
	MRR float64
	// TCA is the absolute band on triple-classification accuracy (points).
	TCA float64
	// CommBytesFrac is the allowed relative deviation of total communicated
	// bytes (selection is seeded, so volumes are exactly reproducible; the
	// band covers payload-layout changes that are declared intentional by
	// updating goldens).
	CommBytesFrac float64
}

// DefaultTolerance returns the bands `make verify-stats` enforces.
func DefaultTolerance() Tolerance {
	return Tolerance{
		TrainLoss:     0.02,
		ValAccuracy:   1.5,
		MRR:           0.02,
		TCA:           2.0,
		CommBytesFrac: 0.01,
	}
}

// GoldenFromResult converts a training result into its golden record.
func GoldenFromResult(name string, seed uint64, nodes int, res *core.Result) GoldenRun {
	g := GoldenRun{
		Name:            name,
		Strategy:        res.Strategy,
		Nodes:           nodes,
		Seed:            seed,
		Epochs:          res.Epochs,
		SwitchedAtEpoch: res.SwitchedAtEpoch,
		MRR:             res.MRR,
		TCA:             res.TCA,
		CommBytes:       res.CommBytes,
	}
	for _, e := range res.PerEpoch {
		g.Curve = append(g.Curve, GoldenEpoch{
			Epoch:       e.Epoch,
			TrainLoss:   e.TrainLoss,
			ValAccuracy: e.ValAccuracy,
			Mode:        e.Mode,
			Level:       e.Level,
		})
	}
	if n := len(g.Curve); n > 0 {
		g.FinalLoss = g.Curve[n-1].TrainLoss
	}
	return g
}

// Drift is one diagnosed divergence between a fresh run and its golden.
type Drift struct {
	Run    string  // scenario name
	Field  string  // which observable diverged
	Epoch  int     // first diverging epoch (0 = run-level field)
	Got    float64 // fresh value
	Want   float64 // golden value
	Band   float64 // tolerance applied
	Detail string  // extra context (e.g. the collective that differed)
}

// String renders the drift for reports.
func (d Drift) String() string {
	s := fmt.Sprintf("[%s] %s", d.Run, d.Field)
	if d.Epoch > 0 {
		s += fmt.Sprintf(" first diverged at epoch %d", d.Epoch)
	}
	s += fmt.Sprintf(": got %.6g, golden %.6g (band %.3g)", d.Got, d.Want, d.Band)
	if d.Detail != "" {
		s += " — " + d.Detail
	}
	return s
}

// CompareRun diffs a fresh run against its golden under the tolerance and
// returns every drift found (empty = within bands). The curve comparison
// reports only the FIRST diverging epoch per field: later points diverge as
// a consequence, and the first one is the debugging anchor.
func CompareRun(got, want GoldenRun, tol Tolerance) []Drift {
	var drifts []Drift
	runLevel := func(field string, g, w, band float64, detail string) {
		if math.Abs(g-w) > band {
			drifts = append(drifts, Drift{Run: want.Name, Field: field, Got: g, Want: w, Band: band, Detail: detail})
		}
	}
	if got.Epochs != want.Epochs {
		runLevel("epochs", float64(got.Epochs), float64(want.Epochs), 0,
			"epoch count changed: early stopping fired differently")
	}
	if got.SwitchedAtEpoch != want.SwitchedAtEpoch {
		runLevel("switched_at_epoch", float64(got.SwitchedAtEpoch), float64(want.SwitchedAtEpoch), 0,
			"the dynamic strategy's all-gather switch moved")
	}
	runLevel("final_loss", got.FinalLoss, want.FinalLoss, tol.TrainLoss, "")
	runLevel("mrr", got.MRR, want.MRR, tol.MRR, "")
	runLevel("tca", got.TCA, want.TCA, tol.TCA, "")
	if want.CommBytes > 0 {
		frac := math.Abs(float64(got.CommBytes-want.CommBytes)) / float64(want.CommBytes)
		if frac > tol.CommBytesFrac {
			drifts = append(drifts, Drift{
				Run: want.Name, Field: "comm_bytes",
				Got: float64(got.CommBytes), Want: float64(want.CommBytes), Band: tol.CommBytesFrac,
				Detail: "wire volume changed: a payload layout or selection change",
			})
		}
	}

	// Curve: walk epochs in lockstep, report first divergence per field.
	n := len(want.Curve)
	if len(got.Curve) < n {
		n = len(got.Curve)
	}
	var lossDrift, accDrift, modeDrift, levelDrift bool
	for i := 0; i < n; i++ {
		g, w := got.Curve[i], want.Curve[i]
		if !modeDrift && g.Mode != w.Mode {
			modeDrift = true
			drifts = append(drifts, Drift{
				Run: want.Name, Field: "mode", Epoch: w.Epoch,
				Detail: fmt.Sprintf("collective differed: ran %q, golden used %q", g.Mode, w.Mode),
			})
		}
		if !levelDrift && g.Level != w.Level {
			levelDrift = true
			drifts = append(drifts, Drift{
				Run: want.Name, Field: "level", Epoch: w.Epoch,
				Detail: fmt.Sprintf("compression rung differed: ran %q, golden used %q — the ladder decision moved", g.Level, w.Level),
			})
		}
		if !lossDrift && math.Abs(g.TrainLoss-w.TrainLoss) > tol.TrainLoss {
			lossDrift = true
			drifts = append(drifts, Drift{
				Run: want.Name, Field: "train_loss", Epoch: w.Epoch,
				Got: g.TrainLoss, Want: w.TrainLoss, Band: tol.TrainLoss,
			})
		}
		if !accDrift && math.Abs(g.ValAccuracy-w.ValAccuracy) > tol.ValAccuracy {
			accDrift = true
			drifts = append(drifts, Drift{
				Run: want.Name, Field: "val_accuracy", Epoch: w.Epoch,
				Got: g.ValAccuracy, Want: w.ValAccuracy, Band: tol.ValAccuracy,
			})
		}
	}
	return drifts
}

// LoadGoldens reads and validates a golden file.
func LoadGoldens(path string) (*GoldenFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("testkit: reading goldens: %w", err)
	}
	var gf GoldenFile
	if err := json.Unmarshal(buf, &gf); err != nil {
		return nil, fmt.Errorf("testkit: parsing goldens %s: %w", path, err)
	}
	if gf.Schema != GoldenSchema {
		return nil, fmt.Errorf("testkit: golden schema %q, want %q (regenerate with kgeverify -update)", gf.Schema, GoldenSchema)
	}
	if gf.Dataset != GoldenDatasetName {
		return nil, fmt.Errorf("testkit: goldens recorded on dataset %q, harness uses %q (regenerate with kgeverify -update)", gf.Dataset, GoldenDatasetName)
	}
	return &gf, nil
}

// SaveGoldens writes the golden file (indented, trailing newline) with a
// tmp+rename so a crash never leaves a half-written reference.
func SaveGoldens(path string, gf *GoldenFile) error {
	buf, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		return fmt.Errorf("testkit: encoding goldens: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("testkit: creating golden dir: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("testkit: writing goldens: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("testkit: publishing goldens: %w", err)
	}
	return nil
}

// Run finds the named golden run, or nil.
func (gf *GoldenFile) Run(name string) *GoldenRun {
	for i := range gf.Runs {
		if gf.Runs[i].Name == name {
			return &gf.Runs[i]
		}
	}
	return nil
}

// RecordGoldens runs every scenario and assembles a fresh golden file.
// report, when non-nil, receives one line per finished scenario.
func RecordGoldens(report func(format string, args ...any)) (*GoldenFile, error) {
	d := GoldenDataset()
	gf := &GoldenFile{Schema: GoldenSchema, Dataset: GoldenDatasetName}
	for _, sc := range Scenarios() {
		res, err := RunScenario(sc, d)
		if err != nil {
			return nil, fmt.Errorf("testkit: scenario %s: %w", sc.Name, err)
		}
		cfg := GoldenBaseConfig()
		gf.Runs = append(gf.Runs, GoldenFromResult(sc.Name, cfg.Seed, sc.Nodes, res))
		if report != nil {
			report("recorded %-10s strategy=%-22s epochs=%d mrr=%.4f final_loss=%.4f",
				sc.Name, res.Strategy, res.Epochs, res.MRR, gf.Runs[len(gf.Runs)-1].FinalLoss)
		}
	}
	sa, err := RecordServeApprox()
	if err != nil {
		return nil, fmt.Errorf("testkit: scenario serve-approx: %w", err)
	}
	gf.ServeApprox = sa
	if report != nil {
		report("recorded %-10s %d approx rankings over %s dim=%d entities=%d",
			"serve-approx", len(sa.Queries), sa.Model, sa.Dim, sa.Entities)
	}
	return gf, nil
}

// VerifyGoldens re-runs every scenario present in the golden file and diffs
// it under the tolerance. Scenarios in the code but missing from the file
// (or vice versa) are reported as drifts, so the matrix cannot silently
// shrink. report, when non-nil, receives one line per finished scenario.
func VerifyGoldens(gf *GoldenFile, tol Tolerance, report func(format string, args ...any)) []Drift {
	var drifts []Drift
	d := GoldenDataset()
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		seen[sc.Name] = true
		want := gf.Run(sc.Name)
		if want == nil {
			drifts = append(drifts, Drift{Run: sc.Name, Field: "missing",
				Detail: "scenario has no golden record; run kgeverify -update"})
			continue
		}
		res, err := RunScenario(sc, d)
		if err != nil {
			drifts = append(drifts, Drift{Run: sc.Name, Field: "error", Detail: err.Error()})
			continue
		}
		cfg := GoldenBaseConfig()
		got := GoldenFromResult(sc.Name, cfg.Seed, sc.Nodes, res)
		ds := CompareRun(got, *want, tol)
		drifts = append(drifts, ds...)
		if report != nil {
			status := "ok"
			if len(ds) > 0 {
				status = fmt.Sprintf("DRIFT x%d", len(ds))
			}
			report("golden %-10s mrr=%.4f final_loss=%.4f %s", sc.Name, got.MRR, got.FinalLoss, status)
		}
	}
	for _, run := range gf.Runs {
		if !seen[run.Name] {
			drifts = append(drifts, Drift{Run: run.Name, Field: "orphan",
				Detail: "golden record has no matching scenario; run kgeverify -update"})
		}
	}
	sa := VerifyServeApprox(gf.ServeApprox)
	drifts = append(drifts, sa...)
	if report != nil {
		status := "ok"
		if len(sa) > 0 {
			status = fmt.Sprintf("DRIFT x%d", len(sa))
		}
		report("golden %-10s approx rankings at zero tolerance %s", "serve-approx", status)
	}
	return drifts
}
