package testkit

import (
	"fmt"
	"strings"
	"testing"
)

// TestVerifyTCPTrajectoryIdentical is the in-suite form of the
// `kgeverify -tcp` gate: the dynamic-strategy scenario trained over three
// real TCP endpoints on localhost must match the in-process simulated run
// at zero tolerance. It trains twice (both fabrics), so the -short race
// tier skips it; `make transport` and plain `go test` run it.
func TestVerifyTCPTrajectoryIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two full runs; covered by the transport tier")
	}
	var lines []string
	drifts := VerifyTCP(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	for _, d := range drifts {
		t.Errorf("tcp drift: %s", d)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "identical") {
		t.Errorf("progress report = %q, want one line containing %q", lines, "identical")
	}
	if sc := TCPScenario(); sc.Name != "tcp-drs" || sc.Nodes != 3 {
		t.Errorf("TCPScenario = %q/%d nodes, want tcp-drs/3", sc.Name, sc.Nodes)
	}
}
