package testkit

import (
	"fmt"
	"strings"
	"testing"
)

// TestVerifyTCPTrajectoryIdentical is the in-suite form of the
// `kgeverify -tcp` gate: every TCP scenario (dynamic strategy, partitioned
// sharded tables) trained over three real TCP endpoints on localhost must
// match the in-process simulated run at zero tolerance. It trains each
// scenario twice (both fabrics), so the -short race tier skips it;
// `make transport` and plain `go test` run it.
func TestVerifyTCPTrajectoryIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two full runs per scenario; covered by the transport tier")
	}
	var lines []string
	drifts := VerifyTCP(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	for _, d := range drifts {
		t.Errorf("tcp drift: %s", d)
	}
	want := len(TCPScenarios())
	if len(lines) != want {
		t.Errorf("progress report = %q, want %d lines", lines, want)
	}
	for _, line := range lines {
		if !strings.Contains(line, "identical") {
			t.Errorf("progress line %q does not report %q", line, "identical")
		}
	}
	if sc := TCPScenario(); sc.Name != "tcp-drs" || sc.Nodes != 3 {
		t.Errorf("TCPScenario = %q/%d nodes, want tcp-drs/3", sc.Name, sc.Nodes)
	}
}
