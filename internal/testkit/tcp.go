package testkit

// TCP golden harness: the statistical gate's proof that the multi-process
// TCP transport is trajectory-equivalent to the deterministic channel
// fabric. Each scenario (the paper's dynamic strategy, and the partitioned
// sharded-table mode) trains twice — once in-process on the simulated
// cluster, once as a 3-rank mesh of real TCP endpoints over localhost —
// and the two runs must agree exactly:
// epoch-level loss and validation curves, the dynamic switch epoch, final
// MRR/TCA, and communicated bytes, all at zero tolerance. Any divergence
// means the transport leaked real-world nondeterminism into training.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/transport/tcptransport"
)

// TCPScenario is the golden matrix entry exercised over real sockets: the
// dynamic strategy with Bernoulli selection at three ranks. Relation
// partitioning is deliberately absent so the multi-process checkpoint
// merge (a real gather, unlike the channel world's shared-memory merge)
// cannot shift the byte counts.
func TCPScenario() Scenario {
	return Scenario{Name: "tcp-drs", Nodes: 3, Mutate: func(c *core.Config) {
		c.Comm = core.CommDynamic
		c.ProbeEvery = 2
		c.Select = grad.SelectBernoulli
	}}
}

// TCPScenarios is the full matrix exercised over real sockets: the dynamic
// strategy, and the partitioned sharded-table mode. The partitioned entry
// keeps periodic checkpoints ON — its checkpoint merge is the same
// collective gather in both worlds (unlike replicated mode, whose
// shared-memory merge moves no bytes in-process), so even the snapshot
// epochs must agree at zero tolerance.
func TCPScenarios() []Scenario {
	return []Scenario{
		TCPScenario(),
		{Name: "tcp-part", Nodes: 3, Mutate: func(c *core.Config) {
			c.Partitioned = true
			c.CheckpointEvery = 2
		}},
		// The adaptive compression controller's hop frames are
		// data-dependent in size and ride pooled buffers on both fabrics;
		// the zero-tolerance diff (including the per-epoch rung column)
		// proves the compressed ring and the controller's global decision
		// replay identically over real sockets (DESIGN.md §13).
		{Name: "tcp-dyncomp", Nodes: 3, Mutate: func(c *core.Config) {
			c.Comm = core.CommDynamicCompress
		}},
	}
}

// RunScenarioTCP trains the scenario with every rank backed by its own TCP
// endpoint over localhost (real sockets, full rendezvous handshake,
// heartbeats) and returns rank 0's result — the coordinator's curves are
// the ones the channel world records.
func RunScenarioTCP(sc Scenario, d *kg.Dataset) (*core.Result, error) {
	cfg := GoldenBaseConfig()
	sc.Mutate(&cfg)
	p := sc.Nodes

	lns := make([]net.Listener, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("testkit: listen: %w", err)
		}
		lns[i] = ln
	}

	results := make([]*core.Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep, err := tcptransport.Dial(tcptransport.Options{
				Rank:            rank,
				WorldSize:       p,
				CoordinatorAddr: lns[0].Addr().String(),
				Listener:        lns[rank],
				BuildTag:        "testkit",
				ConnectDeadline: 30 * time.Second,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("dial rank %d: %w", rank, err)
				return
			}
			results[rank], errs[rank] = core.TrainProcess(cfg, d, ep)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("testkit: tcp scenario %s: %w", sc.Name, err)
		}
	}
	return results[0], nil
}

// VerifyTCP runs every TCP scenario on both fabrics and diffs them at zero
// tolerance. The returned drifts are empty exactly when the transports are
// trajectory-identical. report, when non-nil, receives progress lines.
func VerifyTCP(report func(format string, args ...any)) []Drift {
	d := GoldenDataset()
	var drifts []Drift
	for _, sc := range TCPScenarios() {
		cfg := GoldenBaseConfig()
		sc.Mutate(&cfg)

		ref, err := core.Train(cfg, d, sc.Nodes)
		if err != nil {
			drifts = append(drifts, Drift{Run: sc.Name, Field: "error", Detail: "simnet reference: " + err.Error()})
			continue
		}
		got, err := RunScenarioTCP(sc, d)
		if err != nil {
			drifts = append(drifts, Drift{Run: sc.Name, Field: "error", Detail: err.Error()})
			continue
		}
		want := GoldenFromResult(sc.Name, cfg.Seed, sc.Nodes, ref)
		fresh := GoldenFromResult(sc.Name, cfg.Seed, sc.Nodes, got)
		ds := CompareRun(fresh, want, Tolerance{})
		drifts = append(drifts, ds...)
		if report != nil {
			status := "identical"
			if len(ds) > 0 {
				status = fmt.Sprintf("DRIFT x%d", len(ds))
			}
			report("tcp golden %-8s nodes=%d mrr=%.4f final_loss=%.4f %s",
				sc.Name, sc.Nodes, fresh.MRR, fresh.FinalLoss, status)
		}
	}
	return drifts
}
