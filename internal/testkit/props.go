package testkit

import (
	"fmt"
	"math"

	"kgedist/internal/core"
	"kgedist/internal/grad"
	"kgedist/internal/kg"
	"kgedist/internal/model"
	"kgedist/internal/partition"
	"kgedist/internal/xrand"
)

// The property checks verify the mathematical contracts each strategy's
// correctness rests on (see ISSUE/TESTING.md):
//
//   - TwoBitTernary quantization is unbiased where its clamp permits:
//     E[q_i] = v_i for |v_i| < mean(|v|), E[q_i] = sign(v_i)*mean(|v|) for
//     clamped coordinates (TernGrad, Wen et al. 2017, with the paper's
//     mean-scale modification).
//   - The 1-bit family is sign-exact: decode yields sign(v_i) * scale with
//     the scheme's documented per-row scale.
//   - Random selection keeps row i with probability min(1, ||g_i||/C),
//     C = mean row norm (§4.2), and the Wangni-style unbiased variant
//     rescales kept rows so the expectation is preserved.
//   - Relation partition never shares a relation across ranks, loses no
//     triples, and stays balanced within the provable bound (§4.4).
//   - The dynamic strategy's all-gather switch is permanent (§4.1).
//   - Negative sample selection trains on the argmax-scoring candidate
//     (§4.5).

// quantTrials and selectTrials size the Monte-Carlo sweeps. At 20k trials
// the detectable bias floor is ~5% of a coordinate's standard deviation —
// far below anything that would matter for training, far above float noise.
const (
	quantTrials  = 20000
	selectTrials = 20000
)

// CheckTernaryUnbiased verifies the TwoBitTernary estimator's expectation
// coordinate-by-coordinate over quantTrials seeded encode/decode rounds.
func CheckTernaryUnbiased(seed uint64) PropResult {
	const name = "quant-ternary-unbiased"
	width := 16
	row := make([]float32, width)
	rowRng := xrand.New(seed)
	for i := range row {
		// Mixed magnitudes either side of the mean, both signs, one zero.
		row[i] = float32((rowRng.Float64()*2 - 1) * math.Pow(2, float64(i%5)-2))
	}
	row[3] = 0
	var absSum float64
	for _, v := range row {
		absSum += math.Abs(float64(v))
	}
	mean := absSum / float64(width)

	g := grad.NewSparseGrad(width)
	copy(g.Row(1), row)
	rng := xrand.New(seed).Split(1)
	acc := make([]RunningMean, width)
	dst := grad.NewSparseGrad(width)
	for t := 0; t < quantTrials; t++ {
		e := grad.Quantize(g, grad.TwoBitTernary, rng)
		dst.Clear()
		grad.Dequantize(e, dst)
		dec, _ := dst.Get(1)
		for i, v := range dec {
			acc[i].Add(float64(v))
		}
	}
	for i, v := range row {
		a := math.Abs(float64(v))
		if a >= mean {
			// Clamped coordinate: P(keep)=1, so q is deterministic.
			want := math.Copysign(mean, float64(v))
			if math.Abs(acc[i].Mean()-want) > 1e-4 {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"clamped coord %d: mean decode %.6g, want exactly %.6g", i, acc[i].Mean(), want)}
			}
			continue
		}
		ok, margin := MeanWithin(acc[i].Mean(), float64(v), acc[i].SD(), acc[i].N())
		if !ok {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"coord %d biased: mean decode %.6g, want %.6g ± %.2g over %d trials",
				i, acc[i].Mean(), v, margin, quantTrials)}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d coords within %.3g SE over %d trials (clamped coords exact)", width, CheckZ, quantTrials)}
}

// CheckOneBitSignExact verifies the deterministic 1-bit contract for every
// scheme in the family: decode returns sign(v_i) * scale, where scale is the
// scheme's documented row statistic (max for OneBitMax, mean for OneBitAvg;
// the sign-restricted variants are checked against the full-precision row).
func CheckOneBitSignExact(seed uint64) PropResult {
	const name = "quant-1bit-sign-exact"
	width := 24
	rng := xrand.New(seed)
	row := make([]float32, width)
	var absMax float32
	var absSum float64
	for i := range row {
		row[i] = float32(rng.NormFloat64())
		if a := float32(math.Abs(float64(row[i]))); a > absMax {
			absMax = a
		}
		absSum += math.Abs(float64(row[i]))
	}
	schemes := []grad.Scheme{
		grad.OneBitMax, grad.OneBitAvg,
		grad.OneBitPosMax, grad.OneBitNegMax, grad.OneBitPosAvg, grad.OneBitNegAvg,
	}
	g := grad.NewSparseGrad(width)
	copy(g.Row(0), row)
	dst := grad.NewSparseGrad(width)
	for _, s := range schemes {
		e := grad.Quantize(g, s, nil)
		dst.Clear()
		grad.Dequantize(e, dst)
		dec, _ := dst.Get(0)
		scale := float64(e.Scales[0])
		if scale <= 0 {
			return PropResult{Name: name, Detail: fmt.Sprintf("%s: non-positive scale %g", s, scale)}
		}
		switch s {
		case grad.OneBitMax:
			if math.Abs(scale-float64(absMax)) > 1e-6 {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"%s scale %.6g, want max|v| = %.6g", s, scale, absMax)}
			}
		case grad.OneBitAvg:
			if math.Abs(scale-absSum/float64(width)) > 1e-5 {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"%s scale %.6g, want mean|v| = %.6g", s, scale, absSum/float64(width))}
			}
		}
		for i, v := range row {
			want := scale
			if v < 0 {
				want = -scale
			}
			if math.Abs(float64(dec[i])-want) > 1e-6 {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"%s coord %d: decoded %.6g, want sign(%.6g)*%.6g", s, i, dec[i], v, scale)}
			}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d schemes sign-exact with documented scales over %d coords", len(schemes), width)}
}

// selectTestGrad builds a gradient with rows of controlled norms: row i is
// constant-valued, so its 2-norm is |v_i|*sqrt(width).
func selectTestGrad(width int, vals []float32) *grad.SparseGrad {
	g := grad.NewSparseGrad(width)
	for i, v := range vals {
		row := g.Row(int32(i))
		for j := range row {
			row[j] = v
		}
	}
	return g
}

// CheckRSKeepProbability verifies the §4.2 contract: SelectBernoulli keeps
// row i with probability min(1, ||g_i||/C), C = mean 2-norm, measured as an
// empirical frequency over selectTrials seeded passes.
func CheckRSKeepProbability(seed uint64) PropResult {
	const name = "rs-keep-probability"
	width := 8
	vals := []float32{0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}
	var meanNorm float64
	for _, v := range vals {
		meanNorm += float64(v) * math.Sqrt(float64(width))
	}
	meanNorm /= float64(len(vals))

	rng := xrand.New(seed).Split(7)
	kept := make([]int, len(vals))
	for t := 0; t < selectTrials; t++ {
		g := selectTestGrad(width, vals)
		grad.Select(g, grad.SelectBernoulli, rng)
		for i := range vals {
			if _, ok := g.Get(int32(i)); ok {
				kept[i]++
			}
		}
	}
	for i, v := range vals {
		p := math.Min(1, float64(v)*math.Sqrt(float64(width))/meanNorm)
		if p >= 1 {
			if kept[i] != selectTrials {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"row %d has p=1 but was dropped %d times", i, selectTrials-kept[i])}
			}
			continue
		}
		ok, margin := BernoulliWithin(kept[i], selectTrials, p)
		if !ok {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"row %d kept %.4f of trials, want min(1,||g||/C) = %.4f ± %.4f",
				i, float64(kept[i])/selectTrials, p, margin)}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d rows match min(1,||g||/C) within %.3g SE over %d trials", len(vals), CheckZ, selectTrials)}
}

// CheckUnbiasedSelection verifies the Wangni-style variant: after
// SelectUnbiased (keep w.p. p, rescale kept rows by 1/p) the expected
// gradient equals the original.
func CheckUnbiasedSelection(seed uint64) PropResult {
	const name = "rs-unbiased-expectation"
	width := 8
	vals := []float32{0.2, 0.5, 1.0, 2.0}
	rng := xrand.New(seed).Split(11)
	acc := make([]RunningMean, len(vals))
	for t := 0; t < selectTrials; t++ {
		g := selectTestGrad(width, vals)
		grad.Select(g, grad.SelectUnbiased, rng)
		for i := range vals {
			if row, ok := g.Get(int32(i)); ok {
				acc[i].Add(float64(row[0]))
			} else {
				acc[i].Add(0)
			}
		}
	}
	for i, v := range vals {
		ok, margin := MeanWithin(acc[i].Mean(), float64(v), acc[i].SD(), acc[i].N())
		if !ok {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"row %d expectation %.5g, want %.5g ± %.2g — selection is biased",
				i, acc[i].Mean(), v, margin)}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d rows unbiased within %.3g SE over %d trials", len(vals), CheckZ, selectTrials)}
}

// CheckRPInvariants exhaustively verifies both relation partitioners over a
// grid of generated KGs and node counts: (1) no relation spans two ranks,
// (2) no triple is lost or duplicated, (3) the load balance stays within the
// provable bound total/p + maxRelationGroup + 1.
func CheckRPInvariants() PropResult {
	const name = "rp-invariants"
	grids := []kg.GenConfig{
		{Name: "rp-a", Entities: 60, Relations: 3, Triples: 500, Communities: 4, Seed: 1},
		{Name: "rp-b", Entities: 120, Relations: 17, Triples: 2000, Communities: 8, Seed: 2},
		{Name: "rp-c", Entities: 200, Relations: 40, Triples: 4000, Communities: 10, Seed: 3},
		// Pathological skew: relations ~ entities, nearly one triple each.
		{Name: "rp-d", Entities: 80, Relations: 64, Triples: 300, Communities: 5, Seed: 4},
	}
	algos := []struct {
		name string
		fn   func([]kg.Triple, int, int) [][]kg.Triple
	}{
		{"prefix", kg.RelationPartition},
		{"lpt", kg.RelationPartitionLPT},
	}
	cases := 0
	for _, gc := range grids {
		d := kg.Generate(gc)
		hist := d.RelationHistogram()
		maxGroup := 0
		for _, h := range hist {
			if h > maxGroup {
				maxGroup = h
			}
		}
		want := map[kg.Triple]int{}
		for _, t := range d.Train {
			want[t]++
		}
		for nodes := 1; nodes <= 8; nodes++ {
			for _, algo := range algos {
				cases++
				parts := algo.fn(d.Train, d.NumRelations, nodes)
				if len(parts) != nodes {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: got %d parts", gc.Name, algo.name, nodes, len(parts))}
				}
				if rel := kg.PartitionRelationsDisjoint(parts); rel >= 0 {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: relation %d spans two ranks", gc.Name, algo.name, nodes, rel)}
				}
				got := map[kg.Triple]int{}
				total, maxShard := 0, 0
				for _, part := range parts {
					total += len(part)
					if len(part) > maxShard {
						maxShard = len(part)
					}
					for _, t := range part {
						got[t]++
					}
				}
				if total != len(d.Train) || len(got) != len(want) {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: partition holds %d triples (%d distinct), input had %d (%d distinct) — triples lost or duplicated",
						gc.Name, algo.name, nodes, total, len(got), len(d.Train), len(want))}
				}
				for t, n := range want {
					if got[t] != n {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: triple %+v count %d, want %d", gc.Name, algo.name, nodes, t, got[t], n)}
					}
				}
				bound := len(d.Train)/nodes + maxGroup + 1
				if maxShard > bound {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: max shard %d exceeds balance bound total/p + maxGroup + 1 = %d",
						gc.Name, algo.name, nodes, maxShard, bound)}
				}
			}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d (dataset × nodes × algo) cases: disjoint relations, no lost triples, balance within bound", cases)}
}

// CheckDRSSwitchPermanence trains a short dynamic-strategy run and asserts
// the §4.1 contract: once the probe switches the exchange to all-gather it
// never reverts, and SwitchedAtEpoch agrees with the recorded per-epoch
// modes.
func CheckDRSSwitchPermanence() PropResult {
	const name = "drs-switch-permanence"
	d := GoldenDataset()
	cfg := GoldenBaseConfig()
	cfg.Comm = core.CommDynamic
	cfg.ProbeEvery = 1 // probe every epoch so the switch happens in-budget
	cfg.Select = grad.SelectBernoulli
	cfg.MaxEpochs = 6
	res, err := core.Train(cfg, d, 2)
	if err != nil {
		return PropResult{Name: name, Detail: "training failed: " + err.Error()}
	}
	switched := 0
	for _, e := range res.PerEpoch {
		switch e.Mode {
		case "allreduce":
			if switched > 0 {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"mode reverted to allreduce at epoch %d after switching at epoch %d — the switch must be permanent",
					e.Epoch, switched)}
			}
		case "allgather":
			if switched == 0 {
				switched = e.Epoch
			}
		default:
			return PropResult{Name: name, Detail: fmt.Sprintf("epoch %d has unknown mode %q", e.Epoch, e.Mode)}
		}
	}
	if switched == 0 {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"dynamic run never switched to all-gather in %d epochs — probe inert (sparse gradients should win here)", res.Epochs)}
	}
	if res.SwitchedAtEpoch == 0 || res.SwitchedAtEpoch > switched {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"SwitchedAtEpoch=%d disagrees with first all-gather epoch %d", res.SwitchedAtEpoch, switched)}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"switched at epoch %d and stayed in all-gather through epoch %d", switched, res.Epochs)}
}

// CheckSSHardestOrdering verifies §4.5: SelectHardest returns the candidate
// with the maximum model score among the n drawn negatives, reproduced here
// with a twin sampler consuming an identical RNG stream.
func CheckSSHardestOrdering(seed uint64) PropResult {
	const name = "ss-hardest-ordering"
	const entities, relations, n, trials = 200, 10, 6, 300
	m := model.New("complex", 8)
	p := model.NewParams(m, entities, relations)
	p.Init(m, xrand.New(seed))

	sampler := model.NewNegSampler(entities, xrand.New(seed).Split(1))
	twin := model.NewNegSampler(entities, xrand.New(seed).Split(1))
	posRng := xrand.New(seed).Split(2)
	scratchA := make([]kg.Triple, 0, n)
	scratchB := make([]kg.Triple, 0, n)
	for t := 0; t < trials; t++ {
		pos := kg.Triple{
			H: int32(posRng.Intn(entities)),
			R: int32(posRng.Intn(relations)),
			T: int32(posRng.Intn(entities)),
		}
		// The twin replays the exact candidate set SelectHardest will draw.
		cands := twin.CorruptN(pos, n, scratchB)
		best := cands[0]
		bestScore := m.Score(p, best)
		for _, c := range cands[1:] {
			if sc := m.Score(p, c); sc > bestScore {
				bestScore = sc
				best = c
			}
		}
		got, extra := model.SelectHardest(m, p, sampler, pos, n, scratchA)
		if got != best {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"trial %d: SelectHardest returned %+v (score %.5g), argmax candidate is %+v (score %.5g)",
				t, got, m.Score(p, got), best, bestScore)}
		}
		if extra != n {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"trial %d: accounted %d extra scores, want n=%d", t, extra, n)}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"argmax candidate returned in %d/%d seeded trials", trials, trials)}
}

// CheckJointPartitionInvariants verifies the sharded-table row partitioner
// over a grid of generated KGs, rank counts and algorithms: (1) every
// entity and relation row has exactly one in-range owner, (2) the triple
// shards cover the training split exactly once, (3) per-rank row counts
// stay within the balance bound, (4) plans are a pure function of
// (dataset, options), and (5) min-cut never plans more remote row traffic
// than the hash baseline on a community-structured graph.
func CheckJointPartitionInvariants() PropResult {
	const name = "partition-joint-invariants"
	grids := []kg.GenConfig{
		{Name: "jp-a", Entities: 90, Relations: 6, Triples: 900, Communities: 6, Seed: 11},
		{Name: "jp-b", Entities: 240, Relations: 24, Triples: 4000, Communities: 8, Seed: 12},
		// Pathological: more relations than some shards have entities.
		{Name: "jp-c", Entities: 50, Relations: 45, Triples: 400, Communities: 5, Seed: 13},
	}
	cases := 0
	for _, gc := range grids {
		d := kg.Generate(gc)
		want := map[kg.Triple]int{}
		for _, t := range d.Train {
			want[t]++
		}
		for ranks := 1; ranks <= 6; ranks++ {
			remote := map[string]float64{}
			for _, algo := range []string{"mincut", "hash"} {
				cases++
				opt := partition.Options{Ranks: ranks, Algo: algo, Seed: 9}
				plan, err := partition.Build(d, opt)
				if err != nil {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: Build: %v", gc.Name, algo, ranks, err)}
				}
				if err := plan.Validate(); err != nil {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: %v", gc.Name, algo, ranks, err)}
				}
				entCount := make([]int, ranks)
				for e, o := range plan.EntityOwner {
					if o < 0 || int(o) >= ranks {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: entity %d owned by rank %d", gc.Name, algo, ranks, e, o)}
					}
					entCount[o]++
				}
				relCount := make([]int, ranks)
				for r, o := range plan.RelationOwner {
					if o < 0 || int(o) >= ranks {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: relation %d owned by rank %d", gc.Name, algo, ranks, r, o)}
					}
					relCount[o]++
				}
				if algo == "mincut" {
					// Only the greedy min-cut enforces the balance cap;
					// hash is the unbalanced baseline.
					entBound := partition.BalanceBound(d.NumEntities, ranks, opt.Slack)
					relBound := partition.BalanceBound(d.NumRelations, ranks, opt.Slack)
					for rank := 0; rank < ranks; rank++ {
						if entCount[rank] > entBound {
							return PropResult{Name: name, Detail: fmt.Sprintf(
								"%s/%s p=%d: rank %d owns %d entities, bound %d", gc.Name, algo, ranks, rank, entCount[rank], entBound)}
						}
						if relCount[rank] > relBound {
							return PropResult{Name: name, Detail: fmt.Sprintf(
								"%s/%s p=%d: rank %d owns %d relations, bound %d", gc.Name, algo, ranks, rank, relCount[rank], relBound)}
						}
					}
				}
				got := map[kg.Triple]int{}
				total := 0
				for _, shard := range plan.Shards {
					total += len(shard)
					for _, t := range shard {
						got[t]++
					}
				}
				if total != len(d.Train) || len(got) != len(want) {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: shards hold %d triples (%d distinct), train has %d (%d distinct)",
						gc.Name, algo, ranks, total, len(got), len(d.Train), len(want))}
				}
				for t, n := range want {
					if got[t] != n {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: triple %+v placed %d times, want %d", gc.Name, algo, ranks, t, got[t], n)}
					}
				}
				again, err := partition.Build(d, opt)
				if err != nil {
					return PropResult{Name: name, Detail: fmt.Sprintf(
						"%s/%s p=%d: rebuild: %v", gc.Name, algo, ranks, err)}
				}
				for e := range plan.EntityOwner {
					if plan.EntityOwner[e] != again.EntityOwner[e] {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: nondeterministic entity owner at row %d", gc.Name, algo, ranks, e)}
					}
				}
				for r := range plan.RelationOwner {
					if plan.RelationOwner[r] != again.RelationOwner[r] {
						return PropResult{Name: name, Detail: fmt.Sprintf(
							"%s/%s p=%d: nondeterministic relation owner at row %d", gc.Name, algo, ranks, r)}
					}
				}
				remote[algo] = plan.Quality().RemoteRowFraction
			}
			if ranks > 1 && remote["mincut"] > remote["hash"] {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"%s p=%d: mincut plans %.3f remote rows, hash baseline %.3f",
					gc.Name, ranks, remote["mincut"], remote["hash"])}
			}
		}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d (dataset × ranks × algo) cases: single owners, lossless shards, balance within bound, deterministic, mincut ≤ hash on remote rows", cases)}
}

// entropyTrials sizes the estimator sweep; with ~6400 strided samples per
// trial the CLT margin on the mean strided-vs-exact gap lands near 1e-3 in
// normalized entropy — far below any gap that could move a ladder decision.
const entropyTrials = 100

// CheckEntropyEstimator verifies the compression controller's cheap entropy
// signal (DESIGN.md §13): the strided bucket histogram (every
// ObserveStride-th value) must estimate the exact stride-1 bucket entropy
// without bias. Each trial draws a fresh gradient, runs the controller's own
// Observe/AdvanceFrom path for the strided figure, and compares against
// grad.ExactEntropy; the mean gap over all trials is held within CheckZ
// standard errors of zero.
func CheckEntropyEstimator(seed uint64) PropResult {
	const name = "dyncomp-entropy-estimator"
	const rows, width = 400, 64
	rng := xrand.New(seed).Split(3)
	c := grad.NewController(0, 0)
	var buf [grad.CtrlStatsLen]float32
	var gap RunningMean
	maxAbs := 0.0
	for t := 0; t < entropyTrials; t++ {
		g := grad.NewSparseGrad(width)
		// Mixed magnitude scales so the histogram spans several buckets.
		for i := 0; i < rows; i++ {
			row := g.Row(int32(i))
			scale := math.Pow(2, float64(rng.Intn(9)-4))
			for j := range row {
				row[j] = float32(rng.NormFloat64() * scale)
			}
		}
		c.Observe(g)
		c.StatsInto(buf[:])
		strided := c.AdvanceFrom(buf[:]).Entropy
		exact := grad.ExactEntropy(g)
		d := strided - exact
		gap.Add(d)
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	ok, margin := MeanWithin(gap.Mean(), 0, gap.SD(), gap.N())
	if !ok {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"strided estimate biased: mean gap %.3g vs exact, allowed ± %.2g over %d trials",
			gap.Mean(), margin, entropyTrials)}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"mean strided-vs-exact gap %.2g (± %.2g allowed, max |gap| %.2g) over %d trials",
		gap.Mean(), margin, maxAbs, entropyTrials)}
}

// dynCompMRRBand is the convergence band the adaptive controller must hold
// against the uncompressed baseline on the golden horizon. It is wider than
// the golden Tolerance.MRR band because the short 8-epoch run amortizes none
// of the quantization noise — the EXPERIMENTS.md sweep shows the gap closing
// (and 1-bit overtaking fp32) on longer horizons.
const dynCompMRRBand = 0.06

// CheckDynCompConvergence trains the adaptive-compression scenario and the
// static fp32 exchanges on the golden dataset and asserts the DESIGN.md §13
// contract end to end: the ladder engages at least one rung and only ever
// ascends, the recorded steps agree with the per-epoch rung column, the
// entropy signal is populated, total communicated bytes land strictly below
// BOTH static fp32 exchanges, and the final MRR stays within dynCompMRRBand
// of the fp32 baseline.
func CheckDynCompConvergence() PropResult {
	const name = "dyncomp-convergence"
	d := GoldenDataset()
	const nodes = 3
	run := func(mut func(*core.Config)) (*core.Result, error) {
		cfg := GoldenBaseConfig()
		mut(&cfg)
		return core.Train(cfg, d, nodes)
	}
	dyn, err := run(func(c *core.Config) { c.Comm = core.CommDynamicCompress })
	if err != nil {
		return PropResult{Name: name, Detail: "dyncomp run failed: " + err.Error()}
	}
	fp32, err := run(func(c *core.Config) { c.Comm = core.CommAllReduce })
	if err != nil {
		return PropResult{Name: name, Detail: "allreduce baseline failed: " + err.Error()}
	}
	gather, err := run(func(c *core.Config) { c.Comm = core.CommAllGather })
	if err != nil {
		return PropResult{Name: name, Detail: "allgather baseline failed: " + err.Error()}
	}

	if len(dyn.CompressionSteps) == 0 {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"ladder never engaged in %d epochs — controller inert on the golden dataset", dyn.Epochs)}
	}
	// The per-epoch rung column must be populated, monotone, and agree with
	// the recorded steps.
	level := grad.LevelFP32
	steps := dyn.CompressionSteps
	for _, e := range dyn.PerEpoch {
		if e.Mode != "dyncomp" {
			return PropResult{Name: name, Detail: fmt.Sprintf("epoch %d ran mode %q, want dyncomp", e.Epoch, e.Mode)}
		}
		if len(steps) > 0 && steps[0].Epoch == e.Epoch {
			level++
			if steps[0].Level != level.String() {
				return PropResult{Name: name, Detail: fmt.Sprintf(
					"step at epoch %d recorded rung %q, ladder order says %q", e.Epoch, steps[0].Level, level)}
			}
			steps = steps[1:]
		}
		if e.Level != level.String() {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"epoch %d ran rung %q, the recorded steps imply %q — trajectory and ledger disagree",
				e.Epoch, e.Level, level)}
		}
		if e.GradEntropy <= 0 || e.GradEntropy >= 1 {
			return PropResult{Name: name, Detail: fmt.Sprintf(
				"epoch %d entropy signal %.4g outside (0,1)", e.Epoch, e.GradEntropy)}
		}
	}
	// A step recorded for the epoch after the horizon is legal (the decision
	// fires at the final boundary); anything else left over is a ledger bug.
	if len(steps) > 1 || (len(steps) == 1 && steps[0].Epoch != dyn.Epochs+1) {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"%d recorded steps never trained: %+v", len(steps), steps)}
	}
	if dyn.CommBytes >= fp32.CommBytes || dyn.CommBytes >= gather.CommBytes {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"dyncomp moved %d bytes, not strictly below allreduce %d and allgather %d",
			dyn.CommBytes, fp32.CommBytes, gather.CommBytes)}
	}
	if math.Abs(dyn.MRR-fp32.MRR) > dynCompMRRBand {
		return PropResult{Name: name, Detail: fmt.Sprintf(
			"dyncomp MRR %.4f vs fp32 %.4f: outside the %.2g convergence band",
			dyn.MRR, fp32.MRR, dynCompMRRBand)}
	}
	return PropResult{Name: name, OK: true, Detail: fmt.Sprintf(
		"%d rung(s) engaged, %d bytes vs fp32 %d (%.1f%%), MRR %.4f within %.2g of fp32 %.4f",
		len(dyn.CompressionSteps), dyn.CommBytes, fp32.CommBytes,
		100*float64(dyn.CommBytes)/float64(fp32.CommBytes), dyn.MRR, dynCompMRRBand, fp32.MRR)}
}

// AllPropertyChecks runs the full statistical sweep. Deterministic for a
// fixed seed.
func AllPropertyChecks(seed uint64) []PropResult {
	return []PropResult{
		CheckTernaryUnbiased(seed),
		CheckOneBitSignExact(seed),
		CheckRSKeepProbability(seed),
		CheckUnbiasedSelection(seed),
		CheckRPInvariants(),
		CheckJointPartitionInvariants(),
		CheckDRSSwitchPermanence(),
		CheckSSHardestOrdering(seed),
		CheckEntropyEstimator(seed),
		CheckDynCompConvergence(),
		CheckBinarizedRecall(seed),
	}
}
